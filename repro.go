// Package repro is the top-level facade of the HPC Operational Data
// Analytics framework reproduction (Netti et al., IEEE CLUSTER 2021).
//
// It assembles the full 4x4 capability grid — every analytics type across
// every data-center pillar, backed by the virtual data center in
// internal/simulation — and provides the standard experiment harness the
// benchmarks and binaries share. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced artifacts.
package repro

import (
	"fmt"

	"repro/internal/descriptive"
	"repro/internal/diagnostic"
	"repro/internal/oda"
	"repro/internal/predictive"
	"repro/internal/prescriptive"
	"repro/internal/simulation"
)

// FullGrid returns the framework grid with every built-in capability
// registered: the executable form of the paper's Table I.
func FullGrid() (*oda.Grid, error) {
	g := oda.NewGrid()
	for _, reg := range []func(*oda.Grid) error{
		descriptive.Register,
		diagnostic.Register,
		predictive.Register,
		prescriptive.Register,
	} {
		if err := reg(g); err != nil {
			return nil, fmt.Errorf("repro: building grid: %w", err)
		}
	}
	return g, nil
}

// StandardRun holds a completed simulation and the analysis context over
// its full telemetry window — the shared substrate of the experiments.
type StandardRun struct {
	DC  *simulation.DataCenter
	Ctx *oda.RunContext
}

// StandardExperiment simulates the default virtual center (nodes at the
// given scale, deterministic under seed) for the given number of virtual
// hours and returns the analysis context.
func StandardExperiment(seed int64, nodes int, hours float64) *StandardRun {
	cfg := simulation.DefaultConfig(seed)
	if nodes > 0 {
		cfg.Nodes = nodes
		cfg.Workload.MaxNodes = nodes / 2
	}
	dc := simulation.New(cfg)
	dc.RunFor(hours * 3600)
	return &StandardRun{
		DC:  dc,
		Ctx: &oda.RunContext{Store: dc.Store, From: 0, To: dc.Now() + 1, System: dc},
	}
}
