package repro

// Benchmarks, one per paper artifact (DESIGN.md §3) plus the ablations of
// DESIGN.md §4. The Table I benches time one representative capability per
// grid cell against a shared pre-simulated telemetry archive; the Fig. 3
// benches time the composed systems end to end (simulation included, since
// the control loop IS the system); the ablation benches compare design
// alternatives (compression, policies, forecasters, collection paths).

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/collector"
	"repro/internal/descriptive"
	"repro/internal/diagnostic"
	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/metric"
	"repro/internal/oda"
	"repro/internal/predictive"
	"repro/internal/prescriptive"
	"repro/internal/scheduler"
	"repro/internal/simulation"
	"repro/internal/timeseries"
	"repro/internal/wire"
	"repro/internal/workload"
)

var (
	benchOnce sync.Once
	benchRun  *StandardRun
)

// benchCtx lazily builds one shared 8-hour, 16-node archive for the
// capability benches.
func benchCtx(b *testing.B) *oda.RunContext {
	b.Helper()
	benchOnce.Do(func() {
		benchRun = StandardExperiment(1, 16, 8)
	})
	ctx := *benchRun.Ctx
	return &ctx
}

func benchCapability(b *testing.B, c oda.Capability) {
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table I: one bench per grid cell (E1) ---

// Descriptive row.
func BenchmarkTableI_Descriptive_Building(b *testing.B) { benchCapability(b, descriptive.PUE{}) }
func BenchmarkTableI_Descriptive_Hardware(b *testing.B) { benchCapability(b, descriptive.SIE{}) }
func BenchmarkTableI_Descriptive_Software(b *testing.B) { benchCapability(b, descriptive.Slowdown{}) }
func BenchmarkTableI_Descriptive_Apps(b *testing.B)     { benchCapability(b, descriptive.Roofline{}) }

// Diagnostic row.
func BenchmarkTableI_Diagnostic_Building(b *testing.B) { benchCapability(b, diagnostic.InfraAnomaly{}) }
func BenchmarkTableI_Diagnostic_Hardware(b *testing.B) { benchCapability(b, diagnostic.NodeAnomaly{}) }
func BenchmarkTableI_Diagnostic_Software(b *testing.B) { benchCapability(b, diagnostic.RogueProcess{}) }
func BenchmarkTableI_Diagnostic_Apps(b *testing.B) {
	benchCapability(b, diagnostic.AppFingerprint{Seed: 1})
}

// Predictive row.
func BenchmarkTableI_Predictive_Building(b *testing.B) { benchCapability(b, predictive.KPIForecast{}) }
func BenchmarkTableI_Predictive_Hardware(b *testing.B) {
	benchCapability(b, predictive.SensorForecast{})
}
func BenchmarkTableI_Predictive_Software(b *testing.B) {
	benchCapability(b, predictive.WorkloadForecast{})
}
func BenchmarkTableI_Predictive_Apps(b *testing.B) {
	benchCapability(b, predictive.JobDuration{Seed: 1})
}

// Prescriptive row.
func BenchmarkTableI_Prescriptive_Building(b *testing.B) {
	benchCapability(b, prescriptive.SetpointOptimizer{})
}
func BenchmarkTableI_Prescriptive_Hardware(b *testing.B) {
	benchCapability(b, prescriptive.DVFSGovernor{})
}
func BenchmarkTableI_Prescriptive_Software(b *testing.B) {
	benchCapability(b, prescriptive.PolicyAdvisor{})
}
func BenchmarkTableI_Prescriptive_Apps(b *testing.B) {
	benchCapability(b, prescriptive.AutoTuner{Budget: 60})
}

// --- Fig. 1: per-pillar telemetry sources (E2) ---

func benchSourceCollect(b *testing.B, src collector.Source) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Collect(int64(i) * 1000)
	}
}

func BenchmarkFig1_PillarSources_Facility(b *testing.B) {
	ctx := benchCtx(b)
	dc := ctx.System.(*simulation.DataCenter)
	benchSourceCollect(b, dc.Facility.Source())
}

func BenchmarkFig1_PillarSources_Hardware(b *testing.B) {
	ctx := benchCtx(b)
	dc := ctx.System.(*simulation.DataCenter)
	benchSourceCollect(b, dc.Nodes[0].Source())
}

func BenchmarkFig1_PillarSources_Network(b *testing.B) {
	ctx := benchCtx(b)
	dc := ctx.System.(*simulation.DataCenter)
	benchSourceCollect(b, dc.Net.Source())
}

// --- Fig. 2: the staged pipeline (E3) ---

func BenchmarkFig2_StagedPipeline(b *testing.B) {
	ctx := benchCtx(b)
	var p oda.Pipeline
	if err := p.Append(oda.Descriptive, descriptive.PUE{}); err != nil {
		b.Fatal(err)
	}
	if err := p.Append(oda.Diagnostic, diagnostic.InfraAnomaly{}); err != nil {
		b.Fatal(err)
	}
	if err := p.Append(oda.Predictive, predictive.KPIForecast{}); err != nil {
		b.Fatal(err)
	}
	if err := p.Append(oda.Prescriptive, prescriptive.SetpointOptimizer{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 3: the composed systems, simulation included (E4-E6) ---

func BenchmarkFig3_ENI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3ENI(int64(i)+1, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_GEOPM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3GEOPM(int64(i)+1, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_Powerstack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3Powerstack(int64(i)+1, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Survey, LLNL and PUE experiments (E7-E9) ---

func BenchmarkSurvey_Analysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Survey(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLLNL_PowerSpikeForecast(b *testing.B) {
	benchCapability(b, predictive.PowerSpike{})
}

func BenchmarkPUE_ControlModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PUEControlModes(int64(i)+1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

func BenchmarkTSDB_AppendGorilla(b *testing.B) {
	store := timeseries.NewStore(0)
	id := metric.ID{Name: "power", Labels: metric.NewLabels("node", "n0")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Append(id, metric.Gauge, metric.UnitWatt, int64(i)*1000, float64(i%100)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(store.CompressionRatio(), "compression-ratio")
}

func BenchmarkTSDB_QueryRange(b *testing.B) {
	store := timeseries.NewStore(0)
	id := metric.ID{Name: "power", Labels: metric.NewLabels("node", "n0")}
	for i := 0; i < 100_000; i++ {
		_ = store.Append(id, metric.Gauge, metric.UnitWatt, int64(i)*1000, float64(i%100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Query(id, 10_000_000, 20_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPolicy(b *testing.B, p scheduler.Policy) {
	gen := workload.NewGenerator(workload.GeneratorConfig{
		Seed: 3, Users: 16, MeanInterarrival: 60, MaxNodes: 16,
	})
	jobs := gen.GenerateUntil(0, 12*3600*1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := predictive.Replay(jobs, 32, p)
		if m.FinishedJobs == 0 {
			b.Fatal("replay finished nothing")
		}
	}
}

func BenchmarkScheduler_FCFS(b *testing.B)      { benchPolicy(b, scheduler.FCFS{}) }
func BenchmarkScheduler_EASY(b *testing.B)      { benchPolicy(b, scheduler.EASY{}) }
func BenchmarkScheduler_PlanBased(b *testing.B) { benchPolicy(b, scheduler.PlanBased{}) }

func benchForecaster(b *testing.B, f forecast.Forecaster) {
	series := make([]float64, 4000)
	for i := range series {
		series[i] = 100 + 20*float64(i%144)/144 + float64(i%7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forecast.Backtest(f, series, 2000, 60, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForecast_HoltWinters(b *testing.B) {
	benchForecaster(b, &forecast.HoltWinters{Period: 144})
}
func BenchmarkForecast_AR(b *testing.B) { benchForecaster(b, &forecast.AR{P: 8}) }
func BenchmarkForecast_SeasonalNaive(b *testing.B) {
	benchForecaster(b, &forecast.SeasonalNaive{Period: 144})
}
func BenchmarkForecast_FFT(b *testing.B) { benchForecaster(b, &forecast.FFTForecaster{K: 4}) }

func BenchmarkCollector_LocalTick(b *testing.B) {
	store := timeseries.NewStore(0)
	agent := collector.NewAgent("bench", 0)
	node := simulation.New(simulation.Config{Nodes: 1, Seed: 1}).Nodes[0]
	agent.AddSource(node.Source())
	agent.AddSink(&collector.StoreSink{Store: store})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Tick(int64(i) * 1000)
	}
}

func BenchmarkCollector_BusPublish(b *testing.B) {
	bs := bus.New()
	defer bs.Close()
	sub := bs.Subscribe("hw.*", 1<<16)
	go func() {
		for range sub.C() {
		}
	}()
	msg := bus.Message{Topic: "hw.n0.power", Sample: metric.Sample{T: 1, V: 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Publish(msg)
	}
}

func BenchmarkCollector_WirePush(b *testing.B) {
	srv, err := wire.NewServer("127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := wire.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	batch := &wire.Batch{Agent: "bench", Records: []wire.Record{{
		ID:      metric.ID{Name: "power", Labels: metric.NewLabels("node", "n0")},
		Kind:    metric.Gauge,
		Unit:    metric.UnitWatt,
		Samples: []metric.Sample{{T: 1, V: 215.5}},
	}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Send(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulation_StepThroughput measures virtual-time throughput of
// the whole data center model (the substrate everything else stands on).
func BenchmarkSimulation_StepThroughput(b *testing.B) {
	cfg := simulation.DefaultConfig(1)
	cfg.Nodes = 64
	dc := simulation.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc.Step()
	}
}

// --- PR 1 parallel-path benches (sharded store, concurrent grid) ---

// BenchmarkStoreQueryParallel is the headline contention bench: 64 hot
// series under a mixed read/write load from GOMAXPROCS goroutines (1 append
// per 8 ops, the rest range queries). Run with -cpu 1,4 to see the sharded
// store hold throughput where a global-lock store degrades.
func BenchmarkStoreQueryParallel(b *testing.B) {
	store := timeseries.NewStore(0)
	const nSeries = 64
	ids := make([]metric.ID, nSeries)
	for s := 0; s < nSeries; s++ {
		ids[s] = metric.ID{Name: "power", Labels: metric.NewLabels("node", string(rune('a'+s%26))+string(rune('a'+s/26)))}
		for i := 0; i < 10_000; i++ {
			if err := store.Append(ids[s], metric.Gauge, metric.UnitWatt, int64(i)*1000, float64(i%100)); err != nil {
				b.Fatal(err)
			}
		}
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := ctr.Add(1)
			id := ids[n%nSeries]
			if n%8 == 0 {
				// Appends race, so stale timestamps are expected and dropped.
				_ = store.Append(id, metric.Gauge, metric.UnitWatt, 20_000_000+n*1000, float64(n))
			} else {
				if _, err := store.Query(id, 1_000_000, 2_000_000); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// benchPassiveGrid registers the read-only capability subset (everything
// not marked Exclusive), so iterations leave the shared archive untouched.
func benchPassiveGrid(b *testing.B) (*oda.Grid, *oda.RunContext) {
	b.Helper()
	ctx := benchCtx(b)
	g := oda.NewGrid()
	for _, c := range []oda.Capability{
		descriptive.PUE{}, descriptive.SIE{}, descriptive.Slowdown{}, descriptive.Roofline{},
		diagnostic.InfraAnomaly{}, diagnostic.NodeAnomaly{}, diagnostic.RogueProcess{},
		diagnostic.AppFingerprint{Seed: 1},
		predictive.KPIForecast{}, predictive.SensorForecast{}, predictive.WorkloadForecast{},
		predictive.JobDuration{Seed: 1}, predictive.PowerSpike{},
	} {
		if c.Meta().Exclusive {
			b.Fatalf("%s is exclusive; passive bench grid must not mutate the archive", c.Meta().Name)
		}
		if err := g.Register(c); err != nil {
			b.Fatal(err)
		}
	}
	return g, ctx
}

// BenchmarkGridRunAllParallel sweeps the passive capability subset with the
// worker pool; compare against BenchmarkGridRunAllSerial for the speedup.
func BenchmarkGridRunAllParallel(b *testing.B) {
	g, ctx := benchPassiveGrid(b)
	g.SetWorkers(0) // one worker per logical CPU
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, errs := g.RunAll(ctx); len(errs) != 0 {
			b.Fatalf("capability errors: %v", errs)
		}
	}
}

// BenchmarkGridRunAllSerial is the single-worker baseline for the sweep.
func BenchmarkGridRunAllSerial(b *testing.B) {
	g, ctx := benchPassiveGrid(b)
	g.SetWorkers(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, errs := g.RunAll(ctx); len(errs) != 0 {
			b.Fatalf("capability errors: %v", errs)
		}
	}
}

// benchActuatorGrid models the 11-actuator prescriptive sweep: the same
// capabilities and declared footprints as the real fleet, with each Run
// replaced by a fixed 2ms stand-in for the control decision. legacy=true
// reverts every actuator to the old Exclusive bit, which is exactly the
// serial tail the footprint scheduler exists to shrink.
func benchActuatorGrid(b *testing.B, legacy bool) *oda.Grid {
	b.Helper()
	g := oda.NewGrid()
	for _, c := range []oda.Capability{
		prescriptive.CoolingModeSwitch{}, prescriptive.SetpointOptimizer{},
		prescriptive.AnomalyResponse{}, prescriptive.DVFSGovernor{},
		prescriptive.FanControl{}, prescriptive.PowerBudget{},
		prescriptive.PolicyAdvisor{}, prescriptive.TaskPlacement{},
		prescriptive.AutoTuner{}, prescriptive.CodeRecommend{},
		prescriptive.DemandResponse{},
	} {
		m := c.Meta()
		if legacy {
			m.Reads, m.Writes, m.Exclusive = nil, nil, true
		}
		err := g.Register(oda.CapabilityFunc{M: m, Fn: func(ctx *oda.RunContext) (oda.Result, error) {
			time.Sleep(2 * time.Millisecond)
			return oda.Result{}, nil
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
	g.SetWorkers(8)
	return g
}

// BenchmarkActuatorSweepExclusive is the legacy baseline: 11 exclusive
// actuators degenerate to 11 serial waves (~22ms per sweep).
func BenchmarkActuatorSweepExclusive(b *testing.B) {
	g := benchActuatorGrid(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, errs := g.RunAll(&oda.RunContext{}); len(errs) != 0 {
			b.Fatalf("errors: %v", errs)
		}
	}
}

// BenchmarkActuatorSweepFootprints is the same fleet under declared
// footprints: write-disjoint actuators share waves, so the sweep collapses
// to the conflict-graph depth instead of the actuator count.
func BenchmarkActuatorSweepFootprints(b *testing.B) {
	g := benchActuatorGrid(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, errs := g.RunAll(&oda.RunContext{}); len(errs) != 0 {
			b.Fatalf("errors: %v", errs)
		}
	}
}

// BenchmarkSimulation_StepThroughputParallel is the worker-pool variant of
// BenchmarkSimulation_StepThroughput (same 64-node model, Workers=0).
func BenchmarkSimulation_StepThroughputParallel(b *testing.B) {
	cfg := simulation.DefaultConfig(1)
	cfg.Nodes = 64
	cfg.Workers = 0
	dc := simulation.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc.Step()
	}
}
