// Wave scheduler: how the grid turns declared read/write footprints into a
// concurrent sweep schedule. Every capability's Meta names the telemetry
// regions it reads and the actuation surfaces it writes; the grid packs
// write-disjoint capabilities into shared waves and orders conflicting
// ones by registration, replacing the old Exclusive bit's global actuator
// lock. The example prints the production schedule for the full 4x4 grid,
// runs one sweep against a simulated center, and reports the scheduler's
// observability counters.
//
// Run with: go run ./examples/wavescheduler
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	grid, err := repro.FullGrid()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("full grid: %d capabilities packed into %d waves\n\n", grid.Len(), len(grid.Waves()))
	for i, wave := range grid.Waves() {
		writers := 0
		for _, name := range wave {
			c, _ := grid.Get(name)
			if len(c.Meta().Writes) > 0 {
				writers++
			}
		}
		fmt.Printf("  wave %d (%2d capabilities, %d writers): %s\n",
			i, len(wave), writers, strings.Join(wave, ", "))
	}

	fmt.Println("\nsimulating 3 hours of a 16-node center...")
	exp := repro.StandardExperiment(11, 16, 3)
	grid.SetWorkers(8)
	results, errs := grid.RunAll(exp.Ctx)
	fmt.Printf("sweep done: %d results, %d capabilities without enough telemetry\n",
		len(results), len(errs))

	st := grid.ScheduleStats()
	fmt.Println("\nscheduler counters:")
	fmt.Printf("  sweeps                %d\n", st.Sweeps)
	fmt.Printf("  waves executed        %d\n", st.Waves)
	fmt.Printf("  max wave width        %d\n", st.MaxWaveWidth)
	fmt.Printf("  conflicts deferred    %d\n", st.ConflictsDeferred)
	fmt.Printf("  actuators overlapped  %d\n", st.ActuatorsOverlapped)
	fmt.Printf("  panics recovered      %d\n", st.Panics)

	// The actuators left their marks on disjoint surfaces concurrently.
	state := exp.DC.ActuatorState()
	fmt.Printf("\nactuator state after the sweep: cooling=%s setpoint=%.1fC budget=%.0fW queue=%d\n",
		state.CoolingMode, state.SetpointC, state.PowerBudgetW, state.QueueLength)
}
