// Facility cooling: the ENI-style Fig. 3 system (Bortot et al.) on the
// building-infrastructure pillar. A misconfigured plant (cold chiller
// setpoint) runs with and without the diagnose-and-prescribe loop; the
// example reports the PUE difference and the diagnostic chain's findings,
// including a crisis-fingerprint match of the two operating epochs.
//
// Run with: go run ./examples/facilitycooling
package main

import (
	"fmt"
	"log"

	"repro/internal/anomaly"
	"repro/internal/diagnostic"
	"repro/internal/facility"
	"repro/internal/oda"
	"repro/internal/prescriptive"
	"repro/internal/simulation"
	"repro/internal/systems"
)

func buildDC(seed int64) *simulation.DataCenter {
	cfg := simulation.DefaultConfig(seed)
	cfg.Nodes = 16
	cfg.Workload.MaxNodes = 8
	cfg.Workload.MeanInterarrival = 60
	dc := simulation.New(cfg)
	// The operator's misconfiguration: chiller forced on, water too cold.
	dc.Facility.SetMode(facility.ModeChiller)
	dc.Facility.SetSetpoint(15)
	return dc
}

func main() {
	const hours = 12

	fmt.Println("== baseline: misconfigured plant, no ODA ==")
	base := buildDC(7)
	base.RunFor(hours * 3600)
	fmt.Printf("cumulative PUE: %.4f\n\n", base.Facility.CumulativePUE())

	fmt.Println("== with the ENI-style diagnose+prescribe system ==")
	managed := buildDC(7)
	eni, err := systems.NewENI()
	if err != nil {
		log.Fatal(err)
	}
	eni.Deploy(managed)
	managed.AddController(prescriptive.CoolingModeSwitch{}.Controller())
	managed.AddController(prescriptive.FanControl{}.Controller())
	managed.RunFor(hours * 3600)
	fmt.Printf("cumulative PUE: %.4f (baseline %.4f)\n\n",
		managed.Facility.CumulativePUE(), base.Facility.CumulativePUE())

	// The analysis pipeline over the managed run's archive.
	ctx := &oda.RunContext{Store: managed.Store, From: 0, To: managed.Now() + 1, System: managed}
	stages, err := eni.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stages {
		fmt.Printf("stage %-12s %s\n", s.Type, s.Result.Summary)
	}

	// Crisis fingerprinting: label the baseline epoch as a known bad state
	// and check the managed plant no longer matches it.
	baseCtx := &oda.RunContext{Store: base.Store, From: 0, To: base.Now() + 1, System: base}
	badEpoch, err := diagnostic.BuildEpoch(baseCtx, "cold-chiller-misconfig", 0, base.Now())
	if err != nil {
		log.Fatal(err)
	}
	goodEpoch, err := diagnostic.BuildEpoch(ctx, "healthy", managed.Now()/2, managed.Now())
	if err != nil {
		log.Fatal(err)
	}
	cf := diagnostic.CrisisFingerprint{Library: []anomaly.Fingerprint{badEpoch, goodEpoch}}
	probe := *ctx
	probe.From = managed.Now() / 2
	res, err := cf.Run(&probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfingerprint check on managed plant: %s\n", res.Summary)
}
