// Telemetry pipeline: the collection fabric end to end, the way a real
// deployment wires it — per-node collection agents push batches over the
// binary wire protocol (TCP) to an aggregation server, which archives them
// in the TSDB; analytics then query the aggregated archive. The simulated
// nodes play the role of the hardware the agents instrument.
//
// Run with: go run ./examples/telemetrypipeline
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/collector"
	"repro/internal/simulation"
	"repro/internal/stats"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

func main() {
	// The aggregation side: a wire server feeding a TSDB.
	store := timeseries.NewStore(0)
	srv, err := wire.NewServer("127.0.0.1:0", func(b *wire.Batch) {
		for _, rec := range b.Records {
			for _, sm := range rec.Samples {
				_ = store.Append(rec.ID, rec.Kind, rec.Unit, sm.T, sm.V)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("aggregation server on", srv.Addr())

	// The monitored system: a small simulated center. Its built-in agent
	// is not used; instead one agent per node pushes over the wire, as a
	// per-host monitoring daemon would.
	cfg := simulation.DefaultConfig(3)
	cfg.Nodes = 8
	cfg.Workload.MaxNodes = 4
	cfg.Workload.MeanInterarrival = 120
	dc := simulation.New(cfg)

	var agents []*collector.Agent
	var clients []*wire.Client
	for _, node := range dc.Nodes {
		client, err := wire.Dial(srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		clients = append(clients, client)
		agent := collector.NewAgent("agent-"+node.Name(), time.Second)
		agent.AddSource(node.Source())
		// The wire push rides a bounded queue so TCP latency never stalls
		// the scrape cadence; Block keeps delivery lossless, and failed
		// sends retry with backoff under a per-attempt deadline.
		agent.AddSinkQueued(&collector.WireSink{
			Client:       client,
			MaxRetries:   2,
			SendDeadline: 2 * time.Second,
		}, collector.QueueConfig{Depth: 64, Policy: collector.Block})
		agents = append(agents, agent)
	}

	// Drive 4 virtual hours: physics steps plus a 60 s collection cadence
	// on every push agent.
	fmt.Println("simulating 4 virtual hours with per-node push agents...")
	const collectEvery = 60 * 1000
	nextCollect := int64(collectEvery)
	for dc.Now() < 4*3600*1000 {
		dc.Step()
		if dc.Now() >= nextCollect {
			for _, a := range agents {
				a.Tick(dc.Now())
			}
			nextCollect += collectEvery
		}
	}
	// Drain every agent's queue before closing the connections: Close
	// returns once each pump has pushed its accepted backlog to the wire.
	for _, a := range agents {
		a.Close()
	}
	for _, c := range clients {
		c.Close()
	}

	// Wait for the server to drain the TCP buffers.
	deadline := time.Now().Add(5 * time.Second)
	expect := uint64(len(agents)) * 240 // 240 collection rounds each
	for srv.Batches() < expect && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Printf("\nserver ingested %d batches, %d samples (%d protocol errors)\n",
		srv.Batches(), srv.Samples(), srv.Errors())
	fmt.Printf("archive: %d series, %d samples, %.1fx compressed\n",
		store.NumSeries(), store.NumSamples(), store.CompressionRatio())

	// Analytics over the aggregated archive: fleet power summary.
	var fleet stats.Online
	for _, id := range store.Select("node_power_watts", nil) {
		vals, err := store.SeriesValues(id, 0, dc.Now()+1)
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range vals {
			fleet.Add(v)
		}
	}
	s := fleet.Summary()
	fmt.Printf("fleet power over the window: mean %.0f W, min %.0f, max %.0f (%d samples)\n",
		s.Mean, s.Min, s.Max, s.Count)

	// Per-node latest snapshot, exactly what odad's /snapshot serves.
	fmt.Println("\nlatest node power:")
	for _, se := range store.Snapshot("node_power_watts", nil) {
		node, _ := se.ID.Labels.Get("node")
		fmt.Printf("  %-6s %7.1f W\n", node, se.Sample.V)
	}
}
