// Power management: the GEOPM-like Fig. 3 system on the system-hardware
// pillar. Instruction-mix signatures are predicted from telemetry and the
// DVFS governor clocks memory-bound nodes down; the example measures the
// energy/performance trade against an ungoverned twin and breaks the
// saving down by application class.
//
// Run with: go run ./examples/powermanagement
package main

import (
	"fmt"
	"log"

	"repro/internal/oda"
	"repro/internal/predictive"
	"repro/internal/simulation"
	"repro/internal/systems"
	"repro/internal/workload"
)

func run(seed int64, governed bool, hours float64) *simulation.DataCenter {
	cfg := simulation.DefaultConfig(seed)
	cfg.Nodes = 16
	cfg.Workload.MaxNodes = 8
	cfg.Workload.MeanInterarrival = 90
	dc := simulation.New(cfg)
	if governed {
		g, err := systems.NewGEOPM()
		if err != nil {
			log.Fatal(err)
		}
		g.Deploy(dc)
	}
	dc.RunFor(hours * 3600)
	return dc
}

func itEnergy(dc *simulation.DataCenter) float64 {
	var e float64
	for _, n := range dc.Nodes {
		e += n.Energy()
	}
	return e
}

func main() {
	const hours = 12
	fmt.Println("running ungoverned and governed twins (12 virtual hours each)...")
	base := run(11, false, hours)
	gov := run(11, true, hours)

	baseE, govE := itEnergy(base), itEnergy(gov)
	fmt.Printf("\nIT energy: baseline %.1f MJ -> governed %.1f MJ (%.1f%% saving)\n",
		baseE/1e6, govE/1e6, (1-govE/baseE)*100)

	// Runtime stretch per application class: the governor should cost
	// compute-bound jobs almost nothing and memory-bound jobs little.
	type acc struct{ stretch, n float64 }
	perClass := map[workload.Class]*acc{}
	for _, rec := range gov.Allocations() {
		if rec.End == 0 || rec.Killed {
			continue
		}
		a := perClass[rec.Job.Class]
		if a == nil {
			a = &acc{}
			perClass[rec.Job.Class] = a
		}
		a.stretch += rec.Job.RuntimeSeconds() / rec.Job.IdealRuntime()
		a.n++
	}
	fmt.Println("\nmean runtime stretch under the governor, by class:")
	for c := workload.Class(0); int(c) < workload.NumClasses; c++ {
		if a, ok := perClass[c]; ok && a.n > 0 {
			fmt.Printf("  %-12s %.3fx over %.0f jobs\n", c, a.stretch/a.n, a.n)
		}
	}

	// The predictive half: how well do intensity signatures extrapolate?
	ctx := &oda.RunContext{Store: gov.Store, From: 0, To: gov.Now() + 1, System: gov}
	res, err := predictive.InstMix{}.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninstruction-mix prediction: %s\n", res.Summary)
}
