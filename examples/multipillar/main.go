// Multi-pillar: the Powerstack-like Fig. 3 system. Application-level power
// prediction (applications pillar) feeds a scheduler power budget (system
// software pillar) while the DVFS governor trims node draw (system
// hardware pillar) — the cross-pillar coordination §V-B of the paper
// identifies as rare and valuable. The example holds an IT power cap and
// reports what it cost in queue performance.
//
// Run with: go run ./examples/multipillar
package main

import (
	"fmt"
	"log"

	"repro/internal/oda"
	"repro/internal/scheduler"
	"repro/internal/simulation"
	"repro/internal/systems"
)

const budgetW = 4200

func run(seed int64, deploy bool, hours float64) (peak float64, dc *simulation.DataCenter) {
	cfg := simulation.DefaultConfig(seed)
	cfg.Nodes = 16
	cfg.Workload.MaxNodes = 8
	cfg.Workload.MeanInterarrival = 45
	cfg.Policy = scheduler.PowerAware{}
	dc = simulation.New(cfg)
	if deploy {
		ps, err := systems.NewPowerstack(budgetW)
		if err != nil {
			log.Fatal(err)
		}
		ps.Deploy(dc)
	}
	end := int64(hours * 3600 * 1000)
	for dc.Now() < end {
		dc.Step()
		if p := dc.ITPower(); p > peak {
			peak = p
		}
	}
	return peak, dc
}

func main() {
	const hours = 12
	fmt.Printf("IT power budget: %d W on a 16-node machine\n\n", budgetW)

	basePeak, baseDC := run(31, false, hours)
	capPeak, capDC := run(31, true, hours)

	baseM := baseDC.Cluster.MetricsAt(baseDC.Now())
	capM := capDC.Cluster.MetricsAt(capDC.Now())
	fmt.Printf("%-12s peak IT %6.0f W   mean wait %6.0f s   finished %d\n",
		"baseline", basePeak, baseM.MeanWaitSec, baseM.FinishedJobs)
	fmt.Printf("%-12s peak IT %6.0f W   mean wait %6.0f s   finished %d\n",
		"powerstack", capPeak, capM.MeanWaitSec, capM.FinishedJobs)
	fmt.Printf("\npeak shaved by %.0f W; budget %s\n",
		basePeak-capPeak, heldOrNot(capPeak))

	// Show the staged pipeline that implements the system.
	ps, err := systems.NewPowerstack(budgetW)
	if err != nil {
		log.Fatal(err)
	}
	ctx := &oda.RunContext{Store: capDC.Store, From: 0, To: capDC.Now() + 1, System: capDC}
	stages, err := ps.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npipeline stages (applications -> system software -> hardware):")
	for _, s := range stages {
		fmt.Printf("  %-12s %s\n", s.Type, s.Result.Summary)
	}
	fmt.Println("\ncells covered:")
	fmt.Println(systems.RenderFig3([]*systems.System{ps}))
}

func heldOrNot(peak float64) string {
	// The cap governs job starts; idle draw and in-flight jobs can push
	// transient peaks somewhat above the budget.
	if peak <= budgetW*1.2 {
		return "held (within start-control tolerance)"
	}
	return "exceeded"
}
