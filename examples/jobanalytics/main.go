// Job analytics: the applications pillar end to end. A day of operation
// produces a finished-job corpus; the example then runs duration
// prediction (beats the user's walltime request), resource prediction,
// telemetry fingerprinting (catching cryptominers), roofline
// classification and code recommendations.
//
// Run with: go run ./examples/jobanalytics
package main

import (
	"fmt"
	"log"

	"repro/internal/descriptive"
	"repro/internal/diagnostic"
	"repro/internal/oda"
	"repro/internal/predictive"
	"repro/internal/prescriptive"
	"repro/internal/simulation"
)

func main() {
	cfg := simulation.DefaultConfig(23)
	cfg.Nodes = 16
	cfg.Workload.MaxNodes = 8
	cfg.Workload.MeanInterarrival = 45
	cfg.Workload.MinerFrac = 0.05 // some abuse to catch
	dc := simulation.New(cfg)
	fmt.Println("simulating 24 hours of user jobs...")
	dc.RunFor(24 * 3600)

	ctx := &oda.RunContext{Store: dc.Store, From: 0, To: dc.Now() + 1, System: dc}
	m := dc.Cluster.MetricsAt(dc.Now())
	fmt.Printf("corpus: %d finished jobs, utilization %.0f%%\n\n", m.FinishedJobs, m.Utilization*100)

	steps := []struct {
		title string
		cap   oda.Capability
	}{
		{"descriptive / roofline", descriptive.Roofline{}},
		{"descriptive / slowdown KPI", descriptive.Slowdown{}},
		{"diagnostic  / app fingerprint", diagnostic.AppFingerprint{Seed: 3}},
		{"diagnostic  / perf patterns", diagnostic.PerfPatterns{}},
		{"diagnostic  / code issues", diagnostic.CodeIssues{}},
		{"predictive  / job duration", predictive.JobDuration{Seed: 3}},
		{"predictive  / job power", predictive.ResourceUsage{Seed: 3}},
		{"prescriptive/ code advice", prescriptive.CodeRecommend{}},
	}
	for _, s := range steps {
		res, err := s.cap.Run(ctx)
		if err != nil {
			log.Fatalf("%s: %v", s.title, err)
		}
		fmt.Printf("%-30s %s\n", s.title, res.Summary)
	}
}
