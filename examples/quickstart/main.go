// Quickstart: simulate a small HPC data center, archive its telemetry,
// and walk one analysis through all four ODA types — descriptive KPI,
// diagnostic anomaly scan, predictive forecast, prescriptive action.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/descriptive"
	"repro/internal/diagnostic"
	"repro/internal/oda"
	"repro/internal/predictive"
	"repro/internal/prescriptive"
	"repro/internal/simulation"
)

func main() {
	// 1. A 16-node virtual data center, six virtual hours of operation.
	cfg := simulation.DefaultConfig(42)
	cfg.Nodes = 16
	cfg.Workload.MaxNodes = 8
	dc := simulation.New(cfg)
	fmt.Println("simulating 6 hours of a 16-node center...")
	dc.RunFor(6 * 3600)

	ctx := &oda.RunContext{Store: dc.Store, From: 0, To: dc.Now() + 1, System: dc}

	// 2. The staged pipeline of the paper's Fig. 2.
	var p oda.Pipeline
	must(p.Append(oda.Descriptive, descriptive.PUE{}))
	must(p.Append(oda.Diagnostic, diagnostic.InfraAnomaly{}))
	must(p.Append(oda.Predictive, predictive.KPIForecast{}))
	must(p.Append(oda.Prescriptive, prescriptive.SetpointOptimizer{}))

	// Append validated each stage's declared footprint against its
	// upstream; a mis-wired chain would surface here.
	for _, w := range p.Warnings() {
		fmt.Println("pipeline warning:", w)
	}

	results, err := p.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-12s %-30s -> %s\n", r.Type, "("+r.Type.Question()+")", r.Result.Summary)
	}

	fmt.Printf("\ntelemetry archived: %d series, %d samples (%.1fx compressed)\n",
		dc.Store.NumSeries(), dc.Store.NumSamples(), dc.Store.CompressionRatio())
	fmt.Printf("facility now at setpoint %.1fC, cumulative PUE %.4f\n",
		dc.Facility.Setpoint(), dc.Facility.CumulativePUE())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
