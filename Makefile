GO ?= go

.PHONY: build test race vet bench bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package with shared-state concurrency:
# the sharded TSDB, the grid worker pool, the pub/sub bus and the
# parallel simulation stepper. go vet runs first as a cheap gate.
race: vet
	$(GO) test -race ./internal/timeseries ./internal/oda ./internal/bus ./internal/simulation

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1s ./...

# The PR 1 contention benches; -cpu 1,4 exposes lock-contention scaling
# (see BENCH_PR1.json for recorded before/after numbers).
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkStoreQueryParallel|BenchmarkGridRunAll|BenchmarkSimulation_StepThroughput' -cpu 1,4 -benchtime 2s ./
	$(GO) test -run xxx -bench 'BenchmarkStoreMixedParallel' -cpu 1,4 -benchtime 2s ./internal/timeseries/
