GO ?= go

# Coverage floor: the seed baseline measured at 85.3% total statements;
# `make cover` fails if the tree regresses below this.
COVER_MIN ?= 85.0

# How long `make fuzz-short` runs each fuzz target.
FUZZTIME ?= 10s

# Knobs for the `make chaos` long campaign (see internal/chaos).
CHAOS_SEED ?= 1
CHAOS_DURATION ?= 5m
CHAOS_INTENSITY ?= 2

.PHONY: build test race vet bench bench-parallel bench-allocs bench-longwindow bench-cluster bench-rebalance bench-ingest cover fuzz-short crash-test lint-footprints chaos-short chaos

build:
	$(GO) build ./...

test: lint-footprints chaos-short bench-ingest
	$(GO) test ./...

# Footprint convention gate: every registered prescriptive capability must
# declare a non-empty write set (oda.LintFootprints), and no built-in may
# still lean on the legacy Exclusive bit. Runs the dedicated tests only, so
# it is cheap enough to front every test/race invocation.
lint-footprints:
	$(GO) test -run 'TestFootprintLint|TestFullGridDeclaresFootprints' .

# Race-detector pass over every package with shared-state concurrency:
# the sharded TSDB (cursor pool + decoded-chunk cache), the grid worker
# pool and tuner, the pub/sub bus, the parallel simulation stepper, the
# async collection pipeline (slow-sink / backpressure stress lives in
# collector's pipeline tests), the wire server/client, the par primitives,
# the query front door and the cluster router (scatter goroutines, hint
# queues, replication pump). go vet runs first as a cheap gate; the chaos
# package's race pass lives in chaos-short.
race: vet lint-footprints chaos-short
	$(GO) test -race ./internal/timeseries ./internal/oda ./internal/bus ./internal/simulation ./internal/collector ./internal/persist ./internal/wire ./internal/par ./internal/resultcache ./internal/quota ./internal/queryfront ./internal/cluster ./cmd/odad

# Seeded short chaos campaigns under the race detector: the deterministic
# fault-injection harness (internal/chaos) runs 30s-virtual-time campaigns
# across collector → wire → store and checks all five end-to-end
# invariants (sample conservation, byte-identical crash recovery,
# planner/raw bit-parity, front-door quota/cache consistency, the
# kill-one-peer cluster leg: conservation across peers, hinted-handoff
# drain, replication convergence, degraded-read and post-heal query
# parity; and the membership leg: a node joins AND another dies
# mid-campaign — epoch convergence, 1/N movement bound, per-key
# durability and post-heal parity). A failure prints a one-line repro
# string replayable via
# `odachaos -repro`.
chaos-short:
	$(GO) test -race -count=1 ./internal/chaos

# Long fault-injection campaign via the standalone driver; emits the full
# summary (counters, verdicts, fingerprint) as JSON for CI artifacts.
# Override CHAOS_SEED / CHAOS_DURATION / CHAOS_INTENSITY to vary it.
chaos:
	$(GO) run ./cmd/odachaos -seed $(CHAOS_SEED) -duration $(CHAOS_DURATION) -intensity $(CHAOS_INTENSITY) -json

# Durability torture pass: the randomized torn-write harness, the
# kill-and-recover matrix across all fsync policies, and the concurrent
# group-commit test, all under the race detector.
crash-test:
	$(GO) test -race -v -run 'TestTornWrite|TestKillAndRecover|TestConcurrentAppendersGroupCommit|TestCorruptNewestSnapshot|TestAcknowledgedAppends' ./internal/persist

# Coverage report with a regression gate: prints per-function coverage for
# the total and fails when total statement coverage drops below COVER_MIN
# (the seed baseline).
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	awk -v t=$$total -v min=$(COVER_MIN) 'BEGIN { \
		if (t+0 < min+0) { printf "FAIL: total coverage %.1f%% below threshold %.1f%%\n", t, min; exit 1 } \
		printf "OK: total coverage %.1f%% >= threshold %.1f%%\n", t, min }'

# Short fuzzing pass over the fuzz targets (native Go fuzzing; seed
# corpora live in testdata/fuzz/). go test accepts one -fuzz pattern per
# package, so the targets run back to back.
fuzz-short:
	$(GO) test -run xxx -fuzz FuzzBitstreamRoundTrip -fuzztime $(FUZZTIME) ./internal/timeseries
	$(GO) test -run xxx -fuzz FuzzWireDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run xxx -fuzz FuzzDictDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run xxx -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/persist
	$(GO) test -run xxx -fuzz FuzzQueryRangeParse -fuzztime $(FUZZTIME) ./internal/queryfront
	$(GO) test -run xxx -fuzz FuzzChaosScheduleParse -fuzztime $(FUZZTIME) ./internal/chaos
	$(GO) test -run xxx -fuzz FuzzRingPlacement -fuzztime $(FUZZTIME) ./internal/cluster
	$(GO) test -run xxx -fuzz FuzzTopologyTransition -fuzztime $(FUZZTIME) ./internal/cluster

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1s ./...

# Allocation budget gate for the PR 4 streaming query engine: the cursor
# sweeps and the pooled wire encode path must stay at exactly 0 allocs/op
# (see BENCH_PR4.json for recorded before/after numbers). Any regression —
# a scratch buffer that stops being reused, a closure that starts
# escaping — fails the build here rather than showing up as GC pressure
# in production sweeps.
bench-allocs:
	@out=$$($(GO) test -run xxx -bench 'BenchmarkStoreCursorSweep' -benchmem -benchtime 50x ./internal/timeseries; \
	        $(GO) test -run xxx -bench 'BenchmarkAppendBatchReuse|BenchmarkBatchWriterSend' -benchmem -benchtime 1000x ./internal/wire); \
	echo "$$out"; \
	echo "$$out" | awk '/^Benchmark/ { if ($$(NF-1)+0 > 0) { printf "FAIL: %s allocates %s allocs/op (budget 0)\n", $$1, $$(NF-1); bad=1 } } \
		END { if (bad) exit 1; print "OK: streaming paths within 0 allocs/op budget" }'

# Rollup-tier planner gate for the PR 6 long-window workload: the planned
# 30-day/1h-step aggregation must beat the raw scan by >= 50x, and the
# planned single-value reduction must stay at exactly 0 allocs/op (see
# BENCH_PR6.json for recorded numbers). One store build (~2.6M appends) is
# shared across the three benchmarks via sync.Once.
bench-longwindow:
	@out=$$($(GO) test -run xxx -bench 'BenchmarkLongWindowQuery|BenchmarkStorePlannedCursorSweep' -benchmem -benchtime 20x ./internal/timeseries); \
	echo "$$out"; \
	echo "$$out" | awk ' \
		/^BenchmarkLongWindowQueryRaw/ { raw=$$3 } \
		/^BenchmarkLongWindowQueryPlanned/ { planned=$$3 } \
		/^BenchmarkStorePlannedCursorSweep/ { if ($$(NF-1)+0 > 0) { printf "FAIL: planned cursor path allocates %s allocs/op (budget 0)\n", $$(NF-1); bad=1 } } \
		END { \
			if (raw == "" || planned == "" || planned+0 == 0) { print "FAIL: long-window benchmarks missing from output"; exit 1 } \
			ratio = raw / planned; \
			printf "long-window speedup: %.0fx (raw %s ns/op / planned %s ns/op)\n", ratio, raw, planned; \
			if (ratio < 50) { printf "FAIL: speedup %.0fx below 50x floor\n", ratio; bad=1 } \
			if (bad) exit 1; \
			print "OK: planned path >= 50x and 0 allocs/op" }'

# Series-ref ingest gate for the PR 9 fast path: the ref-addressed append
# (resolved SeriesRefs, no key building / hashing / registry lookups) must
# beat the keyed batch path by >= 2x and stay at exactly 0 allocs/op (see
# BENCH_PR9.json for recorded numbers). Runs as part of `make test` so a
# regression in the hot ingest loop fails the build.
bench-ingest:
	@out=$$($(GO) test -run xxx -bench 'BenchmarkIngestKeyed|BenchmarkIngestRefs' -benchmem -benchtime 2000x ./internal/timeseries); \
	echo "$$out"; \
	echo "$$out" | awk ' \
		/^BenchmarkIngestKeyed/ { keyed=$$3 } \
		/^BenchmarkIngestRefs/ { refs=$$3; if ($$(NF-1)+0 > 0) { printf "FAIL: ref ingest allocates %s allocs/op (budget 0)\n", $$(NF-1); bad=1 } } \
		END { \
			if (keyed == "" || refs == "" || refs+0 == 0) { print "FAIL: ingest benchmarks missing from output"; exit 1 } \
			ratio = keyed / refs; \
			printf "ref ingest speedup: %.1fx (keyed %s ns/op / refs %s ns/op)\n", ratio, keyed, refs; \
			if (ratio < 2) { printf "FAIL: speedup %.1fx below 2x floor\n", ratio; bad=1 } \
			if (bad) exit 1; \
			print "OK: ref ingest >= 2x keyed and 0 allocs/op" }'

# Distributed-query cost benchmark: the same scatter-gather ReduceMany
# against a 1-node cluster (local fast-path) and a 3-node cluster over
# in-memory pipes. The spread is the price of distribution — wire round
# trips, not data volume, since only fixed-size partial aggregates cross
# the network (see BENCH_PR8.json for recorded numbers).
bench-cluster:
	$(GO) test -run xxx -bench BenchmarkClusterScatterQuery -benchmem -benchtime 2s ./internal/cluster

# The PR 10 membership benches: the full join handoff (snapshot + WAL tail +
# epoch commit) against a loaded cluster, and the fixed per-node cost of
# adopting a bumped epoch (see BENCH_PR10.json for recorded numbers).
bench-rebalance:
	$(GO) test -run xxx -bench 'BenchmarkJoinHandoff|BenchmarkEpochFlip' -benchmem -benchtime 20x ./internal/cluster

# The PR 1 contention benches; -cpu 1,4 exposes lock-contention scaling
# (see BENCH_PR1.json for recorded before/after numbers).
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkStoreQueryParallel|BenchmarkGridRunAll|BenchmarkSimulation_StepThroughput' -cpu 1,4 -benchtime 2s ./
	$(GO) test -run xxx -bench 'BenchmarkStoreMixedParallel' -cpu 1,4 -benchtime 2s ./internal/timeseries/
