package repro

import (
	"testing"

	"repro/internal/oda"
)

func TestFullGridCoversAllSixteenCells(t *testing.T) {
	g, err := FullGrid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() < 30 {
		t.Fatalf("only %d capabilities registered", g.Len())
	}
	if gaps := g.Gaps(); len(gaps) != 0 {
		t.Fatalf("grid has empty cells: %v", gaps)
	}
	// The framework's headline observations hold for our implementation
	// too: some capabilities span types and pillars, most do not.
	if len(g.MultiType()) == 0 {
		t.Fatal("no multi-type capabilities")
	}
	if len(g.MultiPillar()) == 0 {
		t.Fatal("no multi-pillar capabilities")
	}
	if len(g.MultiPillar())*2 > g.Len() {
		t.Fatal("multi-pillar capabilities should be the minority (paper §V-B)")
	}
}

func TestStandardExperimentEndToEnd(t *testing.T) {
	run := StandardExperiment(42, 16, 8)
	if run.DC.SubmittedJobs == 0 || run.DC.Store.NumSamples() == 0 {
		t.Fatal("standard experiment produced no activity")
	}
	g, err := FullGrid()
	if err != nil {
		t.Fatal(err)
	}
	results, errs := g.RunAll(run.Ctx)
	// Every capability must either produce a result or a diagnosable error;
	// on an 8-hour window we expect the vast majority to succeed.
	if len(results) < g.Len()*3/4 {
		t.Fatalf("only %d/%d capabilities succeeded; errors: %v", len(results), g.Len(), errs)
	}
	for name, err := range errs {
		t.Logf("capability %s declined: %v", name, err)
	}
	for name, r := range results {
		if r.Summary == "" {
			t.Errorf("capability %s produced empty summary", name)
		}
	}
}

func TestStandardExperimentDeterminism(t *testing.T) {
	a := StandardExperiment(7, 16, 2)
	b := StandardExperiment(7, 16, 2)
	if a.DC.Store.NumSamples() != b.DC.Store.NumSamples() {
		t.Fatal("standard experiment not deterministic")
	}
	if a.DC.SubmittedJobs != b.DC.SubmittedJobs {
		t.Fatal("job streams differ")
	}
}

func TestGridTableRendersAllRows(t *testing.T) {
	g, err := FullGrid()
	if err != nil {
		t.Fatal(err)
	}
	table := g.RenderTable()
	for _, typ := range oda.Types() {
		found := false
		for _, cell := range oda.AllCells() {
			if cell.Type != typ {
				continue
			}
			for _, c := range g.At(cell) {
				if len(c.Meta().Refs) > 0 {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("type %s has no cited capability", typ)
		}
	}
	if len(table) < 500 {
		t.Fatalf("table suspiciously small:\n%s", table)
	}
}
