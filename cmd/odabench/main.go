// Command odabench regenerates the paper's artifacts: every table and
// figure has an experiment that prints its rows (see DESIGN.md §3 and
// EXPERIMENTS.md).
//
// Usage:
//
//	odabench -exp table1            # one experiment
//	odabench -exp all               # every experiment, paper order
//	odabench -list                  # available experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment name or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment names")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	if *exp == "all" {
		reports, err := experiments.All(*seed)
		for _, r := range reports {
			fmt.Printf("######## %s ########\n%s\n", r.Name, r.Text)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "odabench:", err)
			os.Exit(1)
		}
		return
	}
	r, err := experiments.ByName(*exp, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odabench:", err)
		os.Exit(1)
	}
	fmt.Println(r.Text)
}
