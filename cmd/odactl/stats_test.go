package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestFetchAndRenderStats stands up a fake odad /stats endpoint and checks
// the fetch/flatten pipeline end to end, including URL normalization.
func TestFetchAndRenderStats(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/stats" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{
			"samples": 1200, "series": 4,
			"cursor_pool_gets": 37, "cursor_pool_reuse": 33,
			"persist": {"wal_records": 9},
			"scheduler": {
				"sweeps": 3, "waves": 12, "max_wave_width": 19,
				"conflicts_deferred": 45, "actuators_overlapped": 6
			},
			"rollup": {
				"folds": 480, "seals": 7, "raw_plans": 1,
				"tier_60000ms_series": 4, "tier_60000ms_picks": 11,
				"result_cache_hits": 5, "quota_rejected": 2
			},
			"cluster": {
				"self": "n1", "nodes": ["n1", "n2"], "replication": 2,
				"peers": [{"id": "n2", "up": true, "forwarded_entries": 88}],
				"replicas": [{"leader": "n2", "lag_bytes": 0}]
			}
		}`))
	}))
	defer srv.Close()

	for _, url := range []string{srv.URL, srv.URL + "/", srv.URL + "/stats", strings.TrimPrefix(srv.URL, "http://")} {
		stats, err := fetchStats(url)
		if err != nil {
			t.Fatalf("fetchStats(%q): %v", url, err)
		}
		out := renderStats(stats)
		for _, want := range []string{
			"samples", "cursor_pool_gets", "cursor_pool_reuse", "persist.wal_records",
			"scheduler.sweeps", "scheduler.max_wave_width", "scheduler.actuators_overlapped",
			"rollup.folds", "rollup.tier_60000ms_picks", "rollup.result_cache_hits",
			"rollup.quota_rejected",
			"cluster.self", "cluster.peers.0.id", "cluster.peers.0.forwarded_entries",
			"cluster.replicas.0.lag_bytes",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("fetchStats(%q) render missing %q:\n%s", url, want, out)
			}
		}
	}

	if _, err := fetchStats(srv.URL + "/missing/stats"); err == nil {
		t.Fatal("non-200 response should error")
	}
}
