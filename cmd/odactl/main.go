// Command odactl inspects the ODA framework itself: the 4x4 grid of
// registered capabilities (Table I), the encoded literature survey, the
// four analytics types and their questions, and the Fig. 3 composed
// systems.
//
// Usage:
//
//	odactl grid        # render the capability grid as a markdown table
//	odactl survey      # survey statistics from the paper's Table I
//	odactl types       # the four analytics types and their questions
//	odactl pillars     # the four pillars
//	odactl systems     # Fig. 3 composed systems coverage
//	odactl works       # every surveyed work and its cells
//	odactl stats URL   # fetch and render a running odad's /stats document
//	odactl query -series KEY -from MS -to MS [-step MS] [-fn mean] [-url http://host:9901]
//	                   # planned query through odad's /query front door
//	odactl cluster status URL      # topology epoch, members, peer health
//	odactl cluster join URL SEED   # tell the node at URL to join SEED's cluster
//	odactl cluster leave URL       # tell the node at URL to hand off and leave
package main

import (
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/experiments"
	"repro/internal/oda"
	"repro/internal/systems"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: odactl {grid|survey|types|pillars|systems|works|stats URL|query -series KEY ...|cluster {status|join|leave} URL ...}")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	if os.Args[1] == "query" {
		if err := runQuery(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	if os.Args[1] == "cluster" {
		if err := runCluster(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	if os.Args[1] == "stats" {
		if len(os.Args) != 3 {
			usage()
		}
		stats, err := fetchStats(os.Args[2])
		if err != nil {
			fatal(err)
		}
		fmt.Print(renderStats(stats))
		return
	}
	if len(os.Args) != 2 {
		usage()
	}
	switch os.Args[1] {
	case "grid":
		g, err := repro.FullGrid()
		if err != nil {
			fatal(err)
		}
		fmt.Println(g.RenderTable())
		fmt.Printf("%d capabilities; multi-pillar: %d; multi-type: %d; empty cells: %d\n",
			g.Len(), len(g.MultiPillar()), len(g.MultiType()), len(g.Gaps()))
	case "survey":
		r, err := experiments.Survey()
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Text)
	case "types":
		for _, t := range oda.Types() {
			fmt.Printf("%-14s %s\n", t, t.Question())
		}
	case "pillars":
		for _, p := range oda.Pillars() {
			fmt.Println(p)
		}
	case "systems":
		all, err := systems.All()
		if err != nil {
			fatal(err)
		}
		fmt.Println(systems.RenderFig3(all))
	case "works":
		works := oda.WorksFromCatalog(oda.Catalog())
		for _, w := range works {
			cells := make([]string, len(w.Cells))
			for i, c := range w.Cells {
				cells[i] = c.String()
			}
			fmt.Printf("%-6s %s\n", w.Ref, strings.Join(cells, ", "))
		}
		fmt.Printf("\n%d works\n", len(works))
	default:
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "odactl:", err)
	os.Exit(1)
}
