package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// runQuery implements `odactl query`: the client side of odad's query front
// door. Without -step it calls /query (a single planned reduction); with
// -step it calls /query_range and prints one "start value" line per bucket.
func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	base := fs.String("url", "http://127.0.0.1:9901", "odad HTTP base URL")
	series := fs.String("series", "", "series key, as shown by /snapshot (required)")
	from := fs.Int64("from", 0, "window start, unix ms (inclusive)")
	to := fs.Int64("to", 0, "window end, unix ms (exclusive)")
	step := fs.Int64("step", 0, "bucket width in ms (0 = single reduction via /query)")
	fn := fs.String("fn", "mean", "aggregation: mean|sum|min|max|count|rate|std|p95")
	tenant := fs.String("tenant", "", "X-ODA-Tenant header value")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *series == "" {
		return fmt.Errorf("query: -series is required")
	}

	q := url.Values{}
	q.Set("series", *series)
	q.Set("from", fmt.Sprint(*from))
	q.Set("to", fmt.Sprint(*to))
	q.Set("fn", *fn)
	endpoint := "/query"
	if *step > 0 {
		endpoint = "/query_range"
		q.Set("step", fmt.Sprint(*step))
	}
	target := *base
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	target = strings.TrimSuffix(target, "/") + endpoint + "?" + q.Encode()

	req, err := http.NewRequest("GET", target, nil)
	if err != nil {
		return err
	}
	if *tenant != "" {
		req.Header.Set("X-ODA-Tenant", *tenant)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", target, resp.Status)
	}

	if *step > 0 {
		var body struct {
			TierStep int64 `json:"tier_step"`
			Points   []struct {
				Start int64   `json:"start"`
				Value float64 `json:"value"`
			} `json:"points"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return err
		}
		fmt.Printf("# %s of %s, step %dms, served by %s\n", *fn, *series, *step, tierName(body.TierStep))
		for _, p := range body.Points {
			fmt.Printf("%d %g\n", p.Start, p.Value)
		}
		return nil
	}
	var body struct {
		Value    float64 `json:"value"`
		Count    int64   `json:"count"`
		TierStep int64   `json:"tier_step"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return err
	}
	fmt.Printf("%s(%s) = %g over %d samples, served by %s\n", *fn, *series, body.Value, body.Count, tierName(body.TierStep))
	return nil
}

// tierName renders a planner tier step for humans.
func tierName(step int64) string {
	if step == 0 {
		return "raw scan"
	}
	return fmt.Sprintf("%s rollups", time.Duration(step)*time.Millisecond)
}
