package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// fetchStats GETs an odad /stats document. url may be the daemon's HTTP
// base ("http://host:9901") or the full endpoint; a bare host:port gets an
// http scheme prepended.
func fetchStats(url string) (map[string]any, error) {
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/stats") {
		url = strings.TrimSuffix(url, "/") + "/stats"
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, fmt.Errorf("%s: decode: %w", url, err)
	}
	return stats, nil
}

// renderStats flattens the stats document into sorted "key  value" lines,
// nesting sections (like persist) with a dotted prefix.
func renderStats(stats map[string]any) string {
	var lines []string
	var walk func(prefix string, m map[string]any)
	walk = func(prefix string, m map[string]any) {
		for k, v := range m {
			if sub, ok := v.(map[string]any); ok {
				walk(prefix+k+".", sub)
				continue
			}
			// Lists of objects (the cluster section's peers/replicas) flatten
			// with an index segment: cluster.peers.0.up  true
			if arr, ok := v.([]any); ok {
				maps := len(arr) > 0
				for _, el := range arr {
					if _, ok := el.(map[string]any); !ok {
						maps = false
						break
					}
				}
				if maps {
					for i, el := range arr {
						walk(fmt.Sprintf("%s%s.%d.", prefix, k, i), el.(map[string]any))
					}
					continue
				}
			}
			lines = append(lines, fmt.Sprintf("%-28s %v", prefix+k, v))
		}
	}
	walk("", stats)
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
