package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("runQuery: %v (output %q)", runErr, out)
	}
	return string(out)
}

// TestRunQuery stands up a fake odad front door and drives both client
// modes end to end: the single reduction and the step-bucketed range.
func TestRunQuery(t *testing.T) {
	var gotPath, gotTenant string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		gotTenant = r.Header.Get("X-ODA-Tenant")
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/query":
			if r.URL.Query().Get("series") == "" || r.URL.Query().Get("step") != "" {
				http.Error(w, "bad params", 400)
				return
			}
			_, _ = w.Write([]byte(`{"value": 212.5, "count": 720, "tier_step": 3600000}`))
		case "/query_range":
			if r.URL.Query().Get("step") != "60000" {
				http.Error(w, "bad step", 400)
				return
			}
			_, _ = w.Write([]byte(`{"tier_step": 60000, "points": [{"start": 0, "value": 1.5}, {"start": 60000, "value": 2}]}`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	out := captureStdout(t, func() error {
		return runQuery([]string{"-url", srv.URL, "-series", "power{node=n0}", "-from", "0", "-to", "3600000", "-fn", "sum", "-tenant", "ops"})
	})
	if gotPath != "/query" || gotTenant != "ops" {
		t.Fatalf("request: path %q tenant %q", gotPath, gotTenant)
	}
	for _, want := range []string{"212.5", "720", "1h0m0s rollups"} {
		if !strings.Contains(out, want) {
			t.Fatalf("reduce output missing %q:\n%s", want, out)
		}
	}

	out = captureStdout(t, func() error {
		return runQuery([]string{"-url", strings.TrimPrefix(srv.URL, "http://"), "-series", "x", "-from", "0", "-to", "120000", "-step", "60000"})
	})
	if gotPath != "/query_range" {
		t.Fatalf("range request hit %q", gotPath)
	}
	for _, want := range []string{"0 1.5", "60000 2", "1m0s rollups"} {
		if !strings.Contains(out, want) {
			t.Fatalf("range output missing %q:\n%s", want, out)
		}
	}

	if err := runQuery([]string{"-url", srv.URL, "-from", "0", "-to", "1"}); err == nil {
		t.Fatal("missing -series accepted")
	}
	if err := runQuery([]string{"-url", srv.URL + "/nope", "-series", "x", "-from", "0", "-to", "1"}); err == nil {
		t.Fatal("non-200 response should error")
	}
	if tierName(0) != "raw scan" {
		t.Fatalf("tierName(0) = %q", tierName(0))
	}
}
