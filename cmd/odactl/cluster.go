package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// runCluster implements `odactl cluster join|leave|status`, the operator
// surface for runtime membership changes against a clustered odad's HTTP
// endpoint:
//
//	odactl cluster status http://node:9901
//	odactl cluster join   http://joiner:9901 seed-host:9900
//	odactl cluster leave  http://node:9901
//
// join is addressed to the JOINING node and names any current member's
// cluster (wire) address as the seed; leave is addressed to the node that
// should hand off its data and depart.
func runCluster(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: odactl cluster {status URL | join URL SEED | leave URL}")
	}
	sub, base := args[0], httpBase(args[1])
	client := &http.Client{Timeout: 60 * time.Second}
	switch sub {
	case "status":
		resp, err := client.Get(base + "/cluster/status")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s: %s", base, resp.Status, strings.TrimSpace(string(body)))
		}
		var stats map[string]any
		if err := json.Unmarshal(body, &stats); err != nil {
			return fmt.Errorf("decode status: %w", err)
		}
		fmt.Print(renderStats(stats))
		return nil
	case "join":
		if len(args) != 3 {
			return fmt.Errorf("usage: odactl cluster join URL SEED (seed = any current member's cluster address)")
		}
		return clusterPost(client, base+"/cluster/join?seed="+url.QueryEscape(args[2]))
	case "leave":
		return clusterPost(client, base+"/cluster/leave")
	default:
		return fmt.Errorf("unknown cluster subcommand %q (want status, join or leave)", sub)
	}
}

func clusterPost(client *http.Client, target string) error {
	resp, err := client.Post(target, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Print(string(body))
	return nil
}

// httpBase normalizes an odad HTTP address: bare host:port gets a scheme,
// trailing slashes drop.
func httpBase(s string) string {
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimSuffix(s, "/")
}
