// Command odachaos runs a deterministic fault-injection campaign against
// the collector → wire → store stack and reports the end-to-end invariant
// verdicts. The seed fully determines the fault timeline, so a failing
// campaign is replayed bit-for-bit anywhere from the one-line repro string
// it prints:
//
//	odachaos -seed 42 -duration 2m -intensity 2
//	odachaos -repro "chaos:v1:seed=42:dur=120000:nodes=12:sources=4:intensity=2"
//
// The campaign injects sensor dropout/stuck/noise, slow and erroring
// sinks, wire-link delay/drop/truncation/partition, hard store kills with
// in-place recovery, and correlated node failures in a simulated data
// center — then checks sample conservation, byte-identical crash
// recovery, planner/raw bit-parity and /query front-door quota/cache
// consistency. Exit status 0 means every invariant held; 1 means a
// checker failed (the repro line is printed); 2 means the campaign could
// not run.
//
// -json emits the full campaign summary (counters, verdicts, fingerprint)
// as a JSON document for CI artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "campaign seed (determines the whole fault timeline)")
	duration := flag.Duration("duration", 30*time.Second, "campaign length in virtual time (one collection tick per second)")
	nodes := flag.Int("nodes", 12, "simulated data-center size for the correlated-failure leg")
	sources := flag.Int("sources", 4, "telemetry sources feeding the agent")
	intensity := flag.Float64("intensity", 1, "fault event density multiplier")
	repro := flag.String("repro", "", "replay a repro string (overrides the other campaign flags)")
	jsonOut := flag.Bool("json", false, "emit the campaign summary as JSON")
	dataDir := flag.String("data-dir", "", "durable store directory (default: a fresh temp dir, removed afterwards)")
	flag.Parse()

	cfg := chaos.Config{Seed: *seed, Duration: *duration, Nodes: *nodes, Sources: *sources, Intensity: *intensity}
	if *repro != "" {
		var err error
		if cfg, err = chaos.ParseRepro(*repro); err != nil {
			log.Printf("odachaos: %v", err)
			os.Exit(2)
		}
	}

	dir := *dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "odachaos-*")
		if err != nil {
			log.Printf("odachaos: %v", err)
			os.Exit(2)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	res, err := chaos.Run(cfg, dir)
	if err != nil {
		log.Printf("odachaos: campaign aborted: %v", err)
		log.Printf("odachaos: reproduce with: odachaos -repro %q", cfg.Repro())
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Printf("odachaos: %v", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("campaign %s: %d ticks, %d fault events, %d readings, %d store crashes\n",
			res.Repro, res.Ticks, res.Events, res.Readings, res.Crashes)
		fmt.Printf("wire: %d sent ok, %d failed, %d redials, %d severed conns, %d truncated writes, %d refused dials\n",
			res.WireOK, res.WireFailed, res.Redials, res.Severed, res.Truncated, res.RefusedDials)
		fmt.Printf("sim: %d node failures injected, %d failure events logged\n",
			res.NodeFailuresInjected, res.SimFailureEvents)
		for _, c := range res.Checks {
			status := "ok"
			if !c.Pass {
				status = "FAIL — " + c.Detail
			}
			fmt.Printf("check %-16s %s\n", c.Name+":", status)
		}
		fmt.Printf("fingerprint: %s\n", res.Fingerprint)
	}

	if !res.Passed {
		fmt.Fprintf(os.Stderr, "odachaos: invariants violated — reproduce with: odachaos -repro %q\n", res.Repro)
		os.Exit(1)
	}
}
