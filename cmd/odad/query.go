package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/quota"
	"repro/internal/resultcache"
	"repro/internal/timeseries"
)

// queryFront is the HTTP query front door: planned queries against the
// store behind a sharded LRU result cache (TTL-bounded staleness) and
// per-tenant token-bucket quotas. Tenants identify themselves with the
// X-ODA-Tenant header; missing means the shared "anonymous" tenant.
type queryFront struct {
	store  *timeseries.Store
	cache  *resultcache.Cache
	quotas *quota.Limiter
}

func newQueryFront(store *timeseries.Store, cacheEntries int, cacheTTL time.Duration, rate, burst float64) *queryFront {
	return &queryFront{
		store:  store,
		cache:  resultcache.New(cacheEntries, cacheTTL),
		quotas: quota.New(rate, burst),
	}
}

// parseRollupSteps parses the -rollups flag: comma-separated Go durations
// ("1m,1h") to tier steps in milliseconds. Empty means no rollups.
func parseRollupSteps(s string) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var steps []int64
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if d < time.Second {
			return nil, fmt.Errorf("tier resolution %s below 1s", d)
		}
		steps = append(steps, d.Milliseconds())
	}
	return steps, nil
}

// queryParams is one parsed /query or /query_range request.
type queryParams struct {
	series string
	from   int64
	to     int64
	step   int64 // 0 for /query (single whole-window reduction)
	fn     timeseries.AggFunc
}

// parseAggFunc validates the fn parameter ("" defaults to mean).
func parseAggFunc(s string) (timeseries.AggFunc, error) {
	if s == "" {
		return timeseries.AggMean, nil
	}
	switch fn := timeseries.AggFunc(s); fn {
	case timeseries.AggMean, timeseries.AggSum, timeseries.AggMin, timeseries.AggMax,
		timeseries.AggCount, timeseries.AggRate, timeseries.AggStd, timeseries.AggP95:
		return fn, nil
	}
	return "", fmt.Errorf("unknown fn %q", s)
}

// parseQueryParams validates the common query parameters. needStep selects
// the /query_range contract (positive step required); /query rejects a step
// parameter outright.
func parseQueryParams(vals url.Values, needStep bool) (queryParams, error) {
	var p queryParams
	p.series = vals.Get("series")
	if p.series == "" {
		return p, fmt.Errorf("missing series parameter")
	}
	var err error
	if p.from, err = strconv.ParseInt(vals.Get("from"), 10, 64); err != nil {
		return p, fmt.Errorf("bad from: %v", err)
	}
	if p.to, err = strconv.ParseInt(vals.Get("to"), 10, 64); err != nil {
		return p, fmt.Errorf("bad to: %v", err)
	}
	if p.to <= p.from {
		return p, fmt.Errorf("empty range: to %d <= from %d", p.to, p.from)
	}
	if needStep {
		if p.step, err = strconv.ParseInt(vals.Get("step"), 10, 64); err != nil {
			return p, fmt.Errorf("bad step: %v", err)
		}
		if p.step <= 0 {
			return p, fmt.Errorf("step must be positive, got %d", p.step)
		}
	} else if vals.Get("step") != "" {
		return p, fmt.Errorf("step is only valid on /query_range")
	}
	if p.fn, err = parseAggFunc(vals.Get("fn")); err != nil {
		return p, err
	}
	return p, nil
}

// admit applies the per-tenant quota, answering 429 when the tenant's
// bucket is empty.
func (qf *queryFront) admit(w http.ResponseWriter, r *http.Request) bool {
	tenant := r.Header.Get("X-ODA-Tenant")
	if tenant == "" {
		tenant = "anonymous"
	}
	if !qf.quotas.Allow(tenant) {
		http.Error(w, "query quota exceeded", http.StatusTooManyRequests)
		return false
	}
	return true
}

// serveCached writes the cached response for key if present.
func (qf *queryFront) serveCached(w http.ResponseWriter, key string) bool {
	body, ok := qf.cache.Get(key)
	if !ok {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-ODA-Cache", "hit")
	_, _ = w.Write(body)
	return true
}

func (qf *queryFront) finish(w http.ResponseWriter, key string, payload any) {
	body, err := json.Marshal(payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body = append(body, '\n')
	qf.cache.Put(key, body)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-ODA-Cache", "miss")
	_, _ = w.Write(body)
}

// handleQuery serves GET /query: a single planned reduction over
// [from, to). The tier the planner picked is reported for observability.
func (qf *queryFront) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !qf.admit(w, r) {
		return
	}
	p, err := parseQueryParams(r.URL.Query(), false)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := "q|" + p.series + "|" + strconv.FormatInt(p.from, 10) + "|" + strconv.FormatInt(p.to, 10) + "|" + string(p.fn)
	if qf.serveCached(w, key) {
		return
	}
	id, ok := qf.store.IDForKey(p.series)
	if !ok {
		http.Error(w, "unknown series "+p.series, http.StatusNotFound)
		return
	}
	plan := qf.store.Plan(id, p.from, p.to, 0, p.fn)
	val, n, err := qf.store.ReducePlanned(id, p.from, p.to, p.fn)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	qf.finish(w, key, map[string]any{
		"series":    p.series,
		"from":      p.from,
		"to":        p.to,
		"fn":        p.fn,
		"value":     val,
		"count":     n,
		"tier_step": plan.TierStep,
	})
}

// handleQueryRange serves GET /query_range: planned step-bucketed
// aggregation over [from, to).
func (qf *queryFront) handleQueryRange(w http.ResponseWriter, r *http.Request) {
	if !qf.admit(w, r) {
		return
	}
	p, err := parseQueryParams(r.URL.Query(), true)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := "qr|" + p.series + "|" + strconv.FormatInt(p.from, 10) + "|" + strconv.FormatInt(p.to, 10) + "|" +
		strconv.FormatInt(p.step, 10) + "|" + string(p.fn)
	if qf.serveCached(w, key) {
		return
	}
	id, ok := qf.store.IDForKey(p.series)
	if !ok {
		http.Error(w, "unknown series "+p.series, http.StatusNotFound)
		return
	}
	plan := qf.store.Plan(id, p.from, p.to, p.step, p.fn)
	pts, err := qf.store.AggregatePlanned(id, p.from, p.to, p.step, p.fn)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	type point struct {
		Start int64   `json:"start"`
		Value float64 `json:"value"`
	}
	points := make([]point, len(pts))
	for i, ap := range pts {
		points[i] = point{Start: ap.Start, Value: ap.Value}
	}
	qf.finish(w, key, map[string]any{
		"series":    p.series,
		"from":      p.from,
		"to":        p.to,
		"step":      p.step,
		"fn":        p.fn,
		"tier_step": plan.TierStep,
		"points":    points,
	})
}
