package main

import (
	"encoding/json"
	"net/http"

	"repro/internal/oda"
	"repro/internal/persist"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

// statsPayload assembles the /stats document: store shape, ingest counters,
// the query-side pool/cache effectiveness counters the streaming engine
// exposes, (when durable) persistence statistics, and (when an analysis
// grid is mounted) the wave scheduler's cumulative counters.
func statsPayload(store *timeseries.Store, srv *wire.Server, durable *persist.DurableStore, grid *oda.Grid) map[string]any {
	hits, misses := store.QueryCacheStats()
	gets, news := store.CursorPoolStats()
	stats := map[string]any{
		"series":             store.NumSeries(),
		"samples":            store.NumSamples(),
		"compressed_bytes":   store.CompressedBytes(),
		"compression_ratio":  store.CompressionRatio(),
		"query_cache_hits":   hits,
		"query_cache_misses": misses,
		"cursor_pool_gets":   gets,
		"cursor_pool_news":   news,
		"cursor_pool_reuse":  gets - news,
	}
	if srv != nil {
		stats["batches"] = srv.Batches()
		stats["ingest_samples"] = srv.Samples()
		stats["ingest_errors"] = srv.Errors()
	}
	if durable != nil {
		st := durable.Stats()
		stats["persist"] = map[string]any{
			"segments":          st.Segments,
			"segment_bytes":     st.SegmentBytes,
			"wal_records":       st.WALRecords,
			"wal_bytes":         st.WALBytes,
			"fsyncs":            st.Fsyncs,
			"coalesced_syncs":   st.CoalescedSyncs,
			"checkpoints":       st.Checkpoints,
			"snapshot_bytes":    st.SnapshotBytes,
			"snapshot_loaded":   st.SnapshotLoaded,
			"replayed_segments": st.ReplayedSegments,
			"replayed_records":  st.ReplayedRecords,
			"truncated_tails":   st.TruncatedTails,
			"truncated_bytes":   st.TruncatedBytes,
		}
	}
	if grid != nil {
		st := grid.ScheduleStats()
		stats["scheduler"] = map[string]any{
			"capabilities":         grid.Len(),
			"planned_waves":        len(grid.Waves()),
			"sweeps":               st.Sweeps,
			"waves":                st.Waves,
			"max_wave_width":       st.MaxWaveWidth,
			"conflicts_deferred":   st.ConflictsDeferred,
			"actuators_overlapped": st.ActuatorsOverlapped,
			"panics":               st.Panics,
			"last_workers":         grid.LastWorkers(),
		}
	}
	return stats
}

// statsHandler serves statsPayload as JSON.
func statsHandler(store *timeseries.Store, srv *wire.Server, durable *persist.DurableStore, grid *oda.Grid) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(statsPayload(store, srv, durable, grid)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
