package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/oda"
	"repro/internal/persist"
	"repro/internal/queryfront"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

// statsPayload assembles the /stats document: store shape, ingest counters,
// the query-side pool/cache effectiveness counters the streaming engine
// exposes, (when durable) persistence statistics, (when an analysis grid is
// mounted) the wave scheduler's cumulative counters, and (when the query
// front door is mounted or rollups configured) the rollup tier, planner,
// result-cache and quota counters.
func statsPayload(store *timeseries.Store, srv *wire.Server, durable *persist.DurableStore, grid *oda.Grid, qf *queryfront.Front, router *cluster.Router) map[string]any {
	hits, misses := store.QueryCacheStats()
	gets, news := store.CursorPoolStats()
	stats := map[string]any{
		"series":             store.NumSeries(),
		"samples":            store.NumSamples(),
		"compressed_bytes":   store.CompressedBytes(),
		"compression_ratio":  store.CompressionRatio(),
		"query_cache_hits":   hits,
		"query_cache_misses": misses,
		"cursor_pool_gets":   gets,
		"cursor_pool_news":   news,
		"cursor_pool_reuse":  gets - news,
	}
	rf := store.RefStats()
	stats["refs"] = map[string]any{
		"resolves":    rf.Resolves,
		"ref_samples": rf.RefSamples,
		"stale_refs":  rf.StaleRefs,
		"epoch":       rf.Epoch,
	}
	if srv != nil {
		stats["batches"] = srv.Batches()
		stats["ingest_samples"] = srv.Samples()
		stats["ingest_errors"] = srv.Errors()
		stats["dict_defs"] = srv.DictDefs()
		stats["ref_batches"] = srv.RefBatches()
	}
	if durable != nil {
		st := durable.Stats()
		stats["persist"] = map[string]any{
			"segments":          st.Segments,
			"segment_bytes":     st.SegmentBytes,
			"wal_records":       st.WALRecords,
			"wal_bytes":         st.WALBytes,
			"fsyncs":            st.Fsyncs,
			"coalesced_syncs":   st.CoalescedSyncs,
			"checkpoints":       st.Checkpoints,
			"snapshot_bytes":    st.SnapshotBytes,
			"snapshot_loaded":   st.SnapshotLoaded,
			"replayed_segments": st.ReplayedSegments,
			"replayed_records":  st.ReplayedRecords,
			"truncated_tails":   st.TruncatedTails,
			"truncated_bytes":   st.TruncatedBytes,
		}
	}
	if qf != nil || len(store.TierSteps()) > 0 {
		rs := store.RollupStats()
		rollup := map[string]any{
			"folds":     rs.Folds,
			"seals":     rs.Seals,
			"raw_plans": rs.RawPlans,
		}
		for _, ts := range rs.Tiers {
			prefix := fmt.Sprintf("tier_%dms_", ts.Step)
			rollup[prefix+"series"] = ts.Series
			rollup[prefix+"picks"] = ts.Picks
		}
		if qf != nil {
			cs := qf.CacheStats()
			rollup["result_cache_hits"] = cs.Hits
			rollup["result_cache_misses"] = cs.Misses
			rollup["result_cache_evictions"] = cs.Evictions
			rollup["result_cache_entries"] = cs.Entries
			qs := qf.QuotaStats()
			rollup["quota_allowed"] = qs.Allowed
			rollup["quota_rejected"] = qs.Rejected
			rollup["quota_tenants"] = qs.Tenants
		}
		stats["rollup"] = rollup
	}
	if router != nil {
		// Membership, placement, per-peer forwarding/hinted-handoff health
		// and replication lag, as the Router tracks them.
		stats["cluster"] = router.Stats()
	}
	if grid != nil {
		st := grid.ScheduleStats()
		stats["scheduler"] = map[string]any{
			"capabilities":         grid.Len(),
			"planned_waves":        len(grid.Waves()),
			"sweeps":               st.Sweeps,
			"waves":                st.Waves,
			"max_wave_width":       st.MaxWaveWidth,
			"conflicts_deferred":   st.ConflictsDeferred,
			"actuators_overlapped": st.ActuatorsOverlapped,
			"panics":               st.Panics,
			"last_workers":         grid.LastWorkers(),
		}
	}
	return stats
}

// statsHandler serves statsPayload as JSON.
func statsHandler(store *timeseries.Store, srv *wire.Server, durable *persist.DurableStore, grid *oda.Grid, qf *queryfront.Front, router *cluster.Router) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(statsPayload(store, srv, durable, grid, qf, router)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
