// Command odad is the telemetry aggregation daemon: it accepts batches
// from collection agents over the wire protocol, archives them into the
// embedded TSDB, and serves operator endpoints — the dashboard JSON, the
// latest-state snapshot, and store statistics. It is the piece a
// production deployment would run per cluster, with odasim (or real
// agents) pointed at it.
//
// Usage:
//
//	odad -listen 127.0.0.1:9900 -http 127.0.0.1:9901
//
// Endpoints:
//
//	GET /dashboard    dashboard panels as JSON
//	GET /snapshot     latest value of every series
//	GET /stats        ingest and storage statistics
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/dashboard"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9900", "wire-protocol ingest address")
	httpAddr := flag.String("http", "127.0.0.1:9901", "HTTP query address")
	chunkSize := flag.Int("chunk", 0, "TSDB samples per chunk (0 = default)")
	retainHours := flag.Float64("retain", 0, "drop telemetry older than this many hours on each ingest (0 = keep all)")
	flag.Parse()

	store := timeseries.NewStore(*chunkSize)
	var latest int64

	srv, err := wire.NewServer(*listen, func(b *wire.Batch) {
		var entries []timeseries.BatchEntry
		for _, rec := range b.Records {
			for _, sm := range rec.Samples {
				entries = append(entries, timeseries.BatchEntry{
					ID: rec.ID, Kind: rec.Kind, Unit: rec.Unit, T: sm.T, V: sm.V,
				})
				if sm.T > latest {
					latest = sm.T
				}
			}
		}
		// Ingest errors (out-of-order duplicates from agent restarts) are
		// tolerated; the server counts batches.
		_, _ = store.AppendBatch(entries)
		if *retainHours > 0 {
			store.Retain(latest - int64(*retainHours*3600*1000))
		}
	})
	if err != nil {
		log.Fatalf("odad: %v", err)
	}
	log.Printf("odad: ingesting on %s", srv.Addr())

	db := &dashboard.Dashboard{
		Store: store,
		Panels: []dashboard.Panel{
			{Title: "Facility", Name: "", Selector: nil, WindowMs: 6 * 3600 * 1000},
		},
	}
	mux := http.NewServeMux()
	mux.Handle("/dashboard", db.Handler())
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		type entry struct {
			ID    string  `json:"id"`
			T     int64   `json:"t"`
			Value float64 `json:"value"`
		}
		var out []entry
		for _, se := range store.Snapshot("", nil) {
			out = append(out, entry{ID: se.ID.Key(), T: se.Sample.T, Value: se.Sample.V})
		}
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		stats := map[string]any{
			"series":            store.NumSeries(),
			"samples":           store.NumSamples(),
			"compressed_bytes":  store.CompressedBytes(),
			"compression_ratio": store.CompressionRatio(),
			"batches":           srv.Batches(),
			"ingest_samples":    srv.Samples(),
			"ingest_errors":     srv.Errors(),
		}
		if err := json.NewEncoder(w).Encode(stats); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	httpSrv := &http.Server{Addr: *httpAddr, Handler: mux}
	go func() {
		log.Printf("odad: serving queries on http://%s", *httpAddr)
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("odad: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("odad: shutting down")
	// Drain order matters: close the ingest side first — wire.Server.Close
	// stops accepting and waits for every in-flight connection, so batches
	// agents already pushed are archived before the query side goes away.
	// Then let HTTP requests finish (bounded), so an operator mid-query
	// sees the fully drained store rather than a connection reset.
	if err := srv.Close(); err != nil {
		log.Printf("odad: ingest close: %v", err)
	}
	log.Printf("odad: ingest drained (%d batches, %d samples archived)", srv.Batches(), srv.Samples())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("odad: http shutdown: %v", err)
	}
}
