// Command odad is the telemetry aggregation daemon: it accepts batches
// from collection agents over the wire protocol, archives them into the
// embedded TSDB, and serves operator endpoints — the dashboard JSON, the
// latest-state snapshot, and store statistics. It is the piece a
// production deployment would run per cluster, with odasim (or real
// agents) pointed at it.
//
// With -data-dir set the store is durable: every ingested batch is
// write-ahead logged before it is applied, checkpoints snapshot the store
// on -snapshot-interval, and a restart recovers the pre-crash state from
// the newest snapshot plus WAL replay.
//
// Usage:
//
//	odad -listen 127.0.0.1:9900 -http 127.0.0.1:9901 \
//	     -data-dir /var/lib/odad -fsync interval -snapshot-interval 5m
//
// The store keeps multi-resolution rollup tiers (-rollups, default 1m and
// 1h): every append folds into per-tier window accumulators, and the query
// planner serves long-window aggregations from the coarsest exact tier
// instead of scanning raw samples. Tiers age out independently of raw data
// via -retain-raw/-retain-1m/-retain-1h.
//
// Endpoints:
//
//	GET /dashboard    dashboard panels as JSON
//	GET /snapshot     latest value of every series
//	GET /query        planned reduction over a window
//	                  (?series=KEY&from=MS&to=MS&fn=mean)
//	GET /query_range  planned step-bucketed aggregation
//	                  (?series=KEY&from=MS&to=MS&step=MS&fn=mean)
//	GET /stats        ingest, storage, durability, rollup and scheduler stats
//	GET /analyze      one full-grid ODA sweep over the archive
//	                  (?window_hours=N, default 6)
//
// Clustered nodes (-peers) additionally serve membership administration:
//
//	GET  /cluster/status       topology epoch, members, peer health, replicas
//	POST /cluster/join?seed=A  join the cluster reachable at seed host:port
//	POST /cluster/leave        hand off this node's data and leave
//
// /query and /query_range sit behind a sharded LRU result cache (staleness
// bounded by -query-cache-ttl) and per-tenant token-bucket quotas
// (X-ODA-Tenant header, -query-rate/-query-burst; over-quota requests get
// HTTP 429).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/dashboard"
	"repro/internal/persist"
	"repro/internal/queryfront"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

// parsePeers parses -peers: comma-separated id=host:port entries naming the
// full static cluster membership (including this node).
func parsePeers(s string) ([]cluster.Peer, error) {
	var out []cluster.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("peer %q must be id=host:port", part)
		}
		out = append(out, cluster.Peer{ID: id, Addr: addr})
	}
	return out, nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:9900", "wire-protocol ingest address")
	httpAddr := flag.String("http", "127.0.0.1:9901", "HTTP query address")
	chunkSize := flag.Int("chunk", 0, "TSDB samples per chunk (0 = default)")
	retainHours := flag.Float64("retain", 0, "deprecated alias for -retain-raw")
	retainRaw := flag.Float64("retain-raw", 0, "drop raw telemetry older than this many hours on each ingest (0 = keep all)")
	retain1m := flag.Float64("retain-1m", 0, "drop 1m rollup windows older than this many hours (0 = keep all)")
	retain1h := flag.Float64("retain-1h", 0, "drop 1h rollup windows older than this many hours (0 = keep all)")
	rollups := flag.String("rollups", "1m,1h", "comma-separated rollup tier resolutions (Go durations; empty = no rollups)")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
	fsyncMode := flag.String("fsync", "always", "WAL fsync policy: always|interval|never (with -data-dir)")
	snapEvery := flag.Duration("snapshot-interval", 5*time.Minute, "checkpoint cadence (with -data-dir; 0 = only at shutdown)")
	queryRate := flag.Float64("query-rate", 10, "per-tenant query tokens per second (0 = no quotas)")
	queryBurst := flag.Float64("query-burst", 20, "per-tenant query burst ceiling")
	queryCacheEntries := flag.Int("query-cache-entries", 1024, "result cache capacity (0 = caching off)")
	queryCacheTTL := flag.Duration("query-cache-ttl", 10*time.Second, "result cache staleness bound")
	nodeID := flag.String("node-id", "", "this node's cluster identity (requires -peers)")
	peersFlag := flag.String("peers", "", "initial cluster membership as id=host:port,... including this node; this node binds its own entry as the cluster listener (membership evolves at runtime via odactl cluster join/leave)")
	replication := flag.Int("replication", 1, "deprecated alias for -rf")
	rf := flag.Int("rf", 0, "cluster replication factor (WAL-shipped replicas per node; needs -data-dir to serve followers; 0 = -replication's value)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per cluster member on the placement ring (0 = default 128; higher = smoother balance, more memory)")
	legacyWire := flag.Bool("legacy-wire", false, "disable the series-ref ingest fast path: forward peer batches as v1 keyed frames and append locally by key")
	flag.Parse()

	if *rf == 0 {
		*rf = *replication
	}
	if *rf < 1 {
		log.Fatalf("odad: -rf must be >= 1, got %d", *rf)
	}
	if *vnodes < 0 || *vnodes > 4096 {
		log.Fatalf("odad: -vnodes must be in [1, 4096] (or 0 for the default), got %d", *vnodes)
	}

	if *retainRaw == 0 {
		*retainRaw = *retainHours
	}
	tierSteps, err := queryfront.ParseRollupSteps(*rollups)
	if err != nil {
		log.Fatalf("odad: -rollups: %v", err)
	}
	storeOpts := []timeseries.Option{}
	if len(tierSteps) > 0 {
		storeOpts = append(storeOpts, timeseries.WithRollups(tierSteps...))
	}

	// With -data-dir the durable store front-ends the TSDB: mutations go
	// through the WAL, reads go straight to the recovered in-memory store.
	var (
		store   *timeseries.Store
		durable *persist.DurableStore
	)
	if *dataDir != "" {
		policy, err := persist.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatalf("odad: %v", err)
		}
		durable, err = persist.Open(*dataDir, persist.Options{
			ChunkSize:        *chunkSize,
			StoreOptions:     storeOpts,
			Fsync:            policy,
			SnapshotInterval: *snapEvery,
		})
		if err != nil {
			log.Fatalf("odad: open %s: %v", *dataDir, err)
		}
		store = durable.Store()
		st := durable.Stats()
		log.Printf("odad: recovered %s: snapshot=%v, %d WAL records replayed across %d segments, %d torn tails truncated (%d series, %d samples)",
			*dataDir, st.SnapshotLoaded, st.ReplayedRecords, st.ReplayedSegments, st.TruncatedTails,
			store.NumSeries(), store.NumSamples())
	} else {
		store = timeseries.NewStore(*chunkSize, storeOpts...)
	}

	// With -peers this node joins a static cluster: a Router places every
	// series on the consistent-hash ring, forwarding foreign appends to
	// their owners and scattering queries; a cluster listener (bound to this
	// node's own -peers entry) accepts what the other nodes send back.
	var (
		router     *cluster.Router
		clusterSrv *cluster.Server
	)
	if *peersFlag != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			log.Fatalf("odad: -peers: %v", err)
		}
		if *nodeID == "" {
			log.Fatalf("odad: -peers requires -node-id")
		}
		var local cluster.Appender = store
		if durable != nil {
			local = durable
		}
		router, err = cluster.New(cluster.Config{
			Self:           *nodeID,
			Peers:          peers,
			VNodes:         *vnodes,
			Replication:    *rf,
			Local:          local,
			Store:          store,
			Durable:        durable,
			ReplicaOptions: storeOpts,
			LegacyWire:     *legacyWire,
		})
		if err != nil {
			log.Fatalf("odad: %v", err)
		}
		var selfAddr string
		for _, p := range peers {
			if p.ID == *nodeID {
				selfAddr = p.Addr
			}
		}
		clusterSrv, err = cluster.Listen(selfAddr, router)
		if err != nil {
			log.Fatalf("odad: cluster listen %s: %v", selfAddr, err)
		}
		router.Start(0, 0) // default flush/health cadence
		log.Printf("odad: cluster node %s on %s (%d peers, rf=%d, vnodes=%d)",
			*nodeID, clusterSrv.Addr(), len(peers)-1, router.Ring().RF(), router.Ring().VNodes())
	} else if *nodeID != "" || *rf != 1 || *vnodes != 0 {
		log.Fatalf("odad: -node-id/-rf/-vnodes need -peers")
	}
	// Single-node ingest goes through a ref cache: each series resolves to
	// an interned handle once, then appends skip key building and map
	// lookups entirely. Clustered nodes get the same treatment inside the
	// router's local path.
	var localRefs *timeseries.RefCache
	if router == nil && !*legacyWire {
		if durable != nil {
			localRefs = timeseries.NewRefCache(durable)
		} else {
			localRefs = timeseries.NewRefCache(store)
		}
	}
	var latest atomic.Int64

	srv, err := wire.NewServer(*listen, func(b *wire.Batch) {
		var entries []timeseries.BatchEntry
		for _, rec := range b.Records {
			for _, sm := range rec.Samples {
				entries = append(entries, timeseries.BatchEntry{
					ID: rec.ID, Kind: rec.Kind, Unit: rec.Unit, T: sm.T, V: sm.V,
				})
				for {
					cur := latest.Load()
					if sm.T <= cur || latest.CompareAndSwap(cur, sm.T) {
						break
					}
				}
			}
		}
		// Ingest errors (out-of-order duplicates from agent restarts) are
		// tolerated; the server counts batches. In clustered mode the router
		// splits the batch: owned series land locally, the rest forward to
		// their owning peers.
		switch {
		case router != nil:
			_, _ = router.AppendBatch(entries)
		case localRefs != nil:
			_, _ = localRefs.AppendBatch(entries)
		case durable != nil:
			_, _ = durable.AppendBatch(entries)
		default:
			_, _ = store.AppendBatch(entries)
		}
		now := latest.Load()
		if *retainRaw > 0 {
			cutoff := now - int64(*retainRaw*3600*1000)
			if durable != nil {
				_, _ = durable.Retain(cutoff)
			} else {
				store.Retain(cutoff)
			}
		}
		// Rollup tiers age out on their own schedules: raw days, minutely
		// weeks, hourly years.
		for _, tc := range []struct {
			step  int64
			hours float64
		}{{timeseries.TierStep1m, *retain1m}, {timeseries.TierStep1h, *retain1h}} {
			if tc.hours <= 0 {
				continue
			}
			cutoff := now - int64(tc.hours*3600*1000)
			if durable != nil {
				_, _ = durable.RetainTier(tc.step, cutoff)
			} else {
				store.RetainTier(tc.step, cutoff)
			}
		}
	})
	if err != nil {
		log.Fatalf("odad: %v", err)
	}
	log.Printf("odad: ingesting on %s", srv.Addr())

	db := &dashboard.Dashboard{
		Store: store,
		Panels: []dashboard.Panel{
			{Title: "Facility", Name: "", Selector: nil, WindowMs: 6 * 3600 * 1000},
		},
	}
	mux := http.NewServeMux()
	mux.Handle("/dashboard", db.Handler())
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		type entry struct {
			ID    string  `json:"id"`
			T     int64   `json:"t"`
			Value float64 `json:"value"`
		}
		var out []entry
		for _, se := range store.Snapshot("", nil) {
			out = append(out, entry{ID: se.ID.Key(), T: se.Sample.T, Value: se.Sample.V})
		}
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// The analysis grid runs read-only sweeps over the archive on demand;
	// capabilities that need the live system handle report per-capability
	// errors instead of failing the sweep.
	grid, err := repro.FullGrid()
	if err != nil {
		log.Fatalf("odad: %v", err)
	}
	// Clustered nodes answer /query and /query_range for ANY series: the
	// router routes each request to the owning peer (or a replica when the
	// owner is down, flagged via X-ODA-Partial).
	var backend queryfront.Backend = queryfront.ForStore(store)
	if router != nil {
		backend = router
	}
	qf := queryfront.New(backend, *queryCacheEntries, *queryCacheTTL, *queryRate, *queryBurst)
	mux.HandleFunc("/query", qf.HandleQuery)
	mux.HandleFunc("/query_range", qf.HandleQueryRange)
	mux.HandleFunc("/stats", statsHandler(store, srv, durable, grid, qf, router))
	mux.HandleFunc("/analyze", analyzeHandler(grid, store, latest.Load))
	// Cluster administration (odactl cluster ...): runtime membership
	// changes and the live topology/peer view. Mounted only on clustered
	// nodes — a single-node daemon has no membership to administer.
	if router != nil {
		mux.HandleFunc("/cluster/status", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(router.Stats()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/cluster/join", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			seed := r.URL.Query().Get("seed")
			if seed == "" {
				http.Error(w, "missing seed parameter (seed=host:port of any current member)", http.StatusBadRequest)
				return
			}
			if err := router.JoinCluster(seed); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"joined\":true,\"epoch\":%d}\n", router.Epoch())
		})
		mux.HandleFunc("/cluster/leave", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			if err := router.LeaveCluster(); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"left\":true,\"epoch\":%d}\n", router.Epoch())
		})
	}

	httpSrv := &http.Server{Addr: *httpAddr, Handler: mux}
	go func() {
		log.Printf("odad: serving queries on http://%s", *httpAddr)
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("odad: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("odad: shutting down")
	// Drain order matters: close the ingest side first — wire.Server.Close
	// stops accepting and waits for every in-flight connection, so batches
	// agents already pushed are archived before anything else shuts down.
	// Then checkpoint the drained store (persist.Close writes a final
	// snapshot, so the next start recovers replay-free) and finally let
	// HTTP requests finish (bounded), so an operator mid-query sees the
	// fully drained store rather than a connection reset.
	if err := srv.Close(); err != nil {
		log.Printf("odad: ingest close: %v", err)
	}
	log.Printf("odad: ingest drained (%d batches, %d samples archived)", srv.Batches(), srv.Samples())
	if router != nil {
		// Flush pending forwards to peers (Stop does a final Flush), then
		// stop accepting peer traffic once nothing more will be routed here.
		router.Stop()
		if err := clusterSrv.Close(); err != nil {
			log.Printf("odad: cluster close: %v", err)
		}
		if hints := router.PendingHints(); hints > 0 {
			log.Printf("odad: %d hinted batches for down peers not delivered", hints)
		}
	}
	if durable != nil {
		st := durable.Stats()
		if err := durable.Close(); err != nil {
			log.Printf("odad: persist close: %v", err)
		} else {
			log.Printf("odad: checkpointed %s (%d WAL records logged, %d fsyncs, %d checkpoints)",
				*dataDir, st.WALRecords, st.Fsyncs, st.Checkpoints+1)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("odad: http shutdown: %v", err)
	}
}
