package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/metric"
	"repro/internal/timeseries"
)

// TestAnalyzeHandlerSmoke runs the /analyze sweep against a store holding a
// little facility telemetry: storage-only capabilities succeed, the ones
// needing a live system handle surface per-capability errors, and the
// payload reports the wave schedule the sweep ran with.
func TestAnalyzeHandlerSmoke(t *testing.T) {
	store := timeseries.NewStore(64)
	id := metric.ID{Name: "facility_pue", Labels: metric.NewLabels("site", "vdc")}
	for i := int64(0); i < 120; i++ {
		if err := store.Append(id, metric.Gauge, metric.UnitNone, i*60_000, 1.3+0.01*float64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	grid, err := repro.FullGrid()
	if err != nil {
		t.Fatal(err)
	}
	latest := func() int64 { return 119 * 60_000 }

	rec := httptest.NewRecorder()
	analyzeHandler(grid, store, latest)(rec, httptest.NewRequest("GET", "/analyze?window_hours=3", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var got struct {
		From    int64 `json:"from"`
		To      int64 `json:"to"`
		Results map[string]struct {
			Summary string             `json:"summary"`
			Values  map[string]float64 `json:"values"`
		} `json:"results"`
		Errors map[string]string `json:"errors"`
		Waves  [][]string        `json:"waves"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	// The archive is only 2h long, so the 3h window clamps at zero.
	if got.To != latest()+1 || got.From != 0 {
		t.Fatalf("window [%d, %d), want [0, %d)", got.From, got.To, latest()+1)
	}
	// PUE needs only the archive; it must have succeeded on this store.
	if _, ok := got.Results["pue-kpi"]; !ok {
		t.Fatalf("pue-kpi missing from results: %v / errors %v", got.Results, got.Errors)
	}
	// Actuators need the live data center; with none attached they report
	// errors instead of poisoning the sweep.
	if len(got.Errors) == 0 {
		t.Fatal("expected system-needing capabilities to report errors")
	}
	if len(got.Waves) < 2 {
		t.Fatalf("waves = %v, want the multi-wave production schedule", got.Waves)
	}

	// Bad window: rejected.
	rec = httptest.NewRecorder()
	analyzeHandler(grid, store, latest)(rec, httptest.NewRequest("GET", "/analyze?window_hours=-1", nil))
	if rec.Code != 400 {
		t.Fatalf("negative window: status %d, want 400", rec.Code)
	}
}
