package main

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/oda"
	"repro/internal/timeseries"
)

// analyzeHandler runs one wave-scheduled sweep of the full capability grid
// over the archived telemetry and returns every capability's summary and
// values, the per-capability errors (capabilities that need a live system
// handle report so here rather than aborting the sweep), and the schedule
// the sweep ran with. ?window_hours bounds the analysis window back from
// the newest ingested sample (default 6).
func analyzeHandler(grid *oda.Grid, store *timeseries.Store, latest func() int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		windowHours := 6.0
		if s := r.URL.Query().Get("window_hours"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || v <= 0 {
				http.Error(w, "window_hours must be a positive number", http.StatusBadRequest)
				return
			}
			windowHours = v
		}
		to := latest() + 1
		from := to - int64(windowHours*3600*1000)
		if from < 0 {
			from = 0
		}
		results, errs := grid.RunAll(&oda.RunContext{Store: store, From: from, To: to})
		type capResult struct {
			Summary string             `json:"summary"`
			Values  map[string]float64 `json:"values,omitempty"`
		}
		payload := struct {
			From    int64                `json:"from"`
			To      int64                `json:"to"`
			Results map[string]capResult `json:"results"`
			Errors  map[string]string    `json:"errors"`
			Waves   [][]string           `json:"waves"`
		}{
			From:    from,
			To:      to,
			Results: make(map[string]capResult, len(results)),
			Errors:  make(map[string]string, len(errs)),
			Waves:   grid.Waves(),
		}
		for name, res := range results {
			payload.Results[name] = capResult{Summary: res.Summary, Values: res.Values}
		}
		for name, err := range errs {
			payload.Errors[name] = err.Error()
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
