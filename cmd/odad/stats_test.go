package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/metric"
	"repro/internal/oda"
	"repro/internal/timeseries"
)

// TestStatsHandlerSmoke exercises the /stats endpoint against a live store:
// after a few queries the payload must report the series/sample shape and
// show the cursor pool recycling allocations.
func TestStatsHandlerSmoke(t *testing.T) {
	store := timeseries.NewStore(8)
	id := metric.ID{Name: "node_power_watts", Labels: metric.NewLabels("node", "n0")}
	for i := int64(0); i < 100; i++ {
		if err := store.Append(id, metric.Gauge, metric.UnitWatt, i*1000, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Repeated queries cycle cursors through the pool and warm the
	// decoded-chunk cache.
	for i := 0; i < 16; i++ {
		if _, err := store.Query(id, 0, 100_000); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	statsHandler(store, nil, nil, nil, nil, nil)(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got["series"] != float64(1) || got["samples"] != float64(100) {
		t.Fatalf("shape: series=%v samples=%v", got["series"], got["samples"])
	}
	for _, key := range []string{
		"compressed_bytes", "compression_ratio",
		"query_cache_hits", "query_cache_misses",
		"cursor_pool_gets", "cursor_pool_news", "cursor_pool_reuse",
	} {
		if _, ok := got[key]; !ok {
			t.Fatalf("missing %q in payload %v", key, got)
		}
	}
	gets := got["cursor_pool_gets"].(float64)
	news := got["cursor_pool_news"].(float64)
	if gets < 16 {
		t.Fatalf("cursor_pool_gets = %v, want >= 16", gets)
	}
	if reuse := got["cursor_pool_reuse"].(float64); reuse != gets-news {
		t.Fatalf("cursor_pool_reuse = %v, want gets-news = %v", reuse, gets-news)
	}
	// No ingest server, durable store or analysis grid: those sections are
	// absent.
	if _, ok := got["batches"]; ok {
		t.Fatal("batches reported without a wire server")
	}
	if _, ok := got["persist"]; ok {
		t.Fatal("persist reported without a durable store")
	}
	if _, ok := got["scheduler"]; ok {
		t.Fatal("scheduler reported without an analysis grid")
	}
}

// TestStatsHandlerSchedulerSection: with an analysis grid mounted, /stats
// carries the wave scheduler's counters, and they advance after a sweep.
func TestStatsHandlerSchedulerSection(t *testing.T) {
	store := timeseries.NewStore(8)
	grid, err := repro.FullGrid()
	if err != nil {
		t.Fatal(err)
	}

	fetch := func() map[string]any {
		t.Helper()
		rec := httptest.NewRecorder()
		statsHandler(store, nil, nil, grid, nil, nil)(rec, httptest.NewRequest("GET", "/stats", nil))
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
		var got map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		sched, ok := got["scheduler"].(map[string]any)
		if !ok {
			t.Fatalf("missing scheduler section in %v", got)
		}
		return sched
	}

	sched := fetch()
	for _, key := range []string{
		"capabilities", "planned_waves", "sweeps", "waves", "max_wave_width",
		"conflicts_deferred", "actuators_overlapped", "panics", "last_workers",
	} {
		if _, ok := sched[key]; !ok {
			t.Fatalf("missing scheduler key %q in %v", key, sched)
		}
	}
	if sched["sweeps"] != float64(0) {
		t.Fatalf("sweeps = %v before any sweep", sched["sweeps"])
	}
	if sched["planned_waves"].(float64) < 2 {
		t.Fatalf("planned_waves = %v, want >= 2 for the full grid", sched["planned_waves"])
	}

	// One parallel sweep over the (empty) archive: the counters must
	// advance even though most capabilities error out for lack of
	// telemetry. Workers are pinned so the sweep takes the wave path
	// regardless of what the auto-tuner would pick on this machine.
	grid.SetWorkers(4)
	grid.RunAll(&oda.RunContext{Store: store, From: 0, To: 1})
	sched = fetch()
	if sched["sweeps"] != float64(1) {
		t.Fatalf("sweeps = %v after one sweep", sched["sweeps"])
	}
	if sched["waves"].(float64) < 2 {
		t.Fatalf("waves = %v after one sweep, want >= 2", sched["waves"])
	}
}
