package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/metric"
	"repro/internal/queryfront"
	"repro/internal/timeseries"
)

// TestStatsRollupSection: with the front door mounted, /stats carries the
// rollup tier, planner, result-cache and quota counters. The handlers
// themselves are covered in internal/queryfront; this pins odad's wiring.
func TestStatsRollupSection(t *testing.T) {
	store := timeseries.NewStore(64, timeseries.WithRollups(timeseries.TierStep1m, timeseries.TierStep1h))
	id := metric.ID{Name: "node_power_watts", Labels: metric.NewLabels("node", "n0")}
	for i := int64(0); i < 2*360+10; i++ { // ~2h at 10s cadence
		if err := store.Append(id, metric.Gauge, metric.UnitWatt, i*10_000, float64(i%50)); err != nil {
			t.Fatal(err)
		}
	}
	qf := queryfront.New(queryfront.ForStore(store), 64, time.Minute, 1000, 1000)
	for i := 0; i < 2; i++ { // one miss, one hit
		rec := httptest.NewRecorder()
		qf.HandleQuery(rec, httptest.NewRequest("GET", "/query?series="+url.QueryEscape(id.Key())+"&from=0&to=7200000&fn=mean", nil))
		if rec.Code != 200 {
			t.Fatalf("query status %d", rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	statsHandler(store, nil, nil, nil, qf, nil)(rec, httptest.NewRequest("GET", "/stats", nil))
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	rollup, ok := got["rollup"].(map[string]any)
	if !ok {
		t.Fatalf("missing rollup section in %v", got)
	}
	for _, key := range []string{
		"folds", "seals", "raw_plans",
		fmt.Sprintf("tier_%dms_series", int64(timeseries.TierStep1m)),
		fmt.Sprintf("tier_%dms_picks", int64(timeseries.TierStep1h)),
		"result_cache_hits", "result_cache_misses", "result_cache_evictions", "result_cache_entries",
		"quota_allowed", "quota_rejected", "quota_tenants",
	} {
		if _, ok := rollup[key]; !ok {
			t.Fatalf("missing rollup key %q in %v", key, rollup)
		}
	}
	if rollup["folds"].(float64) == 0 {
		t.Fatal("no folds counted")
	}
	if rollup["result_cache_hits"].(float64) != 1 || rollup["quota_allowed"].(float64) != 2 {
		t.Fatalf("front door counters: hits=%v allowed=%v", rollup["result_cache_hits"], rollup["quota_allowed"])
	}
}
