// Command odasim runs the virtual HPC data center with the full ODA stack
// attached, prints the operator dashboards and KPIs, and can serve the
// dashboard JSON over HTTP or export the generated workload trace.
//
// Usage:
//
//	odasim -nodes 64 -hours 24                 # headless run + report
//	odasim -controllers -hours 48              # with the prescriptive suite
//	odasim -http :8080 -hours 12               # serve the dashboard after the run
//	odasim -trace jobs.swf -hours 24           # export the workload trace
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/dashboard"
	"repro/internal/descriptive"
	"repro/internal/oda"
	"repro/internal/prescriptive"
	"repro/internal/scheduler"
	"repro/internal/simulation"
	"repro/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 64, "compute node count")
	hours := flag.Float64("hours", 24, "virtual hours to simulate")
	seed := flag.Int64("seed", 1, "simulation seed")
	policy := flag.String("policy", "easy", "scheduling policy: fcfs|easy|plan|power")
	controllers := flag.Bool("controllers", false, "attach the prescriptive ODA suite")
	httpAddr := flag.String("http", "", "serve dashboard JSON at this address after the run")
	tracePath := flag.String("trace", "", "write the executed workload as a trace file")
	replayPath := flag.String("replay", "", "replay a recorded trace file instead of generating jobs")
	flag.Parse()

	cfg := simulation.DefaultConfig(*seed)
	cfg.Nodes = *nodes
	cfg.Workload.MaxNodes = *nodes / 2
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			log.Fatalf("odasim: %v", err)
		}
		jobs, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatalf("odasim: %v", err)
		}
		cfg.TraceJobs = jobs
		fmt.Printf("replaying %d jobs from %s\n", len(jobs), *replayPath)
	}
	switch *policy {
	case "fcfs":
		cfg.Policy = scheduler.FCFS{}
	case "easy":
		cfg.Policy = scheduler.EASY{}
	case "plan":
		cfg.Policy = scheduler.PlanBased{}
	case "power":
		cfg.Policy = scheduler.PowerAware{}
	default:
		log.Fatalf("odasim: unknown policy %q", *policy)
	}
	dc := simulation.New(cfg)
	if *controllers {
		dc.AddController(prescriptive.FanControl{}.Controller())
		dc.AddController(prescriptive.SetpointOptimizer{}.Controller())
		dc.AddController(prescriptive.CoolingModeSwitch{}.Controller())
		dc.AddController(prescriptive.DVFSGovernor{}.Controller())
	}
	fmt.Printf("simulating %d nodes for %.0f virtual hours (policy %s, controllers %v)...\n",
		*nodes, *hours, cfg.Policy.Name(), *controllers)
	dc.RunFor(*hours * 3600)
	// Drain the collection pipeline before reading results: any queued
	// sinks attached to the agent flush their backlog here.
	dc.Close()

	ctx := &oda.RunContext{Store: dc.Store, From: 0, To: dc.Now() + 1, System: dc}
	db := descriptive.Dashboards{}.Build(ctx)
	fmt.Println(db.RenderText(dc.Now()))

	m := dc.Cluster.MetricsAt(dc.Now())
	fmt.Printf("jobs: %d submitted, %d finished, %d killed; utilization %.1f%%\n",
		dc.SubmittedJobs, m.FinishedJobs, dc.KilledJobs, m.Utilization*100)
	fmt.Printf("queue KPIs: mean wait %.0fs, mean slowdown %.2f, p95 slowdown %.2f\n",
		m.MeanWaitSec, m.MeanSlowdown, m.P95Slowdown)
	fmt.Printf("facility: cumulative PUE %.4f, setpoint %.1fC, mode %s\n",
		dc.Facility.CumulativePUE(), dc.Facility.Setpoint(), dc.Facility.Mode())
	fmt.Printf("telemetry: %d series, %d samples, %.1fx compressed\n",
		dc.Store.NumSeries(), dc.Store.NumSamples(), dc.Store.CompressionRatio())
	fmt.Printf("hardware: %d failure events\n", dc.FailureEvents)
	fmt.Println(dashboard.Gauge("cumulative PUE", dc.Facility.CumulativePUE(), 1.0, 2.0, 40))

	// Rack thermal heatmap: one row per rack of 16 nodes.
	var grid [][]float64
	for i := 0; i < len(dc.Nodes); i += 16 {
		end := i + 16
		if end > len(dc.Nodes) {
			end = len(dc.Nodes)
		}
		row := make([]float64, 0, end-i)
		for _, n := range dc.Nodes[i:end] {
			row = append(row, n.Temperature())
		}
		grid = append(grid, row)
	}
	fmt.Println("rack temperature heatmap (one row per rack):")
	for i, line := range dashboard.Heatmap(grid) {
		fmt.Printf("  r%02d |%s|\n", i, line)
	}

	// Event-log summary: the structured side of the telemetry.
	fmt.Printf("event log: %d events, SIE %.3f bits, error rate %.2f%%\n",
		dc.Events.Len(), dc.Events.Entropy(0, dc.Now()+1), dc.Events.ErrorRate(0, dc.Now()+1)*100)
	for _, kc := range dc.Events.CountsByKind(0, dc.Now()+1) {
		fmt.Printf("  %-12s %6d\n", kc.Kind, kc.Count)
	}

	if *tracePath != "" {
		var jobs []*workload.Job
		for _, rec := range dc.Allocations() {
			jobs = append(jobs, rec.Job)
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatalf("odasim: %v", err)
		}
		if err := workload.WriteTrace(f, jobs); err != nil {
			log.Fatalf("odasim: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("odasim: %v", err)
		}
		fmt.Printf("wrote %d jobs to %s\n", len(jobs), *tracePath)
	}

	if *httpAddr != "" {
		fmt.Printf("serving dashboard JSON on %s (Ctrl-C to stop)\n", *httpAddr)
		http.Handle("/dashboard", db.Handler())
		log.Fatal(http.ListenAndServe(*httpAddr, nil))
	}
}
