package repro

import (
	"reflect"
	"testing"

	"repro/internal/oda"
)

// TestFootprintLint is the `make lint-footprints` gate: every prescriptive
// capability in the full grid must declare a non-empty write footprint —
// an actuator the scheduler cannot place against the other control loops
// is a registration bug, not a runtime surprise.
func TestFootprintLint(t *testing.T) {
	g, err := FullGrid()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range oda.LintFootprints(g) {
		t.Error(v)
	}
}

// TestFullGridDeclaresFootprints: with every built-in capability migrated,
// no capability should still rely on the legacy Exclusive bit, and every
// capability should declare at least one read or write.
func TestFullGridDeclaresFootprints(t *testing.T) {
	g, err := FullGrid()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range g.Names() {
		c, _ := g.Get(name)
		m := c.Meta()
		if m.Exclusive {
			t.Errorf("%s: still uses the legacy Exclusive bit; declare Writes instead", name)
		}
		if len(m.Reads) == 0 && len(m.Writes) == 0 {
			t.Errorf("%s: declares no footprint at all", name)
		}
	}
}

// TestFullGridWaveEquivalence runs the real 4x4 grid over the same
// simulated center at workers 1, 2 and 8 and requires identical result
// values, identical error sets and an identical final actuator state —
// the production form of the schedule-equivalence property.
func TestFullGridWaveEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid sweep is minutes of simulated telemetry")
	}
	type outcome struct {
		values map[string]map[string]float64
		errs   map[string]string
		state  any
	}
	run := func(workers int) outcome {
		g, err := FullGrid()
		if err != nil {
			t.Fatal(err)
		}
		g.SetWorkers(workers)
		exp := StandardExperiment(7, 32, 3)
		results, errs := g.RunAll(exp.Ctx)
		o := outcome{
			values: make(map[string]map[string]float64, len(results)),
			errs:   make(map[string]string, len(errs)),
			state:  exp.DC.ActuatorState(),
		}
		for name, res := range results {
			o.values[name] = res.Values
		}
		for name, err := range errs {
			o.errs[name] = err.Error()
		}
		return o
	}
	ref := run(1)
	if len(ref.values) == 0 {
		t.Fatalf("serial sweep produced no results (errs %v)", ref.errs)
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got.values, ref.values) {
			t.Errorf("workers %d: result values diverge from serial", workers)
		}
		if !reflect.DeepEqual(got.errs, ref.errs) {
			t.Errorf("workers %d: errors diverge from serial\nserial: %v\ngot:    %v", workers, ref.errs, got.errs)
		}
		if !reflect.DeepEqual(got.state, ref.state) {
			t.Errorf("workers %d: final actuator state diverges from serial\nserial: %+v\ngot:    %+v",
				workers, ref.state, got.state)
		}
	}
}

// TestFullGridWaves sanity-checks the production schedule: multiple waves
// (conflicting actuators are ordered), a first wave far wider than one
// (read-only analytics overlap), and more than one writer sharing a wave
// somewhere (the whole point of footprints over the Exclusive bit).
func TestFullGridWaves(t *testing.T) {
	g, err := FullGrid()
	if err != nil {
		t.Fatal(err)
	}
	waves := g.Waves()
	if len(waves) < 2 {
		t.Fatalf("expected conflicting actuators to need >= 2 waves, got %v", waves)
	}
	if len(waves[0]) < 5 {
		t.Fatalf("expected a wide read-only first wave, got %v", waves[0])
	}
	writersInWave := func(wave []string) int {
		n := 0
		for _, name := range wave {
			c, _ := g.Get(name)
			if len(c.Meta().Writes) > 0 {
				n++
			}
		}
		return n
	}
	overlapped := false
	for _, wave := range waves {
		if writersInWave(wave) >= 2 {
			overlapped = true
			break
		}
	}
	if !overlapped {
		t.Fatalf("no wave holds two writers; schedule %v degenerated to exclusive-style serialization", waves)
	}
}
