package dashboard_test

import (
	"fmt"

	"repro/internal/dashboard"
)

// ExampleSparkline renders a strip chart for a terminal dashboard.
func ExampleSparkline() {
	fmt.Println(dashboard.Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8}))
	// Output:
	// ▁▂▃▄▅▆▇█
}

// ExampleGauge renders a bounded horizontal meter, here a PUE readout.
func ExampleGauge() {
	fmt.Println(dashboard.Gauge("PUE", 1.25, 1.0, 2.0, 20))
	// Output:
	// PUE                      [#####...............]     1.25
}
