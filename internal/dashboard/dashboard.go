// Package dashboard renders telemetry for operators: ASCII sparklines,
// tables and heatmaps for terminal dashboards, plus an HTTP handler that
// serves the same views as JSON — the visualization-oriented descriptive
// ODA the survey found dominates production deployments.
package dashboard

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"

	"repro/internal/metric"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// sparkRunes are the eight block glyphs of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode strip chart.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Heatmap renders a rows x cols value grid as unicode shading, one string
// per row. Useful for rack/node temperature overviews.
func Heatmap(grid [][]float64) []string {
	var lo, hi float64
	first := true
	for _, row := range grid {
		for _, v := range row {
			if first {
				lo, hi = v, v
				first = false
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	shades := []rune(" ░▒▓█")
	out := make([]string, len(grid))
	for i, row := range grid {
		var b strings.Builder
		for _, v := range row {
			idx := 0
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(shades)-1))
			}
			b.WriteRune(shades[idx])
		}
		out[i] = b.String()
	}
	return out
}

// Gauge renders a horizontal bar for a value within [lo, hi].
func Gauge(label string, value, lo, hi float64, width int) string {
	if width < 4 {
		width = 4
	}
	frac := 0.0
	if hi > lo {
		frac = stats.Clamp((value-lo)/(hi-lo), 0, 1)
	}
	filled := int(math.Round(frac * float64(width)))
	return fmt.Sprintf("%-24s [%s%s] %8.2f", label,
		strings.Repeat("#", filled), strings.Repeat(".", width-filled), value)
}

// Panel is one named view over the store.
type Panel struct {
	Title string
	// Name filters series by metric name; Selector by labels.
	Name     string
	Selector metric.Labels
	// WindowMs is how much recent history the panel shows.
	WindowMs int64
	// StepMs, when positive, renders the panel through the query planner:
	// values become per-bucket means at this resolution, served from rollup
	// tiers when the store keeps a matching one. Long-window panels set it
	// so render cost scales with buckets, not raw samples.
	StepMs int64
}

// Dashboard groups panels over one store.
type Dashboard struct {
	Store  *timeseries.Store
	Panels []Panel
}

// PanelData is the machine-readable render of one panel.
type PanelData struct {
	Title  string       `json:"title"`
	Series []SeriesData `json:"series"`
}

// SeriesData is one series' summary within a panel.
type SeriesData struct {
	ID     string    `json:"id"`
	Last   float64   `json:"last"`
	Mean   float64   `json:"mean"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Values []float64 `json:"values"`
}

// Snapshot evaluates every panel at time now.
func (d *Dashboard) Snapshot(now int64) []PanelData {
	out := make([]PanelData, 0, len(d.Panels))
	for _, p := range d.Panels {
		window := p.WindowMs
		if window <= 0 {
			window = 3600 * 1000
		}
		pd := PanelData{Title: p.Title}
		ids := d.Store.Select(p.Name, p.Selector)
		if p.StepMs > 0 {
			// Planned render: align the window start down to a step boundary
			// (tier eligibility requires an aligned origin), then read
			// per-bucket means through the planner.
			from, to := now-window, now+1
			if rem := ((from % p.StepMs) + p.StepMs) % p.StepMs; rem != 0 {
				from -= rem
			}
			for _, id := range ids {
				pts, err := d.Store.AggregatePlanned(id, from, to, p.StepMs, timeseries.AggMean)
				if err != nil || len(pts) == 0 {
					continue
				}
				vals := make([]float64, len(pts))
				var o stats.Online
				for i, pt := range pts {
					vals[i] = pt.Value
					o.Add(pt.Value)
				}
				s := o.Summary()
				pd.Series = append(pd.Series, SeriesData{
					ID: id.Key(), Last: vals[len(vals)-1],
					Mean: s.Mean, Min: s.Min, Max: s.Max, Values: vals,
				})
			}
			sort.Slice(pd.Series, func(a, b int) bool { return pd.Series[a].ID < pd.Series[b].ID })
			out = append(out, pd)
			continue
		}
		// One fused pass per series: the summary statistics accumulate
		// while the display values stream off the cursor, and wide panels
		// fan out across series with deterministic per-index slots.
		slots := make([]SeriesData, len(ids))
		filled := make([]bool, len(ids))
		_ = d.Store.Scan(ids, now-window, now+1, func(i int, cur *timeseries.Cursor) error {
			vals := make([]float64, 0, cur.Est())
			var o stats.Online
			for cur.Next() {
				v := cur.At().V
				vals = append(vals, v)
				o.Add(v)
			}
			if cur.Err() != nil || len(vals) == 0 {
				return nil // skip broken/empty series, as before
			}
			s := o.Summary()
			slots[i] = SeriesData{
				ID: ids[i].Key(), Last: vals[len(vals)-1],
				Mean: s.Mean, Min: s.Min, Max: s.Max, Values: vals,
			}
			filled[i] = true
			return nil
		})
		for i := range slots {
			if filled[i] {
				pd.Series = append(pd.Series, slots[i])
			}
		}
		sort.Slice(pd.Series, func(a, b int) bool { return pd.Series[a].ID < pd.Series[b].ID })
		out = append(out, pd)
	}
	return out
}

// RenderText renders the dashboard for a terminal.
func (d *Dashboard) RenderText(now int64) string {
	var b strings.Builder
	for _, pd := range d.Snapshot(now) {
		fmt.Fprintf(&b, "== %s ==\n", pd.Title)
		for _, s := range pd.Series {
			vals := s.Values
			if len(vals) > 60 {
				vals = vals[len(vals)-60:]
			}
			fmt.Fprintf(&b, "%-48s %s last=%.2f mean=%.2f [%.2f..%.2f]\n",
				s.ID, Sparkline(vals), s.Last, s.Mean, s.Min, s.Max)
		}
	}
	return b.String()
}

// Handler serves the dashboard as JSON at its mount point. The "now" query
// parameter (Unix millis) selects the evaluation instant; it defaults to
// the newest sample in the store.
func (d *Dashboard) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := int64(0)
		if q := r.URL.Query().Get("now"); q != "" {
			if _, err := fmt.Sscanf(q, "%d", &now); err != nil {
				http.Error(w, "bad now parameter", http.StatusBadRequest)
				return
			}
		}
		if now == 0 {
			for _, id := range d.Store.IDs() {
				if sm, ok := d.Store.Latest(id); ok && sm.T > now {
					now = sm.T
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(d.Snapshot(now)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
