package dashboard

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("sparkline runes = %d", utf8.RuneCountInString(s))
	}
	if !strings.HasPrefix(s, "▁") || !strings.HasSuffix(s, "█") {
		t.Fatalf("sparkline = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

func TestHeatmap(t *testing.T) {
	rows := Heatmap([][]float64{{0, 1}, {2, 4}})
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	if rows[0] == rows[1] {
		t.Fatalf("distinct values render identically: %q", rows)
	}
	// Constant grid renders without panic.
	c := Heatmap([][]float64{{1, 1}, {1, 1}})
	if len(c) != 2 {
		t.Fatal("constant grid")
	}
	if out := Heatmap(nil); len(out) != 0 {
		t.Fatal("empty grid")
	}
}

func TestGauge(t *testing.T) {
	g := Gauge("pue", 1.25, 1, 2, 20)
	if !strings.Contains(g, "pue") || !strings.Contains(g, "1.25") {
		t.Fatalf("gauge = %q", g)
	}
	full := Gauge("x", 99, 0, 10, 10)
	if !strings.Contains(full, "##########") {
		t.Fatalf("over-range gauge should clamp full: %q", full)
	}
	empty := Gauge("x", -5, 0, 10, 10)
	if strings.Contains(empty, "#") {
		t.Fatalf("under-range gauge should be empty: %q", empty)
	}
	if !strings.Contains(Gauge("x", 1, 0, 2, 0), "[") {
		t.Fatal("tiny width should be clamped, not panic")
	}
}

func buildStore(t *testing.T) *timeseries.Store {
	t.Helper()
	store := timeseries.NewStore(0)
	for n := 0; n < 3; n++ {
		id := metric.ID{Name: "node_power_watts", Labels: metric.NewLabels("node", string(rune('a'+n)))}
		for i := int64(0); i < 100; i++ {
			if err := store.Append(id, metric.Gauge, metric.UnitWatt, i*60_000, float64(100+n*10+int(i%5))); err != nil {
				t.Fatal(err)
			}
		}
	}
	id := metric.ID{Name: "facility_pue"}
	for i := int64(0); i < 100; i++ {
		_ = store.Append(id, metric.Gauge, metric.UnitNone, i*60_000, 1.3)
	}
	return store
}

func TestDashboardSnapshot(t *testing.T) {
	store := buildStore(t)
	d := Dashboard{
		Store: store,
		Panels: []Panel{
			{Title: "Node power", Name: "node_power_watts", WindowMs: 100 * 60_000},
			{Title: "PUE", Name: "facility_pue"},
		},
	}
	now := int64(99 * 60_000)
	snap := d.Snapshot(now)
	if len(snap) != 2 {
		t.Fatalf("panels = %d", len(snap))
	}
	if len(snap[0].Series) != 3 {
		t.Fatalf("node series = %d", len(snap[0].Series))
	}
	// Sorted by ID.
	for i := 1; i < len(snap[0].Series); i++ {
		if snap[0].Series[i].ID <= snap[0].Series[i-1].ID {
			t.Fatal("series not sorted")
		}
	}
	// PUE panel uses the default 1h window: 60 samples at 60s cadence + 1.
	if n := len(snap[1].Series[0].Values); n < 55 || n > 62 {
		t.Fatalf("default window values = %d", n)
	}
	if snap[1].Series[0].Last != 1.3 {
		t.Fatalf("pue last = %v", snap[1].Series[0].Last)
	}
}

// TestDashboardPlannedPanel drives the StepMs render path: a rollup-backed
// store must serve per-minute bucket means from its 1m tier, and the values
// must match what the raw path produces for the same bucketing.
func TestDashboardPlannedPanel(t *testing.T) {
	store := timeseries.NewStore(0, timeseries.WithRollups(timeseries.TierStep1m))
	id := metric.ID{Name: "node_power_watts", Labels: metric.NewLabels("node", "a")}
	// 10s cadence so each 1m bucket really averages 6 samples.
	for i := int64(0); i < 6*60*4; i++ {
		if err := store.Append(id, metric.Gauge, metric.UnitWatt, i*10_000, float64(100+i%7)); err != nil {
			t.Fatal(err)
		}
	}
	now := int64(6*60*4-1) * 10_000
	window := int64(3 * 3600 * 1000)
	planned := Dashboard{Store: store, Panels: []Panel{
		{Title: "Power", Name: "node_power_watts", WindowMs: window, StepMs: timeseries.TierStep1m},
	}}
	snap := planned.Snapshot(now)
	if len(snap) != 1 || len(snap[0].Series) != 1 {
		t.Fatalf("planned snapshot = %+v", snap)
	}
	got := snap[0].Series[0]
	// ~180 minute buckets, not ~1080 raw samples.
	if n := len(got.Values); n < 175 || n > 182 {
		t.Fatalf("planned bucket count = %d", n)
	}
	from := now - window
	from -= from % timeseries.TierStep1m
	pts, err := store.Aggregate(id, from, now+1, timeseries.TierStep1m, timeseries.AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(got.Values) {
		t.Fatalf("bucket counts diverge: planned %d vs raw %d", len(got.Values), len(pts))
	}
	for i, pt := range pts {
		if got.Values[i] != pt.Value {
			t.Fatalf("bucket %d: planned %v vs raw %v", i, got.Values[i], pt.Value)
		}
	}
	if stats := store.RollupStats(); len(stats.Tiers) == 0 || stats.Tiers[0].Picks == 0 {
		t.Fatalf("planned panel never hit the tier: %+v", stats)
	}
}

func TestDashboardRenderText(t *testing.T) {
	store := buildStore(t)
	d := Dashboard{Store: store, Panels: []Panel{{Title: "Power", Name: "node_power_watts"}}}
	text := d.RenderText(99 * 60_000)
	if !strings.Contains(text, "== Power ==") {
		t.Fatalf("missing panel header:\n%s", text)
	}
	if !strings.Contains(text, "node_power_watts{node=a}") {
		t.Fatalf("missing series line:\n%s", text)
	}
}

func TestDashboardHTTP(t *testing.T) {
	store := buildStore(t)
	d := Dashboard{Store: store, Panels: []Panel{{Title: "Power", Name: "node_power_watts"}}}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var panels []PanelData
	if err := json.NewDecoder(resp.Body).Decode(&panels); err != nil {
		t.Fatal(err)
	}
	if len(panels) != 1 || len(panels[0].Series) != 3 {
		t.Fatalf("panels = %+v", panels)
	}

	// Explicit now parameter.
	resp2, err := srv.Client().Get(srv.URL + "?now=600000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var early []PanelData
	_ = json.NewDecoder(resp2.Body).Decode(&early)
	if len(early[0].Series[0].Values) >= len(panels[0].Series[0].Values) {
		t.Fatal("early now should see fewer samples")
	}

	// Bad now parameter is a 400.
	resp3, _ := srv.Client().Get(srv.URL + "?now=notanumber")
	if resp3.StatusCode != 400 {
		t.Fatalf("bad param status = %d", resp3.StatusCode)
	}
	resp3.Body.Close()
}
