package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

// snapMagic heads every snapshot file.
const snapMagic = "ODASNP1\n"

func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%08d.snap", seq) }

// encodeSnapshot serializes a store dump. Layout after the magic:
//
//	chunkSize  uvarint
//	numSeries  uvarint
//	per series: name, labelCount, (key, value)*, kind byte, unit,
//	            chunkCount, per chunk: sampleCount uvarint, byteLen uvarint,
//	            raw Gorilla bitstream
//
// followed by a CRC32C of everything after the magic. The chunk payloads
// are the store's own compressed bitstreams, so a snapshot costs a copy,
// not a re-encode, and is about the size of the resident compressed data.
func encodeSnapshot(chunkSize int, dump []timeseries.SeriesDump) []byte {
	buf := make([]byte, 0, 1024)
	buf = appendUvarint(buf, uint64(chunkSize))
	buf = appendUvarint(buf, uint64(len(dump)))
	for _, sd := range dump {
		buf = appendID(buf, sd.ID)
		buf = append(buf, byte(sd.Kind))
		buf = appendString(buf, string(sd.Unit))
		buf = appendUvarint(buf, uint64(len(sd.Chunks)))
		for _, cd := range sd.Chunks {
			buf = appendUvarint(buf, uint64(cd.Count))
			buf = appendUvarint(buf, uint64(len(cd.Data)))
			buf = append(buf, cd.Data...)
		}
	}
	return buf
}

// decodeSnapshot parses a snapshot payload (without magic or trailer).
func decodeSnapshot(payload []byte) (chunkSize int, dump []timeseries.SeriesDump, err error) {
	p := &payloadReader{buf: payload}
	cs, err := p.uvarint()
	if err != nil {
		return 0, nil, err
	}
	nser, err := p.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if nser > uint64(len(payload)) {
		return 0, nil, fmt.Errorf("persist: implausible series count %d", nser)
	}
	dump = make([]timeseries.SeriesDump, 0, nser)
	for i := uint64(0); i < nser; i++ {
		var sd timeseries.SeriesDump
		if sd.ID, err = p.id(); err != nil {
			return 0, nil, err
		}
		kind, err := p.byteVal()
		if err != nil {
			return 0, nil, err
		}
		sd.Kind = metric.Kind(kind)
		unit, err := p.str()
		if err != nil {
			return 0, nil, err
		}
		sd.Unit = metric.Unit(unit)
		nch, err := p.uvarint()
		if err != nil {
			return 0, nil, err
		}
		if nch > uint64(len(payload)) {
			return 0, nil, fmt.Errorf("persist: implausible chunk count %d", nch)
		}
		sd.Chunks = make([]timeseries.ChunkDump, 0, nch)
		for c := uint64(0); c < nch; c++ {
			cnt, err := p.uvarint()
			if err != nil {
				return 0, nil, err
			}
			blen, err := p.uvarint()
			if err != nil {
				return 0, nil, err
			}
			if blen > uint64(len(p.buf)-p.pos) {
				return 0, nil, fmt.Errorf("persist: chunk payload overruns snapshot")
			}
			data := append([]byte(nil), p.buf[p.pos:p.pos+int(blen)]...)
			p.pos += int(blen)
			sd.Chunks = append(sd.Chunks, timeseries.ChunkDump{Count: int(cnt), Data: data})
		}
		dump = append(dump, sd)
	}
	if p.pos != len(payload) {
		return 0, nil, fmt.Errorf("%w: %d trailing snapshot bytes", errCorruptRecord, len(payload)-p.pos)
	}
	return int(cs), dump, nil
}

// writeSnapshot durably writes a snapshot covering WAL segments < seq:
// temp file, fsync, atomic rename to its final name, directory fsync. A
// crash at any point leaves either the previous snapshot or the complete
// new one — never a half-written file under the live name.
func writeSnapshot(dir string, seq uint64, chunkSize int, dump []timeseries.SeriesDump) (int64, error) {
	payload := encodeSnapshot(chunkSize, dump)
	tmp := filepath.Join(dir, snapshotName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.Checksum(payload, castagnoli))
	if _, err = f.WriteString(snapMagic); err == nil {
		if _, err = f.Write(payload); err == nil {
			_, err = f.Write(trailer[:])
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	final := filepath.Join(dir, snapshotName(seq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(dir)
	return int64(len(snapMagic) + len(payload) + 4), nil
}

// loadSnapshot reads and validates one snapshot file, rebuilding the store
// it captured. Any inconsistency — bad magic, checksum mismatch, decode
// failure, chunk re-encode divergence — is an error so Open can fall back
// to an older snapshot.
func loadSnapshot(path string, storeOpts []timeseries.Option) (*timeseries.Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("persist: %s: bad snapshot magic", filepath.Base(path))
	}
	payload := data[len(snapMagic) : len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("persist: %s: snapshot checksum mismatch", filepath.Base(path))
	}
	chunkSize, dump, err := decodeSnapshot(payload)
	if err != nil {
		return nil, fmt.Errorf("persist: %s: %w", filepath.Base(path), err)
	}
	store, err := timeseries.RestoreStore(chunkSize, dump, storeOpts...)
	if err != nil {
		return nil, fmt.Errorf("persist: %s: %w", filepath.Base(path), err)
	}
	return store, nil
}
