package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

// snapMagic heads every snapshot file. v2 added per-series rollup tiers
// (sealed tier chunks plus the open-window accumulator); v1 snapshots from
// older deployments still load, their tiers rebuilt empty and re-folded
// from whatever the WAL replays.
const (
	snapMagic   = "ODASNP2\n"
	snapMagicV1 = "ODASNP1\n"
)

func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%08d.snap", seq) }

// encodeSnapshot serializes a store dump. Layout after the magic:
//
//	chunkSize  uvarint
//	numSeries  uvarint
//	per series: name, labelCount, (key, value)*, kind byte, unit,
//	            chunkCount, per chunk: sampleCount uvarint, byteLen uvarint,
//	            raw Gorilla bitstream,
//	            tierCount, per tier: step varint, accumulator, chunk list
//
// followed by a CRC32C of everything after the magic. The chunk payloads
// are the store's own compressed bitstreams, so a snapshot costs a copy,
// not a re-encode, and is about the size of the resident compressed data.
func encodeSnapshot(chunkSize int, dump []timeseries.SeriesDump) []byte {
	buf := make([]byte, 0, 1024)
	buf = appendUvarint(buf, uint64(chunkSize))
	buf = appendUvarint(buf, uint64(len(dump)))
	for _, sd := range dump {
		buf = appendID(buf, sd.ID)
		buf = append(buf, byte(sd.Kind))
		buf = appendString(buf, string(sd.Unit))
		buf = appendChunks(buf, sd.Chunks)
		buf = appendUvarint(buf, uint64(len(sd.Tiers)))
		for _, td := range sd.Tiers {
			buf = appendVarint(buf, td.Step)
			buf = appendAcc(buf, td.Acc)
			buf = appendChunks(buf, td.Chunks)
		}
	}
	return buf
}

func appendChunks(buf []byte, chunks []timeseries.ChunkDump) []byte {
	buf = appendUvarint(buf, uint64(len(chunks)))
	for _, cd := range chunks {
		buf = appendUvarint(buf, uint64(cd.Count))
		buf = appendUvarint(buf, uint64(len(cd.Data)))
		buf = append(buf, cd.Data...)
	}
	return buf
}

func appendFloat(buf []byte, v float64) []byte {
	var vb [8]byte
	binary.BigEndian.PutUint64(vb[:], math.Float64bits(v))
	return append(buf, vb[:]...)
}

// appendAcc serializes a tier's open-window accumulator; recovery must
// resume folding exactly where the dumped store stopped.
func appendAcc(buf []byte, a timeseries.RollupAcc) []byte {
	active := byte(0)
	if a.Active {
		active = 1
	}
	buf = append(buf, active)
	buf = appendVarint(buf, a.Start)
	buf = appendVarint(buf, a.Count)
	buf = appendFloat(buf, a.Sum)
	buf = appendFloat(buf, a.Min)
	buf = appendFloat(buf, a.Max)
	buf = appendVarint(buf, a.FirstT)
	buf = appendFloat(buf, a.FirstV)
	buf = appendVarint(buf, a.LastT)
	return appendFloat(buf, a.LastV)
}

// decodeSnapshot parses a snapshot payload (without magic or trailer).
// version is the format the magic announced; v1 payloads carry no tiers.
func decodeSnapshot(payload []byte, version int) (chunkSize int, dump []timeseries.SeriesDump, err error) {
	p := &payloadReader{buf: payload}
	cs, err := p.uvarint()
	if err != nil {
		return 0, nil, err
	}
	nser, err := p.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if nser > uint64(len(payload)) {
		return 0, nil, fmt.Errorf("persist: implausible series count %d", nser)
	}
	dump = make([]timeseries.SeriesDump, 0, nser)
	for i := uint64(0); i < nser; i++ {
		var sd timeseries.SeriesDump
		if sd.ID, err = p.id(); err != nil {
			return 0, nil, err
		}
		kind, err := p.byteVal()
		if err != nil {
			return 0, nil, err
		}
		sd.Kind = metric.Kind(kind)
		unit, err := p.str()
		if err != nil {
			return 0, nil, err
		}
		sd.Unit = metric.Unit(unit)
		if sd.Chunks, err = p.chunks(); err != nil {
			return 0, nil, err
		}
		if version >= 2 {
			ntier, err := p.uvarint()
			if err != nil {
				return 0, nil, err
			}
			if ntier > uint64(len(payload)) {
				return 0, nil, fmt.Errorf("persist: implausible tier count %d", ntier)
			}
			for t := uint64(0); t < ntier; t++ {
				var td timeseries.TierDump
				if td.Step, err = p.varint(); err != nil {
					return 0, nil, err
				}
				if td.Acc, err = p.acc(); err != nil {
					return 0, nil, err
				}
				if td.Chunks, err = p.chunks(); err != nil {
					return 0, nil, err
				}
				sd.Tiers = append(sd.Tiers, td)
			}
		}
		dump = append(dump, sd)
	}
	if p.pos != len(payload) {
		return 0, nil, fmt.Errorf("%w: %d trailing snapshot bytes", errCorruptRecord, len(payload)-p.pos)
	}
	return int(cs), dump, nil
}

// chunks decodes one chunk list as written by appendChunks.
func (p *payloadReader) chunks() ([]timeseries.ChunkDump, error) {
	nch, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if nch > uint64(len(p.buf)) {
		return nil, fmt.Errorf("persist: implausible chunk count %d", nch)
	}
	out := make([]timeseries.ChunkDump, 0, nch)
	for c := uint64(0); c < nch; c++ {
		cnt, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		blen, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if blen > uint64(len(p.buf)-p.pos) {
			return nil, fmt.Errorf("persist: chunk payload overruns snapshot")
		}
		data := append([]byte(nil), p.buf[p.pos:p.pos+int(blen)]...)
		p.pos += int(blen)
		out = append(out, timeseries.ChunkDump{Count: int(cnt), Data: data})
	}
	return out, nil
}

// acc decodes a rollup accumulator as written by appendAcc.
func (p *payloadReader) acc() (timeseries.RollupAcc, error) {
	var a timeseries.RollupAcc
	active, err := p.byteVal()
	if err != nil {
		return a, err
	}
	a.Active = active != 0
	if a.Start, err = p.varint(); err != nil {
		return a, err
	}
	if a.Count, err = p.varint(); err != nil {
		return a, err
	}
	if a.Sum, err = p.float(); err != nil {
		return a, err
	}
	if a.Min, err = p.float(); err != nil {
		return a, err
	}
	if a.Max, err = p.float(); err != nil {
		return a, err
	}
	if a.FirstT, err = p.varint(); err != nil {
		return a, err
	}
	if a.FirstV, err = p.float(); err != nil {
		return a, err
	}
	if a.LastT, err = p.varint(); err != nil {
		return a, err
	}
	if a.LastV, err = p.float(); err != nil {
		return a, err
	}
	return a, nil
}

// writeSnapshot durably writes a snapshot covering WAL segments < seq:
// temp file, fsync, atomic rename to its final name, directory fsync. A
// crash at any point leaves either the previous snapshot or the complete
// new one — never a half-written file under the live name.
func writeSnapshot(dir string, seq uint64, chunkSize int, dump []timeseries.SeriesDump) (int64, error) {
	payload := encodeSnapshot(chunkSize, dump)
	tmp := filepath.Join(dir, snapshotName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.Checksum(payload, castagnoli))
	if _, err = f.WriteString(snapMagic); err == nil {
		if _, err = f.Write(payload); err == nil {
			_, err = f.Write(trailer[:])
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	final := filepath.Join(dir, snapshotName(seq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(dir)
	return int64(len(snapMagic) + len(payload) + 4), nil
}

// loadSnapshot reads and validates one snapshot file, rebuilding the store
// it captured. Any inconsistency — bad magic, checksum mismatch, decode
// failure, chunk re-encode divergence — is an error so Open can fall back
// to an older snapshot.
func loadSnapshot(path string, storeOpts []timeseries.Option) (*timeseries.Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	version := 0
	switch {
	case len(data) >= len(snapMagic)+4 && string(data[:len(snapMagic)]) == snapMagic:
		version = 2
	case len(data) >= len(snapMagicV1)+4 && string(data[:len(snapMagicV1)]) == snapMagicV1:
		version = 1
	default:
		return nil, fmt.Errorf("persist: %s: bad snapshot magic", filepath.Base(path))
	}
	payload := data[len(snapMagic) : len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("persist: %s: snapshot checksum mismatch", filepath.Base(path))
	}
	chunkSize, dump, err := decodeSnapshot(payload, version)
	if err != nil {
		return nil, fmt.Errorf("persist: %s: %w", filepath.Base(path), err)
	}
	store, err := timeseries.RestoreStore(chunkSize, dump, storeOpts...)
	if err != nil {
		return nil, fmt.Errorf("persist: %s: %w", filepath.Base(path), err)
	}
	return store, nil
}
