package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

// Options tunes a durable store.
type Options struct {
	// ChunkSize is the TSDB samples-per-chunk for a fresh store (0 uses the
	// timeseries default). When a snapshot exists its recorded chunk size
	// wins, because replay must rebuild identical chunk boundaries.
	ChunkSize int
	// StoreOptions tune the underlying store (shard count, query cache).
	StoreOptions []timeseries.Option
	// SegmentSize rotates WAL segments at this byte size (0 = 8 MiB).
	SegmentSize int64
	// Fsync picks the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval cadence (0 = 100ms).
	FsyncEvery time.Duration
	// SnapshotInterval checkpoints on a cadence (0 = only on Close or an
	// explicit Checkpoint call).
	SnapshotInterval time.Duration
}

// Stats reports the durable store's recovery and IO counters.
type Stats struct {
	// Segments and SegmentBytes describe the live WAL files on disk.
	Segments     int
	SegmentBytes int64
	// WALRecords / WALBytes count records appended since Open.
	WALRecords uint64
	WALBytes   uint64
	// Fsyncs counts fsync syscalls; CoalescedSyncs counts sync requests a
	// concurrent group-commit leader satisfied for free.
	Fsyncs         uint64
	CoalescedSyncs uint64
	// Checkpoints counts snapshots written since Open; SnapshotBytes is the
	// newest snapshot's file size.
	Checkpoints   uint64
	SnapshotBytes int64
	// Recovery describes what Open found: whether a snapshot was restored,
	// how many WAL segments and records were replayed on top of it, and how
	// many torn tails were truncated.
	SnapshotLoaded   bool
	ReplayedSegments int
	ReplayedRecords  uint64
	TruncatedTails   int
	TruncatedBytes   int64
}

// DurableStore wraps a timeseries.Store with write-ahead logging and
// snapshot checkpoints. Every mutating operation is logged before it is
// applied, so a crash at any instant recovers to a store byte-identical to
// the acknowledged prefix. Reads go straight to Store() — durability adds
// nothing to the query path. Mutations MUST go through the wrapper;
// writing to Store() directly bypasses the log and diverges recovery.
type DurableStore struct {
	store *timeseries.Store
	wal   *wal
	dir   string
	opts  Options

	// mu excludes checkpoints from mutating ops: ops hold it shared, a
	// checkpoint holds it exclusively across dump+rotate so the snapshot
	// matches the WAL cut exactly. opMu additionally serializes log+apply
	// so WAL order equals apply order — replay must reproduce the same
	// winner for racing same-series appends. Both are held only across
	// in-memory work; fsync happens after release, where group commit
	// batches concurrent acknowledgements.
	mu     sync.RWMutex
	opMu   sync.Mutex
	closed bool

	// WAL-ref dictionary for the ref ingest fast path, guarded by opMu
	// (checkpoints touch it under the exclusive d.mu instead, which equally
	// excludes every op). walRefs binds store ref slots — stable for the
	// life of a store instance — to the uvarint refs used in opDefine /
	// opAppendRef records; a checkpoint clears it, so post-snapshot
	// segments are self-contained (every ref they use is re-defined within
	// them). refEnc/refRecs/refValid are reused encode scratch.
	walRefs    map[uint32]uint64
	nextWALRef uint64
	refEnc     []byte
	refRecs    []refSample
	refValid   []timeseries.RefEntry

	ckptMu sync.Mutex // serializes whole checkpoints (ticker vs Close)

	checkpoints   atomic.Uint64
	snapshotBytes atomic.Int64

	recovery struct {
		snapshotLoaded   bool
		replayedSegments int
		replayedRecords  uint64
		truncatedTails   int
		truncatedBytes   int64
	}

	stop chan struct{}
	bg   sync.WaitGroup
}

// Open recovers (or creates) a durable store in dir: it loads the newest
// valid snapshot, replays every newer WAL segment — truncating a torn tail
// at the first corrupt record — and starts a fresh WAL segment for new
// writes. Recovery is idempotent: reopening without writes replays to the
// identical store.
func Open(dir string, opts Options) (*DurableStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DurableStore{dir: dir, opts: opts, stop: make(chan struct{}), walRefs: make(map[uint32]uint64)}

	// Newest valid snapshot wins; corrupt ones fall back to older, then to
	// an empty store with full WAL replay.
	snaps, err := listSeqFiles(dir, "snap-", ".snap")
	if err != nil {
		return nil, err
	}
	startSeq := uint64(0) // replay segments with seq >= startSeq
	for i := len(snaps) - 1; i >= 0; i-- {
		st, err := loadSnapshot(snaps[i].path, opts.StoreOptions)
		if err != nil {
			continue
		}
		d.store = st
		d.recovery.snapshotLoaded = true
		startSeq = snaps[i].seq
		break
	}
	if d.store == nil {
		d.store = timeseries.NewStore(opts.ChunkSize, opts.StoreOptions...)
	}

	segs, err := listSeqFiles(dir, "wal-", ".seg")
	if err != nil {
		return nil, err
	}
	maxSeq := startSeq
	// One RefTable spans the whole ordered replay: opDefine bindings carry
	// across segment boundaries exactly as the writer laid them down.
	rt := NewRefTable()
	for _, sg := range segs {
		if sg.seq > maxSeq {
			maxSeq = sg.seq
		}
		if sg.seq < startSeq {
			continue // fully covered by the snapshot; GC'd at next checkpoint
		}
		data, err := os.ReadFile(sg.path)
		if err != nil {
			return nil, err
		}
		res := replaySegment(data, func(rec walRecord) { rec.apply(d.store, rt) })
		d.recovery.replayedSegments++
		d.recovery.replayedRecords += res.records
		if res.torn {
			d.recovery.truncatedTails++
			d.recovery.truncatedBytes += res.tornSize
			if err := os.Truncate(sg.path, res.offset); err != nil {
				return nil, fmt.Errorf("persist: truncate torn tail of %s: %w", sg.path, err)
			}
			// Anything in later segments was written after a record this
			// log already lost; stop rather than replay over a gap.
			break
		}
	}

	d.wal, err = openWAL(dir, maxSeq+1, opts.SegmentSize)
	if err != nil {
		return nil, err
	}
	if st, err := os.Stat(filepath.Join(dir, snapshotName(startSeq))); err == nil {
		d.snapshotBytes.Store(st.Size())
	}

	fsyncEvery := opts.FsyncEvery
	if fsyncEvery <= 0 {
		fsyncEvery = 100 * time.Millisecond
	}
	if opts.Fsync == FsyncInterval {
		d.bg.Add(1)
		go d.runTicker(fsyncEvery, func() { _ = d.wal.sync() })
	}
	if opts.SnapshotInterval > 0 {
		d.bg.Add(1)
		go d.runTicker(opts.SnapshotInterval, func() { _ = d.Checkpoint() })
	}
	return d, nil
}

func (d *DurableStore) runTicker(every time.Duration, fn func()) {
	defer d.bg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			fn()
		}
	}
}

// Store exposes the underlying TSDB for queries. Do not mutate it
// directly — use the wrapper's Append/Downsample/Retain so the WAL sees
// every change.
func (d *DurableStore) Store() *timeseries.Store { return d.store }

// logApply writes one WAL record and applies it under the op lock,
// returning the record's append sequence for the fsync policy.
func (d *DurableStore) logApply(payload []byte, apply func()) (uint64, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return 0, fmt.Errorf("persist: %w", timeseries.ErrStoreClosed)
	}
	d.opMu.Lock()
	seq, _, err := d.wal.append(payload)
	if err == nil {
		apply()
	}
	d.opMu.Unlock()
	d.mu.RUnlock()
	return seq, err
}

// ack applies the fsync policy before an operation is acknowledged.
func (d *DurableStore) ack(seq uint64) error {
	if d.opts.Fsync == FsyncAlways {
		return d.wal.syncTo(seq)
	}
	return nil
}

// AppendBatch logs and ingests a batch; semantics match
// timeseries.Store.AppendBatch (per-sample rejections do not abort the
// batch). Under FsyncAlways the call returns only after the batch is
// durable.
func (d *DurableStore) AppendBatch(entries []timeseries.BatchEntry) (int, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	var n int
	var appErr error
	seq, err := d.logApply(encodeAppend(nil, entries), func() {
		n, appErr = d.store.AppendBatch(entries)
	})
	if err != nil {
		return 0, err
	}
	if err := d.ack(seq); err != nil {
		return n, err
	}
	return n, appErr
}

// Append logs and ingests one sample.
func (d *DurableStore) Append(id metric.ID, kind metric.Kind, unit metric.Unit, t int64, v float64) error {
	n, err := d.AppendBatch([]timeseries.BatchEntry{{ID: id, Kind: kind, Unit: unit, T: t, V: v}})
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("timeseries: out-of-order sample for %s", id.Key())
	}
	return nil
}

// RefEpoch reports the underlying store's ref generation (see
// timeseries.Store.RefEpoch).
func (d *DurableStore) RefEpoch() uint64 { return d.store.RefEpoch() }

// Resolve interns id in the underlying store and returns its ref, logging
// a WAL series definition the first time this wrapper binds the series (or
// the first time after a checkpoint cleared the WAL-ref table). Like every
// mutation, the definition is logged before the series is created, and
// under FsyncAlways the call returns only after it is durable — the
// created (possibly still empty) series is part of acknowledged state.
func (d *DurableStore) Resolve(id metric.ID, kind metric.Kind, unit metric.Unit) (timeseries.SeriesRef, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return 0, fmt.Errorf("persist: %w", timeseries.ErrStoreClosed)
	}
	d.opMu.Lock()
	sref, seq, err := d.resolveLocked(id, kind, unit)
	d.opMu.Unlock()
	d.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	if seq != 0 {
		if err := d.ack(seq); err != nil {
			return sref, err
		}
	}
	return sref, nil
}

// resolveLocked hands out a ref for id, logging an opDefine when the
// series has no live WAL-ref binding. The caller holds opMu and d.mu
// (shared); seq is 0 when nothing was logged.
func (d *DurableStore) resolveLocked(id metric.ID, kind metric.Kind, unit metric.Unit) (timeseries.SeriesRef, uint64, error) {
	if sref, ok := d.store.LookupRef(id); ok {
		if _, bound := d.walRefs[sref.Slot()]; bound {
			return sref, 0, nil
		}
	}
	d.nextWALRef++
	d.refEnc = encodeDefine(d.refEnc[:0], d.nextWALRef, id, kind, unit)
	seq, _, err := d.wal.append(d.refEnc)
	if err != nil {
		d.nextWALRef--
		return 0, 0, err
	}
	sref, err := d.store.Resolve(id, kind, unit)
	if err != nil {
		return 0, 0, err
	}
	d.walRefs[sref.Slot()] = d.nextWALRef
	return sref, seq, nil
}

// AppendRefs logs and ingests ref-addressed samples; semantics match
// timeseries.Store.AppendRefs. Stale refs are rejected before logging, so
// the WAL carries only samples whose addressing the store accepts and
// replay reproduces the same outcome; a valid ref with no live WAL
// binding (possible after a checkpoint cleared the table) gets its
// definition re-logged on the fly. The per-sample record cost is a small
// ref uvarint + delta-t + value instead of a full re-encoded ID.
func (d *DurableStore) AppendRefs(entries []timeseries.RefEntry) (int, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return 0, fmt.Errorf("persist: %w", timeseries.ErrStoreClosed)
	}
	d.opMu.Lock()
	epoch := d.store.RefEpoch()
	var firstErr error
	var lastSeq uint64
	d.refValid = d.refValid[:0]
	d.refRecs = d.refRecs[:0]
	for _, e := range entries {
		if e.Ref.Epoch() != epoch {
			if firstErr == nil {
				firstErr = timeseries.ErrStaleRef
			}
			continue
		}
		slot := e.Ref.Slot()
		wr, bound := d.walRefs[slot]
		if !bound {
			id, kind, unit, live := d.store.RefInfo(e.Ref)
			if !live {
				if firstErr == nil {
					firstErr = timeseries.ErrStaleRef
				}
				continue
			}
			d.nextWALRef++
			wr = d.nextWALRef
			d.refEnc = encodeDefine(d.refEnc[:0], wr, id, kind, unit)
			seq, _, err := d.wal.append(d.refEnc)
			if err != nil {
				d.opMu.Unlock()
				d.mu.RUnlock()
				return 0, err
			}
			d.walRefs[slot] = wr
			lastSeq = seq
		}
		d.refValid = append(d.refValid, e)
		d.refRecs = append(d.refRecs, refSample{ref: wr, t: e.T, v: e.V})
	}
	var n int
	var appErr error
	if len(d.refRecs) > 0 {
		d.refEnc = encodeAppendRef(d.refEnc[:0], d.refRecs)
		seq, _, err := d.wal.append(d.refEnc)
		if err != nil {
			d.opMu.Unlock()
			d.mu.RUnlock()
			return 0, err
		}
		lastSeq = seq
		n, appErr = d.store.AppendRefs(d.refValid)
	}
	d.opMu.Unlock()
	d.mu.RUnlock()
	if lastSeq != 0 {
		if err := d.ack(lastSeq); err != nil {
			return n, err
		}
	}
	if appErr == nil {
		appErr = firstErr
	}
	return n, appErr
}

// Downsample logs and applies a downsample; semantics match
// timeseries.Store.Downsample.
func (d *DurableStore) Downsample(id metric.ID, step int64) (int, error) {
	var n int
	var dsErr error
	seq, err := d.logApply(encodeDownsample(nil, id, step), func() {
		n, dsErr = d.store.Downsample(id, step)
	})
	if err != nil {
		return 0, err
	}
	if err := d.ack(seq); err != nil {
		return n, err
	}
	return n, dsErr
}

// Retain logs and applies retention; semantics match
// timeseries.Store.Retain plus a durability error.
func (d *DurableStore) Retain(cutoff int64) (int, error) {
	var n int
	seq, err := d.logApply(encodeRetain(nil, cutoff), func() {
		n = d.store.Retain(cutoff)
	})
	if err != nil {
		return 0, err
	}
	return n, d.ack(seq)
}

// RetainTier logs and applies per-tier rollup retention; semantics match
// timeseries.Store.RetainTier plus a durability error. The WAL record
// carries the tier step, so replay ages exactly the tier the live call did.
func (d *DurableStore) RetainTier(step, cutoff int64) (int, error) {
	var n int
	seq, err := d.logApply(encodeRetainTier(nil, step, cutoff), func() {
		n = d.store.RetainTier(step, cutoff)
	})
	if err != nil {
		return 0, err
	}
	return n, d.ack(seq)
}

// Checkpoint writes a snapshot of the current store and garbage-collects
// the WAL segments and older snapshots it covers. Mutations are blocked
// only while the store is dumped (a memcpy of the compressed chunks) and
// the WAL rotated; serialization and disk IO happen concurrently with new
// writes.
func (d *DurableStore) Checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return fmt.Errorf("persist: %w", timeseries.ErrStoreClosed)
	}
	dump := d.store.Dump()
	chunkSize := d.store.ChunkSize()
	cutSeq, err := d.wal.rotate()
	// The snapshot supersedes every opDefine logged so far; clear the
	// WAL-ref table (safe here: the exclusive d.mu excludes every op) so
	// post-cut segments re-define each series before first use and replay
	// never depends on a GC'd segment.
	clear(d.walRefs)
	d.nextWALRef = 0
	d.mu.Unlock()
	if err != nil {
		return err
	}

	size, err := writeSnapshot(d.dir, cutSeq, chunkSize, dump)
	if err != nil {
		return err
	}
	d.checkpoints.Add(1)
	d.snapshotBytes.Store(size)

	// The snapshot now covers every segment before cutSeq and supersedes
	// every older snapshot; drop both. Best effort — leftovers are ignored
	// (and re-collected) by the next Open/Checkpoint.
	if segs, err := listSeqFiles(d.dir, "wal-", ".seg"); err == nil {
		for _, sg := range segs {
			if sg.seq < cutSeq {
				_ = os.Remove(sg.path)
			}
		}
	}
	if snaps, err := listSeqFiles(d.dir, "snap-", ".snap"); err == nil {
		for _, sn := range snaps {
			if sn.seq < cutSeq {
				_ = os.Remove(sn.path)
			}
		}
	}
	syncDir(d.dir)
	return nil
}

// Close drains background work, writes a final checkpoint and closes the
// WAL. Further mutations fail with timeseries.ErrStoreClosed (wrapped);
// Store() remains readable. A store reopened after a clean Close recovers
// purely from the snapshot — zero replay.
func (d *DurableStore) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()

	close(d.stop)
	d.bg.Wait()

	err := d.Checkpoint()

	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()

	if cerr := d.wal.close(); err == nil {
		err = cerr
	}
	return err
}

// Crash simulates a hard failure — what SIGKILL or a power cut leaves
// behind: background work stops and the WAL file handle closes with no
// checkpoint, no flush ordering and no final state write. The directory
// is left exactly as the crash instant had it, ready for Open to recover.
// It exists for the crash-test matrix and the chaos campaign harness;
// production shutdown is Close. After Crash the store is closed: further
// mutations fail with timeseries.ErrStoreClosed (wrapped) and Store()
// remains readable.
func (d *DurableStore) Crash() {
	close(d.stop)
	d.bg.Wait()
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.wal.mu.Lock()
	if d.wal.f != nil {
		d.wal.f.Close()
		d.wal.f = nil
	}
	d.wal.mu.Unlock()
}

// Stats returns the recovery and IO counters. Segment and snapshot sizes
// are read from the directory so they reflect checkpoint GC.
func (d *DurableStore) Stats() Stats {
	st := Stats{
		WALRecords:       d.wal.records.Load(),
		WALBytes:         d.wal.bytes.Load(),
		Fsyncs:           d.wal.fsyncs.Load(),
		CoalescedSyncs:   d.wal.coalesced.Load(),
		Checkpoints:      d.checkpoints.Load(),
		SnapshotBytes:    d.snapshotBytes.Load(),
		SnapshotLoaded:   d.recovery.snapshotLoaded,
		ReplayedSegments: d.recovery.replayedSegments,
		ReplayedRecords:  d.recovery.replayedRecords,
		TruncatedTails:   d.recovery.truncatedTails,
		TruncatedBytes:   d.recovery.truncatedBytes,
	}
	if segs, err := listSeqFiles(d.dir, "wal-", ".seg"); err == nil {
		st.Segments = len(segs)
		for _, sg := range segs {
			if fi, err := os.Stat(sg.path); err == nil {
				st.SegmentBytes += fi.Size()
			}
		}
	}
	return st
}
