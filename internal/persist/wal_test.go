package persist

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

func testID(name, node string) metric.ID {
	return metric.ID{Name: name, Labels: metric.NewLabels("node", node)}
}

func TestRecordRoundTrip(t *testing.T) {
	entries := []timeseries.BatchEntry{
		{ID: testID("power", "n01"), Kind: metric.Gauge, Unit: metric.UnitWatt, T: 1000, V: 220.5},
		{ID: testID("power", "n02"), Kind: metric.Gauge, Unit: metric.UnitWatt, T: 1000, V: 198.25},
		{ID: metric.ID{Name: "temp"}, Kind: metric.Counter, Unit: metric.UnitCelsius, T: -5000, V: math.Inf(1)},
	}
	cases := []struct {
		name    string
		payload []byte
		check   func(t *testing.T, rec walRecord)
	}{
		{"append", encodeAppend(nil, entries), func(t *testing.T, rec walRecord) {
			if rec.op != opAppend || !reflect.DeepEqual(rec.entries, entries) {
				t.Fatalf("append round trip mismatch: %+v", rec)
			}
		}},
		{"downsample", encodeDownsample(nil, testID("power", "n01"), 60000), func(t *testing.T, rec walRecord) {
			if rec.op != opDownsample || rec.step != 60000 || rec.id.Key() != testID("power", "n01").Key() {
				t.Fatalf("downsample round trip mismatch: %+v", rec)
			}
		}},
		{"retain", encodeRetain(nil, -123456), func(t *testing.T, rec walRecord) {
			if rec.op != opRetain || rec.cutoff != -123456 {
				t.Fatalf("retain round trip mismatch: %+v", rec)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := decodeRecord(tc.payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			tc.check(t, rec)
		})
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":          nil,
		"unknown op":     {99, 1, 2, 3},
		"truncated":      encodeAppend(nil, []timeseries.BatchEntry{{ID: testID("m", "n"), T: 1, V: 2}})[:5],
		"trailing bytes": append(encodeRetain(nil, 7), 0xFF),
	}
	for name, payload := range cases {
		if _, err := decodeRecord(payload); err == nil {
			t.Errorf("%s: decode accepted garbage", name)
		}
	}
}

func TestWALSegmentRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1, 256) // tiny segments force rotation
	if err != nil {
		t.Fatal(err)
	}
	const nrec = 40
	for i := 0; i < nrec; i++ {
		payload := encodeRetain(nil, int64(i))
		if _, _, err := w.append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSeqFiles(dir, "wal-", ".seg")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", len(segs))
	}
	var cutoffs []int64
	for _, sg := range segs {
		data, err := os.ReadFile(sg.path)
		if err != nil {
			t.Fatal(err)
		}
		res := replaySegment(data, func(rec walRecord) { cutoffs = append(cutoffs, rec.cutoff) })
		if res.torn {
			t.Fatalf("segment %s unexpectedly torn", sg.path)
		}
	}
	if len(cutoffs) != nrec {
		t.Fatalf("replayed %d records, want %d", len(cutoffs), nrec)
	}
	for i, c := range cutoffs {
		if c != int64(i) {
			t.Fatalf("record %d out of order: got cutoff %d", i, c)
		}
	}
}

func TestReplayTornTailVariants(t *testing.T) {
	valid := func() []byte {
		buf := []byte(segMagic)
		for i := 0; i < 3; i++ {
			payload := encodeRetain(nil, int64(i))
			var hdr [recordHeaderLen]byte
			binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
			binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
			buf = append(buf, hdr[:]...)
			buf = append(buf, payload...)
		}
		return buf
	}

	t.Run("clean", func(t *testing.T) {
		n := 0
		res := replaySegment(valid(), func(walRecord) { n++ })
		if res.torn || n != 3 || res.records != 3 {
			t.Fatalf("clean segment misread: torn=%v records=%d", res.torn, res.records)
		}
	})
	t.Run("empty file", func(t *testing.T) {
		res := replaySegment(nil, func(walRecord) { t.Fatal("applied record from empty file") })
		if res.torn || res.records != 0 {
			t.Fatalf("empty file should be a clean empty segment: %+v", res)
		}
	})
	t.Run("header only", func(t *testing.T) {
		res := replaySegment([]byte(segMagic), func(walRecord) { t.Fatal("applied record") })
		if res.torn || res.records != 0 {
			t.Fatalf("header-only file should be clean: %+v", res)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		res := replaySegment([]byte("NOTAWAL!rest"), func(walRecord) { t.Fatal("applied record") })
		if !res.torn || res.records != 0 {
			t.Fatalf("bad magic should be torn with no records: %+v", res)
		}
	})
	t.Run("truncated mid-record", func(t *testing.T) {
		data := valid()
		cut := data[:len(data)-3]
		n := 0
		res := replaySegment(cut, func(walRecord) { n++ })
		if !res.torn || n != 2 {
			t.Fatalf("want torn tail with 2 clean records, got torn=%v n=%d", res.torn, n)
		}
		if res.offset >= int64(len(cut)) {
			t.Fatalf("offset %d should mark the clean prefix before %d", res.offset, len(cut))
		}
	})
	t.Run("bit flip in payload", func(t *testing.T) {
		data := valid()
		data[len(data)-1] ^= 0x40 // corrupt the last record's payload
		n := 0
		res := replaySegment(data, func(walRecord) { n++ })
		if !res.torn || n != 2 {
			t.Fatalf("want checksum to reject last record, got torn=%v n=%d", res.torn, n)
		}
	})
	t.Run("absurd length prefix", func(t *testing.T) {
		data := append(valid(), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0)
		n := 0
		res := replaySegment(data, func(walRecord) { n++ })
		if !res.torn || n != 3 {
			t.Fatalf("want clean prefix then torn, got torn=%v n=%d", res.torn, n)
		}
	})
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	store := timeseries.NewStore(4)
	for i := 0; i < 11; i++ {
		if err := store.Append(testID("load", "n01"), metric.Gauge, metric.UnitPercent, int64(1000+i*50), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	dump := store.Dump()
	chunkSize, back, err := decodeSnapshot(encodeSnapshot(store.ChunkSize(), dump), 2)
	if err != nil {
		t.Fatal(err)
	}
	if chunkSize != store.ChunkSize() || !reflect.DeepEqual(back, dump) {
		t.Fatalf("snapshot payload round trip diverged")
	}
}

func TestLoadSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	store := timeseries.NewStore(4)
	for i := 0; i < 9; i++ {
		if err := store.Append(testID("load", "n01"), metric.Gauge, metric.UnitPercent, int64(1000+i*50), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := writeSnapshot(dir, 3, store.ChunkSize(), store.Dump()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName(3))
	if _, err := loadSnapshot(path, nil); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(path, nil); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
}

func TestWALIntervalSyncSkipsIdleTicks(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1, DefaultSegmentSize)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.fsyncs.Load(); got != 0 {
		t.Fatalf("idle tick on empty WAL fsynced %d times", got)
	}
	if _, _, err := w.append(encodeRetain(nil, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.fsyncs.Load(); got != 1 {
		t.Fatalf("dirty tick should fsync once, got %d", got)
	}
	if err := w.sync(); err != nil { // nothing new since the last sync
		t.Fatal(err)
	}
	if got := w.fsyncs.Load(); got != 1 {
		t.Fatalf("idle tick after sync fsynced again: %d", got)
	}
}

func TestWALSyncToCoalesces(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1, DefaultSegmentSize)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	seq1, _, err := w.append(encodeRetain(nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	seq2, _, err := w.append(encodeRetain(nil, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.syncTo(seq2); err != nil {
		t.Fatal(err)
	}
	if got := w.fsyncs.Load(); got != 1 {
		t.Fatalf("fsyncs = %d, want 1", got)
	}
	// seq1 was covered by the leader's fsync: free.
	if err := w.syncTo(seq1); err != nil {
		t.Fatal(err)
	}
	if w.fsyncs.Load() != 1 || w.coalesced.Load() != 1 {
		t.Fatalf("covered sync should coalesce: fsyncs=%d coalesced=%d", w.fsyncs.Load(), w.coalesced.Load())
	}
}

func TestLoadSnapshotRejectsTruncatedAndBadMagic(t *testing.T) {
	dir := t.TempDir()
	if _, err := writeSnapshot(dir, 1, 4, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:3], 0o644); err != nil { // shorter than magic+trailer
		t.Fatal(err)
	}
	if _, err := loadSnapshot(path, nil); err == nil {
		t.Fatal("truncated snapshot loaded")
	}
	bad := append([]byte("WRONGMG\n"), data[len(snapMagic):]...)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(path, nil); err == nil {
		t.Fatal("bad-magic snapshot loaded")
	}
	if _, err := loadSnapshot(filepath.Join(dir, "missing.snap"), nil); err == nil {
		t.Fatal("missing snapshot loaded")
	}
}

func TestDurableAppendSurfacesRejection(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id := testID("power", "n01")
	if err := d.Append(id, metric.Gauge, metric.UnitWatt, 1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(id, metric.Gauge, metric.UnitWatt, 500, 2); err == nil {
		t.Fatal("out-of-order append must error")
	}
}

// TestSnapshotPayloadTruncationSweep drives decodeSnapshot over every
// truncated prefix of a valid payload: each must either error cleanly or
// (for the full payload) round-trip — never panic or fabricate series.
func TestSnapshotPayloadTruncationSweep(t *testing.T) {
	store := timeseries.NewStore(4)
	for i := 0; i < 13; i++ {
		if err := store.Append(testID("load", "n01"), metric.Gauge, metric.UnitPercent, int64(1000+i*50), float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := store.Append(testID("temp", "n02"), metric.Counter, metric.UnitCelsius, int64(1000+i*50), float64(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	payload := encodeSnapshot(store.ChunkSize(), store.Dump())
	for cut := 0; cut < len(payload); cut++ {
		if _, _, err := decodeSnapshot(payload[:cut], 2); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(payload))
		}
	}
	if _, _, err := decodeSnapshot(payload, 2); err != nil {
		t.Fatalf("full payload failed: %v", err)
	}
}
