package persist

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

func TestGenCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") == "" {
		t.Skip("set GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	frame := func(payloads ...[]byte) []byte {
		buf := []byte(segMagic)
		for _, p := range payloads {
			var hdr [recordHeaderLen]byte
			binary.BigEndian.PutUint32(hdr[0:4], uint32(len(p)))
			binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
			buf = append(buf, hdr[:]...)
			buf = append(buf, p...)
		}
		return buf
	}
	badCRC := frame(encodeRetain(nil, 42))
	badCRC[len(segMagic)+4] ^= 0xFF
	defV2, appV2, undefV2, reboundV2 := walRefSeedPayloads()
	truncatedDef := frame(defV2)
	truncatedDef = truncatedDef[:len(truncatedDef)-3]
	seeds := map[string][]byte{
		"seed-empty-segment":    {},
		"seed-magic-only":       []byte(segMagic),
		"seed-truncated-prefix": []byte(segMagic + "\x00\x00"),
		"seed-bad-crc":          badCRC,
		"seed-valid-multi": frame(
			encodeRetain(nil, 9),
			encodeDownsample(nil, metric.ID{Name: "power", Labels: metric.NewLabels("node", "n01")}, 60000),
			encodeAppend(nil, []timeseries.BatchEntry{{ID: metric.ID{Name: "temp"}, Kind: metric.Gauge, Unit: metric.UnitCelsius, T: 1000, V: 21.5}}),
		),
		"seed-ref-define-append": frame(defV2, appV2),
		"seed-ref-undefined":     frame(undefV2),
		"seed-ref-rebound":       frame(defV2, reboundV2, appV2),
		"seed-ref-torn-define":   truncatedDef,
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.QuoteToASCII(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
