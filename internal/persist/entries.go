package persist

import (
	"repro/internal/timeseries"
)

// RecordEntries decodes one shipped WAL record into the append entries it
// carries, without applying it to any store. A joining cluster node uses
// this to tail a donor's WAL and import only the key range it now owns:
// unlike ApplyRecord, nothing lands anywhere — the caller filters the
// returned entries by ring ownership and appends the survivors itself.
//
// rt accumulates opDefine bindings across the records of one ordered
// stream so ref-addressed appends resolve to full identities; use one
// dedicated RefTable per stream and do not share it with ApplyRecord
// (RecordEntries never resolves store refs, so its definitions carry no
// SeriesRef). Maintenance records (downsample/retention) return no entries:
// the importing node applies its own retention policy to the imported data.
func RecordEntries(rt *RefTable, payload []byte) ([]timeseries.BatchEntry, error) {
	rec, err := decodeRecord(payload)
	if err != nil {
		return nil, err
	}
	switch rec.op {
	case opAppend:
		return rec.entries, nil
	case opDefine:
		rt.defs[rec.ref] = refDef{id: rec.id, kind: rec.kind, unit: rec.unit}
		return nil, nil
	case opAppendRef:
		entries := make([]timeseries.BatchEntry, 0, len(rec.refEntries))
		for _, e := range rec.refEntries {
			d, ok := rt.defs[e.ref]
			if !ok {
				continue // undefined ref: tolerated, like replay
			}
			entries = append(entries, timeseries.BatchEntry{
				ID: d.id, Kind: d.kind, Unit: d.unit, T: e.t, V: e.v,
			})
		}
		return entries, nil
	}
	return nil, nil
}
