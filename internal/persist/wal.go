package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// segMagic heads every WAL segment file.
const segMagic = "ODAWAL1\n"

// DefaultSegmentSize is the WAL rotation threshold.
const DefaultSegmentSize = 8 << 20

// FsyncPolicy picks the durability/latency trade for WAL appends.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs before an append is acknowledged. Concurrent
	// appenders group-commit: one fsync covers every record written before
	// it started, so the cost amortizes under load. Zero acknowledged
	// appends are lost on crash.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background cadence (Options.FsyncEvery);
	// a crash loses at most one interval of acknowledged appends.
	FsyncInterval
	// FsyncNever leaves flushing to the OS; a crash loses whatever the
	// kernel had not written back. Process death alone loses nothing.
	FsyncNever
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the flag spelling of a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("persist: unknown fsync policy %q (want always|interval|never)", s)
	}
}

// wal is the segmented write-ahead log. Appends are serialized by mu;
// fsyncs run under syncMu so that concurrent FsyncAlways appenders
// group-commit (the first one through fsyncs for everyone written so far).
type wal struct {
	dir     string
	segSize int64

	mu   sync.Mutex
	f    *os.File
	seq  uint64 // current segment sequence number
	size int64  // bytes written to the current segment
	buf  []byte // scratch for record framing, reused across appends

	writeSeq atomic.Uint64 // records written (monotonic append sequence)
	syncSeq  atomic.Uint64 // highest append sequence known durable
	syncMu   sync.Mutex    // group-commit leader lock

	records   atomic.Uint64
	bytes     atomic.Uint64
	fsyncs    atomic.Uint64
	coalesced atomic.Uint64 // sync requests satisfied by another caller's fsync
}

func segmentName(seq uint64) string { return fmt.Sprintf("wal-%08d.seg", seq) }

// parseSeq extracts the sequence number from a "prefix-%08d.suffix" name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var seq uint64
	if _, err := fmt.Sscanf(mid, "%d", &seq); err != nil || mid == "" {
		return 0, false
	}
	return seq, true
}

// listSeqFiles returns the matching files in dir sorted by ascending
// sequence number.
type seqFile struct {
	seq  uint64
	path string
}

func listSeqFiles(dir, prefix, suffix string) ([]seqFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []seqFile
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, seqFile{seq: seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out, nil
}

// syncDir fsyncs a directory so entry creation/rename/removal survives a
// power cut. Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// openWAL starts a fresh segment with the given sequence number (which must
// exceed every existing segment's).
func openWAL(dir string, seq uint64, segSize int64) (*wal, error) {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	w := &wal{dir: dir, segSize: segSize, seq: seq - 1}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.rotateLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// rotateLocked syncs and closes the current segment and starts the next
// one. Caller holds w.mu.
func (w *wal) rotateLocked() error {
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.fsyncs.Add(1)
		// Everything appended so far lives in segments that are now fully
		// synced, so group commits against older records become no-ops.
		advance(&w.syncSeq, w.writeSeq.Load())
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	w.seq++
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(w.seq)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.size = int64(len(segMagic))
	syncDir(w.dir)
	return nil
}

// advance moves an atomic watermark monotonically forward.
func advance(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// append frames and writes one record payload, returning the record's
// append sequence (for SyncTo) and the segment byte offset one past its
// end. The write is a single syscall; durability is the caller's policy.
func (w *wal) append(payload []byte) (seq uint64, end int64, err error) {
	if len(payload) > MaxRecord {
		return 0, 0, fmt.Errorf("persist: record exceeds MaxRecord (%d bytes)", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, 0, fmt.Errorf("persist: append: %w", os.ErrClosed)
	}
	rec := int64(recordHeaderLen + len(payload))
	if w.size+rec > w.segSize && w.size > int64(len(segMagic)) {
		if err := w.rotateLocked(); err != nil {
			return 0, 0, err
		}
	}
	w.buf = w.buf[:0]
	var hdr [recordHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, 0, err
	}
	w.size += rec
	w.records.Add(1)
	w.bytes.Add(uint64(rec))
	return w.writeSeq.Add(1), w.size, nil
}

// syncTo makes every record up to append sequence seq durable. Group
// commit: if another caller's fsync already covered seq this returns
// immediately; otherwise the caller becomes the leader and one fsync
// acknowledges every record written before it started.
func (w *wal) syncTo(seq uint64) error {
	if w.syncSeq.Load() >= seq {
		w.coalesced.Add(1)
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.syncSeq.Load() >= seq {
		w.coalesced.Add(1)
		return nil
	}
	return w.syncCurrent()
}

// sync flushes the current segment (the FsyncInterval ticker path). An
// idle tick — nothing written since the last fsync — costs nothing.
func (w *wal) sync() error {
	if w.syncSeq.Load() >= w.writeSeq.Load() {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.syncSeq.Load() >= w.writeSeq.Load() {
		return nil
	}
	return w.syncCurrent()
}

// syncCurrent fsyncs the live segment file; records in rotated-away
// segments were synced at rotation. Caller holds syncMu.
func (w *wal) syncCurrent() error {
	w.mu.Lock()
	f := w.f
	upto := w.writeSeq.Load()
	w.mu.Unlock()
	if f == nil {
		return nil
	}
	if err := f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	advance(&w.syncSeq, upto)
	return nil
}

// rotate forces a segment boundary and returns the new (empty) segment's
// sequence number; checkpoints call it so a snapshot covers exactly the
// segments before the returned one.
func (w *wal) rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.seq, nil
}

// close syncs and closes the live segment.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if err == nil {
		w.fsyncs.Add(1)
		advance(&w.syncSeq, w.writeSeq.Load())
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayResult summarizes one segment's replay.
type replayResult struct {
	records  uint64 // records decoded and applied
	offset   int64  // byte offset one past the last good record
	torn     bool   // segment ended in a torn/corrupt record
	tornSize int64  // bytes discarded by the torn tail
}

// replaySegment reads one segment file, invoking apply for every intact
// record in order. It stops at the first record whose length prefix,
// checksum or payload decode fails — the torn tail a crash mid-write
// leaves — and reports the clean prefix length so the caller can truncate.
// An empty or header-only file is a valid empty segment.
func replaySegment(data []byte, apply func(rec walRecord)) replayResult {
	res := replayResult{}
	if len(data) == 0 {
		return res
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		// Header never made it to disk: nothing recoverable.
		res.torn = true
		res.tornSize = int64(len(data))
		return res
	}
	pos := int64(len(segMagic))
	res.offset = pos
	n := int64(len(data))
	for pos < n {
		if pos+recordHeaderLen > n {
			break // torn header
		}
		length := int64(binary.BigEndian.Uint32(data[pos : pos+4]))
		sum := binary.BigEndian.Uint32(data[pos+4 : pos+8])
		if length > MaxRecord || pos+recordHeaderLen+length > n {
			break // torn or corrupt length prefix
		}
		payload := data[pos+recordHeaderLen : pos+recordHeaderLen+length]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // corrupt payload
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break // checksum matched but the payload is not a record
		}
		apply(rec)
		pos += recordHeaderLen + length
		res.records++
		res.offset = pos
	}
	if res.offset < n {
		res.torn = true
		res.tornSize = n - res.offset
	}
	return res
}
