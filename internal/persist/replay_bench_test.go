package persist

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

// buildReplaySegment assembles an in-memory WAL segment carrying the same
// 400-sample stream either as keyed append records or as define + ref
// append records, so the two replay paths can be compared on equal work.
func buildReplaySegment(refs bool) []byte {
	frame := func(buf, payload []byte) []byte {
		var hdr [recordHeaderLen]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		return append(append(buf, hdr[:]...), payload...)
	}
	ids := []metric.ID{
		{Name: "node_power_watts", Labels: metric.NewLabels("node", "n042", "rack", "r02")},
		{Name: "node_cpu_temp_celsius", Labels: metric.NewLabels("node", "n042", "rack", "r02")},
	}
	buf := []byte(segMagic)
	if refs {
		for i, id := range ids {
			buf = frame(buf, encodeDefine(nil, uint64(i+1), id, metric.Gauge, metric.UnitWatt))
		}
	}
	for r := 0; r < 200; r++ {
		now := int64(1000 + r*1000)
		if refs {
			buf = frame(buf, encodeAppendRef(nil, []refSample{
				{ref: 1, t: now, v: float64(r)},
				{ref: 2, t: now, v: float64(100 - r)},
			}))
		} else {
			buf = frame(buf, encodeAppend(nil, []timeseries.BatchEntry{
				{ID: ids[0], Kind: metric.Gauge, Unit: metric.UnitWatt, T: now, V: float64(r)},
				{ID: ids[1], Kind: metric.Gauge, Unit: metric.UnitWatt, T: now, V: float64(100 - r)},
			}))
		}
	}
	return buf
}

func benchReplay(b *testing.B, refs bool) {
	seg := buildReplaySegment(refs)
	b.SetBytes(int64(len(seg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := timeseries.NewStore(64)
		rt := NewRefTable()
		res := replaySegment(seg, func(rec walRecord) { rec.apply(store, rt) })
		if res.torn || res.records == 0 {
			b.Fatalf("replay broke: torn=%v records=%d", res.torn, res.records)
		}
	}
}

// BenchmarkWALReplayKeyed / BenchmarkWALReplayRefs: crash-recovery speed
// for the same sample stream logged keyed vs ref-based. The ref segment is
// ~3.5x smaller and each sample skips ID decode + key hashing on replay,
// so recovery must be no slower per stream (it is in fact faster).
func BenchmarkWALReplayKeyed(b *testing.B) { benchReplay(b, false) }
func BenchmarkWALReplayRefs(b *testing.B)  { benchReplay(b, true) }
