package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/timeseries"
)

// This file is the persistence half of WAL-shipping replication: the CRC32C
// record log a DurableStore already writes is a complete, ordered journal of
// every mutation, so a follower that replays the same payloads in the same
// order rebuilds the same store. The cluster layer streams records with
// SegmentReader, bootstraps (or re-bootstraps after falling behind a
// checkpoint GC) from ReplicationSnapshot, and applies shipped payloads to
// its replica store with ApplyRecord.

// ErrSegmentGone reports that the WAL position a follower asked for was
// garbage-collected by a checkpoint: the records are gone, and the follower
// must restart from a snapshot.
var ErrSegmentGone = errors.New("persist: wal position covered by checkpoint, snapshot required")

// SegmentReader streams raw WAL record payloads out of a durable store's
// data directory. It reads the files directly — including the live segment,
// whose clean prefix is always well-formed because records are appended
// with a single write — and stops at the first incomplete or corrupt
// record, exactly where replay would.
type SegmentReader struct {
	dir string
}

// NewSegmentReader returns a reader over the WAL segments in dir.
func NewSegmentReader(dir string) *SegmentReader { return &SegmentReader{dir: dir} }

// ReadFrom streams record payloads beginning at WAL position (seq, off) to
// fn, in log order, until it has delivered about maxBytes of payload, the
// log is exhausted, or fn returns an error. seq is a segment sequence
// number and off a byte offset into that segment (off below the segment
// header is rounded up to the first record). seq 0 means "the oldest
// segment available".
//
// It returns the position one past the last delivered record — the cursor
// to resume from — and how many records were delivered. A position older
// than the oldest surviving segment returns ErrSegmentGone (a checkpoint
// collected it; the follower needs a snapshot). Reaching the writing edge
// of the live segment is not an error: the caller polls again from the
// returned position.
func (r *SegmentReader) ReadFrom(seq uint64, off int64, maxBytes int64, fn func(payload []byte) error) (nextSeq uint64, nextOff int64, records int, err error) {
	segs, err := listSeqFiles(r.dir, "wal-", ".seg")
	if err != nil {
		return seq, off, 0, err
	}
	if len(segs) == 0 {
		return seq, off, 0, nil
	}
	if seq == 0 {
		seq = segs[0].seq
		off = 0
	}
	if seq < segs[0].seq {
		return seq, off, 0, ErrSegmentGone
	}
	idx := -1
	for i, sg := range segs {
		if sg.seq == seq {
			idx = i
			break
		}
	}
	if idx == -1 {
		if seq > segs[len(segs)-1].seq {
			return seq, off, 0, nil // position beyond the live segment: nothing yet
		}
		return seq, off, 0, ErrSegmentGone
	}
	if off < int64(len(segMagic)) {
		off = int64(len(segMagic))
	}
	var sent int64
	for idx < len(segs) && sent < maxBytes {
		data, err := os.ReadFile(segs[idx].path)
		if err != nil {
			return seq, off, records, err
		}
		if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
			// Header not on disk yet (freshly rotated, not yet visible in
			// full): treat as empty and retry later.
			return seq, off, records, nil
		}
		n := int64(len(data))
		for off+recordHeaderLen <= n && sent < maxBytes {
			length := int64(binary.BigEndian.Uint32(data[off : off+4]))
			sum := binary.BigEndian.Uint32(data[off+4 : off+8])
			if length > MaxRecord || off+recordHeaderLen+length > n {
				break // incomplete record at the writing edge (or torn tail)
			}
			payload := data[off+recordHeaderLen : off+recordHeaderLen+length]
			if crc32.Checksum(payload, castagnoli) != sum {
				break // torn tail: stop where replay would
			}
			if err := fn(payload); err != nil {
				return seq, off, records, err
			}
			off += recordHeaderLen + length
			sent += length
			records++
		}
		if off+recordHeaderLen > n || sent >= maxBytes {
			// Drained this file (or filled the budget). Only advance to the
			// next segment when one exists AND this one is fully consumed —
			// a live segment keeps growing, so the cursor parks at its edge.
			if sent < maxBytes && idx+1 < len(segs) && off >= n {
				idx++
				seq = segs[idx].seq
				off = int64(len(segMagic))
				continue
			}
			break
		}
		// Stopped mid-file at an incomplete/torn record with bytes left:
		// park here; if this is the live segment the record will complete.
		break
	}
	return seq, off, records, nil
}

// TailBytes reports roughly how many WAL bytes lie at or after position
// (seq, off): the replication-lag gauge a leader computes for a follower's
// cursor. It is approximate at segment boundaries (file sizes include
// headers) but exact enough to distinguish "caught up" (0) from "behind".
func (r *SegmentReader) TailBytes(seq uint64, off int64) (int64, error) {
	segs, err := listSeqFiles(r.dir, "wal-", ".seg")
	if err != nil {
		return 0, err
	}
	var total int64
	for _, sg := range segs {
		fi, err := os.Stat(sg.path)
		if err != nil {
			continue
		}
		switch {
		case sg.seq > seq:
			sz := fi.Size() - int64(len(segMagic))
			if sz > 0 {
				total += sz
			}
		case sg.seq == seq:
			at := off
			if at < int64(len(segMagic)) {
				at = int64(len(segMagic))
			}
			if fi.Size() > at {
				total += fi.Size() - at
			}
		}
	}
	return total, nil
}

// Dir returns the durable store's data directory, where a SegmentReader
// can stream its WAL from.
func (d *DurableStore) Dir() string { return d.dir }

// WALPosition returns the live WAL write position: the current segment
// sequence and the byte offset one past the last complete record. A
// follower whose cursor equals this position has applied everything.
func (d *DurableStore) WALPosition() (seq uint64, off int64) {
	d.wal.mu.Lock()
	defer d.wal.mu.Unlock()
	return d.wal.seq, d.wal.size
}

// ReplicationSnapshot captures a point-in-time dump of the store together
// with the WAL position the dump corresponds to: replaying the records at
// or after (seq, off) on top of the dump reproduces the leader exactly.
// It holds the store's checkpoint lock, so no mutation lands between the
// dump and the position read.
func (d *DurableStore) ReplicationSnapshot() (chunkSize int, dump []timeseries.SeriesDump, seq uint64, off int64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, nil, 0, 0, fmt.Errorf("persist: %w", timeseries.ErrStoreClosed)
	}
	dump = d.store.Dump()
	chunkSize = d.store.ChunkSize()
	d.wal.mu.Lock()
	seq, off = d.wal.seq, d.wal.size
	d.wal.mu.Unlock()
	// A follower bootstrapping from this dump only sees records after
	// (seq, off), so opDefine bindings logged before the cut would be
	// invisible to it. Clear the WAL-ref table (the exclusive d.mu excludes
	// every op): series re-define on next use, making the post-cut record
	// stream self-contained for any number of followers.
	clear(d.walRefs)
	d.nextWALRef = 0
	return chunkSize, dump, seq, off, nil
}

// ApplyRecord decodes one WAL record payload (as streamed by SegmentReader)
// and applies it to store; rt carries opDefine bindings across the records
// of one ordered stream (use one RefTable per follower session, Reset on
// re-bootstrap). Errors the original operation tolerated are tolerated
// again, so a follower replaying a leader's log converges on the leader's
// exact state.
func ApplyRecord(store *timeseries.Store, rt *RefTable, payload []byte) error {
	rec, err := decodeRecord(payload)
	if err != nil {
		return err
	}
	rec.apply(store, rt)
	return nil
}

// EncodeDump serializes a store dump into the snapshot payload format —
// the transfer encoding a replication snapshot ships over the wire.
func EncodeDump(chunkSize int, dump []timeseries.SeriesDump) []byte {
	return encodeSnapshot(chunkSize, dump)
}

// DecodeDump parses a payload produced by EncodeDump.
func DecodeDump(payload []byte) (int, []timeseries.SeriesDump, error) {
	return decodeSnapshot(payload, 2)
}
