package persist

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

// TestDurableRollupLifecycle drives a rollup-enabled durable store through
// appends, a mid-stream checkpoint, per-tier retention and a crash, and
// asserts recovery lands on a byte-identical store — sealed tier chunks,
// open accumulators and retention cuts included.
func TestDurableRollupLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		ChunkSize:    32,
		Fsync:        FsyncNever,
		StoreOptions: []timeseries.Option{timeseries.WithRollups(timeseries.TierStep1m, timeseries.TierStep1h)},
	}
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	id := testID("power", "n01")
	appendN := func(from, n int) {
		for i := from; i < from+n; i++ {
			if err := d.Append(id, metric.Gauge, metric.UnitWatt, int64(i)*10_000, float64(i%97)); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendN(0, 800) // ~2.2h at 10s cadence
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	appendN(800, 400)
	if n, err := d.RetainTier(timeseries.TierStep1m, int64(timeseries.TierStep1h)); err != nil || n == 0 {
		t.Fatalf("RetainTier: %d, %v", n, err)
	}
	appendN(1200, 100)
	want := d.Store().Dump()
	d.Crash() // snapshot + WAL tail replay path

	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := re.Stats(); !st.SnapshotLoaded || st.ReplayedRecords == 0 {
		t.Fatalf("recovery did not exercise snapshot+replay: %+v", st)
	}
	if !reflect.DeepEqual(re.Store().Dump(), want) {
		t.Fatal("crash recovery diverged from pre-crash rollup state")
	}
	if err := re.Close(); err != nil { // clean close: snapshot-only recovery
		t.Fatal(err)
	}
	re2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if st := re2.Stats(); st.ReplayedRecords != 0 {
		t.Fatalf("clean close still replayed %d records", st.ReplayedRecords)
	}
	if !reflect.DeepEqual(re2.Store().Dump(), want) {
		t.Fatal("snapshot-only recovery diverged from pre-crash rollup state")
	}
	// Folding resumes off the recovered accumulators exactly as the live
	// store would have: planned and raw answers still agree.
	sum, n, err := re2.Store().ReducePlanned(id, 0, 1<<60, timeseries.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	rawSum, rawN, err := re2.Store().Reduce(id, 0, 1<<60, timeseries.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if sum != rawSum || n != rawN {
		t.Fatalf("planned/raw disagree after recovery: (%v,%d) vs (%v,%d)", sum, n, rawSum, rawN)
	}
}

// TestSnapshotV1StillLoads pins backward compatibility: a v1 snapshot
// (pre-rollup layout, no tier section) must still load, with tiers rebuilt
// empty for the configured resolutions.
func TestSnapshotV1StillLoads(t *testing.T) {
	store := timeseries.NewStore(8)
	for i := 0; i < 30; i++ {
		if err := store.Append(testID("load", "n01"), metric.Gauge, metric.UnitPercent, int64(1000+i*50), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	dump := store.Dump()
	// Hand-encode the v1 layout: identical to v2 minus the per-series tier
	// section.
	payload := appendUvarint(nil, uint64(store.ChunkSize()))
	payload = appendUvarint(payload, uint64(len(dump)))
	for _, sd := range dump {
		payload = appendID(payload, sd.ID)
		payload = append(payload, byte(sd.Kind))
		payload = appendString(payload, string(sd.Unit))
		payload = appendChunks(payload, sd.Chunks)
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.Checksum(payload, castagnoli))
	path := filepath.Join(t.TempDir(), snapshotName(0))
	data := append([]byte(snapMagicV1), payload...)
	data = append(data, trailer[:]...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := loadSnapshot(path, []timeseries.Option{timeseries.WithRollups(timeseries.TierStep1m)})
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if !reflect.DeepEqual(re.Dump()[0].Chunks, dump[0].Chunks) {
		t.Fatal("v1 raw chunks diverged")
	}
	// The configured tier exists (fresh) and starts folding on new appends.
	if err := re.Append(testID("load", "n01"), metric.Gauge, metric.UnitPercent, 1<<40, 5); err != nil {
		t.Fatal(err)
	}
	if st := re.RollupStats(); st.Folds == 0 {
		t.Fatal("restored v1 store is not folding new appends into tiers")
	}
}
