package persist

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

// applyWorkload drives a representative op mix through a durable store:
// regular appends across several series, an out-of-order rejection, a
// downsample and a retention pass.
func applyWorkload(t *testing.T, d *DurableStore, rounds int) {
	t.Helper()
	ids := []metric.ID{testID("power", "n01"), testID("power", "n02"), testID("temp", "n01")}
	for r := 0; r < rounds; r++ {
		now := int64(1000 + r*1000)
		batch := make([]timeseries.BatchEntry, 0, len(ids))
		for i, id := range ids {
			batch = append(batch, timeseries.BatchEntry{
				ID: id, Kind: metric.Gauge, Unit: metric.UnitWatt,
				T: now, V: float64(r*10 + i),
			})
		}
		if n, err := d.AppendBatch(batch); err != nil || n != len(batch) {
			t.Fatalf("round %d: AppendBatch = %d, %v", r, n, err)
		}
		switch {
		case r == rounds/2:
			// Duplicate timestamp: rejected live, rejected again at replay.
			if n, err := d.AppendBatch(batch[:1]); err == nil || n != 0 {
				t.Fatalf("duplicate batch accepted: %d, %v", n, err)
			}
		case r == rounds/3:
			if _, err := d.Downsample(ids[2], 2000); err != nil {
				t.Fatalf("downsample: %v", err)
			}
		case r == 2*rounds/3:
			if _, err := d.Retain(int64(1000 + (r-5)*1000)); err != nil {
				t.Fatalf("retain: %v", err)
			}
		}
	}
}

func TestKillAndRecoverAllPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{ChunkSize: 8, Fsync: policy, FsyncEvery: 5 * time.Millisecond}
			d, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			applyWorkload(t, d, 30)
			want := d.Store().Dump()
			d.Crash() // no checkpoint, no graceful close

			re, err := Open(dir, opts)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer re.Close()
			got := re.Store().Dump()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered store diverged from pre-crash store (%d vs %d series)", len(got), len(want))
			}
			st := re.Stats()
			if st.SnapshotLoaded {
				t.Fatal("no checkpoint was written; recovery must be WAL-only")
			}
			if st.ReplayedRecords == 0 {
				t.Fatal("expected WAL replay to report records")
			}
			// The recovered store keeps working.
			if err := re.Append(testID("power", "n01"), metric.Gauge, metric.UnitWatt, 1_000_000, 42); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
		})
	}
}

func TestRecoverFromSnapshotPlusWAL(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ChunkSize: 8, Fsync: FsyncNever}
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	applyWorkload(t, d, 20)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint mutations land only in the WAL tail.
	for r := 0; r < 7; r++ {
		if err := d.Append(testID("power", "n01"), metric.Gauge, metric.UnitWatt, int64(100000+r*500), float64(r)); err != nil {
			t.Fatal(err)
		}
	}
	want := d.Store().Dump()
	d.Crash()

	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !reflect.DeepEqual(re.Store().Dump(), want) {
		t.Fatal("snapshot+WAL recovery diverged from pre-crash store")
	}
	st := re.Stats()
	if !st.SnapshotLoaded {
		t.Fatal("expected recovery to load the checkpoint snapshot")
	}
	if st.ReplayedRecords != 7 {
		t.Fatalf("expected exactly the 7 post-checkpoint records replayed, got %d", st.ReplayedRecords)
	}
}

func TestCleanCloseRecoversReplayFree(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ChunkSize: 8, Fsync: FsyncAlways}
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	applyWorkload(t, d, 15)
	want := d.Store().Dump()
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !reflect.DeepEqual(re.Store().Dump(), want) {
		t.Fatal("store after clean close + reopen diverged")
	}
	st := re.Stats()
	if !st.SnapshotLoaded || st.ReplayedRecords != 0 {
		t.Fatalf("clean shutdown should recover replay-free: snapshot=%v replayed=%d", st.SnapshotLoaded, st.ReplayedRecords)
	}
}

func TestCheckpointGarbageCollectsSegments(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ChunkSize: 8, Fsync: FsyncNever, SegmentSize: 512}
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	applyWorkload(t, d, 40) // tiny segments => many rotations
	before := d.Stats()
	if before.Segments < 3 {
		t.Fatalf("workload should span several segments, got %d", before.Segments)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.Segments != 1 {
		t.Fatalf("checkpoint should leave exactly the live segment, got %d", after.Segments)
	}
	if after.Checkpoints != 1 || after.SnapshotBytes == 0 {
		t.Fatalf("checkpoint counters not updated: %+v", after)
	}
}

func TestClosedStoreRefusesMutations(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(testID("m", "n"), metric.Gauge, metric.UnitWatt, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := d.AppendBatch([]timeseries.BatchEntry{{ID: testID("m", "n"), T: 2, V: 2}}); !errors.Is(err, timeseries.ErrStoreClosed) {
		t.Fatalf("append after close: want ErrStoreClosed, got %v", err)
	}
	if _, err := d.Downsample(testID("m", "n"), 10); !errors.Is(err, timeseries.ErrStoreClosed) {
		t.Fatalf("downsample after close: want ErrStoreClosed, got %v", err)
	}
	if _, err := d.Retain(0); !errors.Is(err, timeseries.ErrStoreClosed) {
		t.Fatalf("retain after close: want ErrStoreClosed, got %v", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, timeseries.ErrStoreClosed) {
		t.Fatalf("checkpoint after close: want ErrStoreClosed, got %v", err)
	}
	// Reads still work on the drained store.
	if n := d.Store().NumSamples(); n != 1 {
		t.Fatalf("closed store lost data: %d samples", n)
	}
}

func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ChunkSize: 8, Fsync: FsyncNever}
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	applyWorkload(t, d, 12)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		if err := d.Append(testID("extra", "n09"), metric.Gauge, metric.UnitWatt, int64(1+r), float64(r)); err != nil {
			t.Fatal(err)
		}
	}
	want := d.Store().Dump()
	d.Crash()

	// A later checkpoint "crashed": a higher-seq snapshot exists but is
	// garbage. Recovery must fall back to the older valid snapshot and
	// still replay the live WAL tail.
	if _, err := writeSnapshot(dir, 99, 8, nil); err != nil {
		t.Fatal(err)
	}
	corruptPath := dir + "/" + snapshotName(99)
	if err := corruptFile(corruptPath); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !reflect.DeepEqual(re.Store().Dump(), want) {
		t.Fatal("fallback recovery diverged")
	}
	if st := re.Stats(); !st.SnapshotLoaded {
		t.Fatal("expected the older snapshot to load")
	}
}

func TestConcurrentAppendersGroupCommit(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{ChunkSize: 16, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := testID("load", string(rune('a'+w)))
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				t0 := int64(1000 + i*100)
				if _, err := d.AppendBatch([]timeseries.BatchEntry{{ID: id, Kind: metric.Gauge, Unit: metric.UnitWatt, T: t0, V: rng.Float64()}}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := d.Store().Dump()
	st := d.Stats()
	if st.WALRecords != workers*perWorker {
		t.Fatalf("wal records = %d, want %d", st.WALRecords, workers*perWorker)
	}
	if st.Fsyncs+st.CoalescedSyncs < workers*perWorker {
		t.Fatalf("every acknowledged append needs a covering fsync: fsyncs=%d coalesced=%d", st.Fsyncs, st.CoalescedSyncs)
	}
	d.Crash()

	re, err := Open(dir, Options{ChunkSize: 16, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !reflect.DeepEqual(re.Store().Dump(), want) {
		t.Fatal("concurrent-append recovery diverged (WAL order must equal apply order)")
	}
}
