package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

// FuzzWALReplay feeds arbitrary bytes through segment replay and checks the
// structural invariants that recovery relies on: replay never panics, the
// reported clean-prefix offset stays inside the input, every applied record
// is counted, and a replay of just the clean prefix is itself clean and
// reproduces the same records.
func FuzzWALReplay(f *testing.F) {
	frame := func(payloads ...[]byte) []byte {
		buf := []byte(segMagic)
		for _, p := range payloads {
			var hdr [recordHeaderLen]byte
			binary.BigEndian.PutUint32(hdr[0:4], uint32(len(p)))
			binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
			buf = append(buf, hdr[:]...)
			buf = append(buf, p...)
		}
		return buf
	}
	// Seeds mirror the committed corpus in testdata/fuzz/FuzzWALReplay.
	f.Add([]byte{})               // empty segment
	f.Add([]byte(segMagic))       // magic only
	f.Add([]byte(segMagic + "\x00\x00")) // truncated length prefix
	badCRC := frame(encodeRetain(nil, 42))
	badCRC[len(segMagic)+4] ^= 0xFF
	f.Add(badCRC)
	f.Add(frame(
		encodeRetain(nil, 9),
		encodeDownsample(nil, metric.ID{Name: "power", Labels: metric.NewLabels("node", "n01")}, 60000),
		encodeAppend(nil, []timeseries.BatchEntry{{ID: metric.ID{Name: "temp"}, Kind: metric.Gauge, Unit: metric.UnitCelsius, T: 1000, V: 21.5}}),
	)) // valid multi-record segment
	defV2, appV2, undefV2, reboundV2 := walRefSeedPayloads()
	f.Add(frame(defV2, appV2))           // valid v2: define + ref append
	f.Add(frame(undefV2))                // ref append with no define: refs skipped
	f.Add(frame(defV2, reboundV2, appV2)) // same WAL ref rebound to a second series
	truncated := frame(defV2)
	f.Add(truncated[:len(truncated)-3]) // tear inside a define record

	f.Fuzz(func(t *testing.T, data []byte) {
		applied := 0
		// Apply every decoded record the way recovery does — through a live
		// store and ref table — so decode-then-apply can never panic on any
		// input, v2 ref records included.
		store := timeseries.NewStore(8)
		rt := NewRefTable()
		res := replaySegment(data, func(rec walRecord) { applied++; rec.apply(store, rt) })
		if res.records != uint64(applied) {
			t.Fatalf("counted %d records, applied %d", res.records, applied)
		}
		if res.offset < 0 || res.offset > int64(len(data)) {
			t.Fatalf("clean-prefix offset %d outside input of %d bytes", res.offset, len(data))
		}
		if !res.torn && len(data) > 0 && res.offset != int64(len(data)) {
			t.Fatalf("clean segment but offset %d != len %d", res.offset, len(data))
		}
		if res.torn && res.tornSize != int64(len(data))-res.offset {
			t.Fatalf("torn size %d inconsistent with offset %d / len %d", res.tornSize, res.offset, len(data))
		}
		// Replaying the clean prefix must be deterministic and clean —
		// this is exactly what recovery does after truncating a torn tail.
		if res.offset >= int64(len(segMagic)) && bytes.HasPrefix(data, []byte(segMagic)) {
			again := 0
			store2 := timeseries.NewStore(8)
			rt2 := NewRefTable()
			res2 := replaySegment(data[:res.offset], func(rec walRecord) { again++; rec.apply(store2, rt2) })
			if res2.torn || again != applied || res2.offset != res.offset {
				t.Fatalf("clean prefix replay diverged: torn=%v records=%d/%d offset=%d/%d",
					res2.torn, again, applied, res2.offset, res.offset)
			}
			if !reflect.DeepEqual(store2.Dump(), store.Dump()) {
				t.Fatal("clean prefix replay produced a different store")
			}
		}
	})
}

// walRefSeedPayloads builds the deterministic v2 record payloads shared by
// the fuzz seeds and the committed corpus (gen_corpus_test.go).
func walRefSeedPayloads() (def, app, undef, rebound []byte) {
	idA := metric.ID{Name: "node_power_watts", Labels: metric.NewLabels("node", "n042")}
	idB := metric.ID{Name: "node_cpu_temp_celsius"}
	def = encodeDefine(nil, 1, idA, metric.Gauge, metric.UnitWatt)
	app = encodeAppendRef(nil, []refSample{{ref: 1, t: 1000, v: 411.5}, {ref: 1, t: 2000, v: 417.25}})
	undef = encodeAppendRef(nil, []refSample{{ref: 99, t: 1000, v: 1}})
	rebound = encodeDefine(nil, 1, idB, metric.Counter, metric.UnitCelsius)
	return
}
