package persist

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

// TestChaosScheduledCrashRecovery extends the kill-and-recover matrix with
// crashes at chaos-scheduled points: a seeded schedule picks operation
// indices mid-campaign and the store is hard-killed there — with ingest,
// rollup folds and retention all in flight in the surrounding op mix — then
// reopened and driven on. Under FsyncAlways every acknowledged operation
// must survive, so after each scheduled crash the recovered store has to be
// byte-identical to the dump taken at the crash instant, and the campaign
// continues on the recovered store as the chaos harness does.
func TestChaosScheduledCrashRecovery(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			// Small tiers so the 80-op campaign folds, seals and retains
			// rollup windows many times: crashes land with open per-tier
			// accumulators that recovery must rebuild exactly.
			opts := Options{
				ChunkSize:    8,
				Fsync:        FsyncAlways,
				SegmentSize:  1 << 20,
				StoreOptions: []timeseries.Option{timeseries.WithRollups(4000, 16000)},
			}
			d, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}

			const ops = 80
			// The chaos schedule: 4 distinct crash points strictly inside
			// the campaign, seeded so every seed exercises different
			// in-flight state.
			crashAt := map[int]bool{}
			for len(crashAt) < 4 {
				crashAt[1+rng.Intn(ops-2)] = true
			}

			ids := []metric.ID{testID("power", "n01"), testID("temp", "n02"), testID("power", "n03")}
			recoveries := 0
			for r := 0; r < ops; r++ {
				now := int64(1000 + r*1000)
				switch {
				case r%9 == 4:
					if _, err := d.Downsample(ids[r%len(ids)], 3000); err != nil {
						t.Fatalf("op %d downsample: %v", r, err)
					}
				case r%9 == 7:
					if _, err := d.Retain(now - 12000); err != nil {
						t.Fatalf("op %d retain: %v", r, err)
					}
				case r%9 == 8:
					if _, err := d.RetainTier(4000, now-16000); err != nil {
						t.Fatalf("op %d retain-tier: %v", r, err)
					}
				default:
					batch := make([]timeseries.BatchEntry, 0, len(ids))
					for i, id := range ids {
						batch = append(batch, timeseries.BatchEntry{
							ID: id, Kind: metric.Gauge, Unit: metric.UnitWatt,
							T: now, V: float64(r*10 + i),
						})
					}
					if n, err := d.AppendBatch(batch); err != nil || n != len(batch) {
						t.Fatalf("op %d append: %d, %v", r, n, err)
					}
				}

				if crashAt[r] {
					want := d.Store().Dump()
					d.Crash()
					re, err := Open(dir, opts)
					if err != nil {
						t.Fatalf("op %d: recovery failed: %v", r, err)
					}
					if got := re.Store().Dump(); !reflect.DeepEqual(got, want) {
						t.Fatalf("op %d: recovered store is not byte-identical to the crash instant", r)
					}
					if st := re.Stats(); st.TruncatedTails != 0 {
						// FsyncAlways acked every op; nothing may be torn.
						t.Fatalf("op %d: recovery truncated %d tails under FsyncAlways", r, st.TruncatedTails)
					}
					d = re
					recoveries++
				}
			}
			if recoveries != 4 {
				t.Fatalf("schedule executed %d crashes, want 4", recoveries)
			}
			// The final store still closes cleanly and recovers replay-free.
			want := d.Store().Dump()
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if !reflect.DeepEqual(re.Store().Dump(), want) {
				t.Fatal("post-campaign clean recovery diverged")
			}
		})
	}
}
