// Package persist gives the in-memory TSDB a crash-safe life: a segmented
// write-ahead log capturing every mutating operation, periodic snapshot
// checkpoints serialized through the store's Gorilla codec, and recovery
// that rebuilds a byte-identical store from the newest valid snapshot plus
// the WAL segments written after it.
//
// On-disk layout inside the data directory (all integers big endian):
//
//	wal-%08d.seg    WAL segments: 8-byte magic "ODAWAL1\n", then records
//	snap-%08d.snap  snapshots: 8-byte magic "ODASNP1\n", payload, CRC32C
//
// Each WAL record is length-prefixed and checksummed:
//
//	length  uint32   payload byte count
//	crc32c  uint32   Castagnoli checksum of the payload
//	payload [length]byte, first byte = op code
//
// Replay tolerates torn tails: the first record whose length prefix,
// checksum or payload decode fails marks the end of the recoverable prefix
// and the segment is truncated there, exactly what a power cut mid-write
// leaves behind.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

// Op codes, first payload byte of every WAL record.
const (
	opAppend     = 1 // an AppendBatch worth of samples
	opDownsample = 2 // Downsample(id, step)
	opRetain     = 3 // Retain(cutoff)
	opRetainTier = 4 // RetainTier(step, cutoff)
	opDefine     = 5 // bind a WAL series ref to a full series identity
	opAppendRef  = 6 // an AppendRefs worth of samples, addressed by WAL ref
)

// recordHeaderLen is the length + CRC prefix of every WAL record.
const recordHeaderLen = 8

// MaxRecord bounds one WAL record so a corrupt length prefix cannot make
// replay allocate unbounded memory; it comfortably exceeds the largest
// batch the wire protocol admits.
const MaxRecord = 32 << 20

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum production storage engines use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorruptRecord marks a record whose payload decodes inconsistently even
// though the checksum matched (impossible short of a codec bug, but replay
// still degrades to truncation rather than panic).
var errCorruptRecord = errors.New("persist: corrupt wal record")

// walRecord is one decoded WAL operation.
type walRecord struct {
	op         byte
	entries    []timeseries.BatchEntry // opAppend
	id         metric.ID               // opDownsample, opDefine
	step       int64                   // opDownsample, opRetainTier
	cutoff     int64                   // opRetain, opRetainTier
	ref        uint64                  // opDefine
	kind       metric.Kind             // opDefine
	unit       metric.Unit             // opDefine
	refEntries []refSample             // opAppendRef
}

// refSample is one opAppendRef sample: a WAL series ref plus the sample.
type refSample struct {
	ref uint64
	t   int64
	v   float64
}

// apply replays one operation onto a store; rt carries the WAL-ref
// dictionary across records of one replay stream. Errors the original
// operation already tolerated (out-of-order rejections, unknown series)
// are tolerated again, so replay reproduces the live store's state exactly.
func (r *walRecord) apply(store *timeseries.Store, rt *RefTable) {
	switch r.op {
	case opAppend:
		_, _ = store.AppendBatch(r.entries)
	case opDownsample:
		_, _ = store.Downsample(r.id, r.step)
	case opRetain:
		store.Retain(r.cutoff)
	case opRetainTier:
		store.RetainTier(r.step, r.cutoff)
	case opDefine:
		rt.define(store, r.ref, r.id, r.kind, r.unit)
	case opAppendRef:
		rt.appendRefs(store, r.refEntries)
	}
}

// RefTable is replay-side WAL-ref state: it maps the uvarint refs that
// opDefine records bind to full series identities, caching the live
// store's SeriesRef per definition. The cache is epoch-checked against the
// store before every use — a replayed Downsample/Retain bumps the store
// epoch mid-stream and the table lazily re-resolves, so ref-based records
// land on the right series no matter how invalidations interleave.
// Redefining a ref simply rebinds it (writers re-number from scratch after
// a checkpoint or restart, so later segments may legitimately reuse small
// refs); a ref that was never defined is skipped like any other tolerated
// replay inconsistency. One RefTable serves one ordered replay stream.
type RefTable struct {
	epoch uint64
	defs  map[uint64]refDef
	buf   []timeseries.RefEntry // scratch for appendRefs
}

type refDef struct {
	id   metric.ID
	kind metric.Kind
	unit metric.Unit
	sref timeseries.SeriesRef
}

// NewRefTable returns an empty replay dictionary.
func NewRefTable() *RefTable { return &RefTable{defs: make(map[uint64]refDef)} }

// Reset drops all definitions (a replication follower does this when it
// re-bootstraps from a fresh snapshot).
func (rt *RefTable) Reset() {
	clear(rt.defs)
	rt.epoch = 0
}

func (rt *RefTable) define(store *timeseries.Store, ref uint64, id metric.ID, kind metric.Kind, unit metric.Unit) {
	sref, err := store.Resolve(id, kind, unit)
	if err != nil {
		return
	}
	if len(rt.defs) == 0 {
		rt.epoch = store.RefEpoch()
	}
	rt.defs[ref] = refDef{id: id, kind: kind, unit: unit, sref: sref}
}

// refresh re-resolves every cached SeriesRef after a store epoch bump; the
// caller has observed cur != rt.epoch.
func (rt *RefTable) refresh(store *timeseries.Store, cur uint64) {
	for ref, d := range rt.defs {
		if sref, err := store.Resolve(d.id, d.kind, d.unit); err == nil {
			d.sref = sref
			rt.defs[ref] = d
		}
	}
	rt.epoch = cur
}

func (rt *RefTable) appendRefs(store *timeseries.Store, entries []refSample) {
	if cur := store.RefEpoch(); cur != rt.epoch {
		rt.refresh(store, cur)
	}
	rt.buf = rt.buf[:0]
	for _, e := range entries {
		d, ok := rt.defs[e.ref]
		if !ok {
			continue // undefined ref: tolerated, like an unknown series
		}
		rt.buf = append(rt.buf, timeseries.RefEntry{Ref: d.sref, T: e.t, V: e.v})
	}
	_, _ = store.AppendRefs(rt.buf)
}

// --- payload encoding -------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendID(b []byte, id metric.ID) []byte {
	b = appendString(b, id.Name)
	b = appendUvarint(b, uint64(len(id.Labels)))
	for _, l := range id.Labels {
		b = appendString(b, l.Key)
		b = appendString(b, l.Value)
	}
	return b
}

// encodeAppend serializes an AppendBatch payload into buf. Timestamps are
// delta-encoded against the previous entry (a scrape shares one timestamp,
// so the common delta is a single zero byte).
func encodeAppend(buf []byte, entries []timeseries.BatchEntry) []byte {
	buf = append(buf, opAppend)
	buf = appendUvarint(buf, uint64(len(entries)))
	var prevT int64
	for i := range entries {
		e := &entries[i]
		buf = appendID(buf, e.ID)
		buf = append(buf, byte(e.Kind))
		buf = appendString(buf, string(e.Unit))
		if i == 0 {
			buf = appendVarint(buf, e.T)
		} else {
			buf = appendVarint(buf, e.T-prevT)
		}
		prevT = e.T
		var vb [8]byte
		binary.BigEndian.PutUint64(vb[:], math.Float64bits(e.V))
		buf = append(buf, vb[:]...)
	}
	return buf
}

// encodeDefine serializes an opDefine payload: the WAL ref binding plus
// the full series identity it stands for from here on.
func encodeDefine(buf []byte, ref uint64, id metric.ID, kind metric.Kind, unit metric.Unit) []byte {
	buf = append(buf, opDefine)
	buf = appendUvarint(buf, ref)
	buf = appendID(buf, id)
	buf = append(buf, byte(kind))
	return appendString(buf, string(unit))
}

// encodeAppendRef serializes an opAppendRef payload: per sample just a
// WAL-ref uvarint, a delta-encoded timestamp and the value — the compact
// form that replaces re-encoding the whole ID per opAppend entry.
func encodeAppendRef(buf []byte, entries []refSample) []byte {
	buf = append(buf, opAppendRef)
	buf = appendUvarint(buf, uint64(len(entries)))
	var prevT int64
	for i := range entries {
		e := &entries[i]
		buf = appendUvarint(buf, e.ref)
		if i == 0 {
			buf = appendVarint(buf, e.t)
		} else {
			buf = appendVarint(buf, e.t-prevT)
		}
		prevT = e.t
		var vb [8]byte
		binary.BigEndian.PutUint64(vb[:], math.Float64bits(e.v))
		buf = append(buf, vb[:]...)
	}
	return buf
}

// encodeDownsample serializes a Downsample payload into buf.
func encodeDownsample(buf []byte, id metric.ID, step int64) []byte {
	buf = append(buf, opDownsample)
	buf = appendID(buf, id)
	return appendVarint(buf, step)
}

// encodeRetain serializes a Retain payload into buf.
func encodeRetain(buf []byte, cutoff int64) []byte {
	buf = append(buf, opRetain)
	return appendVarint(buf, cutoff)
}

// encodeRetainTier serializes a RetainTier payload into buf.
func encodeRetainTier(buf []byte, step, cutoff int64) []byte {
	buf = append(buf, opRetainTier)
	buf = appendVarint(buf, step)
	return appendVarint(buf, cutoff)
}

// --- payload decoding -------------------------------------------------

type payloadReader struct {
	buf []byte
	pos int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.buf[p.pos:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	p.pos += n
	return v, nil
}

func (p *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(p.buf[p.pos:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	p.pos += n
	return v, nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	// Bounds-check before converting: a corrupt varint can exceed the
	// buffer or overflow int, which must be an error, not a panic.
	if n > uint64(len(p.buf)-p.pos) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(p.buf[p.pos : p.pos+int(n)])
	p.pos += int(n)
	return s, nil
}

func (p *payloadReader) byteVal() (byte, error) {
	if p.pos >= len(p.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := p.buf[p.pos]
	p.pos++
	return b, nil
}

func (p *payloadReader) float() (float64, error) {
	if p.pos+8 > len(p.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(p.buf[p.pos:]))
	p.pos += 8
	return v, nil
}

func (p *payloadReader) id() (metric.ID, error) {
	var id metric.ID
	var err error
	if id.Name, err = p.str(); err != nil {
		return id, err
	}
	nlab, err := p.uvarint()
	if err != nil {
		return id, err
	}
	if nlab > uint64(len(p.buf)) {
		return id, fmt.Errorf("persist: implausible label count %d", nlab)
	}
	if nlab > 0 {
		kv := make([]string, 0, nlab*2)
		for i := uint64(0); i < nlab; i++ {
			k, err := p.str()
			if err != nil {
				return id, err
			}
			v, err := p.str()
			if err != nil {
				return id, err
			}
			kv = append(kv, k, v)
		}
		id.Labels = metric.NewLabels(kv...)
	}
	return id, nil
}

// decodeRecord parses one WAL payload.
func decodeRecord(payload []byte) (walRecord, error) {
	var rec walRecord
	if len(payload) == 0 {
		return rec, io.ErrUnexpectedEOF
	}
	p := &payloadReader{buf: payload, pos: 1}
	rec.op = payload[0]
	switch rec.op {
	case opAppend:
		n, err := p.uvarint()
		if err != nil {
			return rec, err
		}
		// Every entry costs at least an ID byte, a kind, a timestamp byte
		// and an 8-byte value; reject implausible counts before allocating.
		if n > uint64(len(payload))/4 {
			return rec, fmt.Errorf("persist: implausible entry count %d", n)
		}
		rec.entries = make([]timeseries.BatchEntry, 0, n)
		var prevT int64
		for i := uint64(0); i < n; i++ {
			var e timeseries.BatchEntry
			var err error
			if e.ID, err = p.id(); err != nil {
				return rec, err
			}
			kind, err := p.byteVal()
			if err != nil {
				return rec, err
			}
			e.Kind = metric.Kind(kind)
			unit, err := p.str()
			if err != nil {
				return rec, err
			}
			e.Unit = metric.Unit(unit)
			dt, err := p.varint()
			if err != nil {
				return rec, err
			}
			if i == 0 {
				e.T = dt
			} else {
				e.T = prevT + dt
			}
			prevT = e.T
			if e.V, err = p.float(); err != nil {
				return rec, err
			}
			rec.entries = append(rec.entries, e)
		}
	case opDownsample:
		var err error
		if rec.id, err = p.id(); err != nil {
			return rec, err
		}
		if rec.step, err = p.varint(); err != nil {
			return rec, err
		}
	case opRetain:
		var err error
		if rec.cutoff, err = p.varint(); err != nil {
			return rec, err
		}
	case opRetainTier:
		var err error
		if rec.step, err = p.varint(); err != nil {
			return rec, err
		}
		if rec.cutoff, err = p.varint(); err != nil {
			return rec, err
		}
	case opDefine:
		var err error
		if rec.ref, err = p.uvarint(); err != nil {
			return rec, err
		}
		if rec.id, err = p.id(); err != nil {
			return rec, err
		}
		kind, err := p.byteVal()
		if err != nil {
			return rec, err
		}
		rec.kind = metric.Kind(kind)
		unit, err := p.str()
		if err != nil {
			return rec, err
		}
		rec.unit = metric.Unit(unit)
	case opAppendRef:
		n, err := p.uvarint()
		if err != nil {
			return rec, err
		}
		// Every ref sample costs at least a ref byte, a timestamp byte and
		// an 8-byte value; reject implausible counts before allocating.
		if n > uint64(len(payload))/10 {
			return rec, fmt.Errorf("persist: implausible ref entry count %d", n)
		}
		rec.refEntries = make([]refSample, 0, n)
		var prevT int64
		for i := uint64(0); i < n; i++ {
			var e refSample
			if e.ref, err = p.uvarint(); err != nil {
				return rec, err
			}
			dt, err := p.varint()
			if err != nil {
				return rec, err
			}
			if i == 0 {
				e.t = dt
			} else {
				e.t = prevT + dt
			}
			prevT = e.t
			if e.v, err = p.float(); err != nil {
				return rec, err
			}
			rec.refEntries = append(rec.refEntries, e)
		}
	default:
		return rec, fmt.Errorf("persist: unknown op %d", rec.op)
	}
	if p.pos != len(payload) {
		return rec, fmt.Errorf("%w: %d trailing bytes", errCorruptRecord, len(payload)-p.pos)
	}
	return rec, nil
}
