package persist

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

// corruptFile flips one bit in the middle of a file.
func corruptFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	data[len(data)/2] ^= 0x20
	return os.WriteFile(path, data, 0o644)
}

// copyDir copies every regular file of src into a fresh directory.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestTornWriteRecoversExactPrefix is the randomized kill harness: it
// records the WAL byte offset and a full store dump after every operation,
// then simulates crashes that tear the log at arbitrary byte offsets — as
// a power cut mid-write() does — and asserts that recovery reconstructs
// exactly the longest operation prefix whose records fit below the tear,
// truncating the torn tail instead of failing.
func TestTornWriteRecoversExactPrefix(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncNever} {
		for _, rollups := range []bool{false, true} {
			for _, useRefs := range []bool{false, true} {
				name := policy.String()
				if rollups {
					name += "/rollups"
				}
				if useRefs {
					name += "/refs"
				}
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					opts := Options{ChunkSize: 8, Fsync: policy, SegmentSize: 1 << 30} // one segment: offsets stay file offsets
					if rollups {
						// Tier windows small enough to seal (and be retained)
						// many times within the harness' 30s of traffic, so the
						// dump comparison covers sealed tier chunks, open
						// accumulators and per-tier retention cuts.
						opts.StoreOptions = []timeseries.Option{timeseries.WithRollups(4000, 16000)}
					}
					d, err := Open(dir, opts)
					if err != nil {
						t.Fatal(err)
					}
					segPath := filepath.Join(dir, segmentName(1))

					ids := []metric.ID{testID("power", "n01"), testID("temp", "n02")}
					kinds := []metric.Unit{metric.UnitWatt, metric.UnitCelsius}
					type checkpointState struct {
						offset int64
						dump   []timeseries.SeriesDump
					}
					// states[i] = WAL size and store state after i whole operations.
					// In refs mode every Resolve is its own state: each one logs a
					// standalone opDefine record, so tears between defines must
					// recover to the between-define store state.
					states := []checkpointState{{offset: int64(len(segMagic)), dump: d.Store().Dump()}}
					recordState := func() {
						fi, err := os.Stat(segPath)
						if err != nil {
							t.Fatal(err)
						}
						states = append(states, checkpointState{offset: fi.Size(), dump: d.Store().Dump()})
					}
					srefs := make([]timeseries.SeriesRef, len(ids))
					resolve := func() {
						for i, id := range ids {
							ref, err := d.Resolve(id, metric.Gauge, kinds[i])
							if err != nil {
								t.Fatal(err)
							}
							srefs[i] = ref
							recordState()
						}
					}
					if useRefs {
						resolve()
					}
					const ops = 30
					for r := 0; r < ops; r++ {
						now := int64(1000 + r*1000)
						bumped := false
						switch {
						case r%10 == 7:
							if _, err := d.Downsample(ids[0], 4000); err != nil {
								t.Fatal(err)
							}
							bumped = true
						case r%10 == 9:
							if _, err := d.Retain(now - 6000); err != nil {
								t.Fatal(err)
							}
							bumped = true
						case rollups && r%10 == 5:
							if _, err := d.RetainTier(4000, now-8000); err != nil {
								t.Fatal(err)
							}
							bumped = true
						case useRefs:
							entries := []timeseries.RefEntry{
								{Ref: srefs[0], T: now, V: float64(r)},
								{Ref: srefs[1], T: now, V: float64(100 - r)},
							}
							if n, err := d.AppendRefs(entries); err != nil || n != 2 {
								t.Fatalf("op %d: %d, %v", r, n, err)
							}
						default:
							batch := []timeseries.BatchEntry{
								{ID: ids[0], Kind: metric.Gauge, Unit: metric.UnitWatt, T: now, V: float64(r)},
								{ID: ids[1], Kind: metric.Gauge, Unit: metric.UnitCelsius, T: now, V: float64(100 - r)},
							}
							if n, err := d.AppendBatch(batch); err != nil || n != 2 {
								t.Fatalf("op %d: %d, %v", r, n, err)
							}
						}
						recordState()
						if useRefs && bumped {
							resolve() // epoch bumped: re-resolve, logging fresh defines
						}
					}
					d.Crash()
					full, err := os.ReadFile(segPath)
					if err != nil {
						t.Fatal(err)
					}
					if int64(len(full)) != states[len(states)-1].offset {
						t.Fatalf("offset bookkeeping broken: file %d bytes, recorded %d", len(full), states[len(states)-1].offset)
					}

					// Tear at every record boundary plus a fan of random offsets.
					offsets := map[int64]bool{0: true, int64(len(segMagic)): true, int64(len(full)): true}
					for _, st := range states {
						offsets[st.offset] = true
					}
					rng := rand.New(rand.NewSource(42))
					for i := 0; i < 60; i++ {
						offsets[rng.Int63n(int64(len(full))+1)] = true
					}
					sorted := make([]int64, 0, len(offsets))
					for off := range offsets {
						sorted = append(sorted, off)
					}
					sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })

					for _, off := range sorted {
						crashDir := copyDir(t, dir)
						if err := os.Truncate(filepath.Join(crashDir, segmentName(1)), off); err != nil {
							t.Fatal(err)
						}
						re, err := Open(crashDir, opts)
						if err != nil {
							t.Fatalf("offset %d: recovery failed: %v", off, err)
						}
						// Expected state: the last operation fully below the tear.
						want := states[0]
						for _, st := range states {
							if st.offset <= off {
								want = st
							}
						}
						got := re.Store().Dump()
						if !reflect.DeepEqual(got, want.dump) {
							t.Fatalf("offset %d: recovered state is not the exact op prefix (want offset %d)", off, want.offset)
						}
						st := re.Stats()
						// A tear exactly on a record boundary leaves nothing to
						// truncate; so does truncation to zero (an empty file reads
						// as a clean, freshly created segment).
						expectTails := 1
						if off == 0 || want.offset == off {
							expectTails = 0
						}
						if st.TruncatedTails != expectTails {
							t.Fatalf("offset %d: want %d truncated tails, got %d", off, expectTails, st.TruncatedTails)
						}
						// Recovery truncated the torn tail: a second open must be
						// clean and land on the same state.
						re.Crash()
						re2, err := Open(crashDir, opts)
						if err != nil {
							t.Fatalf("offset %d: second recovery failed: %v", off, err)
						}
						if st2 := re2.Stats(); st2.TruncatedTails != 0 {
							t.Fatalf("offset %d: first recovery left a torn tail behind", off)
						}
						if !reflect.DeepEqual(re2.Store().Dump(), want.dump) {
							t.Fatalf("offset %d: recovery is not idempotent", off)
						}
						re2.Crash()
					}
				})
			}
		}
	}
}

// TestAcknowledgedAppendsSurviveTear: under FsyncAlways every acknowledged
// operation was fsynced before its caller saw success, so a tear can only
// land inside the *unacknowledged* final record — never remove an
// acknowledged one. The offset bookkeeping above proves the equivalence:
// each op's records are wholly below the next op's offset. This test pins
// the ack ordering itself: the WAL sync watermark must cover every
// acknowledged append sequence.
func TestAcknowledgedAppendsSurviveTear(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{ChunkSize: 8, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for r := 0; r < 25; r++ {
		if err := d.Append(testID("p", "n"), metric.Gauge, metric.UnitWatt, int64(1000+r), float64(r)); err != nil {
			t.Fatal(err)
		}
		if synced, written := d.wal.syncSeq.Load(), d.wal.writeSeq.Load(); synced < written {
			t.Fatalf("append %d acknowledged before durable: synced=%d written=%d", r, synced, written)
		}
	}
}
