package persist

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

// refIngest drives a mixed ref-path workload against a durable store:
// resolve, append by ref, re-resolve across epoch bumps from Downsample and
// Retain — the exact sequence a collector sink produces in production.
func refIngest(t *testing.T, d *DurableStore, ops int) {
	t.Helper()
	ids := []metric.ID{testID("power", "n01"), testID("temp", "n02")}
	refs := make([]timeseries.SeriesRef, len(ids))
	resolve := func() {
		for i, id := range ids {
			ref, err := d.Resolve(id, metric.Gauge, metric.UnitWatt)
			if err != nil {
				t.Fatal(err)
			}
			refs[i] = ref
		}
	}
	resolve()
	for r := 0; r < ops; r++ {
		now := int64(1000 + r*1000)
		switch {
		case r%10 == 7:
			if _, err := d.Downsample(ids[0], 4000); err != nil {
				t.Fatal(err)
			}
			resolve() // epoch bumped: old refs are stale
		case r%10 == 9:
			if _, err := d.Retain(now - 6000); err != nil {
				t.Fatal(err)
			}
			resolve()
		default:
			entries := []timeseries.RefEntry{
				{Ref: refs[0], T: now, V: float64(r)},
				{Ref: refs[1], T: now, V: float64(100 - r)},
			}
			if n, err := d.AppendRefs(entries); err != nil || n != 2 {
				t.Fatalf("op %d: appended %d, %v", r, n, err)
			}
		}
	}
}

// TestRefIngestCrashRecovery: a store fed purely through the ref fast path
// (opDefine + opAppendRef records, with epoch bumps interleaved) recovers
// byte-identical after a crash — the same guarantee keyed ingest has.
func TestRefIngestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ChunkSize: 8, Fsync: FsyncAlways}
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	refIngest(t, d, 40)
	want := d.Store().Dump()
	d.Crash()

	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Crash()
	if !reflect.DeepEqual(re.Store().Dump(), want) {
		t.Fatal("ref-ingested store did not recover byte-identical")
	}
}

// TestRefIngestMatchesKeyedIngest: the same sample stream through
// AppendRefs and through AppendBatch produces DeepEqual stores, both live
// and after crash recovery.
func TestRefIngestMatchesKeyedIngest(t *testing.T) {
	ids := []metric.ID{testID("power", "n01"), testID("temp", "n02")}
	opts := Options{ChunkSize: 8, Fsync: FsyncAlways}

	keyedDir, refDir := t.TempDir(), t.TempDir()
	keyed, err := Open(keyedDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	refed, err := Open(refDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]timeseries.SeriesRef, len(ids))
	for i, id := range ids {
		if refs[i], err = refed.Resolve(id, metric.Gauge, metric.UnitWatt); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 30; r++ {
		now := int64(1000 + r*1000)
		batch := make([]timeseries.BatchEntry, len(ids))
		rents := make([]timeseries.RefEntry, len(ids))
		for i, id := range ids {
			batch[i] = timeseries.BatchEntry{ID: id, Kind: metric.Gauge, Unit: metric.UnitWatt, T: now, V: float64(r*10 + i)}
			rents[i] = timeseries.RefEntry{Ref: refs[i], T: now, V: float64(r*10 + i)}
		}
		nk, errK := keyed.AppendBatch(batch)
		nr, errR := refed.AppendRefs(rents)
		if nk != nr || errK != nil || errR != nil {
			t.Fatalf("op %d: keyed (%d,%v) vs refs (%d,%v)", r, nk, errK, nr, errR)
		}
	}
	if !reflect.DeepEqual(keyed.Store().Dump(), refed.Store().Dump()) {
		t.Fatal("live stores diverged between keyed and ref ingest")
	}
	keyed.Crash()
	refed.Crash()
	rek, err := Open(keyedDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rek.Crash()
	rer, err := Open(refDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rer.Crash()
	if !reflect.DeepEqual(rek.Store().Dump(), rer.Store().Dump()) {
		t.Fatal("recovered stores diverged between keyed and ref ingest")
	}
}

// TestRefWALSmallerThanKeyed pins the perf claim the fast path makes on
// disk: the steady-state WAL cost of a ref-addressed sample (ref uvarint +
// delta-t + value) must be well below the keyed record cost, which
// re-encodes the full ID and unit per entry.
func TestRefWALSmallerThanKeyed(t *testing.T) {
	ids := []metric.ID{
		{Name: "node_power_watts", Labels: metric.NewLabels("node", "n042", "rack", "r02")},
		{Name: "node_cpu_temp_celsius", Labels: metric.NewLabels("node", "n042", "rack", "r02")},
	}
	opts := Options{ChunkSize: 64, Fsync: FsyncNever}
	keyed, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer keyed.Crash()
	refed, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer refed.Crash()

	refs := make([]timeseries.SeriesRef, len(ids))
	for i, id := range ids {
		if refs[i], err = refed.Resolve(id, metric.Gauge, metric.UnitWatt); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 200
	for r := 0; r < rounds; r++ {
		now := int64(1000 + r*1000)
		batch := make([]timeseries.BatchEntry, len(ids))
		rents := make([]timeseries.RefEntry, len(ids))
		for i, id := range ids {
			batch[i] = timeseries.BatchEntry{ID: id, Kind: metric.Gauge, Unit: metric.UnitWatt, T: now, V: float64(r)}
			rents[i] = timeseries.RefEntry{Ref: refs[i], T: now, V: float64(r)}
		}
		if _, err := keyed.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := refed.AppendRefs(rents); err != nil {
			t.Fatal(err)
		}
	}
	kb, rb := keyed.Stats().WALBytes, refed.Stats().WALBytes
	samples := uint64(rounds * len(ids))
	t.Logf("WAL bytes/sample: keyed %.1f, refs %.1f", float64(kb)/float64(samples), float64(rb)/float64(samples))
	if rb*2 >= kb {
		t.Fatalf("ref WAL not at least 2x smaller: keyed %d bytes, refs %d bytes", kb, rb)
	}
}

// TestCheckpointRebindsWALRefs: a checkpoint clears the WAL-ref table so
// post-snapshot segments are self-contained. Outstanding SeriesRefs stay
// valid (no epoch bump), the next AppendRefs re-defines them on the fly,
// and recovery from snapshot + post-cut WAL is exact.
func TestCheckpointRebindsWALRefs(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ChunkSize: 8, Fsync: FsyncAlways}
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	id := testID("power", "n01")
	ref, err := d.Resolve(id, metric.Gauge, metric.UnitWatt)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.AppendRefs([]timeseries.RefEntry{{Ref: ref, T: 1000, V: 1}}); n != 1 || err != nil {
		t.Fatalf("pre-checkpoint append: %d, %v", n, err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The ref survived the checkpoint; the wrapper must re-log its
	// definition before the post-cut append record.
	if n, err := d.AppendRefs([]timeseries.RefEntry{{Ref: ref, T: 2000, V: 2}}); n != 1 || err != nil {
		t.Fatalf("post-checkpoint append: %d, %v", n, err)
	}
	want := d.Store().Dump()
	d.Crash()
	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Crash()
	if !reflect.DeepEqual(re.Store().Dump(), want) {
		t.Fatal("post-checkpoint ref records did not recover")
	}
	if st := re.Stats(); !st.SnapshotLoaded {
		t.Fatal("recovery ignored the checkpoint snapshot")
	}
}

// TestStaleRefsNeverLogged: entries the live store would reject as stale
// are filtered before logging, so replay cannot resurrect them. A wholly
// stale batch logs nothing at all.
func TestStaleRefsNeverLogged(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ChunkSize: 8, Fsync: FsyncAlways}
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	id := testID("power", "n01")
	ref, err := d.Resolve(id, metric.Gauge, metric.UnitWatt)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.AppendRefs([]timeseries.RefEntry{{Ref: ref, T: 1000, V: 1}}); n != 1 || err != nil {
		t.Fatalf("seed append: %d, %v", n, err)
	}
	if _, err := d.Retain(0); err != nil { // bumps the ref epoch
		t.Fatal(err)
	}
	before := d.Stats().WALRecords
	n, err := d.AppendRefs([]timeseries.RefEntry{{Ref: ref, T: 2000, V: 2}})
	if n != 0 || !errors.Is(err, timeseries.ErrStaleRef) {
		t.Fatalf("stale batch: %d, %v", n, err)
	}
	if after := d.Stats().WALRecords; after != before {
		t.Fatalf("stale batch logged %d records", after-before)
	}
	want := d.Store().Dump()
	d.Crash()
	re, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Crash()
	if !reflect.DeepEqual(re.Store().Dump(), want) {
		t.Fatal("recovery diverged after a rejected stale batch")
	}
}

// TestSegmentStreamReplaysRefRecords: a follower applying the leader's raw
// record stream (SegmentReader + ApplyRecord with a RefTable) converges on
// the leader's exact store — including opDefine/opAppendRef records and the
// epoch bumps interleaved between them.
func TestSegmentStreamReplaysRefRecords(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{ChunkSize: 8, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	refIngest(t, d, 40)

	follower := timeseries.NewStore(8)
	rt := NewRefTable()
	sr := NewSegmentReader(dir)
	seq, off := uint64(0), int64(0)
	for {
		nseq, noff, n, err := sr.ReadFrom(seq, off, 1<<20, func(payload []byte) error {
			return ApplyRecord(follower, rt, payload)
		})
		if err != nil {
			t.Fatal(err)
		}
		seq, off = nseq, noff
		if n == 0 {
			break
		}
	}
	if !reflect.DeepEqual(follower.Dump(), d.Store().Dump()) {
		t.Fatal("follower diverged from ref-ingesting leader")
	}
	d.Crash()
}
