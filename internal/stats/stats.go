// Package stats implements the descriptive-statistics toolkit the ODA
// analytics layers are built on: summary statistics, quantiles, histograms,
// rolling windows, correlation measures and information-theoretic metrics.
//
// Everything here is deterministic and allocation-conscious; the heavier
// model classes (regression, clustering, forests) live in internal/ml, and
// time-series forecasting in internal/forecast.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// Summary holds the moments and extremes of a set of observations.
type Summary struct {
	Count    int
	Sum      float64
	Mean     float64
	Variance float64 // sample variance (n-1 denominator)
	Std      float64
	Min      float64
	Max      float64
}

// Summarize computes a Summary over xs. It returns ErrEmpty for no input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return o.Summary(), nil
}

// Online accumulates summary statistics one observation at a time using
// Welford's algorithm, so a collector can maintain running statistics
// without retaining samples. The zero value is ready to use.
type Online struct {
	n        int
	mean, m2 float64
	sum      float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	o.sum += x
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations added so far.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 for no observations).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running sample variance (0 for fewer than two points).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the running sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Variance()) }

// Summary snapshots the accumulator.
func (o *Online) Summary() Summary {
	return Summary{
		Count:    o.n,
		Sum:      o.sum,
		Mean:     o.mean,
		Variance: o.Variance(),
		Std:      o.Std(),
		Min:      o.min,
		Max:      o.max,
	}
}

// Merge combines another accumulator into o (parallel Welford merge), so
// per-node statistics can be reduced into rack or system aggregates.
func (o *Online) Merge(b *Online) {
	if b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *b
		return
	}
	n := o.n + b.n
	d := b.mean - o.mean
	o.m2 += b.m2 + d*d*float64(o.n)*float64(b.n)/float64(n)
	o.mean += d * float64(b.n) / float64(n)
	o.sum += b.sum
	if b.min < o.min {
		o.min = b.min
	}
	if b.max > o.max {
		o.max = b.max
	}
	o.n = n
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 {
	s, err := Summarize(xs)
	if err != nil {
		return 0
	}
	return s.Std
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// The input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles computes several quantiles with a single sort.
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			return nil, errors.New("stats: quantile out of [0,1]")
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out, nil
}

// Median is the 0.5 quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// MAD returns the median absolute deviation of xs, scaled by 1.4826 so it
// estimates the standard deviation for normal data. Anomaly detectors prefer
// it over Std because a single faulty sensor cannot inflate it.
func MAD(xs []float64) (float64, error) {
	med, err := Median(xs)
	if err != nil {
		return 0, err
	}
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	m, err := Median(dev)
	return 1.4826 * m, err
}

// IQR returns the interquartile range (Q3 - Q1).
func IQR(xs []float64) (float64, error) {
	qs, err := Quantiles(xs, 0.25, 0.75)
	if err != nil {
		return 0, err
	}
	return qs[1] - qs[0], nil
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either input has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation between xs and ys.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the fractional ranks of xs (average rank for ties),
// 1-based, in the original order.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// AutoCorrelation returns the autocorrelation of xs at the given lag.
func AutoCorrelation(xs []float64, lag int) (float64, error) {
	if lag < 0 || lag >= len(xs) {
		return 0, errors.New("stats: lag out of range")
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < len(xs); i++ {
		den += (xs[i] - m) * (xs[i] - m)
	}
	if den == 0 {
		return 0, nil
	}
	for i := 0; i+lag < len(xs); i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den, nil
}

// Entropy returns the Shannon entropy (bits) of a discrete distribution
// given as non-negative weights; the weights need not be normalized. This is
// the primitive behind the System Information Entropy metric.
func Entropy(weights []float64) float64 {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, w := range weights {
		if w <= 0 {
			continue
		}
		p := w / total
		if p <= 0 || math.IsNaN(p) { // total may have overflowed to +Inf
			continue
		}
		h -= p * math.Log2(p)
	}
	return h
}

// ZScores returns the standard scores of xs. If xs has zero variance all
// scores are zero.
func ZScores(xs []float64) []float64 {
	s, err := Summarize(xs)
	out := make([]float64, len(xs))
	if err != nil || s.Std == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - s.Mean) / s.Std
	}
	return out
}

// MinMaxScale rescales xs into [0,1]. Constant input maps to all zeros.
func MinMaxScale(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}

// EWMA maintains an exponentially weighted moving average with smoothing
// factor alpha in (0,1]. The zero value is invalid; use NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. Alpha is clamped
// into (0,1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 1e-9
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Add folds in an observation and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value, e.init = x, true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Rolling is a fixed-size sliding window over a stream that maintains sum
// and sum of squares incrementally, for O(1) windowed mean/std.
type Rolling struct {
	buf        []float64
	head, size int
	sum, sumSq float64
}

// NewRolling returns a rolling window of capacity n (n >= 1).
func NewRolling(n int) *Rolling {
	if n < 1 {
		n = 1
	}
	return &Rolling{buf: make([]float64, n)}
}

// Add pushes an observation, evicting the oldest when full.
func (r *Rolling) Add(x float64) {
	if r.size == len(r.buf) {
		old := r.buf[r.head]
		r.sum -= old
		r.sumSq -= old * old
	} else {
		r.size++
	}
	r.buf[r.head] = x
	r.sum += x
	r.sumSq += x * x
	r.head = (r.head + 1) % len(r.buf)
}

// Full reports whether the window has reached capacity.
func (r *Rolling) Full() bool { return r.size == len(r.buf) }

// Len returns the current number of observations in the window.
func (r *Rolling) Len() int { return r.size }

// Mean returns the windowed mean.
func (r *Rolling) Mean() float64 {
	if r.size == 0 {
		return 0
	}
	return r.sum / float64(r.size)
}

// Std returns the windowed sample standard deviation.
func (r *Rolling) Std() float64 {
	if r.size < 2 {
		return 0
	}
	n := float64(r.size)
	v := (r.sumSq - r.sum*r.sum/n) / (n - 1)
	if v < 0 { // numerical noise
		v = 0
	}
	return math.Sqrt(v)
}

// Values returns the window contents oldest-first.
func (r *Rolling) Values() []float64 {
	out := make([]float64, 0, r.size)
	start := r.head - r.size
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.size; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Out-of-range values are
// counted in the under/overflow bins.
type Histogram struct {
	Lo, Hi    float64
	Counts    []uint64
	Underflow uint64
	Overflow  uint64
	total     uint64
}

// NewHistogram builds a histogram with nbins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins < 1 {
		nbins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // guard float rounding at the upper edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() uint64 { return h.total }

// Quantile estimates the q-quantile from bin midpoints.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	cum := float64(h.Underflow)
	if cum >= target {
		return h.Lo
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= target {
			return h.Lo + (float64(i)+0.5)*width
		}
	}
	return h.Hi
}

// Entropy returns the Shannon entropy of the in-range bin distribution, the
// building block of the System Information Entropy indicator.
func (h *Histogram) Entropy() float64 {
	ws := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		ws[i] = float64(c)
	}
	return Entropy(ws)
}

// Covariance returns the sample covariance of xs and ys.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1), nil
}

// Diff returns the first difference of xs (len-1 elements).
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}

// ArgMax returns the index of the maximum element, or -1 for empty input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element, or -1 for empty input.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// Clamp limits x into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
