package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 8 || s.Sum != 40 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample variance of this classic set is 32/7.
	if !almostEq(s.Variance, 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", s.Variance)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatal("empty input should return ErrEmpty")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		o.Add(xs[i])
	}
	b, _ := Summarize(xs)
	if !almostEq(o.Mean(), b.Mean, 1e-9) || !almostEq(o.Variance(), b.Variance, 1e-9) {
		t.Fatalf("online (%v,%v) vs batch (%v,%v)", o.Mean(), o.Variance(), b.Mean, b.Variance)
	}
}

func TestOnlineMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, all Online
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 100
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() || !almostEq(a.Mean(), all.Mean(), 1e-9) || !almostEq(a.Variance(), all.Variance(), 1e-9) {
		t.Fatalf("merge mismatch: %+v vs %+v", a.Summary(), all.Summary())
	}
	// Merging empty is a no-op; merging into empty copies.
	var e Online
	e.Merge(&a)
	if e.N() != a.N() || e.Mean() != a.Mean() {
		t.Fatal("merge into empty failed")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.75, 7.75},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil || !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, %v; want %v", c.q, got, err, c.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range q should error")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("empty input should return ErrEmpty")
	}
	one, _ := Quantile([]float64{42}, 0.9)
	if one != 42 {
		t.Error("single element quantile")
	}
}

func TestQuantilesSingleSort(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	got, err := Quantiles(xs, 0, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Quantiles = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Quantiles sorted the caller's slice")
	}
}

func TestMADRobustness(t *testing.T) {
	base := []float64{10, 10.1, 9.9, 10.2, 9.8, 10, 10.1, 9.9}
	spiked := append(append([]float64(nil), base...), 1000)
	mBase, _ := MAD(base)
	mSpiked, _ := MAD(spiked)
	if mSpiked > 3*mBase {
		t.Fatalf("MAD not robust: %v -> %v", mBase, mSpiked)
	}
	sBase, sSpiked := Std(base), Std(spiked)
	if sSpiked < 10*sBase {
		t.Fatalf("test premise broken: Std should explode, %v -> %v", sBase, sSpiked)
	}
}

func TestIQR(t *testing.T) {
	got, err := IQR([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil || !almostEq(got, 4.5, 1e-12) {
		t.Fatalf("IQR = %v, %v", got, err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r, _ := Pearson(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r, _ := Pearson(xs, neg); !almostEq(r, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if r, _ := Pearson(xs, flat); r != 0 {
		t.Fatalf("zero-variance input should give 0, got %v", r)
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // nonlinear but monotone
	r, err := Spearman(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Fatalf("Spearman = %v, %v", r, err)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestAutoCorrelation(t *testing.T) {
	// A period-2 alternating series has autocorrelation ~ -1 at lag 1.
	xs := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	r, err := AutoCorrelation(xs, 1)
	if err != nil || r > -0.8 {
		t.Fatalf("lag-1 autocorr = %v, %v", r, err)
	}
	if r0, _ := AutoCorrelation(xs, 0); !almostEq(r0, 1, 1e-12) {
		t.Fatalf("lag-0 autocorr = %v", r0)
	}
	if _, err := AutoCorrelation(xs, len(xs)); err == nil {
		t.Fatal("lag >= len should error")
	}
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]float64{1, 1, 1, 1}); !almostEq(h, 2, 1e-12) {
		t.Fatalf("uniform-4 entropy = %v, want 2 bits", h)
	}
	if h := Entropy([]float64{1, 0, 0}); h != 0 {
		t.Fatalf("degenerate entropy = %v", h)
	}
	if h := Entropy(nil); h != 0 {
		t.Fatalf("empty entropy = %v", h)
	}
	// Negative weights are ignored rather than producing NaN.
	if h := Entropy([]float64{-5, 2, 2}); !almostEq(h, 1, 1e-12) {
		t.Fatalf("entropy with negatives = %v", h)
	}
}

func TestZScoresAndMinMax(t *testing.T) {
	z := ZScores([]float64{10, 20, 30})
	if !almostEq(z[0], -1, 1e-12) || z[1] != 0 || !almostEq(z[2], 1, 1e-12) {
		t.Fatalf("ZScores = %v", z)
	}
	if z := ZScores([]float64{5, 5, 5}); z[0] != 0 || z[1] != 0 {
		t.Fatalf("constant ZScores = %v", z)
	}
	mm := MinMaxScale([]float64{5, 10, 15})
	if mm[0] != 0 || mm[1] != 0.5 || mm[2] != 1 {
		t.Fatalf("MinMaxScale = %v", mm)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if v := e.Add(10); v != 10 {
		t.Fatalf("first Add = %v", v)
	}
	if v := e.Add(20); v != 15 {
		t.Fatalf("second Add = %v", v)
	}
	if v := e.Add(20); v != 17.5 {
		t.Fatalf("third Add = %v", v)
	}
	// Clamping.
	if NewEWMA(5).alpha != 1 || NewEWMA(-1).alpha <= 0 {
		t.Fatal("alpha clamping broken")
	}
}

func TestRollingWindow(t *testing.T) {
	r := NewRolling(3)
	r.Add(1)
	r.Add(2)
	if r.Full() {
		t.Fatal("window should not be full yet")
	}
	r.Add(3)
	if !r.Full() || r.Mean() != 2 {
		t.Fatalf("mean = %v", r.Mean())
	}
	r.Add(10) // evicts 1 -> window {2,3,10}
	if r.Mean() != 5 {
		t.Fatalf("mean after evict = %v", r.Mean())
	}
	vals := r.Values()
	if len(vals) != 3 || vals[0] != 2 || vals[2] != 10 {
		t.Fatalf("Values = %v", vals)
	}
	want := Std([]float64{2, 3, 10})
	if !almostEq(r.Std(), want, 1e-9) {
		t.Fatalf("Std = %v, want %v", r.Std(), want)
	}
}

func TestRollingMatchesBatchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewRolling(50)
	var window []float64
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64() * 100
		r.Add(x)
		window = append(window, x)
		if len(window) > 50 {
			window = window[1:]
		}
		if !almostEq(r.Mean(), Mean(window), 1e-6) {
			t.Fatalf("step %d: rolling mean %v vs batch %v", i, r.Mean(), Mean(window))
		}
		if !almostEq(r.Std(), Std(window), 1e-6) {
			t.Fatalf("step %d: rolling std %v vs batch %v", i, r.Std(), Std(window))
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.Total() != 12 || h.Underflow != 1 || h.Overflow != 1 {
		t.Fatalf("histogram totals: %+v", h)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count = %d", i, c)
		}
	}
	if q := h.Quantile(0.5); q < 4 || q > 7 {
		t.Fatalf("histogram median estimate = %v", q)
	}
	if e := h.Entropy(); !almostEq(e, math.Log2(10), 1e-12) {
		t.Fatalf("uniform histogram entropy = %v", e)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(math.Nextafter(1, 0)) // just under upper edge
	if h.Counts[3] != 1 {
		t.Fatalf("upper-edge value landed in %v", h.Counts)
	}
	h2 := NewHistogram(5, 5, 0) // degenerate params get fixed up
	h2.Add(5.5)
	if h2.Total() != 1 {
		t.Fatal("degenerate histogram unusable")
	}
}

func TestCovariance(t *testing.T) {
	c, err := Covariance([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || !almostEq(c, 2, 1e-12) {
		t.Fatalf("Covariance = %v, %v", c, err)
	}
}

func TestDiffArgsClamp(t *testing.T) {
	d := Diff([]float64{1, 4, 9})
	if len(d) != 2 || d[0] != 3 || d[1] != 5 {
		t.Fatalf("Diff = %v", d)
	}
	if Diff([]float64{1}) != nil {
		t.Fatal("Diff of single element should be nil")
	}
	if ArgMax([]float64{1, 5, 3}) != 1 || ArgMin([]float64{1, 5, -3}) != 2 {
		t.Fatal("ArgMax/ArgMin broken")
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("empty Arg* should be -1")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp broken")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 50
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v, err := Quantile(xs, qq)
			if err != nil || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		s, _ := Summarize(xs)
		lo, _ := Quantile(xs, 0)
		hi, _ := Quantile(xs, 1)
		return lo == s.Min && hi == s.Max
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: entropy is maximized by the uniform distribution.
func TestEntropyBoundProperty(t *testing.T) {
	f := func(ws []float64) bool {
		pos := 0
		for i := range ws {
			ws[i] = math.Abs(ws[i])
			if ws[i] > 0 {
				pos++
			}
		}
		h := Entropy(ws)
		if pos == 0 {
			return h == 0
		}
		return h <= math.Log2(float64(pos))+1e-9 && h >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
