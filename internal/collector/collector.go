// Package collector implements the data-acquisition layer of the ODA stack:
// sources expose instantaneous readings, agents sample them on a cadence and
// dispatch the batches to sinks (the TSDB, the pub/sub bus, a wire client).
//
// Agents support two drive modes. Tick(now) lets the discrete-event
// simulator advance collection on virtual time; Run(ctx) samples on wall
// clock for live deployments. Both paths share the same collection logic,
// so analytics behave identically on simulated and real time.
package collector

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bus"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

// Reading is one instantaneous observation from a source.
type Reading struct {
	ID    metric.ID
	Kind  metric.Kind
	Unit  metric.Unit
	Value float64
}

// Source produces readings on demand. Implementations live next to the
// subsystem they instrument (facility plant, node hardware, scheduler).
type Source interface {
	// Name identifies the source in agent statistics.
	Name() string
	// Collect returns current readings at virtual time now (Unix millis).
	Collect(now int64) []Reading
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc struct {
	SourceName string
	Fn         func(now int64) []Reading
}

// Name implements Source.
func (s SourceFunc) Name() string { return s.SourceName }

// Collect implements Source.
func (s SourceFunc) Collect(now int64) []Reading { return s.Fn(now) }

// Sink consumes a batch of readings collected at one instant.
type Sink interface {
	Consume(agent string, now int64, readings []Reading) error
}

// RejectedError is returned by a sink that accepted a batch but rejected N
// of its samples (duplicate timestamps, retention violations, …). The agent
// counts rejections in Stats.RejectedSamples instead of Stats.SinkErrors,
// so partial rejections and hard Consume failures stay distinguishable but
// both surface uniformly through Agent.Stats.
type RejectedError struct {
	// N is how many samples of the batch were rejected.
	N int
}

// Error implements error.
func (e *RejectedError) Error() string {
	return fmt.Sprintf("collector: sink rejected %d samples", e.N)
}

// BatchAppender is the slice of the TSDB ingest surface StoreSink needs.
// Both *timeseries.Store and the durable wrapper (*persist.DurableStore)
// implement it.
type BatchAppender interface {
	AppendBatch([]timeseries.BatchEntry) (int, error)
}

// StoreSink writes readings into a TSDB store (or a durable wrapper).
//
// When the store supports the ref ingest fast path
// (timeseries.RefAppender — both *timeseries.Store and
// *persist.DurableStore do), the sink resolves each series once and then
// appends by interned ref, skipping per-sample key serialization, hashing
// and map lookups. Sources hand back readings in a stable order, so the
// ref cache is positional: cache slot i is validated against reading i by
// name and label identity, which makes the steady-state scrape zero-
// lookup as well as zero-alloc. The cache heals itself across ref epoch
// bumps (Downsample/Retain/recovery swaps) and DisableRefs forces the
// keyed path.
type StoreSink struct {
	Store BatchAppender
	// DisableRefs forces keyed AppendBatch even when Store supports refs.
	DisableRefs bool
	errs        atomic.Uint64

	mu       sync.Mutex
	refEpoch uint64
	cache    []sinkRef
	refBuf   []timeseries.RefEntry
}

// sinkRef is one positional ref-cache slot.
type sinkRef struct {
	name   string
	labels metric.Labels
	ref    timeseries.SeriesRef
	ok     bool
}

// Consume implements Sink; ingest errors are counted, not fatal, matching
// monitoring-fabric behaviour where one bad sample must not stop the flow.
// The whole scrape goes down as one AppendRefs/AppendBatch so the store
// amortizes lock acquisition across the batch. Partial rejections are
// reported as a *RejectedError so the agent can account for them in
// Stats.RejectedSamples alongside every other sink's rejections — but a
// store that refused the batch wholesale because it is closed or read-only
// (a durable store after Close reports timeseries.ErrStoreClosed) is a hard
// sink failure, not N per-sample rejections: it surfaces as the original
// error so Stats.SinkErrors counts it and RejectedSamples stays honest.
func (s *StoreSink) Consume(_ string, now int64, readings []Reading) error {
	if len(readings) == 0 {
		return nil
	}
	if !s.DisableRefs {
		// Re-assert every call: harnesses swap Store after a crash
		// recovery, and the fresh store's new epoch invalidates the cache.
		if ra, ok := s.Store.(timeseries.RefAppender); ok {
			if done, appended, err := s.consumeRefs(ra, now, readings); done {
				return s.finish(len(readings), appended, err)
			}
		}
	}
	batch := make([]timeseries.BatchEntry, len(readings))
	for i, r := range readings {
		batch[i] = timeseries.BatchEntry{ID: r.ID, Kind: r.Kind, Unit: r.Unit, T: now, V: r.Value}
	}
	appended, err := s.Store.AppendBatch(batch)
	return s.finish(len(readings), appended, err)
}

// consumeRefs runs one scrape through the ref fast path. done=false means
// the fast path could not take the batch (a Resolve failed for a reason
// other than closure) and the keyed path should decide.
func (s *StoreSink) consumeRefs(ra timeseries.RefAppender, now int64, readings []Reading) (done bool, appended int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for attempt := 0; ; attempt++ {
		epoch := ra.RefEpoch()
		if epoch != s.refEpoch {
			for i := range s.cache {
				s.cache[i].ok = false
			}
			s.refEpoch = epoch
		}
		for len(s.cache) < len(readings) {
			s.cache = append(s.cache, sinkRef{})
		}
		s.refBuf = s.refBuf[:0]
		for i := range readings {
			r := &readings[i]
			c := &s.cache[i]
			if !c.ok || c.name != r.ID.Name || !c.labels.Equal(r.ID.Labels) {
				ref, rerr := ra.Resolve(r.ID, r.Kind, r.Unit)
				if rerr != nil {
					if errors.Is(rerr, timeseries.ErrStoreClosed) {
						return true, 0, rerr
					}
					return false, 0, nil
				}
				c.name, c.labels, c.ref, c.ok = r.ID.Name, r.ID.Labels, ref, true
			}
			s.refBuf = append(s.refBuf, timeseries.RefEntry{Ref: c.ref, T: now, V: r.Value})
		}
		appended, err = ra.AppendRefs(s.refBuf)
		// A wholly-stale batch lost a race with an epoch bump between
		// resolving and appending; one re-resolve retry is double-append
		// safe because nothing landed. A mixed batch reports the skipped
		// entries as rejections, like out-of-order samples.
		if err != nil && appended == 0 && errors.Is(err, timeseries.ErrStaleRef) && attempt == 0 {
			s.refEpoch = 0 // 0 is never a live epoch: invalidates the cache
			continue
		}
		return true, appended, err
	}
}

// finish converts an append outcome into the sink contract (hard failure
// for a closed store, *RejectedError for partial rejections).
func (s *StoreSink) finish(offered, appended int, err error) error {
	if err != nil && errors.Is(err, timeseries.ErrStoreClosed) {
		return err
	}
	if rejected := offered - appended; rejected > 0 {
		s.errs.Add(uint64(rejected))
		return &RejectedError{N: rejected}
	}
	return nil
}

// Errors returns the number of rejected samples.
func (s *StoreSink) Errors() uint64 { return s.errs.Load() }

// BusSink publishes readings on a message bus under the given topic prefix.
type BusSink struct {
	Bus    *bus.Bus
	Prefix string
}

// Consume implements Sink.
func (s *BusSink) Consume(_ string, now int64, readings []Reading) error {
	for _, r := range readings {
		s.Bus.Publish(bus.Message{
			Topic:  bus.TopicFor(s.Prefix, r.ID),
			ID:     r.ID,
			Kind:   r.Kind,
			Unit:   r.Unit,
			Sample: metric.Sample{T: now, V: r.Value},
		})
	}
	return nil
}

// WireSink pushes readings to a remote telemetry server over the wire
// protocol, one batch per collection round. Sends can be bounded by a
// deadline and retried with jittered exponential backoff, so a flaky
// aggregation endpoint costs bounded time per batch instead of stalling
// forever — combine with a queued registration (AddSinkQueued) to keep
// even that bounded latency off the scrape path.
type WireSink struct {
	Client *wire.Client
	// MaxRetries is how many times a failed send is retried before the
	// batch is given up on (0 = fail fast on the first error).
	MaxRetries int
	// RetryBackoff is the base delay before the first retry, doubling on
	// each subsequent attempt (default 10ms when retries are enabled).
	// The actual delay is jittered uniformly within [base/2, base) so a
	// fleet of agents whose sends failed together does not hammer a
	// recovering server in lockstep.
	RetryBackoff time.Duration
	// SendDeadline bounds each send attempt's network write (0 = none).
	SendDeadline time.Duration

	retries atomic.Uint64
}

// maxRetryBackoff caps the exponential growth so a long retry chain never
// escalates into multi-minute stalls of the sink's queue pump.
const maxRetryBackoff = 5 * time.Second

// retryDelay computes the jittered backoff before retry number attempt
// (0-based): the base doubles per attempt, capped at maxRetryBackoff, then
// jitters uniformly within [base/2, base). rnd is rand.Int63n or a
// deterministic stand-in for tests; the returned delay d always satisfies
// base/2 <= d < base.
func retryDelay(attempt int, base time.Duration, rnd func(int64) int64) time.Duration {
	d := base
	for i := 0; i < attempt && d < maxRetryBackoff; i++ {
		d *= 2
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rnd(int64(half)))
}

// Retries returns how many retry attempts failed sends have consumed.
func (s *WireSink) Retries() uint64 { return s.retries.Load() }

// Consume implements Sink.
func (s *WireSink) Consume(agent string, now int64, readings []Reading) error {
	b := &wire.Batch{Agent: agent, Records: make([]wire.Record, 0, len(readings))}
	for _, r := range readings {
		b.Records = append(b.Records, wire.Record{
			ID:      r.ID,
			Kind:    r.Kind,
			Unit:    r.Unit,
			Samples: []metric.Sample{{T: now, V: r.Value}},
		})
	}
	if s.SendDeadline > 0 {
		s.Client.SetTimeout(s.SendDeadline)
	}
	base := s.RetryBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = s.Client.Send(b); err == nil || attempt >= s.MaxRetries {
			return err
		}
		s.retries.Add(1)
		time.Sleep(retryDelay(attempt, base, rand.Int63n))
	}
}

// Agent samples a set of sources and fans readings out to sinks.
//
// Sources are scraped concurrently when Workers allows (each source owns a
// disjoint subsystem, so concurrent Collect calls never share mutable
// state), but readings are flattened in source-registration order — so the
// batch every sink sees is byte-identical to a fully serial scrape.
//
// Sinks come in two flavours. AddSink registers a synchronous sink: Tick
// calls Consume inline, and store content / bus message order match the
// pre-pipeline agent exactly. AddSinkQueued registers a sink behind a
// bounded queue with its own pump goroutine (see pipeline.go): Tick
// enqueues the batch and returns without waiting on sink latency, so one
// slow sink cannot stall the scrape cadence or the other sinks. Each pump
// consumes its queue in enqueue order, preserving the deterministic batch
// order per sink. Call Close to drain the queues on shutdown.
type Agent struct {
	Name     string
	Interval time.Duration // wall-clock cadence for Run
	// Workers bounds concurrent source collection: 0 means one worker per
	// logical CPU, 1 forces the serial path.
	Workers int

	mu      sync.Mutex
	sources []Source
	sinks   []*sinkEntry

	rounds   atomic.Uint64
	readings atomic.Uint64
	sinkErrs atomic.Uint64
	rejected atomic.Uint64
}

// sinkEntry pairs a sink with its queue pump (nil for synchronous sinks).
type sinkEntry struct {
	sink      Sink
	pump      *sinkPump
	delivered atomic.Uint64 // synchronous deliveries (pumps count their own)
	offered   atomic.Uint64 // batches Tick presented to this sink
}

// NewAgent creates an agent with the given identity and Run cadence.
func NewAgent(name string, interval time.Duration) *Agent {
	return &Agent{Name: name, Interval: interval}
}

// AddSource registers a source.
func (a *Agent) AddSource(s Source) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sources = append(a.sources, s)
}

// AddSink registers a synchronous sink: Tick delivers each batch inline,
// exactly as the pre-pipeline agent did.
func (a *Agent) AddSink(s Sink) {
	a.AddSinkQueued(s, QueueConfig{})
}

// AddSinkQueued registers a sink behind a bounded queue. A Depth > 0 gives
// the sink its own pump goroutine — Tick enqueues and returns, and the
// policy decides what happens when the queue is full. Depth <= 0 degrades
// to AddSink's synchronous delivery.
func (a *Agent) AddSinkQueued(s Sink, cfg QueueConfig) {
	e := &sinkEntry{sink: s}
	if cfg.Depth > 0 {
		e.pump = newSinkPump(a, s, cfg)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sinks = append(a.sinks, e)
}

// deliver hands one batch to a sink and books the outcome: partial
// rejections land in Stats.RejectedSamples, hard failures in
// Stats.SinkErrors. Both the synchronous Tick path and the queue pumps
// funnel through here, so the two error paths always agree.
func (a *Agent) deliver(s Sink, b batchItem) {
	err := s.Consume(b.agent, b.now, b.readings)
	if err == nil {
		return
	}
	var rej *RejectedError
	if errors.As(err, &rej) {
		a.rejected.Add(uint64(rej.N))
		return
	}
	a.sinkErrs.Add(1)
}

// Tick performs one collection round at virtual time now, returning the
// number of readings gathered.
func (a *Agent) Tick(now int64) int {
	a.mu.Lock()
	sources := append([]Source(nil), a.sources...)
	sinks := append([]*sinkEntry(nil), a.sinks...)
	a.mu.Unlock()

	var all []Reading
	if w := par.Workers(a.Workers); w > 1 && len(sources) > 1 {
		bySrc := make([][]Reading, len(sources))
		par.Ranges(len(sources), w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				bySrc[i] = sources[i].Collect(now)
			}
		})
		total := 0
		for _, rs := range bySrc {
			total += len(rs)
		}
		all = make([]Reading, 0, total)
		for _, rs := range bySrc {
			all = append(all, rs...)
		}
	} else {
		for _, src := range sources {
			all = append(all, src.Collect(now)...)
		}
	}
	// The readings slice is shared read-only across every sink's queue;
	// sinks never mutate batches, so no per-sink copy is needed.
	item := batchItem{agent: a.Name, now: now, readings: all}
	for _, e := range sinks {
		e.offered.Add(1)
		if e.pump != nil {
			e.pump.enqueue(item)
			continue
		}
		a.deliver(e.sink, item)
		e.delivered.Add(1)
	}
	a.rounds.Add(1)
	a.readings.Add(uint64(len(all)))
	return len(all)
}

// Run ticks on wall clock until the context is cancelled.
func (a *Agent) Run(ctx context.Context) {
	interval := a.Interval
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-ticker.C:
			a.Tick(t.UnixMilli())
		}
	}
}

// Stats is a snapshot of the agent's collection counters.
type Stats struct {
	// Rounds is how many collection rounds have completed.
	Rounds uint64
	// Readings is the total number of readings flattened across rounds.
	Readings uint64
	// SinkErrors counts Consume calls that failed outright.
	SinkErrors uint64
	// RejectedSamples counts samples sinks rejected (RejectedError), e.g.
	// duplicate timestamps at the store.
	RejectedSamples uint64
	// DroppedBatches counts batches dropped by full-queue policies across
	// every queued sink (see SinkStats for the per-sink split).
	DroppedBatches uint64
}

// Stats reports collection activity.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	entries := append([]*sinkEntry(nil), a.sinks...)
	a.mu.Unlock()
	st := Stats{
		Rounds:          a.rounds.Load(),
		Readings:        a.readings.Load(),
		SinkErrors:      a.sinkErrs.Load(),
		RejectedSamples: a.rejected.Load(),
	}
	for _, e := range entries {
		if e.pump != nil {
			st.DroppedBatches += e.pump.dropped.Load()
		}
	}
	return st
}
