// Package collector implements the data-acquisition layer of the ODA stack:
// sources expose instantaneous readings, agents sample them on a cadence and
// dispatch the batches to sinks (the TSDB, the pub/sub bus, a wire client).
//
// Agents support two drive modes. Tick(now) lets the discrete-event
// simulator advance collection on virtual time; Run(ctx) samples on wall
// clock for live deployments. Both paths share the same collection logic,
// so analytics behave identically on simulated and real time.
package collector

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bus"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

// Reading is one instantaneous observation from a source.
type Reading struct {
	ID    metric.ID
	Kind  metric.Kind
	Unit  metric.Unit
	Value float64
}

// Source produces readings on demand. Implementations live next to the
// subsystem they instrument (facility plant, node hardware, scheduler).
type Source interface {
	// Name identifies the source in agent statistics.
	Name() string
	// Collect returns current readings at virtual time now (Unix millis).
	Collect(now int64) []Reading
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc struct {
	SourceName string
	Fn         func(now int64) []Reading
}

// Name implements Source.
func (s SourceFunc) Name() string { return s.SourceName }

// Collect implements Source.
func (s SourceFunc) Collect(now int64) []Reading { return s.Fn(now) }

// Sink consumes a batch of readings collected at one instant.
type Sink interface {
	Consume(agent string, now int64, readings []Reading) error
}

// StoreSink writes readings into a TSDB store.
type StoreSink struct {
	Store *timeseries.Store
	errs  atomic.Uint64
}

// Consume implements Sink; ingest errors are counted, not fatal, matching
// monitoring-fabric behaviour where one bad sample must not stop the flow.
// The whole scrape goes down as one AppendBatch so the store amortizes key
// hashing and lock acquisition across the batch.
func (s *StoreSink) Consume(_ string, now int64, readings []Reading) error {
	if len(readings) == 0 {
		return nil
	}
	batch := make([]timeseries.BatchEntry, len(readings))
	for i, r := range readings {
		batch[i] = timeseries.BatchEntry{ID: r.ID, Kind: r.Kind, Unit: r.Unit, T: now, V: r.Value}
	}
	appended, _ := s.Store.AppendBatch(batch)
	if rejected := len(readings) - appended; rejected > 0 {
		s.errs.Add(uint64(rejected))
	}
	return nil
}

// Errors returns the number of rejected samples.
func (s *StoreSink) Errors() uint64 { return s.errs.Load() }

// BusSink publishes readings on a message bus under the given topic prefix.
type BusSink struct {
	Bus    *bus.Bus
	Prefix string
}

// Consume implements Sink.
func (s *BusSink) Consume(_ string, now int64, readings []Reading) error {
	for _, r := range readings {
		s.Bus.Publish(bus.Message{
			Topic:  bus.TopicFor(s.Prefix, r.ID),
			ID:     r.ID,
			Kind:   r.Kind,
			Unit:   r.Unit,
			Sample: metric.Sample{T: now, V: r.Value},
		})
	}
	return nil
}

// WireSink pushes readings to a remote telemetry server over the wire
// protocol, one batch per collection round.
type WireSink struct {
	Client *wire.Client
}

// Consume implements Sink.
func (s *WireSink) Consume(agent string, now int64, readings []Reading) error {
	b := &wire.Batch{Agent: agent, Records: make([]wire.Record, 0, len(readings))}
	for _, r := range readings {
		b.Records = append(b.Records, wire.Record{
			ID:      r.ID,
			Kind:    r.Kind,
			Unit:    r.Unit,
			Samples: []metric.Sample{{T: now, V: r.Value}},
		})
	}
	return s.Client.Send(b)
}

// Agent samples a set of sources and fans readings out to sinks.
//
// Sources are scraped concurrently when Workers allows (each source owns a
// disjoint subsystem, so concurrent Collect calls never share mutable
// state), but readings are flattened in source-registration order and sinks
// consume the batch serially — so store content and bus message order are
// byte-identical to a fully serial scrape.
type Agent struct {
	Name     string
	Interval time.Duration // wall-clock cadence for Run
	// Workers bounds concurrent source collection: 0 means one worker per
	// logical CPU, 1 forces the serial path.
	Workers int

	mu      sync.Mutex
	sources []Source
	sinks   []Sink

	rounds   atomic.Uint64
	readings atomic.Uint64
	sinkErrs atomic.Uint64
}

// NewAgent creates an agent with the given identity and Run cadence.
func NewAgent(name string, interval time.Duration) *Agent {
	return &Agent{Name: name, Interval: interval}
}

// AddSource registers a source.
func (a *Agent) AddSource(s Source) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sources = append(a.sources, s)
}

// AddSink registers a sink.
func (a *Agent) AddSink(s Sink) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sinks = append(a.sinks, s)
}

// Tick performs one collection round at virtual time now, returning the
// number of readings gathered.
func (a *Agent) Tick(now int64) int {
	a.mu.Lock()
	sources := append([]Source(nil), a.sources...)
	sinks := append([]Sink(nil), a.sinks...)
	a.mu.Unlock()

	var all []Reading
	if w := par.Workers(a.Workers); w > 1 && len(sources) > 1 {
		bySrc := make([][]Reading, len(sources))
		par.Ranges(len(sources), w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				bySrc[i] = sources[i].Collect(now)
			}
		})
		total := 0
		for _, rs := range bySrc {
			total += len(rs)
		}
		all = make([]Reading, 0, total)
		for _, rs := range bySrc {
			all = append(all, rs...)
		}
	} else {
		for _, src := range sources {
			all = append(all, src.Collect(now)...)
		}
	}
	for _, sink := range sinks {
		if err := sink.Consume(a.Name, now, all); err != nil {
			a.sinkErrs.Add(1)
		}
	}
	a.rounds.Add(1)
	a.readings.Add(uint64(len(all)))
	return len(all)
}

// Run ticks on wall clock until the context is cancelled.
func (a *Agent) Run(ctx context.Context) {
	interval := a.Interval
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-ticker.C:
			a.Tick(t.UnixMilli())
		}
	}
}

// Stats reports collection activity.
func (a *Agent) Stats() (rounds, readings, sinkErrors uint64) {
	return a.rounds.Load(), a.readings.Load(), a.sinkErrs.Load()
}
