package collector

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/metric"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

func constSource(name string, value float64) Source {
	return SourceFunc{
		SourceName: name,
		Fn: func(now int64) []Reading {
			return []Reading{{
				ID:    metric.ID{Name: name, Labels: metric.NewLabels("node", "n0")},
				Kind:  metric.Gauge,
				Unit:  metric.UnitWatt,
				Value: value,
			}}
		},
	}
}

func TestAgentTickToStore(t *testing.T) {
	store := timeseries.NewStore(0)
	agent := NewAgent("a0", time.Second)
	agent.AddSource(constSource("power", 200))
	agent.AddSource(constSource("temp", 60))
	agent.AddSink(&StoreSink{Store: store})

	for i := int64(0); i < 10; i++ {
		if n := agent.Tick(i * 1000); n != 2 {
			t.Fatalf("tick returned %d readings", n)
		}
	}
	if store.NumSeries() != 2 || store.NumSamples() != 20 {
		t.Fatalf("store = %d series / %d samples", store.NumSeries(), store.NumSamples())
	}
	st := agent.Stats()
	if st.Rounds != 10 || st.Readings != 20 || st.SinkErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreSinkCountsIngestErrors(t *testing.T) {
	store := timeseries.NewStore(0)
	sink := &StoreSink{Store: store}
	agent := NewAgent("a0", time.Second)
	agent.AddSource(constSource("power", 1))
	agent.AddSink(sink)
	agent.Tick(1000)
	agent.Tick(1000) // duplicate timestamp -> store rejects
	if sink.Errors() != 1 {
		t.Fatalf("sink errors = %d", sink.Errors())
	}
	if store.NumSamples() != 1 {
		t.Fatalf("store samples = %d", store.NumSamples())
	}
	// The agent sees the same rejection the sink counted — the two error
	// paths agree — and a partial rejection is not a hard sink error.
	if st := agent.Stats(); st.RejectedSamples != 1 || st.SinkErrors != 0 {
		t.Fatalf("stats = %+v, want 1 rejected sample and 0 sink errors", st)
	}
}

func TestAgentToBus(t *testing.T) {
	b := bus.New()
	defer b.Close()
	sub := b.Subscribe("hw.*", 100)
	agent := NewAgent("a0", time.Second)
	agent.AddSource(constSource("power", 250))
	agent.AddSink(&BusSink{Bus: b, Prefix: "hw"})
	agent.Tick(5000)
	select {
	case m := <-sub.C():
		if m.Topic != "hw.n0.power" || m.Sample.V != 250 || m.Sample.T != 5000 {
			t.Fatalf("message = %+v", m)
		}
	default:
		t.Fatal("no bus message")
	}
}

func TestAgentToWire(t *testing.T) {
	var mu sync.Mutex
	var got []*wire.Batch
	srv, err := wire.NewServer("127.0.0.1:0", func(b *wire.Batch) {
		mu.Lock()
		got = append(got, b)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	agent := NewAgent("node07", time.Second)
	agent.AddSource(constSource("power", 300))
	agent.AddSink(&WireSink{Client: client})
	agent.Tick(1000)
	agent.Tick(2000)

	deadline := time.Now().Add(3 * time.Second)
	for srv.Batches() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("batches = %d", len(got))
	}
	if got[0].Agent != "node07" || len(got[0].Records) != 1 {
		t.Fatalf("batch = %+v", got[0])
	}
	if got[1].Records[0].Samples[0].T != 2000 {
		t.Fatalf("second batch = %+v", got[1].Records[0])
	}
}

func TestAgentRunWallClock(t *testing.T) {
	store := timeseries.NewStore(0)
	agent := NewAgent("a0", 5*time.Millisecond)
	agent.AddSource(constSource("power", 1))
	agent.AddSink(&StoreSink{Store: store})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	agent.Run(ctx)
	if st := agent.Stats(); st.Rounds < 5 {
		t.Fatalf("only %d rounds in 100ms at 5ms cadence", st.Rounds)
	}
}

func TestAgentConcurrentRegistration(t *testing.T) {
	agent := NewAgent("a0", time.Second)
	store := timeseries.NewStore(0)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			agent.AddSource(constSource("m", float64(i)))
			agent.AddSink(&StoreSink{Store: store})
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 50; i++ {
			agent.Tick(i)
		}
	}()
	wg.Wait()
	<-done
}

// closedAppender mimics a durable store after Close: every batch is refused
// wholesale with ErrStoreClosed rather than rejected per-sample.
type closedAppender struct{}

func (closedAppender) AppendBatch([]timeseries.BatchEntry) (int, error) {
	return 0, timeseries.ErrStoreClosed
}

func TestStoreSinkClosedStoreIsHardError(t *testing.T) {
	sink := &StoreSink{Store: closedAppender{}}
	agent := NewAgent("a0", time.Second)
	agent.AddSource(constSource("power", 1))
	agent.AddSink(sink)
	agent.Tick(1000)
	if sink.Errors() != 0 {
		t.Fatalf("closed store must not count as per-sample rejections, got %d", sink.Errors())
	}
	st := agent.Stats()
	if st.SinkErrors != 1 || st.RejectedSamples != 0 {
		t.Fatalf("stats = %+v, want 1 sink error and 0 rejected samples", st)
	}
}
