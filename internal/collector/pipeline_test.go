package collector

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/metric"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

// gatedSink blocks inside Consume until the test releases it, making queue
// occupancy — and therefore drop counts — exact instead of timing-dependent:
// the test always knows how many batches are in flight vs queued.
type gatedSink struct {
	started chan struct{} // receives one token when a Consume begins
	release chan struct{} // Consume blocks until it can receive a token

	mu    sync.Mutex
	times []int64 // `now` of every completed batch, in delivery order
}

func newGatedSink() *gatedSink {
	return &gatedSink{started: make(chan struct{}, 1024), release: make(chan struct{}, 1024)}
}

func (g *gatedSink) Consume(_ string, now int64, _ []Reading) error {
	g.started <- struct{}{}
	<-g.release
	g.mu.Lock()
	g.times = append(g.times, now)
	g.mu.Unlock()
	return nil
}

func (g *gatedSink) delivered() []int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int64(nil), g.times...)
}

// waitStarted blocks until the pump has a batch inside Consume.
func (g *gatedSink) waitStarted(t *testing.T) {
	t.Helper()
	select {
	case <-g.started:
	case <-time.After(5 * time.Second):
		t.Fatal("sink never entered Consume")
	}
}

// releaseAll lets every pending and future Consume finish immediately.
func (g *gatedSink) releaseAll() { close(g.release) }

// sleepSink simulates a slow consumer: every batch costs `delay`.
type sleepSink struct {
	delay time.Duration
}

func (s *sleepSink) Consume(string, int64, []Reading) error {
	time.Sleep(s.delay)
	return nil
}

func expectTimes(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

// TestSlowSinkDoesNotStallTick is the headline acceptance test: with a sink
// whose Consume costs 10x the scrape interval, the agent's tick cadence is
// unchanged because Tick only enqueues.
func TestSlowSinkDoesNotStallTick(t *testing.T) {
	const interval = 5 * time.Millisecond
	slow := &sleepSink{delay: 10 * interval}
	agent := NewAgent("a0", interval)
	agent.AddSource(constSource("power", 1))
	agent.AddSinkQueued(slow, QueueConfig{Depth: 2, Policy: DropOldest})

	const rounds = 40
	start := time.Now()
	for i := int64(1); i <= rounds; i++ {
		agent.Tick(i * 1000)
	}
	elapsed := time.Since(start)
	// 40 synchronous rounds would cost >= 40 * 50ms = 2s. The async agent
	// must finish in a small fraction of one sink delay per round; give a
	// wide margin for CI schedulers while staying an order of magnitude
	// below the synchronous cost.
	if budget := time.Duration(rounds) * interval; elapsed > budget {
		t.Fatalf("%d ticks took %v with a %v-per-batch sink (budget %v)", rounds, elapsed, slow.delay, budget)
	}
	agent.Close()

	// Accounting identity: every round's batch was either delivered or
	// counted as dropped — nothing silently vanished, and Close drained
	// the backlog.
	st := agent.Stats()
	ss := agent.SinkStats()[0]
	if ss.Consumed+ss.Dropped != rounds {
		t.Fatalf("consumed %d + dropped %d != %d rounds", ss.Consumed, ss.Dropped, rounds)
	}
	if st.DroppedBatches != ss.Dropped {
		t.Fatalf("agent dropped %d != sink dropped %d", st.DroppedBatches, ss.Dropped)
	}
	if ss.Queued != 0 {
		t.Fatalf("queue not drained: %d left", ss.Queued)
	}
}

// TestDropNewestExactCounts pins the queue with a gated sink so the drop
// counter can be asserted exactly: depth 3, one batch in flight, three
// queued, and every further tick is dropped.
func TestDropNewestExactCounts(t *testing.T) {
	g := newGatedSink()
	agent := NewAgent("a0", time.Second)
	agent.AddSource(constSource("power", 1))
	agent.AddSinkQueued(g, QueueConfig{Depth: 3, Policy: DropNewest})

	agent.Tick(1000) // picked up by the pump...
	g.waitStarted(t) // ...which is now blocked inside Consume
	for i := int64(2); i <= 4; i++ {
		agent.Tick(i * 1000) // fills the queue: batches 2, 3, 4
	}
	for i := int64(5); i <= 7; i++ {
		agent.Tick(i * 1000) // queue full: 5, 6, 7 are dropped
	}

	if st := agent.Stats(); st.DroppedBatches != 3 {
		t.Fatalf("dropped = %d, want 3", st.DroppedBatches)
	}
	ss := agent.SinkStats()[0]
	if ss.Enqueued != 4 || ss.Queued != 3 || ss.Dropped != 3 || ss.Policy != DropNewest {
		t.Fatalf("sink stats = %+v", ss)
	}

	g.releaseAll()
	agent.Close()
	// The backlog that was accepted is delivered, in enqueue order.
	expectTimes(t, g.delivered(), 1000, 2000, 3000, 4000)
}

// TestDropOldestExactCounts mirrors the DropNewest test: the queue keeps the
// freshest window, evicting the oldest queued batch.
func TestDropOldestExactCounts(t *testing.T) {
	g := newGatedSink()
	agent := NewAgent("a0", time.Second)
	agent.AddSource(constSource("power", 1))
	agent.AddSinkQueued(g, QueueConfig{Depth: 3, Policy: DropOldest})

	agent.Tick(1000)
	g.waitStarted(t)
	for i := int64(2); i <= 6; i++ {
		agent.Tick(i * 1000) // 2,3,4 fill; 5 evicts 2; 6 evicts 3
	}
	if st := agent.Stats(); st.DroppedBatches != 2 {
		t.Fatalf("dropped = %d, want 2", st.DroppedBatches)
	}

	g.releaseAll()
	agent.Close()
	expectTimes(t, g.delivered(), 1000, 4000, 5000, 6000)
}

// TestBlockPolicyAppliesBackpressure verifies Block's lossless guarantee:
// with the queue full, Tick stalls until the pump frees a slot, and no
// batch is ever dropped.
func TestBlockPolicyAppliesBackpressure(t *testing.T) {
	g := newGatedSink()
	agent := NewAgent("a0", time.Second)
	agent.AddSource(constSource("power", 1))
	agent.AddSinkQueued(g, QueueConfig{Depth: 1, Policy: Block})

	agent.Tick(1000) // in flight
	g.waitStarted(t)
	agent.Tick(2000) // fills the single slot

	tickDone := make(chan struct{})
	go func() {
		agent.Tick(3000) // must block: queue full
		close(tickDone)
	}()
	select {
	case <-tickDone:
		t.Fatal("Tick returned with a full Block queue")
	case <-time.After(20 * time.Millisecond):
	}

	g.release <- struct{}{} // batch 1 completes; pump pops batch 2
	select {
	case <-tickDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Tick still blocked after a slot freed")
	}

	g.releaseAll()
	agent.Close()
	if st := agent.Stats(); st.DroppedBatches != 0 {
		t.Fatalf("Block dropped %d batches", st.DroppedBatches)
	}
	expectTimes(t, g.delivered(), 1000, 2000, 3000)
}

// TestCloseDrainsAcknowledgedBatches: batches accepted into the queue before
// Close are all delivered, even when Close races with a blocked pump.
func TestCloseDrainsAcknowledgedBatches(t *testing.T) {
	g := newGatedSink()
	agent := NewAgent("a0", time.Second)
	agent.AddSource(constSource("power", 1))
	agent.AddSinkQueued(g, QueueConfig{Depth: 8, Policy: Block})

	for i := int64(1); i <= 5; i++ {
		agent.Tick(i * 1000)
	}
	closed := make(chan struct{})
	go func() {
		agent.Close()
		close(closed)
	}()
	g.releaseAll()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the sink drained")
	}

	expectTimes(t, g.delivered(), 1000, 2000, 3000, 4000, 5000)
	st := agent.Stats()
	ss := agent.SinkStats()[0]
	if st.DroppedBatches != 0 || ss.Consumed != 5 || ss.Queued != 0 {
		t.Fatalf("stats = %+v, sink = %+v", st, ss)
	}

	// Ticking after Close still feeds nothing into the closed queue, but
	// the drop is counted rather than silent.
	agent.Tick(6000)
	if st := agent.Stats(); st.DroppedBatches != 1 {
		t.Fatalf("post-close tick dropped = %d, want 1", st.DroppedBatches)
	}
	agent.Close() // idempotent
}

// TestQueuedMatchesSynchronous is the determinism acceptance test in the
// style of TestParallelStepDeterminism: the same source stream through a
// synchronous agent and through a queued (then drained) agent must leave
// byte-identical store content and bus message order, and a Depth 0 queue
// config must take the synchronous path outright.
func TestQueuedMatchesSynchronous(t *testing.T) {
	mkSources := func(agent *Agent) {
		for _, name := range []string{"power", "temp", "fan"} {
			name := name
			agent.AddSource(SourceFunc{
				SourceName: name,
				Fn: func(now int64) []Reading {
					// Deterministic, time-varying, multi-reading stream.
					return []Reading{
						{ID: metric.ID{Name: name, Labels: metric.NewLabels("node", "n0")}, Kind: metric.Gauge, Unit: metric.UnitWatt, Value: float64(now % 977)},
						{ID: metric.ID{Name: name, Labels: metric.NewLabels("node", "n1")}, Kind: metric.Gauge, Unit: metric.UnitWatt, Value: float64(now % 131)},
					}
				},
			})
		}
	}
	type fixture struct {
		store *timeseries.Store
		bus   *bus.Bus
		sub   *bus.Subscription
		agent *Agent
	}
	mk := func(cfg QueueConfig) *fixture {
		f := &fixture{store: timeseries.NewStore(0), bus: bus.New()}
		f.sub = f.bus.Subscribe("vdc.*", 4096)
		f.agent = NewAgent("a0", time.Second)
		mkSources(f.agent)
		f.agent.AddSinkQueued(&StoreSink{Store: f.store}, cfg)
		f.agent.AddSinkQueued(&BusSink{Bus: f.bus, Prefix: "vdc"}, cfg)
		return f
	}

	sync0 := mk(QueueConfig{})                          // AddSink-equivalent
	depth0 := mk(QueueConfig{Depth: 0, Policy: Block})  // explicit depth 0
	queued := mk(QueueConfig{Depth: 16, Policy: Block}) // the async pipeline

	for i := int64(1); i <= 100; i++ {
		sync0.agent.Tick(i * 60_000)
		depth0.agent.Tick(i * 60_000)
		queued.agent.Tick(i * 60_000)
	}
	queued.agent.Close() // drain before comparing

	// Depth 0 must not have spawned a pump at all: it IS the sync path.
	for _, ss := range depth0.agent.SinkStats() {
		if ss.Depth != 0 {
			t.Fatalf("depth-0 sink got a queue: %+v", ss)
		}
	}

	drain := func(sub *bus.Subscription) []bus.Message {
		var out []bus.Message
		for {
			select {
			case m := <-sub.C():
				out = append(out, m)
			default:
				return out
			}
		}
	}
	wantMsgs := drain(sync0.sub)
	if len(wantMsgs) != 600 { // 100 rounds x 6 readings
		t.Fatalf("sync bus stream = %d messages, want 600", len(wantMsgs))
	}

	ids := sync0.store.IDs()
	if len(ids) != 6 {
		t.Fatalf("series = %d, want 6", len(ids))
	}
	for _, other := range []*fixture{depth0, queued} {
		oids := other.store.IDs()
		if len(oids) != len(ids) {
			t.Fatalf("series: %d vs %d", len(oids), len(ids))
		}
		for i := range ids {
			if oids[i].Key() != ids[i].Key() {
				t.Fatalf("series order differs: %s vs %s", oids[i].Key(), ids[i].Key())
			}
			want, err := sync0.store.QueryAll(ids[i])
			if err != nil {
				t.Fatal(err)
			}
			got, err := other.store.QueryAll(ids[i])
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %d vs %d samples", ids[i].Key(), len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s[%d]: %+v vs %+v", ids[i].Key(), j, got[j], want[j])
				}
			}
		}
		// Bus message order is preserved per sink.
		gotMsgs := drain(other.sub)
		if len(gotMsgs) != len(wantMsgs) {
			t.Fatalf("bus stream: %d vs %d messages", len(gotMsgs), len(wantMsgs))
		}
		for i := range wantMsgs {
			if gotMsgs[i].Topic != wantMsgs[i].Topic || gotMsgs[i].Sample != wantMsgs[i].Sample {
				t.Fatalf("bus message %d differs: %+v vs %+v", i, gotMsgs[i], wantMsgs[i])
			}
		}
	}
}

// TestSlowSinkIsolation: a slow queued sink must not delay a fast sibling —
// the fast sink keeps receiving every batch on time.
func TestSlowSinkIsolation(t *testing.T) {
	store := timeseries.NewStore(0)
	g := newGatedSink() // never released until the end: maximally slow
	agent := NewAgent("a0", time.Second)
	agent.AddSource(constSource("power", 1))
	agent.AddSink(&StoreSink{Store: store})
	agent.AddSinkQueued(g, QueueConfig{Depth: 2, Policy: DropOldest})

	for i := int64(1); i <= 50; i++ {
		agent.Tick(i * 1000)
	}
	if n := store.NumSamples(); n != 50 {
		t.Fatalf("fast sink got %d samples, want 50", n)
	}
	g.releaseAll()
	agent.Close()
}

// TestWireSinkRetriesWithBackoff: a dead endpoint consumes exactly
// MaxRetries retries and returns the final error; a healthy endpoint
// consumes none even with a send deadline armed.
func TestWireSinkRetriesWithBackoff(t *testing.T) {
	srv, err := wire.NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	sink := &WireSink{Client: client, MaxRetries: 3, RetryBackoff: time.Millisecond, SendDeadline: time.Second}
	agent := NewAgent("a0", time.Second)
	agent.AddSource(constSource("power", 7))
	agent.AddSink(sink)

	agent.Tick(1000)
	if st := agent.Stats(); st.SinkErrors != 0 || sink.Retries() != 0 {
		t.Fatalf("healthy endpoint: stats = %+v, retries = %d", st, sink.Retries())
	}

	// Kill the transport: every attempt now fails fast, so the sink
	// retries MaxRetries times and then surfaces one sink error.
	client.Close()
	srv.Close()
	agent.Tick(2000)
	if st := agent.Stats(); st.SinkErrors != 1 {
		t.Fatalf("dead endpoint: stats = %+v, want 1 sink error", st)
	}
	if r := sink.Retries(); r != 3 {
		t.Fatalf("retries = %d, want 3", r)
	}
}

// TestPipelineStressRace hammers a queued agent from the wall-clock Run loop
// while stats are read concurrently — the -race target runs this to prove
// the pump/producer/stats paths are data-race free. Drops are expected
// (slow sink, shallow queue); the assertion is the accounting identity.
func TestPipelineStressRace(t *testing.T) {
	store := timeseries.NewStore(0)
	slow := &sleepSink{delay: 2 * time.Millisecond}
	agent := NewAgent("a0", time.Millisecond)
	agent.AddSource(constSource("power", 1))
	agent.AddSource(constSource("temp", 2))
	agent.AddSink(&StoreSink{Store: store})
	agent.AddSinkQueued(slow, QueueConfig{Depth: 4, Policy: DropOldest})
	agent.AddSinkQueued(&sleepSink{delay: time.Millisecond}, QueueConfig{Depth: 4, Policy: DropNewest})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent stats readers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = agent.Stats()
				_ = agent.SinkStats()
			}
		}
	}()

	var tick int64
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		tick++
		agent.Tick(tick * 1000)
	}
	agent.Close()
	close(stop)
	wg.Wait()

	st := agent.Stats()
	if st.Rounds != uint64(tick) {
		t.Fatalf("rounds = %d, want %d", st.Rounds, tick)
	}
	for _, ss := range agent.SinkStats() {
		if ss.Depth == 0 {
			continue
		}
		if ss.Consumed+ss.Dropped != uint64(tick) {
			t.Fatalf("%s: consumed %d + dropped %d != %d ticks", ss.Sink, ss.Consumed, ss.Dropped, tick)
		}
		if ss.Queued != 0 {
			t.Fatalf("%s: %d batches left after Close", ss.Sink, ss.Queued)
		}
	}
}
