package collector

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// chaosSink is a configurable misbehaving sink: it can sleep (a slow
// downstream), fail outright every Nth batch, or reject a fraction of each
// batch's samples — the three consumer failure modes the backpressure
// policies must account for without losing a batch silently.
type chaosSink struct {
	delay     time.Duration
	failEvery int // every Nth Consume returns a hard error (0 = never)
	rejectN   int // every Consume rejects this many samples (0 = none)
	calls     int
}

func (s *chaosSink) Consume(_ string, _ int64, readings []Reading) error {
	s.calls++
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if s.failEvery > 0 && s.calls%s.failEvery == 0 {
		return errors.New("chaos sink failure")
	}
	if s.rejectN > 0 {
		n := s.rejectN
		if n > len(readings) {
			n = len(readings)
		}
		return &RejectedError{N: n}
	}
	return nil
}

// TestSinkConservationProperty is the collector-level conservation
// invariant under randomized slow/erroring sinks and all three
// backpressure policies: once the agent is closed (queues drained), every
// batch ever offered to a sink is accounted for as consumed or dropped —
// Offered == Consumed + Dropped and Queued == 0 — and the agent-level
// DroppedBatches equals the per-sink sum. No policy, queue depth, sink
// latency or failure pattern may leak a batch out of the books.
func TestSinkConservationProperty(t *testing.T) {
	policies := []Policy{Block, DropOldest, DropNewest}
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			a := NewAgent(fmt.Sprintf("conserve-%d", seed), 0)
			a.AddSource(SourceFunc{SourceName: "src", Fn: func(now int64) []Reading {
				return []Reading{{Value: float64(now)}, {Value: float64(now + 1)}}
			}})

			nsinks := 2 + rng.Intn(4)
			for i := 0; i < nsinks; i++ {
				sink := &chaosSink{}
				if rng.Intn(2) == 0 {
					sink.delay = time.Duration(rng.Intn(300)) * time.Microsecond
				}
				if rng.Intn(3) == 0 {
					sink.failEvery = 2 + rng.Intn(5)
				}
				if rng.Intn(3) == 0 {
					sink.rejectN = 1
				}
				cfg := QueueConfig{}
				if rng.Intn(4) > 0 { // 3/4 of sinks are queued
					cfg.Depth = 1 + rng.Intn(4)
					cfg.Policy = policies[rng.Intn(len(policies))]
				}
				a.AddSinkQueued(sink, cfg)
			}

			preClose := 20 + rng.Intn(60)
			for r := 0; r < preClose; r++ {
				a.Tick(int64(1000 + r*1000))
				if rng.Intn(8) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
			}
			a.Close()
			// Ticks after Close must still balance: queued sinks count the
			// refused batches as dropped, synchronous sinks keep delivering.
			postClose := rng.Intn(5)
			for r := 0; r < postClose; r++ {
				a.Tick(int64(1_000_000 + r*1000))
			}

			total := preClose + postClose
			var droppedSum uint64
			for i, st := range a.SinkStats() {
				if st.Offered != uint64(total) {
					t.Fatalf("sink %d (%s, depth %d): offered %d, want %d", i, st.Policy, st.Depth, st.Offered, total)
				}
				if st.Queued != 0 {
					t.Fatalf("sink %d: %d batches still queued after Close", i, st.Queued)
				}
				if st.Offered != st.Consumed+st.Dropped {
					t.Fatalf("sink %d (%s, depth %d): conservation broken: offered %d != consumed %d + dropped %d",
						i, st.Policy, st.Depth, st.Offered, st.Consumed, st.Dropped)
				}
				if st.Depth == 0 {
					if st.Dropped != 0 || st.Consumed != uint64(total) {
						t.Fatalf("sink %d: synchronous sink consumed %d dropped %d, want %d/0", i, st.Consumed, st.Dropped, total)
					}
				} else {
					droppedSum += st.Dropped
				}
				// Enqueued never exceeds Offered and never undercounts
				// what was consumed from the queue.
				if st.Enqueued > st.Offered || st.Consumed > st.Enqueued {
					t.Fatalf("sink %d: enqueued %d outside [consumed %d, offered %d]", i, st.Enqueued, st.Consumed, st.Offered)
				}
			}
			if st := a.Stats(); st.DroppedBatches != droppedSum {
				t.Fatalf("agent DroppedBatches %d != per-sink sum %d", st.DroppedBatches, droppedSum)
			}
		})
	}
}
