package collector

import (
	"math/rand"
	"testing"
	"time"
)

// TestRetryDelayJitterBound pins the jitter contract: for every attempt
// the delay lies in [base/2, base) of the capped exponential base, so
// retries desynchronize across agents without ever collapsing below half
// the configured backoff or overshooting the cap.
func TestRetryDelayJitterBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, base := range []time.Duration{time.Millisecond, 10 * time.Millisecond, time.Second} {
		for attempt := 0; attempt < 12; attempt++ {
			exp := base
			for i := 0; i < attempt && exp < maxRetryBackoff; i++ {
				exp *= 2
			}
			if exp > maxRetryBackoff {
				exp = maxRetryBackoff
			}
			for trial := 0; trial < 200; trial++ {
				d := retryDelay(attempt, base, rng.Int63n)
				if d < exp/2 || d >= exp {
					t.Fatalf("base %v attempt %d: delay %v outside [%v, %v)", base, attempt, d, exp/2, exp)
				}
			}
		}
	}
}

// TestRetryDelayExtremes: the jitter helper must not panic or return
// nonsense for degenerate bases (sub-nanosecond halves, the cap itself).
func TestRetryDelayExtremes(t *testing.T) {
	if d := retryDelay(0, 1, rand.Int63n); d != 1 {
		t.Fatalf("1ns base: delay %v, want 1ns (half rounds to zero)", d)
	}
	if d := retryDelay(40, time.Second, rand.Int63n); d < maxRetryBackoff/2 || d >= maxRetryBackoff {
		t.Fatalf("capped delay %v outside [%v, %v)", d, maxRetryBackoff/2, maxRetryBackoff)
	}
	// The exponential doubling must not overflow into negative durations
	// even for absurd attempt counts.
	if d := retryDelay(200, maxRetryBackoff, rand.Int63n); d <= 0 {
		t.Fatalf("overflowed delay %v", d)
	}
}

// TestWireSinkRetriesAreJittered drives the real Consume retry loop
// against an always-failing client... the loop is exercised indirectly in
// pipeline_test.go; here we only need the delay function's spread: two
// long runs with different RNG streams must not produce identical delay
// sequences (the whole point of jitter).
func TestRetryDelaySpread(t *testing.T) {
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(8))
	same := true
	for i := 0; i < 32; i++ {
		if retryDelay(i%4, 10*time.Millisecond, a.Int63n) != retryDelay(i%4, 10*time.Millisecond, b.Int63n) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two RNG streams produced identical delay sequences; jitter is not applied")
	}
}
