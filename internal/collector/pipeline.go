// Async collection pipeline: per-sink bounded queues with explicit
// backpressure policies.
//
// A collection agent must never let a slow consumer stall acquisition — the
// push-based monitoring fabrics the paper builds on (DCDB, LDMS) decouple
// sensor sampling from downstream consumers for exactly this reason. Each
// sink registered with a queue depth > 0 gets its own pump goroutine and a
// bounded FIFO of batches; Tick enqueues the flattened batch and returns
// without waiting on sink latency. Because one pump drains one queue in
// enqueue order, every sink still observes batches in the same deterministic
// flatten order a synchronous agent would produce — only the timing changes.
//
// Queue depth 0 keeps a sink fully synchronous (Consume runs inline in
// Tick), which is byte-identical to the pre-pipeline agent and is what the
// virtual-time simulator uses: its controllers read the store mid-run, so
// telemetry must be visible the instant Tick returns.
package collector

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Policy selects what happens to a new batch when a sink's queue is full.
type Policy int

const (
	// Block stalls the producer (Tick) until the pump frees a slot. No
	// batch is ever dropped, so delivery is lossless — but a persistently
	// slow sink applies backpressure all the way to the scrape cadence.
	Block Policy = iota
	// DropOldest evicts the oldest queued batch to admit the new one: the
	// queue always holds the freshest window of telemetry, at the cost of
	// losing the oldest unsent batches. Right for live dashboards.
	DropOldest
	// DropNewest discards the incoming batch and keeps the backlog: batches
	// that made it into the queue are never evicted, so the oldest
	// telemetry wins. Right for archival sinks that must not have gaps
	// retroactively appear in already-accepted history.
	DropNewest
)

// String names the policy for stats and logs.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case DropNewest:
		return "drop-newest"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// QueueConfig sizes a sink's queue and selects its backpressure policy.
type QueueConfig struct {
	// Depth is the bounded queue capacity in batches. Zero or negative
	// keeps the sink synchronous — Consume runs inline in Tick, exactly
	// like AddSink.
	Depth int
	// Policy is the full-queue behaviour (default Block).
	Policy Policy
}

// batchItem is one enqueued collection round. The readings slice is shared
// read-only between the queues of every sink (sinks never mutate it).
type batchItem struct {
	agent    string
	now      int64
	readings []Reading
}

// sinkPump owns one sink's bounded queue and the goroutine draining it.
type sinkPump struct {
	sink Sink
	cfg  QueueConfig

	mu       sync.Mutex
	notEmpty sync.Cond // queue gained an item, or closed
	notFull  sync.Cond // queue freed a slot, or closed
	queue    []batchItem
	closed   bool

	done chan struct{} // pump goroutine exited after draining

	enqueued atomic.Uint64 // batches accepted into the queue
	consumed atomic.Uint64 // batches delivered to the sink
	dropped  atomic.Uint64 // batches dropped (evicted, rejected, or post-close)
}

func newSinkPump(a *Agent, s Sink, cfg QueueConfig) *sinkPump {
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	p := &sinkPump{sink: s, cfg: cfg, done: make(chan struct{})}
	p.notEmpty.L = &p.mu
	p.notFull.L = &p.mu
	go p.run(a)
	return p
}

// run drains the queue in enqueue order until the queue is closed AND empty:
// batches accepted before close are still delivered, so Close never loses
// acknowledged telemetry.
func (p *sinkPump) run(a *Agent) {
	defer close(p.done)
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.notEmpty.Wait()
		}
		if len(p.queue) == 0 { // closed and fully drained
			p.mu.Unlock()
			return
		}
		b := p.queue[0]
		p.queue[0] = batchItem{} // release the readings for GC
		p.queue = p.queue[1:]
		p.notFull.Signal()
		p.mu.Unlock()
		a.deliver(p.sink, b)
		p.consumed.Add(1)
	}
}

// enqueue admits one batch under the configured policy, returning false when
// the batch was dropped instead.
func (p *sinkPump) enqueue(b batchItem) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.dropped.Add(1)
		return false
	}
	if len(p.queue) >= p.cfg.Depth {
		switch p.cfg.Policy {
		case Block:
			for len(p.queue) >= p.cfg.Depth && !p.closed {
				p.notFull.Wait()
			}
			if p.closed {
				p.dropped.Add(1)
				return false
			}
		case DropOldest:
			p.queue[0] = batchItem{}
			p.queue = p.queue[1:]
			p.dropped.Add(1)
		case DropNewest:
			p.dropped.Add(1)
			return false
		}
	}
	p.queue = append(p.queue, b)
	p.enqueued.Add(1)
	p.notEmpty.Signal()
	return true
}

// queued returns the current backlog length.
func (p *sinkPump) queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// close marks the queue closed, wakes the pump and any blocked producers,
// and waits for the pump to deliver every batch accepted before the close.
// Idempotent.
func (p *sinkPump) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.notEmpty.Broadcast()
		p.notFull.Broadcast()
	}
	p.mu.Unlock()
	<-p.done
}

// SinkStats describes one registered sink's pipeline state.
type SinkStats struct {
	// Sink is the sink's Go type (e.g. "*collector.StoreSink").
	Sink string
	// Depth and Policy echo the queue configuration; Depth 0 means the
	// sink is synchronous.
	Depth  int
	Policy Policy
	// Queued is the current backlog in batches.
	Queued int
	// Offered counts every batch Tick presented to the sink. The
	// conservation invariant every policy satisfies (and the chaos
	// harness asserts) is Offered == Consumed + Queued + Dropped: a batch
	// is delivered, still waiting, or accounted for as dropped — never
	// silently lost. Enqueued counts only batches accepted into the
	// queue, so under DropNewest it lags Offered by the rejected batches
	// while under DropOldest it equals Offered and evictions show up in
	// Dropped instead.
	Offered uint64
	// Enqueued, Consumed and Dropped count batches over the agent's life.
	// Synchronous sinks count every delivery under Consumed.
	Enqueued uint64
	Consumed uint64
	Dropped  uint64
}

// SinkStats reports per-sink queue state in registration order.
func (a *Agent) SinkStats() []SinkStats {
	a.mu.Lock()
	entries := append([]*sinkEntry(nil), a.sinks...)
	a.mu.Unlock()
	out := make([]SinkStats, 0, len(entries))
	for _, e := range entries {
		st := SinkStats{Sink: fmt.Sprintf("%T", e.sink), Offered: e.offered.Load()}
		if e.pump != nil {
			st.Depth = e.pump.cfg.Depth
			st.Policy = e.pump.cfg.Policy
			st.Queued = e.pump.queued()
			st.Enqueued = e.pump.enqueued.Load()
			st.Consumed = e.pump.consumed.Load()
			st.Dropped = e.pump.dropped.Load()
		} else {
			st.Consumed = e.delivered.Load()
			st.Enqueued = e.delivered.Load()
		}
		out = append(out, st)
	}
	return out
}

// Close drains every queued sink: no new batches are accepted, each pump
// delivers the batches it had already accepted, and Close returns once all
// queues are empty. Synchronous sinks need no draining. Close is
// idempotent; ticking a closed agent still feeds synchronous sinks, while
// batches bound for closed queues are counted as dropped.
func (a *Agent) Close() {
	a.mu.Lock()
	entries := append([]*sinkEntry(nil), a.sinks...)
	a.mu.Unlock()
	for _, e := range entries {
		if e.pump != nil {
			e.pump.close()
		}
	}
}
