package metric

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewLabelsSorted(t *testing.T) {
	ls := NewLabels("node", "n3", "cluster", "vdc", "rack", "r1")
	if !sort.SliceIsSorted(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key }) {
		t.Fatalf("labels not sorted: %v", ls)
	}
	if got := ls.String(); got != "{cluster=vdc,node=n3,rack=r1}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestNewLabelsOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd argument count")
		}
	}()
	NewLabels("only-key")
}

func TestLabelsGet(t *testing.T) {
	ls := NewLabels("a", "1", "b", "2")
	if v, ok := ls.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	if _, ok := ls.Get("missing"); ok {
		t.Fatal("Get(missing) should report absent")
	}
}

func TestLabelsWith(t *testing.T) {
	ls := NewLabels("b", "2", "d", "4")
	cases := []struct {
		key, val string
		want     string
	}{
		{"a", "1", "{a=1,b=2,d=4}"},
		{"b", "9", "{b=9,d=4}"},
		{"c", "3", "{b=2,c=3,d=4}"},
		{"e", "5", "{b=2,d=4,e=5}"},
	}
	for _, c := range cases {
		if got := ls.With(c.key, c.val).String(); got != c.want {
			t.Errorf("With(%s,%s) = %s, want %s", c.key, c.val, got, c.want)
		}
	}
	// Original must be unchanged.
	if ls.String() != "{b=2,d=4}" {
		t.Fatalf("With mutated receiver: %s", ls)
	}
}

func TestLabelsMatches(t *testing.T) {
	ls := NewLabels("node", "n1", "rack", "r1", "cluster", "vdc")
	if !ls.Matches(NewLabels("node", "n1")) {
		t.Error("partial selector should match")
	}
	if !ls.Matches(Labels{}) {
		t.Error("empty selector should match everything")
	}
	if ls.Matches(NewLabels("node", "n2")) {
		t.Error("wrong value should not match")
	}
	if ls.Matches(NewLabels("zone", "z1")) {
		t.Error("absent key should not match")
	}
}

func TestLabelsEqual(t *testing.T) {
	a := NewLabels("x", "1", "y", "2")
	b := NewLabels("y", "2", "x", "1")
	if !a.Equal(b) {
		t.Error("order-independent construction should compare equal")
	}
	if a.Equal(NewLabels("x", "1")) {
		t.Error("different lengths must not be equal")
	}
}

func TestSeriesAppendOrdering(t *testing.T) {
	s := NewSeries("power", NewLabels("node", "n0"))
	if !s.Append(100, 1.0) || !s.Append(200, 2.0) {
		t.Fatal("in-order appends rejected")
	}
	if s.Append(150, 1.5) {
		t.Fatal("out-of-order append accepted")
	}
	if s.Append(200, 3.0) {
		t.Fatal("duplicate timestamp accepted")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestSeriesBetweenAndAt(t *testing.T) {
	s := NewSeries("t", nil)
	for i := int64(0); i < 10; i++ {
		s.Append(i*1000, float64(i))
	}
	got := s.Between(2000, 5000)
	if len(got) != 3 || got[0].V != 2 || got[2].V != 4 {
		t.Fatalf("Between(2000,5000) = %v", got)
	}
	if sm, ok := s.At(3500); !ok || sm.V != 3 {
		t.Fatalf("At(3500) = %v, %v", sm, ok)
	}
	if _, ok := s.At(-1); ok {
		t.Fatal("At before first sample should be absent")
	}
	if sm, ok := s.Last(); !ok || sm.V != 9 {
		t.Fatalf("Last() = %v, %v", sm, ok)
	}
}

func TestSeriesRate(t *testing.T) {
	s := &Series{ID: ID{Name: "energy"}, Kind: Counter, Unit: UnitJoule}
	s.Append(0, 0)
	s.Append(1000, 50)  // 50 J/s
	s.Append(3000, 150) // 50 J/s
	s.Append(4000, 10)  // reset: skipped
	s.Append(5000, 110) // 100 J/s
	r := s.Rate()
	want := []float64{50, 50, 100}
	if len(r.Samples) != len(want) {
		t.Fatalf("rate samples = %v", r.Samples)
	}
	for i, w := range want {
		if r.Samples[i].V != w {
			t.Errorf("rate[%d] = %v, want %v", i, r.Samples[i].V, w)
		}
	}
}

func TestSeriesClone(t *testing.T) {
	s := NewSeries("x", nil)
	s.Append(1, 1)
	c := s.Clone()
	c.Samples[0].V = 99
	if s.Samples[0].V != 1 {
		t.Fatal("Clone shares sample storage")
	}
}

func TestSetUpsertAndSelect(t *testing.T) {
	ss := NewSet()
	a := ss.Upsert(ID{Name: "power", Labels: NewLabels("node", "n0")}, Gauge, UnitWatt)
	b := ss.Upsert(ID{Name: "power", Labels: NewLabels("node", "n1")}, Gauge, UnitWatt)
	c := ss.Upsert(ID{Name: "temp", Labels: NewLabels("node", "n0")}, Gauge, UnitCelsius)
	if ss.Len() != 3 {
		t.Fatalf("Len = %d", ss.Len())
	}
	again := ss.Upsert(ID{Name: "power", Labels: NewLabels("node", "n0")}, Gauge, UnitWatt)
	if again != a {
		t.Fatal("Upsert created duplicate series")
	}
	if got := ss.Select("power", nil); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Select(power) = %v", got)
	}
	if got := ss.Select("", NewLabels("node", "n0")); len(got) != 2 || got[0] != a || got[1] != c {
		t.Fatalf("Select(node=n0) = %v", got)
	}
	if s, ok := ss.Get(ID{Name: "temp", Labels: NewLabels("node", "n0")}); !ok || s != c {
		t.Fatal("Get failed")
	}
}

func TestKindString(t *testing.T) {
	if Gauge.String() != "gauge" || Counter.String() != "counter" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

// Property: With never breaks sortedness and always makes Get succeed.
func TestLabelsWithProperty(t *testing.T) {
	f := func(keys []string, k string) bool {
		kv := make([]string, 0, len(keys)*2)
		for _, key := range keys {
			kv = append(kv, key, "v")
		}
		ls := NewLabels(kv...)
		out := ls.With(k, "new")
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Key < out[j].Key }) {
			return false
		}
		v, ok := out.Get(k)
		return ok && v == "new"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Between(a,b) returns exactly the samples with a <= T < b.
func TestSeriesBetweenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSeries("p", nil)
	tcur := int64(0)
	for i := 0; i < 500; i++ {
		tcur += int64(1 + rng.Intn(100))
		s.Append(tcur, rng.Float64())
	}
	f := func(ua, ub uint16) bool {
		span := tcur + 10
		a := int64(ua) % span
		b := int64(ub) % span
		got := s.Between(a, b)
		var want int
		for _, sm := range s.Samples {
			if sm.T >= a && sm.T < b {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
