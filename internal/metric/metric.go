// Package metric defines the telemetry data model shared by every layer of
// the ODA stack: samples, labelled series, units and metric kinds.
//
// The model deliberately mirrors what production HPC monitoring fabrics
// (LDMS, DCDB, Examon) ship on the wire: a metric name, a small set of
// identifying labels (node, rack, component), and a stream of
// (timestamp, float64) samples. Timestamps are Unix milliseconds.
package metric

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind describes how a metric's value evolves over time.
type Kind uint8

const (
	// Gauge metrics move freely up and down (temperature, utilization).
	Gauge Kind = iota
	// Counter metrics are monotonically non-decreasing (energy, packets).
	Counter
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Gauge:
		return "gauge"
	case Counter:
		return "counter"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Unit is the physical unit of a metric value.
type Unit string

// Units used across the virtual data center and its analytics.
const (
	UnitNone       Unit = ""
	UnitWatt       Unit = "W"
	UnitJoule      Unit = "J"
	UnitCelsius    Unit = "degC"
	UnitHertz      Unit = "Hz"
	UnitPercent    Unit = "%"
	UnitBytes      Unit = "B"
	UnitBytesPerS  Unit = "B/s"
	UnitSeconds    Unit = "s"
	UnitRPM        Unit = "rpm"
	UnitLitersPerS Unit = "l/s"
	UnitCount      Unit = "count"
	UnitFlops      Unit = "flop/s"
)

// Sample is a single timestamped observation. T is Unix milliseconds.
type Sample struct {
	T int64
	V float64
}

// Time converts the sample timestamp to a time.Time.
func (s Sample) Time() time.Time { return time.UnixMilli(s.T) }

// Label is one key/value pair identifying the origin of a series.
type Label struct {
	Key   string
	Value string
}

// Labels is a sorted, duplicate-free set of labels. The zero value is an
// empty, usable label set. Construct with NewLabels to guarantee ordering.
type Labels []Label

// NewLabels builds a Labels set from alternating key, value strings. It
// panics if given an odd number of arguments, since that is always a
// programming error.
func NewLabels(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("metric: NewLabels requires an even number of arguments")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Get returns the value for key and whether it was present.
func (ls Labels) Get(key string) (string, bool) {
	for _, l := range ls {
		if l.Key == key {
			return l.Value, true
		}
	}
	return "", false
}

// With returns a copy of ls with key set to value, replacing any existing
// entry and keeping the set sorted.
func (ls Labels) With(key, value string) Labels {
	out := make(Labels, 0, len(ls)+1)
	inserted := false
	for _, l := range ls {
		switch {
		case l.Key == key:
			out = append(out, Label{Key: key, Value: value})
			inserted = true
		case l.Key > key && !inserted:
			out = append(out, Label{Key: key, Value: value})
			out = append(out, l)
			inserted = true
		default:
			out = append(out, l)
		}
	}
	if !inserted {
		out = append(out, Label{Key: key, Value: value})
	}
	return out
}

// String renders the labels in canonical {k=v,...} form. Because labels are
// sorted, equal sets render identically, so the string doubles as a map key.
func (ls Labels) String() string {
	if len(ls) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports whether two label sets contain identical pairs.
func (ls Labels) Equal(other Labels) bool {
	if len(ls) != len(other) {
		return false
	}
	for i := range ls {
		if ls[i] != other[i] {
			return false
		}
	}
	return true
}

// Matches reports whether every label in the (possibly partial) selector sel
// is present in ls with the same value.
func (ls Labels) Matches(sel Labels) bool {
	for _, want := range sel {
		got, ok := ls.Get(want.Key)
		if !ok || got != want.Value {
			return false
		}
	}
	return true
}

// ID identifies a series: a metric name plus its label set.
//
// key caches the canonical Key() serialization. It is only populated by
// NewID/Interned; IDs built with a plain struct literal keep working and
// serialize on demand. Name and Labels must not be mutated after interning
// or the cache goes stale.
type ID struct {
	Name   string
	Labels Labels

	key string
}

// NewID constructs an ID with the canonical key precomputed, so every later
// Key() call on hot ingest paths is a field read instead of a fresh
// name+labels serialization.
func NewID(name string, labels Labels) ID {
	id := ID{Name: name, Labels: labels}
	id.key = id.String()
	return id
}

// Interned returns a copy of id with the canonical key precomputed (a no-op
// when it already is).
func (id ID) Interned() ID {
	if id.key != "" {
		return id
	}
	return NewID(id.Name, id.Labels)
}

// String renders the ID as name{labels}.
func (id ID) String() string { return id.Name + id.Labels.String() }

// Key returns a canonical string usable as a map key.
func (id ID) Key() string {
	if id.key != "" {
		return id.key
	}
	return id.String()
}

// Series is an ordered run of samples for one metric ID.
type Series struct {
	ID      ID
	Kind    Kind
	Unit    Unit
	Samples []Sample
}

// NewSeries constructs an empty gauge series with the given name and labels.
func NewSeries(name string, labels Labels) *Series {
	return &Series{ID: ID{Name: name, Labels: labels}}
}

// Append adds a sample, enforcing monotonically increasing timestamps.
// Out-of-order samples are dropped and reported via the return value, the
// same policy a production TSDB ingest path applies.
func (s *Series) Append(t int64, v float64) bool {
	if n := len(s.Samples); n > 0 && t <= s.Samples[n-1].T {
		return false
	}
	s.Samples = append(s.Samples, Sample{T: t, V: v})
	return true
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Values returns just the sample values, in order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.V
	}
	return out
}

// Times returns just the sample timestamps, in order.
func (s *Series) Times() []int64 {
	out := make([]int64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.T
	}
	return out
}

// Between returns the sub-series with from <= T < to. An empty or inverted
// interval yields nil. The returned slice aliases the original samples.
func (s *Series) Between(from, to int64) []Sample {
	if from >= to {
		return nil
	}
	lo := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T >= from })
	hi := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T >= to })
	return s.Samples[lo:hi]
}

// At returns the most recent sample with T <= t, or false if none exists.
func (s *Series) At(t int64) (Sample, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T > t })
	if i == 0 {
		return Sample{}, false
	}
	return s.Samples[i-1], true
}

// Last returns the most recent sample, or false if the series is empty.
func (s *Series) Last() (Sample, bool) {
	if len(s.Samples) == 0 {
		return Sample{}, false
	}
	return s.Samples[len(s.Samples)-1], true
}

// Rate converts a counter series to a per-second rate gauge series.
// Counter resets (value decreasing) start a fresh segment, mirroring how
// monitoring systems handle daemon restarts.
func (s *Series) Rate() *Series {
	out := &Series{ID: s.ID, Kind: Gauge, Unit: s.Unit + "/s"}
	for i := 1; i < len(s.Samples); i++ {
		prev, cur := s.Samples[i-1], s.Samples[i]
		if cur.V < prev.V || cur.T <= prev.T {
			continue // counter reset or duplicate timestamp
		}
		dt := float64(cur.T-prev.T) / 1000.0
		out.Samples = append(out.Samples, Sample{T: cur.T, V: (cur.V - prev.V) / dt})
	}
	return out
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	cp := *s
	cp.Samples = make([]Sample, len(s.Samples))
	copy(cp.Samples, s.Samples)
	return &cp
}

// Set is a collection of series indexed by ID key.
type Set struct {
	byKey map[string]*Series
	order []string
}

// NewSet returns an empty series set.
func NewSet() *Set {
	return &Set{byKey: make(map[string]*Series)}
}

// Upsert returns the series for id, creating it when absent.
func (ss *Set) Upsert(id ID, kind Kind, unit Unit) *Series {
	k := id.Key()
	if s, ok := ss.byKey[k]; ok {
		return s
	}
	s := &Series{ID: id, Kind: kind, Unit: unit}
	ss.byKey[k] = s
	ss.order = append(ss.order, k)
	return s
}

// Get returns the series with the given ID, if present.
func (ss *Set) Get(id ID) (*Series, bool) {
	s, ok := ss.byKey[id.Key()]
	return s, ok
}

// Len returns the number of series in the set.
func (ss *Set) Len() int { return len(ss.byKey) }

// All returns every series in insertion order.
func (ss *Set) All() []*Series {
	out := make([]*Series, 0, len(ss.order))
	for _, k := range ss.order {
		out = append(out, ss.byKey[k])
	}
	return out
}

// Select returns every series whose name equals name (or any name if empty)
// and whose labels match the selector.
func (ss *Set) Select(name string, sel Labels) []*Series {
	var out []*Series
	for _, k := range ss.order {
		s := ss.byKey[k]
		if name != "" && s.ID.Name != name {
			continue
		}
		if !s.ID.Labels.Matches(sel) {
			continue
		}
		out = append(out, s)
	}
	return out
}
