package wire

import (
	"math"
	"sort"
	"testing"

	"repro/internal/metric"
)

// FuzzWireDecode throws arbitrary bytes at the batch decoder. Two
// guarantees are enforced: DecodeBatch never panics (corrupt lengths,
// truncated varints and implausible counts must all surface as errors), and
// anything that does decode re-encodes into a payload that decodes to the
// same batch — the decoder's output is always within the encoder's domain.
func FuzzWireDecode(f *testing.F) {
	// Seed with a real batch, its truncations and a corruption, so the
	// fuzzer starts inside the interesting part of the input space.
	seed := EncodeBatch(&Batch{
		Agent: "n042",
		Records: []Record{
			{
				ID:   metric.ID{Name: "node_power_watts", Labels: metric.NewLabels("node", "n042", "rack", "r02")},
				Kind: metric.Gauge,
				Unit: metric.UnitWatt,
				Samples: []metric.Sample{
					{T: 1_700_000_000_000, V: 411.5},
					{T: 1_700_000_060_000, V: 417.25},
					{T: 1_700_000_120_000, V: math.Inf(1)},
				},
			},
			{
				ID:      metric.ID{Name: "node_cpu_temp_celsius"},
				Kind:    metric.Counter,
				Unit:    metric.UnitCelsius,
				Samples: []metric.Sample{{T: -5, V: math.NaN()}},
			},
		},
	})
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:1])
	f.Add([]byte{})
	corrupt := append([]byte(nil), seed...)
	corrupt[0] = 0xFF // agent-name length varint becomes huge
	f.Add(corrupt)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return // rejected input: the absence of a panic is the property
		}
		re := EncodeBatch(b)
		b2, err := DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
		if b2.Agent != b.Agent || len(b2.Records) != len(b.Records) {
			t.Fatalf("round trip changed shape: %q/%d vs %q/%d",
				b2.Agent, len(b2.Records), b.Agent, len(b.Records))
		}
		for i := range b.Records {
			r, r2 := b.Records[i], b2.Records[i]
			if r2.ID.Name != r.ID.Name || r2.Kind != r.Kind || r2.Unit != r.Unit {
				t.Fatalf("record %d header changed: %+v vs %+v", i, r2, r)
			}
			// NewLabels sorts by key only (unstable among duplicate keys),
			// so compare labels as fully ordered (key, value) multisets.
			if !sameLabelSet(r.ID.Labels, r2.ID.Labels) {
				t.Fatalf("record %d labels changed: %v vs %v", i, r2.ID.Labels, r.ID.Labels)
			}
			if len(r2.Samples) != len(r.Samples) {
				t.Fatalf("record %d: %d vs %d samples", i, len(r2.Samples), len(r.Samples))
			}
			for j := range r.Samples {
				if r2.Samples[j].T != r.Samples[j].T ||
					math.Float64bits(r2.Samples[j].V) != math.Float64bits(r.Samples[j].V) {
					t.Fatalf("record %d sample %d changed: %+v vs %+v",
						i, j, r2.Samples[j], r.Samples[j])
				}
			}
		}
	})
}

// dictFuzzSeeds builds the deterministic v2 seed payloads shared by the
// fuzz target and the committed corpus (gen_corpus_test.go).
func dictFuzzSeeds() (defs, batch, dupDefs, undefBatch []byte) {
	rec1 := Record{
		ID:   metric.ID{Name: "node_power_watts", Labels: metric.NewLabels("node", "n042")},
		Kind: metric.Gauge, Unit: metric.UnitWatt,
		Samples: []metric.Sample{{T: 1_700_000_000_000, V: 411.5}, {T: 1_700_000_060_000, V: 417.25}},
	}
	rec2 := Record{
		ID:   metric.ID{Name: "node_cpu_temp_celsius"},
		Kind: metric.Counter, Unit: metric.UnitCelsius,
		Samples: []metric.Sample{{T: -5, V: math.NaN()}},
	}
	defs = appendUvarint(nil, 2)
	defs = appendDef(defs, 1, &rec1)
	defs = appendDef(defs, 2, &rec2)
	refs := map[string]uint64{rec1.ID.Key(): 1, rec2.ID.Key(): 2}
	batch = appendRefBatch(nil, &Batch{Agent: "n042", Records: []Record{rec1, rec2}}, refs)
	dupDefs = appendUvarint(nil, 2)
	dupDefs = appendDef(dupDefs, 1, &rec1)
	dupDefs = appendDef(dupDefs, 1, &rec2) // same ref twice: protocol error
	undefBatch = appendRefBatch(nil, &Batch{Agent: "n042", Records: []Record{rec1}},
		map[string]uint64{rec1.ID.Key(): 99})
	return
}

// FuzzDictDecode throws arbitrary (dictionary, ref batch) payload pairs at
// the v2 decoder. Properties: neither AddDefs nor DecodeRefBatch ever
// panics — undefined refs, duplicate defines, truncated dictionaries and
// implausible counts must all surface as errors — and any batch that does
// decode is inside the v1 encoder's domain (it re-encodes and re-decodes
// cleanly).
func FuzzDictDecode(f *testing.F) {
	defs, batch, dupDefs, undefBatch := dictFuzzSeeds()
	// Seeds mirror the committed corpus in testdata/fuzz/FuzzDictDecode.
	f.Add(defs, batch)                                                               // valid define + ref batch
	f.Add([]byte{}, undefBatch)                                                      // undefined ref
	f.Add(dupDefs, batch)                                                            // duplicate define
	f.Add(defs[:len(defs)/2], batch)                                                 // truncated dictionary
	f.Add(defs, batch[:len(batch)/2])                                                // truncated ref batch
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, batch) // huge count varint

	f.Fuzz(func(t *testing.T, defPayload, batchPayload []byte) {
		cd := NewConnDict()
		_, _ = cd.AddDefs(defPayload) // error = dropped conn; no panic is the property
		b, err := cd.DecodeRefBatch(batchPayload)
		if err != nil {
			return
		}
		re := EncodeBatch(b)
		if _, err := DecodeBatch(re); err != nil {
			t.Fatalf("decoded ref batch is outside the v1 encoder domain: %v", err)
		}
	})
}

func sameLabelSet(a, b metric.Labels) bool {
	if len(a) != len(b) {
		return false
	}
	ac := append(metric.Labels(nil), a...)
	bc := append(metric.Labels(nil), b...)
	order := func(ls metric.Labels) func(i, j int) bool {
		return func(i, j int) bool {
			if ls[i].Key != ls[j].Key {
				return ls[i].Key < ls[j].Key
			}
			return ls[i].Value < ls[j].Value
		}
	}
	sort.Slice(ac, order(ac))
	sort.Slice(bc, order(bc))
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}
