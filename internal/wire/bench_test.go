package wire

import (
	"bytes"
	"io"
	"testing"
)

func BenchmarkEncodeBatch(b *testing.B) {
	batch := sampleBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := EncodeBatch(batch); len(out) == 0 {
			b.Fatal("empty payload")
		}
	}
}

func BenchmarkAppendBatchReuse(b *testing.B) {
	batch := sampleBatch()
	buf := AppendBatch(nil, batch) // pre-grow to steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendBatch(buf[:0], batch)
		if len(buf) == 0 {
			b.Fatal("empty payload")
		}
	}
}

func BenchmarkBatchWriterSend(b *testing.B) {
	batch := sampleBatch()
	bw := NewBatchWriter(io.Discard)
	if err := bw.Send(batch); err != nil { // warm the encode buffer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bw.Send(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBatch(b *testing.B) {
	payload := EncodeBatch(sampleBatch())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := EncodeBatch(sampleBatch())
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, FrameBatch, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
