package wire

import (
	"bytes"
	"testing"
)

func BenchmarkEncodeBatch(b *testing.B) {
	batch := sampleBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := EncodeBatch(batch); len(out) == 0 {
			b.Fatal("empty payload")
		}
	}
}

func BenchmarkDecodeBatch(b *testing.B) {
	payload := EncodeBatch(sampleBatch())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := EncodeBatch(sampleBatch())
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, FrameBatch, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
