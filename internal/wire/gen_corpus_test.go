package wire

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestGenCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") == "" {
		t.Skip("set GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	defs, batch, dupDefs, undefBatch := dictFuzzSeeds()
	seeds := map[string][2][]byte{
		"seed-valid-dict":       {defs, batch},
		"seed-undefined-ref":    {{}, undefBatch},
		"seed-duplicate-define": {dupDefs, batch},
		"seed-truncated-dict":   {defs[:len(defs)/2], batch},
		"seed-truncated-batch":  {defs, batch[:len(batch)/2]},
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDictDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, pair := range seeds {
		body := "go test fuzz v1\n" +
			"[]byte(" + strconv.QuoteToASCII(string(pair[0])) + ")\n" +
			"[]byte(" + strconv.QuoteToASCII(string(pair[1])) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
