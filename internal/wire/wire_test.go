package wire

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metric"
)

func sampleBatch() *Batch {
	return &Batch{
		Agent: "node07",
		Records: []Record{
			{
				ID:   metric.ID{Name: "power", Labels: metric.NewLabels("node", "n7", "rack", "r1")},
				Kind: metric.Gauge,
				Unit: metric.UnitWatt,
				Samples: []metric.Sample{
					{T: 1_700_000_000_000, V: 215.5},
					{T: 1_700_000_060_000, V: 218.25},
					{T: 1_700_000_120_000, V: 210},
				},
			},
			{
				ID:      metric.ID{Name: "energy", Labels: metric.NewLabels("node", "n7")},
				Kind:    metric.Counter,
				Unit:    metric.UnitJoule,
				Samples: []metric.Sample{{T: -5, V: math.Inf(1)}},
			},
			{
				ID:   metric.ID{Name: "empty"},
				Kind: metric.Gauge,
				Unit: metric.UnitNone,
			},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := sampleBatch()
	payload := EncodeBatch(in)
	out, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Agent, out.Agent) {
		t.Fatalf("agent %q vs %q", in.Agent, out.Agent)
	}
	if len(out.Records) != len(in.Records) {
		t.Fatalf("records = %d", len(out.Records))
	}
	for i := range in.Records {
		a, b := in.Records[i], out.Records[i]
		if a.ID.Key() != b.ID.Key() || a.Kind != b.Kind || a.Unit != b.Unit {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, a, b)
		}
		if len(a.Samples) != len(b.Samples) {
			t.Fatalf("record %d sample count", i)
		}
		for j := range a.Samples {
			if a.Samples[j].T != b.Samples[j].T {
				t.Fatalf("record %d sample %d T", i, j)
			}
			av, bv := a.Samples[j].V, b.Samples[j].V
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("record %d sample %d V: %v vs %v", i, j, av, bv)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello telemetry")
	if err := WriteFrame(&buf, FrameBatch, payload); err != nil {
		t.Fatal(err)
	}
	ft, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameBatch || !bytes.Equal(got, payload) {
		t.Fatalf("frame = %d %q", ft, got)
	}
}

func TestFrameValidation(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, FrameBatch, []byte("payload"))
	raw := buf.Bytes()

	bad := append([]byte(nil), raw...)
	bad[0] = 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err != ErrBadMagic {
		t.Fatalf("magic: %v", err)
	}

	bad = append([]byte(nil), raw...)
	bad[2] = 99
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}

	bad = append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0x01 // corrupt payload
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err != ErrBadChecksum {
		t.Fatalf("checksum: %v", err)
	}

	bad = append([]byte(nil), raw...)
	bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0xFF // absurd length
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err != ErrTooLarge {
		t.Fatalf("length: %v", err)
	}

	if err := WriteFrame(&buf, FrameBatch, make([]byte, MaxPayload+1)); err != ErrTooLarge {
		t.Fatalf("oversize write: %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	payload := EncodeBatch(sampleBatch())
	for cut := 0; cut < len(payload); cut += 3 {
		if _, err := DecodeBatch(payload[:cut]); err == nil && cut < len(payload) {
			// Some prefixes may decode as a smaller valid batch only if the
			// structure allows; with our layout a strict prefix must fail
			// except for the complete payload.
			t.Fatalf("truncated payload at %d decoded successfully", cut)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		junk := make([]byte, rng.Intn(200))
		rng.Read(junk)
		// Must not panic; error or lucky success are both fine.
		_, _ = DecodeBatch(junk)
	}
}

func TestBatchRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := &Batch{Agent: "agent"}
		for r := 0; r < 1+rng.Intn(5); r++ {
			rec := Record{
				ID:   metric.ID{Name: "m", Labels: metric.NewLabels("node", string(rune('a'+rng.Intn(26))))},
				Kind: metric.Kind(rng.Intn(2)),
				Unit: metric.UnitWatt,
			}
			tcur := rng.Int63n(1 << 40)
			for s := 0; s < rng.Intn(50); s++ {
				tcur += int64(rng.Intn(100000))
				rec.Samples = append(rec.Samples, metric.Sample{T: tcur, V: rng.NormFloat64() * 1e3})
			}
			b.Records = append(b.Records, rec)
		}
		out, err := DecodeBatch(EncodeBatch(b))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(b, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	var mu sync.Mutex
	var received []*Batch
	srv, err := NewServer("127.0.0.1:0", func(b *Batch) {
		mu.Lock()
		received = append(received, b)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 4
	const perClient = 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				if err := cl.Send(sampleBatch()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Batches() < clients*perClient && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Batches() != clients*perClient {
		t.Fatalf("server got %d batches", srv.Batches())
	}
	if srv.Samples() != clients*perClient*4 {
		t.Fatalf("server got %d samples", srv.Samples())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(received) != clients*perClient {
		t.Fatalf("handler got %d batches", len(received))
	}
	if received[0].Agent != "node07" {
		t.Fatalf("agent = %q", received[0].Agent)
	}
}

func TestServerRejectsGarbageConnection(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = cl.conn.Write([]byte("GET / HTTP/1.1\r\n\r\n this is not telemetry"))
	cl.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Errors() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Errors() == 0 {
		t.Fatal("protocol error not counted")
	}
}

func TestDecodeHugeVarintLength(t *testing.T) {
	// A payload whose string length varint far exceeds the buffer (and
	// would overflow int if converted blindly) must error, not panic.
	payload := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := DecodeBatch(payload); err == nil {
		t.Fatal("huge length should error")
	}
}

// TestAppendBatchMatchesEncodeBatch pins the append-style encoder to the
// allocate-per-call one: same bytes, dst extended in place.
func TestAppendBatchMatchesEncodeBatch(t *testing.T) {
	batch := sampleBatch()
	want := EncodeBatch(batch)
	got := AppendBatch(nil, batch)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendBatch(nil) diverges from EncodeBatch:\n  got  %x\n  want %x", got, want)
	}
	prefix := []byte{0xde, 0xad}
	ext := AppendBatch(prefix, batch)
	if !bytes.Equal(ext[:2], prefix) || !bytes.Equal(ext[2:], want) {
		t.Fatal("AppendBatch must append after existing dst contents")
	}
}

// TestAppendBatchZeroSteadyStateAllocs is the perf contract for the pooled
// encode path: once the reused buffer has grown to batch size, encoding
// (and a full BatchWriter send to a discarding stream) allocates nothing.
func TestAppendBatchZeroSteadyStateAllocs(t *testing.T) {
	batch := sampleBatch()
	buf := AppendBatch(nil, batch)
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendBatch(buf[:0], batch)
	}); n != 0 {
		t.Fatalf("AppendBatch reuse: %.1f allocs/op, want 0", n)
	}
	bw := NewBatchWriter(io.Discard)
	if err := bw.Send(batch); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := bw.Send(batch); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("BatchWriter.Send steady state: %.1f allocs/op, want 0", n)
	}
}
