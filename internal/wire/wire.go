// Package wire defines the binary telemetry protocol collection agents use
// to push samples to an aggregation endpoint, plus a TCP server/client pair.
//
// Frame layout (big endian):
//
//	magic   uint16  0x0DA7
//	version uint8   1
//	type    uint8   frame type
//	length  uint32  payload byte count
//	crc32   uint32  IEEE checksum of the payload
//	payload [length]byte
//
// The v1 payload is a Batch: a set of records, each carrying a metric ID,
// kind, unit and a run of (delta-encoded) samples. Strings are
// length-prefixed with uvarints; integers use varints so the common case
// (regular cadence, small deltas) stays compact on the wire.
//
// Protocol v2 adds a per-connection series dictionary (see dict.go): a
// FrameDict defines each series once, and FrameRefBatch frames then ship
// ref + delta-t + value records with no per-sample ID re-encoding. v1
// frames still decode on a v2 server.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/metric"
)

// Protocol constants.
const (
	Magic   uint16 = 0x0DA7
	Version uint8  = 1
	// Version2 marks frames that participate in the per-connection series
	// dictionary (FrameDict / FrameRefBatch). Readers accept both versions.
	Version2 uint8 = 2

	// FrameBatch carries a telemetry Batch.
	FrameBatch uint8 = 1
	// FramePing is a liveness probe: the server echoes the payload back in
	// a FramePong. It exists so a failure detector can distinguish a slow
	// peer (pong arrives late) from a dead one (pong never arrives): batch
	// sends are one-way, so their success says nothing about the far end.
	FramePing uint8 = 2
	// FramePong is the server's echo reply to a FramePing.
	FramePong uint8 = 3
	// FrameDict defines series in the connection's dictionary (v2).
	FrameDict uint8 = 4
	// FrameRefBatch carries a batch whose records address series by
	// dictionary ref (v2).
	FrameRefBatch uint8 = 5

	headerLen = 12
	// MaxPayload bounds a frame so a corrupt length cannot allocate
	// unbounded memory.
	MaxPayload = 16 << 20
)

// Errors returned by the decoder.
var (
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	ErrTooLarge    = errors.New("wire: frame exceeds MaxPayload")
)

// Record is one series' worth of samples in a batch.
type Record struct {
	ID      metric.ID
	Kind    metric.Kind
	Unit    metric.Unit
	Samples []metric.Sample
}

// Batch is the unit of transmission: what one agent collected this round.
type Batch struct {
	Agent   string // agent identity, e.g. hostname
	Records []Record
}

// appendUvarint / appendVarint helpers over a byte slice.
func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// EncodeBatch serializes a batch payload (without frame header) into a
// fresh buffer. Hot paths that encode repeatedly should use AppendBatch
// with a reused buffer instead.
func EncodeBatch(b *Batch) []byte {
	return AppendBatch(make([]byte, 0, 64), b)
}

// AppendBatch serializes a batch payload onto dst and returns the extended
// slice (append semantics, like strconv.AppendInt). Reusing the returned
// buffer across calls amortizes the encode allocation to zero once the
// buffer has grown to the steady-state batch size.
func AppendBatch(dst []byte, b *Batch) []byte {
	out := dst
	out = appendString(out, b.Agent)
	out = appendUvarint(out, uint64(len(b.Records)))
	for _, r := range b.Records {
		out = appendString(out, r.ID.Name)
		out = appendUvarint(out, uint64(len(r.ID.Labels)))
		for _, l := range r.ID.Labels {
			out = appendString(out, l.Key)
			out = appendString(out, l.Value)
		}
		out = append(out, byte(r.Kind))
		out = appendString(out, string(r.Unit))
		out = appendUvarint(out, uint64(len(r.Samples)))
		var prevT int64
		for i, sm := range r.Samples {
			if i == 0 {
				out = appendVarint(out, sm.T)
			} else {
				out = appendVarint(out, sm.T-prevT)
			}
			prevT = sm.T
			var vb [8]byte
			binary.BigEndian.PutUint64(vb[:], math.Float64bits(sm.V))
			out = append(out, vb[:]...)
		}
	}
	return out
}

type payloadReader struct {
	buf []byte
	pos int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.buf[p.pos:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	p.pos += n
	return v, nil
}

func (p *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(p.buf[p.pos:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	p.pos += n
	return v, nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	// Guard before converting to int: a corrupt varint can exceed the
	// buffer (or even overflow int), which must be an error, not a panic.
	if n > uint64(len(p.buf)-p.pos) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(p.buf[p.pos : p.pos+int(n)])
	p.pos += int(n)
	return s, nil
}

func (p *payloadReader) float() (float64, error) {
	if p.pos+8 > len(p.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(p.buf[p.pos:]))
	p.pos += 8
	return v, nil
}

// DecodeBatch parses a batch payload.
func DecodeBatch(payload []byte) (*Batch, error) {
	p := &payloadReader{buf: payload}
	agent, err := p.str()
	if err != nil {
		return nil, err
	}
	nrec, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if nrec > uint64(len(payload)) { // sanity: every record needs >= 1 byte
		return nil, fmt.Errorf("wire: implausible record count %d", nrec)
	}
	b := &Batch{Agent: agent, Records: make([]Record, 0, nrec)}
	for ri := uint64(0); ri < nrec; ri++ {
		var r Record
		if r.ID.Name, err = p.str(); err != nil {
			return nil, err
		}
		nlab, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if nlab > uint64(len(payload)) {
			return nil, fmt.Errorf("wire: implausible label count %d", nlab)
		}
		if nlab > 0 {
			kv := make([]string, 0, nlab*2)
			for li := uint64(0); li < nlab; li++ {
				k, err := p.str()
				if err != nil {
					return nil, err
				}
				v, err := p.str()
				if err != nil {
					return nil, err
				}
				kv = append(kv, k, v)
			}
			r.ID.Labels = metric.NewLabels(kv...)
		}
		if p.pos >= len(payload) {
			return nil, io.ErrUnexpectedEOF
		}
		r.Kind = metric.Kind(payload[p.pos])
		p.pos++
		unit, err := p.str()
		if err != nil {
			return nil, err
		}
		r.Unit = metric.Unit(unit)
		nsm, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if nsm > uint64(len(payload)) {
			return nil, fmt.Errorf("wire: implausible sample count %d", nsm)
		}
		if nsm > 0 {
			r.Samples = make([]metric.Sample, 0, nsm)
		}
		var prevT int64
		for si := uint64(0); si < nsm; si++ {
			dt, err := p.varint()
			if err != nil {
				return nil, err
			}
			t := dt
			if si > 0 {
				t = prevT + dt
			}
			prevT = t
			v, err := p.float()
			if err != nil {
				return nil, err
			}
			r.Samples = append(r.Samples, metric.Sample{T: t, V: v})
		}
		b.Records = append(b.Records, r)
	}
	return b, nil
}

// putFrameHeader fills hdr for a payload of the given version and type.
// The caller has already checked the MaxPayload bound.
func putFrameHeader(hdr *[headerLen]byte, version, frameType uint8, payload []byte) {
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = version
	hdr[3] = frameType
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
}

// WriteFrame writes a framed payload to w. Dictionary frame types are
// stamped v2, everything else v1, so callers never pick a version by hand.
func WriteFrame(w io.Writer, frameType uint8, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrTooLarge
	}
	var hdr [headerLen]byte
	putFrameHeader(&hdr, versionFor(frameType), frameType, payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// Never issue a zero-length write: synchronous transports
		// (net.Pipe) rendezvous even empty writes, and a reader that
		// already consumed the header won't read again until the next
		// frame — the empty write would deadlock against the response.
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// versionFor maps a frame type to the protocol version it was introduced in.
func versionFor(frameType uint8) uint8 {
	if frameType == FrameDict || frameType == FrameRefBatch {
		return Version2
	}
	return Version
}

// ReadFrame reads one framed payload from r, validating magic, version,
// size bound and checksum.
func ReadFrame(r io.Reader) (frameType uint8, payload []byte, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != Magic {
		return 0, nil, ErrBadMagic
	}
	if hdr[2] != Version && hdr[2] != Version2 {
		return 0, nil, ErrBadVersion
	}
	frameType = hdr[3]
	length := binary.BigEndian.Uint32(hdr[4:8])
	if length > MaxPayload {
		return 0, nil, ErrTooLarge
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[8:12]) {
		return 0, nil, ErrBadChecksum
	}
	return frameType, payload, nil
}

// WriteBatch frames and writes a batch.
func WriteBatch(w io.Writer, b *Batch) error {
	return WriteFrame(w, FrameBatch, EncodeBatch(b))
}

// ReadBatch reads one frame and decodes it as a batch.
func ReadBatch(r io.Reader) (*Batch, error) {
	ft, payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	if ft != FrameBatch {
		return nil, fmt.Errorf("wire: unexpected frame type %d", ft)
	}
	return DecodeBatch(payload)
}

// BatchWriter wraps a stream with buffering for repeated batch sends. The
// encode buffer persists across Sends, so steady-state sends allocate
// nothing. Not safe for concurrent use; callers that share one (like
// Client) must serialize Sends themselves.
type BatchWriter struct {
	w   *bufio.Writer
	buf []byte          // reused encode scratch
	hdr [headerLen]byte // reused frame-header scratch (a stack header would
	// escape through the io.Writer interface and cost one alloc per send)
}

// NewBatchWriter returns a buffered batch writer over w.
func NewBatchWriter(w io.Writer) *BatchWriter {
	return &BatchWriter{w: bufio.NewWriter(w)}
}

// Send frames, writes and flushes one batch.
func (bw *BatchWriter) Send(b *Batch) error {
	bw.buf = AppendBatch(bw.buf[:0], b)
	if err := bw.writeFrame(Version, FrameBatch, bw.buf); err != nil {
		return err
	}
	return bw.w.Flush()
}

// writeFrame buffers one framed payload without flushing, so a dictionary
// frame and its ref batch coalesce into a single flush (dict.go).
func (bw *BatchWriter) writeFrame(version, frameType uint8, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrTooLarge
	}
	putFrameHeader(&bw.hdr, version, frameType, payload)
	if _, err := bw.w.Write(bw.hdr[:]); err != nil {
		return err
	}
	_, err := bw.w.Write(payload)
	return err
}

func (bw *BatchWriter) flush() error { return bw.w.Flush() }
