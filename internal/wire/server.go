package wire

import (
	"bufio"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Handler consumes decoded batches on the server side.
type Handler func(*Batch)

// Server accepts TCP connections from collection agents and dispatches each
// received batch to the handler. It is the aggregation endpoint of the
// push-mode collection fabric.
type Server struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup
	closed  atomic.Bool

	batches atomic.Uint64
	samples atomic.Uint64
	errors  atomic.Uint64
}

// NewServer listens on addr ("127.0.0.1:0" picks a free port) and serves
// until Close.
func NewServer(addr string, handler Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: handler}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Batches returns the number of successfully decoded batches.
func (s *Server) Batches() uint64 { return s.batches.Load() }

// Samples returns the number of samples received across all batches.
func (s *Server) Samples() uint64 { return s.samples.Load() }

// Errors returns the number of connections dropped due to protocol errors.
func (s *Server) Errors() uint64 { return s.errors.Load() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	r := bufio.NewReader(conn)
	for {
		b, err := ReadBatch(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() {
				s.errors.Add(1)
				log.Printf("wire: connection from %s dropped: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.batches.Add(1)
		for _, rec := range b.Records {
			s.samples.Add(uint64(len(rec.Samples)))
		}
		if s.handler != nil {
			s.handler(b)
		}
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client is an agent-side connection that pushes batches to a server.
type Client struct {
	conn net.Conn
	bw   *BatchWriter
	mu   sync.Mutex

	timeout     time.Duration
	deadlineSet bool
}

// Dial connects to a telemetry server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, bw: NewBatchWriter(conn)}, nil
}

// SetTimeout bounds each subsequent Send with a write deadline of d,
// counted from the moment the send starts (0 disables the deadline again).
// A deadline turns a wedged endpoint into a prompt error instead of an
// indefinite stall. Safe for concurrent use with Send.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Send pushes one batch; safe for concurrent use.
func (c *Client) Send(b *Batch) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return err
		}
		c.deadlineSet = true
	} else if c.deadlineSet {
		if err := c.conn.SetWriteDeadline(time.Time{}); err != nil {
			return err
		}
		c.deadlineSet = false
	}
	return c.bw.Send(b)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
