package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Handler consumes decoded batches on the server side.
type Handler func(*Batch)

// Dialer opens a client connection to a telemetry server. The default is
// net.Dial over TCP; tests and fault-injection harnesses substitute
// in-memory pipes or wrappers that delay, truncate or partition traffic.
type Dialer func(addr string) (net.Conn, error)

func tcpDial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// Server accepts TCP connections from collection agents and dispatches each
// received batch to the handler. It is the aggregation endpoint of the
// push-mode collection fabric.
type Server struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup
	closed  atomic.Bool

	batches    atomic.Uint64
	samples    atomic.Uint64
	errors     atomic.Uint64
	pings      atomic.Uint64
	dictDefs   atomic.Uint64
	refBatches atomic.Uint64
}

// NewServer listens on addr ("127.0.0.1:0" picks a free port) and serves
// until Close.
func NewServer(addr string, handler Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewServerListener(ln, handler), nil
}

// NewServerListener serves the wire protocol on an injected listener and
// owns it until Close. It is how tests and chaos harnesses run a server
// over in-memory connections — no real sockets involved.
func NewServerListener(ln net.Listener, handler Handler) *Server {
	s := &Server{ln: ln, handler: handler}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Batches returns the number of successfully decoded batches.
func (s *Server) Batches() uint64 { return s.batches.Load() }

// Samples returns the number of samples received across all batches.
func (s *Server) Samples() uint64 { return s.samples.Load() }

// Errors returns the number of connections dropped due to protocol errors.
func (s *Server) Errors() uint64 { return s.errors.Load() }

// Pings returns the number of ping frames answered.
func (s *Server) Pings() uint64 { return s.pings.Load() }

// DictDefs returns how many v2 dictionary series definitions have been
// received across all connections.
func (s *Server) DictDefs() uint64 { return s.dictDefs.Load() }

// RefBatches returns how many batches arrived as v2 ref batches (also
// counted in Batches).
func (s *Server) RefBatches() uint64 { return s.refBatches.Load() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	r := bufio.NewReader(conn)
	// The v2 series dictionary is per connection, allocated on first use so
	// v1-only agents pay nothing. It dies with the connection: a redialing
	// client starts a fresh dictionary and re-defines series as it goes.
	var dict *ConnDict
	for {
		ft, payload, err := ReadFrame(r)
		if err == nil && ft == FramePing {
			// Answer liveness probes inline: the pong is the only
			// server-to-client traffic, and this goroutine is the only
			// writer on the connection, so no write serialization needed.
			if err := WriteFrame(conn, FramePong, payload); err != nil {
				return
			}
			s.pings.Add(1)
			continue
		}
		if err == nil && ft == FrameDict {
			if dict == nil {
				dict = NewConnDict()
			}
			var n int
			if n, err = dict.AddDefs(payload); err == nil {
				s.dictDefs.Add(uint64(n))
				continue
			}
		}
		var b *Batch
		if err == nil {
			switch ft {
			case FrameBatch:
				b, err = DecodeBatch(payload)
			case FrameRefBatch:
				if dict == nil {
					err = fmt.Errorf("wire: ref batch before any dictionary frame")
				} else if b, err = dict.DecodeRefBatch(payload); err == nil {
					s.refBatches.Add(1)
				}
			default:
				err = fmt.Errorf("wire: unexpected frame type %d", ft)
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() {
				s.errors.Add(1)
				log.Printf("wire: connection from %s dropped: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.batches.Add(1)
		for _, rec := range b.Records {
			s.samples.Add(uint64(len(rec.Samples)))
		}
		if s.handler != nil {
			s.handler(b)
		}
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client is an agent-side connection that pushes batches to a server. A
// send that fails marks the connection broken; the next Send transparently
// redials through the client's dialer, so an agent rides out server
// restarts and transient partitions without being rebuilt (pair with
// retry/backoff at the sink layer for in-batch recovery).
type Client struct {
	conn net.Conn
	bw   *BatchWriter
	mu   sync.Mutex

	addr    string
	dial    Dialer
	broken  bool
	redials atomic.Uint64
	pingSeq uint64 // nonce for Ping frames, guarded by mu

	// useDict switches Sends to protocol v2; dict is the per-connection
	// send-side dictionary, discarded on redial so the new connection
	// renegotiates from scratch. Both guarded by mu.
	useDict bool
	dict    *clientDict

	timeout     time.Duration
	deadlineSet bool
}

// Dial connects to a telemetry server over TCP.
func Dial(addr string) (*Client, error) {
	return DialWith(nil, addr)
}

// DialWith connects through an injectable dialer (nil = TCP). The initial
// connection is established eagerly so configuration errors surface here,
// not on the first Send.
func DialWith(dial Dialer, addr string) (*Client, error) {
	if dial == nil {
		dial = tcpDial
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, bw: NewBatchWriter(conn), addr: addr, dial: dial}, nil
}

// Redials returns how many reconnects Sends have performed.
func (c *Client) Redials() uint64 { return c.redials.Load() }

// EnableDict switches subsequent Sends to the v2 dictionary protocol:
// each series is defined once per connection, then shipped as compact
// ref+delta-t+value records. Redials renegotiate automatically (the fresh
// connection starts with an empty dictionary on both ends). The far end
// must understand v2 — all in-repo servers do; leave it off to talk to a
// v1-only endpoint. Safe for concurrent use with Send.
func (c *Client) EnableDict() {
	c.mu.Lock()
	c.useDict = true
	c.mu.Unlock()
}

// SetTimeout bounds each subsequent Send with a write deadline of d,
// counted from the moment the send starts (0 disables the deadline again).
// A deadline turns a wedged endpoint into a prompt error instead of an
// indefinite stall. Safe for concurrent use with Send.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// redialLocked re-establishes a broken connection through the dialer; the
// caller holds c.mu.
func (c *Client) redialLocked() error {
	_ = c.conn.Close()
	conn, err := c.dial(c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.bw = NewBatchWriter(conn)
	c.dict = nil // dictionary state is per connection: renegotiate from empty
	c.deadlineSet = false
	c.broken = false
	c.redials.Add(1)
	return nil
}

// Send pushes one batch; safe for concurrent use. After a failed Send the
// connection is considered broken and the next call redials before
// writing; if the redial fails, that error is returned and the client
// stays broken for the call after.
func (c *Client) Send(b *Batch) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		if err := c.redialLocked(); err != nil {
			return err
		}
	}
	if c.timeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			c.broken = true
			return err
		}
		c.deadlineSet = true
	} else if c.deadlineSet {
		if err := c.conn.SetWriteDeadline(time.Time{}); err != nil {
			c.broken = true
			return err
		}
		c.deadlineSet = false
	}
	if c.useDict {
		if c.dict == nil {
			c.dict = newClientDict()
		}
		if err := c.dict.sendDict(c.bw, b); err != nil {
			c.broken = true
			return err
		}
		return nil
	}
	if err := c.bw.Send(b); err != nil {
		c.broken = true
		return err
	}
	return nil
}

// Ping sends a liveness probe and waits for the server's echo, returning
// the round-trip time. It is the failure detector's primitive: a Send is
// one-way, so its success only proves bytes left this side, while a pong
// proves the far end is reading and responding — and a pong that arrives
// slowly (injected latency, long queues) is still a pong, so slowness and
// death stay distinguishable. timeout bounds the whole round trip (0 waits
// forever); a timeout or transport error marks the connection broken, and
// the next Ping/Send redials. Safe for concurrent use with Send.
func (c *Client) Ping(timeout time.Duration) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		if err := c.redialLocked(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	var deadline time.Time
	if timeout > 0 {
		deadline = start.Add(timeout)
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.broken = true
		return 0, err
	}
	c.pingSeq++
	var nonce [8]byte
	binary.BigEndian.PutUint64(nonce[:], c.pingSeq)
	if err := WriteFrame(c.conn, FramePing, nonce[:]); err != nil {
		c.broken = true
		return 0, err
	}
	ft, echo, err := ReadFrame(c.conn)
	if err != nil {
		c.broken = true
		return 0, err
	}
	if ft != FramePong || !bytes.Equal(echo, nonce[:]) {
		c.broken = true
		return 0, fmt.Errorf("wire: unexpected pong (type %d)", ft)
	}
	if err := c.conn.SetDeadline(time.Time{}); err != nil {
		c.broken = true
		return 0, err
	}
	c.deadlineSet = false
	return time.Since(start), nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
