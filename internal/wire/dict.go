package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/metric"
)

// Protocol v2: per-connection series dictionary.
//
// A v2 sender defines each series once on a connection with a FrameDict
// payload, then ships FrameRefBatch payloads that address series by the
// small uint64 ref it assigned — no per-sample (or even per-batch) name,
// label or unit re-encoding. Dictionary state is strictly per connection:
// a redial starts from an empty dictionary on both ends and the client
// re-defines series as it first uses them again, so renegotiation is
// implicit in the framing. v1 FrameBatch senders interoperate unchanged.
//
// FrameDict payload:
//
//	ndefs   uvarint
//	per def: ref uvarint, name str, nlabels uvarint, {key str, value str}*,
//	         kind byte, unit str
//
// FrameRefBatch payload:
//
//	agent    str
//	nrecords uvarint
//	per record: ref uvarint, nsamples uvarint,
//	            samples: varint t (first absolute, then deltas) + 8-byte value
//
// Defining a ref twice on one connection and referencing an undefined ref
// are both protocol errors that drop the connection — a correct client can
// do neither, so tolerating them would only mask corruption.

// Dictionary protocol errors.
var (
	ErrUnknownRef   = errors.New("wire: ref batch references undefined series ref")
	ErrDictRedefine = errors.New("wire: dictionary redefines existing series ref")
)

type dictDef struct {
	id   metric.ID
	kind metric.Kind
	unit metric.Unit
}

// ConnDict is the receive side of the v2 dictionary: one per connection,
// populated by FrameDict payloads and consumed by DecodeRefBatch. Not safe
// for concurrent use; frames on one connection are handled sequentially.
type ConnDict struct {
	defs map[uint64]dictDef
}

// NewConnDict returns an empty per-connection dictionary.
func NewConnDict() *ConnDict { return &ConnDict{defs: make(map[uint64]dictDef)} }

// Len returns how many series the connection has defined.
func (d *ConnDict) Len() int { return len(d.defs) }

// AddDefs decodes a FrameDict payload into the dictionary and returns how
// many series it defined.
func (d *ConnDict) AddDefs(payload []byte) (int, error) {
	p := &payloadReader{buf: payload}
	ndefs, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	if ndefs > uint64(len(payload)) { // sanity: every def needs >= 1 byte
		return 0, fmt.Errorf("wire: implausible definition count %d", ndefs)
	}
	for i := uint64(0); i < ndefs; i++ {
		ref, err := p.uvarint()
		if err != nil {
			return 0, err
		}
		name, err := p.str()
		if err != nil {
			return 0, err
		}
		nlab, err := p.uvarint()
		if err != nil {
			return 0, err
		}
		if nlab > uint64(len(payload)) {
			return 0, fmt.Errorf("wire: implausible label count %d", nlab)
		}
		var labels metric.Labels
		if nlab > 0 {
			kv := make([]string, 0, nlab*2)
			for li := uint64(0); li < nlab; li++ {
				k, err := p.str()
				if err != nil {
					return 0, err
				}
				v, err := p.str()
				if err != nil {
					return 0, err
				}
				kv = append(kv, k, v)
			}
			labels = metric.NewLabels(kv...)
		}
		if p.pos >= len(payload) {
			return 0, io.ErrUnexpectedEOF
		}
		kind := metric.Kind(payload[p.pos])
		p.pos++
		unit, err := p.str()
		if err != nil {
			return 0, err
		}
		if _, dup := d.defs[ref]; dup {
			return 0, fmt.Errorf("%w: ref %d", ErrDictRedefine, ref)
		}
		// Intern the ID once per connection: every batch decoded against
		// this def reuses the cached key on downstream keyed lookups.
		d.defs[ref] = dictDef{id: metric.NewID(name, labels), kind: kind, unit: metric.Unit(unit)}
	}
	if p.pos != len(payload) {
		return 0, fmt.Errorf("wire: %d trailing bytes after dictionary", len(payload)-p.pos)
	}
	return int(ndefs), nil
}

// DecodeRefBatch parses a FrameRefBatch payload against the dictionary,
// returning a Batch identical to what a v1 FrameBatch for the same samples
// would decode to (record IDs come from the dictionary definitions).
func (d *ConnDict) DecodeRefBatch(payload []byte) (*Batch, error) {
	p := &payloadReader{buf: payload}
	agent, err := p.str()
	if err != nil {
		return nil, err
	}
	nrec, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if nrec > uint64(len(payload)) {
		return nil, fmt.Errorf("wire: implausible record count %d", nrec)
	}
	b := &Batch{Agent: agent, Records: make([]Record, 0, nrec)}
	for ri := uint64(0); ri < nrec; ri++ {
		ref, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		def, ok := d.defs[ref]
		if !ok {
			return nil, fmt.Errorf("%w: ref %d", ErrUnknownRef, ref)
		}
		r := Record{ID: def.id, Kind: def.kind, Unit: def.unit}
		nsm, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if nsm > uint64(len(payload)) {
			return nil, fmt.Errorf("wire: implausible sample count %d", nsm)
		}
		if nsm > 0 {
			r.Samples = make([]metric.Sample, 0, nsm)
		}
		var prevT int64
		for si := uint64(0); si < nsm; si++ {
			dt, err := p.varint()
			if err != nil {
				return nil, err
			}
			t := dt
			if si > 0 {
				t = prevT + dt
			}
			prevT = t
			v, err := p.float()
			if err != nil {
				return nil, err
			}
			r.Samples = append(r.Samples, metric.Sample{T: t, V: v})
		}
		b.Records = append(b.Records, r)
	}
	if p.pos != len(payload) {
		return nil, fmt.Errorf("wire: %d trailing bytes after ref batch", len(payload)-p.pos)
	}
	return b, nil
}

// appendDef serializes one dictionary definition.
func appendDef(dst []byte, ref uint64, r *Record) []byte {
	dst = appendUvarint(dst, ref)
	dst = appendString(dst, r.ID.Name)
	dst = appendUvarint(dst, uint64(len(r.ID.Labels)))
	for _, l := range r.ID.Labels {
		dst = appendString(dst, l.Key)
		dst = appendString(dst, l.Value)
	}
	dst = append(dst, byte(r.Kind))
	dst = appendString(dst, string(r.Unit))
	return dst
}

// appendRefBatch serializes a FrameRefBatch payload for b, with every
// record's ref already present in refs (keyed by ID.Key()).
func appendRefBatch(dst []byte, b *Batch, refs map[string]uint64) []byte {
	out := dst
	out = appendString(out, b.Agent)
	out = appendUvarint(out, uint64(len(b.Records)))
	for i := range b.Records {
		r := &b.Records[i]
		out = appendUvarint(out, refs[r.ID.Key()])
		out = appendUvarint(out, uint64(len(r.Samples)))
		var prevT int64
		for si, sm := range r.Samples {
			if si == 0 {
				out = appendVarint(out, sm.T)
			} else {
				out = appendVarint(out, sm.T-prevT)
			}
			prevT = sm.T
			var vb [8]byte
			binary.BigEndian.PutUint64(vb[:], math.Float64bits(sm.V))
			out = append(out, vb[:]...)
		}
	}
	return out
}

// clientDict is the send side of the v2 dictionary: per-connection ref
// assignments plus reused encode scratch, reset on redial.
type clientDict struct {
	refs map[string]uint64
	next uint64
	body []byte // definition-body scratch (defs minus the count prefix)
	defs []byte // FrameDict payload scratch
	recs []byte // FrameRefBatch payload scratch
}

func newClientDict() *clientDict { return &clientDict{refs: make(map[string]uint64)} }

// sendDict encodes b as (optional) dictionary definitions plus a ref
// batch on bw, coalescing both frames into one flush. Steady state — all
// series already defined on this connection — allocates nothing.
func (d *clientDict) sendDict(bw *BatchWriter, b *Batch) error {
	ndefs := 0
	d.body = d.body[:0]
	for i := range b.Records {
		r := &b.Records[i]
		key := r.ID.Key()
		if _, ok := d.refs[key]; ok {
			continue // already defined (possibly earlier in this batch)
		}
		d.next++
		d.refs[key] = d.next
		d.body = appendDef(d.body, d.next, r)
		ndefs++
	}
	if ndefs > 0 {
		d.defs = appendUvarint(d.defs[:0], uint64(ndefs))
		d.defs = append(d.defs, d.body...)
		if err := bw.writeFrame(Version2, FrameDict, d.defs); err != nil {
			return err
		}
	}
	d.recs = appendRefBatch(d.recs[:0], b, d.refs)
	if err := bw.writeFrame(Version2, FrameRefBatch, d.recs); err != nil {
		return err
	}
	return bw.flush()
}
