package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/metric"
)

// batchesEqual compares decoded batches by identity, kind, unit and exact
// sample bits (NaN-safe), ignoring the unexported interned key on IDs.
func batchesEqual(a, b *Batch) bool {
	if a.Agent != b.Agent || len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		ra, rb := &a.Records[i], &b.Records[i]
		if ra.ID.Key() != rb.ID.Key() || ra.Kind != rb.Kind || ra.Unit != rb.Unit {
			return false
		}
		if len(ra.Samples) != len(rb.Samples) {
			return false
		}
		for j := range ra.Samples {
			if ra.Samples[j].T != rb.Samples[j].T ||
				math.Float64bits(ra.Samples[j].V) != math.Float64bits(rb.Samples[j].V) {
				return false
			}
		}
	}
	return true
}

// TestDictRoundTrip drives the client encoder against the server decoder
// directly: the first batch defines every series, the second defines none,
// and both decode to batches identical to their v1 counterparts.
func TestDictRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBatchWriter(&buf)
	d := newClientDict()
	in := sampleBatch()
	for round := 0; round < 2; round++ {
		buf.Reset()
		if err := d.sendDict(bw, in); err != nil {
			t.Fatal(err)
		}
		cd := NewConnDict()
		var got *Batch
		r := bytes.NewReader(buf.Bytes())
		for {
			ft, payload, err := ReadFrame(r)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			switch ft {
			case FrameDict:
				if round == 1 {
					t.Fatal("second send re-defined already-defined series")
				}
				n, err := cd.AddDefs(payload)
				if err != nil {
					t.Fatal(err)
				}
				if n != len(in.Records) {
					t.Fatalf("defined %d series, want %d", n, len(in.Records))
				}
			case FrameRefBatch:
				if round == 1 {
					// Fresh decoder each round: replay round 0's defs first,
					// the way a real connection's dictionary accumulates.
					var dbuf bytes.Buffer
					dbw := NewBatchWriter(&dbuf)
					d0 := newClientDict()
					if err := d0.sendDict(dbw, in); err != nil {
						t.Fatal(err)
					}
					ft0, defs0, err := ReadFrame(bytes.NewReader(dbuf.Bytes()))
					if err != nil || ft0 != FrameDict {
						t.Fatalf("no defs frame to replay: %v", err)
					}
					if _, err := cd.AddDefs(defs0); err != nil {
						t.Fatal(err)
					}
				}
				b, err := cd.DecodeRefBatch(payload)
				if err != nil {
					t.Fatal(err)
				}
				got = b
			default:
				t.Fatalf("unexpected frame type %d", ft)
			}
		}
		if got == nil || !batchesEqual(in, got) {
			t.Fatalf("round %d: decoded ref batch differs from input", round)
		}
	}
}

// TestDictDuplicateIDsInOneBatch: a batch holding two records for the same
// new series must define it exactly once and still decode both records.
func TestDictDuplicateIDsInOneBatch(t *testing.T) {
	id := metric.ID{Name: "power", Labels: metric.NewLabels("node", "n1")}
	in := &Batch{
		Agent: "a",
		Records: []Record{
			{ID: id, Kind: metric.Gauge, Unit: metric.UnitWatt, Samples: []metric.Sample{{T: 1, V: 1}}},
			{ID: id, Kind: metric.Gauge, Unit: metric.UnitWatt, Samples: []metric.Sample{{T: 2, V: 2}}},
		},
	}
	var buf bytes.Buffer
	bw := NewBatchWriter(&buf)
	d := newClientDict()
	if err := d.sendDict(bw, in); err != nil {
		t.Fatal(err)
	}
	cd := NewConnDict()
	r := bytes.NewReader(buf.Bytes())
	ft, payload, err := ReadFrame(r)
	if err != nil || ft != FrameDict {
		t.Fatalf("want dict frame, got %d (%v)", ft, err)
	}
	if n, err := cd.AddDefs(payload); err != nil || n != 1 {
		t.Fatalf("want exactly 1 def, got %d (%v)", n, err)
	}
	ft, payload, err = ReadFrame(r)
	if err != nil || ft != FrameRefBatch {
		t.Fatalf("want ref batch frame, got %d (%v)", ft, err)
	}
	got, err := cd.DecodeRefBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !batchesEqual(in, got) {
		t.Fatal("duplicate-ID batch did not round-trip")
	}
}

// TestConnDictProtocolErrors pins the hard-failure cases: redefined refs,
// undefined refs, truncated dictionaries and trailing garbage all error
// (dropping the connection) instead of guessing.
func TestConnDictProtocolErrors(t *testing.T) {
	rec := &Record{ID: metric.ID{Name: "p", Labels: metric.NewLabels("n", "1")}, Kind: metric.Gauge, Unit: metric.UnitWatt}
	def := appendDef(appendUvarint(nil, 1), 7, rec)

	t.Run("redefine", func(t *testing.T) {
		cd := NewConnDict()
		if _, err := cd.AddDefs(def); err != nil {
			t.Fatal(err)
		}
		if _, err := cd.AddDefs(def); !errors.Is(err, ErrDictRedefine) {
			t.Fatalf("want ErrDictRedefine, got %v", err)
		}
	})
	t.Run("undefined-ref", func(t *testing.T) {
		cd := NewConnDict()
		payload := appendRefBatch(nil, &Batch{Agent: "a", Records: []Record{*rec}}, map[string]uint64{rec.ID.Key(): 99})
		if _, err := cd.DecodeRefBatch(payload); !errors.Is(err, ErrUnknownRef) {
			t.Fatalf("want ErrUnknownRef, got %v", err)
		}
	})
	t.Run("truncated-dict", func(t *testing.T) {
		for cut := 1; cut < len(def); cut++ {
			cd := NewConnDict()
			if _, err := cd.AddDefs(def[:cut]); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		cd := NewConnDict()
		if _, err := cd.AddDefs(append(append([]byte(nil), def...), 0xAB)); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})
	t.Run("huge-count", func(t *testing.T) {
		cd := NewConnDict()
		if _, err := cd.AddDefs(appendUvarint(nil, 1<<40)); err == nil {
			t.Fatal("implausible def count accepted")
		}
	})
}

// TestDictClientServerEndToEnd runs the v2 protocol through the real server:
// a dict-enabled client's batches arrive at the handler identical to v1
// batches, the server counts defs and ref batches, and a redial implicitly
// renegotiates (the series re-define on the new connection).
func TestDictClientServerEndToEnd(t *testing.T) {
	var mu sync.Mutex
	var got []*Batch
	srv, err := NewServer("127.0.0.1:0", func(b *Batch) {
		mu.Lock()
		got = append(got, b)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.EnableDict()
	cl.SetTimeout(5 * time.Second)

	in := sampleBatch()
	if err := cl.Send(in); err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(in); err != nil {
		t.Fatal(err)
	}
	waitFor := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			mu.Lock()
			have := len(got)
			mu.Unlock()
			if have >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %d batches (have %d)", n, have)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(2)
	if defs := srv.DictDefs(); defs != uint64(len(in.Records)) {
		t.Fatalf("server counted %d defs, want %d (no renegotiation yet)", defs, len(in.Records))
	}
	if rb := srv.RefBatches(); rb != 2 {
		t.Fatalf("server counted %d ref batches, want 2", rb)
	}

	// Kill the transport under the client. The first Send surfaces the
	// transport error and marks the connection broken; the retry redials,
	// and the fresh connection must renegotiate the dictionary from scratch.
	cl.conn.Close()
	if err := cl.Send(in); err == nil {
		t.Fatal("send on a killed transport reported success")
	}
	if err := cl.Send(in); err != nil {
		t.Fatal(err)
	}
	waitFor(3)
	if redials := cl.Redials(); redials == 0 {
		t.Fatal("client never redialed")
	}
	if defs := srv.DictDefs(); defs != 2*uint64(len(in.Records)) {
		t.Fatalf("server counted %d defs after redial, want %d", defs, 2*len(in.Records))
	}
	mu.Lock()
	defer mu.Unlock()
	for i, b := range got {
		if !batchesEqual(in, b) {
			t.Fatalf("batch %d arrived different from what was sent", i)
		}
	}
}

// TestV1ClientStillWorks: a v1 client against the same server decodes
// unchanged — the two protocols coexist per connection.
func TestV1ClientStillWorks(t *testing.T) {
	var mu sync.Mutex
	var got []*Batch
	srv, err := NewServer("127.0.0.1:0", func(b *Batch) {
		mu.Lock()
		got = append(got, b)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	in := sampleBatch()
	if err := cl.Send(in); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		have := len(got)
		mu.Unlock()
		if have == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.DictDefs() != 0 || srv.RefBatches() != 0 {
		t.Fatal("v1 client produced v2 counters")
	}
	mu.Lock()
	defer mu.Unlock()
	if !batchesEqual(in, got[0]) {
		t.Fatal("v1 batch changed in transit")
	}
}
