package wire

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// memListener is an in-memory net.Listener: the paired dialer hands the
// server half of a net.Pipe to Accept. It proves the injectable
// dialer/listener seams carry the protocol with no real sockets.
type memListener struct {
	ch     chan net.Conn
	closed chan struct{}
}

func newMemListener() *memListener {
	return &memListener{ch: make(chan net.Conn), closed: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	return nil
}

func (l *memListener) Addr() net.Addr {
	return &net.UnixAddr{Name: "mem", Net: "mem"}
}

// dialer returns a Dialer that connects net.Pipe halves to the listener.
func (l *memListener) dialer() Dialer {
	return func(string) (net.Conn, error) {
		client, server := net.Pipe()
		select {
		case l.ch <- server:
			return client, nil
		case <-l.closed:
			client.Close()
			server.Close()
			return nil, net.ErrClosed
		}
	}
}

func TestInMemoryDialerAndListener(t *testing.T) {
	ln := newMemListener()
	var samples atomic.Uint64
	srv := NewServerListener(ln, func(b *Batch) {
		for _, r := range b.Records {
			samples.Add(uint64(len(r.Samples)))
		}
	})
	c, err := DialWith(ln.dialer(), "anywhere")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Send(sampleBatch()); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	want := uint64(3 * 4) // sampleBatch carries 4 samples
	if got := samples.Load(); got != want {
		t.Fatalf("server saw %d samples, want %d", got, want)
	}
	if srv.Batches() != 3 || srv.Errors() != 0 {
		t.Fatalf("batches=%d errors=%d", srv.Batches(), srv.Errors())
	}
}

// TestClientRedialsBrokenConn: a send that fails marks the connection
// broken, and the next send transparently redials instead of writing into
// the dead socket forever.
func TestClientRedialsBrokenConn(t *testing.T) {
	ln := newMemListener()
	srv := NewServerListener(ln, nil)
	defer srv.Close()

	var dials atomic.Uint64
	inner := ln.dialer()
	var lastServerVisible net.Conn
	dial := func(addr string) (net.Conn, error) {
		dials.Add(1)
		c, err := inner(addr)
		if err == nil {
			lastServerVisible = c
		}
		return c, err
	}
	c, err := DialWith(dial, "anywhere")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(sampleBatch()); err != nil {
		t.Fatal(err)
	}
	// Sever the connection under the client.
	lastServerVisible.Close()
	c.SetTimeout(50 * time.Millisecond)
	if err := c.Send(sampleBatch()); err == nil {
		t.Fatal("send on a severed connection should fail")
	}
	if err := c.Send(sampleBatch()); err != nil {
		t.Fatalf("send after redial: %v", err)
	}
	if got := c.Redials(); got != 1 {
		t.Fatalf("redials = %d, want 1", got)
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("dials = %d, want 2", got)
	}
}

// TestDialWithEagerError: a failing dialer surfaces at DialWith, not on
// the first Send.
func TestDialWithEagerError(t *testing.T) {
	boom := errors.New("no route")
	if _, err := DialWith(func(string) (net.Conn, error) { return nil, boom }, "x"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}
