// Package hardware models the System Hardware pillar of the virtual data
// center: compute nodes with DVFS-capable CPUs, a cubic dynamic power model,
// first-order RC thermal dynamics, fan control, sensor noise and
// temperature-accelerated Weibull failures.
//
// The models are deliberately simple but preserve the couplings the ODA
// analytics exploit: power rises with utilization and frequency cubed,
// temperature follows power with a thermal time constant, fan power rises
// with the cube of fan speed, and failure hazard grows with temperature.
package hardware

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/collector"
	"repro/internal/metric"
)

// NodeConfig describes one compute node's physical parameters.
type NodeConfig struct {
	Name string
	Rack string

	// IdlePower is the node's power draw at zero utilization, in watts.
	IdlePower float64
	// MaxDynamicPower is the extra draw at full utilization and top
	// frequency, in watts.
	MaxDynamicPower float64
	// Frequencies are the available DVFS P-states in GHz, ascending.
	Frequencies []float64
	// ThermalResistance in degC per watt between silicon and inlet air.
	ThermalResistance float64
	// ThermalTau is the thermal time constant in seconds.
	ThermalTau float64
	// MaxFanPower is the fan draw at 100% speed, in watts.
	MaxFanPower float64
	// WeibullShape and WeibullScaleHours parameterize the base failure
	// distribution; scale is the characteristic life in hours at 65 degC.
	WeibullShape      float64
	WeibullScaleHours float64
	// MemoryGiB is installed memory, used by workload placement.
	MemoryGiB float64
}

// DefaultNodeConfig returns a plausible dual-socket HPC node.
func DefaultNodeConfig(name, rack string) NodeConfig {
	return NodeConfig{
		Name:              name,
		Rack:              rack,
		IdlePower:         90,
		MaxDynamicPower:   310,
		Frequencies:       []float64{1.2, 1.6, 2.0, 2.4, 2.8},
		ThermalResistance: 0.12,
		ThermalTau:        90,
		MaxFanPower:       28,
		WeibullShape:      1.6,
		WeibullScaleHours: 9000,
		MemoryGiB:         256,
	}
}

// Load is the work a node is asked to perform during a step, produced by
// the scheduler/application layer.
type Load struct {
	// Utilization in [0,1]: fraction of cycles doing work.
	Utilization float64
	// ComputeFrac / MemoryFrac / IOFrac describe the instruction mix of the
	// running application; they sum to <= 1.
	ComputeFrac float64
	MemoryFrac  float64
	IOFrac      float64
	// NetworkSlowdown >= 1 scales effective progress down under contention.
	NetworkSlowdown float64
}

// Node is the state of one compute node.
type Node struct {
	Cfg NodeConfig

	freqIdx  int
	fanSpeed float64 // [0,1]
	temp     float64 // degC
	power    float64 // W, last computed
	energy   float64 // J accumulated
	failed   bool
	ageHours float64
	load     Load

	rng   *rand.Rand
	noise float64 // sensor noise stddev factor
}

// NewNode builds a node at ambient temperature with a deterministic RNG.
func NewNode(cfg NodeConfig, seed int64) *Node {
	if len(cfg.Frequencies) == 0 {
		cfg.Frequencies = []float64{2.0}
	}
	return &Node{
		Cfg:      cfg,
		freqIdx:  len(cfg.Frequencies) - 1,
		fanSpeed: 0.3,
		temp:     30,
		rng:      rand.New(rand.NewSource(seed)),
		noise:    0.005,
	}
}

// Name returns the node's identity.
func (n *Node) Name() string { return n.Cfg.Name }

// Failed reports whether the node has suffered a (permanent until repaired)
// hardware failure.
func (n *Node) Failed() bool { return n.failed }

// Repair clears the failed state and resets the age clock, modelling a
// component swap.
func (n *Node) Repair() {
	n.failed = false
	n.ageHours = 0
	n.temp = 30
}

// ForceFail puts the node into the failed state immediately, bypassing the
// Weibull hazard draw. Fault-injection harnesses use it to model
// correlated failures (a rack PDU trip, a coolant loop burst) that the
// independent per-node hazard cannot produce; the simulation engine then
// handles it exactly like an organic failure — jobs killed, node offlined,
// repair scheduled.
func (n *Node) ForceFail() { n.failed = true }

// Frequency returns the current DVFS frequency in GHz.
func (n *Node) Frequency() float64 { return n.Cfg.Frequencies[n.freqIdx] }

// MaxFrequency returns the top P-state in GHz.
func (n *Node) MaxFrequency() float64 {
	return n.Cfg.Frequencies[len(n.Cfg.Frequencies)-1]
}

// SetFrequencyIndex selects a P-state by index (clamped): the DVFS knob
// prescriptive ODA drives.
func (n *Node) SetFrequencyIndex(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(n.Cfg.Frequencies) {
		i = len(n.Cfg.Frequencies) - 1
	}
	n.freqIdx = i
}

// FrequencyIndex returns the current P-state index.
func (n *Node) FrequencyIndex() int { return n.freqIdx }

// NumFrequencies returns the number of P-states.
func (n *Node) NumFrequencies() int { return len(n.Cfg.Frequencies) }

// SetFanSpeed sets the fan duty cycle in [0,1].
func (n *Node) SetFanSpeed(s float64) {
	n.fanSpeed = math.Max(0.1, math.Min(1, s))
}

// FanSpeed returns the current fan duty cycle.
func (n *Node) FanSpeed() float64 { return n.fanSpeed }

// SetLoad assigns the work for subsequent steps.
func (n *Node) SetLoad(l Load) { n.load = l }

// LoadState returns the currently assigned load.
func (n *Node) LoadState() Load { return n.load }

// Power returns the node's last computed power draw in watts.
func (n *Node) Power() float64 { return n.power }

// Temperature returns the CPU temperature in degC.
func (n *Node) Temperature() float64 { return n.temp }

// Energy returns the accumulated energy in joules.
func (n *Node) Energy() float64 { return n.energy }

// Progress returns how much effective work the node performs per wall
// second under the current load: the frequency-scaled throughput the
// application layer uses to advance jobs. Memory/IO-bound fractions scale
// sub-linearly with frequency (they wait on memory or devices), which is
// exactly the lever energy-aware DVFS governors exploit.
func (n *Node) Progress() float64 {
	if n.failed || n.load.Utilization <= 0 {
		return 0
	}
	fRatio := n.Frequency() / n.MaxFrequency()
	mix := n.load
	computeShare := mix.ComputeFrac
	stalled := mix.MemoryFrac + mix.IOFrac
	if computeShare+stalled == 0 {
		computeShare = 1
	}
	// Compute-bound work scales with f; stalled work barely does.
	speed := computeShare*fRatio + stalled*(0.85+0.15*fRatio)
	slow := mix.NetworkSlowdown
	if slow < 1 {
		slow = 1
	}
	return n.load.Utilization * speed / slow
}

// Step advances the node by dt seconds with the given inlet air
// temperature, returning the power drawn during the step.
func (n *Node) Step(dt, inletTemp float64) float64 {
	if n.failed {
		n.power = 0
		return 0
	}
	fRatio := n.Frequency() / n.MaxFrequency()
	util := math.Max(0, math.Min(1, n.load.Utilization))
	// Memory-bound work draws less dynamic power than compute-bound.
	intensity := 1.0
	if s := n.load.ComputeFrac + n.load.MemoryFrac + n.load.IOFrac; s > 0 {
		intensity = (n.load.ComputeFrac*1.0 + n.load.MemoryFrac*0.7 + n.load.IOFrac*0.45) / s
	}
	dynamic := n.Cfg.MaxDynamicPower * util * intensity * fRatio * fRatio * fRatio
	fan := n.Cfg.MaxFanPower * n.fanSpeed * n.fanSpeed * n.fanSpeed
	n.power = n.Cfg.IdlePower + dynamic + fan
	n.energy += n.power * dt

	// RC thermal model toward steady state; fan speed improves the
	// effective thermal resistance.
	rEff := n.Cfg.ThermalResistance / (0.4 + 0.6*n.fanSpeed)
	target := inletTemp + (n.Cfg.IdlePower+dynamic)*rEff
	alpha := 1 - math.Exp(-dt/n.Cfg.ThermalTau)
	n.temp += (target - n.temp) * alpha

	// Failure draw: Weibull hazard accelerated by temperature (doubling
	// every 12 degC above 65), plus a steep over-temperature term past
	// 95 degC where real silicon degrades within hours.
	n.ageHours += dt / 3600
	accel := math.Pow(2, (n.temp-65)/12)
	if accel < 0.05 {
		accel = 0.05
	}
	hazard := n.hazardPerHour() * accel * dt / 3600
	if n.temp > 95 {
		hazard += (n.temp - 95) / 100 * dt / 3600
	}
	if n.rng.Float64() < hazard {
		n.failed = true
		n.power = 0
	}
	return n.power
}

func (n *Node) hazardPerHour() float64 {
	k, lambda := n.Cfg.WeibullShape, n.Cfg.WeibullScaleHours
	if n.ageHours <= 0 {
		return k / lambda * 1e-6
	}
	return k / lambda * math.Pow(n.ageHours/lambda, k-1)
}

// sensor adds multiplicative gaussian noise, as real IPMI/RAPL sensors do.
func (n *Node) sensor(v float64) float64 {
	return v * (1 + n.rng.NormFloat64()*n.noise)
}

// Source returns a collector.Source exposing the node's sensors.
func (n *Node) Source() collector.Source {
	labels := metric.NewLabels("node", n.Cfg.Name, "rack", n.Cfg.Rack)
	return collector.SourceFunc{
		SourceName: "node/" + n.Cfg.Name,
		Fn: func(now int64) []collector.Reading {
			up := 1.0
			if n.failed {
				up = 0
			}
			return []collector.Reading{
				{ID: metric.ID{Name: "node_power_watts", Labels: labels}, Kind: metric.Gauge, Unit: metric.UnitWatt, Value: n.sensor(n.power)},
				{ID: metric.ID{Name: "node_cpu_temp_celsius", Labels: labels}, Kind: metric.Gauge, Unit: metric.UnitCelsius, Value: n.sensor(n.temp)},
				{ID: metric.ID{Name: "node_cpu_freq_ghz", Labels: labels}, Kind: metric.Gauge, Unit: metric.UnitHertz, Value: n.Frequency()},
				{ID: metric.ID{Name: "node_utilization", Labels: labels}, Kind: metric.Gauge, Unit: metric.UnitPercent, Value: n.load.Utilization * 100},
				{ID: metric.ID{Name: "node_fan_speed", Labels: labels}, Kind: metric.Gauge, Unit: metric.UnitPercent, Value: n.fanSpeed * 100},
				{ID: metric.ID{Name: "node_energy_joules", Labels: labels}, Kind: metric.Counter, Unit: metric.UnitJoule, Value: n.energy},
				{ID: metric.ID{Name: "node_up", Labels: labels}, Kind: metric.Gauge, Unit: metric.UnitNone, Value: up},
			}
		},
	}
}

// String renders a one-line status.
func (n *Node) String() string {
	return fmt.Sprintf("%s: %.0fW %.1fC f=%.1fGHz util=%.0f%% failed=%v",
		n.Cfg.Name, n.power, n.temp, n.Frequency(), n.load.Utilization*100, n.failed)
}
