package hardware

import (
	"math"
	"testing"
)

func testNode() *Node {
	return NewNode(DefaultNodeConfig("n0", "r0"), 1)
}

func TestIdlePower(t *testing.T) {
	n := testNode()
	p := n.Step(1, 25)
	fan := n.Cfg.MaxFanPower * math.Pow(0.3, 3)
	want := n.Cfg.IdlePower + fan
	if math.Abs(p-want) > 1 {
		t.Fatalf("idle power = %v, want ~%v", p, want)
	}
}

func TestPowerScalesWithUtilization(t *testing.T) {
	lowN, highN := testNode(), testNode()
	lowN.SetLoad(Load{Utilization: 0.2, ComputeFrac: 1})
	highN.SetLoad(Load{Utilization: 1.0, ComputeFrac: 1})
	pl := lowN.Step(1, 25)
	ph := highN.Step(1, 25)
	if ph <= pl {
		t.Fatalf("power did not scale with utilization: %v vs %v", pl, ph)
	}
	if ph < lowN.Cfg.IdlePower+0.9*lowN.Cfg.MaxDynamicPower {
		t.Fatalf("full-load power %v too low", ph)
	}
}

func TestPowerCubicInFrequency(t *testing.T) {
	n := testNode()
	n.SetLoad(Load{Utilization: 1, ComputeFrac: 1})
	n.SetFrequencyIndex(n.NumFrequencies() - 1)
	pTop := n.Step(1, 25) - n.Cfg.IdlePower - n.Cfg.MaxFanPower*math.Pow(0.3, 3)
	n.SetFrequencyIndex(0)
	pBottom := n.Step(1, 25) - n.Cfg.IdlePower - n.Cfg.MaxFanPower*math.Pow(0.3, 3)
	ratio := n.Cfg.Frequencies[0] / n.MaxFrequency()
	wantRatio := math.Pow(ratio, 3)
	if math.Abs(pBottom/pTop-wantRatio) > 0.02 {
		t.Fatalf("dynamic power ratio = %v, want ~%v", pBottom/pTop, wantRatio)
	}
}

func TestMemoryBoundDrawsLessPower(t *testing.T) {
	cpu, mem := testNode(), testNode()
	cpu.SetLoad(Load{Utilization: 1, ComputeFrac: 1})
	mem.SetLoad(Load{Utilization: 1, MemoryFrac: 1})
	if pc, pm := cpu.Step(1, 25), mem.Step(1, 25); pm >= pc {
		t.Fatalf("memory-bound power %v >= compute-bound %v", pm, pc)
	}
}

func TestThermalConvergence(t *testing.T) {
	n := testNode()
	n.SetLoad(Load{Utilization: 1, ComputeFrac: 1})
	for i := 0; i < 1000; i++ {
		n.Step(1, 25)
		if n.Failed() {
			t.Skip("node failed under stress before convergence (acceptable stochastic path)")
		}
	}
	// Steady state: T = inlet + (idle+dyn) * Reff.
	rEff := n.Cfg.ThermalResistance / (0.4 + 0.6*n.FanSpeed())
	want := 25 + (n.Cfg.IdlePower+n.Cfg.MaxDynamicPower)*rEff
	if math.Abs(n.Temperature()-want) > 2 {
		t.Fatalf("steady temp = %v, want ~%v", n.Temperature(), want)
	}
	// Hotter inlet raises temperature.
	n2 := testNode()
	n2.SetLoad(Load{Utilization: 1, ComputeFrac: 1})
	for i := 0; i < 1000; i++ {
		n2.Step(1, 40)
		if n2.Failed() {
			t.Skip("node failed under hot inlet (acceptable stochastic path)")
		}
	}
	if n2.Temperature() <= n.Temperature() {
		t.Fatalf("hot inlet should raise temp: %v vs %v", n2.Temperature(), n.Temperature())
	}
}

func TestFanCoolsAndCosts(t *testing.T) {
	slow, fast := testNode(), testNode()
	slow.SetLoad(Load{Utilization: 1, ComputeFrac: 1})
	fast.SetLoad(Load{Utilization: 1, ComputeFrac: 1})
	slow.SetFanSpeed(0.2)
	fast.SetFanSpeed(1.0)
	for i := 0; i < 600; i++ {
		slow.Step(1, 25)
		fast.Step(1, 25)
	}
	if !slow.Failed() && !fast.Failed() {
		if fast.Temperature() >= slow.Temperature() {
			t.Fatalf("full fan should cool: %v vs %v", fast.Temperature(), slow.Temperature())
		}
		if fast.Power() <= slow.Power() {
			t.Fatalf("full fan should draw more power: %v vs %v", fast.Power(), slow.Power())
		}
	}
}

func TestProgressFrequencySensitivity(t *testing.T) {
	n := testNode()
	// Compute-bound progress scales ~linearly with frequency.
	n.SetLoad(Load{Utilization: 1, ComputeFrac: 1})
	n.SetFrequencyIndex(n.NumFrequencies() - 1)
	pTop := n.Progress()
	n.SetFrequencyIndex(0)
	pLow := n.Progress()
	wantRatio := n.Cfg.Frequencies[0] / n.MaxFrequency()
	if math.Abs(pLow/pTop-wantRatio) > 1e-9 {
		t.Fatalf("compute progress ratio = %v, want %v", pLow/pTop, wantRatio)
	}
	// Memory-bound progress barely changes.
	n.SetLoad(Load{Utilization: 1, MemoryFrac: 1})
	n.SetFrequencyIndex(0)
	mLow := n.Progress()
	n.SetFrequencyIndex(n.NumFrequencies() - 1)
	mTop := n.Progress()
	if mLow/mTop < 0.85 {
		t.Fatalf("memory-bound progress dropped too much: %v", mLow/mTop)
	}
}

func TestProgressNetworkSlowdown(t *testing.T) {
	n := testNode()
	n.SetLoad(Load{Utilization: 1, ComputeFrac: 1})
	base := n.Progress()
	n.SetLoad(Load{Utilization: 1, ComputeFrac: 1, NetworkSlowdown: 2})
	if got := n.Progress(); math.Abs(got-base/2) > 1e-9 {
		t.Fatalf("slowdown 2 progress = %v, want %v", got, base/2)
	}
}

func TestFailureUnderSustainedHeat(t *testing.T) {
	// Thermal runaway conditions must eventually fail some node.
	failures := 0
	for seed := int64(0); seed < 20; seed++ {
		n := NewNode(DefaultNodeConfig("n", "r"), seed)
		n.SetLoad(Load{Utilization: 1, ComputeFrac: 1})
		n.SetFanSpeed(0.1)
		for i := 0; i < 24*3600/10; i++ { // 24h at 10s steps, 55C inlet
			n.Step(10, 55)
			if n.Failed() {
				failures++
				break
			}
		}
	}
	if failures == 0 {
		t.Fatal("no failures after 20 node-days at extreme conditions")
	}
	// Failed node draws nothing and makes no progress.
	n := NewNode(DefaultNodeConfig("n", "r"), 3)
	n.failed = true
	if n.Step(10, 25) != 0 || n.Progress() != 0 {
		t.Fatal("failed node still active")
	}
	n.Repair()
	if n.Failed() {
		t.Fatal("repair did not clear failure")
	}
}

func TestFailureRareUnderNormalConditions(t *testing.T) {
	failures := 0
	for seed := int64(100); seed < 110; seed++ {
		n := NewNode(DefaultNodeConfig("n", "r"), seed)
		n.SetLoad(Load{Utilization: 0.6, ComputeFrac: 0.7, MemoryFrac: 0.3})
		n.SetFanSpeed(0.6)
		for i := 0; i < 24*360; i++ { // 24h at 10s steps, 22C inlet
			n.Step(10, 22)
		}
		if n.Failed() {
			failures++
		}
	}
	if failures > 2 {
		t.Fatalf("%d/10 nodes failed in one day under normal conditions", failures)
	}
}

func TestKnobClamping(t *testing.T) {
	n := testNode()
	n.SetFrequencyIndex(-5)
	if n.FrequencyIndex() != 0 {
		t.Fatal("negative index not clamped")
	}
	n.SetFrequencyIndex(99)
	if n.FrequencyIndex() != n.NumFrequencies()-1 {
		t.Fatal("large index not clamped")
	}
	n.SetFanSpeed(2)
	if n.FanSpeed() != 1 {
		t.Fatal("fan > 1 not clamped")
	}
	n.SetFanSpeed(-1)
	if n.FanSpeed() != 0.1 {
		t.Fatal("fan < 0.1 not clamped")
	}
}

func TestNodeSource(t *testing.T) {
	n := testNode()
	n.SetLoad(Load{Utilization: 0.5, ComputeFrac: 1})
	n.Step(60, 25)
	readings := n.Source().Collect(1000)
	if len(readings) != 7 {
		t.Fatalf("readings = %d", len(readings))
	}
	names := map[string]float64{}
	for _, r := range readings {
		names[r.ID.Name] = r.Value
		if node, ok := r.ID.Labels.Get("node"); !ok || node != "n0" {
			t.Fatalf("missing node label in %v", r.ID)
		}
	}
	if names["node_up"] != 1 {
		t.Fatal("node_up should be 1")
	}
	if names["node_power_watts"] <= 0 || names["node_energy_joules"] <= 0 {
		t.Fatalf("power/energy readings = %v", names)
	}
	if names["node_utilization"] != 50 {
		t.Fatalf("utilization reading = %v", names["node_utilization"])
	}
}

func TestEnergyAccumulates(t *testing.T) {
	n := testNode()
	n.SetLoad(Load{Utilization: 1, ComputeFrac: 1})
	var sum float64
	for i := 0; i < 100; i++ {
		sum += n.Step(10, 25) * 10
	}
	if math.Abs(n.Energy()-sum) > 1e-6 {
		t.Fatalf("energy = %v, want %v", n.Energy(), sum)
	}
	if n.String() == "" {
		t.Fatal("String empty")
	}
}
