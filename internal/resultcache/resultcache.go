// Package resultcache is a sharded LRU cache with per-entry TTL for
// serialized query results. The query front door keys it by the canonical
// query parameters, so repeated dashboard refreshes of the same window are
// served from memory without touching the store; the TTL bounds staleness
// against ongoing ingest (a result older than the TTL is recomputed, so a
// cached answer can lag the live store by at most that long).
package resultcache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// numShards spreads lock contention; queries hash uniformly across shards.
const numShards = 8

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // LRU pressure + TTL expiries
	Entries   int
}

// Cache is a sharded LRU+TTL result cache. The zero value is not usable;
// construct with New. A Cache with capacity 0 stores nothing (every Get
// misses), which callers use to disable caching without branching.
type Cache struct {
	shards [numShards]shard
	perCap int
	ttl    time.Duration
	now    func() time.Time

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type shard struct {
	mu    sync.Mutex
	lru   *list.List // front = most recent
	index map[string]*list.Element
}

type entry struct {
	key     string
	val     []byte
	expires time.Time
}

// Option tunes a Cache.
type Option func(*Cache)

// WithClock injects the time source (tests freeze and advance it).
func WithClock(now func() time.Time) Option {
	return func(c *Cache) { c.now = now }
}

// New builds a cache holding up to capacity entries in total, each valid
// for ttl after insertion (ttl <= 0 means entries never expire by age).
func New(capacity int, ttl time.Duration, opts ...Option) *Cache {
	c := &Cache{ttl: ttl, now: time.Now}
	if capacity > 0 {
		c.perCap = (capacity + numShards - 1) / numShards
	}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].index = make(map[string]*list.Element)
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// fnv32a hashes a cache key for shard selection.
func fnv32a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shard(key string) *shard {
	return &c.shards[fnv32a(key)%numShards]
}

// Get returns the cached value for key, or nil, false on a miss. Expired
// entries are removed on access and count as both an eviction and a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c.perCap == 0 {
		c.misses.Add(1)
		return nil, false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	el, ok := sh.index[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	en := el.Value.(*entry)
	if c.ttl > 0 && c.now().After(en.expires) {
		sh.lru.Remove(el)
		delete(sh.index, key)
		sh.mu.Unlock()
		c.evictions.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	sh.lru.MoveToFront(el)
	val := en.val
	sh.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores a value under key, evicting the shard's least-recently-used
// entry if the shard is full. The value is retained by reference; callers
// must not mutate it afterwards.
func (c *Cache) Put(key string, val []byte) {
	if c.perCap == 0 {
		return
	}
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.index[key]; ok {
		en := el.Value.(*entry)
		en.val = val
		en.expires = c.now().Add(c.ttl)
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	evicted := 0
	for sh.lru.Len() >= c.perCap {
		back := sh.lru.Back()
		sh.lru.Remove(back)
		delete(sh.index, back.Value.(*entry).key)
		evicted++
	}
	sh.index[key] = sh.lru.PushFront(&entry{key: key, val: val, expires: c.now().Add(c.ttl)})
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// Purge drops every entry (counted as evictions), e.g. after a mutation
// that invalidates historical answers wholesale.
func (c *Cache) Purge() {
	dropped := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		dropped += sh.lru.Len()
		sh.lru.Init()
		sh.index = make(map[string]*list.Element)
		sh.mu.Unlock()
	}
	if dropped > 0 {
		c.evictions.Add(uint64(dropped))
	}
}

// Stats snapshots the cache counters and current entry count.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += sh.lru.Len()
		sh.mu.Unlock()
	}
	return st
}
