package resultcache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestGetPutLRU(t *testing.T) {
	c := New(numShards, time.Minute) // one entry per shard
	c.Put("a", []byte("1"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	// A second key landing in the same shard evicts the first.
	evictKey := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == c.shard("a") && k != "a" {
			evictKey = k
			break
		}
	}
	c.Put(evictKey, []byte("2"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("LRU did not evict the older same-shard entry")
	}
	st := c.Stats()
	if st.Evictions == 0 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(64, time.Second, WithClock(func() time.Time { return now }))
	c.Put("a", []byte("1"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Get("a"); ok {
		t.Fatal("expired entry served")
	}
	if st := c.Stats(); st.Entries != 0 || st.Evictions != 1 {
		t.Fatalf("expiry not collected: %+v", st)
	}
	// Put refreshes the deadline.
	c.Put("a", []byte("2"))
	now = now.Add(500 * time.Millisecond)
	if v, ok := c.Get("a"); !ok || string(v) != "2" {
		t.Fatalf("refreshed entry missed: %q, %v", v, ok)
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0, time.Minute)
	c.Put("a", []byte("1"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("capacity-0 cache stored something")
	}
}

func TestPurge(t *testing.T) {
	c := New(64, time.Minute)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	c.Purge()
	if st := c.Stats(); st.Entries != 0 || st.Evictions != 10 {
		t.Fatalf("purge: %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(128, time.Minute)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%64)
				if i%3 == 0 {
					c.Put(k, []byte(k))
				} else if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("value corruption: key %s got %q", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
