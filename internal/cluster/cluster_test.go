package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/metric"
	"repro/internal/persist"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

// --- in-memory multi-node network -----------------------------------------
//
// memNet is a tiny address-keyed fabric over net.Pipe: each node registers a
// listener under its address and the shared dialer connects pipe halves. A
// node can be marked dead (dials refused) to simulate a crash, and revived
// under the same address. net.Pipe writes are synchronous — a frame is
// consumed by the server's reader before Send returns — which, combined with
// the server handling frames on one connection sequentially, makes a ping
// round trip a full barrier: pong received means every earlier batch on that
// connection was applied.

type memNet struct {
	mu   sync.Mutex
	lns  map[string]*memLn
	dead map[string]bool
}

func newMemNet() *memNet {
	return &memNet{lns: make(map[string]*memLn), dead: make(map[string]bool)}
}

type memLn struct {
	addr   string
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func (l *memLn) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memLn) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *memLn) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (memAddr) Network() string  { return "mem" }
func (a memAddr) String() string { return string(a) }

// listen registers (or replaces, on revival) the listener for addr.
func (n *memNet) listen(addr string) *memLn {
	l := &memLn{addr: addr, ch: make(chan net.Conn, 16), closed: make(chan struct{})}
	n.mu.Lock()
	n.lns[addr] = l
	n.mu.Unlock()
	return l
}

func (n *memNet) dialer() wire.Dialer {
	return func(addr string) (net.Conn, error) {
		n.mu.Lock()
		l, dead := n.lns[addr], n.dead[addr]
		n.mu.Unlock()
		if l == nil || dead {
			return nil, fmt.Errorf("memnet: %s unreachable", addr)
		}
		client, server := net.Pipe()
		select {
		case l.ch <- server:
			return client, nil
		case <-l.closed:
			client.Close()
			server.Close()
			return nil, net.ErrClosed
		}
	}
}

func (n *memNet) setDead(addr string, dead bool) {
	n.mu.Lock()
	n.dead[addr] = dead
	n.mu.Unlock()
}

// --- test cluster ----------------------------------------------------------

type testNode struct {
	id      string
	addr    string
	store   *timeseries.Store
	durable *persist.DurableStore
	router  *Router
	srv     *Server
}

// kill severs the node from the fabric: dials are refused and its server
// (with every live connection) is torn down. The node's stores stay
// readable in-process so tests can use them as oracles.
func (n *testNode) kill(net *memNet) {
	net.setDead(n.addr, true)
	n.srv.Close()
}

// revive brings the node back under the same address with a fresh listener.
func (n *testNode) revive(net *memNet, t testing.TB) {
	t.Helper()
	net.setDead(n.addr, false)
	n.srv = NewServer(net.listen(n.addr), n.router)
}

// startCluster builds one router+server per node over a shared memNet.
// durable=true gives every node a WAL-backed store (required for
// replication); tweak, when non-nil, adjusts each node's Config.
func startCluster(t testing.TB, ids []string, rf int, durable bool, tweak func(*Config)) (map[string]*testNode, *memNet) {
	t.Helper()
	fabric := newMemNet()
	peers := make([]Peer, len(ids))
	for i, id := range ids {
		peers[i] = Peer{ID: id, Addr: "mem://" + id}
	}
	nodes := make(map[string]*testNode, len(ids))
	for _, id := range ids {
		n := &testNode{id: id, addr: "mem://" + id}
		var local Appender
		if durable {
			d, err := persist.Open(t.TempDir(), persist.Options{ChunkSize: 16, Fsync: persist.FsyncAlways})
			if err != nil {
				t.Fatalf("persist.Open(%s): %v", id, err)
			}
			n.durable = d
			n.store = d.Store()
			local = d
		} else {
			n.store = timeseries.NewStore(16)
			local = n.store
		}
		cfg := Config{
			Self:        id,
			Peers:       peers,
			Replication: rf,
			Dial:        fabric.dialer(),
			Local:       local,
			Store:       n.store,
			Durable:     n.durable,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		r, err := New(cfg)
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", id, err)
		}
		n.router = r
		n.srv = NewServer(fabric.listen(n.addr), r)
		nodes[id] = n
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.router.Stop()
			n.srv.Close()
			if n.durable != nil {
				_ = n.durable.Close()
			}
		}
	})
	return nodes, fabric
}

// settle flushes every router's forward buffers and runs one health-check
// round. The ping in CheckPeers rides the same connection as the batches and
// the server handles frames sequentially, so when settle returns every
// forwarded entry has been applied on its owner.
func settle(nodes map[string]*testNode) {
	for _, n := range nodes {
		n.router.Flush()
	}
	for _, n := range nodes {
		n.router.CheckPeers()
	}
}

// --- deterministic dataset ---------------------------------------------------

type dataset struct {
	keys    []string
	entries []timeseries.BatchEntry
	from    int64
	to      int64
}

// makeDataset builds nSeries series with nSamples each: irregular timestamps
// (500..1500ms apart), signed fractional values, interleaved round-robin so
// per-series time order survives any batch split.
func makeDataset(nSeries, nSamples int, seed int64) *dataset {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]metric.ID, nSeries)
	for i := range ids {
		ids[i] = metric.ID{
			Name:   fmt.Sprintf("cluster.metric.%02d", i),
			Labels: metric.NewLabels("host", fmt.Sprintf("h%d", i%7)),
		}
	}
	ds := &dataset{from: 0}
	ts := make([]int64, nSeries)
	for i := range ts {
		ts[i] = int64(1000 + 7*i)
	}
	for j := 0; j < nSamples; j++ {
		for i, id := range ids {
			ts[i] += int64(500 + rng.Intn(1000))
			ds.entries = append(ds.entries, timeseries.BatchEntry{
				ID: id, Kind: metric.Gauge, Unit: metric.UnitWatt,
				T: ts[i], V: rng.Float64()*200 - 100,
			})
			if ts[i] >= ds.to {
				ds.to = ts[i] + 1
			}
		}
	}
	for _, id := range ids {
		ds.keys = append(ds.keys, id.Key())
	}
	return ds
}

// feed pushes the dataset through coordinator's router in modest batches
// (exercising the per-peer buffer/flush machinery) and settles the cluster.
func feed(t testing.TB, nodes map[string]*testNode, coordinator string, ds *dataset) {
	t.Helper()
	r := nodes[coordinator].router
	total := 0
	for i := 0; i < len(ds.entries); i += 97 {
		end := i + 97
		if end > len(ds.entries) {
			end = len(ds.entries)
		}
		n, err := r.AppendBatch(ds.entries[i:end])
		if err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
		total += n
	}
	if total != len(ds.entries) {
		t.Fatalf("coordinator accepted %d of %d entries", total, len(ds.entries))
	}
	settle(nodes)
}

// --- ingest routing ----------------------------------------------------------

func TestClusterIngestRoutesToPrimaries(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes, _ := startCluster(t, ids, 1, false, nil)
	ds := makeDataset(30, 20, 11)
	feed(t, nodes, "n1", ds)

	ring := nodes["n1"].router.Ring()
	perOwner := map[string]int{}
	for _, k := range ds.keys {
		perOwner[ring.Primary(k)]++
	}
	for _, id := range ids {
		if perOwner[id] == 0 {
			t.Fatalf("node %s owns no series; dataset too small to exercise routing", id)
		}
	}

	// Every sample lives on exactly its primary: totals conserve and no
	// non-owner ever saw the series.
	totalStored := 0
	for _, n := range nodes {
		totalStored += n.store.NumSamples()
	}
	if totalStored != len(ds.entries) {
		t.Fatalf("stored %d samples, fed %d", totalStored, len(ds.entries))
	}
	for _, k := range ds.keys {
		owner := ring.Primary(k)
		for id, n := range nodes {
			_, ok := n.store.IDForKey(k)
			if (id == owner) != ok {
				t.Fatalf("key %q: present=%v on node %s, owner is %s", k, ok, id, owner)
			}
		}
	}

	// The coordinator's ledger: local + forwarded == fed, and the remote
	// nodes' received counters account for every forwarded entry.
	st := nodes["n1"].router.Stats()
	if st.LocalEntries+st.ForwardedEntries != uint64(len(ds.entries)) {
		t.Fatalf("ledger: local %d + forwarded %d != fed %d", st.LocalEntries, st.ForwardedEntries, len(ds.entries))
	}
	var received uint64
	for _, id := range ids[1:] {
		received += nodes[id].router.Stats().ReceivedEntries
	}
	if received != st.ForwardedEntries {
		t.Fatalf("peers received %d, coordinator forwarded %d", received, st.ForwardedEntries)
	}
}

// --- distributed query parity (the acceptance gate) --------------------------

var mergeableFns = []timeseries.AggFunc{
	timeseries.AggMean, timeseries.AggSum, timeseries.AggMin,
	timeseries.AggMax, timeseries.AggCount, timeseries.AggRate,
}

var ownerRoutedFns = []timeseries.AggFunc{timeseries.AggStd, timeseries.AggP95}

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestClusterQueryParityBitIdentical is the core guarantee: a 3-node cluster
// answers every planner function bit-identically (math.Float64bits) to a
// single store holding all the data — from any coordinator, over full,
// partial and empty windows, for single-series, owner-routed (std/p95) and
// scatter-merged multi-series queries.
func TestClusterQueryParityBitIdentical(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes, _ := startCluster(t, ids, 1, false, nil)
	ds := makeDataset(24, 40, 23)

	ref := timeseries.NewStore(16)
	if _, err := ref.AppendBatch(ds.entries); err != nil {
		t.Fatalf("reference store: %v", err)
	}
	feed(t, nodes, "n1", ds)

	windows := []struct {
		name     string
		from, to int64
	}{
		{"full", ds.from, ds.to},
		{"mid", ds.from + (ds.to-ds.from)/5, ds.to - (ds.to-ds.from)/5},
		{"empty", ds.to + 1000, ds.to + 50000},
	}
	step := (ds.to - ds.from) / 7

	for _, w := range windows {
		for coord, n := range nodes {
			r := n.router
			for _, fn := range append(append([]timeseries.AggFunc(nil), mergeableFns...), ownerRoutedFns...) {
				for _, key := range ds.keys {
					id, ok := ref.IDForKey(key)
					if !ok {
						t.Fatalf("reference lost key %q", key)
					}
					wantV, wantN, refErr := ref.ReducePlanned(id, w.from, w.to, fn)
					gotV, gotN, _, found, partial, err := r.Reduce(key, w.from, w.to, fn)
					if refErr != nil {
						// e.g. p95 over an empty window: the single store
						// errors, so the cluster must surface an error too,
						// never a made-up value.
						if err == nil {
							t.Fatalf("[%s %s %s] Reduce(%q) = (%v, %d), but single-store errors: %v",
								w.name, coord, fn, key, gotV, gotN, refErr)
						}
						continue
					}
					if err != nil {
						t.Fatalf("[%s %s %s] Reduce(%q): %v", w.name, coord, fn, key, err)
					}
					if !found || partial {
						t.Fatalf("[%s %s %s] Reduce(%q): found=%v partial=%v, want exact hit", w.name, coord, fn, key, found, partial)
					}
					if !bitsEq(gotV, wantV) || gotN != wantN {
						t.Fatalf("[%s %s %s] Reduce(%q) = (%v, %d), single-store = (%v, %d); bits %016x vs %016x",
							w.name, coord, fn, key, gotV, gotN, wantV, wantN,
							math.Float64bits(gotV), math.Float64bits(wantV))
					}

					wantPts, err := ref.AggregatePlanned(id, w.from, w.to, step, fn)
					if err != nil {
						t.Fatalf("ref aggregate: %v", err)
					}
					gotPts, _, found, partial, err := r.AggregateRange(key, w.from, w.to, step, fn)
					if err != nil {
						t.Fatalf("[%s %s %s] AggregateRange(%q): %v", w.name, coord, fn, key, err)
					}
					if !found || partial {
						t.Fatalf("[%s %s %s] AggregateRange(%q): found=%v partial=%v", w.name, coord, fn, key, found, partial)
					}
					comparePoints(t, fmt.Sprintf("[%s %s %s] AggregateRange(%q)", w.name, coord, fn, key), gotPts, wantPts)
				}
			}

			// Value sweeps route whole to the owner.
			for _, key := range ds.keys {
				id, _ := ref.IDForKey(key)
				want, err := ref.SeriesValuesPlanned(id, w.from, w.to, step)
				if err != nil {
					t.Fatalf("ref values: %v", err)
				}
				got, found, partial, err := r.SeriesValues(key, w.from, w.to, step)
				if err != nil || !found || partial {
					t.Fatalf("[%s %s] SeriesValues(%q): %v found=%v partial=%v", w.name, coord, key, err, found, partial)
				}
				if len(got) != len(want) {
					t.Fatalf("[%s %s] SeriesValues(%q): %d values, want %d", w.name, coord, key, len(got), len(want))
				}
				for i := range got {
					if !bitsEq(got[i], want[i]) {
						t.Fatalf("[%s %s] SeriesValues(%q)[%d]: bits %016x vs %016x",
							w.name, coord, key, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
					}
				}
			}

			// Scatter-merged multi-series queries against the merge oracles.
			for _, fn := range mergeableFns {
				wantV, wantN, err := MergedReduce(ref, ds.keys, w.from, w.to, fn)
				if err != nil {
					t.Fatalf("MergedReduce: %v", err)
				}
				gotV, gotN, partialPeers, err := r.ReduceMany(ds.keys, w.from, w.to, fn)
				if err != nil {
					t.Fatalf("[%s %s %s] ReduceMany: %v", w.name, coord, fn, err)
				}
				if len(partialPeers) != 0 {
					t.Fatalf("[%s %s %s] ReduceMany degraded: %v", w.name, coord, fn, partialPeers)
				}
				if !bitsEq(gotV, wantV) || gotN != wantN {
					t.Fatalf("[%s %s %s] ReduceMany = (%v, %d), oracle = (%v, %d); bits %016x vs %016x",
						w.name, coord, fn, gotV, gotN, wantV, wantN,
						math.Float64bits(gotV), math.Float64bits(wantV))
				}

				wantPts, err := MergedAggregate(ref, ds.keys, w.from, w.to, step, fn)
				if err != nil {
					t.Fatalf("MergedAggregate: %v", err)
				}
				gotPts, partialPeers, err := r.AggregateMany(ds.keys, w.from, w.to, step, fn)
				if err != nil {
					t.Fatalf("[%s %s %s] AggregateMany: %v", w.name, coord, fn, err)
				}
				if len(partialPeers) != 0 {
					t.Fatalf("[%s %s %s] AggregateMany degraded: %v", w.name, coord, fn, partialPeers)
				}
				comparePoints(t, fmt.Sprintf("[%s %s %s] AggregateMany", w.name, coord, fn), gotPts, wantPts)
			}
		}
	}

	// Non-mergeable functions refuse to scatter instead of answering wrong.
	if _, _, _, err := nodes["n1"].router.ReduceMany(ds.keys, ds.from, ds.to, timeseries.AggStd); err == nil {
		t.Fatal("ReduceMany(std) must refuse: std does not merge across peers")
	}
	// Unknown series: found=false everywhere, no error.
	for coord, n := range nodes {
		if _, _, _, found, _, err := n.router.Reduce("no.such.series", ds.from, ds.to, timeseries.AggMean); err != nil || found {
			t.Fatalf("coordinator %s: unknown series gave found=%v err=%v", coord, found, err)
		}
	}
}

func comparePoints(t *testing.T, label string, got, want []timeseries.AggPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d (%v vs %v)", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Start != want[i].Start || !bitsEq(got[i].Value, want[i].Value) {
			t.Fatalf("%s: point %d = {%d %v}, want {%d %v}; bits %016x vs %016x",
				label, i, got[i].Start, got[i].Value, want[i].Start, want[i].Value,
				math.Float64bits(got[i].Value), math.Float64bits(want[i].Value))
		}
	}
}

// --- hinted handoff ----------------------------------------------------------

// entriesFor builds an in-order run of samples for one key at the given
// timestamps.
func entriesFor(key metric.ID, ts []int64, base float64) []timeseries.BatchEntry {
	out := make([]timeseries.BatchEntry, len(ts))
	for i, tt := range ts {
		out[i] = timeseries.BatchEntry{ID: key, Kind: metric.Gauge, Unit: metric.UnitWatt, T: tt, V: base + float64(i)}
	}
	return out
}

// keyOwnedBy finds a metric ID whose primary is the wanted node.
func keyOwnedBy(t *testing.T, ring *Ring, owner string) metric.ID {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := metric.ID{Name: fmt.Sprintf("handoff.metric.%d", i)}
		if ring.Primary(id.Key()) == owner {
			return id
		}
	}
	t.Fatalf("no key maps to %s", owner)
	return metric.ID{}
}

func TestClusterHintedHandoffDrainsInOrder(t *testing.T) {
	nodes, fabric := startCluster(t, []string{"n1", "n2", "n3"}, 1, false, nil)
	n1, n2 := nodes["n1"], nodes["n2"]
	id := keyOwnedBy(t, n1.router.Ring(), "n2")

	// Healthy delivery first, so the wire client is dialed and the failure
	// below exercises the broken-connection path, not first-dial.
	if _, err := n1.router.AppendBatch(entriesFor(id, []int64{1000, 2000}, 1)); err != nil {
		t.Fatal(err)
	}
	settle(nodes)
	if got := n2.store.NumSamples(); got != 2 {
		t.Fatalf("pre-kill delivery: owner has %d samples, want 2", got)
	}

	// Kill the owner. Subsequent appends park as hints, in arrival order.
	n2.kill(fabric)
	for i, ts := range [][]int64{{3000, 4000}, {5000, 6000}, {7000}} {
		if _, err := n1.router.AppendBatch(entriesFor(id, ts, float64(10*i))); err != nil {
			t.Fatal(err)
		}
		n1.router.Flush()
	}
	if hints := n1.router.PendingHints(); hints != 3 {
		t.Fatalf("pending hints = %d, want 3", hints)
	}
	n1.router.CheckPeers() // ping fails; hints must survive
	if hints := n1.router.PendingHints(); hints != 3 {
		t.Fatalf("hints after failed check = %d, want 3", hints)
	}
	var peerUp bool
	for _, ps := range n1.router.Stats().Peers {
		if ps.ID == "n2" {
			peerUp = ps.Up
		}
	}
	if peerUp {
		t.Fatal("dead peer still marked up after failed probe")
	}

	// Revive and probe: hints drain FIFO. Out-of-order replay would be
	// rejected by the store, so a full sample count proves order held.
	n2.revive(fabric, t)
	n1.router.CheckPeers()
	n1.router.CheckPeers() // second ping = barrier: the last drained batch is applied
	if hints := n1.router.PendingHints(); hints != 0 {
		t.Fatalf("hints after drain = %d, want 0", hints)
	}
	if dropped := n1.router.DroppedHintEntries(); dropped != 0 {
		t.Fatalf("dropped %d hint entries, want 0", dropped)
	}
	if got := n2.store.NumSamples(); got != 7 {
		t.Fatalf("after drain: owner has %d samples, want 7 (out-of-order replay rejected?)", got)
	}

	// Fresh traffic flows directly again.
	if _, err := n1.router.AppendBatch(entriesFor(id, []int64{8000}, 99)); err != nil {
		t.Fatal(err)
	}
	settle(nodes)
	if got := n2.store.NumSamples(); got != 8 {
		t.Fatalf("post-recovery delivery: %d samples, want 8", got)
	}
}

func TestClusterHintOverflowDropsNewest(t *testing.T) {
	nodes, fabric := startCluster(t, []string{"n1", "n2", "n3"}, 1, false, func(c *Config) {
		c.MaxHintBatches = 2
	})
	n1, n2 := nodes["n1"], nodes["n2"]
	id := keyOwnedBy(t, n1.router.Ring(), "n2")

	n2.kill(fabric)
	for i, ts := range [][]int64{{1000, 1100}, {2000, 2100}, {3000, 3100, 3200}} {
		if _, err := n1.router.AppendBatch(entriesFor(id, ts, float64(i))); err != nil {
			t.Fatal(err)
		}
		n1.router.Flush()
	}
	// Queue holds the two oldest batches; the third (newest, 3 entries) was
	// dropped and counted.
	if hints := n1.router.PendingHints(); hints != 2 {
		t.Fatalf("pending hints = %d, want 2", hints)
	}
	if dropped := n1.router.DroppedHintEntries(); dropped != 3 {
		t.Fatalf("dropped entries = %d, want 3 (the newest batch)", dropped)
	}

	n2.revive(fabric, t)
	n1.router.CheckPeers()
	n1.router.CheckPeers() // ping barrier: drained batches fully applied
	// The two oldest batches (4 samples, t=1000..2100) survived.
	if got := n2.store.NumSamples(); got != 4 {
		t.Fatalf("after drain: %d samples, want 4 (oldest data must survive overflow)", got)
	}
}

// --- WAL-shipping replication and failover ------------------------------------

func TestClusterReplicationAndFailover(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes, fabric := startCluster(t, ids, 2, true, nil)
	ds := makeDataset(18, 30, 31)

	ref := timeseries.NewStore(16)
	if _, err := ref.AppendBatch(ds.entries); err != nil {
		t.Fatal(err)
	}
	feed(t, nodes, "n1", ds)
	for _, n := range nodes {
		n.router.PumpReplication()
	}

	// Every follower converged: lag 0 and a replica store whose contents
	// match the leader's primary store sample for sample.
	ring := nodes["n1"].router.Ring()
	for _, n := range nodes {
		for _, leader := range ring.Leaders(n.id) {
			if lag := n.router.ReplicationLag(leader); lag != 0 {
				t.Fatalf("%s lags %s by %d bytes after pump-at-quiesce", n.id, leader, lag)
			}
			rep, ok := n.router.ReplicaOf(leader)
			if !ok {
				t.Fatalf("%s holds no bootstrapped replica of %s", n.id, leader)
			}
			lst := nodes[leader].store
			if rep.NumSeries() != lst.NumSeries() || rep.NumSamples() != lst.NumSamples() {
				t.Fatalf("replica of %s on %s: %d series/%d samples, leader has %d/%d",
					leader, n.id, rep.NumSeries(), rep.NumSamples(), lst.NumSeries(), lst.NumSamples())
			}
			for _, key := range ds.keys {
				lid, ok := lst.IDForKey(key)
				if !ok {
					continue
				}
				rid, ok := rep.IDForKey(key)
				if !ok {
					t.Fatalf("replica of %s missing key %q", leader, key)
				}
				wv, wn, err := lst.ReducePlanned(lid, ds.from, ds.to, timeseries.AggSum)
				if err != nil {
					t.Fatal(err)
				}
				gv, gn, err := rep.ReducePlanned(rid, ds.from, ds.to, timeseries.AggSum)
				if err != nil {
					t.Fatal(err)
				}
				if !bitsEq(gv, wv) || gn != wn {
					t.Fatalf("replica of %s diverges on %q: (%v,%d) vs (%v,%d)", leader, key, gv, gn, wv, wn)
				}
			}
		}
	}

	// Kill n2 and query a key it owns: the coordinator falls back to n2's
	// follower's replica, marks the answer partial, and — because the
	// replica was fully caught up — still answers bit-identically.
	var victimKey string
	for _, k := range ds.keys {
		if ring.Primary(k) == "n2" {
			victimKey = k
			break
		}
	}
	if victimKey == "" {
		t.Fatal("no key owned by n2; grow the dataset")
	}
	follower := ring.Followers("n2")[0]
	nodes["n2"].kill(fabric)

	for _, coord := range []string{"n1", "n3", follower} {
		r := nodes[coord].router
		id, _ := ref.IDForKey(victimKey)
		wantV, wantN, err := ref.ReducePlanned(id, ds.from, ds.to, timeseries.AggMean)
		if err != nil {
			t.Fatal(err)
		}
		gotV, gotN, _, found, partial, err := r.Reduce(victimKey, ds.from, ds.to, timeseries.AggMean)
		if err != nil {
			t.Fatalf("coordinator %s: failover Reduce: %v", coord, err)
		}
		if !found || !partial {
			t.Fatalf("coordinator %s: failover Reduce found=%v partial=%v, want found and partial", coord, found, partial)
		}
		if !bitsEq(gotV, wantV) || gotN != wantN {
			t.Fatalf("coordinator %s: failover Reduce = (%v,%d), want (%v,%d)", coord, gotV, gotN, wantV, wantN)
		}
	}
	// The follower served at least one of those from its local replica store.
	if rr := nodes[follower].router.Stats().ReplicaReads; rr == 0 {
		t.Fatalf("follower %s never read its replica store", follower)
	}

	// Scatter with a peer down: exact merge over surviving partials, the
	// dead owner reported — the degradation is visible, never silent.
	wantV, wantN, err := MergedReduce(ref, ds.keys, ds.from, ds.to, timeseries.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	gotV, gotN, partialPeers, err := nodes["n1"].router.ReduceMany(ds.keys, ds.from, ds.to, timeseries.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(partialPeers) != 1 || partialPeers[0] != "n2" {
		t.Fatalf("partialPeers = %v, want [n2]", partialPeers)
	}
	if !bitsEq(gotV, wantV) || gotN != wantN {
		t.Fatalf("scatter with replica fallback = (%v,%d), oracle = (%v,%d)", gotV, gotN, wantV, wantN)
	}
}

func TestClusterReplicaResetRebootstrapsAndSegmentGone(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes, _ := startCluster(t, ids, 2, true, nil)
	ds := makeDataset(8, 20, 47)
	feed(t, nodes, "n1", ds)
	for _, n := range nodes {
		n.router.PumpReplication()
	}

	// Find a follower → leader edge to abuse.
	ring := nodes["n1"].router.Ring()
	var follower, leader string
	for _, n := range nodes {
		if ls := ring.Leaders(n.id); len(ls) > 0 {
			follower, leader = n.id, ls[0]
			break
		}
	}
	fr := nodes[follower].router

	// A reset replica reports lag -1 (not following) and re-bootstraps from
	// a fresh snapshot on the next pump.
	if !fr.ResetReplica(leader) {
		t.Fatalf("%s should hold a replica of %s", follower, leader)
	}
	if lag := fr.ReplicationLag(leader); lag != -1 {
		t.Fatalf("reset replica lag = %d, want -1", lag)
	}
	fr.PumpReplication()
	if lag := fr.ReplicationLag(leader); lag != 0 {
		t.Fatalf("re-bootstrap lag = %d, want 0", lag)
	}
	rep, ok := fr.ReplicaOf(leader)
	if !ok || rep.NumSamples() != nodes[leader].store.NumSamples() {
		t.Fatalf("re-bootstrapped replica incomplete: ok=%v", ok)
	}

	// SegmentGone: the leader appends more and checkpoints, garbage
	// collecting the WAL segments behind the follower's cursor. The next
	// pull sees SegmentGone, drops to un-bootstrapped, and the pump after
	// that recovers via snapshot. Writing directly to the leader's durable
	// store keeps the appends off the wire (the leader is the primary for
	// whatever keys these hash to or not — irrelevant, replication ships the
	// whole WAL).
	lid := metric.ID{Name: "segment.gone.probe"}
	var lt int64 = 1
	appendLocal := func(k int) {
		var es []timeseries.BatchEntry
		for i := 0; i < k; i++ {
			es = append(es, timeseries.BatchEntry{ID: lid, Kind: metric.Gauge, Unit: metric.UnitWatt, T: lt * 1000, V: float64(lt)})
			lt++
		}
		if _, err := nodes[leader].durable.AppendBatch(es); err != nil {
			t.Fatal(err)
		}
	}
	appendLocal(64)
	if err := nodes[leader].durable.Checkpoint(); err != nil {
		t.Fatalf("leader checkpoint: %v", err)
	}
	appendLocal(8)

	fr.PumpReplication() // observes SegmentGone, un-bootstraps
	fr.PumpReplication() // re-bootstraps from the post-checkpoint snapshot
	if lag := fr.ReplicationLag(leader); lag != 0 {
		t.Fatalf("lag after SegmentGone recovery = %d, want 0", lag)
	}
	rep, ok = fr.ReplicaOf(leader)
	if !ok {
		t.Fatal("replica not bootstrapped after SegmentGone recovery")
	}
	if rep.NumSamples() != nodes[leader].store.NumSamples() {
		t.Fatalf("replica has %d samples, leader %d", rep.NumSamples(), nodes[leader].store.NumSamples())
	}
}

// --- degenerate shapes ---------------------------------------------------------

// A single-node "cluster" must behave exactly like a standalone store: the
// no-peer fast path appends locally and queries never touch the network.
func TestClusterSingleNodeIsStandalone(t *testing.T) {
	nodes, _ := startCluster(t, []string{"solo"}, 1, false, nil)
	r := nodes["solo"].router
	ds := makeDataset(5, 10, 3)

	ref := timeseries.NewStore(16)
	if _, err := ref.AppendBatch(ds.entries); err != nil {
		t.Fatal(err)
	}
	if n, err := r.AppendBatch(ds.entries); err != nil || n != len(ds.entries) {
		t.Fatalf("solo append: %d, %v", n, err)
	}
	for _, key := range ds.keys {
		id, _ := ref.IDForKey(key)
		wantV, wantN, _ := ref.ReducePlanned(id, ds.from, ds.to, timeseries.AggMean)
		gotV, gotN, _, found, partial, err := r.Reduce(key, ds.from, ds.to, timeseries.AggMean)
		if err != nil || !found || partial {
			t.Fatalf("solo Reduce(%q): %v found=%v partial=%v", key, err, found, partial)
		}
		if !bitsEq(gotV, wantV) || gotN != wantN {
			t.Fatalf("solo Reduce(%q) diverges from plain store", key)
		}
	}
	st := r.Stats()
	if len(st.Peers) != 0 || st.ForwardedEntries != 0 || st.ScatterQueries != 0 {
		t.Fatalf("solo node touched the network: %+v", st)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	store := timeseries.NewStore(16)
	base := Config{
		Self:  "n1",
		Peers: []Peer{{ID: "n1", Addr: "a"}, {ID: "n2", Addr: "b"}},
		Local: store, Store: store,
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.Self = "ghost"
	if _, err := New(bad); err == nil {
		t.Fatal("self outside peer set must be rejected")
	}
	bad = base
	bad.Peers = []Peer{{ID: "n1", Addr: "a"}, {ID: "n1", Addr: "b"}}
	if _, err := New(bad); err == nil {
		t.Fatal("duplicate peer IDs must be rejected")
	}
	bad = base
	bad.Local = nil
	if _, err := New(bad); err == nil {
		t.Fatal("nil Local must be rejected")
	}
}
