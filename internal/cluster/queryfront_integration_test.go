package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/queryfront"
)

// TestQueryFrontDegradesThenFails drives the HTTP front door against a real
// cluster through the failure ladder: a healthy cluster answers exact (no
// partial header), losing an owner degrades to its replica (200 with the
// owner named exactly once in X-ODA-Partial), and losing the replica too is
// an explicit 503 — never an empty 200 a dashboard would render as "no
// data".
func TestQueryFrontDegradesThenFails(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes, fabric := startCluster(t, ids, 2, true, nil)
	ds := makeDataset(30, 12, 17)
	feed(t, nodes, "n1", ds)
	for i := 0; i < 3; i++ {
		for _, n := range nodes {
			n.router.PumpReplication()
		}
	}

	// Pick a key and the unique node that neither owns nor replicates it:
	// that node coordinates, so every answer crosses the wire.
	ring := nodes["n1"].router.Ring()
	var key, owner, follower, coord string
	for _, k := range ds.keys {
		o := ring.Primary(k)
		fs := ring.Followers(o)
		if len(fs) != 1 {
			t.Fatalf("want exactly one follower for %s at rf=2, got %v", o, fs)
		}
		for _, id := range ids {
			if id != o && id != fs[0] {
				key, owner, follower, coord = k, o, fs[0], id
			}
		}
		if key != "" {
			break
		}
	}

	qf := queryfront.New(nodes[coord].router, 64, time.Minute, 1000, 1000)
	query := func(from, to int64) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		target := fmt.Sprintf("/query?series=%s&from=%d&to=%d", url.QueryEscape(key), from, to)
		qf.HandleQuery(rec, httptest.NewRequest("GET", target, nil))
		return rec
	}

	// Healthy: exact answer, no partial marker. Vary the window per stage so
	// the result cache never masks a later, degraded answer.
	rec := query(ds.from, ds.to)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy query: status %d: %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get("X-ODA-Partial"); h != "" {
		t.Fatalf("healthy query marked partial: %q", h)
	}

	// Owner down: the replica answers, and the header names the owner
	// exactly once.
	nodes[owner].kill(fabric)
	rec = query(ds.from, ds.to+1)
	if rec.Code != http.StatusOK {
		t.Fatalf("replica fallback: status %d: %s", rec.Code, rec.Body.String())
	}
	if h := rec.Header().Get("X-ODA-Partial"); h != owner {
		t.Fatalf("X-ODA-Partial = %q, want the dead owner %q exactly once", h, owner)
	}

	// Owner AND its only replica down: explicit 503 with a reason, never an
	// empty 200.
	nodes[follower].kill(fabric)
	rec = query(ds.from, ds.to+2)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unreachable key: status %d (body %q), want 503", rec.Code, rec.Body.String())
	}
	if rec.Body.Len() == 0 {
		t.Fatal("503 must carry the failure reason, got an empty body")
	}
}
