package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// rpcClient is a request/response connection to one peer, used for query
// scatter and replication pulls. It is deliberately separate from the
// wire.Client the router uses for batch forwarding and pings: a slow query
// round trip must never stall the ingest path, and vice versa.
//
// Dialing is lazy (a peer may be down when the router starts) and a failed
// round trip closes the connection immediately — on in-memory pipe
// transports that unblocks the server side, and on TCP it guarantees the
// next call starts from a clean dial instead of reading a stale response.
type rpcClient struct {
	mu   sync.Mutex
	addr string
	dial wire.Dialer

	conn net.Conn
	br   *bufio.Reader
}

func newRPCClient(addr string, dial wire.Dialer) *rpcClient {
	if dial == nil {
		dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	return &rpcClient{addr: addr, dial: dial}
}

func (c *rpcClient) ensureLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, err := c.dial(c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	return nil
}

func (c *rpcClient) dropLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// roundTrip sends one frame and reads one response frame, bounding the
// whole exchange with timeout (0 = no deadline). Any error tears the
// connection down; the next call redials.
func (c *rpcClient) roundTrip(reqType uint8, payload []byte, wantType uint8, timeout time.Duration) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureLocked(); err != nil {
		return nil, err
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.dropLocked()
		return nil, err
	}
	if err := wire.WriteFrame(c.conn, reqType, payload); err != nil {
		c.dropLocked()
		return nil, err
	}
	ft, resp, err := wire.ReadFrame(c.br)
	if err != nil {
		c.dropLocked()
		return nil, err
	}
	if ft != wantType {
		c.dropLocked()
		return nil, fmt.Errorf("cluster: unexpected response frame type %d (want %d)", ft, wantType)
	}
	if err := c.conn.SetDeadline(time.Time{}); err != nil {
		c.dropLocked()
		return nil, err
	}
	return resp, nil
}

// Close tears down the connection; a later call redials.
func (c *rpcClient) Close() {
	c.mu.Lock()
	c.dropLocked()
	c.mu.Unlock()
}

func (c *rpcClient) query(q *queryRequest, timeout time.Duration) (*queryResponse, error) {
	payload, err := c.roundTrip(FrameQueryReq, encodeQueryRequest(q), FrameQueryResp, timeout)
	if err != nil {
		return nil, err
	}
	resp, err := decodeQueryResponse(q.Op, payload)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: peer query failed: %s", resp.Err)
	}
	if len(resp.Results) != len(q.Keys) {
		return nil, fmt.Errorf("cluster: peer returned %d results for %d keys", len(resp.Results), len(q.Keys))
	}
	return resp, nil
}

func (c *rpcClient) replPull(q *replPullRequest, timeout time.Duration) (*replPullResponse, error) {
	payload, err := c.roundTrip(FrameReplPull, encodeReplPullRequest(q), FrameReplResp, timeout)
	if err != nil {
		return nil, err
	}
	resp, err := decodeReplPullResponse(payload)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: replication pull failed: %s", resp.Err)
	}
	return resp, nil
}
