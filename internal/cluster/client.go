package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// rpcClient is a request/response connection to one peer, used for query
// scatter and replication pulls. It is deliberately separate from the
// wire.Client the router uses for batch forwarding and pings: a slow query
// round trip must never stall the ingest path, and vice versa.
//
// Dialing is lazy (a peer may be down when the router starts) and a failed
// round trip closes the connection immediately — on in-memory pipe
// transports that unblocks the server side, and on TCP it guarantees the
// next call starts from a clean dial instead of reading a stale response.
type rpcClient struct {
	mu   sync.Mutex
	addr string
	dial wire.Dialer

	conn net.Conn
	br   *bufio.Reader
}

func newRPCClient(addr string, dial wire.Dialer) *rpcClient {
	if dial == nil {
		dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	return &rpcClient{addr: addr, dial: dial}
}

func (c *rpcClient) ensureLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, err := c.dial(c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	return nil
}

func (c *rpcClient) dropLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// roundTrip sends one frame and reads one response frame, bounding the
// whole exchange with timeout (0 = no deadline). Any error tears the
// connection down; the next call redials. A request-write failure on a
// conn cached from an earlier call redials and retries once — the peer may
// have restarted since (no response was in flight, so the retry is safe).
func (c *rpcClient) roundTrip(reqType uint8, payload []byte, wantType uint8, timeout time.Duration) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cached := c.conn != nil
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	send := func() error {
		if err := c.ensureLocked(); err != nil {
			return err
		}
		if err := c.conn.SetDeadline(deadline); err != nil {
			c.dropLocked()
			return err
		}
		if err := wire.WriteFrame(c.conn, reqType, payload); err != nil {
			c.dropLocked()
			return err
		}
		return nil
	}
	if err := send(); err != nil {
		if !cached {
			return nil, err
		}
		if err := send(); err != nil {
			return nil, err
		}
	}
	ft, resp, err := wire.ReadFrame(c.br)
	if err != nil {
		c.dropLocked()
		return nil, err
	}
	if ft != wantType {
		c.dropLocked()
		return nil, fmt.Errorf("cluster: unexpected response frame type %d (want %d)", ft, wantType)
	}
	if err := c.conn.SetDeadline(time.Time{}); err != nil {
		c.dropLocked()
		return nil, err
	}
	return resp, nil
}

// Close tears down the connection; a later call redials.
func (c *rpcClient) Close() {
	c.mu.Lock()
	c.dropLocked()
	c.mu.Unlock()
}

// epochMismatchError reports that a peer refused a request because it is on
// a different topology epoch. Callers resolve by exchanging topologies with
// the peer (fetch if it is newer, push if it is older) and retrying.
type epochMismatchError struct {
	peerEpoch uint64
}

func (e *epochMismatchError) Error() string {
	return fmt.Sprintf("cluster: peer on topology epoch %d rejected request", e.peerEpoch)
}

func (c *rpcClient) query(q *queryRequest, timeout time.Duration) (*queryResponse, error) {
	payload, err := c.roundTrip(FrameQueryReq, encodeQueryRequest(q), FrameQueryResp, timeout)
	if err != nil {
		return nil, err
	}
	resp, err := decodeQueryResponse(q.Op, payload)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: peer query failed: %s", resp.Err)
	}
	if resp.EpochMismatch {
		return nil, &epochMismatchError{peerEpoch: resp.Epoch}
	}
	if len(resp.Results) != len(q.Keys) {
		return nil, fmt.Errorf("cluster: peer returned %d results for %d keys", len(resp.Results), len(q.Keys))
	}
	return resp, nil
}

func (c *rpcClient) replPull(q *replPullRequest, timeout time.Duration) (*replPullResponse, error) {
	payload, err := c.roundTrip(FrameReplPull, encodeReplPullRequest(q), FrameReplResp, timeout)
	if err != nil {
		return nil, err
	}
	resp, err := decodeReplPullResponse(payload)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: replication pull failed: %s", resp.Err)
	}
	if resp.EpochMismatch {
		return nil, &epochMismatchError{peerEpoch: resp.Epoch}
	}
	return resp, nil
}

// topo fetches the peer's current topology.
func (c *rpcClient) topo(timeout time.Duration) (*Topology, error) {
	payload, err := c.roundTrip(FrameTopoReq, nil, FrameTopoResp, timeout)
	if err != nil {
		return nil, err
	}
	return decodeTopology(payload)
}

// topoPush offers the peer a topology; it returns the peer's resulting
// epoch (>= t.Epoch when the push took or the peer was already newer).
func (c *rpcClient) topoPush(t *Topology, timeout time.Duration) (uint64, error) {
	payload, err := c.roundTrip(FrameTopoPush, encodeTopology(t), FrameTopoAck, timeout)
	if err != nil {
		return 0, err
	}
	p := &protoReader{buf: payload}
	return p.uvarint()
}

func (c *rpcClient) repair(q *repairRequest, timeout time.Duration) (*repairResponse, error) {
	payload, err := c.roundTrip(FrameRepairReq, encodeRepairRequest(q), FrameRepairResp, timeout)
	if err != nil {
		return nil, err
	}
	resp, err := decodeRepairResponse(payload)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: repair failed: %s", resp.Err)
	}
	if resp.EpochMismatch {
		return nil, &epochMismatchError{peerEpoch: resp.Epoch}
	}
	return resp, nil
}

func (c *rpcClient) repSnap(q *repSnapRequest, timeout time.Duration) (*repSnapResponse, error) {
	payload, err := c.roundTrip(FrameRepSnapReq, encodeRepSnapRequest(q), FrameRepSnapResp, timeout)
	if err != nil {
		return nil, err
	}
	resp, err := decodeRepSnapResponse(payload)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: replica snapshot failed: %s", resp.Err)
	}
	if resp.EpochMismatch {
		return nil, &epochMismatchError{peerEpoch: resp.Epoch}
	}
	return resp, nil
}
