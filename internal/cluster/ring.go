// Package cluster federates N odad instances into one logical TSDB: a
// static peer set, a consistent-hash ring placing series by key, a Router
// that forwards appends to owning peers (with hinted handoff while a peer
// is down) and scatters queries so only fixed-size partial aggregates cross
// the wire, and WAL-shipping replication so a follower can answer for a
// dead leader. The per-node ingest and storage paths are untouched — one
// node with no peers behaves exactly like a standalone odad.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is the consistent-hash placement function: each node projects VNodes
// points onto a 64-bit circle, and a key belongs to the node owning the
// first point clockwise of the key's hash. Virtual nodes smooth the load
// (each node owns many small arcs instead of one big one), and adding a
// node moves only the keys that land on its new arcs — about 1/N of them —
// which the rebalance property test pins down.
//
// Replica placement is node-level, not arc-level: the RF-1 followers of a
// primary are the next nodes after it in sorted node-ID order. That keeps
// "who replicates whom" a static node-to-node relation — exactly what
// WAL-segment shipping wants, since a follower replays the leader's whole
// log, not per-key slices of it.
type Ring struct {
	nodes  []string // sorted distinct node IDs
	vnodes int
	rf     int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int32 // index into nodes
}

// DefaultVNodes is the virtual-node count per peer when the config leaves
// it zero: enough that primary load across peers stays within a few
// percent of even, cheap enough that ring construction is microseconds.
const DefaultVNodes = 128

// NewRing builds a ring over the given node IDs. vnodes <= 0 uses
// DefaultVNodes; rf is clamped to [1, len(nodes)]. Duplicate node IDs are
// an error — the ID is the replication and routing identity.
func NewRing(nodes []string, vnodes, rf int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", sorted[i])
		}
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if rf < 1 {
		rf = 1
	}
	if rf > len(sorted) {
		rf = len(sorted)
	}
	r := &Ring{
		nodes:  sorted,
		vnodes: vnodes,
		rf:     rf,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	var buf []byte
	for ni, node := range sorted {
		for v := 0; v < vnodes; v++ {
			buf = buf[:0]
			buf = append(buf, node...)
			buf = append(buf, '#')
			buf = appendInt(buf, v)
			r.points = append(r.points, ringPoint{hash: hash64(buf), node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by node index so placement
		// stays deterministic across identically-configured peers.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// hash64 is FNV-64a fed through a murmur-style 64-bit finalizer. FNV alone
// barely avalanches its trailing bytes, so sequential inputs like
// "node-04#0".."node-04#127" land in one tight band of the circle and the
// vnodes collapse into a single arc; the finalizer disperses them. Both
// stages are pure integer math — deterministic across processes and
// platforms, so every peer computes the same placement from the same flags.
func hash64(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return mix64(h.Sum64())
}

func hash64String(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 fmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Nodes returns the sorted node IDs.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// NumNodes returns the cluster size.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// VNodes returns the virtual-node count per peer.
func (r *Ring) VNodes() int { return r.vnodes }

// RF returns the effective replication factor.
func (r *Ring) RF() int { return r.rf }

// primaryIndex locates the node index owning key's first clockwise point.
func (r *Ring) primaryIndex(key string) int {
	h := hash64String(key)
	pts := r.points
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := (lo + hi) / 2
		if pts[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(pts) {
		lo = 0 // wrap past the last point
	}
	return int(pts[lo].node)
}

// Primary returns the node ID owning key.
func (r *Ring) Primary(key string) string { return r.nodes[r.primaryIndex(key)] }

// Owners returns the RF nodes responsible for key, primary first, then the
// primary's followers in sorted node-ID succession. The result is freshly
// allocated; hot paths use OwnersAppend.
func (r *Ring) Owners(key string) []string {
	return r.OwnersAppend(key, nil)
}

// OwnersAppend appends key's owners to dst and returns the extended slice.
func (r *Ring) OwnersAppend(key string, dst []string) []string {
	pi := r.primaryIndex(key)
	for i := 0; i < r.rf; i++ {
		dst = append(dst, r.nodes[(pi+i)%len(r.nodes)])
	}
	return dst
}

// Followers returns the RF-1 nodes replicating node's data (its successors
// in sorted node-ID order), or nil for an unknown node.
func (r *Ring) Followers(node string) []string {
	ni := sort.SearchStrings(r.nodes, node)
	if ni == len(r.nodes) || r.nodes[ni] != node {
		return nil
	}
	out := make([]string, 0, r.rf-1)
	for i := 1; i < r.rf; i++ {
		out = append(out, r.nodes[(ni+i)%len(r.nodes)])
	}
	return out
}

// Leaders returns the nodes whose data `node` replicates (its predecessors
// in sorted node-ID order) — the inverse of Followers.
func (r *Ring) Leaders(node string) []string {
	ni := sort.SearchStrings(r.nodes, node)
	if ni == len(r.nodes) || r.nodes[ni] != node {
		return nil
	}
	out := make([]string, 0, r.rf-1)
	n := len(r.nodes)
	for i := 1; i < r.rf; i++ {
		out = append(out, r.nodes[(ni-i+n)%n])
	}
	return out
}
