package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/timeseries"
)

// The distributed query path. Two shapes:
//
//   - single-series: route the whole query to the series' owner. Mergeable
//     functions ship a Partial back and finish at the coordinator;
//     non-mergeable ones (std/p95 need the raw distribution) compute the
//     final value on the owner. If the owner is unreachable the query falls
//     back to a follower's replica store of that owner and the result is
//     flagged partial (a replica may lag the leader).
//
//   - scatter (multi-series): group keys by owner, fan out one request per
//     peer, and merge per-key partials at the coordinator IN SORTED KEY
//     ORDER. That fixed fold order is what makes the distributed answer
//     bit-identical to a single store holding all the data (see
//     MergedReduce/MergedAggregate, the reference implementations).
//
// Peers that stay unreachable after replica fallback degrade the scatter to
// a partial result: their keys are skipped and the peer is reported, never
// silently absorbed.

// execQuery runs a query op against this node's primary store or one of its
// replica stores. It is the single execution path: the server invokes it
// for remote coordinators and the local coordinator invokes it for itself,
// so self-served and peer-served results cannot diverge.
func (r *Router) execQuery(q *queryRequest) *queryResponse {
	if q.Epoch != 0 {
		if mine := r.Epoch(); q.Epoch != mine {
			// The coordinator placed this query under a different topology:
			// refuse explicitly rather than answer for keys we may not own.
			return &queryResponse{EpochMismatch: true, Epoch: mine}
		}
	}
	var st *timeseries.Store
	resp := &queryResponse{}
	if q.ReplicaOf != "" {
		rep := r.replicaFor(q.ReplicaOf)
		if rep == nil {
			return &queryResponse{Err: fmt.Sprintf("node %s holds no replica of %s", r.self, q.ReplicaOf)}
		}
		var promoted bool
		st, promoted, resp.ReplSeq, resp.ReplOff = rep.snapshotState()
		if st == nil {
			return &queryResponse{Err: fmt.Sprintf("replica of %s on %s not bootstrapped", q.ReplicaOf, r.self)}
		}
		resp.Promoted = promoted
		r.replicaReads.Add(1)
	} else {
		st = r.cfg.Store
	}
	switch q.Op {
	case opReducePartial, opAggPartials, opSeriesValues, opReduceFull, opAggFull:
	default:
		return &queryResponse{Err: fmt.Sprintf("unknown query op %d", q.Op)}
	}
	resp.Results = make([]keyResult, len(q.Keys))
	for i, key := range q.Keys {
		res := &resp.Results[i]
		id, ok := st.IDForKey(key)
		if !ok {
			continue // Found stays false: this peer has never seen the series
		}
		var err error
		switch q.Op {
		case opReducePartial:
			res.Partial, err = st.ReducePartial(id, q.From, q.To)
		case opAggPartials:
			res.PPoints, err = st.AggregatePartials(id, q.From, q.To, q.Step)
		case opSeriesValues:
			res.Values, err = st.SeriesValuesPlanned(id, q.From, q.To, q.Step)
		case opReduceFull:
			var v float64
			var n int
			v, n, err = st.ReducePlanned(id, q.From, q.To, q.Fn)
			res.Value, res.Count = v, int64(n)
		case opAggFull:
			res.Points, err = st.AggregatePlanned(id, q.From, q.To, q.Step, q.Fn)
		}
		if err != nil {
			return &queryResponse{Err: err.Error()}
		}
		res.Found = true
	}
	return resp
}

// queryOwner executes q against the node owning its keys: locally when the
// owner is self, over RPC otherwise. If the owner fails, every one of its
// followers is asked against their replica-of-owner store and the one with
// the most advanced replication cursor answers; a promoted follower (the
// failure detector granted it the read lease) answers authoritatively,
// otherwise fallback=true so the caller can flag the result partial. When
// the follower cursors disagree, the trailing replicas are back-filled from
// the freshest one (read repair) so subsequent scatters stop diverging.
//
// An epoch-mismatch rejection from the owner triggers a topology exchange:
// if that adopts a newer topology the query returns errTopologyChanged and
// the public API retries against fresh placement; if the peer was merely
// behind, our topology is pushed and the same owner is retried once.
func (r *Router) queryOwner(owner string, q *queryRequest) (results []keyResult, fallback bool, err error) {
	q.Epoch = r.Epoch()
	var primaryErr error
	if owner == r.self {
		resp := r.execQuery(q)
		if resp.Err == "" && !resp.EpochMismatch {
			return resp.Results, false, nil
		}
		primaryErr = errors.New(resp.Err)
	} else {
		p := r.peer(owner)
		if p == nil {
			// The topology moved under us between placement and dispatch.
			return nil, false, errTopologyChanged
		}
		resp, qerr := p.rc.query(q, r.cfg.rpcTimeout())
		var em *epochMismatchError
		if errors.As(qerr, &em) {
			if rerr := r.resolveEpochMismatch(p, em.peerEpoch); rerr != nil {
				if errors.Is(rerr, errTopologyChanged) {
					return nil, false, rerr
				}
				// exchange failed: the peer went dark mid-conversation; fall
				// through to the replica fallback below.
			} else {
				q.Epoch = r.Epoch()
				resp, qerr = p.rc.query(q, r.cfg.rpcTimeout())
			}
		}
		if qerr == nil {
			return resp.Results, false, nil
		}
		primaryErr = qerr
	}
	fq := *q
	fq.ReplicaOf = owner
	type followerResult struct {
		id   string
		resp *queryResponse
	}
	var outs []followerResult
	for _, f := range r.topo.Load().Ring().Followers(owner) {
		if f == owner {
			continue
		}
		if f == r.self {
			resp := r.execQuery(&fq)
			if resp.Err == "" && !resp.EpochMismatch {
				outs = append(outs, followerResult{id: f, resp: resp})
			}
			continue
		}
		p := r.peer(f)
		if p == nil {
			continue
		}
		resp, qerr := p.rc.query(&fq, r.cfg.rpcTimeout())
		if qerr == nil {
			outs = append(outs, followerResult{id: f, resp: resp})
		}
	}
	if len(outs) == 0 {
		return nil, false, primaryErr
	}
	best := 0
	for i := 1; i < len(outs); i++ {
		if cursorBehind(outs[best].resp.ReplSeq, outs[best].resp.ReplOff, outs[i].resp.ReplSeq, outs[i].resp.ReplOff) {
			best = i
		}
	}
	for i := range outs {
		if i == best {
			continue
		}
		if cursorBehind(outs[i].resp.ReplSeq, outs[i].resp.ReplOff, outs[best].resp.ReplSeq, outs[best].resp.ReplOff) {
			r.repairReplica(owner, outs[i].id, outs[best].id)
		}
	}
	bestResp := outs[best].resp
	if bestResp.Promoted {
		// The lease holder's answer is authoritative, not partial: the
		// leader has been dead long enough that this replica IS the data.
		return bestResp.Results, false, nil
	}
	return bestResp.Results, true, nil
}

// --- single-series API (what the HTTP front door asks for) ---

// Reduce answers a single-series reduction wherever the series lives.
// partial=true means the answer came from a (possibly lagging) replica.
// The tier step is a local-planner detail, reported only when the series is
// served by this node's own store.
//
// Every public query entry point retries once when a topology epoch flipped
// mid-query (errTopologyChanged): the retry re-derives placement from the
// freshly adopted topology, so a query racing a join or leave lands on the
// new owner instead of failing.
func (r *Router) Reduce(key string, from, to int64, fn timeseries.AggFunc) (value float64, count int, tierStep int64, found, partial bool, err error) {
	for attempt := 0; ; attempt++ {
		value, count, tierStep, found, partial, err = r.reduceOnce(key, from, to, fn)
		if errors.Is(err, errTopologyChanged) && attempt == 0 {
			continue
		}
		return
	}
}

func (r *Router) reduceOnce(key string, from, to int64, fn timeseries.AggFunc) (value float64, count int, tierStep int64, found, partial bool, err error) {
	q := &queryRequest{From: from, To: to, Keys: []string{key}}
	if timeseries.MergeableAgg(fn) {
		q.Op = opReducePartial
	} else {
		q.Op = opReduceFull
		q.Fn = fn
	}
	owner := r.topo.Load().Ring().Primary(key)
	if owner != r.self {
		r.scatterQueries.Add(1)
	}
	results, fallback, err := r.queryOwner(owner, q)
	if err != nil {
		return 0, 0, 0, false, false, err
	}
	if fallback {
		r.partialQueries.Add(1)
	}
	res := &results[0]
	if !res.Found {
		return 0, 0, 0, false, fallback, nil
	}
	if owner == r.self {
		if id, ok := r.cfg.Store.IDForKey(key); ok {
			tierStep = r.cfg.Store.Plan(id, from, to, 0, fn).TierStep
		}
	}
	if q.Op == opReducePartial {
		if res.Partial.Count == 0 {
			return 0, 0, tierStep, true, fallback, nil
		}
		return res.Partial.Value(fn), int(res.Partial.Count), tierStep, true, fallback, nil
	}
	return res.Value, int(res.Count), tierStep, true, fallback, nil
}

// AggregateRange answers a single-series bucketed aggregation wherever the
// series lives; semantics mirror Reduce.
func (r *Router) AggregateRange(key string, from, to, step int64, fn timeseries.AggFunc) (pts []timeseries.AggPoint, tierStep int64, found, partial bool, err error) {
	for attempt := 0; ; attempt++ {
		pts, tierStep, found, partial, err = r.aggregateRangeOnce(key, from, to, step, fn)
		if errors.Is(err, errTopologyChanged) && attempt == 0 {
			continue
		}
		return
	}
}

func (r *Router) aggregateRangeOnce(key string, from, to, step int64, fn timeseries.AggFunc) (pts []timeseries.AggPoint, tierStep int64, found, partial bool, err error) {
	if step <= 0 {
		return nil, 0, false, false, fmt.Errorf("cluster: step must be positive")
	}
	q := &queryRequest{From: from, To: to, Step: step, Keys: []string{key}}
	if timeseries.MergeableAgg(fn) {
		q.Op = opAggPartials
	} else {
		q.Op = opAggFull
		q.Fn = fn
	}
	owner := r.topo.Load().Ring().Primary(key)
	if owner != r.self {
		r.scatterQueries.Add(1)
	}
	results, fallback, err := r.queryOwner(owner, q)
	if err != nil {
		return nil, 0, false, false, err
	}
	if fallback {
		r.partialQueries.Add(1)
	}
	res := &results[0]
	if !res.Found {
		return nil, 0, false, fallback, nil
	}
	if owner == r.self {
		if id, ok := r.cfg.Store.IDForKey(key); ok {
			tierStep = r.cfg.Store.Plan(id, from, to, step, fn).TierStep
		}
	}
	if q.Op == opAggPartials {
		return finishPartialPoints(res.PPoints, fn), tierStep, true, fallback, nil
	}
	return res.Points, tierStep, true, fallback, nil
}

// SeriesValues answers a single-series value sweep (SeriesValuesPlanned)
// wherever the series lives.
func (r *Router) SeriesValues(key string, from, to, step int64) (vals []float64, found, partial bool, err error) {
	for attempt := 0; ; attempt++ {
		vals, found, partial, err = r.seriesValuesOnce(key, from, to, step)
		if errors.Is(err, errTopologyChanged) && attempt == 0 {
			continue
		}
		return
	}
}

func (r *Router) seriesValuesOnce(key string, from, to, step int64) (vals []float64, found, partial bool, err error) {
	q := &queryRequest{Op: opSeriesValues, From: from, To: to, Step: step, Keys: []string{key}}
	owner := r.topo.Load().Ring().Primary(key)
	if owner != r.self {
		r.scatterQueries.Add(1)
	}
	results, fallback, err := r.queryOwner(owner, q)
	if err != nil {
		return nil, false, false, err
	}
	if fallback {
		r.partialQueries.Add(1)
	}
	res := &results[0]
	if !res.Found {
		return nil, false, fallback, nil
	}
	return res.Values, true, fallback, nil
}

// ReducePeers is Reduce with degraded-peer attribution: peers names each
// owner whose answer was served by replica fallback or skipped, so an HTTP
// front door can tell clients exactly which nodes degraded the result.
func (r *Router) ReducePeers(key string, from, to int64, fn timeseries.AggFunc) (value float64, count int, tierStep int64, found bool, peers []string, err error) {
	value, count, tierStep, found, partial, err := r.Reduce(key, from, to, fn)
	if err == nil && partial {
		peers = []string{r.topo.Load().Ring().Primary(key)}
	}
	return value, count, tierStep, found, peers, err
}

// AggregateRangePeers is AggregateRange with degraded-peer attribution.
func (r *Router) AggregateRangePeers(key string, from, to, step int64, fn timeseries.AggFunc) (pts []timeseries.AggPoint, tierStep int64, found bool, peers []string, err error) {
	pts, tierStep, found, partial, err := r.AggregateRange(key, from, to, step, fn)
	if err == nil && partial {
		peers = []string{r.topo.Load().Ring().Primary(key)}
	}
	return pts, tierStep, found, peers, err
}

// --- scatter API (multi-series) ---

// ReduceMany reduces many series to one value by merging per-owner partial
// aggregates; only MergeableAgg functions are scatterable. partialPeers
// lists owners whose data arrived via replica fallback or not at all — an
// empty list means the answer is exact and bit-identical to MergedReduce
// over a single store holding every series.
func (r *Router) ReduceMany(keys []string, from, to int64, fn timeseries.AggFunc) (value float64, count int64, partialPeers []string, err error) {
	for attempt := 0; ; attempt++ {
		value, count, partialPeers, err = r.reduceManyOnce(keys, from, to, fn)
		if errors.Is(err, errTopologyChanged) && attempt == 0 {
			continue
		}
		return
	}
}

func (r *Router) reduceManyOnce(keys []string, from, to int64, fn timeseries.AggFunc) (value float64, count int64, partialPeers []string, err error) {
	if !timeseries.MergeableAgg(fn) {
		return 0, 0, nil, fmt.Errorf("cluster: %s does not merge across peers (route per series instead)", fn)
	}
	keys = sortedUnique(keys)
	perKey, partialPeers, err := r.scatterPartials(opReducePartial, keys, from, to, 0)
	if err != nil {
		return 0, 0, nil, err
	}
	var total timeseries.Partial
	for _, k := range keys {
		if p, ok := perKey[k]; ok {
			total.Merge(p.Partial)
		}
	}
	if total.Count == 0 {
		return 0, 0, partialPeers, nil
	}
	return total.Value(fn), total.Count, partialPeers, nil
}

// AggregateMany buckets many series into shared step windows, merging
// per-key partial buckets in sorted key order. Semantics as ReduceMany.
func (r *Router) AggregateMany(keys []string, from, to, step int64, fn timeseries.AggFunc) (pts []timeseries.AggPoint, partialPeers []string, err error) {
	for attempt := 0; ; attempt++ {
		pts, partialPeers, err = r.aggregateManyOnce(keys, from, to, step, fn)
		if errors.Is(err, errTopologyChanged) && attempt == 0 {
			continue
		}
		return
	}
}

func (r *Router) aggregateManyOnce(keys []string, from, to, step int64, fn timeseries.AggFunc) (pts []timeseries.AggPoint, partialPeers []string, err error) {
	if !timeseries.MergeableAgg(fn) {
		return nil, nil, fmt.Errorf("cluster: %s does not merge across peers (route per series instead)", fn)
	}
	if step <= 0 {
		return nil, nil, fmt.Errorf("cluster: step must be positive")
	}
	keys = sortedUnique(keys)
	perKey, partialPeers, err := r.scatterPartials(opAggPartials, keys, from, to, step)
	if err != nil {
		return nil, nil, err
	}
	ordered := make([][]timeseries.PartialPoint, 0, len(keys))
	for _, k := range keys {
		if p, ok := perKey[k]; ok {
			ordered = append(ordered, p.PPoints)
		}
	}
	return mergeAggregate(ordered, fn), partialPeers, nil
}

// scatterPartials fans one op out to every owner concurrently and gathers
// per-key results. Owners that fail entirely have their keys skipped and
// are reported in partialPeers (sorted), alongside owners served by
// replica fallback.
func (r *Router) scatterPartials(op queryOp, keys []string, from, to, step int64) (map[string]*keyResult, []string, error) {
	groups := make(map[string][]string)
	ring := r.topo.Load().Ring()
	for _, k := range keys {
		owner := ring.Primary(k)
		groups[owner] = append(groups[owner], k) // keys sorted → groups sorted
	}
	r.scatterQueries.Add(1)
	type groupOut struct {
		owner    string
		keys     []string
		results  []keyResult
		fallback bool
		err      error
	}
	outs := make([]groupOut, 0, len(groups))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for owner, gk := range groups {
		wg.Add(1)
		go func(owner string, gk []string) {
			defer wg.Done()
			q := &queryRequest{Op: op, From: from, To: to, Step: step, Keys: gk}
			results, fallback, err := r.queryOwner(owner, q)
			mu.Lock()
			outs = append(outs, groupOut{owner: owner, keys: gk, results: results, fallback: fallback, err: err})
			mu.Unlock()
		}(owner, gk)
	}
	wg.Wait()
	perKey := make(map[string]*keyResult, len(keys))
	var partialPeers []string
	for i := range outs {
		g := &outs[i]
		if errors.Is(g.err, errTopologyChanged) {
			// The epoch flipped under the scatter: the whole placement is
			// stale, so the caller re-derives groups and retries rather than
			// degrading this owner's keys to a partial answer.
			return nil, nil, errTopologyChanged
		}
		if g.err != nil {
			partialPeers = append(partialPeers, g.owner)
			continue
		}
		if g.fallback {
			partialPeers = append(partialPeers, g.owner)
		}
		for j := range g.results {
			if g.results[j].Found {
				perKey[g.keys[j]] = &g.results[j]
			}
		}
	}
	if len(partialPeers) > 0 {
		sort.Strings(partialPeers)
		r.partialQueries.Add(1)
	}
	return perKey, partialPeers, nil
}

// finishPartialPoints resolves bucketed partials under fn. Buckets arrive
// with Count > 0 (empty buckets are omitted at the source).
func finishPartialPoints(pp []timeseries.PartialPoint, fn timeseries.AggFunc) []timeseries.AggPoint {
	if len(pp) == 0 {
		return nil
	}
	out := make([]timeseries.AggPoint, len(pp))
	for i := range pp {
		out[i] = timeseries.AggPoint{Start: pp[i].Start, Value: pp[i].Agg.Value(fn)}
	}
	return out
}

// mergeAggregate merges per-key bucketed partials (already in sorted key
// order) into one bucketed result. Per bucket, partials fold in key order —
// the same fixed order MergedAggregate uses, so distributed and single-node
// answers agree bit for bit.
func mergeAggregate(perKey [][]timeseries.PartialPoint, fn timeseries.AggFunc) []timeseries.AggPoint {
	buckets := make(map[int64]*timeseries.Partial)
	var starts []int64
	for _, pts := range perKey {
		for i := range pts {
			pp := &pts[i]
			b := buckets[pp.Start]
			if b == nil {
				b = &timeseries.Partial{}
				buckets[pp.Start] = b
				starts = append(starts, pp.Start)
			}
			b.Merge(pp.Agg)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]timeseries.AggPoint, 0, len(starts))
	for _, s := range starts {
		b := buckets[s]
		if b.Count == 0 {
			continue
		}
		out = append(out, timeseries.AggPoint{Start: s, Value: b.Value(fn)})
	}
	return out
}

func sortedUnique(keys []string) []string {
	out := append([]string(nil), keys...)
	sort.Strings(out)
	j := 0
	for i, k := range out {
		if i == 0 || k != out[j-1] {
			out[j] = k
			j++
		}
	}
	return out[:j]
}

// --- single-store reference implementations ---

// MergedReduce is the single-node oracle for ReduceMany: the same sorted-key
// partial merge executed against one store holding every series. The
// distributed path must reproduce it bit for bit when no peer degrades.
func MergedReduce(st *timeseries.Store, keys []string, from, to int64, fn timeseries.AggFunc) (float64, int64, error) {
	if !timeseries.MergeableAgg(fn) {
		return 0, 0, fmt.Errorf("cluster: %s does not merge across series", fn)
	}
	var total timeseries.Partial
	for _, k := range sortedUnique(keys) {
		id, ok := st.IDForKey(k)
		if !ok {
			continue
		}
		p, err := st.ReducePartial(id, from, to)
		if err != nil {
			return 0, 0, err
		}
		total.Merge(p)
	}
	if total.Count == 0 {
		return 0, 0, nil
	}
	return total.Value(fn), total.Count, nil
}

// MergedAggregate is the single-node oracle for AggregateMany.
func MergedAggregate(st *timeseries.Store, keys []string, from, to, step int64, fn timeseries.AggFunc) ([]timeseries.AggPoint, error) {
	if !timeseries.MergeableAgg(fn) {
		return nil, fmt.Errorf("cluster: %s does not merge across series", fn)
	}
	if step <= 0 {
		return nil, fmt.Errorf("cluster: step must be positive")
	}
	ordered := make([][]timeseries.PartialPoint, 0, len(keys))
	for _, k := range sortedUnique(keys) {
		id, ok := st.IDForKey(k)
		if !ok {
			continue
		}
		pp, err := st.AggregatePartials(id, from, to, step)
		if err != nil {
			return nil, err
		}
		ordered = append(ordered, pp)
	}
	return mergeAggregate(ordered, fn), nil
}
