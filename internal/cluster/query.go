package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/timeseries"
)

// The distributed query path. Two shapes:
//
//   - single-series: route the whole query to the series' owner. Mergeable
//     functions ship a Partial back and finish at the coordinator;
//     non-mergeable ones (std/p95 need the raw distribution) compute the
//     final value on the owner. If the owner is unreachable the query falls
//     back to a follower's replica store of that owner and the result is
//     flagged partial (a replica may lag the leader).
//
//   - scatter (multi-series): group keys by owner, fan out one request per
//     peer, and merge per-key partials at the coordinator IN SORTED KEY
//     ORDER. That fixed fold order is what makes the distributed answer
//     bit-identical to a single store holding all the data (see
//     MergedReduce/MergedAggregate, the reference implementations).
//
// Peers that stay unreachable after replica fallback degrade the scatter to
// a partial result: their keys are skipped and the peer is reported, never
// silently absorbed.

// execQuery runs a query op against this node's primary store or one of its
// replica stores. It is the single execution path: the server invokes it
// for remote coordinators and the local coordinator invokes it for itself,
// so self-served and peer-served results cannot diverge.
func (r *Router) execQuery(q *queryRequest) *queryResponse {
	var st *timeseries.Store
	if q.ReplicaOf != "" {
		rep := r.replicas[q.ReplicaOf]
		if rep == nil {
			return &queryResponse{Err: fmt.Sprintf("node %s holds no replica of %s", r.self, q.ReplicaOf)}
		}
		st = rep.readStore()
		if st == nil {
			return &queryResponse{Err: fmt.Sprintf("replica of %s on %s not bootstrapped", q.ReplicaOf, r.self)}
		}
		r.replicaReads.Add(1)
	} else {
		st = r.cfg.Store
	}
	switch q.Op {
	case opReducePartial, opAggPartials, opSeriesValues, opReduceFull, opAggFull:
	default:
		return &queryResponse{Err: fmt.Sprintf("unknown query op %d", q.Op)}
	}
	resp := &queryResponse{Results: make([]keyResult, len(q.Keys))}
	for i, key := range q.Keys {
		res := &resp.Results[i]
		id, ok := st.IDForKey(key)
		if !ok {
			continue // Found stays false: this peer has never seen the series
		}
		var err error
		switch q.Op {
		case opReducePartial:
			res.Partial, err = st.ReducePartial(id, q.From, q.To)
		case opAggPartials:
			res.PPoints, err = st.AggregatePartials(id, q.From, q.To, q.Step)
		case opSeriesValues:
			res.Values, err = st.SeriesValuesPlanned(id, q.From, q.To, q.Step)
		case opReduceFull:
			var v float64
			var n int
			v, n, err = st.ReducePlanned(id, q.From, q.To, q.Fn)
			res.Value, res.Count = v, int64(n)
		case opAggFull:
			res.Points, err = st.AggregatePlanned(id, q.From, q.To, q.Step, q.Fn)
		}
		if err != nil {
			return &queryResponse{Err: err.Error()}
		}
		res.Found = true
	}
	return resp
}

// queryOwner executes q against the node owning its keys: locally when the
// owner is self, over RPC otherwise. If the owner fails, each of its
// followers is tried against their replica-of-owner store; success there
// reports fallback=true so the caller can flag the result partial.
func (r *Router) queryOwner(owner string, q *queryRequest) (results []keyResult, fallback bool, err error) {
	var primaryErr error
	if owner == r.self {
		resp := r.execQuery(q)
		if resp.Err == "" {
			return resp.Results, false, nil
		}
		primaryErr = errors.New(resp.Err)
	} else {
		resp, err := r.peers[owner].rc.query(q, r.cfg.rpcTimeout())
		if err == nil {
			return resp.Results, false, nil
		}
		primaryErr = err
	}
	fq := *q
	fq.ReplicaOf = owner
	for _, f := range r.ring.Followers(owner) {
		if f == owner {
			continue
		}
		if f == r.self {
			resp := r.execQuery(&fq)
			if resp.Err == "" {
				return resp.Results, true, nil
			}
			continue
		}
		resp, err := r.peers[f].rc.query(&fq, r.cfg.rpcTimeout())
		if err == nil {
			return resp.Results, true, nil
		}
	}
	return nil, false, primaryErr
}

// --- single-series API (what the HTTP front door asks for) ---

// Reduce answers a single-series reduction wherever the series lives.
// partial=true means the answer came from a (possibly lagging) replica.
// The tier step is a local-planner detail, reported only when the series is
// served by this node's own store.
func (r *Router) Reduce(key string, from, to int64, fn timeseries.AggFunc) (value float64, count int, tierStep int64, found, partial bool, err error) {
	q := &queryRequest{From: from, To: to, Keys: []string{key}}
	if timeseries.MergeableAgg(fn) {
		q.Op = opReducePartial
	} else {
		q.Op = opReduceFull
		q.Fn = fn
	}
	owner := r.ring.Primary(key)
	if owner != r.self {
		r.scatterQueries.Add(1)
	}
	results, fallback, err := r.queryOwner(owner, q)
	if err != nil {
		return 0, 0, 0, false, false, err
	}
	if fallback {
		r.partialQueries.Add(1)
	}
	res := &results[0]
	if !res.Found {
		return 0, 0, 0, false, fallback, nil
	}
	if owner == r.self {
		if id, ok := r.cfg.Store.IDForKey(key); ok {
			tierStep = r.cfg.Store.Plan(id, from, to, 0, fn).TierStep
		}
	}
	if q.Op == opReducePartial {
		if res.Partial.Count == 0 {
			return 0, 0, tierStep, true, fallback, nil
		}
		return res.Partial.Value(fn), int(res.Partial.Count), tierStep, true, fallback, nil
	}
	return res.Value, int(res.Count), tierStep, true, fallback, nil
}

// AggregateRange answers a single-series bucketed aggregation wherever the
// series lives; semantics mirror Reduce.
func (r *Router) AggregateRange(key string, from, to, step int64, fn timeseries.AggFunc) (pts []timeseries.AggPoint, tierStep int64, found, partial bool, err error) {
	if step <= 0 {
		return nil, 0, false, false, fmt.Errorf("cluster: step must be positive")
	}
	q := &queryRequest{From: from, To: to, Step: step, Keys: []string{key}}
	if timeseries.MergeableAgg(fn) {
		q.Op = opAggPartials
	} else {
		q.Op = opAggFull
		q.Fn = fn
	}
	owner := r.ring.Primary(key)
	if owner != r.self {
		r.scatterQueries.Add(1)
	}
	results, fallback, err := r.queryOwner(owner, q)
	if err != nil {
		return nil, 0, false, false, err
	}
	if fallback {
		r.partialQueries.Add(1)
	}
	res := &results[0]
	if !res.Found {
		return nil, 0, false, fallback, nil
	}
	if owner == r.self {
		if id, ok := r.cfg.Store.IDForKey(key); ok {
			tierStep = r.cfg.Store.Plan(id, from, to, step, fn).TierStep
		}
	}
	if q.Op == opAggPartials {
		return finishPartialPoints(res.PPoints, fn), tierStep, true, fallback, nil
	}
	return res.Points, tierStep, true, fallback, nil
}

// SeriesValues answers a single-series value sweep (SeriesValuesPlanned)
// wherever the series lives.
func (r *Router) SeriesValues(key string, from, to, step int64) (vals []float64, found, partial bool, err error) {
	q := &queryRequest{Op: opSeriesValues, From: from, To: to, Step: step, Keys: []string{key}}
	owner := r.ring.Primary(key)
	if owner != r.self {
		r.scatterQueries.Add(1)
	}
	results, fallback, err := r.queryOwner(owner, q)
	if err != nil {
		return nil, false, false, err
	}
	if fallback {
		r.partialQueries.Add(1)
	}
	res := &results[0]
	if !res.Found {
		return nil, false, fallback, nil
	}
	return res.Values, true, fallback, nil
}

// --- scatter API (multi-series) ---

// ReduceMany reduces many series to one value by merging per-owner partial
// aggregates; only MergeableAgg functions are scatterable. partialPeers
// lists owners whose data arrived via replica fallback or not at all — an
// empty list means the answer is exact and bit-identical to MergedReduce
// over a single store holding every series.
func (r *Router) ReduceMany(keys []string, from, to int64, fn timeseries.AggFunc) (value float64, count int64, partialPeers []string, err error) {
	if !timeseries.MergeableAgg(fn) {
		return 0, 0, nil, fmt.Errorf("cluster: %s does not merge across peers (route per series instead)", fn)
	}
	keys = sortedUnique(keys)
	perKey, partialPeers, err := r.scatterPartials(opReducePartial, keys, from, to, 0)
	if err != nil {
		return 0, 0, nil, err
	}
	var total timeseries.Partial
	for _, k := range keys {
		if p, ok := perKey[k]; ok {
			total.Merge(p.Partial)
		}
	}
	if total.Count == 0 {
		return 0, 0, partialPeers, nil
	}
	return total.Value(fn), total.Count, partialPeers, nil
}

// AggregateMany buckets many series into shared step windows, merging
// per-key partial buckets in sorted key order. Semantics as ReduceMany.
func (r *Router) AggregateMany(keys []string, from, to, step int64, fn timeseries.AggFunc) (pts []timeseries.AggPoint, partialPeers []string, err error) {
	if !timeseries.MergeableAgg(fn) {
		return nil, nil, fmt.Errorf("cluster: %s does not merge across peers (route per series instead)", fn)
	}
	if step <= 0 {
		return nil, nil, fmt.Errorf("cluster: step must be positive")
	}
	keys = sortedUnique(keys)
	perKey, partialPeers, err := r.scatterPartials(opAggPartials, keys, from, to, step)
	if err != nil {
		return nil, nil, err
	}
	ordered := make([][]timeseries.PartialPoint, 0, len(keys))
	for _, k := range keys {
		if p, ok := perKey[k]; ok {
			ordered = append(ordered, p.PPoints)
		}
	}
	return mergeAggregate(ordered, fn), partialPeers, nil
}

// scatterPartials fans one op out to every owner concurrently and gathers
// per-key results. Owners that fail entirely have their keys skipped and
// are reported in partialPeers (sorted), alongside owners served by
// replica fallback.
func (r *Router) scatterPartials(op queryOp, keys []string, from, to, step int64) (map[string]*keyResult, []string, error) {
	groups := make(map[string][]string)
	for _, k := range keys {
		owner := r.ring.Primary(k)
		groups[owner] = append(groups[owner], k) // keys sorted → groups sorted
	}
	r.scatterQueries.Add(1)
	type groupOut struct {
		owner    string
		keys     []string
		results  []keyResult
		fallback bool
		err      error
	}
	outs := make([]groupOut, 0, len(groups))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for owner, gk := range groups {
		wg.Add(1)
		go func(owner string, gk []string) {
			defer wg.Done()
			q := &queryRequest{Op: op, From: from, To: to, Step: step, Keys: gk}
			results, fallback, err := r.queryOwner(owner, q)
			mu.Lock()
			outs = append(outs, groupOut{owner: owner, keys: gk, results: results, fallback: fallback, err: err})
			mu.Unlock()
		}(owner, gk)
	}
	wg.Wait()
	perKey := make(map[string]*keyResult, len(keys))
	var partialPeers []string
	for i := range outs {
		g := &outs[i]
		if g.err != nil {
			partialPeers = append(partialPeers, g.owner)
			continue
		}
		if g.fallback {
			partialPeers = append(partialPeers, g.owner)
		}
		for j := range g.results {
			if g.results[j].Found {
				perKey[g.keys[j]] = &g.results[j]
			}
		}
	}
	if len(partialPeers) > 0 {
		sort.Strings(partialPeers)
		r.partialQueries.Add(1)
	}
	return perKey, partialPeers, nil
}

// finishPartialPoints resolves bucketed partials under fn. Buckets arrive
// with Count > 0 (empty buckets are omitted at the source).
func finishPartialPoints(pp []timeseries.PartialPoint, fn timeseries.AggFunc) []timeseries.AggPoint {
	if len(pp) == 0 {
		return nil
	}
	out := make([]timeseries.AggPoint, len(pp))
	for i := range pp {
		out[i] = timeseries.AggPoint{Start: pp[i].Start, Value: pp[i].Agg.Value(fn)}
	}
	return out
}

// mergeAggregate merges per-key bucketed partials (already in sorted key
// order) into one bucketed result. Per bucket, partials fold in key order —
// the same fixed order MergedAggregate uses, so distributed and single-node
// answers agree bit for bit.
func mergeAggregate(perKey [][]timeseries.PartialPoint, fn timeseries.AggFunc) []timeseries.AggPoint {
	buckets := make(map[int64]*timeseries.Partial)
	var starts []int64
	for _, pts := range perKey {
		for i := range pts {
			pp := &pts[i]
			b := buckets[pp.Start]
			if b == nil {
				b = &timeseries.Partial{}
				buckets[pp.Start] = b
				starts = append(starts, pp.Start)
			}
			b.Merge(pp.Agg)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]timeseries.AggPoint, 0, len(starts))
	for _, s := range starts {
		b := buckets[s]
		if b.Count == 0 {
			continue
		}
		out = append(out, timeseries.AggPoint{Start: s, Value: b.Value(fn)})
	}
	return out
}

func sortedUnique(keys []string) []string {
	out := append([]string(nil), keys...)
	sort.Strings(out)
	j := 0
	for i, k := range out {
		if i == 0 || k != out[j-1] {
			out[j] = k
			j++
		}
	}
	return out[:j]
}

// --- single-store reference implementations ---

// MergedReduce is the single-node oracle for ReduceMany: the same sorted-key
// partial merge executed against one store holding every series. The
// distributed path must reproduce it bit for bit when no peer degrades.
func MergedReduce(st *timeseries.Store, keys []string, from, to int64, fn timeseries.AggFunc) (float64, int64, error) {
	if !timeseries.MergeableAgg(fn) {
		return 0, 0, fmt.Errorf("cluster: %s does not merge across series", fn)
	}
	var total timeseries.Partial
	for _, k := range sortedUnique(keys) {
		id, ok := st.IDForKey(k)
		if !ok {
			continue
		}
		p, err := st.ReducePartial(id, from, to)
		if err != nil {
			return 0, 0, err
		}
		total.Merge(p)
	}
	if total.Count == 0 {
		return 0, 0, nil
	}
	return total.Value(fn), total.Count, nil
}

// MergedAggregate is the single-node oracle for AggregateMany.
func MergedAggregate(st *timeseries.Store, keys []string, from, to, step int64, fn timeseries.AggFunc) ([]timeseries.AggPoint, error) {
	if !timeseries.MergeableAgg(fn) {
		return nil, fmt.Errorf("cluster: %s does not merge across series", fn)
	}
	if step <= 0 {
		return nil, fmt.Errorf("cluster: step must be positive")
	}
	ordered := make([][]timeseries.PartialPoint, 0, len(keys))
	for _, k := range sortedUnique(keys) {
		id, ok := st.IDForKey(k)
		if !ok {
			continue
		}
		pp, err := st.AggregatePartials(id, from, to, step)
		if err != nil {
			return nil, err
		}
		ordered = append(ordered, pp)
	}
	return mergeAggregate(ordered, fn), nil
}
