package cluster

import (
	"fmt"
	"sort"
)

// Topology is the cluster membership as a first-class, epoch-versioned
// value: who the members are, where they listen, and the ring geometry they
// place keys with. A Topology is immutable once built — membership changes
// produce a NEW Topology with a strictly larger epoch (WithJoined /
// WithLeft), and every layer that holds per-peer state re-derives it when
// the router swaps the active topology pointer. That turns "the cluster
// changed shape" from a restart-the-world event into an ordinary value
// update: placement, hinted handoff, replication assignments and scatter
// planning all key off whichever Topology their operation started with,
// and cluster RPC frames carry the sender's epoch so a peer on a stale
// value gets an explicit rejection instead of silently misrouting.
//
// Epoch 0 is reserved as "epoch-agnostic": bootstrap pulls from a joining
// node predate its membership and skip the epoch check. The first real
// topology is epoch 1.
type Topology struct {
	// Epoch totally orders topologies: every join/leave increments it.
	Epoch uint64
	// Members is the full membership, sorted by ID.
	Members []Member
	// VNodes and RF are the ring geometry the whole cluster agrees on. RF
	// is the REQUESTED replication factor; the ring clamps it to the
	// member count, so a cluster started small grows into its RF as
	// members join.
	VNodes int
	RF     int

	ring *Ring
}

// Member names one cluster member: its stable node ID (the ring identity)
// and the address of its cluster listener.
type Member struct {
	ID   string
	Addr string
}

// NewTopology validates members (non-empty IDs, no duplicates), sorts them
// by ID and builds the placement ring. vnodes <= 0 uses DefaultVNodes; rf
// is clamped to [1, len(members)] by the ring but remembered as requested.
func NewTopology(epoch uint64, members []Member, vnodes, rf int) (*Topology, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: topology needs at least one member")
	}
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	ids := make([]string, len(ms))
	for i, m := range ms {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: member with empty node id")
		}
		if i > 0 && m.ID == ms[i-1].ID {
			return nil, fmt.Errorf("cluster: duplicate node id %q", m.ID)
		}
		ids[i] = m.ID
	}
	ring, err := NewRing(ids, vnodes, rf)
	if err != nil {
		return nil, err
	}
	if rf < 1 {
		rf = 1
	}
	return &Topology{
		Epoch:   epoch,
		Members: ms,
		VNodes:  ring.VNodes(),
		RF:      rf,
		ring:    ring,
	}, nil
}

// Ring returns the placement ring for this topology (read-only).
func (t *Topology) Ring() *Ring { return t.ring }

// Has reports whether id is a member.
func (t *Topology) Has(id string) bool {
	_, ok := t.Addr(id)
	return ok
}

// Addr returns the cluster listen address of member id.
func (t *Topology) Addr(id string) (string, bool) {
	i := sort.Search(len(t.Members), func(i int) bool { return t.Members[i].ID >= id })
	if i < len(t.Members) && t.Members[i].ID == id {
		return t.Members[i].Addr, true
	}
	return "", false
}

// MemberIDs returns the sorted member IDs.
func (t *Topology) MemberIDs() []string {
	ids := make([]string, len(t.Members))
	for i, m := range t.Members {
		ids[i] = m.ID
	}
	return ids
}

// WithJoined returns the successor topology (epoch+1) with m added.
func (t *Topology) WithJoined(m Member) (*Topology, error) {
	if t.Has(m.ID) {
		return nil, fmt.Errorf("cluster: node %q is already a member", m.ID)
	}
	return NewTopology(t.Epoch+1, append(append([]Member(nil), t.Members...), m), t.VNodes, t.RF)
}

// WithLeft returns the successor topology (epoch+1) with id removed.
func (t *Topology) WithLeft(id string) (*Topology, error) {
	if !t.Has(id) {
		return nil, fmt.Errorf("cluster: node %q is not a member", id)
	}
	if len(t.Members) == 1 {
		return nil, fmt.Errorf("cluster: cannot remove the last member %q", id)
	}
	ms := make([]Member, 0, len(t.Members)-1)
	for _, m := range t.Members {
		if m.ID != id {
			ms = append(ms, m)
		}
	}
	return NewTopology(t.Epoch+1, ms, t.VNodes, t.RF)
}

// --- wire encoding ---

// encodeTopology serializes a topology for FrameTopoResp / FrameTopoPush.
func encodeTopology(t *Topology) []byte {
	b := make([]byte, 0, 64)
	b = appendUvarint(b, t.Epoch)
	b = appendUvarint(b, uint64(t.VNodes))
	b = appendUvarint(b, uint64(t.RF))
	b = appendUvarint(b, uint64(len(t.Members)))
	for _, m := range t.Members {
		b = appendString(b, m.ID)
		b = appendString(b, m.Addr)
	}
	return b
}

// decodeTopology parses an encodeTopology payload and rebuilds the ring.
func decodeTopology(payload []byte) (*Topology, error) {
	p := &protoReader{buf: payload}
	epoch, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	vn, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	rf, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	n, err := p.count()
	if err != nil {
		return nil, err
	}
	members := make([]Member, 0, n)
	for i := 0; i < n; i++ {
		var m Member
		if m.ID, err = p.str(); err != nil {
			return nil, err
		}
		if m.Addr, err = p.str(); err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	return NewTopology(epoch, members, int(vn), int(rf))
}
