package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func mustRing(t *testing.T, nodes []string, vnodes, rf int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, vnodes, rf)
	if err != nil {
		t.Fatalf("NewRing(%v, %d, %d): %v", nodes, vnodes, rf, err)
	}
	return r
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0, 1); err == nil {
		t.Fatal("empty node set must error")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0, 1); err == nil {
		t.Fatal("duplicate node IDs must error")
	}
	r := mustRing(t, []string{"b", "a", "c"}, 0, 99)
	if r.RF() != 3 {
		t.Fatalf("rf clamp: got %d, want 3", r.RF())
	}
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("vnodes default: got %d, want %d", r.VNodes(), DefaultVNodes)
	}
	if got := r.Nodes(); !equalStrings(got, []string{"a", "b", "c"}) {
		t.Fatalf("nodes not sorted: %v", got)
	}
}

// Placement must be a pure function of (node set, vnodes): every peer builds
// its own ring from flags and they must all agree, regardless of the order
// the IDs were listed in.
func TestRingDeterministicAcrossOrderings(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r1 := mustRing(t, nodes, 64, 2)
	shuffled := []string{"n4", "n1", "n5", "n3", "n2"}
	r2 := mustRing(t, shuffled, 64, 2)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("metric.%d{host=h%d}", i, i%17)
		if r1.Primary(key) != r2.Primary(key) {
			t.Fatalf("key %q: primaries diverge across input orderings", key)
		}
		if !equalStrings(r1.Owners(key), r2.Owners(key)) {
			t.Fatalf("key %q: owners diverge across input orderings", key)
		}
	}
}

// Owners returns RF distinct nodes with the primary first, and the follower
// set matches the node-level Followers relation (so the query-path fallback
// targets exactly the nodes that replicate the primary's WAL).
func TestRingOwnersDistinctAndAlignedWithFollowers(t *testing.T) {
	r := mustRing(t, []string{"n1", "n2", "n3", "n4"}, 32, 3)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("series-%d", i)
		owners := r.Owners(key)
		if len(owners) != 3 {
			t.Fatalf("key %q: %d owners, want 3", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %q in %v", key, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Primary(key) {
			t.Fatalf("key %q: owners[0]=%q != primary %q", key, owners[0], r.Primary(key))
		}
		if f := r.Followers(owners[0]); !equalStrings(owners[1:], f) {
			t.Fatalf("key %q: owners[1:]=%v but Followers(%q)=%v", key, owners[1:], owners[0], f)
		}
	}
}

// Followers and Leaders are inverse relations; unknown nodes yield nil.
func TestRingFollowersLeadersInverse(t *testing.T) {
	r := mustRing(t, []string{"a", "b", "c", "d", "e"}, 16, 3)
	for _, n := range r.Nodes() {
		for _, f := range r.Followers(n) {
			found := false
			for _, l := range r.Leaders(f) {
				if l == n {
					found = true
				}
			}
			if !found {
				t.Fatalf("%q follows %q but Leaders(%q)=%v omits it", f, n, f, r.Leaders(f))
			}
		}
	}
	if r.Followers("ghost") != nil || r.Leaders("ghost") != nil {
		t.Fatal("unknown node must yield nil follower/leader sets")
	}
	r1 := mustRing(t, []string{"solo"}, 16, 1)
	if len(r1.Followers("solo")) != 0 || len(r1.Leaders("solo")) != 0 {
		t.Fatal("rf=1 ring has no followers or leaders")
	}
}

// Primary load should be roughly even: with 128 vnodes no node's share of a
// large random keyspace strays beyond ~2x of fair.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r := mustRing(t, nodes, DefaultVNodes, 1)
	counts := map[string]int{}
	const keys = 20000
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < keys; i++ {
		counts[r.Primary(fmt.Sprintf("k%d-%d", i, rng.Int63()))]++
	}
	fair := keys / len(nodes)
	for _, n := range nodes {
		if counts[n] < fair/2 || counts[n] > fair*2 {
			t.Fatalf("node %s owns %d of %d keys (fair %d): unbalanced", n, counts[n], keys, fair)
		}
	}
}

// The consistent-hashing contract: growing the cluster from N to N+1 nodes
// moves at most about 1/(N+1) of the primaries, and every key that does move
// moves TO the new node (no churn among the survivors). Seeded and run over
// several cluster sizes so the bound is a property, not a lucky sample.
func TestRingRebalanceMovesAboutOneNth(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const keys = 10000
	for _, n := range []int{2, 3, 5, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%02d", i)
		}
		before := mustRing(t, nodes, DefaultVNodes, 1)
		added := fmt.Sprintf("node-%02d", n)
		after := mustRing(t, append(append([]string(nil), nodes...), added), DefaultVNodes, 1)

		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("series-%d-%d", i, rng.Int63())
			pb, pa := before.Primary(key), after.Primary(key)
			if pb == pa {
				continue
			}
			if pa != added {
				t.Fatalf("n=%d key %q moved %q -> %q, but only the new node %q may gain keys",
					n, key, pb, pa, added)
			}
			moved++
		}
		// Expected share is keys/(n+1); allow 50% slack for vnode variance.
		limit := keys * 3 / (2 * (n + 1))
		if moved > limit {
			t.Fatalf("n=%d->%d: %d of %d keys moved, want <= %d (~1/%d + slack)",
				n, n+1, moved, keys, limit, n+1)
		}
		if moved == 0 {
			t.Fatalf("n=%d->%d: no keys moved; the new node owns nothing", n, n+1)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedUnique (query.go helper) dedups and orders scatter key sets.
func TestSortedUnique(t *testing.T) {
	got := sortedUnique([]string{"b", "a", "b", "c", "a"})
	if !sort.StringsAreSorted(got) || len(got) != 3 {
		t.Fatalf("sortedUnique: %v", got)
	}
}
