package cluster

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/metric"
	"repro/internal/persist"
	"repro/internal/timeseries"
)

// Runtime membership changes. A join or leave is an epoch transition
// executed by the changing node itself:
//
//	join:   the joiner streams the key range it will own out of each current
//	        member (snapshot bootstrap + WAL-segment tail catchup), commits
//	        the new epoch locally, pushes it to every member, and tails once
//	        more to catch appends that raced the pushes. Only ~1/N of the
//	        keyspace moves — the consistent-hash ring guarantees surviving
//	        members keep their ranges.
//	leave:  the leaver adopts the shrunk topology first (every local series
//	        now routes outward and stale forwards bounce off), pushes it to
//	        the survivors, then streams its entire store to the new owners
//	        through the ordinary forwarding path.
//
// Membership changes are operator-serialized: memberMu makes them exclusive
// on one node, and concurrent changes started on different nodes are out of
// scope (see DESIGN.md §14). Nodes that sleep through a change converge via
// epoch-mismatch rejections and the failure detector's recovery exchange.

// errTopologyChanged reports that this node adopted a newer topology while
// an operation was in flight; the operation should re-derive placement from
// the fresh topology and retry.
var errTopologyChanged = errors.New("cluster: topology changed; retry against new placement")

// resolveEpochMismatch reconciles topologies after a peer rejected a request
// for being on epoch peerEpoch: fetch and adopt the peer's topology when it
// is ahead, push ours when it is behind. It returns errTopologyChanged when
// a newer topology was adopted (placement must be recomputed), nil when the
// peer was merely stale and has been pushed forward.
func (r *Router) resolveEpochMismatch(p *peer, peerEpoch uint64) error {
	mine := r.topo.Load()
	if peerEpoch > mine.Epoch {
		t, err := p.rc.topo(r.cfg.rpcTimeout())
		if err != nil {
			return err
		}
		if r.applyTopology(t) {
			return errTopologyChanged
		}
		return nil
	}
	_, err := p.rc.topoPush(mine, r.cfg.rpcTimeout())
	return err
}

// donorState tracks the handoff stream from one current member during a
// join: its WAL cursor and the ref-table that resolves ref-addressed records
// in its shipped stream.
type donorState struct {
	id  string
	rc  *rpcClient
	rt  *persist.RefTable
	seq uint64
	off int64
}

// JoinCluster adds this node to the cluster reachable at seedAddr. The node
// must be a fresh single-member cluster (its own topology is just itself).
// The sequence:
//
//  1. fetch the seed's topology T(e) and compute T(e+1) = T(e) + self;
//  2. from every member, pull a snapshot and import only the series this
//     node owns under T(e+1), then tail the member's WAL to the writing
//     edge, importing owed entries as they appear;
//  3. adopt T(e+1) locally, push it to every member (each ack means that
//     member now forwards owed appends here), then tail each WAL once more
//     to collect appends that landed between the last tail and the ack.
//
// No appended sample is lost across the flip: an append before a member's
// ack is in that member's WAL and caught by the final tail; an append after
// the ack is forwarded here by the new topology. Samples the donors keep for
// moved keys are stale copies outside the read path (the new ring never
// routes those keys to them).
//
// Forwards that arrive while history is still streaming park behind the
// import barrier and deliver after the final tail — a live forward is always
// newer than the WAL history in flight for its series, and the store's
// monotonic append would reject that history if the forward landed first.
func (r *Router) JoinCluster(seedAddr string) error {
	r.memberMu.Lock()
	defer r.memberMu.Unlock()
	cur := r.topo.Load()
	if len(cur.Members) > 1 {
		return fmt.Errorf("cluster: node %s is already in a %d-node cluster", r.self, len(cur.Members))
	}
	selfAddr, ok := cur.Addr(r.self)
	if !ok {
		return fmt.Errorf("cluster: node %s has no advertised address", r.self)
	}
	timeout := r.cfg.rpcTimeout()
	seed := newRPCClient(seedAddr, r.cfg.Dial)
	defer seed.Close()
	t, err := seed.topo(timeout)
	if err != nil {
		return fmt.Errorf("cluster: fetch topology from seed %s: %w", seedAddr, err)
	}
	if t.Has(r.self) {
		return fmt.Errorf("cluster: node id %s already present in cluster topology (epoch %d)", r.self, t.Epoch)
	}
	next, err := t.WithJoined(Member{ID: r.self, Addr: selfAddr})
	if err != nil {
		return err
	}
	ring := next.Ring()

	// Raise the import barrier before anything can forward to us (members
	// only learn of us via the pushes below, which happen-after this), and
	// guarantee the parked queue drains on every exit path.
	r.joinMu.Lock()
	r.joinParking = true
	r.joinMu.Unlock()
	defer func() {
		r.joinMu.Lock()
		defer r.joinMu.Unlock()
		if parked := r.joinParked; len(parked) > 0 {
			r.joinParked = nil
			r.deliverForwarded(parked)
		}
		r.joinParking = false
	}()

	donors := make([]*donorState, 0, len(t.Members))
	defer func() {
		for _, d := range donors {
			d.rc.Close()
		}
	}()
	for _, m := range t.Members {
		d := &donorState{id: m.ID, rc: newRPCClient(m.Addr, r.cfg.Dial), rt: persist.NewRefTable()}
		donors = append(donors, d)
		resp, err := d.rc.replPull(&replPullRequest{WantSnapshot: true}, timeout)
		if err != nil {
			return fmt.Errorf("cluster: snapshot from %s: %w", m.ID, err)
		}
		if err := r.importOwed(ring, resp.Snapshot); err != nil {
			return fmt.Errorf("cluster: import snapshot from %s: %w", m.ID, err)
		}
		d.seq, d.off = resp.NextSeq, resp.NextOff
	}
	for _, d := range donors {
		if err := r.tailOwed(ring, d); err != nil {
			return fmt.Errorf("cluster: tail WAL of %s: %w", d.id, err)
		}
	}

	r.applyTopology(next)
	for i, m := range t.Members {
		if _, err := donors[i].rc.topoPush(next, timeout); err != nil {
			return fmt.Errorf("cluster: push epoch %d to %s: %w", next.Epoch, m.ID, err)
		}
	}
	for _, d := range donors {
		if err := r.tailOwed(ring, d); err != nil {
			return fmt.Errorf("cluster: final tail of %s: %w", d.id, err)
		}
	}
	return nil
}

// importOwed restores a donor snapshot into a scratch store and appends the
// series this node owns under ring to the local store, sample by sample in
// timestamp order.
func (r *Router) importOwed(ring *Ring, snapshot []byte) error {
	chunk, dump, err := persist.DecodeDump(snapshot)
	if err != nil {
		return err
	}
	var owed []timeseries.SeriesDump
	for _, sd := range dump {
		if ring.Primary(sd.ID.Key()) == r.self {
			owed = append(owed, sd)
		}
	}
	if len(owed) == 0 {
		return nil
	}
	scratch, err := timeseries.RestoreStore(chunk, owed)
	if err != nil {
		return err
	}
	for _, sd := range owed {
		var batch []timeseries.BatchEntry
		id, kind, unit := sd.ID, sd.Kind, sd.Unit
		if err := scratch.Each(id, math.MinInt64, math.MaxInt64, func(s metric.Sample) bool {
			batch = append(batch, timeseries.BatchEntry{ID: id, Kind: kind, Unit: unit, T: s.T, V: s.V})
			return true
		}); err != nil {
			return err
		}
		if _, err := r.appendLocal(batch, nil); err != nil {
			return err
		}
		r.handoffEntries.Add(uint64(len(batch)))
	}
	return nil
}

// tailOwed pulls a donor's WAL from its cursor to the writing edge,
// importing the entries this node owns under ring and advancing the cursor.
func (r *Router) tailOwed(ring *Ring, d *donorState) error {
	timeout := r.cfg.rpcTimeout()
	for {
		resp, err := d.rc.replPull(&replPullRequest{
			FromSeq:  d.seq,
			FromOff:  d.off,
			MaxBytes: r.cfg.replPullBytes(),
		}, timeout)
		if err != nil {
			return err
		}
		if resp.SegmentGone {
			return fmt.Errorf("donor checkpointed past handoff cursor (seg %d)", d.seq)
		}
		for _, payload := range resp.Records {
			entries, err := persist.RecordEntries(d.rt, payload)
			if err != nil {
				return err
			}
			var owed []timeseries.BatchEntry
			for _, e := range entries {
				if ring.Primary(e.ID.Key()) == r.self {
					owed = append(owed, e)
				}
			}
			if len(owed) == 0 {
				continue
			}
			if _, err := r.appendLocal(owed, nil); err != nil {
				return err
			}
			r.handoffEntries.Add(uint64(len(owed)))
		}
		d.seq, d.off = resp.NextSeq, resp.NextOff
		if len(resp.Records) == 0 {
			return nil
		}
	}
}

// leaveMoveBatch bounds one forwarded batch of the leave handoff.
const leaveMoveBatch = 512

// LeaveCluster removes this node from the cluster: adopt the shrunk
// topology (all local appends now route outward, stale forwards re-route),
// push it to every survivor, then stream the entire local store to its new
// owners through the ordinary forwarding path and flush. It fails — and can
// simply be retried — if a survivor is unreachable or forwarded batches are
// still parked as hints afterwards.
func (r *Router) LeaveCluster() error {
	r.memberMu.Lock()
	defer r.memberMu.Unlock()
	cur := r.topo.Load()
	next, err := cur.WithLeft(r.self)
	if err != nil {
		return err
	}
	// Flip first: the write barrier in applyTopology drains in-flight local
	// appends, so the dump below is complete — everything after it forwards.
	r.applyTopology(next)
	// Survivors must adopt the shrunk topology BEFORE data moves, or a
	// receiver still on the old epoch would re-route moved entries straight
	// back here.
	for _, m := range next.Members {
		p := r.peer(m.ID)
		if p == nil {
			continue
		}
		if _, err := p.rc.topoPush(next, r.cfg.rpcTimeout()); err != nil {
			return fmt.Errorf("cluster: push epoch %d to %s: %w", next.Epoch, m.ID, err)
		}
	}
	st := r.cfg.Store
	for _, sd := range st.Dump() {
		id, kind, unit := sd.ID, sd.Kind, sd.Unit
		var batch []timeseries.BatchEntry
		move := func() error {
			if len(batch) == 0 {
				return nil
			}
			if _, err := r.route(batch, false); err != nil {
				return err
			}
			r.handoffEntries.Add(uint64(len(batch)))
			batch = batch[:0]
			return nil
		}
		var eachErr error
		if err := st.Each(id, math.MinInt64, math.MaxInt64, func(s metric.Sample) bool {
			batch = append(batch, timeseries.BatchEntry{ID: id, Kind: kind, Unit: unit, T: s.T, V: s.V})
			if len(batch) >= leaveMoveBatch {
				if eachErr = move(); eachErr != nil {
					return false
				}
			}
			return true
		}); err != nil {
			return err
		}
		if eachErr != nil {
			return eachErr
		}
		if err := move(); err != nil {
			return err
		}
	}
	r.Flush()
	// The ping rides the same connections as the forwarded batches and peers
	// handle frames in order, so one healthy probe round is a barrier: when
	// it returns, every moved entry has been applied by its new owner. It
	// also grants hinted batches (an unreachable survivor) one drain attempt.
	r.CheckPeers()
	if n := r.PendingHints(); n > 0 {
		return fmt.Errorf("cluster: %d hinted batches still parked after leave; retry when peers are reachable", n)
	}
	return nil
}
