package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metric"
	"repro/internal/persist"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

// Appender is the local ingest sink a router writes owned samples to —
// a bare timeseries.Store or a persist.DurableStore.
type Appender interface {
	AppendBatch(entries []timeseries.BatchEntry) (int, error)
}

// Peer names one cluster member: a stable node ID (the ring identity) and
// the address of its cluster listener.
type Peer struct {
	ID   string
	Addr string
}

// Config wires a Router into one odad process.
type Config struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers is the initial membership, including self. It seeds topology
	// epoch 1; joins and leaves evolve the membership at runtime.
	Peers []Peer
	// VNodes is the virtual-node count per peer (0 = DefaultVNodes).
	VNodes int
	// Replication is the replication factor (clamped to [1, len(Peers)]).
	Replication int
	// Dial opens connections to peers (nil = TCP); chaos tests inject
	// fault-wrapped in-memory transports here.
	Dial wire.Dialer
	// Local receives samples this node owns (and forwarded samples from
	// peers). Typically the DurableStore when one is configured.
	Local Appender
	// Store is this node's primary read store.
	Store *timeseries.Store
	// Durable, when set, lets this node serve WAL replication to followers.
	Durable *persist.DurableStore
	// ReplicaOptions configure replica stores (must match the cluster-wide
	// store configuration — in particular rollup tiers — so planned queries
	// against a replica behave like the leader's).
	ReplicaOptions []timeseries.Option
	// LegacyWire forwards peer batches with the v1 keyed frames instead of
	// the v2 dictionary protocol — an escape hatch for mixed-version rings.
	LegacyWire bool

	// FlushEntries is the per-peer forward buffer size that triggers an
	// automatic flush (0 = 256).
	FlushEntries int
	// MaxHintBatches bounds the per-peer hinted-handoff queue (0 = 4096);
	// overflow drops the newest data and counts it.
	MaxHintBatches int
	// PingTimeout bounds failure-detector probes (0 = 2s).
	PingTimeout time.Duration
	// SendTimeout bounds batch forwards (0 = 5s).
	SendTimeout time.Duration
	// RPCTimeout bounds query/replication round trips (0 = 5s).
	RPCTimeout time.Duration
	// ReplPullBytes is the per-pull WAL byte budget (0 = 1MiB).
	ReplPullBytes int64

	// SuspectAfter is how many consecutive missed probes turn a peer from
	// "down" into "suspect" in the failure detector's hysteresis (0 = 2).
	SuspectAfter int
	// PromoteAfter is how many consecutive missed probes of a leader let a
	// caught-up follower promote its replica to read-primary (0 = 5). It
	// must exceed SuspectAfter so transient blips never promote.
	PromoteAfter int
}

func (c *Config) flushEntries() int {
	if c.FlushEntries <= 0 {
		return 256
	}
	return c.FlushEntries
}

func (c *Config) maxHintBatches() int {
	if c.MaxHintBatches <= 0 {
		return 4096
	}
	return c.MaxHintBatches
}

func (c *Config) pingTimeout() time.Duration {
	if c.PingTimeout <= 0 {
		return 2 * time.Second
	}
	return c.PingTimeout
}

func (c *Config) sendTimeout() time.Duration {
	if c.SendTimeout <= 0 {
		return 5 * time.Second
	}
	return c.SendTimeout
}

func (c *Config) rpcTimeout() time.Duration {
	if c.RPCTimeout <= 0 {
		return 5 * time.Second
	}
	return c.RPCTimeout
}

func (c *Config) replPullBytes() int64 {
	if c.ReplPullBytes <= 0 {
		return 1 << 20
	}
	return c.ReplPullBytes
}

func (c *Config) suspectAfter() int {
	if c.SuspectAfter <= 0 {
		return 2
	}
	return c.SuspectAfter
}

func (c *Config) promoteAfter() int {
	if c.PromoteAfter <= 0 {
		return 5
	}
	return c.PromoteAfter
}

// Router is the cluster brain of one node: it places series on the ring,
// forwards foreign appends to their owners (parking them in a hinted-handoff
// queue while an owner is down), scatters queries so only partial aggregates
// cross the wire, and pulls WAL records from the leaders it follows. It
// implements the collector's batch-appender contract, so it drops into any
// ingest path a plain store fits.
//
// Topology is a runtime value, not construction-time state: the active
// Topology lives behind an atomic pointer, and applyTopology re-derives the
// peer set, replica assignments and parked-hint routing whenever a newer
// epoch arrives (a local join/leave, a peer's push, or anti-entropy after an
// epoch-mismatch rejection).
type Router struct {
	cfg  Config
	self string

	// topo is the active topology. Reads are lock-free; swaps happen under
	// mu so the peer/replica maps always correspond to the stored value.
	topo atomic.Pointer[Topology]

	// refCache fronts the local appender with the series-ref fast path when
	// the appender supports it (stores and durable stores both do).
	refCache *timeseries.RefCache

	// mu guards the membership-derived state below. Routing holds it for
	// read, epoch flips for write — so no entry can buffer into a peer that
	// the flip is concurrently retiring.
	mu       sync.RWMutex
	peers    map[string]*peer // remote peers only
	peerList []*peer          // sorted by ID for deterministic iteration
	replicas map[string]*replica
	// departedDropped accumulates dropped-hint counts of peers removed by
	// epoch flips, so DroppedHintEntries stays monotonic across membership
	// changes.
	departedDropped uint64

	// memberMu serializes join/leave (operator-driven; concurrent membership
	// changes are out of scope — see DESIGN.md §14).
	memberMu sync.Mutex

	// Join import barrier. While a join handoff streams history out of the
	// donors, live forwards park here instead of applying: a forwarded
	// sample is always newer than the WAL history still in flight for its
	// series, and the store's monotonic append would reject that history if
	// the forward landed first. JoinCluster drains the queue — in arrival
	// order, after the final tail — under joinMu, so any handler that
	// observes joinParking=false is ordered after the entire queue applied.
	joinMu      sync.Mutex
	joinParking bool
	joinParked  []timeseries.BatchEntry

	localEntries     atomic.Uint64
	forwardedAllowed atomic.Uint64 // entries accepted for forwarding (sent or hinted)
	receivedBatches  atomic.Uint64
	receivedEntries  atomic.Uint64
	scatterQueries   atomic.Uint64
	partialQueries   atomic.Uint64
	replicaReads     atomic.Uint64 // queries this node served from a replica store
	epochFlips       atomic.Uint64 // topology swaps applied
	reroutedEntries  atomic.Uint64 // entries re-routed after an epoch flip or misdirected forward
	readRepairs      atomic.Uint64 // stale replicas back-filled from fresher followers
	promotions       atomic.Uint64 // replica promotions after sustained leader death
	handoffEntries   atomic.Uint64 // entries imported/exported by join/leave streaming

	stop chan struct{}
	wg   sync.WaitGroup
	bg   sync.Once
}

// peer is the router's view of one remote node: its transport clients, the
// pending forward buffer, and the hinted-handoff queue that preserves
// delivery order across downtime.
type peer struct {
	id   string
	addr string
	self string // this node's ID, stamped as wire agent on forwards
	dial wire.Dialer

	sendTimeout time.Duration

	legacyWire bool

	mu    sync.Mutex
	wc    *wire.Client // lazy: the peer may be down at startup
	rc    *rpcClient
	buf   []timeseries.BatchEntry
	hints []hintBatch

	// misses counts consecutive failed probes — the failure detector's
	// hysteresis input: suspectAfter misses mark the peer suspect,
	// promoteAfter misses of a leader let its followers promote.
	misses int

	// Hint dictionary: parked entries carry a 4-byte ref into hintDefs
	// instead of a full metric ID, so a long outage queues samples, not
	// strings. Defs are interned per peer and live for the peer's lifetime
	// (bounded by series cardinality), which keeps refs in older parked
	// batches valid across drains and re-parks.
	hintRefs map[string]uint32 // series key -> index into hintDefs
	hintDefs []hintDef

	// counters under mu
	forwardedBatches   uint64
	forwardedEntries   uint64
	failedSends        uint64
	hintedBatches      uint64
	drainedBatches     uint64
	droppedHintEntries uint64
	hintSavedBytes     uint64

	up  atomic.Bool
	rtt atomic.Int64 // last ping round trip, nanoseconds
}

// hintDef is one interned series definition in a peer's hint dictionary.
type hintDef struct {
	id   metric.ID
	kind metric.Kind
	unit metric.Unit
}

// hintEntry is one parked sample: a dictionary ref plus the sample itself.
type hintEntry struct {
	ref uint32
	t   int64
	v   float64
}

// hintBatch is one parked batch plus the interning savings it booked, so
// dropping the batch can reverse its contribution to the byte gauge.
type hintBatch struct {
	entries []hintEntry
	saved   uint64
}

// New validates the config and builds the router on topology epoch 1.
// Start launches the background flush/health/replication loop, or tests
// drive Flush/CheckPeers/PumpReplication manually.
func New(cfg Config) (*Router, error) {
	if cfg.Local == nil || cfg.Store == nil {
		return nil, fmt.Errorf("cluster: config needs Local appender and Store")
	}
	members := make([]Member, 0, len(cfg.Peers))
	seen := make(map[string]bool, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p.ID == "" {
			return nil, fmt.Errorf("cluster: peer with empty node id")
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", p.ID)
		}
		seen[p.ID] = true
		members = append(members, Member{ID: p.ID, Addr: p.Addr})
	}
	if !seen[cfg.Self] {
		return nil, fmt.Errorf("cluster: self node %q not in peer set", cfg.Self)
	}
	t, err := NewTopology(1, members, cfg.VNodes, cfg.Replication)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:      cfg,
		self:     cfg.Self,
		peers:    make(map[string]*peer),
		replicas: make(map[string]*replica),
		stop:     make(chan struct{}),
	}
	if ra, ok := cfg.Local.(timeseries.RefAppender); ok {
		r.refCache = timeseries.NewRefCache(ra)
	}
	r.applyTopology(t)
	return r, nil
}

// newPeer builds the router's handle for one remote member.
func (r *Router) newPeer(id, addr string) *peer {
	p := &peer{
		id:          id,
		addr:        addr,
		self:        r.self,
		dial:        r.cfg.Dial,
		sendTimeout: r.cfg.sendTimeout(),
		legacyWire:  r.cfg.LegacyWire,
		rc:          newRPCClient(addr, r.cfg.Dial),
	}
	p.up.Store(true) // optimistic until a send or ping says otherwise
	return p
}

// closeClients tears down both transports of a retired peer.
func (p *peer) closeClients() {
	p.mu.Lock()
	if p.wc != nil {
		_ = p.wc.Close()
		p.wc = nil
	}
	p.mu.Unlock()
	p.rc.Close()
}

// Self returns this node's ID.
func (r *Router) Self() string { return r.self }

// Ring exposes the current topology's placement ring (read-only).
func (r *Router) Ring() *Ring { return r.topo.Load().Ring() }

// Topology returns the active topology value.
func (r *Router) Topology() *Topology { return r.topo.Load() }

// Epoch returns the active topology epoch.
func (r *Router) Epoch() uint64 { return r.topo.Load().Epoch }

// peer returns the handle for a member, or nil if it is not in the current
// membership.
func (r *Router) peer(id string) *peer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.peers[id]
}

// peersSnapshot copies the peer list for lock-free iteration.
func (r *Router) peersSnapshot() []*peer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*peer(nil), r.peerList...)
}

// replicaFor returns the replica this node keeps of leader, or nil.
func (r *Router) replicaFor(leader string) *replica {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.replicas[leader]
}

// replicasSnapshot returns the replicas in sorted leader order.
func (r *Router) replicasSnapshot() []*replica {
	r.mu.RLock()
	defer r.mu.RUnlock()
	leaders := make([]string, 0, len(r.replicas))
	for l := range r.replicas {
		leaders = append(leaders, l)
	}
	sort.Strings(leaders)
	out := make([]*replica, 0, len(leaders))
	for _, l := range leaders {
		out = append(out, r.replicas[l])
	}
	return out
}

// applyTopology installs t if its epoch is newer than the active one and
// re-derives every piece of membership-dependent state: the peer set (new
// members get handles, departed ones are retired), the replica assignments
// (Leaders under the new ring), and — critically — every parked hint and
// pending forward buffer, which are stolen and re-routed under the new
// placement so no sample sits in a queue aimed at a node that no longer
// owns it. Per-series FIFO order survives the re-route: a series' parked
// samples live in one queue in order and are re-appended in that order.
func (r *Router) applyTopology(t *Topology) bool {
	if t == nil {
		return false
	}
	r.mu.Lock()
	cur := r.topo.Load()
	if cur != nil && t.Epoch <= cur.Epoch {
		r.mu.Unlock()
		return false
	}
	var stolen []timeseries.BatchEntry
	for _, p := range r.peerList {
		p.mu.Lock()
		if len(p.buf) > 0 {
			stolen = append(stolen, p.buf...)
			p.buf = nil
		}
		for _, h := range p.hints {
			stolen = append(stolen, p.unpackHintLocked(h.entries)...)
		}
		p.hints = nil
		p.mu.Unlock()
	}
	old := r.peers
	newPeers := make(map[string]*peer, len(t.Members))
	newList := make([]*peer, 0, len(t.Members))
	for _, m := range t.Members {
		if m.ID == r.self {
			continue
		}
		if p := old[m.ID]; p != nil && p.addr == m.Addr {
			newPeers[m.ID] = p
			newList = append(newList, p)
			continue
		}
		p := r.newPeer(m.ID, m.Addr)
		newPeers[m.ID] = p
		newList = append(newList, p)
	}
	sort.Slice(newList, func(i, j int) bool { return newList[i].id < newList[j].id })
	var departed []*peer
	for id, p := range old {
		if newPeers[id] != p {
			departed = append(departed, p)
			p.mu.Lock()
			r.departedDropped += p.droppedHintEntries
			p.mu.Unlock()
		}
	}
	newReps := make(map[string]*replica)
	if t.Has(r.self) {
		for _, leader := range t.Ring().Leaders(r.self) {
			if rep := r.replicas[leader]; rep != nil {
				newReps[leader] = rep
			} else {
				newReps[leader] = newReplica(leader, r.cfg.ReplicaOptions)
			}
		}
	}
	r.peers, r.peerList, r.replicas = newPeers, newList, newReps
	r.topo.Store(t)
	r.epochFlips.Add(1)
	r.mu.Unlock()
	for _, p := range departed {
		p.closeClients()
	}
	if len(stolen) > 0 {
		r.reroutedEntries.Add(uint64(len(stolen)))
		_, _ = r.route(stolen, false)
	}
	return true
}

// --- ingest path ---

// AppendBatch routes each entry to the node owning its series: owned
// entries hit the local appender directly, foreign ones buffer per peer and
// flush as wire batches. The returned count includes every forwarded entry —
// once buffered it is the router's responsibility, delivered by a send, a
// hinted-handoff drain, or counted in DroppedHintEntries.
func (r *Router) AppendBatch(entries []timeseries.BatchEntry) (int, error) {
	return r.route(entries, true)
}

// route is the placement loop behind AppendBatch. count=false re-routes
// entries that were already accounted for (epoch-flip re-routing, forwarded
// batches landing after an ownership change) without double-counting them.
// It holds the membership read-lock end to end, so no entry can buffer into
// a peer a concurrent epoch flip is retiring.
func (r *Router) route(entries []timeseries.BatchEntry, count bool) (int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.peers) == 0 {
		n, err := r.appendLocal(entries, nil)
		if count {
			r.localEntries.Add(uint64(n))
		}
		return n, err
	}
	ring := r.topo.Load().Ring()
	var local []timeseries.BatchEntry
	var localKeys []string // ring-routing keys, reused by the ref cache
	var groups map[*peer][]timeseries.BatchEntry
	for i := range entries {
		e := &entries[i]
		key := e.ID.Key()
		owner := ring.Primary(key)
		if owner == r.self {
			local = append(local, *e)
			localKeys = append(localKeys, key)
			continue
		}
		if groups == nil {
			groups = make(map[*peer][]timeseries.BatchEntry, len(r.peers))
		}
		p := r.peers[owner]
		groups[p] = append(groups[p], *e)
	}
	accepted := 0
	var firstErr error
	if len(local) > 0 {
		n, err := r.appendLocal(local, localKeys)
		if count {
			r.localEntries.Add(uint64(n))
		}
		accepted += n
		firstErr = err
	}
	threshold := r.cfg.flushEntries()
	for p, g := range groups {
		p.mu.Lock()
		p.buf = append(p.buf, g...)
		if len(p.buf) >= threshold {
			p.flushLocked(r.cfg.maxHintBatches())
		}
		p.mu.Unlock()
		accepted += len(g)
		if count {
			r.forwardedAllowed.Add(uint64(len(g)))
		}
	}
	return accepted, firstErr
}

// appendLocal lands entries on this node's appender, through the series-ref
// fast path when the appender supports it. keys[i], when non-nil, must be
// entries[i].ID.Key() (the ring already serialized them for routing).
func (r *Router) appendLocal(entries []timeseries.BatchEntry, keys []string) (int, error) {
	if r.refCache != nil {
		return r.refCache.AppendBatchKeys(entries, keys)
	}
	return r.cfg.Local.AppendBatch(entries)
}

// Flush pushes every peer's pending forward buffer out now. Tests and the
// shutdown path call it directly; the background loop calls it on a timer.
func (r *Router) Flush() {
	maxHints := r.cfg.maxHintBatches()
	for _, p := range r.peersSnapshot() {
		p.mu.Lock()
		p.flushLocked(maxHints)
		p.mu.Unlock()
	}
}

// wireClientLocked lazily dials the batch-forwarding client; p.mu held.
func (p *peer) wireClientLocked() (*wire.Client, error) {
	if p.wc != nil {
		return p.wc, nil
	}
	wc, err := wire.DialWith(p.dial, p.addr)
	if err != nil {
		return nil, err
	}
	wc.SetTimeout(p.sendTimeout)
	if !p.legacyWire {
		wc.EnableDict()
	}
	p.wc = wc
	return wc, nil
}

func (p *peer) sendLocked(entries []timeseries.BatchEntry) error {
	wc, err := p.wireClientLocked()
	if err != nil {
		return err
	}
	return wc.Send(toWireBatch(p.self, entries))
}

// flushLocked dispatches the pending buffer: straight to the peer when it
// is up and no hints are queued, otherwise onto the hint queue — new data
// must never overtake parked data, or a series' timestamps would arrive out
// of order and be rejected. A failed send parks its batch at the FRONT of
// the queue, since it is older than everything already hinted.
func (p *peer) flushLocked(maxHints int) {
	if len(p.buf) == 0 {
		return
	}
	entries := p.buf
	p.buf = nil
	if !p.up.Load() || len(p.hints) > 0 {
		p.hintLocked(entries, false, maxHints)
		return
	}
	if err := p.sendLocked(entries); err != nil {
		p.failedSends++
		p.up.Store(false)
		p.hintLocked(entries, true, maxHints)
		return
	}
	p.forwardedBatches++
	p.forwardedEntries += uint64(len(entries))
}

func (p *peer) hintLocked(entries []timeseries.BatchEntry, front bool, maxHints int) {
	if len(p.hints) >= maxHints {
		if !front {
			p.droppedHintEntries += uint64(len(entries))
			return
		}
		// A failed send is older than everything queued: make room by
		// dropping the newest hint rather than the oldest data. The dropped
		// batch's interning savings are reversed — a dropped byte was not
		// saved — so the gauge cannot drift upward across park/drop cycles.
		last := p.hints[len(p.hints)-1]
		p.hints = p.hints[:len(p.hints)-1]
		p.droppedHintEntries += uint64(len(last.entries))
		p.hintSavedBytes -= last.saved
	}
	packed := p.packHintLocked(entries)
	if front {
		p.hints = append([]hintBatch{packed}, p.hints...)
	} else {
		p.hints = append(p.hints, packed)
	}
	p.hintedBatches++
}

// packHintLocked dictionary-encodes a batch for parking: each entry's series
// is interned into the peer's hint dictionary and the parked form carries
// only the ref. Every entry whose series was already defined saves its key,
// unit and kind byte against the 4-byte ref; the running total feeds
// PeerStats.HintSavedBytes, and the per-batch share is remembered so a
// dropped batch can give its savings back.
func (p *peer) packHintLocked(entries []timeseries.BatchEntry) hintBatch {
	packed := hintBatch{entries: make([]hintEntry, len(entries))}
	for i := range entries {
		e := &entries[i]
		key := e.ID.Key()
		ref, ok := p.hintRefs[key]
		if !ok {
			if p.hintRefs == nil {
				p.hintRefs = make(map[string]uint32)
			}
			ref = uint32(len(p.hintDefs))
			p.hintDefs = append(p.hintDefs, hintDef{id: e.ID, kind: e.Kind, unit: e.Unit})
			p.hintRefs[key] = ref
		} else if saved := len(key) + len(e.Unit) + 1 - 4; saved > 0 {
			packed.saved += uint64(saved)
		}
		packed.entries[i] = hintEntry{ref: ref, t: e.T, v: e.V}
	}
	p.hintSavedBytes += packed.saved
	return packed
}

// unpackHintLocked rebuilds append entries from a parked batch.
func (p *peer) unpackHintLocked(batch []hintEntry) []timeseries.BatchEntry {
	entries := make([]timeseries.BatchEntry, len(batch))
	for i, h := range batch {
		d := &p.hintDefs[h.ref]
		entries[i] = timeseries.BatchEntry{ID: d.id, Kind: d.kind, Unit: d.unit, T: h.t, V: h.v}
	}
	return entries
}

// drainLocked replays hinted batches in FIFO order; it stops at the first
// failure (the peer relapsed) and reports whether the queue fully drained.
func (p *peer) drainLocked() bool {
	for len(p.hints) > 0 {
		entries := p.unpackHintLocked(p.hints[0].entries)
		if err := p.sendLocked(entries); err != nil {
			p.failedSends++
			return false
		}
		p.hints = p.hints[1:]
		p.drainedBatches++
		p.forwardedBatches++
		p.forwardedEntries += uint64(len(entries))
	}
	return true
}

// toWireBatch packs routed entries into a wire batch, grouping consecutive
// same-series entries into one record (entries arrive in series runs from
// the collector, so this usually collapses to one record per series).
func toWireBatch(agent string, entries []timeseries.BatchEntry) *wire.Batch {
	b := &wire.Batch{Agent: agent}
	cur := -1
	var curKey string
	for i := range entries {
		e := &entries[i]
		k := e.ID.Key()
		if cur < 0 || k != curKey {
			b.Records = append(b.Records, wire.Record{ID: e.ID, Kind: e.Kind, Unit: e.Unit})
			cur = len(b.Records) - 1
			curKey = k
		}
		b.Records[cur].Samples = append(b.Records[cur].Samples, metric.Sample{T: e.T, V: e.V})
	}
	return b
}

// entriesFromBatch flattens a wire batch back into append entries.
func entriesFromBatch(b *wire.Batch) []timeseries.BatchEntry {
	n := 0
	for i := range b.Records {
		n += len(b.Records[i].Samples)
	}
	entries := make([]timeseries.BatchEntry, 0, n)
	for i := range b.Records {
		rec := &b.Records[i]
		for _, sm := range rec.Samples {
			entries = append(entries, timeseries.BatchEntry{
				ID: rec.ID, Kind: rec.Kind, Unit: rec.Unit, T: sm.T, V: sm.V,
			})
		}
	}
	return entries
}

// applyForwarded lands a batch a peer routed to us. During a join handoff
// the entries park behind the import barrier (see joinMu) so streamed WAL
// history lands first; otherwise they deliver immediately.
func (r *Router) applyForwarded(b *wire.Batch) {
	entries := entriesFromBatch(b)
	r.joinMu.Lock()
	if r.joinParking {
		r.joinParked = append(r.joinParked, entries...)
		r.joinMu.Unlock()
		r.receivedBatches.Add(1)
		return
	}
	r.joinMu.Unlock()
	r.deliverForwarded(entries)
	r.receivedBatches.Add(1)
}

// deliverForwarded applies forwarded entries: those this node owns under
// the CURRENT topology go straight to the local appender; entries the
// sender placed under a stale epoch are re-routed to their actual owner
// rather than absorbed silently. Re-routing cannot ping-pong: joins move
// keys only toward the joiner and leaves only off the leaver, so two
// surviving nodes never disagree about each other — the re-routed hop lands
// on a node that accepts it under either epoch.
func (r *Router) deliverForwarded(entries []timeseries.BatchEntry) {
	ring := r.topo.Load().Ring()
	var local []timeseries.BatchEntry
	var localKeys []string
	var foreign []timeseries.BatchEntry
	for i := range entries {
		key := entries[i].ID.Key()
		if ring.Primary(key) == r.self {
			local = append(local, entries[i])
			localKeys = append(localKeys, key)
		} else {
			foreign = append(foreign, entries[i])
		}
	}
	n, _ := r.appendLocal(local, localKeys)
	r.receivedEntries.Add(uint64(n))
	if len(foreign) > 0 {
		r.reroutedEntries.Add(uint64(len(foreign)))
		_, _ = r.route(foreign, false)
	}
}

// --- failure detector ---

// CheckPeers probes every peer with a ping — the heartbeat that drives the
// lease state machine. A peer that answers — however slowly — is alive; its
// hinted batches drain in FIFO order and, once the queue is empty, it is
// marked up so fresh traffic flows directly again. A peer that does not
// answer is marked down and accrues a miss; consecutive misses escalate
// down → suspect (SuspectAfter) → dead (PromoteAfter), at which point
// updateLeases lets a caught-up follower promote its replica of the dead
// leader to read-primary. A peer recovering from misses also exchanges
// topologies (anti-entropy), so a node that slept through a membership
// change converges on the first heartbeat after it heals. Tests call this
// directly; Start runs it on a timer.
func (r *Router) CheckPeers() {
	for _, p := range r.peersSnapshot() {
		r.checkPeer(p)
	}
	r.updateLeases()
}

func (r *Router) checkPeer(p *peer) {
	p.mu.Lock()
	recovering := p.misses > 0
	wc, err := p.wireClientLocked()
	if err != nil {
		p.misses++
		p.up.Store(false)
		p.mu.Unlock()
		return
	}
	rtt, err := wc.Ping(r.cfg.pingTimeout())
	if err != nil {
		p.misses++
		p.up.Store(false)
		p.mu.Unlock()
		return
	}
	p.misses = 0
	p.rtt.Store(int64(rtt))
	if p.drainLocked() {
		p.up.Store(true)
	} else {
		p.up.Store(false)
	}
	p.mu.Unlock()
	if recovering {
		r.syncTopology(p)
	}
}

// updateLeases promotes and demotes replicas from the miss counters: a
// bootstrapped replica of a leader missing PromoteAfter consecutive probes
// becomes read-primary (queries served from it stop being partial); the
// first successful probe of the leader demotes it again.
func (r *Router) updateLeases() {
	r.mu.RLock()
	reps := make(map[string]*replica, len(r.replicas))
	for l, rep := range r.replicas {
		reps[l] = rep
	}
	peers := r.peers
	r.mu.RUnlock()
	promoteAfter := r.cfg.promoteAfter()
	for leader, rep := range reps {
		p := peers[leader]
		if p == nil {
			continue
		}
		p.mu.Lock()
		misses := p.misses
		p.mu.Unlock()
		rep.mu.Lock()
		switch {
		case misses >= promoteAfter && rep.bootstrapped && !rep.promoted:
			rep.promoted = true
			r.promotions.Add(1)
		case misses == 0 && rep.promoted:
			rep.promoted = false
		}
		rep.mu.Unlock()
	}
}

// syncTopology exchanges topologies with a peer: adopt theirs if newer,
// push ours if theirs is older.
func (r *Router) syncTopology(p *peer) {
	t, err := p.rc.topo(r.cfg.rpcTimeout())
	if err != nil {
		return
	}
	mine := r.topo.Load()
	switch {
	case t.Epoch > mine.Epoch:
		r.applyTopology(t)
	case t.Epoch < mine.Epoch:
		_, _ = p.rc.topoPush(mine, r.cfg.rpcTimeout())
	}
}

// --- background loop ---

// Start launches the maintenance loop: flush forward buffers, probe peers
// (draining hints when one comes back), and pump replication. Stop halts it.
func (r *Router) Start(flushEvery, checkEvery time.Duration) {
	r.bg.Do(func() {
		if flushEvery <= 0 {
			flushEvery = 200 * time.Millisecond
		}
		if checkEvery <= 0 {
			checkEvery = time.Second
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			flushT := time.NewTicker(flushEvery)
			checkT := time.NewTicker(checkEvery)
			defer flushT.Stop()
			defer checkT.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-flushT.C:
					r.Flush()
				case <-checkT.C:
					r.CheckPeers()
					r.PumpReplication()
				}
			}
		}()
	})
}

// Stop halts the background loop (if running) and closes peer connections.
// Pending forward buffers are flushed one last time first.
func (r *Router) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.wg.Wait()
	r.Flush()
	for _, p := range r.peersSnapshot() {
		p.mu.Lock()
		if p.wc != nil {
			_ = p.wc.Close()
		}
		p.rc.Close()
		p.mu.Unlock()
	}
}

// --- stats ---

// PeerStats is one remote node as this router sees it.
type PeerStats struct {
	ID                 string `json:"id"`
	Addr               string `json:"addr"`
	Up                 bool   `json:"up"`
	State              string `json:"state"` // up | down | suspect | dead
	Misses             int    `json:"misses"`
	RTTMicros          int64  `json:"rtt_us"`
	ForwardedBatches   uint64 `json:"forwarded_batches"`
	ForwardedEntries   uint64 `json:"forwarded_entries"`
	FailedSends        uint64 `json:"failed_sends"`
	HintedBatches      uint64 `json:"hinted_batches"`
	DrainedBatches     uint64 `json:"drained_batches"`
	DroppedHintEntries uint64 `json:"dropped_hint_entries"`
	HintSavedBytes     uint64 `json:"hint_saved_bytes"`
	PendingHintBatches int    `json:"pending_hint_batches"`
	PendingBufEntries  int    `json:"pending_buf_entries"`
}

// ReplicaStats is one leader this node follows.
type ReplicaStats struct {
	Leader       string `json:"leader"`
	Bootstrapped bool   `json:"bootstrapped"`
	Promoted     bool   `json:"promoted"`
	Records      uint64 `json:"records"`
	LagBytes     int64  `json:"lag_bytes"`
	Series       int    `json:"series"`
	Samples      int    `json:"samples"`
}

// Stats is the cluster section of /stats.
type Stats struct {
	Self             string         `json:"self"`
	Epoch            uint64         `json:"epoch"`
	Nodes            []string       `json:"nodes"`
	Members          []Member       `json:"members"`
	VNodes           int            `json:"vnodes"`
	Replication      int            `json:"replication"`
	LocalEntries     uint64         `json:"local_entries"`
	ForwardedEntries uint64         `json:"forwarded_entries"`
	ReceivedBatches  uint64         `json:"received_batches"`
	ReceivedEntries  uint64         `json:"received_entries"`
	ScatterQueries   uint64         `json:"scatter_queries"`
	PartialQueries   uint64         `json:"partial_queries"`
	ReplicaReads     uint64         `json:"replica_reads"`
	EpochFlips       uint64         `json:"epoch_flips"`
	ReroutedEntries  uint64         `json:"rerouted_entries"`
	ReadRepairs      uint64         `json:"read_repairs"`
	Promotions       uint64         `json:"promotions"`
	HandoffEntries   uint64         `json:"handoff_entries"`
	Peers            []PeerStats    `json:"peers"`
	Replicas         []ReplicaStats `json:"replicas"`
}

// Stats snapshots the router's counters.
func (r *Router) Stats() Stats {
	t := r.topo.Load()
	st := Stats{
		Self:             r.self,
		Epoch:            t.Epoch,
		Nodes:            t.Ring().Nodes(),
		Members:          append([]Member(nil), t.Members...),
		VNodes:           t.Ring().VNodes(),
		Replication:      t.Ring().RF(),
		LocalEntries:     r.localEntries.Load(),
		ForwardedEntries: r.forwardedAllowed.Load(),
		ReceivedBatches:  r.receivedBatches.Load(),
		ReceivedEntries:  r.receivedEntries.Load(),
		ScatterQueries:   r.scatterQueries.Load(),
		PartialQueries:   r.partialQueries.Load(),
		ReplicaReads:     r.replicaReads.Load(),
		EpochFlips:       r.epochFlips.Load(),
		ReroutedEntries:  r.reroutedEntries.Load(),
		ReadRepairs:      r.readRepairs.Load(),
		Promotions:       r.promotions.Load(),
		HandoffEntries:   r.handoffEntries.Load(),
	}
	suspectAfter, promoteAfter := r.cfg.suspectAfter(), r.cfg.promoteAfter()
	for _, p := range r.peersSnapshot() {
		p.mu.Lock()
		state := "up"
		if !p.up.Load() {
			switch {
			case p.misses >= promoteAfter:
				state = "dead"
			case p.misses >= suspectAfter:
				state = "suspect"
			default:
				state = "down"
			}
		}
		ps := PeerStats{
			ID:                 p.id,
			Addr:               p.addr,
			Up:                 p.up.Load(),
			State:              state,
			Misses:             p.misses,
			RTTMicros:          p.rtt.Load() / 1000,
			ForwardedBatches:   p.forwardedBatches,
			ForwardedEntries:   p.forwardedEntries,
			FailedSends:        p.failedSends,
			HintedBatches:      p.hintedBatches,
			DrainedBatches:     p.drainedBatches,
			DroppedHintEntries: p.droppedHintEntries,
			HintSavedBytes:     p.hintSavedBytes,
			PendingHintBatches: len(p.hints),
			PendingBufEntries:  len(p.buf),
		}
		p.mu.Unlock()
		st.Peers = append(st.Peers, ps)
	}
	for _, rep := range r.replicasSnapshot() {
		st.Replicas = append(st.Replicas, rep.stats())
	}
	return st
}

// PendingHints reports the total hinted batches parked across all peers —
// the chaos campaign's "handoff fully drained" gauge.
func (r *Router) PendingHints() int {
	total := 0
	for _, p := range r.peersSnapshot() {
		p.mu.Lock()
		total += len(p.hints)
		p.mu.Unlock()
	}
	return total
}

// DroppedHintEntries reports entries dropped from overflowing hint queues,
// including queues of peers since retired by membership changes.
func (r *Router) DroppedHintEntries() uint64 {
	r.mu.RLock()
	total := r.departedDropped
	list := append([]*peer(nil), r.peerList...)
	r.mu.RUnlock()
	for _, p := range list {
		p.mu.Lock()
		total += p.droppedHintEntries
		p.mu.Unlock()
	}
	return total
}
