package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metric"
	"repro/internal/persist"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

// Appender is the local ingest sink a router writes owned samples to —
// a bare timeseries.Store or a persist.DurableStore.
type Appender interface {
	AppendBatch(entries []timeseries.BatchEntry) (int, error)
}

// Peer names one cluster member: a stable node ID (the ring identity) and
// the address of its cluster listener.
type Peer struct {
	ID   string
	Addr string
}

// Config wires a Router into one odad process.
type Config struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers is the full static membership, including self.
	Peers []Peer
	// VNodes is the virtual-node count per peer (0 = DefaultVNodes).
	VNodes int
	// Replication is the replication factor (clamped to [1, len(Peers)]).
	Replication int
	// Dial opens connections to peers (nil = TCP); chaos tests inject
	// fault-wrapped in-memory transports here.
	Dial wire.Dialer
	// Local receives samples this node owns (and forwarded samples from
	// peers). Typically the DurableStore when one is configured.
	Local Appender
	// Store is this node's primary read store.
	Store *timeseries.Store
	// Durable, when set, lets this node serve WAL replication to followers.
	Durable *persist.DurableStore
	// ReplicaOptions configure replica stores (must match the cluster-wide
	// store configuration — in particular rollup tiers — so planned queries
	// against a replica behave like the leader's).
	ReplicaOptions []timeseries.Option
	// LegacyWire forwards peer batches with the v1 keyed frames instead of
	// the v2 dictionary protocol — an escape hatch for mixed-version rings.
	LegacyWire bool

	// FlushEntries is the per-peer forward buffer size that triggers an
	// automatic flush (0 = 256).
	FlushEntries int
	// MaxHintBatches bounds the per-peer hinted-handoff queue (0 = 4096);
	// overflow drops the newest data and counts it.
	MaxHintBatches int
	// PingTimeout bounds failure-detector probes (0 = 2s).
	PingTimeout time.Duration
	// SendTimeout bounds batch forwards (0 = 5s).
	SendTimeout time.Duration
	// RPCTimeout bounds query/replication round trips (0 = 5s).
	RPCTimeout time.Duration
	// ReplPullBytes is the per-pull WAL byte budget (0 = 1MiB).
	ReplPullBytes int64
}

func (c *Config) flushEntries() int {
	if c.FlushEntries <= 0 {
		return 256
	}
	return c.FlushEntries
}

func (c *Config) maxHintBatches() int {
	if c.MaxHintBatches <= 0 {
		return 4096
	}
	return c.MaxHintBatches
}

func (c *Config) pingTimeout() time.Duration {
	if c.PingTimeout <= 0 {
		return 2 * time.Second
	}
	return c.PingTimeout
}

func (c *Config) sendTimeout() time.Duration {
	if c.SendTimeout <= 0 {
		return 5 * time.Second
	}
	return c.SendTimeout
}

func (c *Config) rpcTimeout() time.Duration {
	if c.RPCTimeout <= 0 {
		return 5 * time.Second
	}
	return c.RPCTimeout
}

func (c *Config) replPullBytes() int64 {
	if c.ReplPullBytes <= 0 {
		return 1 << 20
	}
	return c.ReplPullBytes
}

// Router is the cluster brain of one node: it places series on the ring,
// forwards foreign appends to their owners (parking them in a hinted-handoff
// queue while an owner is down), scatters queries so only partial aggregates
// cross the wire, and pulls WAL records from the leaders it follows. It
// implements the collector's batch-appender contract, so it drops into any
// ingest path a plain store fits.
type Router struct {
	cfg  Config
	ring *Ring
	self string

	// refCache fronts the local appender with the series-ref fast path when
	// the appender supports it (stores and durable stores both do).
	refCache *timeseries.RefCache

	peers    map[string]*peer // remote peers only
	peerList []*peer          // sorted by ID for deterministic iteration
	replicas map[string]*replica

	localEntries     atomic.Uint64
	forwardedAllowed atomic.Uint64 // entries accepted for forwarding (sent or hinted)
	receivedBatches  atomic.Uint64
	receivedEntries  atomic.Uint64
	scatterQueries   atomic.Uint64
	partialQueries   atomic.Uint64
	replicaReads     atomic.Uint64 // queries this node served from a replica store

	stop chan struct{}
	wg   sync.WaitGroup
	bg   sync.Once
}

// peer is the router's view of one remote node: its transport clients, the
// pending forward buffer, and the hinted-handoff queue that preserves
// delivery order across downtime.
type peer struct {
	id   string
	addr string
	self string // this node's ID, stamped as wire agent on forwards
	dial wire.Dialer

	sendTimeout time.Duration

	legacyWire bool

	mu    sync.Mutex
	wc    *wire.Client // lazy: the peer may be down at startup
	rc    *rpcClient
	buf   []timeseries.BatchEntry
	hints [][]hintEntry

	// Hint dictionary: parked entries carry a 4-byte ref into hintDefs
	// instead of a full metric ID, so a long outage queues samples, not
	// strings. Defs are interned per peer and live for the peer's lifetime
	// (bounded by series cardinality), which keeps refs in older parked
	// batches valid across drains and re-parks.
	hintRefs map[string]uint32 // series key -> index into hintDefs
	hintDefs []hintDef

	// counters under mu
	forwardedBatches   uint64
	forwardedEntries   uint64
	failedSends        uint64
	hintedBatches      uint64
	drainedBatches     uint64
	droppedHintEntries uint64
	hintSavedBytes     uint64

	up  atomic.Bool
	rtt atomic.Int64 // last ping round trip, nanoseconds
}

// hintDef is one interned series definition in a peer's hint dictionary.
type hintDef struct {
	id   metric.ID
	kind metric.Kind
	unit metric.Unit
}

// hintEntry is one parked sample: a dictionary ref plus the sample itself.
type hintEntry struct {
	ref uint32
	t   int64
	v   float64
}

// New validates the config and builds the router. The ring, peer set and
// replica assignments are fixed for the router's lifetime (static
// membership); Start launches the background flush/health/replication loop,
// or tests drive Flush/CheckPeers/PumpReplication manually.
func New(cfg Config) (*Router, error) {
	if cfg.Local == nil || cfg.Store == nil {
		return nil, fmt.Errorf("cluster: config needs Local appender and Store")
	}
	ids := make([]string, 0, len(cfg.Peers))
	addr := make(map[string]string, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p.ID == "" {
			return nil, fmt.Errorf("cluster: peer with empty node id")
		}
		if _, dup := addr[p.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", p.ID)
		}
		ids = append(ids, p.ID)
		addr[p.ID] = p.Addr
	}
	if _, ok := addr[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self node %q not in peer set", cfg.Self)
	}
	ring, err := NewRing(ids, cfg.VNodes, cfg.Replication)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:      cfg,
		ring:     ring,
		self:     cfg.Self,
		peers:    make(map[string]*peer, len(ids)-1),
		replicas: make(map[string]*replica),
		stop:     make(chan struct{}),
	}
	if ra, ok := cfg.Local.(timeseries.RefAppender); ok {
		r.refCache = timeseries.NewRefCache(ra)
	}
	for _, id := range ring.Nodes() {
		if id == cfg.Self {
			continue
		}
		p := &peer{
			id:          id,
			addr:        addr[id],
			self:        cfg.Self,
			dial:        cfg.Dial,
			sendTimeout: cfg.sendTimeout(),
			legacyWire:  cfg.LegacyWire,
			rc:          newRPCClient(addr[id], cfg.Dial),
		}
		p.up.Store(true) // optimistic until a send or ping says otherwise
		r.peers[id] = p
		r.peerList = append(r.peerList, p)
	}
	sort.Slice(r.peerList, func(i, j int) bool { return r.peerList[i].id < r.peerList[j].id })
	for _, leader := range ring.Leaders(cfg.Self) {
		r.replicas[leader] = newReplica(leader, cfg.ReplicaOptions)
	}
	return r, nil
}

// Self returns this node's ID.
func (r *Router) Self() string { return r.self }

// Ring exposes the placement ring (read-only).
func (r *Router) Ring() *Ring { return r.ring }

// --- ingest path ---

// AppendBatch routes each entry to the node owning its series: owned
// entries hit the local appender directly, foreign ones buffer per peer and
// flush as wire batches. The returned count includes every forwarded entry —
// once buffered it is the router's responsibility, delivered by a send, a
// hinted-handoff drain, or counted in DroppedHintEntries.
func (r *Router) AppendBatch(entries []timeseries.BatchEntry) (int, error) {
	if len(r.peers) == 0 {
		n, err := r.appendLocal(entries, nil)
		r.localEntries.Add(uint64(n))
		return n, err
	}
	var local []timeseries.BatchEntry
	var localKeys []string // ring-routing keys, reused by the ref cache
	var groups map[*peer][]timeseries.BatchEntry
	for i := range entries {
		e := &entries[i]
		key := e.ID.Key()
		owner := r.ring.Primary(key)
		if owner == r.self {
			local = append(local, *e)
			localKeys = append(localKeys, key)
			continue
		}
		if groups == nil {
			groups = make(map[*peer][]timeseries.BatchEntry, len(r.peers))
		}
		p := r.peers[owner]
		groups[p] = append(groups[p], *e)
	}
	accepted := 0
	var firstErr error
	if len(local) > 0 {
		n, err := r.appendLocal(local, localKeys)
		r.localEntries.Add(uint64(n))
		accepted += n
		firstErr = err
	}
	threshold := r.cfg.flushEntries()
	for p, g := range groups {
		p.mu.Lock()
		p.buf = append(p.buf, g...)
		if len(p.buf) >= threshold {
			p.flushLocked(r.cfg.maxHintBatches())
		}
		p.mu.Unlock()
		accepted += len(g)
		r.forwardedAllowed.Add(uint64(len(g)))
	}
	return accepted, firstErr
}

// appendLocal lands entries on this node's appender, through the series-ref
// fast path when the appender supports it. keys[i], when non-nil, must be
// entries[i].ID.Key() (the ring already serialized them for routing).
func (r *Router) appendLocal(entries []timeseries.BatchEntry, keys []string) (int, error) {
	if r.refCache != nil {
		return r.refCache.AppendBatchKeys(entries, keys)
	}
	return r.cfg.Local.AppendBatch(entries)
}

// Flush pushes every peer's pending forward buffer out now. Tests and the
// shutdown path call it directly; the background loop calls it on a timer.
func (r *Router) Flush() {
	maxHints := r.cfg.maxHintBatches()
	for _, p := range r.peerList {
		p.mu.Lock()
		p.flushLocked(maxHints)
		p.mu.Unlock()
	}
}

// wireClientLocked lazily dials the batch-forwarding client; p.mu held.
func (p *peer) wireClientLocked() (*wire.Client, error) {
	if p.wc != nil {
		return p.wc, nil
	}
	wc, err := wire.DialWith(p.dial, p.addr)
	if err != nil {
		return nil, err
	}
	wc.SetTimeout(p.sendTimeout)
	if !p.legacyWire {
		wc.EnableDict()
	}
	p.wc = wc
	return wc, nil
}

func (p *peer) sendLocked(entries []timeseries.BatchEntry) error {
	wc, err := p.wireClientLocked()
	if err != nil {
		return err
	}
	return wc.Send(toWireBatch(p.self, entries))
}

// flushLocked dispatches the pending buffer: straight to the peer when it
// is up and no hints are queued, otherwise onto the hint queue — new data
// must never overtake parked data, or a series' timestamps would arrive out
// of order and be rejected. A failed send parks its batch at the FRONT of
// the queue, since it is older than everything already hinted.
func (p *peer) flushLocked(maxHints int) {
	if len(p.buf) == 0 {
		return
	}
	entries := p.buf
	p.buf = nil
	if !p.up.Load() || len(p.hints) > 0 {
		p.hintLocked(entries, false, maxHints)
		return
	}
	if err := p.sendLocked(entries); err != nil {
		p.failedSends++
		p.up.Store(false)
		p.hintLocked(entries, true, maxHints)
		return
	}
	p.forwardedBatches++
	p.forwardedEntries += uint64(len(entries))
}

func (p *peer) hintLocked(entries []timeseries.BatchEntry, front bool, maxHints int) {
	if len(p.hints) >= maxHints {
		if !front {
			p.droppedHintEntries += uint64(len(entries))
			return
		}
		// A failed send is older than everything queued: make room by
		// dropping the newest hint rather than the oldest data.
		last := p.hints[len(p.hints)-1]
		p.hints = p.hints[:len(p.hints)-1]
		p.droppedHintEntries += uint64(len(last))
	}
	packed := p.packHintLocked(entries)
	if front {
		p.hints = append([][]hintEntry{packed}, p.hints...)
	} else {
		p.hints = append(p.hints, packed)
	}
	p.hintedBatches++
}

// packHintLocked dictionary-encodes a batch for parking: each entry's series
// is interned into the peer's hint dictionary and the parked form carries
// only the ref. Every entry whose series was already defined saves its key,
// unit and kind byte against the 4-byte ref; the running total feeds
// PeerStats.HintSavedBytes.
func (p *peer) packHintLocked(entries []timeseries.BatchEntry) []hintEntry {
	packed := make([]hintEntry, len(entries))
	for i := range entries {
		e := &entries[i]
		key := e.ID.Key()
		ref, ok := p.hintRefs[key]
		if !ok {
			if p.hintRefs == nil {
				p.hintRefs = make(map[string]uint32)
			}
			ref = uint32(len(p.hintDefs))
			p.hintDefs = append(p.hintDefs, hintDef{id: e.ID, kind: e.Kind, unit: e.Unit})
			p.hintRefs[key] = ref
		} else if saved := len(key) + len(e.Unit) + 1 - 4; saved > 0 {
			p.hintSavedBytes += uint64(saved)
		}
		packed[i] = hintEntry{ref: ref, t: e.T, v: e.V}
	}
	return packed
}

// unpackHintLocked rebuilds append entries from a parked batch.
func (p *peer) unpackHintLocked(batch []hintEntry) []timeseries.BatchEntry {
	entries := make([]timeseries.BatchEntry, len(batch))
	for i, h := range batch {
		d := &p.hintDefs[h.ref]
		entries[i] = timeseries.BatchEntry{ID: d.id, Kind: d.kind, Unit: d.unit, T: h.t, V: h.v}
	}
	return entries
}

// drainLocked replays hinted batches in FIFO order; it stops at the first
// failure (the peer relapsed) and reports whether the queue fully drained.
func (p *peer) drainLocked() bool {
	for len(p.hints) > 0 {
		entries := p.unpackHintLocked(p.hints[0])
		if err := p.sendLocked(entries); err != nil {
			p.failedSends++
			return false
		}
		p.hints = p.hints[1:]
		p.drainedBatches++
		p.forwardedBatches++
		p.forwardedEntries += uint64(len(entries))
	}
	return true
}

// toWireBatch packs routed entries into a wire batch, grouping consecutive
// same-series entries into one record (entries arrive in series runs from
// the collector, so this usually collapses to one record per series).
func toWireBatch(agent string, entries []timeseries.BatchEntry) *wire.Batch {
	b := &wire.Batch{Agent: agent}
	cur := -1
	var curKey string
	for i := range entries {
		e := &entries[i]
		k := e.ID.Key()
		if cur < 0 || k != curKey {
			b.Records = append(b.Records, wire.Record{ID: e.ID, Kind: e.Kind, Unit: e.Unit})
			cur = len(b.Records) - 1
			curKey = k
		}
		b.Records[cur].Samples = append(b.Records[cur].Samples, metric.Sample{T: e.T, V: e.V})
	}
	return b
}

// entriesFromBatch flattens a wire batch back into append entries.
func entriesFromBatch(b *wire.Batch) []timeseries.BatchEntry {
	n := 0
	for i := range b.Records {
		n += len(b.Records[i].Samples)
	}
	entries := make([]timeseries.BatchEntry, 0, n)
	for i := range b.Records {
		rec := &b.Records[i]
		for _, sm := range rec.Samples {
			entries = append(entries, timeseries.BatchEntry{
				ID: rec.ID, Kind: rec.Kind, Unit: rec.Unit, T: sm.T, V: sm.V,
			})
		}
	}
	return entries
}

// applyForwarded lands a batch a peer routed to us. It goes straight to the
// local appender — the sender already placed it, so re-routing could only
// disagree (and loop) if configs diverged.
func (r *Router) applyForwarded(b *wire.Batch) {
	entries := entriesFromBatch(b)
	n, _ := r.appendLocal(entries, nil)
	r.receivedBatches.Add(1)
	r.receivedEntries.Add(uint64(n))
}

// --- failure detector ---

// CheckPeers probes every peer with a ping. A peer that answers — however
// slowly — is alive; its hinted batches drain in FIFO order and, once the
// queue is empty, it is marked up so fresh traffic flows directly again. A
// peer that does not answer is marked down, parking subsequent traffic in
// its hint queue. Tests call this directly; Start runs it on a timer.
func (r *Router) CheckPeers() {
	for _, p := range r.peerList {
		r.checkPeer(p)
	}
}

func (r *Router) checkPeer(p *peer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wc, err := p.wireClientLocked()
	if err != nil {
		p.up.Store(false)
		return
	}
	rtt, err := wc.Ping(r.cfg.pingTimeout())
	if err != nil {
		p.up.Store(false)
		return
	}
	p.rtt.Store(int64(rtt))
	if p.drainLocked() {
		p.up.Store(true)
	} else {
		p.up.Store(false)
	}
}

// --- background loop ---

// Start launches the maintenance loop: flush forward buffers, probe peers
// (draining hints when one comes back), and pump replication. Stop halts it.
func (r *Router) Start(flushEvery, checkEvery time.Duration) {
	r.bg.Do(func() {
		if flushEvery <= 0 {
			flushEvery = 200 * time.Millisecond
		}
		if checkEvery <= 0 {
			checkEvery = time.Second
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			flushT := time.NewTicker(flushEvery)
			checkT := time.NewTicker(checkEvery)
			defer flushT.Stop()
			defer checkT.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-flushT.C:
					r.Flush()
				case <-checkT.C:
					r.CheckPeers()
					r.PumpReplication()
				}
			}
		}()
	})
}

// Stop halts the background loop (if running) and closes peer connections.
// Pending forward buffers are flushed one last time first.
func (r *Router) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.wg.Wait()
	r.Flush()
	for _, p := range r.peerList {
		p.mu.Lock()
		if p.wc != nil {
			_ = p.wc.Close()
		}
		p.rc.Close()
		p.mu.Unlock()
	}
}

// --- stats ---

// PeerStats is one remote node as this router sees it.
type PeerStats struct {
	ID                 string `json:"id"`
	Addr               string `json:"addr"`
	Up                 bool   `json:"up"`
	RTTMicros          int64  `json:"rtt_us"`
	ForwardedBatches   uint64 `json:"forwarded_batches"`
	ForwardedEntries   uint64 `json:"forwarded_entries"`
	FailedSends        uint64 `json:"failed_sends"`
	HintedBatches      uint64 `json:"hinted_batches"`
	DrainedBatches     uint64 `json:"drained_batches"`
	DroppedHintEntries uint64 `json:"dropped_hint_entries"`
	HintSavedBytes     uint64 `json:"hint_saved_bytes"`
	PendingHintBatches int    `json:"pending_hint_batches"`
	PendingBufEntries  int    `json:"pending_buf_entries"`
}

// ReplicaStats is one leader this node follows.
type ReplicaStats struct {
	Leader       string `json:"leader"`
	Bootstrapped bool   `json:"bootstrapped"`
	Records      uint64 `json:"records"`
	LagBytes     int64  `json:"lag_bytes"`
	Series       int    `json:"series"`
	Samples      int    `json:"samples"`
}

// Stats is the cluster section of /stats.
type Stats struct {
	Self             string         `json:"self"`
	Nodes            []string       `json:"nodes"`
	VNodes           int            `json:"vnodes"`
	Replication      int            `json:"replication"`
	LocalEntries     uint64         `json:"local_entries"`
	ForwardedEntries uint64         `json:"forwarded_entries"`
	ReceivedBatches  uint64         `json:"received_batches"`
	ReceivedEntries  uint64         `json:"received_entries"`
	ScatterQueries   uint64         `json:"scatter_queries"`
	PartialQueries   uint64         `json:"partial_queries"`
	ReplicaReads     uint64         `json:"replica_reads"`
	Peers            []PeerStats    `json:"peers"`
	Replicas         []ReplicaStats `json:"replicas"`
}

// Stats snapshots the router's counters.
func (r *Router) Stats() Stats {
	st := Stats{
		Self:             r.self,
		Nodes:            r.ring.Nodes(),
		VNodes:           r.ring.VNodes(),
		Replication:      r.ring.RF(),
		LocalEntries:     r.localEntries.Load(),
		ForwardedEntries: r.forwardedAllowed.Load(),
		ReceivedBatches:  r.receivedBatches.Load(),
		ReceivedEntries:  r.receivedEntries.Load(),
		ScatterQueries:   r.scatterQueries.Load(),
		PartialQueries:   r.partialQueries.Load(),
		ReplicaReads:     r.replicaReads.Load(),
	}
	for _, p := range r.peerList {
		p.mu.Lock()
		ps := PeerStats{
			ID:                 p.id,
			Addr:               p.addr,
			Up:                 p.up.Load(),
			RTTMicros:          p.rtt.Load() / 1000,
			ForwardedBatches:   p.forwardedBatches,
			ForwardedEntries:   p.forwardedEntries,
			FailedSends:        p.failedSends,
			HintedBatches:      p.hintedBatches,
			DrainedBatches:     p.drainedBatches,
			DroppedHintEntries: p.droppedHintEntries,
			HintSavedBytes:     p.hintSavedBytes,
			PendingHintBatches: len(p.hints),
			PendingBufEntries:  len(p.buf),
		}
		p.mu.Unlock()
		st.Peers = append(st.Peers, ps)
	}
	leaders := make([]string, 0, len(r.replicas))
	for l := range r.replicas {
		leaders = append(leaders, l)
	}
	sort.Strings(leaders)
	for _, l := range leaders {
		st.Replicas = append(st.Replicas, r.replicas[l].stats())
	}
	return st
}

// PendingHints reports the total hinted batches parked across all peers —
// the chaos campaign's "handoff fully drained" gauge.
func (r *Router) PendingHints() int {
	total := 0
	for _, p := range r.peerList {
		p.mu.Lock()
		total += len(p.hints)
		p.mu.Unlock()
	}
	return total
}

// DroppedHintEntries reports entries dropped from overflowing hint queues.
func (r *Router) DroppedHintEntries() uint64 {
	var total uint64
	for _, p := range r.peerList {
		p.mu.Lock()
		total += p.droppedHintEntries
		p.mu.Unlock()
	}
	return total
}
