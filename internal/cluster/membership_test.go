package cluster

import (
	"testing"

	"repro/internal/metric"
	"repro/internal/persist"
	"repro/internal/timeseries"
)

// --- topology value tests --------------------------------------------------

func TestTopologyTransitions(t *testing.T) {
	members := []Member{
		{ID: "n2", Addr: "mem://n2"},
		{ID: "n1", Addr: "mem://n1"},
	}
	topo, err := NewTopology(1, members, 64, 2)
	if err != nil {
		t.Fatalf("NewTopology: %v", err)
	}
	if got := topo.MemberIDs(); got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("members not sorted: %v", got)
	}

	joined, err := topo.WithJoined(Member{ID: "n3", Addr: "mem://n3"})
	if err != nil {
		t.Fatalf("WithJoined: %v", err)
	}
	if joined.Epoch != 2 || len(joined.Members) != 3 || !joined.Has("n3") {
		t.Fatalf("WithJoined: epoch %d members %v", joined.Epoch, joined.MemberIDs())
	}
	if topo.Epoch != 1 || topo.Has("n3") {
		t.Fatal("WithJoined mutated the source topology")
	}
	if _, err := topo.WithJoined(Member{ID: "n1", Addr: "mem://dup"}); err == nil {
		t.Fatal("WithJoined accepted an existing member")
	}

	left, err := joined.WithLeft("n1")
	if err != nil {
		t.Fatalf("WithLeft: %v", err)
	}
	if left.Epoch != 3 || left.Has("n1") || len(left.Members) != 2 {
		t.Fatalf("WithLeft: epoch %d members %v", left.Epoch, left.MemberIDs())
	}
	if _, err := joined.WithLeft("ghost"); err == nil {
		t.Fatal("WithLeft accepted a non-member")
	}
	solo, err := NewTopology(9, []Member{{ID: "only", Addr: "mem://only"}}, 0, 1)
	if err != nil {
		t.Fatalf("solo topology: %v", err)
	}
	if _, err := solo.WithLeft("only"); err == nil {
		t.Fatal("WithLeft removed the last member")
	}
}

func TestTopologyEncodeDecodeRoundTrip(t *testing.T) {
	topo, err := NewTopology(7, []Member{
		{ID: "alpha", Addr: "mem://alpha"},
		{ID: "beta", Addr: "mem://beta:9900"},
		{ID: "gamma", Addr: ""},
	}, 48, 2)
	if err != nil {
		t.Fatalf("NewTopology: %v", err)
	}
	got, err := decodeTopology(encodeTopology(topo))
	if err != nil {
		t.Fatalf("decodeTopology: %v", err)
	}
	if got.Epoch != topo.Epoch || got.VNodes != topo.VNodes || got.RF != topo.RF {
		t.Fatalf("round trip lost geometry: %+v vs %+v", got, topo)
	}
	if len(got.Members) != len(topo.Members) {
		t.Fatalf("round trip lost members: %v", got.MemberIDs())
	}
	for i, m := range topo.Members {
		if got.Members[i] != m {
			t.Fatalf("member %d: %+v != %+v", i, got.Members[i], m)
		}
	}
	if got.Ring() == nil || got.Ring().Primary("some.key") != topo.Ring().Primary("some.key") {
		t.Fatal("decoded topology places keys differently")
	}
	if _, err := decodeTopology([]byte{0xff}); err == nil {
		t.Fatal("decodeTopology accepted garbage")
	}
}

// --- runtime membership ----------------------------------------------------

// newSoloNode builds a fresh single-member node on an existing fabric — the
// shape a node has just before `odactl cluster join` points it at a seed.
func newSoloNode(t testing.TB, fabric *memNet, id string, durable bool) *testNode {
	t.Helper()
	n := &testNode{id: id, addr: "mem://" + id}
	var local Appender
	if durable {
		d, err := persist.Open(t.TempDir(), persist.Options{ChunkSize: 16, Fsync: persist.FsyncAlways})
		if err != nil {
			t.Fatalf("persist.Open(%s): %v", id, err)
		}
		n.durable = d
		n.store = d.Store()
		local = d
	} else {
		n.store = timeseries.NewStore(16)
		local = n.store
	}
	r, err := New(Config{
		Self:        id,
		Peers:       []Peer{{ID: id, Addr: n.addr}},
		Replication: 1,
		Dial:        fabric.dialer(),
		Local:       local,
		Store:       n.store,
		Durable:     n.durable,
	})
	if err != nil {
		t.Fatalf("cluster.New(%s): %v", id, err)
	}
	n.router = r
	n.srv = NewServer(fabric.listen(n.addr), r)
	t.Cleanup(func() {
		n.router.Stop()
		n.srv.Close()
		if n.durable != nil {
			_ = n.durable.Close()
		}
	})
	return n
}

// appendAll pushes entries through r in fixed-size batches.
func appendAll(t testing.TB, r *Router, entries []timeseries.BatchEntry, batch int) {
	t.Helper()
	for i := 0; i < len(entries); i += batch {
		end := min(i+batch, len(entries))
		if _, err := r.AppendBatch(entries[i:end]); err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
	}
}

// TestClusterRuntimeJoinUnderLiveIngest is the tentpole acceptance check: a
// 3-node RF=2 cluster under live ingest accepts a 4th node. The join must
// move only ~1/N of the keyspace (all of it toward the joiner), flip every
// node to the new epoch, and lose no appended sample across the flip — every
// key's post-join owner answers bit-identically to a single store that saw
// the full dataset.
func TestClusterRuntimeJoinUnderLiveIngest(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes, fabric := startCluster(t, ids, 2, true, nil)
	ds := makeDataset(60, 30, 91)

	ref := timeseries.NewStore(16)
	if _, err := ref.AppendBatch(ds.entries); err != nil {
		t.Fatalf("reference store: %v", err)
	}

	r1 := nodes["n1"].router
	half := len(ds.entries) / 2
	appendAll(t, r1, ds.entries[:half], 97)
	settle(nodes)

	joiner := newSoloNode(t, fabric, "n4", true)
	oldRing := r1.Ring()

	// The second half of the dataset streams in WHILE the join runs.
	ingestErr := make(chan error, 1)
	go func() {
		for i := half; i < len(ds.entries); i += 53 {
			end := min(i+53, len(ds.entries))
			if _, err := r1.AppendBatch(ds.entries[i:end]); err != nil {
				ingestErr <- err
				return
			}
			r1.Flush()
		}
		ingestErr <- nil
	}()
	joinErr := joiner.router.JoinCluster("mem://n1")
	if err := <-ingestErr; err != nil {
		t.Fatalf("live ingest: %v", err)
	}
	if joinErr != nil {
		t.Fatalf("JoinCluster: %v", joinErr)
	}

	all := map[string]*testNode{"n4": joiner}
	for id, n := range nodes {
		all[id] = n
	}
	// Two settle rounds: entries a stale sender parked on an old owner may
	// take one re-route hop before reaching the joiner.
	settle(all)
	settle(all)

	for id, n := range all {
		if got := n.router.Epoch(); got != 2 {
			t.Fatalf("node %s epoch = %d, want 2", id, got)
		}
	}

	newRing := joiner.router.Ring()
	moved := 0
	for _, key := range ds.keys {
		pb, pa := oldRing.Primary(key), newRing.Primary(key)
		if pb == pa {
			continue
		}
		if pa != "n4" {
			t.Fatalf("key %q moved %s -> %s; only the joiner may gain keys", key, pb, pa)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("joiner owns no dataset key; dataset too small to exercise the handoff")
	}
	// Fair share is 1/4 of the keyspace; allow the same 50% vnode-variance
	// slack as TestRingRebalanceMovesAboutOneNth.
	if limit := len(ds.keys) * 3 / (2 * 4); moved > limit {
		t.Fatalf("join moved %d of %d keys, want <= %d (1.5x fair 1/4 share)", moved, len(ds.keys), limit)
	}
	if joiner.router.Stats().HandoffEntries == 0 {
		t.Fatal("join streamed no handoff entries")
	}

	// No sample lost: the owner of each key holds it bit-identically to the
	// single-store oracle, and a distributed query through the joiner agrees.
	for _, key := range ds.keys {
		refID, _ := ref.IDForKey(key)
		wantV, wantN, err := ref.ReducePlanned(refID, ds.from, ds.to, timeseries.AggSum)
		if err != nil {
			t.Fatalf("oracle reduce: %v", err)
		}
		owner := newRing.Primary(key)
		st := all[owner].store
		id, ok := st.IDForKey(key)
		if !ok {
			t.Fatalf("owner %s lost key %q across the epoch flip", owner, key)
		}
		gotV, gotN, err := st.ReducePlanned(id, ds.from, ds.to, timeseries.AggSum)
		if err != nil {
			t.Fatalf("owner reduce: %v", err)
		}
		if !bitsEq(gotV, wantV) || gotN != wantN {
			t.Fatalf("key %q on %s: (%v, %d) != oracle (%v, %d) — samples lost across the flip",
				key, owner, gotV, gotN, wantV, wantN)
		}

		qV, qN, _, found, partial, err := joiner.router.Reduce(key, ds.from, ds.to, timeseries.AggSum)
		if err != nil || !found || partial {
			t.Fatalf("joiner query %q: found=%v partial=%v err=%v", key, found, partial, err)
		}
		if !bitsEq(qV, wantV) || qN != wantN {
			t.Fatalf("joiner query %q = (%v, %d), oracle (%v, %d)", key, qV, qN, wantV, wantN)
		}
	}
}

// TestClusterJoinRejectsNonSoloNode: a node already in a multi-node cluster
// must refuse to join another.
func TestClusterJoinRejectsNonSoloNode(t *testing.T) {
	nodes, fabric := startCluster(t, []string{"n1", "n2"}, 1, true, nil)
	_ = fabric
	if err := nodes["n1"].router.JoinCluster("mem://n2"); err == nil {
		t.Fatal("JoinCluster accepted a node that is already clustered")
	}
}

// TestClusterLeaveStreamsDataOut: the leaver pushes the shrunk topology and
// streams its entire store to the survivors; afterwards every key is owned
// by a survivor and answers bit-identically to the oracle.
func TestClusterLeaveStreamsDataOut(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes, _ := startCluster(t, ids, 2, true, nil)
	ds := makeDataset(36, 24, 17)

	ref := timeseries.NewStore(16)
	if _, err := ref.AppendBatch(ds.entries); err != nil {
		t.Fatalf("reference store: %v", err)
	}
	feed(t, nodes, "n2", ds)

	if err := nodes["n3"].router.LeaveCluster(); err != nil {
		t.Fatalf("LeaveCluster: %v", err)
	}
	survivors := map[string]*testNode{"n1": nodes["n1"], "n2": nodes["n2"]}
	settle(survivors)
	settle(survivors)

	for id, n := range survivors {
		if got := n.router.Epoch(); got != 2 {
			t.Fatalf("survivor %s epoch = %d, want 2", id, got)
		}
	}
	newRing := nodes["n1"].router.Ring()
	for _, key := range ds.keys {
		owner := newRing.Primary(key)
		if owner == "n3" {
			t.Fatalf("key %q still placed on the departed node", key)
		}
		refID, _ := ref.IDForKey(key)
		wantV, wantN, err := ref.ReducePlanned(refID, ds.from, ds.to, timeseries.AggSum)
		if err != nil {
			t.Fatalf("oracle reduce: %v", err)
		}
		st := survivors[owner].store
		id, ok := st.IDForKey(key)
		if !ok {
			t.Fatalf("survivor %s missing key %q after leave", owner, key)
		}
		gotV, gotN, err := st.ReducePlanned(id, ds.from, ds.to, timeseries.AggSum)
		if err != nil {
			t.Fatalf("survivor reduce: %v", err)
		}
		if !bitsEq(gotV, wantV) || gotN != wantN {
			t.Fatalf("key %q on %s after leave: (%v, %d) != oracle (%v, %d)",
				key, owner, gotV, gotN, wantV, wantN)
		}
		qV, qN, _, found, partial, err := survivors["n1"].router.Reduce(key, ds.from, ds.to, timeseries.AggSum)
		if err != nil || !found || partial {
			t.Fatalf("post-leave query %q: found=%v partial=%v err=%v", key, found, partial, err)
		}
		if !bitsEq(qV, wantV) || qN != wantN {
			t.Fatalf("post-leave query %q = (%v, %d), oracle (%v, %d)", key, qV, qN, wantV, wantN)
		}
	}

	if err := newSoloNode(t, newMemNet(), "solo", false).router.LeaveCluster(); err == nil {
		t.Fatal("LeaveCluster let the last member depart")
	}
}

// TestClusterLeaderDeathPromotesAndDemotes drives the lease state machine:
// below PromoteAfter consecutive misses the replica answer stays partial; at
// the threshold the follower is promoted and answers authoritatively and
// bit-exactly; one clean heartbeat after the leader heals it demotes.
func TestClusterLeaderDeathPromotesAndDemotes(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes, fabric := startCluster(t, ids, 2, true, func(c *Config) {
		c.SuspectAfter = 2
		c.PromoteAfter = 3
	})
	ds := makeDataset(24, 24, 11)
	ref := timeseries.NewStore(16)
	if _, err := ref.AppendBatch(ds.entries); err != nil {
		t.Fatalf("reference store: %v", err)
	}
	feed(t, nodes, "n3", ds)
	for i := 0; i < 3; i++ {
		for _, n := range nodes {
			n.router.PumpReplication()
		}
	}

	ring := nodes["n1"].router.Ring()
	victim := "n2"
	var follower string
	for _, f := range ring.Followers(victim) {
		if f != victim {
			follower = f
			break
		}
	}
	var coordID string
	for _, id := range ids {
		if id != victim && id != follower {
			coordID = id
		}
	}
	var key string
	for _, k := range ds.keys {
		if ring.Primary(k) == victim {
			key = k
			break
		}
	}
	if follower == "" || coordID == "" || key == "" {
		t.Fatalf("bad geometry: follower=%q coord=%q key=%q", follower, coordID, key)
	}
	if lag := nodes[follower].router.ReplicationLag(victim); lag != 0 {
		t.Fatalf("follower replica lag %d before kill, want 0", lag)
	}
	refID, _ := ref.IDForKey(key)
	wantV, wantN, err := ref.ReducePlanned(refID, ds.from, ds.to, timeseries.AggSum)
	if err != nil {
		t.Fatalf("oracle reduce: %v", err)
	}

	promotedOn := func(r *Router) bool {
		for _, rs := range r.Stats().Replicas {
			if rs.Leader == victim {
				return rs.Promoted
			}
		}
		t.Fatalf("node holds no replica of %s", victim)
		return false
	}

	nodes[victim].kill(fabric)
	coord := nodes[coordID].router
	fr := nodes[follower].router

	// Misses 1 and 2: suspicion, not promotion — answers are flagged partial.
	for i := 0; i < 2; i++ {
		fr.CheckPeers()
		if promotedOn(fr) {
			t.Fatalf("follower promoted after %d misses, threshold is 3", i+1)
		}
		gotV, gotN, _, found, partial, err := coord.Reduce(key, ds.from, ds.to, timeseries.AggSum)
		if err != nil || !found {
			t.Fatalf("fallback query: found=%v err=%v", found, err)
		}
		if !partial {
			t.Fatalf("replica answer below the lease threshold must be partial (miss %d)", i+1)
		}
		if !bitsEq(gotV, wantV) || gotN != wantN {
			t.Fatalf("fallback query = (%v, %d), oracle (%v, %d)", gotV, gotN, wantV, wantN)
		}
	}

	// Miss 3 crosses PromoteAfter: the follower holds the read lease and its
	// answer is authoritative.
	fr.CheckPeers()
	if !promotedOn(fr) {
		t.Fatal("follower not promoted after PromoteAfter consecutive misses")
	}
	if fr.Stats().Promotions == 0 {
		t.Fatal("promotions counter did not advance")
	}
	gotV, gotN, _, found, partial, err := coord.Reduce(key, ds.from, ds.to, timeseries.AggSum)
	if err != nil || !found {
		t.Fatalf("promoted query: found=%v err=%v", found, err)
	}
	if partial {
		t.Fatal("promoted follower's answer must not be partial")
	}
	if !bitsEq(gotV, wantV) || gotN != wantN {
		t.Fatalf("promoted query = (%v, %d), oracle (%v, %d)", gotV, gotN, wantV, wantN)
	}

	// Heal: one clean heartbeat demotes and the primary serves again.
	nodes[victim].revive(fabric, t)
	fr.CheckPeers()
	if promotedOn(fr) {
		t.Fatal("follower still promoted after the leader healed")
	}
	gotV, gotN, _, found, partial, err = coord.Reduce(key, ds.from, ds.to, timeseries.AggSum)
	if err != nil || !found || partial {
		t.Fatalf("post-heal query: found=%v partial=%v err=%v", found, partial, err)
	}
	if !bitsEq(gotV, wantV) || gotN != wantN {
		t.Fatalf("post-heal query = (%v, %d), oracle (%v, %d)", gotV, gotN, wantV, wantN)
	}
}

// TestClusterEpochMismatchConvergence: a node that slept through an epoch
// flip converges through all three recovery channels — a stale SERVER is
// pushed forward after rejecting a newer request, a stale COORDINATOR adopts
// the newer topology its peer rejected it with (errTopologyChanged retry),
// and a node that was unreachable during the flip syncs on its first healthy
// heartbeat (anti-entropy).
func TestClusterEpochMismatchConvergence(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes, fabric := startCluster(t, ids, 1, false, nil)
	ds := makeDataset(30, 16, 3)
	ref := timeseries.NewStore(16)
	if _, err := ref.AppendBatch(ds.entries); err != nil {
		t.Fatalf("reference store: %v", err)
	}
	feed(t, nodes, "n1", ds)

	// bump derives a same-membership topology with a larger epoch (a ghost
	// joins and immediately leaves), so staleness can be staged without
	// moving any data.
	bump := func(cur *Topology) *Topology {
		g, err := cur.WithJoined(Member{ID: "zz-ghost", Addr: "mem://zz-ghost"})
		if err != nil {
			t.Fatalf("bump join: %v", err)
		}
		next, err := g.WithLeft("zz-ghost")
		if err != nil {
			t.Fatalf("bump leave: %v", err)
		}
		return next
	}
	keyOn := func(owner string) string {
		for _, k := range ds.keys {
			if nodes["n1"].router.Ring().Primary(k) == owner {
				return k
			}
		}
		t.Fatalf("no dataset key owned by %s", owner)
		return ""
	}
	exact := func(r *Router, key string) {
		t.Helper()
		refID, _ := ref.IDForKey(key)
		wantV, wantN, err := ref.ReducePlanned(refID, ds.from, ds.to, timeseries.AggSum)
		if err != nil {
			t.Fatalf("oracle reduce: %v", err)
		}
		gotV, gotN, _, found, partial, err := r.Reduce(key, ds.from, ds.to, timeseries.AggSum)
		if err != nil || !found || partial {
			t.Fatalf("query across epoch skew: found=%v partial=%v err=%v", found, partial, err)
		}
		if !bitsEq(gotV, wantV) || gotN != wantN {
			t.Fatalf("query = (%v, %d), oracle (%v, %d)", gotV, gotN, wantV, wantN)
		}
	}

	// Stage 1 — stale server: n1 and n2 move ahead, n3 stays at epoch 1. A
	// query from n1 to a key n3 owns is rejected, n1 pushes its topology, the
	// retry against the same owner succeeds.
	e2 := bump(nodes["n1"].router.Topology())
	nodes["n1"].router.applyTopology(e2)
	nodes["n2"].router.applyTopology(e2)
	if got := nodes["n3"].router.Epoch(); got != 1 {
		t.Fatalf("n3 epoch = %d before convergence, want 1", got)
	}
	exact(nodes["n1"].router, keyOn("n3"))
	if got := nodes["n3"].router.Epoch(); got != e2.Epoch {
		t.Fatalf("stale server not pushed forward: n3 epoch %d, want %d", got, e2.Epoch)
	}

	// Stage 2 — stale coordinator: n1 and n2 move ahead again; a query FROM
	// n3 is rejected by the owner, n3 fetches and adopts the newer topology
	// and the public API retries transparently.
	e3 := bump(e2)
	nodes["n1"].router.applyTopology(e3)
	nodes["n2"].router.applyTopology(e3)
	exact(nodes["n3"].router, keyOn("n1"))
	if got := nodes["n3"].router.Epoch(); got != e3.Epoch {
		t.Fatalf("stale coordinator did not adopt: n3 epoch %d, want %d", got, e3.Epoch)
	}

	// Stage 3 — anti-entropy: n1 flips while unreachable from n3; on the
	// first healthy heartbeat after the heal, n3 syncs topologies.
	e4 := bump(e3)
	nodes["n1"].kill(fabric)
	nodes["n3"].router.CheckPeers() // accrue a miss against n1
	nodes["n1"].router.applyTopology(e4)
	nodes["n2"].router.applyTopology(e4)
	nodes["n1"].revive(fabric, t)
	nodes["n3"].router.CheckPeers() // recovery heartbeat exchanges topologies
	if got := nodes["n3"].router.Epoch(); got != e4.Epoch {
		t.Fatalf("heartbeat anti-entropy did not converge: n3 epoch %d, want %d", got, e4.Epoch)
	}
}

// TestClusterReadRepairBackfillsStaleReplica: with RF=3, two followers hold
// replicas of a dead owner at different cursors. A query must answer from the
// freshest, back-fill the stale replica (read repair), and once the leader
// heals the repaired replica re-bootstraps to cursor parity.
func TestClusterReadRepairBackfillsStaleReplica(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes, fabric := startCluster(t, ids, 3, true, nil)
	ds := makeDataset(18, 20, 5)
	feed(t, nodes, "n1", ds)
	for i := 0; i < 3; i++ {
		for _, n := range nodes {
			n.router.PumpReplication()
		}
	}

	ring := nodes["n1"].router.Ring()
	victim := "n2"
	var followers []string
	for _, f := range ring.Followers(victim) {
		if f != victim {
			followers = append(followers, f)
		}
	}
	if len(followers) != 2 {
		t.Fatalf("want 2 followers of %s, got %v", victim, followers)
	}
	fresh, stale := followers[0], followers[1]
	for _, f := range followers {
		if lag := nodes[f].router.ReplicationLag(victim); lag != 0 {
			t.Fatalf("follower %s lag %d before divergence, want 0", f, lag)
		}
	}
	var key string
	for _, k := range ds.keys {
		if ring.Primary(k) == victim {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatalf("no dataset key owned by %s", victim)
	}

	// Divergence: extra samples land on the victim, then only ONE follower
	// pumps before the victim dies.
	vID, _ := nodes[victim].store.IDForKey(key)
	extra := make([]timeseries.BatchEntry, 6)
	for i := range extra {
		extra[i] = timeseries.BatchEntry{
			ID: vID, Kind: metric.Gauge, Unit: metric.UnitWatt,
			T: ds.to + int64(1000*(i+1)), V: float64(i) + 0.25,
		}
	}
	if _, err := nodes[victim].durable.AppendBatch(extra); err != nil {
		t.Fatalf("extra append: %v", err)
	}
	extraTo := extra[len(extra)-1].T + 1
	nodes[fresh].router.PumpReplication()
	nodes[victim].kill(fabric)

	ref := timeseries.NewStore(16)
	if _, err := ref.AppendBatch(ds.entries); err != nil {
		t.Fatalf("reference store: %v", err)
	}
	if _, err := ref.AppendBatch(extra); err != nil {
		t.Fatalf("reference extra: %v", err)
	}
	refID, _ := ref.IDForKey(key)
	wantV, wantN, err := ref.ReducePlanned(refID, ds.from, extraTo, timeseries.AggSum)
	if err != nil {
		t.Fatalf("oracle reduce: %v", err)
	}

	coord := nodes[fresh].router
	gotV, gotN, _, found, partial, err := coord.Reduce(key, ds.from, extraTo, timeseries.AggSum)
	if err != nil || !found {
		t.Fatalf("fallback query: found=%v err=%v", found, err)
	}
	if !partial {
		t.Fatal("unpromoted replica answer must be partial")
	}
	if !bitsEq(gotV, wantV) || gotN != wantN {
		t.Fatalf("query answered from a stale replica: (%v, %d), want freshest (%v, %d)",
			gotV, gotN, wantV, wantN)
	}
	if coord.Stats().ReadRepairs == 0 {
		t.Fatal("diverging follower cursors did not trigger a read repair")
	}

	// The stale replica now holds the back-filled samples…
	st, ok := nodes[stale].router.ReplicaOf(victim)
	if !ok {
		t.Fatalf("%s holds no replica of %s", stale, victim)
	}
	sID, ok := st.IDForKey(key)
	if !ok {
		t.Fatalf("repaired replica lost key %q", key)
	}
	rV, rN, err := st.ReducePlanned(sID, ds.from, extraTo, timeseries.AggSum)
	if err != nil {
		t.Fatalf("repaired replica reduce: %v", err)
	}
	if !bitsEq(rV, wantV) || rN != wantN {
		t.Fatalf("repaired replica = (%v, %d), want (%v, %d)", rV, rN, wantV, wantN)
	}
	// …and a query coordinated by the previously-stale node agrees bit-
	// exactly without further repair.
	gotV, gotN, _, found, partial, err = nodes[stale].router.Reduce(key, ds.from, extraTo, timeseries.AggSum)
	if err != nil || !found || !partial {
		t.Fatalf("post-repair query: found=%v partial=%v err=%v", found, partial, err)
	}
	if !bitsEq(gotV, wantV) || gotN != wantN {
		t.Fatalf("post-repair query = (%v, %d), want (%v, %d)", gotV, gotN, wantV, wantN)
	}

	// Heal: the repaired replica re-bootstraps from its leader (fresh
	// RefTable lineage) and catches up to lag 0.
	nodes[victim].revive(fabric, t)
	nodes[stale].router.CheckPeers()
	for i := 0; i < 3; i++ {
		nodes[stale].router.PumpReplication()
	}
	if lag := nodes[stale].router.ReplicationLag(victim); lag != 0 {
		t.Fatalf("repaired replica lag %d after heal, want 0", lag)
	}
}

// TestHintOverflowAccounting pins the hint_saved_bytes contract on both
// overflow paths of a full hint queue: a non-front overflow drops the
// INCOMING batch (never packed, so savings are untouched) while a front
// overflow drops the newest QUEUED batch and must give exactly its savings
// back.
func TestHintOverflowAccounting(t *testing.T) {
	p := &peer{}
	id := metric.ID{
		Name:   "hint.accounting.metric.with.a.deliberately.long.name",
		Labels: metric.NewLabels("host", "h1"),
	}
	mk := func(n int, t0 int64) []timeseries.BatchEntry {
		out := make([]timeseries.BatchEntry, n)
		for i := range out {
			out[i] = timeseries.BatchEntry{ID: id, Kind: metric.Gauge, Unit: metric.UnitWatt, T: t0 + int64(i), V: float64(i)}
		}
		return out
	}
	// Every interned entry after the first saves key+unit+kind against the
	// 4-byte ref.
	perEntry := uint64(len(id.Key()) + len(metric.UnitWatt) + 1 - 4)
	const maxHints = 2

	p.hintLocked(mk(5, 0), false, maxHints) // batch A: defines the series, 4 entries save
	if got, want := p.hintSavedBytes, 4*perEntry; got != want {
		t.Fatalf("after batch A: saved %d, want %d", got, want)
	}
	p.hintLocked(mk(5, 100), false, maxHints) // batch B: all 5 entries save
	if got, want := p.hintSavedBytes, 9*perEntry; got != want {
		t.Fatalf("after batch B: saved %d, want %d", got, want)
	}

	// Queue full + non-front arrival: the incoming batch drops before it is
	// ever packed, so the savings gauge must not move.
	p.hintLocked(mk(5, 200), false, maxHints)
	if got, want := p.hintSavedBytes, 9*perEntry; got != want {
		t.Fatalf("non-front overflow changed savings: %d, want %d", got, want)
	}
	if p.droppedHintEntries != 5 {
		t.Fatalf("dropped entries = %d, want 5", p.droppedHintEntries)
	}

	// Queue full + front arrival (a failed send): batch B (newest queued)
	// drops and its 5*perEntry savings are reversed; the front batch packs
	// with the series already interned, adding 5*perEntry of its own.
	p.hintLocked(mk(5, 300), true, maxHints)
	if got, want := p.hintSavedBytes, 9*perEntry; got != want {
		t.Fatalf("front overflow drop did not reverse the dropped batch's savings: %d, want %d", got, want)
	}
	if p.droppedHintEntries != 10 {
		t.Fatalf("dropped entries = %d, want 10", p.droppedHintEntries)
	}
	if len(p.hints) != maxHints {
		t.Fatalf("hint queue length %d, want %d", len(p.hints), maxHints)
	}
	// FIFO contract: the failed send is OLDER than everything queued, so it
	// must sit at the front.
	if p.hints[0].entries[0].t != 300 {
		t.Fatalf("front-parked batch not at queue head (t=%d)", p.hints[0].entries[0].t)
	}
}
