package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// Server is a node's cluster listener: one port accepting peer traffic of
// every kind — forwarded ingest batches (wire.FrameBatch), liveness pings,
// query scatter requests, and replication pulls. Frames on one connection
// are handled sequentially, so a peer's RPC responses can never interleave.
type Server struct {
	router *Router
	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	batches    atomic.Uint64
	refBatches atomic.Uint64
	dictDefs   atomic.Uint64
	queries    atomic.Uint64
	replPulls  atomic.Uint64
	pings      atomic.Uint64
	topoFrames atomic.Uint64
	repairs    atomic.Uint64
	errors     atomic.Uint64
}

// NewServer serves cluster traffic for router on an injected listener
// (in-memory in tests, TCP in odad) and owns it until Close.
func NewServer(ln net.Listener, router *Router) *Server {
	s := &Server{router: router, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen starts a TCP cluster listener on addr.
func Listen(addr string, router *Router) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewServer(ln, router), nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Batches returns forwarded ingest batches applied.
func (s *Server) Batches() uint64 { return s.batches.Load() }

// RefBatches returns forwarded batches that arrived dictionary-encoded.
func (s *Server) RefBatches() uint64 { return s.refBatches.Load() }

// DictDefs returns series definitions accepted into per-connection
// dictionaries.
func (s *Server) DictDefs() uint64 { return s.dictDefs.Load() }

// Queries returns query requests served.
func (s *Server) Queries() uint64 { return s.queries.Load() }

// ReplPulls returns replication pulls served.
func (s *Server) ReplPulls() uint64 { return s.replPulls.Load() }

// Pings returns liveness probes answered.
func (s *Server) Pings() uint64 { return s.pings.Load() }

// TopoFrames returns topology fetches and pushes served.
func (s *Server) TopoFrames() uint64 { return s.topoFrames.Load() }

// Repairs returns read-repair requests served.
func (s *Server) Repairs() uint64 { return s.repairs.Load() }

// Errors returns connections dropped due to protocol errors.
func (s *Server) Errors() uint64 { return s.errors.Load() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.closed.Load() {
			s.connMu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	var dict *wire.ConnDict // lazy: only dict-speaking peers pay for one
	for {
		ft, payload, err := ReadFrame(r)
		if err == nil {
			err = s.handleFrame(conn, &dict, ft, payload)
		}
		if err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() {
				s.errors.Add(1)
				log.Printf("cluster: connection from %s dropped: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

// ReadFrame re-exported for symmetry in tests.
func ReadFrame(r io.Reader) (uint8, []byte, error) { return wire.ReadFrame(r) }

func (s *Server) handleFrame(conn net.Conn, dict **wire.ConnDict, ft uint8, payload []byte) error {
	switch ft {
	case wire.FramePing:
		if err := wire.WriteFrame(conn, wire.FramePong, payload); err != nil {
			return err
		}
		s.pings.Add(1)
		return nil
	case wire.FrameBatch:
		b, err := wire.DecodeBatch(payload)
		if err != nil {
			return err
		}
		s.router.applyForwarded(b)
		s.batches.Add(1)
		return nil
	case wire.FrameDict:
		if *dict == nil {
			*dict = wire.NewConnDict()
		}
		n, err := (*dict).AddDefs(payload)
		if err != nil {
			return err
		}
		s.dictDefs.Add(uint64(n))
		return nil
	case wire.FrameRefBatch:
		if *dict == nil {
			return wire.ErrUnknownRef
		}
		b, err := (*dict).DecodeRefBatch(payload)
		if err != nil {
			return err
		}
		s.router.applyForwarded(b)
		s.batches.Add(1)
		s.refBatches.Add(1)
		return nil
	case FrameQueryReq:
		q, err := decodeQueryRequest(payload)
		if err != nil {
			return err
		}
		resp := s.router.execQuery(q)
		s.queries.Add(1)
		return wire.WriteFrame(conn, FrameQueryResp, encodeQueryResponse(q.Op, resp))
	case FrameReplPull:
		q, err := decodeReplPullRequest(payload)
		if err != nil {
			return err
		}
		resp := s.router.serveReplPull(q)
		s.replPulls.Add(1)
		return wire.WriteFrame(conn, FrameReplResp, encodeReplPullResponse(resp))
	case FrameTopoReq:
		s.topoFrames.Add(1)
		return wire.WriteFrame(conn, FrameTopoResp, encodeTopology(s.router.Topology()))
	case FrameTopoPush:
		t, err := decodeTopology(payload)
		if err != nil {
			return err
		}
		s.router.applyTopology(t)
		s.topoFrames.Add(1)
		return wire.WriteFrame(conn, FrameTopoAck, appendUvarint(nil, s.router.Epoch()))
	case FrameRepairReq:
		q, err := decodeRepairRequest(payload)
		if err != nil {
			return err
		}
		resp := s.router.serveRepair(q)
		s.repairs.Add(1)
		return wire.WriteFrame(conn, FrameRepairResp, encodeRepairResponse(resp))
	case FrameRepSnapReq:
		q, err := decodeRepSnapRequest(payload)
		if err != nil {
			return err
		}
		resp := s.router.serveRepSnap(q)
		return wire.WriteFrame(conn, FrameRepSnapResp, encodeRepSnapResponse(resp))
	default:
		return fmt.Errorf("cluster: unexpected frame type %d", ft)
	}
}

// Close stops accepting, tears down open peer connections, and waits for
// in-flight handlers to finish: a frame already read off a connection (in
// particular a forwarded batch) is fully applied before Close returns, but
// no further frame is read.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}
