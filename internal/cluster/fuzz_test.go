package cluster

import (
	"fmt"
	"testing"
)

// FuzzRingPlacement throws arbitrary key bytes and cluster shapes at the
// ring and checks the placement invariants that the Router leans on: the
// primary is a member node, Owners returns exactly RF distinct nodes with
// the primary first, the follower tail matches the node-level Followers
// relation, and the whole placement is insensitive to the order the node
// IDs were configured in.
func FuzzRingPlacement(f *testing.F) {
	f.Add("cpu.load{host=c0-n14}", uint8(3), uint8(2))
	f.Add("", uint8(1), uint8(1))
	f.Add("power.node_watts{rack=r9}", uint8(7), uint8(7))
	f.Add("a#0", uint8(2), uint8(1))
	f.Add("\x00\xff\x00", uint8(9), uint8(4))

	f.Fuzz(func(t *testing.T, key string, n, rf uint8) {
		numNodes := int(n)%9 + 1 // 1..9 nodes
		nodes := make([]string, numNodes)
		rev := make([]string, numNodes)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%02d", i)
			rev[numNodes-1-i] = nodes[i]
		}
		r, err := NewRing(nodes, 16, int(rf))
		if err != nil {
			t.Fatalf("NewRing(%v, 16, %d): %v", nodes, rf, err)
		}

		primary := r.Primary(key)
		member := false
		for _, nd := range nodes {
			if nd == primary {
				member = true
			}
		}
		if !member {
			t.Fatalf("primary %q not a member of %v", primary, nodes)
		}

		owners := r.Owners(key)
		if len(owners) != r.RF() {
			t.Fatalf("key %q: %d owners, want RF=%d", key, len(owners), r.RF())
		}
		if owners[0] != primary {
			t.Fatalf("key %q: owners[0]=%q, primary=%q", key, owners[0], primary)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %q in %v", key, o, owners)
			}
			seen[o] = true
		}
		followers := r.Followers(primary)
		if len(followers) != len(owners)-1 {
			t.Fatalf("key %q: followers %v vs owners %v", key, followers, owners)
		}
		for i, fo := range followers {
			if owners[i+1] != fo {
				t.Fatalf("key %q: owners[1:]=%v misaligned with Followers=%v", key, owners[1:], followers)
			}
		}

		// Order-insensitivity: a peer that got the flag list reversed must
		// compute the identical placement.
		r2, err := NewRing(rev, 16, int(rf))
		if err != nil {
			t.Fatalf("NewRing(reversed): %v", err)
		}
		if got := r2.Primary(key); got != primary {
			t.Fatalf("key %q: primary differs across orderings: %q vs %q", key, got, primary)
		}
	})
}

// FuzzTopologyTransition drives a topology through an arbitrary sequence of
// joins and leaves and checks the membership-change invariants the runtime
// leans on: every successful transition bumps the epoch by exactly one,
// membership stays sorted and duplicate-free, a join only moves keys TO the
// joiner and a leave only moves keys FROM the leaver (the ~1/N movement
// guarantee), re-adding a member or removing a non-member fails, the last
// member cannot leave, and the wire encoding round-trips every intermediate
// value bit-exactly.
func FuzzTopologyTransition(f *testing.F) {
	f.Add(uint8(3), uint8(2), []byte{0, 1, 2, 3})
	f.Add(uint8(1), uint8(1), []byte{0, 0, 0, 1, 1, 1})
	f.Add(uint8(5), uint8(3), []byte{1, 0, 1, 0, 255, 128})
	f.Add(uint8(2), uint8(2), []byte{})
	f.Add(uint8(4), uint8(7), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})

	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("fuzz.metric.%02d{host=h%d}", i, i%5)
	}

	f.Fuzz(func(t *testing.T, n, rf uint8, ops []byte) {
		members := make([]Member, int(n)%5+1)
		for i := range members {
			id := fmt.Sprintf("seed-%02d", i)
			members[i] = Member{ID: id, Addr: "mem://" + id}
		}
		topo, err := NewTopology(1, members, 16, int(rf)%4+1)
		if err != nil {
			t.Fatalf("NewTopology(%d members, rf %d): %v", len(members), int(rf)%4+1, err)
		}
		if len(ops) > 24 {
			ops = ops[:24]
		}
		nextID := 0
		for _, op := range ops {
			before := topo
			prim := make(map[string]string, len(keys))
			for _, k := range keys {
				prim[k] = before.Ring().Primary(k)
			}
			var moverID string // the only node allowed to gain or lose keys
			if op%2 == 0 {
				m := Member{ID: fmt.Sprintf("j-%03d", nextID), Addr: fmt.Sprintf("mem://j-%03d", nextID)}
				nextID++
				next, err := topo.WithJoined(m)
				if err != nil {
					t.Fatalf("WithJoined(%s) on %d members: %v", m.ID, len(topo.Members), err)
				}
				if _, err := next.WithJoined(m); err == nil {
					t.Fatalf("re-joining member %s did not fail", m.ID)
				}
				moverID = m.ID
				topo = next
				for _, k := range keys {
					if got := topo.Ring().Primary(k); got != prim[k] && got != moverID {
						t.Fatalf("join of %s moved key %q %s -> %s (only the joiner may gain keys)",
							moverID, k, prim[k], got)
					}
				}
			} else {
				idx := int(op/2) % len(topo.Members)
				id := topo.Members[idx].ID
				next, err := topo.WithLeft(id)
				if len(topo.Members) == 1 {
					if err == nil {
						t.Fatal("last member left without error")
					}
					continue
				}
				if err != nil {
					t.Fatalf("WithLeft(%s) of %d members: %v", id, len(topo.Members), err)
				}
				if _, err := next.WithLeft(id); err == nil {
					t.Fatalf("removing departed member %s twice did not fail", id)
				}
				moverID = id
				topo = next
				for _, k := range keys {
					if got := topo.Ring().Primary(k); got != prim[k] && prim[k] != moverID {
						t.Fatalf("leave of %s moved key %q %s -> %s (only the leaver's keys may move)",
							moverID, k, prim[k], got)
					}
				}
			}

			if topo.Epoch != before.Epoch+1 {
				t.Fatalf("transition bumped epoch %d -> %d, want +1", before.Epoch, topo.Epoch)
			}
			seen := map[string]bool{}
			for i, m := range topo.Members {
				if m.ID == "" || seen[m.ID] {
					t.Fatalf("member %d invalid or duplicate: %q", i, m.ID)
				}
				seen[m.ID] = true
				if i > 0 && topo.Members[i-1].ID >= m.ID {
					t.Fatalf("members unsorted at %d: %q >= %q", i, topo.Members[i-1].ID, m.ID)
				}
			}

			rt, err := decodeTopology(encodeTopology(topo))
			if err != nil {
				t.Fatalf("round-trip decode: %v", err)
			}
			if rt.Epoch != topo.Epoch || rt.VNodes != topo.VNodes || rt.RF != topo.RF ||
				len(rt.Members) != len(topo.Members) {
				t.Fatalf("round-trip mismatch: %+v vs %+v", rt, topo)
			}
			for i, m := range topo.Members {
				if rt.Members[i] != m {
					t.Fatalf("round-trip member %d: %+v vs %+v", i, rt.Members[i], m)
				}
			}
		}
	})
}
