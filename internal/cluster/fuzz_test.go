package cluster

import (
	"fmt"
	"testing"
)

// FuzzRingPlacement throws arbitrary key bytes and cluster shapes at the
// ring and checks the placement invariants that the Router leans on: the
// primary is a member node, Owners returns exactly RF distinct nodes with
// the primary first, the follower tail matches the node-level Followers
// relation, and the whole placement is insensitive to the order the node
// IDs were configured in.
func FuzzRingPlacement(f *testing.F) {
	f.Add("cpu.load{host=c0-n14}", uint8(3), uint8(2))
	f.Add("", uint8(1), uint8(1))
	f.Add("power.node_watts{rack=r9}", uint8(7), uint8(7))
	f.Add("a#0", uint8(2), uint8(1))
	f.Add("\x00\xff\x00", uint8(9), uint8(4))

	f.Fuzz(func(t *testing.T, key string, n, rf uint8) {
		numNodes := int(n)%9 + 1 // 1..9 nodes
		nodes := make([]string, numNodes)
		rev := make([]string, numNodes)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%02d", i)
			rev[numNodes-1-i] = nodes[i]
		}
		r, err := NewRing(nodes, 16, int(rf))
		if err != nil {
			t.Fatalf("NewRing(%v, 16, %d): %v", nodes, rf, err)
		}

		primary := r.Primary(key)
		member := false
		for _, nd := range nodes {
			if nd == primary {
				member = true
			}
		}
		if !member {
			t.Fatalf("primary %q not a member of %v", primary, nodes)
		}

		owners := r.Owners(key)
		if len(owners) != r.RF() {
			t.Fatalf("key %q: %d owners, want RF=%d", key, len(owners), r.RF())
		}
		if owners[0] != primary {
			t.Fatalf("key %q: owners[0]=%q, primary=%q", key, owners[0], primary)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %q in %v", key, o, owners)
			}
			seen[o] = true
		}
		followers := r.Followers(primary)
		if len(followers) != len(owners)-1 {
			t.Fatalf("key %q: followers %v vs owners %v", key, followers, owners)
		}
		for i, fo := range followers {
			if owners[i+1] != fo {
				t.Fatalf("key %q: owners[1:]=%v misaligned with Followers=%v", key, owners[1:], followers)
			}
		}

		// Order-insensitivity: a peer that got the flag list reversed must
		// compute the identical placement.
		r2, err := NewRing(rev, 16, int(rf))
		if err != nil {
			t.Fatalf("NewRing(reversed): %v", err)
		}
		if got := r2.Primary(key); got != primary {
			t.Fatalf("key %q: primary differs across orderings: %q vs %q", key, got, primary)
		}
	})
}
