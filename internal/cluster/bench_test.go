package cluster

import (
	"fmt"
	"testing"

	"repro/internal/timeseries"
)

// BenchmarkClusterScatterQuery measures the distributed query path's cost as
// the cluster grows: the same ReduceMany over the same dataset against a
// 1-node cluster (pure local fast-path, no wire traffic) and a 3-node
// cluster (scatter over in-memory pipes, partial aggregates back, merge at
// the coordinator). The spread between the two is the price of distribution
// — it should be wire round trips, not data volume, since only fixed-size
// partials cross the network. Recorded in BENCH_PR8.json; `make
// bench-cluster` reruns it.
func BenchmarkClusterScatterQuery(b *testing.B) {
	for _, numPeers := range []int{1, 3} {
		b.Run(fmt.Sprintf("peers=%d", numPeers), func(b *testing.B) {
			ids := make([]string, numPeers)
			for i := range ids {
				ids[i] = fmt.Sprintf("n%d", i+1)
			}
			nodes, _ := startCluster(b, ids, 1, false, nil)
			ds := makeDataset(48, 40, 23)
			feed(b, nodes, ids[0], ds)
			coord := nodes[ids[0]].router

			// One warm-up pass, and a sanity check that the scatter answers.
			if _, n, _, err := coord.ReduceMany(ds.keys, ds.from, ds.to, timeseries.AggMean); err != nil || n == 0 {
				b.Fatalf("warm-up ReduceMany: n=%d err=%v", n, err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, _, err := coord.ReduceMany(ds.keys, ds.from, ds.to, timeseries.AggMean)
				if err != nil {
					b.Fatalf("ReduceMany: %v", err)
				}
			}
		})
	}
}
