package cluster

import (
	"fmt"
	"testing"

	"repro/internal/timeseries"
)

// BenchmarkClusterScatterQuery measures the distributed query path's cost as
// the cluster grows: the same ReduceMany over the same dataset against a
// 1-node cluster (pure local fast-path, no wire traffic) and a 3-node
// cluster (scatter over in-memory pipes, partial aggregates back, merge at
// the coordinator). The spread between the two is the price of distribution
// — it should be wire round trips, not data volume, since only fixed-size
// partials cross the network. Recorded in BENCH_PR8.json; `make
// bench-cluster` reruns it.
func BenchmarkClusterScatterQuery(b *testing.B) {
	for _, numPeers := range []int{1, 3} {
		b.Run(fmt.Sprintf("peers=%d", numPeers), func(b *testing.B) {
			ids := make([]string, numPeers)
			for i := range ids {
				ids[i] = fmt.Sprintf("n%d", i+1)
			}
			nodes, _ := startCluster(b, ids, 1, false, nil)
			ds := makeDataset(48, 40, 23)
			feed(b, nodes, ids[0], ds)
			coord := nodes[ids[0]].router

			// One warm-up pass, and a sanity check that the scatter answers.
			if _, n, _, err := coord.ReduceMany(ds.keys, ds.from, ds.to, timeseries.AggMean); err != nil || n == 0 {
				b.Fatalf("warm-up ReduceMany: n=%d err=%v", n, err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, _, err := coord.ReduceMany(ds.keys, ds.from, ds.to, timeseries.AggMean)
				if err != nil {
					b.Fatalf("ReduceMany: %v", err)
				}
			}
		})
	}
}

// BenchmarkJoinHandoff measures the full cost of a runtime join against a
// loaded 3-node cluster: snapshot pull from every donor, owed-range import,
// WAL tail catch-up, epoch commit and the push round. The per-op time is
// dominated by how much history the joiner must stream, so it tracks the
// ~1/N movement guarantee directly. Recorded in BENCH_PR10.json; `make
// bench-rebalance` reruns it.
func BenchmarkJoinHandoff(b *testing.B) {
	ids := []string{"n1", "n2", "n3"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nodes, fabric := startCluster(b, ids, 2, true, nil)
		ds := makeDataset(48, 24, int64(41+i))
		feed(b, nodes, "n1", ds)
		joiner := newSoloNode(b, fabric, "n4", true)
		b.StartTimer()
		if err := joiner.router.JoinCluster("mem://n1"); err != nil {
			b.Fatalf("JoinCluster: %v", err)
		}
		b.StopTimer()
		if joiner.router.Stats().HandoffEntries == 0 {
			b.Fatal("join streamed nothing; the benchmark measured an empty handoff")
		}
		b.StartTimer()
	}
}

// BenchmarkEpochFlip measures adopting a same-membership topology with a
// bumped epoch: ring rebuild, peer-map rebuild, forward-buffer steal and
// re-route. This is the fixed cost every node pays on every membership
// change, so it must stay far below the data-movement cost measured by
// BenchmarkJoinHandoff. Recorded in BENCH_PR10.json.
func BenchmarkEpochFlip(b *testing.B) {
	ids := []string{"n1", "n2", "n3"}
	nodes, _ := startCluster(b, ids, 2, false, nil)
	ds := makeDataset(48, 24, 7)
	feed(b, nodes, "n1", ds)
	r := nodes["n1"].router

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := r.Topology()
		g, err := cur.WithJoined(Member{ID: "zz-ghost", Addr: "mem://zz-ghost"})
		if err != nil {
			b.Fatal(err)
		}
		next, err := g.WithLeft("zz-ghost")
		if err != nil {
			b.Fatal(err)
		}
		if !r.applyTopology(next) {
			b.Fatal("flip not adopted")
		}
	}
}
