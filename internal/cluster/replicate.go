package cluster

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/persist"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

// WAL-shipping replication. Each node follows the RF-1 nodes preceding it
// in sorted node-ID order (Ring.Leaders) and keeps one in-memory replica
// store per leader. The protocol is pull-based and idempotent to drive:
//
//	bootstrap:  pull a snapshot (a full store dump pinned to a WAL
//	            position), rebuild the replica store from it;
//	steady:     pull record payloads from the cursor, apply each with
//	            persist.ApplyRecord, advance the cursor;
//	fell behind: the leader checkpointed past our cursor (SegmentGone) —
//	            drop back to bootstrap.
//
// The replica is exact, not approximate: the WAL is the leader's total
// mutation order, so replaying it on top of the snapshot reproduces the
// leader's store byte for byte (the convergence check in the chaos campaign
// compares full dumps). A replica lives in memory only — a follower that
// restarts re-bootstraps, which the snapshot path makes cheap.

// replica is one leader's shadow store on this node.
type replica struct {
	leader string
	opts   []timeseries.Option

	mu           sync.Mutex
	store        *timeseries.Store
	rt           *persist.RefTable // opDefine bindings for the record stream
	bootstrapped bool
	promoted     bool   // read-primary lease: the leader is dead and this replica answers authoritatively
	repaired     bool   // installed by read-repair: re-bootstrap from the leader once it heals
	seq          uint64 // replication cursor: WAL segment
	off          int64  // replication cursor: byte offset
	records      uint64 // records applied since bootstrap
	lag          int64  // leader-reported bytes behind, at last pull
}

func newReplica(leader string, opts []timeseries.Option) *replica {
	return &replica{leader: leader, opts: opts}
}

// readStore returns the replica store if it is ready to serve reads.
func (rep *replica) readStore() *timeseries.Store {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if !rep.bootstrapped {
		return nil
	}
	return rep.store
}

// snapshotState returns the read store together with the promotion flag and
// replication cursor — what a replica-served query response stamps so the
// coordinator can compare follower freshness and trust promoted answers.
func (rep *replica) snapshotState() (st *timeseries.Store, promoted bool, seq uint64, off int64) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if !rep.bootstrapped {
		return nil, false, 0, 0
	}
	return rep.store, rep.promoted, rep.seq, rep.off
}

func (rep *replica) stats() ReplicaStats {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	st := ReplicaStats{
		Leader:       rep.leader,
		Bootstrapped: rep.bootstrapped,
		Promoted:     rep.promoted,
		Records:      rep.records,
		LagBytes:     rep.lag,
	}
	if rep.bootstrapped && rep.store != nil {
		st.Series = rep.store.NumSeries()
		st.Samples = rep.store.NumSamples()
	}
	return st
}

// PumpReplication advances every replica until it is caught up with its
// leader or the leader is unreachable. One call after the leaders quiesce
// brings every replica to lag 0, which is what deterministic tests lean on;
// the background loop calls it periodically.
func (r *Router) PumpReplication() {
	for _, rep := range r.replicasSnapshot() {
		_ = r.pumpReplica(rep)
	}
}

// pumpReplica drives one replica's pull loop to the leader's writing edge.
// Pulls carry this node's topology epoch: a leader on a different epoch
// rejects the pull, and the resulting topology exchange converges both sides
// before the next pump retries against the (possibly re-derived) replica set.
func (r *Router) pumpReplica(rep *replica) error {
	p := r.peer(rep.leader)
	if p == nil {
		return fmt.Errorf("cluster: no peer for leader %s", rep.leader)
	}
	timeout := r.cfg.rpcTimeout()
	epoch := r.Epoch()
	rep.mu.Lock()
	defer rep.mu.Unlock()
	// A repaired replica was installed from a fellow follower while the
	// leader was dead; its cursor is valid but its ref-table bindings are
	// not, so the first pump after the leader heals restarts from a fresh
	// leader snapshot.
	if !rep.bootstrapped || rep.repaired {
		resp, err := p.rc.replPull(&replPullRequest{Epoch: epoch, WantSnapshot: true}, timeout)
		if err != nil {
			var em *epochMismatchError
			if errors.As(err, &em) {
				return r.resolveEpochMismatch(p, em.peerEpoch)
			}
			return err
		}
		chunk, dump, err := persist.DecodeDump(resp.Snapshot)
		if err != nil {
			return err
		}
		st, err := timeseries.RestoreStore(chunk, dump, rep.opts...)
		if err != nil {
			return err
		}
		rep.store = st
		// Fresh dictionary for the fresh stream: the leader cleared its
		// WAL-ref table at the snapshot cut, so every ref used after the
		// cut is re-defined in the records we are about to pull.
		if rep.rt == nil {
			rep.rt = persist.NewRefTable()
		} else {
			rep.rt.Reset()
		}
		rep.seq, rep.off = resp.NextSeq, resp.NextOff
		rep.lag = resp.LagBytes
		rep.records = 0
		rep.bootstrapped = true
		rep.repaired = false
	}
	for {
		resp, err := p.rc.replPull(&replPullRequest{
			Epoch:    epoch,
			FromSeq:  rep.seq,
			FromOff:  rep.off,
			MaxBytes: r.cfg.replPullBytes(),
		}, timeout)
		if err != nil {
			var em *epochMismatchError
			if errors.As(err, &em) {
				return r.resolveEpochMismatch(p, em.peerEpoch)
			}
			return err
		}
		if resp.SegmentGone {
			// The leader checkpointed past our cursor; restart from a
			// snapshot on the next pump.
			rep.bootstrapped = false
			rep.store = nil
			return nil
		}
		for _, payload := range resp.Records {
			if err := persist.ApplyRecord(rep.store, rep.rt, payload); err != nil {
				return err
			}
		}
		rep.records += uint64(len(resp.Records))
		rep.seq, rep.off = resp.NextSeq, resp.NextOff
		rep.lag = resp.LagBytes
		if len(resp.Records) == 0 {
			return nil // caught up to the writing edge
		}
	}
}

// ReplicaOf exposes the replica store this node keeps for leader, if it is
// bootstrapped — diagnostics and the chaos campaign's convergence check.
func (r *Router) ReplicaOf(leader string) (*timeseries.Store, bool) {
	rep := r.replicaFor(leader)
	if rep == nil {
		return nil, false
	}
	st := rep.readStore()
	return st, st != nil
}

// ResetReplica discards a replica's state, simulating a follower crash
// (replicas are memory-only); the next pump re-bootstraps from a snapshot.
func (r *Router) ResetReplica(leader string) bool {
	rep := r.replicaFor(leader)
	if rep == nil {
		return false
	}
	rep.mu.Lock()
	rep.store = nil
	rep.rt = nil
	rep.bootstrapped = false
	rep.promoted = false
	rep.repaired = false
	rep.seq, rep.off = 0, 0
	rep.records = 0
	rep.mu.Unlock()
	return true
}

// ReplicationLag reports the last observed byte lag behind leader, or -1 if
// this node does not follow it (or has not bootstrapped yet).
func (r *Router) ReplicationLag(leader string) int64 {
	rep := r.replicaFor(leader)
	if rep == nil {
		return -1
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if !rep.bootstrapped {
		return -1
	}
	return rep.lag
}

// --- leader side ---

// maxSnapshotPayload keeps a shipped snapshot inside one wire frame, with
// headroom for the response envelope.
const maxSnapshotPayload = wire.MaxPayload - 4096

// serveReplPull answers a follower's pull against this node's WAL. Epoch 0
// skips the topology check — the join handoff streams snapshots and WAL
// tails across epochs by design.
func (r *Router) serveReplPull(q *replPullRequest) *replPullResponse {
	if q.Epoch != 0 {
		if mine := r.Epoch(); q.Epoch != mine {
			return &replPullResponse{EpochMismatch: true, Epoch: mine}
		}
	}
	d := r.cfg.Durable
	if d == nil {
		return &replPullResponse{Err: fmt.Sprintf("node %s has no durable store; replication unavailable", r.self)}
	}
	sr := persist.NewSegmentReader(d.Dir())
	if q.WantSnapshot {
		chunk, dump, seq, off, err := d.ReplicationSnapshot()
		if err != nil {
			return &replPullResponse{Err: err.Error()}
		}
		payload := persist.EncodeDump(chunk, dump)
		if len(payload) > maxSnapshotPayload {
			return &replPullResponse{Err: fmt.Sprintf("snapshot too large to ship (%d bytes)", len(payload))}
		}
		return &replPullResponse{Snapshot: payload, NextSeq: seq, NextOff: off}
	}
	maxBytes := q.MaxBytes
	if maxBytes <= 0 || maxBytes > 8<<20 {
		maxBytes = 8 << 20
	}
	var recs [][]byte
	nextSeq, nextOff, _, err := sr.ReadFrom(q.FromSeq, q.FromOff, maxBytes, func(payload []byte) error {
		recs = append(recs, append([]byte(nil), payload...))
		return nil
	})
	if err == persist.ErrSegmentGone {
		return &replPullResponse{SegmentGone: true}
	}
	if err != nil {
		return &replPullResponse{Err: err.Error()}
	}
	lag, err := sr.TailBytes(nextSeq, nextOff)
	if err != nil {
		lag = 0
	}
	return &replPullResponse{Records: recs, NextSeq: nextSeq, NextOff: nextOff, LagBytes: lag}
}
