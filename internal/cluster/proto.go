package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/timeseries"
)

// Cluster RPC rides the wire package's frame layer (magic/version/CRC) with
// its own frame types, so a cluster listener can also accept plain agent
// FrameBatch traffic on the same port. Requests and responses are single
// frames; payloads use the same uvarint/varint/8-byte-float conventions as
// the batch codec.
const (
	// FrameQueryReq asks a peer to execute a query op against its local
	// store (or one of its replica stores) and return per-key results.
	FrameQueryReq uint8 = 16
	// FrameQueryResp carries the per-key results or an error.
	FrameQueryResp uint8 = 17
	// FrameReplPull asks a leader for WAL records (or a snapshot) from a
	// follower's replication cursor.
	FrameReplPull uint8 = 18
	// FrameReplResp carries the shipped records / snapshot.
	FrameReplResp uint8 = 19
	// FrameTopoReq asks a peer for its current topology (epoch, members,
	// ring geometry) — the anti-entropy fetch after an epoch mismatch, and
	// the first step of a join.
	FrameTopoReq uint8 = 20
	// FrameTopoResp carries an encoded Topology.
	FrameTopoResp uint8 = 21
	// FrameTopoPush offers a peer a (presumably newer) topology; the peer
	// adopts it if the epoch is newer than its own.
	FrameTopoPush uint8 = 22
	// FrameTopoAck answers a push with the peer's resulting epoch.
	FrameTopoAck uint8 = 23
	// FrameRepairReq asks a follower to back-fill its stale replica of a
	// leader from a fresher follower (read-repair).
	FrameRepairReq uint8 = 24
	// FrameRepairResp reports the repair outcome.
	FrameRepairResp uint8 = 25
	// FrameRepSnapReq asks a follower for a snapshot of its replica store
	// of a leader, pinned to its replication cursor.
	FrameRepSnapReq uint8 = 26
	// FrameRepSnapResp carries the replica snapshot + cursor.
	FrameRepSnapResp uint8 = 27
)

// queryOp selects what a peer computes per key. Mergeable functions ship
// fixed-size partial aggregates and the coordinator finishes them; the two
// "full" ops exist for std/p95, which need the raw distribution and are
// therefore computed entirely on the one peer owning the series.
type queryOp uint8

const (
	opReducePartial queryOp = 1 // Partial per key (mergeable reduce)
	opAggPartials   queryOp = 2 // []PartialPoint per key (mergeable range)
	opSeriesValues  queryOp = 3 // []float64 per key (SeriesValuesPlanned)
	opReduceFull    queryOp = 4 // final (value, count) per key, fn on owner
	opAggFull       queryOp = 5 // final []AggPoint per key, fn on owner
)

type queryRequest struct {
	Op queryOp
	// Epoch is the sender's topology epoch. A peer on a different epoch
	// rejects the request with EpochMismatch instead of answering against a
	// divergent placement; 0 skips the check (epoch-agnostic bootstrap
	// traffic from a node not yet in the membership).
	Epoch uint64
	// ReplicaOf selects the peer's replica store of that node instead of
	// its own primary store — the degraded-read path when an owner is down.
	ReplicaOf string
	Fn        timeseries.AggFunc // opReduceFull / opAggFull only
	From, To  int64
	Step      int64 // bucketed ops only
	Keys      []string
}

// keyResult is one key's answer; which fields are set depends on the op.
type keyResult struct {
	Found   bool
	Partial timeseries.Partial
	PPoints []timeseries.PartialPoint
	Values  []float64
	Value   float64
	Count   int64
	Points  []timeseries.AggPoint
}

type queryResponse struct {
	Err string // non-empty: the whole request failed on the peer
	// EpochMismatch: the peer is on a different topology epoch (reported in
	// Epoch) and refused to answer; the caller resolves via topology
	// fetch/push and retries.
	EpochMismatch bool
	Epoch         uint64
	// Promoted (replica queries only): the serving follower has promoted
	// its replica of ReplicaOf to read-primary after sustained leader
	// death, so the answer is authoritative, not partial.
	Promoted bool
	// ReplSeq/ReplOff (replica queries only): the follower's replication
	// cursor, letting a coordinator detect divergent replicas and trigger
	// read-repair.
	ReplSeq uint64
	ReplOff int64
	Results []keyResult
}

type replPullRequest struct {
	Epoch        uint64 // sender's topology epoch; 0 = epoch-agnostic (join)
	WantSnapshot bool
	FromSeq      uint64
	FromOff      int64
	MaxBytes     int64
}

type replPullResponse struct {
	Err           string
	EpochMismatch bool
	Epoch         uint64
	SegmentGone   bool // cursor fell behind a checkpoint: re-bootstrap
	Snapshot      []byte
	NextSeq       uint64
	NextOff       int64
	LagBytes      int64
	Records       [][]byte
}

// repairRequest asks a follower holding a stale replica of Leader to
// back-fill it from the fresher follower From (read-repair).
type repairRequest struct {
	Epoch  uint64
	Leader string
	From   string
}

type repairResponse struct {
	Err           string
	EpochMismatch bool
	Epoch         uint64
	Repaired      bool
}

// repSnapRequest asks a follower for a snapshot of its replica store of
// Leader, pinned to its replication cursor — the donor side of read-repair.
type repSnapRequest struct {
	Epoch  uint64
	Leader string
}

type repSnapResponse struct {
	Err           string
	EpochMismatch bool
	Epoch         uint64
	Snapshot      []byte
	Seq           uint64
	Off           int64
	Records       uint64
	Lag           int64
}

// --- encode/decode helpers (same conventions as the wire batch codec) ---

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, v float64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(b, tmp[:]...)
}

func appendBytes(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

type protoReader struct {
	buf []byte
	pos int
}

func (p *protoReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.buf[p.pos:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	p.pos += n
	return v, nil
}

func (p *protoReader) varint() (int64, error) {
	v, n := binary.Varint(p.buf[p.pos:])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	p.pos += n
	return v, nil
}

func (p *protoReader) count() (int, error) {
	v, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	// Every counted element costs at least one byte, so a count larger than
	// the remaining payload is corrupt — reject before allocating.
	if v > uint64(len(p.buf)-p.pos) {
		return 0, fmt.Errorf("cluster: implausible count %d", v)
	}
	return int(v), nil
}

func (p *protoReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(p.buf)-p.pos) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(p.buf[p.pos : p.pos+int(n)])
	p.pos += int(n)
	return s, nil
}

func (p *protoReader) bytes() ([]byte, error) {
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p.buf)-p.pos) {
		return nil, io.ErrUnexpectedEOF
	}
	out := make([]byte, n)
	copy(out, p.buf[p.pos:p.pos+int(n)])
	p.pos += int(n)
	return out, nil
}

func (p *protoReader) float() (float64, error) {
	if p.pos+8 > len(p.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(p.buf[p.pos:]))
	p.pos += 8
	return v, nil
}

func (p *protoReader) byteVal() (byte, error) {
	if p.pos >= len(p.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := p.buf[p.pos]
	p.pos++
	return b, nil
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func (p *protoReader) boolVal() (bool, error) {
	b, err := p.byteVal()
	return b != 0, err
}

// --- Partial / PartialPoint ---

func appendPartial(b []byte, pa *timeseries.Partial) []byte {
	b = appendVarint(b, pa.Count)
	b = appendFloat(b, pa.Sum)
	b = appendFloat(b, pa.Min)
	b = appendFloat(b, pa.Max)
	b = appendVarint(b, pa.FirstT)
	b = appendFloat(b, pa.FirstV)
	b = appendVarint(b, pa.LastT)
	b = appendFloat(b, pa.LastV)
	return b
}

func (p *protoReader) partial(pa *timeseries.Partial) error {
	var err error
	if pa.Count, err = p.varint(); err != nil {
		return err
	}
	if pa.Sum, err = p.float(); err != nil {
		return err
	}
	if pa.Min, err = p.float(); err != nil {
		return err
	}
	if pa.Max, err = p.float(); err != nil {
		return err
	}
	if pa.FirstT, err = p.varint(); err != nil {
		return err
	}
	if pa.FirstV, err = p.float(); err != nil {
		return err
	}
	if pa.LastT, err = p.varint(); err != nil {
		return err
	}
	if pa.LastV, err = p.float(); err != nil {
		return err
	}
	return nil
}

// --- query request ---

func encodeQueryRequest(q *queryRequest) []byte {
	b := make([]byte, 0, 64)
	b = append(b, byte(q.Op))
	b = appendUvarint(b, q.Epoch)
	b = appendString(b, q.ReplicaOf)
	b = appendString(b, string(q.Fn))
	b = appendVarint(b, q.From)
	b = appendVarint(b, q.To)
	b = appendVarint(b, q.Step)
	b = appendUvarint(b, uint64(len(q.Keys)))
	for _, k := range q.Keys {
		b = appendString(b, k)
	}
	return b
}

func decodeQueryRequest(payload []byte) (*queryRequest, error) {
	p := &protoReader{buf: payload}
	var q queryRequest
	op, err := p.byteVal()
	if err != nil {
		return nil, err
	}
	q.Op = queryOp(op)
	if q.Epoch, err = p.uvarint(); err != nil {
		return nil, err
	}
	if q.ReplicaOf, err = p.str(); err != nil {
		return nil, err
	}
	fn, err := p.str()
	if err != nil {
		return nil, err
	}
	q.Fn = timeseries.AggFunc(fn)
	if q.From, err = p.varint(); err != nil {
		return nil, err
	}
	if q.To, err = p.varint(); err != nil {
		return nil, err
	}
	if q.Step, err = p.varint(); err != nil {
		return nil, err
	}
	nk, err := p.count()
	if err != nil {
		return nil, err
	}
	q.Keys = make([]string, 0, nk)
	for i := 0; i < nk; i++ {
		k, err := p.str()
		if err != nil {
			return nil, err
		}
		q.Keys = append(q.Keys, k)
	}
	return &q, nil
}

// --- query response ---

func encodeQueryResponse(op queryOp, resp *queryResponse) []byte {
	b := make([]byte, 0, 64)
	b = appendString(b, resp.Err)
	if resp.Err != "" {
		return b
	}
	b = appendBool(b, resp.EpochMismatch)
	b = appendUvarint(b, resp.Epoch)
	if resp.EpochMismatch {
		return b
	}
	b = appendBool(b, resp.Promoted)
	b = appendUvarint(b, resp.ReplSeq)
	b = appendVarint(b, resp.ReplOff)
	b = appendUvarint(b, uint64(len(resp.Results)))
	for i := range resp.Results {
		r := &resp.Results[i]
		b = appendBool(b, r.Found)
		if !r.Found {
			continue
		}
		switch op {
		case opReducePartial:
			b = appendPartial(b, &r.Partial)
		case opAggPartials:
			b = appendUvarint(b, uint64(len(r.PPoints)))
			for j := range r.PPoints {
				b = appendVarint(b, r.PPoints[j].Start)
				b = appendPartial(b, &r.PPoints[j].Agg)
			}
		case opSeriesValues:
			b = appendUvarint(b, uint64(len(r.Values)))
			for _, v := range r.Values {
				b = appendFloat(b, v)
			}
		case opReduceFull:
			b = appendFloat(b, r.Value)
			b = appendVarint(b, r.Count)
		case opAggFull:
			b = appendUvarint(b, uint64(len(r.Points)))
			for j := range r.Points {
				b = appendVarint(b, r.Points[j].Start)
				b = appendFloat(b, r.Points[j].Value)
			}
		}
	}
	return b
}

func decodeQueryResponse(op queryOp, payload []byte) (*queryResponse, error) {
	p := &protoReader{buf: payload}
	var resp queryResponse
	var err error
	if resp.Err, err = p.str(); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return &resp, nil
	}
	if resp.EpochMismatch, err = p.boolVal(); err != nil {
		return nil, err
	}
	if resp.Epoch, err = p.uvarint(); err != nil {
		return nil, err
	}
	if resp.EpochMismatch {
		return &resp, nil
	}
	if resp.Promoted, err = p.boolVal(); err != nil {
		return nil, err
	}
	if resp.ReplSeq, err = p.uvarint(); err != nil {
		return nil, err
	}
	if resp.ReplOff, err = p.varint(); err != nil {
		return nil, err
	}
	nr, err := p.count()
	if err != nil {
		return nil, err
	}
	resp.Results = make([]keyResult, nr)
	for i := 0; i < nr; i++ {
		r := &resp.Results[i]
		if r.Found, err = p.boolVal(); err != nil {
			return nil, err
		}
		if !r.Found {
			continue
		}
		switch op {
		case opReducePartial:
			if err := p.partial(&r.Partial); err != nil {
				return nil, err
			}
		case opAggPartials:
			np, err := p.count()
			if err != nil {
				return nil, err
			}
			r.PPoints = make([]timeseries.PartialPoint, np)
			for j := 0; j < np; j++ {
				if r.PPoints[j].Start, err = p.varint(); err != nil {
					return nil, err
				}
				if err := p.partial(&r.PPoints[j].Agg); err != nil {
					return nil, err
				}
			}
		case opSeriesValues:
			nv, err := p.count()
			if err != nil {
				return nil, err
			}
			r.Values = make([]float64, nv)
			for j := 0; j < nv; j++ {
				if r.Values[j], err = p.float(); err != nil {
					return nil, err
				}
			}
		case opReduceFull:
			if r.Value, err = p.float(); err != nil {
				return nil, err
			}
			if r.Count, err = p.varint(); err != nil {
				return nil, err
			}
		case opAggFull:
			np, err := p.count()
			if err != nil {
				return nil, err
			}
			r.Points = make([]timeseries.AggPoint, np)
			for j := 0; j < np; j++ {
				if r.Points[j].Start, err = p.varint(); err != nil {
					return nil, err
				}
				if r.Points[j].Value, err = p.float(); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("cluster: unknown query op %d", op)
		}
	}
	return &resp, nil
}

// --- replication pull ---

func encodeReplPullRequest(q *replPullRequest) []byte {
	b := make([]byte, 0, 32)
	b = appendUvarint(b, q.Epoch)
	b = appendBool(b, q.WantSnapshot)
	b = appendUvarint(b, q.FromSeq)
	b = appendVarint(b, q.FromOff)
	b = appendVarint(b, q.MaxBytes)
	return b
}

func decodeReplPullRequest(payload []byte) (*replPullRequest, error) {
	p := &protoReader{buf: payload}
	var q replPullRequest
	var err error
	if q.Epoch, err = p.uvarint(); err != nil {
		return nil, err
	}
	if q.WantSnapshot, err = p.boolVal(); err != nil {
		return nil, err
	}
	if q.FromSeq, err = p.uvarint(); err != nil {
		return nil, err
	}
	if q.FromOff, err = p.varint(); err != nil {
		return nil, err
	}
	if q.MaxBytes, err = p.varint(); err != nil {
		return nil, err
	}
	return &q, nil
}

func encodeReplPullResponse(r *replPullResponse) []byte {
	b := make([]byte, 0, 64)
	b = appendString(b, r.Err)
	if r.Err != "" {
		return b
	}
	b = appendBool(b, r.EpochMismatch)
	b = appendUvarint(b, r.Epoch)
	if r.EpochMismatch {
		return b
	}
	b = appendBool(b, r.SegmentGone)
	b = appendBytes(b, r.Snapshot)
	b = appendUvarint(b, r.NextSeq)
	b = appendVarint(b, r.NextOff)
	b = appendVarint(b, r.LagBytes)
	b = appendUvarint(b, uint64(len(r.Records)))
	for _, rec := range r.Records {
		b = appendBytes(b, rec)
	}
	return b
}

func decodeReplPullResponse(payload []byte) (*replPullResponse, error) {
	p := &protoReader{buf: payload}
	var r replPullResponse
	var err error
	if r.Err, err = p.str(); err != nil {
		return nil, err
	}
	if r.Err != "" {
		return &r, nil
	}
	if r.EpochMismatch, err = p.boolVal(); err != nil {
		return nil, err
	}
	if r.Epoch, err = p.uvarint(); err != nil {
		return nil, err
	}
	if r.EpochMismatch {
		return &r, nil
	}
	if r.SegmentGone, err = p.boolVal(); err != nil {
		return nil, err
	}
	if r.Snapshot, err = p.bytes(); err != nil {
		return nil, err
	}
	if r.NextSeq, err = p.uvarint(); err != nil {
		return nil, err
	}
	if r.NextOff, err = p.varint(); err != nil {
		return nil, err
	}
	if r.LagBytes, err = p.varint(); err != nil {
		return nil, err
	}
	nr, err := p.count()
	if err != nil {
		return nil, err
	}
	r.Records = make([][]byte, 0, nr)
	for i := 0; i < nr; i++ {
		rec, err := p.bytes()
		if err != nil {
			return nil, err
		}
		r.Records = append(r.Records, rec)
	}
	return &r, nil
}

// --- read-repair ---

func encodeRepairRequest(q *repairRequest) []byte {
	b := make([]byte, 0, 32)
	b = appendUvarint(b, q.Epoch)
	b = appendString(b, q.Leader)
	b = appendString(b, q.From)
	return b
}

func decodeRepairRequest(payload []byte) (*repairRequest, error) {
	p := &protoReader{buf: payload}
	var q repairRequest
	var err error
	if q.Epoch, err = p.uvarint(); err != nil {
		return nil, err
	}
	if q.Leader, err = p.str(); err != nil {
		return nil, err
	}
	if q.From, err = p.str(); err != nil {
		return nil, err
	}
	return &q, nil
}

func encodeRepairResponse(r *repairResponse) []byte {
	b := make([]byte, 0, 16)
	b = appendString(b, r.Err)
	b = appendBool(b, r.EpochMismatch)
	b = appendUvarint(b, r.Epoch)
	b = appendBool(b, r.Repaired)
	return b
}

func decodeRepairResponse(payload []byte) (*repairResponse, error) {
	p := &protoReader{buf: payload}
	var r repairResponse
	var err error
	if r.Err, err = p.str(); err != nil {
		return nil, err
	}
	if r.EpochMismatch, err = p.boolVal(); err != nil {
		return nil, err
	}
	if r.Epoch, err = p.uvarint(); err != nil {
		return nil, err
	}
	if r.Repaired, err = p.boolVal(); err != nil {
		return nil, err
	}
	return &r, nil
}

func encodeRepSnapRequest(q *repSnapRequest) []byte {
	b := make([]byte, 0, 16)
	b = appendUvarint(b, q.Epoch)
	b = appendString(b, q.Leader)
	return b
}

func decodeRepSnapRequest(payload []byte) (*repSnapRequest, error) {
	p := &protoReader{buf: payload}
	var q repSnapRequest
	var err error
	if q.Epoch, err = p.uvarint(); err != nil {
		return nil, err
	}
	if q.Leader, err = p.str(); err != nil {
		return nil, err
	}
	return &q, nil
}

func encodeRepSnapResponse(r *repSnapResponse) []byte {
	b := make([]byte, 0, 64)
	b = appendString(b, r.Err)
	if r.Err != "" {
		return b
	}
	b = appendBool(b, r.EpochMismatch)
	b = appendUvarint(b, r.Epoch)
	if r.EpochMismatch {
		return b
	}
	b = appendBytes(b, r.Snapshot)
	b = appendUvarint(b, r.Seq)
	b = appendVarint(b, r.Off)
	b = appendUvarint(b, r.Records)
	b = appendVarint(b, r.Lag)
	return b
}

func decodeRepSnapResponse(payload []byte) (*repSnapResponse, error) {
	p := &protoReader{buf: payload}
	var r repSnapResponse
	var err error
	if r.Err, err = p.str(); err != nil {
		return nil, err
	}
	if r.Err != "" {
		return &r, nil
	}
	if r.EpochMismatch, err = p.boolVal(); err != nil {
		return nil, err
	}
	if r.Epoch, err = p.uvarint(); err != nil {
		return nil, err
	}
	if r.EpochMismatch {
		return &r, nil
	}
	if r.Snapshot, err = p.bytes(); err != nil {
		return nil, err
	}
	if r.Seq, err = p.uvarint(); err != nil {
		return nil, err
	}
	if r.Off, err = p.varint(); err != nil {
		return nil, err
	}
	if r.Records, err = p.uvarint(); err != nil {
		return nil, err
	}
	if r.Lag, err = p.varint(); err != nil {
		return nil, err
	}
	return &r, nil
}
