package cluster

import (
	"fmt"

	"repro/internal/persist"
	"repro/internal/timeseries"
)

// Read repair. When a scatter query falls back to an owner's followers and
// their replication cursors disagree, the coordinator back-fills every stale
// follower from the freshest one: the stale node pulls a snapshot of the
// fresh node's replica store (FrameRepSnapReq) and installs it, cursor and
// all. The repaired replica keeps serving reads while the leader stays dead;
// once the leader heals, the repair flag forces a clean re-bootstrap from
// the leader's WAL (the repaired stream's ref-table bindings are unknown, so
// tailing the leader's records onto it would be unsound).

// cursorBehind reports whether cursor a trails cursor b.
func cursorBehind(aSeq uint64, aOff int64, bSeq uint64, bOff int64) bool {
	if aSeq != bSeq {
		return aSeq < bSeq
	}
	return aOff < bOff
}

// repairReplica back-fills staleID's replica of leader from freshID's. When
// the stale node is this one, it pulls the snapshot itself; otherwise it
// asks the stale peer to pull from the fresh peer.
func (r *Router) repairReplica(leader, staleID, freshID string) {
	timeout := r.cfg.rpcTimeout()
	epoch := r.Epoch()
	if staleID == r.self {
		fp := r.peer(freshID)
		if fp == nil {
			return
		}
		snap, err := fp.rc.repSnap(&repSnapRequest{Epoch: epoch, Leader: leader}, timeout)
		if err != nil {
			return
		}
		if r.installReplicaSnapshot(leader, snap) {
			r.readRepairs.Add(1)
		}
		return
	}
	sp := r.peer(staleID)
	if sp == nil {
		return
	}
	resp, err := sp.rc.repair(&repairRequest{Epoch: epoch, Leader: leader, From: freshID}, timeout)
	if err == nil && resp.Repaired {
		r.readRepairs.Add(1)
	}
}

// serveRepair handles a coordinator's instruction to back-fill our replica
// of q.Leader from peer q.From.
func (r *Router) serveRepair(q *repairRequest) *repairResponse {
	if q.Epoch != 0 {
		if mine := r.Epoch(); q.Epoch != mine {
			return &repairResponse{EpochMismatch: true, Epoch: mine}
		}
	}
	fp := r.peer(q.From)
	if fp == nil {
		return &repairResponse{Err: fmt.Sprintf("node %s has no peer %s to repair from", r.self, q.From)}
	}
	snap, err := fp.rc.repSnap(&repSnapRequest{Epoch: q.Epoch, Leader: q.Leader}, r.cfg.rpcTimeout())
	if err != nil {
		return &repairResponse{Err: err.Error()}
	}
	if !r.installReplicaSnapshot(q.Leader, snap) {
		return &repairResponse{Err: fmt.Sprintf("node %s refused replica snapshot of %s (not stale, or no such replica)", r.self, q.Leader)}
	}
	return &repairResponse{Repaired: true}
}

// serveRepSnap dumps this node's replica of q.Leader, pinned to its
// replication cursor, for a stale follower to install.
func (r *Router) serveRepSnap(q *repSnapRequest) *repSnapResponse {
	if q.Epoch != 0 {
		if mine := r.Epoch(); q.Epoch != mine {
			return &repSnapResponse{EpochMismatch: true, Epoch: mine}
		}
	}
	rep := r.replicaFor(q.Leader)
	if rep == nil {
		return &repSnapResponse{Err: fmt.Sprintf("node %s holds no replica of %s", r.self, q.Leader)}
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if !rep.bootstrapped {
		return &repSnapResponse{Err: fmt.Sprintf("replica of %s on %s not bootstrapped", q.Leader, r.self)}
	}
	payload := persist.EncodeDump(rep.store.ChunkSize(), rep.store.Dump())
	if len(payload) > maxSnapshotPayload {
		return &repSnapResponse{Err: fmt.Sprintf("replica snapshot too large to ship (%d bytes)", len(payload))}
	}
	return &repSnapResponse{
		Snapshot: payload,
		Seq:      rep.seq,
		Off:      rep.off,
		Records:  rep.records,
		Lag:      rep.lag,
	}
}

// installReplicaSnapshot replaces our replica of leader with a fellow
// follower's snapshot, provided the donor's cursor is actually ahead.
func (r *Router) installReplicaSnapshot(leader string, snap *repSnapResponse) bool {
	rep := r.replicaFor(leader)
	if rep == nil {
		return false
	}
	chunk, dump, err := persist.DecodeDump(snap.Snapshot)
	if err != nil {
		return false
	}
	st, err := timeseries.RestoreStore(chunk, dump, rep.opts...)
	if err != nil {
		return false
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.bootstrapped && !cursorBehind(rep.seq, rep.off, snap.Seq, snap.Off) {
		return false // we are at least as fresh; nothing to repair
	}
	rep.store = st
	rep.rt = nil
	rep.seq, rep.off = snap.Seq, snap.Off
	rep.records = snap.Records
	rep.lag = snap.Lag
	rep.bootstrapped = true
	rep.repaired = true
	return true
}
