package predictive

import (
	"fmt"

	"repro/internal/forecast"
	"repro/internal/oda"
	"repro/internal/scheduler"
	"repro/internal/simulation"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SchedSimulate replays the window's submitted jobs through fast what-if
// scheduler simulations (Batsim/AccaSim/Alea-style), predicting how queue
// KPIs would change under alternative policies.
type SchedSimulate struct {
	// Policies to compare; default FCFS, EASY, plan-based.
	Policies []scheduler.Policy
}

// Meta implements oda.Capability.
func (SchedSimulate) Meta() oda.Meta {
	return oda.Meta{
		Name:        "sched-simulate",
		Description: "what-if scheduler simulation across policies",
		Cells:       []oda.Cell{cell(oda.SystemSoftware, oda.Predictive)},
		Refs:        []string{"[49]", "[50]", "[51]"},
		Reads:       []oda.Resource{oda.ResJobQueue},
	}
}

// Replay runs the given jobs through a policy at ideal runtimes and
// returns the resulting metrics. Exposed for the prescriptive layer, which
// picks the winning policy.
func Replay(jobs []*workload.Job, nodes int, policy scheduler.Policy) scheduler.Metrics {
	c := scheduler.NewCluster(nodes, policy)
	// Deep-copy jobs: replay mutates lifecycle fields.
	copies := make([]*workload.Job, len(jobs))
	for i, j := range jobs {
		cp := *j
		cp.StartTime, cp.EndTime, cp.DoneWork = 0, 0, 0
		copies[i] = &cp
	}
	ji := 0
	var now int64
	if len(copies) > 0 {
		now = copies[0].SubmitTime
	}
	step := int64(10_000)
	deadline := now + int64(14*24*3600*1000)
	for ; now < deadline; now += step {
		for ji < len(copies) && copies[ji].SubmitTime <= now {
			c.Submit(copies[ji])
			ji++
		}
		c.Tick(now)
		for _, a := range c.RunningJobs() {
			if float64(now-a.Job.StartTime)/1000 >= a.Job.IdealRuntime() {
				_ = c.Complete(a.Job.ID, now)
			}
		}
		if ji >= len(copies) && c.QueueLength() == 0 && len(c.RunningJobs()) == 0 {
			break
		}
	}
	return c.MetricsAt(now)
}

// Run implements oda.Capability.
func (c SchedSimulate) Run(ctx *oda.RunContext) (oda.Result, error) {
	dc, err := oda.SystemAs[*simulation.DataCenter](ctx)
	if err != nil {
		return oda.Result{}, err
	}
	policies := c.Policies
	if len(policies) == 0 {
		policies = []scheduler.Policy{scheduler.FCFS{}, scheduler.EASY{}, scheduler.PlanBased{}}
	}
	var jobs []*workload.Job
	for _, rec := range dc.Allocations() {
		if rec.Job.SubmitTime >= ctx.From && rec.Job.SubmitTime < ctx.To {
			jobs = append(jobs, rec.Job)
		}
	}
	if len(jobs) < 5 {
		return oda.Result{}, fmt.Errorf("predictive: only %d jobs to replay", len(jobs))
	}
	values := map[string]float64{"jobs": float64(len(jobs))}
	summary := fmt.Sprintf("replayed %d jobs on %d nodes:", len(jobs), dc.Cluster.TotalNodes())
	for _, p := range policies {
		m := Replay(jobs, dc.Cluster.TotalNodes(), p)
		values["wait_"+p.Name()] = m.MeanWaitSec
		values["slowdown_"+p.Name()] = m.MeanSlowdown
		values["util_"+p.Name()] = m.Utilization
		summary += fmt.Sprintf(" %s wait=%.0fs slow=%.2f;", p.Name(), m.MeanWaitSec, m.MeanSlowdown)
	}
	return oda.Result{Summary: summary, Values: values}, nil
}

// WorkloadForecast forecasts hourly job-arrival counts (the DRAS-CQSim
// workload-prediction cell) with a diurnal Holt-Winters model, backtested
// against seasonal-naive.
type WorkloadForecast struct{}

// Meta implements oda.Capability.
func (WorkloadForecast) Meta() oda.Meta {
	return oda.Meta{
		Name:        "workload-forecast",
		Description: "diurnal forecasting of hourly job arrivals",
		Cells:       []oda.Cell{cell(oda.SystemSoftware, oda.Predictive)},
		Refs:        []string{"[23]"},
		Reads:       []oda.Resource{oda.ResJobQueue},
	}
}

// Run implements oda.Capability.
func (WorkloadForecast) Run(ctx *oda.RunContext) (oda.Result, error) {
	dc, err := oda.SystemAs[*simulation.DataCenter](ctx)
	if err != nil {
		return oda.Result{}, err
	}
	// Hourly arrival counts over the window.
	hourMs := int64(3600 * 1000)
	firstHour := ctx.From / hourMs
	lastHour := (ctx.To - 1) / hourMs
	if lastHour <= firstHour {
		return oda.Result{}, fmt.Errorf("predictive: window shorter than an hour")
	}
	counts := make([]float64, lastHour-firstHour+1)
	for _, rec := range dc.Allocations() {
		st := rec.Job.SubmitTime
		if st < ctx.From || st >= ctx.To {
			continue
		}
		counts[st/hourMs-firstHour]++
	}
	const period = 24
	horizon := 6
	if len(counts) < 2*period+horizon+1 {
		// Short window: compare plain smoothing against naive instead.
		if len(counts) < 8 {
			return oda.Result{}, fmt.Errorf("predictive: only %d hourly buckets", len(counts))
		}
		scores, err := forecast.Compare(counts, len(counts)/2, 2, 2, &forecast.SES{}, &forecast.Naive{})
		if err != nil {
			return oda.Result{}, err
		}
		return oda.Result{
			Summary: fmt.Sprintf("short-window arrival forecast: ses MAE %.2f vs naive %.2f", scores[0].MAE, scores[1].MAE),
			Values:  map[string]float64{"model_mae": scores[0].MAE, "naive_mae": scores[1].MAE, "hours": float64(len(counts))},
		}, nil
	}
	scores, err := forecast.Compare(counts, 2*period, horizon, horizon,
		&forecast.HoltWinters{Period: period}, &forecast.SeasonalNaive{Period: period}, &forecast.Naive{})
	if err != nil {
		return oda.Result{}, err
	}
	return oda.Result{
		Summary: fmt.Sprintf("hourly arrivals (%d h): holt-winters MAE %.2f vs seasonal-naive %.2f vs naive %.2f",
			len(counts), scores[0].MAE, scores[1].MAE, scores[2].MAE),
		Values: map[string]float64{
			"model_mae": scores[0].MAE, "seasonal_naive_mae": scores[1].MAE,
			"naive_mae": scores[2].MAE, "hours": float64(len(counts)),
			"mean_rate": stats.Mean(counts),
		},
	}, nil
}
