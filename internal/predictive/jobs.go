package predictive

import (
	"fmt"
	"hash/fnv"

	"repro/internal/metric"
	"repro/internal/ml"
	"repro/internal/oda"
	"repro/internal/simulation"
	"repro/internal/stats"
	"repro/internal/workload"
)

// submissionFeatures are the metadata available at submit time — no
// post-hoc knowledge — the same features PRIONN-class predictors use.
func submissionFeatures(j *workload.Job) []float64 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(j.User))
	userHash := float64(h.Sum32()%97) / 97
	hour := float64((j.SubmitTime / 3600000) % 24)
	return []float64{
		float64(j.Nodes),
		j.ReqWalltime,
		hour,
		userHash,
		j.MemoryGiBPerNode,
	}
}

// JobDuration predicts job runtimes from submission metadata with a
// random forest, scored on a hold-out split against the user-request
// baseline (users overestimate 1.2-4x, so beating the request is the bar
// every surveyed predictor sets).
type JobDuration struct {
	Seed int64
}

// Meta implements oda.Capability.
func (JobDuration) Meta() oda.Meta {
	return oda.Meta{
		Name:        "job-duration",
		Description: "job runtime prediction from submission metadata",
		Cells:       []oda.Cell{cell(oda.Applications, oda.Predictive)},
		Refs:        []string{"[30]", "[34]", "[35]"},
		Reads:       []oda.Resource{oda.ResJobQueue},
	}
}

// TrainedPredictor fits the model on the window's finished jobs and
// returns a predictor closure for use by prescriptive scheduling
// (predict-then-backfill).
func (c JobDuration) TrainedPredictor(ctx *oda.RunContext) (func(*workload.Job) float64, error) {
	dc, err := oda.SystemAs[*simulation.DataCenter](ctx)
	if err != nil {
		return nil, err
	}
	var rows [][]float64
	var y []float64
	for _, rec := range dc.Allocations() {
		if rec.End == 0 || rec.Killed || rec.End < ctx.From || rec.End >= ctx.To {
			continue
		}
		rows = append(rows, submissionFeatures(rec.Job))
		y = append(y, rec.Job.RuntimeSeconds())
	}
	if len(rows) < 10 {
		return nil, fmt.Errorf("predictive: only %d finished jobs to learn from", len(rows))
	}
	x, err := ml.MatrixFromRows(rows)
	if err != nil {
		return nil, err
	}
	rf := ml.RandomForest{Trees: 30, MaxDepth: 8, Seed: c.Seed}
	if err := rf.FitRegressor(x, y); err != nil {
		return nil, err
	}
	return func(j *workload.Job) float64 {
		v, err := rf.Regress(submissionFeatures(j))
		if err != nil || v <= 0 {
			return j.ReqWalltime
		}
		return v
	}, nil
}

// Run implements oda.Capability.
func (c JobDuration) Run(ctx *oda.RunContext) (oda.Result, error) {
	dc, err := oda.SystemAs[*simulation.DataCenter](ctx)
	if err != nil {
		return oda.Result{}, err
	}
	var rows [][]float64
	var y, reqs []float64
	for _, rec := range dc.Allocations() {
		if rec.End == 0 || rec.Killed || rec.End < ctx.From || rec.End >= ctx.To {
			continue
		}
		rows = append(rows, submissionFeatures(rec.Job))
		y = append(y, rec.Job.RuntimeSeconds())
		reqs = append(reqs, rec.Job.ReqWalltime)
	}
	if len(rows) < 20 {
		return oda.Result{}, fmt.Errorf("predictive: only %d finished jobs", len(rows))
	}
	x, err := ml.MatrixFromRows(rows)
	if err != nil {
		return oda.Result{}, err
	}
	trainIdx, testIdx := ml.TrainTestSplit(len(rows), 0.3, c.Seed)
	rf := ml.RandomForest{Trees: 30, MaxDepth: 8, Seed: c.Seed}
	if err := rf.FitRegressor(ml.SelectRows(x, trainIdx), ml.SelectFloats(y, trainIdx)); err != nil {
		return oda.Result{}, err
	}
	pred := make([]float64, len(testIdx))
	for i, r := range testIdx {
		pred[i], _ = rf.Regress(x.Row(r))
	}
	truth := ml.SelectFloats(y, testIdx)
	reqBaseline := ml.SelectFloats(reqs, testIdx)
	modelMAE := ml.MAE(pred, truth)
	reqMAE := ml.MAE(reqBaseline, truth)
	meanRuntime := stats.Mean(truth)
	return oda.Result{
		Summary: fmt.Sprintf("runtime prediction over %d jobs: model MAE %.0fs vs user-request MAE %.0fs (mean runtime %.0fs)",
			len(rows), modelMAE, reqMAE, meanRuntime),
		Values: map[string]float64{
			"model_mae_s": modelMAE, "request_mae_s": reqMAE,
			"jobs": float64(len(rows)), "mean_runtime_s": meanRuntime,
		},
	}, nil
}

// ResourceUsage predicts a job's mean per-node power draw from submission
// metadata (Evalix/Sirbu-style), the estimator power-aware scheduling
// needs before a job has ever run.
type ResourceUsage struct {
	Seed int64
}

// Meta implements oda.Capability.
func (ResourceUsage) Meta() oda.Meta {
	return oda.Meta{
		Name:        "resource-predict",
		Description: "job mean power prediction from submission metadata",
		Cells: []oda.Cell{cell(oda.Applications, oda.Predictive)},
		Refs:  []string{"[31]", "[52]", "[53]"},
		Reads: []oda.Resource{oda.ResJobQueue, oda.StoreResource("node_power_watts")},
	}
}

// measuredJobPower returns a finished job's observed mean per-node power.
func measuredJobPower(ctx *oda.RunContext, dc *simulation.DataCenter, rec *simulation.AllocationRecord) (float64, bool) {
	if rec.End == 0 || rec.Killed {
		return 0, false
	}
	var sum float64
	var count int
	for _, idx := range rec.Nodes {
		n := dc.Nodes[idx]
		labels := metric.NewLabels("node", n.Name(), "rack", n.Cfg.Rack)
		vals, err := ctx.Store.SeriesValues(metric.ID{Name: "node_power_watts", Labels: labels}, rec.Start, rec.End)
		if err != nil || len(vals) == 0 {
			continue
		}
		sum += stats.Mean(vals)
		count++
	}
	if count == 0 {
		return 0, false
	}
	return sum / float64(count), true
}

// TrainedEstimator fits the model and returns a per-job power estimator
// for the power-aware scheduler.
func (c ResourceUsage) TrainedEstimator(ctx *oda.RunContext) (func(*workload.Job) float64, error) {
	dc, err := oda.SystemAs[*simulation.DataCenter](ctx)
	if err != nil {
		return nil, err
	}
	var rows [][]float64
	var y []float64
	for _, rec := range dc.Allocations() {
		p, ok := measuredJobPower(ctx, dc, rec)
		if !ok {
			continue
		}
		rows = append(rows, submissionFeatures(rec.Job))
		y = append(y, p)
	}
	if len(rows) < 10 {
		return nil, fmt.Errorf("predictive: only %d jobs with power telemetry", len(rows))
	}
	x, err := ml.MatrixFromRows(rows)
	if err != nil {
		return nil, err
	}
	knn := ml.KNN{K: 5}
	if err := knn.FitRegressor(x, y); err != nil {
		return nil, err
	}
	fallback := stats.Mean(y)
	return func(j *workload.Job) float64 {
		v, err := knn.Regress(submissionFeatures(j))
		if err != nil || v <= 0 {
			return fallback * float64(j.Nodes)
		}
		return v * float64(j.Nodes)
	}, nil
}

// Run implements oda.Capability.
func (c ResourceUsage) Run(ctx *oda.RunContext) (oda.Result, error) {
	dc, err := oda.SystemAs[*simulation.DataCenter](ctx)
	if err != nil {
		return oda.Result{}, err
	}
	var rows [][]float64
	var y []float64
	for _, rec := range dc.Allocations() {
		p, ok := measuredJobPower(ctx, dc, rec)
		if !ok {
			continue
		}
		rows = append(rows, submissionFeatures(rec.Job))
		y = append(y, p)
	}
	if len(rows) < 20 {
		return oda.Result{}, fmt.Errorf("predictive: only %d jobs with power telemetry", len(rows))
	}
	x, err := ml.MatrixFromRows(rows)
	if err != nil {
		return oda.Result{}, err
	}
	trainIdx, testIdx := ml.TrainTestSplit(len(rows), 0.3, c.Seed)
	knn := ml.KNN{K: 5}
	if err := knn.FitRegressor(ml.SelectRows(x, trainIdx), ml.SelectFloats(y, trainIdx)); err != nil {
		return oda.Result{}, err
	}
	pred := make([]float64, len(testIdx))
	for i, r := range testIdx {
		pred[i], _ = knn.Regress(x.Row(r))
	}
	truth := ml.SelectFloats(y, testIdx)
	mean := stats.Mean(ml.SelectFloats(y, trainIdx))
	meanBaseline := make([]float64, len(truth))
	for i := range meanBaseline {
		meanBaseline[i] = mean
	}
	modelMAE := ml.MAE(pred, truth)
	baseMAE := ml.MAE(meanBaseline, truth)
	return oda.Result{
		Summary: fmt.Sprintf("per-node power prediction over %d jobs: kNN MAE %.1fW vs mean-baseline %.1fW",
			len(rows), modelMAE, baseMAE),
		Values: map[string]float64{
			"model_mae_w": modelMAE, "baseline_mae_w": baseMAE, "jobs": float64(len(rows)),
		},
	}, nil
}

// Register adds every predictive capability with default parameters.
func Register(g *oda.Grid) error {
	caps := []oda.Capability{
		KPIForecast{}, CoolingModel{}, PowerSpike{},
		SensorForecast{}, ThermalRisk{}, InstMix{},
		SchedSimulate{}, WorkloadForecast{},
		JobDuration{}, ResourceUsage{},
	}
	for _, c := range caps {
		if err := g.Register(c); err != nil {
			return err
		}
	}
	return nil
}
