// Package predictive implements the framework's third analytics row:
// "what will happen?". It forecasts facility KPIs and cooling demand,
// models cooling performance, reproduces LLNL's FFT power-spike forecast,
// forecasts node sensors and thermal failure risk, predicts instruction
// mixes for DVFS governors, replays the job queue through what-if scheduler
// simulations, forecasts workload arrivals, and predicts job duration and
// resource usage from submission metadata.
package predictive

import (
	"fmt"
	"math"

	"repro/internal/forecast"
	"repro/internal/metric"
	"repro/internal/ml"
	"repro/internal/oda"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

func cell(p oda.Pillar, t oda.Type) oda.Cell { return oda.Cell{Pillar: p, Type: t} }

var siteLabels = metric.NewLabels("site", "vdc")

// longWindowMs is where backtests switch from raw scans to the query
// planner: past half a day the 1m rollup tier carries the same information
// at the collection cadence (60 s), so reading raw chunks buys nothing.
const longWindowMs = 12 * 3600 * 1000

// plannedStep picks the display resolution for a window: long windows read
// per-minute planner buckets (tier-served when the store keeps rollups),
// short ones stream raw samples.
func plannedStep(from, to int64) int64 {
	if to-from >= longWindowMs {
		return timeseries.TierStep1m
	}
	return 0
}

// seriesValues fetches a named facility series over the window, through the
// query planner for long windows.
func seriesValues(ctx *oda.RunContext, name string) ([]float64, error) {
	id := metric.ID{Name: name, Labels: siteLabels}
	vals, err := ctx.Store.SeriesValuesPlanned(id, ctx.From, ctx.To, plannedStep(ctx.From, ctx.To))
	if err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("predictive: no %s samples in window", name)
	}
	return vals, nil
}

// KPIForecast backtests Holt-Winters against naive baselines on a facility
// KPI series (PUE by default) — the Shoukourian-style KPI forecasting cell.
type KPIForecast struct {
	// Metric is the facility series name (default facility_pue).
	Metric string
	// PeriodSamples is the seasonal period (default 1440: one day of 60 s
	// samples).
	PeriodSamples int
	// Horizon in samples (default 60: one hour ahead).
	Horizon int
}

// Meta implements oda.Capability.
func (KPIForecast) Meta() oda.Meta {
	return oda.Meta{
		Name:        "kpi-forecast",
		Description: "seasonal forecasting of facility KPIs with baseline comparison",
		Cells:       []oda.Cell{cell(oda.BuildingInfrastructure, oda.Predictive)},
		Refs:        []string{"[45]", "[37]"},
		Reads:       []oda.Resource{oda.StoreResource("facility_")},
	}
}

// Run implements oda.Capability.
func (c KPIForecast) Run(ctx *oda.RunContext) (oda.Result, error) {
	name := c.Metric
	if name == "" {
		name = "facility_pue"
	}
	period := c.PeriodSamples
	if period <= 0 {
		period = 1440
	}
	horizon := c.Horizon
	if horizon <= 0 {
		horizon = 60
	}
	vals, err := seriesValues(ctx, name)
	if err != nil {
		return oda.Result{}, err
	}
	minTrain := 2*period + 1
	if len(vals) < minTrain+horizon {
		// Window shorter than two seasons: fall back to a sub-daily period
		// so the capability still works on short experiments.
		period = len(vals) / 4
		if period < 2 {
			return oda.Result{}, fmt.Errorf("predictive: %d samples too few to forecast", len(vals))
		}
		minTrain = 2*period + 1
	}
	step := horizon
	scores, err := forecast.Compare(vals, minTrain, horizon, step,
		&forecast.HoltWinters{Period: period},
		&forecast.SES{},
		&forecast.Naive{},
	)
	if err != nil {
		return oda.Result{}, err
	}
	hw, ses, naive := scores[0], scores[1], scores[2]
	return oda.Result{
		Summary: fmt.Sprintf("%s forecast MAE: holt-winters %.4f vs ses %.4f vs naive %.4f (%d points)",
			name, hw.MAE, ses.MAE, naive.MAE, hw.N),
		Values: map[string]float64{
			"hw_mae": hw.MAE, "hw_rmse": hw.RMSE, "ses_mae": ses.MAE,
			"naive_mae": naive.MAE, "points": float64(hw.N),
		},
	}, nil
}

// CoolingModel fits a regression model of cooling power against IT power,
// outdoor temperature and setpoint — the Conficoni/Shoukourian cooling
// performance model, usable to forecast the impact of configuration change.
type CoolingModel struct{}

// Meta implements oda.Capability.
func (CoolingModel) Meta() oda.Meta {
	return oda.Meta{
		Name:        "cooling-model",
		Description: "regression model of cooling power vs IT load, weather and setpoint",
		Cells:       []oda.Cell{cell(oda.BuildingInfrastructure, oda.Predictive)},
		Refs:        []string{"[18]", "[46]"},
		Reads:       []oda.Resource{oda.StoreResource("facility_")},
	}
}

// coolingFeatures builds the regressor vector: IT power, outdoor temp,
// setpoint, free-cooling flag and the flag-IT interaction. The plant is
// bimodal (free cooling vs chiller), so the flag and interaction let one
// linear model capture both regimes.
func coolingFeatures(it, outdoor, setpoint, free float64) []float64 {
	return []float64{it, outdoor, setpoint, free, free * it}
}

// Fit builds the regression from the window. The returned predictor maps
// (itPowerW, outdoorTemp, setpoint, freeCooling) to predicted cooling
// power; prescriptive setpoint optimization reuses it.
func (CoolingModel) Fit(ctx *oda.RunContext) (*ml.LinearRegression, float64, error) {
	cooling, err := seriesValues(ctx, "facility_cooling_power_watts")
	if err != nil {
		return nil, 0, err
	}
	it, err := seriesValues(ctx, "facility_it_power_watts")
	if err != nil {
		return nil, 0, err
	}
	outdoor, err := seriesValues(ctx, "facility_outdoor_temp_celsius")
	if err != nil {
		return nil, 0, err
	}
	setpoint, err := seriesValues(ctx, "facility_setpoint_celsius")
	if err != nil {
		return nil, 0, err
	}
	free, err := seriesValues(ctx, "facility_free_cooling_active")
	if err != nil {
		return nil, 0, err
	}
	n := len(cooling)
	for _, s := range [][]float64{it, outdoor, setpoint, free} {
		if len(s) < n {
			n = len(s)
		}
	}
	if n < 20 {
		return nil, 0, fmt.Errorf("predictive: only %d aligned samples for cooling model", n)
	}
	x := ml.NewMatrix(n, 5)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		copy(x.Row(i), coolingFeatures(it[i], outdoor[i], setpoint[i], free[i]))
		y[i] = cooling[i]
	}
	lr := &ml.LinearRegression{Lambda: 1e-6}
	if err := lr.Fit(x, y); err != nil {
		return nil, 0, err
	}
	r2 := ml.R2(lr.PredictBatch(x), y)
	return lr, r2, nil
}

// Run implements oda.Capability.
func (c CoolingModel) Run(ctx *oda.RunContext) (oda.Result, error) {
	lr, r2, err := c.Fit(ctx)
	if err != nil {
		return oda.Result{}, err
	}
	return oda.Result{
		Summary: fmt.Sprintf("cooling = f(IT, outdoor, setpoint): R2 %.3f, dCooling/dIT %.4f, dCooling/dSetpoint %.1f W/degC",
			r2, lr.Coef[0], lr.Coef[2]),
		Values: map[string]float64{
			"r2": r2, "coef_it": lr.Coef[0], "coef_outdoor": lr.Coef[1],
			"coef_setpoint": lr.Coef[2], "intercept": lr.Intercept,
		},
	}, nil
}

// PowerSpike reproduces LLNL's utility-notification use case (§V-C): an
// FFT extrapolation of total facility power forecasts the next window, and
// any predicted swing beyond ThresholdW within WindowSamples triggers an
// advance notification. Measured swings score the forecast.
type PowerSpike struct {
	// ThresholdW is the utility's notification threshold (default: the
	// P90 of observed sustained ramps, the analogue of LLNL's 750 kW on
	// this plant's scale).
	ThresholdW float64
	// WindowSamples is the contract window in samples (default 60 at 60 s
	// cadence = 1 h; LLNL's 15-minute window scales with plant inertia).
	WindowSamples int
	// SmoothSamples is the metering average (default 15 = 15 minutes).
	SmoothSamples int
	// HorizonSamples is how far ahead to forecast (default 240 = 4 h).
	HorizonSamples int
}

// Meta implements oda.Capability.
func (PowerSpike) Meta() oda.Meta {
	return oda.Meta{
		Name:        "power-spike-forecast",
		Description: "FFT-based forecast of site power swings for utility notification",
		Cells:       []oda.Cell{cell(oda.BuildingInfrastructure, oda.Predictive)},
		Refs:        []string{"[72]"},
		Reads:       []oda.Resource{oda.StoreResource("facility_total_power")},
	}
}

// countSwings returns how many positions in xs start a |delta| >= thr swing
// within w samples.
func countSwings(xs []float64, w int, thr float64) int {
	count := 0
	for i := 0; i+1 < len(xs); i++ {
		end := i + w
		if end >= len(xs) {
			end = len(xs) - 1
		}
		for j := i + 1; j <= end; j++ {
			if math.Abs(xs[j]-xs[i]) >= thr {
				count++
				break
			}
		}
	}
	return count
}

// movingAverage smooths xs with a trailing window of w samples. Utility
// contracts meter sustained ramps, not instantaneous job-start jumps, so
// both the forecast and the actuals are compared on this smoothed signal.
func movingAverage(xs []float64, w int) []float64 {
	if w <= 1 {
		return xs
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= w {
			sum -= xs[i-w]
		}
		n := i + 1
		if n > w {
			n = w
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Run implements oda.Capability.
func (c PowerSpike) Run(ctx *oda.RunContext) (oda.Result, error) {
	vals, err := seriesValues(ctx, "facility_total_power_watts")
	if err != nil {
		return oda.Result{}, err
	}
	window := c.WindowSamples
	if window <= 0 {
		window = 60
	}
	smoothW := c.SmoothSamples
	if smoothW <= 0 {
		smoothW = 15
	}
	horizon := c.HorizonSamples
	if horizon <= 0 {
		horizon = 240
	}
	if len(vals) < 2*horizon {
		return oda.Result{}, fmt.Errorf("predictive: %d samples too few for spike forecasting", len(vals))
	}
	// The contract meters sustained ramps: compare swings on the
	// 15-minute-smoothed signal, as LLNL's Fourier method does implicitly.
	smooth := movingAverage(vals, smoothW)
	thr := c.ThresholdW
	if thr <= 0 {
		// Calibrate to the plant: a reportable swing is 40% of the smoothed
		// signal's dynamic range (LLNL's 750 kW plays the same role against
		// their site's swing range).
		hi, _ := stats.Quantile(smooth, 0.99)
		lo, _ := stats.Quantile(smooth, 0.01)
		thr = 0.4 * (hi - lo)
		if thr <= 0 {
			thr = 1
		}
	}
	// Fit on all but the last horizon; forecast it; compare swing counts.
	train, actual := smooth[:len(smooth)-horizon], smooth[len(smooth)-horizon:]
	ff := forecast.SeasonalFFT{}
	if err := ff.Fit(train); err != nil {
		return oda.Result{}, err
	}
	pred := ff.Forecast(horizon)
	predSwings := countSwings(pred, window, thr)
	actualSwings := countSwings(actual, window, thr)
	mae := ml.MAE(pred, actual)
	return oda.Result{
		Summary: fmt.Sprintf("pattern period %d samples; threshold %.0f W / %d samples: %d swings predicted vs %d observed (forecast MAE %.0f W)",
			ff.DetectedPeriod(), thr, window, predSwings, actualSwings, mae),
		Values: map[string]float64{
			"threshold_w": thr, "predicted_swings": float64(predSwings),
			"actual_swings": float64(actualSwings), "mae_w": mae,
			"period_samples": float64(ff.DetectedPeriod()),
		},
	}, nil
}
