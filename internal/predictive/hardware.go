package predictive

import (
	"fmt"
	"sort"

	"repro/internal/forecast"
	"repro/internal/metric"
	"repro/internal/ml"
	"repro/internal/oda"
	"repro/internal/stats"
)

// SensorForecast backtests AR and Holt models on per-node sensors
// (PRACTISE / correlation-wise-smoothing style short-horizon forecasting),
// reporting fleet-average error against the naive baseline.
type SensorForecast struct {
	// Metric is the node series (default node_cpu_temp_celsius).
	Metric string
	// Horizon in samples (default 15).
	Horizon int
	// MaxNodes bounds how many nodes are backtested (default 8).
	MaxNodes int
}

// Meta implements oda.Capability.
func (SensorForecast) Meta() oda.Meta {
	return oda.Meta{
		Name:        "sensor-forecast",
		Description: "short-horizon AR/trend forecasting of node sensors",
		Cells:       []oda.Cell{cell(oda.SystemHardware, oda.Predictive)},
		Refs:        []string{"[32]", "[47]"},
		Reads:       []oda.Resource{oda.StoreResource("node_")},
	}
}

// Run implements oda.Capability.
func (c SensorForecast) Run(ctx *oda.RunContext) (oda.Result, error) {
	name := c.Metric
	if name == "" {
		name = "node_cpu_temp_celsius"
	}
	horizon := c.Horizon
	if horizon <= 0 {
		horizon = 15
	}
	maxNodes := c.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 8
	}
	ids := ctx.Store.Select(name, nil)
	if len(ids) == 0 {
		return oda.Result{}, fmt.Errorf("predictive: no %s telemetry", name)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a].Key() < ids[b].Key() })
	if len(ids) > maxNodes {
		ids = ids[:maxNodes]
	}
	var arMAE, naiveMAE stats.Online
	step := plannedStep(ctx.From, ctx.To)
	for _, id := range ids {
		vals, err := ctx.Store.SeriesValuesPlanned(id, ctx.From, ctx.To, step)
		if err != nil || len(vals) < 4*horizon+20 {
			continue
		}
		minTrain := len(vals) / 2
		scores, err := forecast.Compare(vals, minTrain, horizon, horizon,
			&forecast.AR{P: 8}, &forecast.Naive{})
		if err != nil {
			continue
		}
		arMAE.Add(scores[0].MAE)
		naiveMAE.Add(scores[1].MAE)
	}
	if arMAE.N() == 0 {
		return oda.Result{}, fmt.Errorf("predictive: no node series long enough to backtest")
	}
	return oda.Result{
		Summary: fmt.Sprintf("%s %d-step forecast over %d nodes: AR MAE %.3f vs naive %.3f",
			name, horizon, arMAE.N(), arMAE.Mean(), naiveMAE.Mean()),
		Values: map[string]float64{
			"ar_mae": arMAE.Mean(), "naive_mae": naiveMAE.Mean(), "nodes": float64(arMAE.N()),
		},
	}, nil
}

// ThermalRisk predicts which nodes will run hot (a failure precursor in
// the simulator's temperature-accelerated hazard model, and in real
// machines) using a logistic model on current telemetry — the Sirbu &
// Babaoglu proactive-autonomics cell.
type ThermalRisk struct {
	// HotCelsius labels a future window as risky (default 80).
	HotCelsius float64
	// LeadSamples is the prediction lead time in samples (default 30).
	LeadSamples int
}

// Meta implements oda.Capability.
func (ThermalRisk) Meta() oda.Meta {
	return oda.Meta{
		Name:        "failure-risk",
		Description: "logistic prediction of imminent node over-temperature",
		Cells:       []oda.Cell{cell(oda.SystemHardware, oda.Predictive)},
		Refs:        []string{"[48]"},
		Reads:       []oda.Resource{oda.StoreResource("node_")},
	}
}

// Run implements oda.Capability.
func (c ThermalRisk) Run(ctx *oda.RunContext) (oda.Result, error) {
	hot := c.HotCelsius
	if hot <= 0 {
		hot = 80
	}
	lead := c.LeadSamples
	if lead <= 0 {
		lead = 30
	}
	ids := ctx.Store.Select("node_cpu_temp_celsius", nil)
	if len(ids) == 0 {
		return oda.Result{}, fmt.Errorf("predictive: no temperature telemetry")
	}
	var rows [][]float64
	var labels []float64
	step := plannedStep(ctx.From, ctx.To)
	for _, id := range ids {
		// The three feature series go through the planner at one shared
		// resolution so their indices stay aligned sample-for-sample.
		temps, err := ctx.Store.SeriesValuesPlanned(id, ctx.From, ctx.To, step)
		if err != nil {
			continue
		}
		utilID := metric.ID{Name: "node_utilization", Labels: id.Labels}
		fanID := metric.ID{Name: "node_fan_speed", Labels: id.Labels}
		utils, err1 := ctx.Store.SeriesValuesPlanned(utilID, ctx.From, ctx.To, step)
		fans, err2 := ctx.Store.SeriesValuesPlanned(fanID, ctx.From, ctx.To, step)
		if err1 != nil || err2 != nil {
			continue
		}
		n := len(temps)
		if len(utils) < n {
			n = len(utils)
		}
		if len(fans) < n {
			n = len(fans)
		}
		for i := 5; i+lead < n; i++ {
			// Features: current temp, short trend, utilization, fan.
			trend := temps[i] - temps[i-5]
			rows = append(rows, []float64{temps[i], trend, utils[i], fans[i]})
			future := temps[i+1 : i+lead+1]
			label := 0.0
			for _, ft := range future {
				if ft >= hot {
					label = 1
					break
				}
			}
			labels = append(labels, label)
		}
	}
	if len(rows) < 50 {
		return oda.Result{}, fmt.Errorf("predictive: only %d risk samples", len(rows))
	}
	var positives int
	for _, l := range labels {
		if l == 1 {
			positives++
		}
	}
	if positives == 0 || positives == len(labels) {
		return oda.Result{
			Summary: fmt.Sprintf("degenerate risk labels (%d/%d positive): fleet never crosses %.0fC", positives, len(labels), hot),
			Values:  map[string]float64{"samples": float64(len(labels)), "positives": float64(positives), "auc_proxy": 0},
		}, nil
	}
	x, err := ml.MatrixFromRows(rows)
	if err != nil {
		return oda.Result{}, err
	}
	var scaler ml.StandardScaler
	scaler.Fit(x)
	xs := scaler.Transform(x)
	trainIdx, testIdx := ml.TrainTestSplit(len(rows), 0.3, 7)
	lg := ml.LogisticRegression{Epochs: 300, LearningRate: 0.3}
	if err := lg.Fit(ml.SelectRows(xs, trainIdx), ml.SelectFloats(labels, trainIdx)); err != nil {
		return oda.Result{}, err
	}
	// Score: mean predicted probability on positive vs negative test rows
	// (a separation proxy robust to class imbalance).
	var posP, negP stats.Online
	var correct int
	for _, r := range testIdx {
		p := lg.PredictProba(xs.Row(r))
		if labels[r] == 1 {
			posP.Add(p)
		} else {
			negP.Add(p)
		}
		if float64(lg.Predict(xs.Row(r))) == labels[r] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(testIdx))
	sep := posP.Mean() - negP.Mean()
	return oda.Result{
		Summary: fmt.Sprintf("thermal-risk model: accuracy %.0f%%, P(risk|hot)-P(risk|cool) = %.2f over %d samples (%d positive)",
			acc*100, sep, len(labels), positives),
		Values: map[string]float64{
			"accuracy": acc, "separation": sep,
			"samples": float64(len(labels)), "positives": float64(positives),
		},
	}, nil
}

// InstMix predicts each busy node's near-future instruction-mix intensity
// (the dynamic-power-per-utilization signature GEOPM keys DVFS on) by
// trend-extrapolating its recent signature; prediction quality is scored
// against the realized next interval.
type InstMix struct {
	// WindowSamples of history per prediction (default 10).
	WindowSamples int
}

// Meta implements oda.Capability.
func (InstMix) Meta() oda.Meta {
	return oda.Meta{
		Name:        "instmix-predict",
		Description: "short-horizon prediction of node compute-intensity signatures",
		Cells: []oda.Cell{cell(oda.SystemHardware, oda.Predictive)},
		Refs:  []string{"[11]"},
		Reads: []oda.Resource{
			oda.StoreResource("node_power_watts"),
			oda.StoreResource("node_utilization"),
		},
	}
}

// intensitySeries derives the power-per-utilization signature of one node.
// Power and utilization stream through lockstep cursors, fusing the filter
// and the division into the decode loop — only the signature is allocated.
func intensitySeries(ctx *oda.RunContext, labels metric.Labels) []float64 {
	pCur, err := ctx.Store.Cursor(metric.ID{Name: "node_power_watts", Labels: labels}, ctx.From, ctx.To)
	if err != nil {
		return nil
	}
	defer pCur.Close()
	uCur, err := ctx.Store.Cursor(metric.ID{Name: "node_utilization", Labels: labels}, ctx.From, ctx.To)
	if err != nil {
		return nil
	}
	defer uCur.Close()
	est := pCur.Est()
	if uCur.Est() < est {
		est = uCur.Est()
	}
	out := make([]float64, 0, est)
	for pCur.Next() && uCur.Next() {
		u := uCur.At().V
		if u < 5 {
			continue // idle: no signature
		}
		out = append(out, (pCur.At().V-95)/u)
	}
	return out
}

// Run implements oda.Capability.
func (c InstMix) Run(ctx *oda.RunContext) (oda.Result, error) {
	window := c.WindowSamples
	if window <= 1 {
		window = 10
	}
	ids := ctx.Store.Select("node_power_watts", nil)
	// The GEOPM insight is that signatures persist: the model is
	// persistence (last observed value), scored against the uninformed
	// global-mean baseline a mix-blind governor would have to use.
	var global stats.Online
	type sigSeries struct{ sig []float64 }
	var all []sigSeries
	for _, id := range ids {
		sig := intensitySeries(ctx, id.Labels)
		if len(sig) < window+2 {
			continue
		}
		for _, v := range sig {
			global.Add(v)
		}
		all = append(all, sigSeries{sig: sig})
	}
	var predMAE, baseMAE stats.Online
	for _, s := range all {
		for i := window; i+1 < len(s.sig); i++ {
			actual := s.sig[i]
			predMAE.Add(absf(s.sig[i-1] - actual))
			baseMAE.Add(absf(global.Mean() - actual))
		}
	}
	if predMAE.N() == 0 {
		return oda.Result{}, fmt.Errorf("predictive: no busy-node signatures to predict")
	}
	return oda.Result{
		Summary: fmt.Sprintf("intensity prediction over %d intervals: persistence MAE %.3f vs global-mean %.3f",
			predMAE.N(), predMAE.Mean(), baseMAE.Mean()),
		Values: map[string]float64{
			"pred_mae": predMAE.Mean(), "naive_mae": baseMAE.Mean(), "intervals": float64(predMAE.N()),
		},
	}, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
