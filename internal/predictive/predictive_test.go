package predictive

import (
	"testing"

	"repro/internal/oda"
	"repro/internal/scheduler"
	"repro/internal/simulation"
	"repro/internal/workload"
)

// The predictive tests share one deterministic 36-hour run: long enough for
// daily seasonality (weather, arrivals) and a large finished-job corpus.
var dcCache *simulation.DataCenter

func predCtx(t *testing.T) *oda.RunContext {
	t.Helper()
	if dcCache == nil {
		cfg := simulation.DefaultConfig(404)
		cfg.Nodes = 16
		cfg.Workload.MaxNodes = 8
		cfg.Workload.MeanInterarrival = 60
		dc := simulation.New(cfg)
		dc.RunFor(36 * 3600)
		dcCache = dc
	}
	return &oda.RunContext{Store: dcCache.Store, From: 0, To: dcCache.Now() + 1, System: dcCache}
}

func TestKPIForecast(t *testing.T) {
	res, err := KPIForecast{}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("points") == 0 {
		t.Fatal("no forecast points scored")
	}
	if res.Value("hw_mae") <= 0 {
		t.Fatalf("hw_mae = %v", res.Value("hw_mae"))
	}
	// PUE is a small number; errors should be small in absolute terms.
	if res.Value("hw_mae") > 0.2 {
		t.Fatalf("PUE forecast MAE %v implausibly large", res.Value("hw_mae"))
	}
}

func TestCoolingModelFit(t *testing.T) {
	res, err := CoolingModel{}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Cooling power is mechanically derived from IT power and weather in
	// the simulator, so the regression must fit well.
	if r2 := res.Value("r2"); r2 < 0.7 {
		t.Fatalf("cooling model R2 = %v", r2)
	}
	// More IT load -> more cooling power.
	if res.Value("coef_it") <= 0 {
		t.Fatalf("coef_it = %v, expected positive", res.Value("coef_it"))
	}
}

func TestPowerSpike(t *testing.T) {
	res, err := PowerSpike{}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("threshold_w") <= 0 {
		t.Fatal("no threshold derived")
	}
	// Forecast error should be bounded relative to the plant's scale.
	if res.Value("mae_w") > res.Value("threshold_w")*20 {
		t.Fatalf("spike forecast MAE %v vs threshold %v", res.Value("mae_w"), res.Value("threshold_w"))
	}
}

func TestSensorForecastBeatsOrMatchesNaive(t *testing.T) {
	res, err := SensorForecast{}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("nodes") == 0 {
		t.Fatal("no nodes backtested")
	}
	// AR should not be dramatically worse than naive on temperature.
	if res.Value("ar_mae") > 3*res.Value("naive_mae")+0.5 {
		t.Fatalf("AR MAE %v vs naive %v", res.Value("ar_mae"), res.Value("naive_mae"))
	}
}

func TestThermalRisk(t *testing.T) {
	res, err := ThermalRisk{HotCelsius: 60}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("samples") < 50 {
		t.Fatalf("samples = %v", res.Value("samples"))
	}
	// If labels were informative, the model must separate classes.
	if res.Value("positives") > 0 && res.Value("positives") < res.Value("samples") {
		if res.Value("separation") <= 0 {
			t.Fatalf("risk model does not separate: %+v", res.Values)
		}
		if res.Value("accuracy") < 0.6 {
			t.Fatalf("accuracy = %v", res.Value("accuracy"))
		}
	}
}

func TestInstMix(t *testing.T) {
	res, err := InstMix{}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("intervals") == 0 {
		t.Fatal("no intervals predicted")
	}
	if res.Value("pred_mae") <= 0 {
		t.Fatalf("pred_mae = %v", res.Value("pred_mae"))
	}
}

func TestSchedSimulate(t *testing.T) {
	res, err := SchedSimulate{}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("jobs") < 5 {
		t.Fatal("too few jobs replayed")
	}
	for _, p := range []string{"fcfs", "easy", "plan-based"} {
		if _, ok := res.Values["wait_"+p]; !ok {
			t.Fatalf("missing policy %s in %v", p, res.Values)
		}
	}
	// EASY should not be worse than FCFS on mean wait.
	if res.Values["wait_easy"] > res.Values["wait_fcfs"]*1.05+1 {
		t.Fatalf("EASY wait %v worse than FCFS %v", res.Values["wait_easy"], res.Values["wait_fcfs"])
	}
}

func TestReplayIsNonDestructive(t *testing.T) {
	jobs := workload.NewGenerator(workload.DefaultGeneratorConfig(5, 8)).GenerateUntil(0, 2*3600*1000)
	before := make([]workload.Job, len(jobs))
	for i, j := range jobs {
		before[i] = *j
	}
	_ = Replay(jobs, 16, scheduler.EASY{})
	for i, j := range jobs {
		if *j != before[i] {
			t.Fatalf("replay mutated caller job %d", i)
		}
	}
}

func TestWorkloadForecast(t *testing.T) {
	res, err := WorkloadForecast{}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("hours") < 30 {
		t.Fatalf("hours = %v", res.Value("hours"))
	}
	if res.Value("model_mae") <= 0 {
		t.Fatal("no model error computed")
	}
}

func TestJobDuration(t *testing.T) {
	res, err := JobDuration{Seed: 1}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	// The learned model must beat the user's walltime request — the
	// paper-wide claim of the job-duration prediction literature.
	if res.Value("model_mae_s") >= res.Value("request_mae_s") {
		t.Fatalf("model MAE %v >= request MAE %v", res.Value("model_mae_s"), res.Value("request_mae_s"))
	}
	pred, err := JobDuration{Seed: 1}.TrainedPredictor(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	j := &workload.Job{User: "user01", Nodes: 4, ReqWalltime: 7200, SubmitTime: 12 * 3600 * 1000, MemoryGiBPerNode: 32}
	if v := pred(j); v <= 0 || v > 24*3600 {
		t.Fatalf("predicted runtime = %v", v)
	}
}

func TestResourceUsage(t *testing.T) {
	res, err := ResourceUsage{Seed: 1}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("jobs") < 20 {
		t.Fatal("too few jobs")
	}
	if res.Value("model_mae_w") <= 0 {
		t.Fatal("no error computed")
	}
	est, err := ResourceUsage{Seed: 1}.TrainedEstimator(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	j := &workload.Job{User: "user01", Nodes: 4, ReqWalltime: 7200, SubmitTime: 12 * 3600 * 1000, MemoryGiBPerNode: 32}
	if v := est(j); v < 4*90 || v > 4*450 {
		t.Fatalf("estimated job power = %v W for 4 nodes", v)
	}
}

func TestRegister(t *testing.T) {
	g := oda.NewGrid()
	if err := Register(g); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 10 {
		t.Fatalf("registered %d", g.Len())
	}
	for _, p := range oda.Pillars() {
		if len(g.At(oda.Cell{Pillar: p, Type: oda.Predictive})) == 0 {
			t.Fatalf("pillar %s predictive cell empty", p)
		}
	}
}

func TestThermalRiskDegenerateLabels(t *testing.T) {
	// A threshold no node ever crosses yields the degenerate-label report,
	// not an error: the capability must stay usable on healthy fleets.
	res, err := ThermalRisk{HotCelsius: 500}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("positives") != 0 {
		t.Fatalf("positives = %v at 500C threshold", res.Value("positives"))
	}
	if res.Summary == "" {
		t.Fatal("degenerate case needs a summary")
	}
}

func TestThermalRiskMissingTelemetry(t *testing.T) {
	dc := simulation.New(simulation.Config{Nodes: 2, Seed: 1})
	ctx := &oda.RunContext{Store: dc.Store, From: 0, To: 1, System: dc}
	if _, err := (ThermalRisk{}).Run(ctx); err == nil {
		t.Fatal("no telemetry should error")
	}
	if _, err := (SensorForecast{}).Run(ctx); err == nil {
		t.Fatal("no telemetry should error")
	}
	if _, err := (InstMix{}).Run(ctx); err == nil {
		t.Fatal("no signatures should error")
	}
	if _, err := (KPIForecast{}).Run(ctx); err == nil {
		t.Fatal("no KPI series should error")
	}
	if _, err := (PowerSpike{}).Run(ctx); err == nil {
		t.Fatal("no power series should error")
	}
}

func TestSchedSimulateCustomPolicies(t *testing.T) {
	res, err := SchedSimulate{Policies: []scheduler.Policy{scheduler.FCFS{}}}.Run(predCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Values["wait_fcfs"]; !ok {
		t.Fatalf("missing fcfs result: %v", res.Values)
	}
	if _, ok := res.Values["wait_easy"]; ok {
		t.Fatal("easy should not run when not requested")
	}
}

func TestWorkloadForecastSeasonalBranch(t *testing.T) {
	// 60 hours gives > 2 full daily seasons of hourly buckets, exercising
	// the Holt-Winters path rather than the short-window fallback.
	cfg := simulation.DefaultConfig(321)
	cfg.Nodes = 8
	cfg.Workload.MaxNodes = 4
	cfg.Workload.MeanInterarrival = 120
	dc := simulation.New(cfg)
	dc.RunFor(60 * 3600)
	ctx := &oda.RunContext{Store: dc.Store, From: 0, To: dc.Now() + 1, System: dc}
	res, err := WorkloadForecast{}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Values["seasonal_naive_mae"]; !ok {
		t.Fatalf("seasonal branch not taken: %v", res.Values)
	}
	if res.Value("mean_rate") <= 0 {
		t.Fatal("no arrival rate computed")
	}
}
