package forecast

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
	"sync"
)

// FFT computes the radix-2 Cooley-Tukey fast Fourier transform of x.
// The input length must be a power of two (see NextPow2/PadPow2).
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, errors.New("forecast: FFT length must be a power of two")
	}
	out := append([]complex128(nil), x...)
	fftInPlace(out, false)
	return out, nil
}

// IFFT computes the inverse FFT (normalized by 1/N).
func IFFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, errors.New("forecast: IFFT length must be a power of two")
	}
	out := append([]complex128(nil), x...)
	fftInPlace(out, true)
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

func fftInPlace(a []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// PadPow2 copies xs into a power-of-two-length complex slice, zero-padded.
func PadPow2(xs []float64) []complex128 {
	n := NextPow2(len(xs))
	out := make([]complex128, n)
	for i, x := range xs {
		out[i] = complex(x, 0)
	}
	return out
}

// fftScratch pools the complex work buffers of the internal spectrum
// paths (DominantPeriods, FFTForecaster.Fit), which transform in place and
// never hand the buffer to callers. Periodic re-fits during long forecast
// sweeps therefore stop allocating an FFT-sized slice per call.
var fftScratch = sync.Pool{New: func() any { return new([]complex128) }}

// pooledSpectrum pads xs (shifted by -offset) into a pooled power-of-two
// buffer and transforms it in place. Release the buffer with
// releaseSpectrum once the spectrum has been consumed.
func pooledSpectrum(xs []float64, offset float64) *[]complex128 {
	n := NextPow2(len(xs))
	bp := fftScratch.Get().(*[]complex128)
	buf := *bp
	if cap(buf) < n {
		buf = make([]complex128, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = 0
	}
	for i, x := range xs {
		buf[i] = complex(x-offset, 0)
	}
	fftInPlace(buf, false)
	*bp = buf
	return bp
}

func releaseSpectrum(bp *[]complex128) { fftScratch.Put(bp) }

// spectrumPeaks extracts every positive-frequency component of a spectrum
// of sampleCount real samples, strongest first.
func spectrumPeaks(spec []complex128, sampleCount int) []SpectrumPeak {
	n := len(spec)
	half := n / 2
	peaks := make([]SpectrumPeak, 0, half-1)
	for bin := 1; bin < half; bin++ {
		c := spec[bin]
		freq := float64(bin) / float64(n)
		peaks = append(peaks, SpectrumPeak{
			Bin:       bin,
			Frequency: freq,
			Period:    1 / freq,
			Amplitude: 2 * cmplx.Abs(c) / float64(sampleCount),
			Phase:     cmplx.Phase(c),
		})
	}
	sort.Slice(peaks, func(a, b int) bool {
		if peaks[a].Amplitude != peaks[b].Amplitude {
			return peaks[a].Amplitude > peaks[b].Amplitude
		}
		return peaks[a].Bin < peaks[b].Bin
	})
	return peaks
}

// SpectrumPeak describes one dominant frequency component of a real signal.
type SpectrumPeak struct {
	Bin       int     // FFT bin index (1..N/2-1); bin 0 (DC) is excluded
	Frequency float64 // cycles per sample
	Period    float64 // samples per cycle (1/Frequency)
	Amplitude float64 // amplitude of the sinusoidal component
	Phase     float64 // phase in radians at sample 0
}

// DominantPeriods returns the k strongest periodic components of xs (DC
// excluded), strongest first. This is the analysis LLNL applied to site
// power history to find recurring spike patterns.
func DominantPeriods(xs []float64, k int) ([]SpectrumPeak, error) {
	if len(xs) < 4 {
		return nil, ErrShortSeries
	}
	if k <= 0 {
		k = 3
	}
	bp := pooledSpectrum(xs, 0)
	peaks := spectrumPeaks(*bp, len(xs))
	releaseSpectrum(bp)
	if k > len(peaks) {
		k = len(peaks)
	}
	return peaks[:k], nil
}

// SeasonalFFT forecasts by (1) identifying the dominant period with the
// FFT, (2) refining it against the autocorrelation function, and (3)
// extrapolating the cyclic average profile at that period. This matches
// how LLNL applied Fourier analysis to site power (§V-C of the paper):
// the transform finds the recurring spike pattern; the pattern itself is
// the forecast. Unlike a truncated sinusoid reconstruction it preserves
// sharp pulse edges, which is what threshold-crossing notification needs.
type SeasonalFFT struct {
	// MaxPeriod bounds the detected period in samples (default: half the
	// history).
	MaxPeriod int

	period  int
	profile []float64
	phase   int
}

// Name implements Forecaster.
func (sf *SeasonalFFT) Name() string { return "seasonal-fft" }

// DetectedPeriod returns the period chosen at Fit, in samples.
func (sf *SeasonalFFT) DetectedPeriod() int { return sf.period }

// Fit implements Forecaster.
func (sf *SeasonalFFT) Fit(history []float64) error {
	if len(history) < 16 {
		return ErrShortSeries
	}
	maxP := sf.MaxPeriod
	if maxP <= 0 || maxP > len(history)/2 {
		maxP = len(history) / 2
	}
	peaks, err := DominantPeriods(history, 12)
	if err != nil {
		return err
	}
	// Zero padding smears spectral lines, so every strong spectral peak is
	// only a candidate. Candidates are scored by how well their cyclic
	// profile, built on the first 75% of the history, predicts the held-out
	// tail — the criterion the forecast is actually used for — and the best
	// is refined on a ±12% grid with the same score.
	// The validation valley at the true period is narrow (one sample of
	// period error compounds across cycles), so the ±12% grid must be
	// walked around every candidate, not only the best-scoring one.
	cut := len(history) * 3 / 4
	best, bestErr := 0, math.Inf(1)
	consider := func(p int) {
		if p < 2 || p > maxP {
			return
		}
		if e := seasonalValError(history, cut, p); e < bestErr {
			best, bestErr = p, e
		}
	}
	refineAround := func(candidate int) {
		lo := int(float64(candidate) * 0.88)
		hi := int(float64(candidate) * 1.12)
		for lag := lo; lag <= hi; lag++ {
			consider(lag)
		}
	}
	for _, p := range peaks {
		refineAround(int(math.Round(p.Period)))
	}
	if best == 0 {
		refineAround(maxP)
		if best == 0 {
			best = maxP
			if best < 2 {
				best = 2
			}
		}
	}
	sf.period = best
	// Cyclic median profile: robust to the occasional cycle whose pattern
	// ran late (a queued campaign), which would smear a mean profile's
	// edges and hide threshold crossings.
	sf.profile = cyclicMedian(history, best)
	sf.phase = len(history) % best
	return nil
}

// cyclicMedian returns the per-phase median over all cycles of length p.
func cyclicMedian(xs []float64, p int) []float64 {
	buckets := make([][]float64, p)
	for i, x := range xs {
		idx := i % p
		buckets[idx] = append(buckets[idx], x)
	}
	out := make([]float64, p)
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		sort.Float64s(b)
		n := len(b)
		if n%2 == 1 {
			out[i] = b[n/2]
		} else {
			out[i] = (b[n/2-1] + b[n/2]) / 2
		}
	}
	return out
}

// seasonalValError scores a candidate period: build the cyclic median
// profile on xs[:cut] and return the mean squared error predicting
// xs[cut:].
func seasonalValError(xs []float64, cut, period int) float64 {
	if cut <= period || cut >= len(xs) {
		return math.Inf(1)
	}
	profile := cyclicMedian(xs[:cut], period)
	var mse float64
	for i := cut; i < len(xs); i++ {
		d := xs[i] - profile[i%period]
		mse += d * d
	}
	return mse / float64(len(xs)-cut)
}

func acfAt(xs []float64, lag int) float64 {
	if lag >= len(xs) {
		return math.Inf(-1)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var num, den float64
	for i := range xs {
		den += (xs[i] - mean) * (xs[i] - mean)
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+lag < len(xs); i++ {
		num += (xs[i] - mean) * (xs[i+lag] - mean)
	}
	return num / den
}

// Forecast implements Forecaster.
func (sf *SeasonalFFT) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = sf.profile[(sf.phase+i)%sf.period]
	}
	return out
}

// FFTForecaster extrapolates a signal as mean + the K dominant sinusoids,
// reproducing the Fourier-based power forecasting LLNL uses to anticipate
// ±750 kW swings for its utility (paper §V-C).
type FFTForecaster struct {
	K int // number of sinusoidal components (default 3 when zero)

	mean   float64
	peaks  []SpectrumPeak
	origin int // number of fitted samples; forecasts start at this index
	padN   int // FFT length used at fit time
}

// Name implements Forecaster.
func (ff *FFTForecaster) Name() string { return "fft" }

// Fit implements Forecaster.
func (ff *FFTForecaster) Fit(history []float64) error {
	if len(history) < 8 {
		return ErrShortSeries
	}
	k := ff.K
	if k <= 0 {
		k = 3
	}
	var mean float64
	for _, x := range history {
		mean += x
	}
	mean /= float64(len(history))
	// Centering happens inside the pad loop: no centred copy, and the
	// complex work buffer comes from the shared pool.
	bp := pooledSpectrum(history, mean)
	n := len(*bp)
	peaks := spectrumPeaks(*bp, len(history))
	releaseSpectrum(bp)
	if k > len(peaks) {
		k = len(peaks)
	}
	ff.mean = mean
	ff.peaks = peaks[:k]
	ff.origin = len(history)
	ff.padN = n
	return nil
}

// Forecast implements Forecaster.
func (ff *FFTForecaster) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		t := float64(ff.origin + i)
		v := ff.mean
		for _, p := range ff.peaks {
			v += p.Amplitude * math.Cos(2*math.Pi*p.Frequency*t+p.Phase)
		}
		out[i] = v
	}
	return out
}
