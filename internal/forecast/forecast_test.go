package forecast

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNaive(t *testing.T) {
	var n Naive
	if err := n.Fit(nil); err != ErrShortSeries {
		t.Fatal("empty fit should error")
	}
	if err := n.Fit([]float64{1, 2, 7}); err != nil {
		t.Fatal(err)
	}
	out := n.Forecast(3)
	for _, v := range out {
		if v != 7 {
			t.Fatalf("naive forecast = %v", out)
		}
	}
	if n.Name() != "naive" {
		t.Fatal("name")
	}
}

func TestSeasonalNaive(t *testing.T) {
	s := SeasonalNaive{Period: 3}
	if err := s.Fit([]float64{1, 2}); err != ErrShortSeries {
		t.Fatal("short fit should error")
	}
	if err := s.Fit([]float64{9, 9, 9, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	out := s.Forecast(5)
	want := []float64{1, 2, 3, 1, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("forecast = %v", out)
		}
	}
	bad := SeasonalNaive{}
	if err := bad.Fit([]float64{1}); err == nil {
		t.Fatal("period 0 should error")
	}
}

func TestSESConvergesToConstant(t *testing.T) {
	s := SES{Alpha: 0.5}
	hist := make([]float64, 50)
	for i := range hist {
		hist[i] = 42
	}
	if err := s.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if out := s.Forecast(2); !approx(out[0], 42, 1e-9) || !approx(out[1], 42, 1e-9) {
		t.Fatalf("SES forecast = %v", out)
	}
}

func TestHoltTracksLinearTrend(t *testing.T) {
	var h Holt
	hist := make([]float64, 100)
	for i := range hist {
		hist[i] = 10 + 2*float64(i)
	}
	if err := h.Fit(hist); err != nil {
		t.Fatal(err)
	}
	out := h.Forecast(5)
	for i, v := range out {
		want := 10 + 2*float64(99+i+1)
		if !approx(v, want, 1.0) {
			t.Fatalf("holt[%d] = %v, want ~%v", i, v, want)
		}
	}
	if err := h.Fit([]float64{1}); err != ErrShortSeries {
		t.Fatal("short fit should error")
	}
}

func TestHoltWintersSeasonal(t *testing.T) {
	// Clean diurnal-like signal: period 24, linear drift.
	period := 24
	hist := make([]float64, period*10)
	for i := range hist {
		hist[i] = 100 + 0.05*float64(i) + 20*math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	hw := HoltWinters{Period: period}
	if err := hw.Fit(hist); err != nil {
		t.Fatal(err)
	}
	out := hw.Forecast(period)
	for i, v := range out {
		idx := len(hist) + i
		want := 100 + 0.05*float64(idx) + 20*math.Sin(2*math.Pi*float64(idx)/float64(period))
		if math.Abs(v-want) > 3 {
			t.Fatalf("hw[%d] = %v, want ~%v", i, v, want)
		}
	}
}

func TestHoltWintersValidation(t *testing.T) {
	hw := HoltWinters{Period: 1}
	if err := hw.Fit(make([]float64, 100)); err == nil {
		t.Fatal("period 1 should error")
	}
	hw2 := HoltWinters{Period: 24}
	if err := hw2.Fit(make([]float64, 30)); err != ErrShortSeries {
		t.Fatal("short history should error")
	}
}

func TestARRecoversAR1(t *testing.T) {
	// Simulate x_t = 0.8 x_{t-1} + noise.
	rng := rand.New(rand.NewSource(1))
	n := 5000
	hist := make([]float64, n)
	for i := 1; i < n; i++ {
		hist[i] = 0.8*hist[i-1] + rng.NormFloat64()
	}
	ar := AR{P: 1}
	if err := ar.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ar.Phi[0]-0.8) > 0.05 {
		t.Fatalf("phi = %v, want ~0.8", ar.Phi)
	}
	// Forecast decays toward the mean.
	out := ar.Forecast(50)
	if math.Abs(out[49]) > math.Abs(out[0]) {
		t.Fatalf("AR forecast should decay: %v ... %v", out[0], out[49])
	}
}

func TestARConstantSeries(t *testing.T) {
	ar := AR{P: 3}
	hist := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	if err := ar.Fit(hist); err != nil {
		t.Fatal(err)
	}
	out := ar.Forecast(4)
	for _, v := range out {
		if !approx(v, 5, 1e-9) {
			t.Fatalf("constant AR forecast = %v", out)
		}
	}
}

func TestARValidation(t *testing.T) {
	ar := AR{}
	if err := ar.Fit([]float64{1, 2, 3}); err == nil {
		t.Fatal("P=0 should error")
	}
	ar = AR{P: 5}
	if err := ar.Fit([]float64{1, 2}); err != ErrShortSeries {
		t.Fatal("short history should error")
	}
}

func TestDrift(t *testing.T) {
	var d Drift
	if err := d.Fit([]float64{0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	out := d.Forecast(3)
	want := []float64{5, 6, 7}
	for i := range want {
		if !approx(out[i], want[i], 1e-9) {
			t.Fatalf("drift = %v", out)
		}
	}
}

func TestBacktestPerfectModel(t *testing.T) {
	// A constant series is perfectly predicted by naive.
	series := make([]float64, 100)
	for i := range series {
		series[i] = 3
	}
	s, err := Backtest(&Naive{}, series, 10, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.MAE != 0 || s.RMSE != 0 || s.N == 0 {
		t.Fatalf("score = %+v", s)
	}
}

func TestBacktestRanksModels(t *testing.T) {
	// On a strongly trending series, drift must beat naive.
	series := make([]float64, 200)
	rng := rand.New(rand.NewSource(2))
	for i := range series {
		series[i] = 5*float64(i) + rng.NormFloat64()
	}
	scores, err := Compare(series, 50, 10, 10, &Naive{}, &Drift{})
	if err != nil {
		t.Fatal(err)
	}
	if scores[1].MAE >= scores[0].MAE {
		t.Fatalf("drift (%v) should beat naive (%v) on trend", scores[1].MAE, scores[0].MAE)
	}
}

func TestBacktestValidation(t *testing.T) {
	if _, err := Backtest(&Naive{}, []float64{1, 2}, 0, 1, 1); err == nil {
		t.Fatal("bad params should error")
	}
	if _, err := Backtest(&Naive{}, []float64{1, 2}, 10, 5, 1); err != ErrShortSeries {
		t.Fatal("short series should error")
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	spec, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := IFFT(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !approx(real(back[i]), real(x[i]), 1e-9) || !approx(imag(back[i]), imag(x[i]), 1e-9) {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, back[i], x[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]complex128, 128)
	var timeEnergy float64
	for i := range x {
		v := rng.NormFloat64()
		x[i] = complex(v, 0)
		timeEnergy += v * v
	}
	spec, _ := FFT(x)
	var freqEnergy float64
	for _, c := range spec {
		freqEnergy += real(c)*real(c) + imag(c)*imag(c)
	}
	freqEnergy /= float64(len(x))
	if !approx(timeEnergy, freqEnergy, 1e-6) {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestFFTValidation(t *testing.T) {
	if _, err := FFT(make([]complex128, 3)); err == nil {
		t.Fatal("non-power-of-two should error")
	}
	if _, err := IFFT(nil); err == nil {
		t.Fatal("empty should error")
	}
}

func TestNextPow2AndPad(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 64: 64, 65: 128}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
	p := PadPow2([]float64{1, 2, 3})
	if len(p) != 4 || real(p[0]) != 1 || p[3] != 0 {
		t.Fatalf("PadPow2 = %v", p)
	}
}

func TestDominantPeriods(t *testing.T) {
	// Pure sinusoid with period 16 over 128 samples.
	n := 128
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 * math.Sin(2*math.Pi*float64(i)/16)
	}
	peaks, err := DominantPeriods(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(peaks[0].Period, 16, 1e-9) {
		t.Fatalf("dominant period = %v", peaks[0].Period)
	}
	if math.Abs(peaks[0].Amplitude-10) > 0.5 {
		t.Fatalf("amplitude = %v", peaks[0].Amplitude)
	}
	if _, err := DominantPeriods([]float64{1, 2}, 1); err != ErrShortSeries {
		t.Fatal("short input should error")
	}
}

func TestFFTForecasterPeriodicSignal(t *testing.T) {
	// Power-like signal: offset + two sinusoids; power-of-two history so the
	// spectral bins line up exactly.
	n := 512
	gen := func(i int) float64 {
		return 2000 + 400*math.Sin(2*math.Pi*float64(i)/64) + 150*math.Cos(2*math.Pi*float64(i)/32)
	}
	hist := make([]float64, n)
	for i := range hist {
		hist[i] = gen(i)
	}
	ff := FFTForecaster{K: 2}
	if err := ff.Fit(hist); err != nil {
		t.Fatal(err)
	}
	out := ff.Forecast(64)
	for i, v := range out {
		want := gen(n + i)
		if math.Abs(v-want) > 40 {
			t.Fatalf("fft forecast[%d] = %v, want ~%v", i, v, want)
		}
	}
	if err := (&FFTForecaster{}).Fit([]float64{1, 2, 3}); err != ErrShortSeries {
		t.Fatal("short fit should error")
	}
}

func TestBacktestFFTRunsEndToEnd(t *testing.T) {
	n := 400
	series := make([]float64, n)
	rng := rand.New(rand.NewSource(5))
	for i := range series {
		series[i] = 100 + 30*math.Sin(2*math.Pi*float64(i)/50) + rng.NormFloat64()*2
	}
	s, err := Backtest(&FFTForecaster{K: 3}, series, 256, 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	if s.N == 0 || s.MAE > 30 {
		t.Fatalf("fft backtest = %+v", s)
	}
}
