package forecast_test

import (
	"fmt"
	"math"

	"repro/internal/forecast"
)

// ExampleHoltWinters forecasts a clean diurnal signal one season ahead.
func ExampleHoltWinters() {
	const period = 24
	history := make([]float64, period*4)
	for i := range history {
		history[i] = 100 + 10*math.Sin(2*math.Pi*float64(i)/period)
	}
	hw := forecast.HoltWinters{Period: period}
	if err := hw.Fit(history); err != nil {
		panic(err)
	}
	pred := hw.Forecast(period)
	// The forecast keeps the seasonal swing: max-min close to 20.
	lo, hi := pred[0], pred[0]
	for _, v := range pred {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	fmt.Println("seasonal swing preserved:", hi-lo > 15)
	// Output:
	// seasonal swing preserved: true
}

// ExampleBacktest scores a forecaster against held-out history.
func ExampleBacktest() {
	series := make([]float64, 200)
	for i := range series {
		series[i] = float64(i) // pure trend
	}
	score, err := forecast.Backtest(&forecast.Drift{}, series, 100, 10, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("drift model MAE on a pure trend: %.2f\n", score.MAE)
	// Output:
	// drift model MAE on a pure trend: 0.00
}
