// Package forecast implements the time-series prediction models behind the
// predictive ODA row: exponential smoothing (simple, Holt, Holt-Winters),
// autoregressive models fit with Levinson-Durbin, seasonal-naive baselines,
// an FFT toolkit used for the LLNL power-spike use case, and a backtesting
// harness that scores forecasters against held-out history.
package forecast

import (
	"errors"
	"math"
)

// ErrShortSeries is returned when the input history is too short for the
// requested model.
var ErrShortSeries = errors.New("forecast: series too short")

// Forecaster is a model that, given history, can predict the next h values.
type Forecaster interface {
	// Fit estimates model state from the history.
	Fit(history []float64) error
	// Forecast returns predictions for the next h steps.
	Forecast(h int) []float64
	// Name identifies the model in reports and benchmarks.
	Name() string
}

// Naive repeats the last observed value (a random-walk forecast). It is the
// baseline every surveyed predictive ODA paper compares against.
type Naive struct {
	last float64
}

// Name implements Forecaster.
func (n *Naive) Name() string { return "naive" }

// Fit implements Forecaster.
func (n *Naive) Fit(history []float64) error {
	if len(history) == 0 {
		return ErrShortSeries
	}
	n.last = history[len(history)-1]
	return nil
}

// Forecast implements Forecaster.
func (n *Naive) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = n.last
	}
	return out
}

// SeasonalNaive repeats the last observed season. With Period == daily
// samples it captures the diurnal cycle of facility telemetry for free.
type SeasonalNaive struct {
	Period int
	season []float64
}

// Name implements Forecaster.
func (s *SeasonalNaive) Name() string { return "seasonal-naive" }

// Fit implements Forecaster.
func (s *SeasonalNaive) Fit(history []float64) error {
	if s.Period <= 0 {
		return errors.New("forecast: SeasonalNaive.Period must be positive")
	}
	if len(history) < s.Period {
		return ErrShortSeries
	}
	s.season = append([]float64(nil), history[len(history)-s.Period:]...)
	return nil
}

// Forecast implements Forecaster.
func (s *SeasonalNaive) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = s.season[i%s.Period]
	}
	return out
}

// SES is simple exponential smoothing: a level-only model for slowly
// drifting sensors.
type SES struct {
	Alpha float64 // smoothing factor in (0,1]; default 0.3 when zero
	level float64
}

// Name implements Forecaster.
func (s *SES) Name() string { return "ses" }

// Fit implements Forecaster.
func (s *SES) Fit(history []float64) error {
	if len(history) == 0 {
		return ErrShortSeries
	}
	alpha := s.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	s.level = history[0]
	for _, x := range history[1:] {
		s.level = alpha*x + (1-alpha)*s.level
	}
	return nil
}

// Forecast implements Forecaster.
func (s *SES) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = s.level
	}
	return out
}

// Holt is double exponential smoothing (level + trend).
type Holt struct {
	Alpha float64 // level smoothing, default 0.3
	Beta  float64 // trend smoothing, default 0.1

	level, trend float64
}

// Name implements Forecaster.
func (ht *Holt) Name() string { return "holt" }

// Fit implements Forecaster.
func (ht *Holt) Fit(history []float64) error {
	if len(history) < 2 {
		return ErrShortSeries
	}
	alpha, beta := ht.Alpha, ht.Beta
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if beta <= 0 || beta > 1 {
		beta = 0.1
	}
	ht.level = history[0]
	ht.trend = history[1] - history[0]
	for _, x := range history[1:] {
		prevLevel := ht.level
		ht.level = alpha*x + (1-alpha)*(ht.level+ht.trend)
		ht.trend = beta*(ht.level-prevLevel) + (1-beta)*ht.trend
	}
	return nil
}

// Forecast implements Forecaster.
func (ht *Holt) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = ht.level + float64(i+1)*ht.trend
	}
	return out
}

// HoltWinters is triple exponential smoothing with additive seasonality:
// the default model for diurnal facility KPIs (cooling demand, PUE, power).
type HoltWinters struct {
	Period int     // season length in samples (required)
	Alpha  float64 // level smoothing, default 0.3
	Beta   float64 // trend smoothing, default 0.05
	Gamma  float64 // seasonal smoothing, default 0.2

	level, trend float64
	seasonal     []float64
	phase        int // index into seasonal for the next forecast step
}

// Name implements Forecaster.
func (hw *HoltWinters) Name() string { return "holt-winters" }

// Fit implements Forecaster.
func (hw *HoltWinters) Fit(history []float64) error {
	if hw.Period <= 1 {
		return errors.New("forecast: HoltWinters.Period must be > 1")
	}
	m := hw.Period
	if len(history) < 2*m {
		return ErrShortSeries
	}
	alpha, beta, gamma := hw.Alpha, hw.Beta, hw.Gamma
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if beta <= 0 || beta > 1 {
		beta = 0.05
	}
	if gamma <= 0 || gamma > 1 {
		gamma = 0.2
	}
	// Initialize level/trend from the first two seasons, seasonal indices
	// from deviations of season one against its mean.
	var mean1, mean2 float64
	for i := 0; i < m; i++ {
		mean1 += history[i]
		mean2 += history[m+i]
	}
	mean1 /= float64(m)
	mean2 /= float64(m)
	hw.level = mean1
	hw.trend = (mean2 - mean1) / float64(m)
	hw.seasonal = make([]float64, m)
	for i := 0; i < m; i++ {
		hw.seasonal[i] = (history[i] - mean1 + history[m+i] - mean2) / 2
	}
	for t := 0; t < len(history); t++ {
		x := history[t]
		si := t % m
		prevLevel := hw.level
		hw.level = alpha*(x-hw.seasonal[si]) + (1-alpha)*(hw.level+hw.trend)
		hw.trend = beta*(hw.level-prevLevel) + (1-beta)*hw.trend
		hw.seasonal[si] = gamma*(x-hw.level) + (1-gamma)*hw.seasonal[si]
	}
	hw.phase = len(history) % m
	return nil
}

// Forecast implements Forecaster.
func (hw *HoltWinters) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		si := (hw.phase + i) % hw.Period
		out[i] = hw.level + float64(i+1)*hw.trend + hw.seasonal[si]
	}
	return out
}

// AR is an autoregressive model of order P fit with the Levinson-Durbin
// recursion over the sample autocovariance: x_t = mean + Σ φ_i (x_{t-i} - mean).
type AR struct {
	P int // model order (required)

	Phi  []float64 // AR coefficients after Fit
	mean float64
	tail []float64 // last P observations, most recent last
}

// Name implements Forecaster.
func (ar *AR) Name() string { return "ar" }

// Fit implements Forecaster.
func (ar *AR) Fit(history []float64) error {
	if ar.P <= 0 {
		return errors.New("forecast: AR.P must be positive")
	}
	if len(history) < ar.P+1 {
		return ErrShortSeries
	}
	n := len(history)
	var mean float64
	for _, x := range history {
		mean += x
	}
	mean /= float64(n)
	// Sample autocovariances r[0..P].
	r := make([]float64, ar.P+1)
	for lag := 0; lag <= ar.P; lag++ {
		var s float64
		for t := lag; t < n; t++ {
			s += (history[t] - mean) * (history[t-lag] - mean)
		}
		r[lag] = s / float64(n)
	}
	phi, err := levinsonDurbin(r, ar.P)
	if err != nil {
		return err
	}
	ar.Phi = phi
	ar.mean = mean
	ar.tail = append([]float64(nil), history[n-ar.P:]...)
	return nil
}

// levinsonDurbin solves the Yule-Walker equations for an AR(p) model.
func levinsonDurbin(r []float64, p int) ([]float64, error) {
	if r[0] == 0 {
		// Constant series: all coefficients zero (forecast = mean).
		return make([]float64, p), nil
	}
	phi := make([]float64, p)
	prev := make([]float64, p)
	e := r[0]
	for k := 1; k <= p; k++ {
		acc := r[k]
		for j := 1; j < k; j++ {
			acc -= prev[j-1] * r[k-j]
		}
		if e == 0 {
			return nil, errors.New("forecast: Levinson-Durbin breakdown")
		}
		kappa := acc / e
		phi[k-1] = kappa
		for j := 1; j < k; j++ {
			phi[j-1] = prev[j-1] - kappa*prev[k-j-1]
		}
		e *= 1 - kappa*kappa
		copy(prev, phi[:k])
	}
	return phi, nil
}

// Forecast implements Forecaster: iterated one-step-ahead prediction.
func (ar *AR) Forecast(h int) []float64 {
	out := make([]float64, h)
	// Window of the most recent P values (centred), most recent last.
	win := make([]float64, len(ar.tail))
	for i, x := range ar.tail {
		win[i] = x - ar.mean
	}
	for i := 0; i < h; i++ {
		var pred float64
		for j, phi := range ar.Phi {
			pred += phi * win[len(win)-1-j]
		}
		out[i] = pred + ar.mean
		win = append(win[1:], pred)
	}
	return out
}

// Drift forecasts with the average historical slope, the second classic
// baseline after naive.
type Drift struct {
	last, slope float64
}

// Name implements Forecaster.
func (d *Drift) Name() string { return "drift" }

// Fit implements Forecaster.
func (d *Drift) Fit(history []float64) error {
	if len(history) < 2 {
		return ErrShortSeries
	}
	d.last = history[len(history)-1]
	d.slope = (history[len(history)-1] - history[0]) / float64(len(history)-1)
	return nil
}

// Forecast implements Forecaster.
func (d *Drift) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = d.last + float64(i+1)*d.slope
	}
	return out
}

// Score holds backtest error metrics for one forecaster.
type Score struct {
	Model string
	MAE   float64
	RMSE  float64
	MAPE  float64
	N     int // forecast points scored
}

// Backtest walks the series with an expanding window: at each origin it fits
// the forecaster on history[:origin], predicts horizon steps, and scores them
// against the actual continuation. Origins advance by step.
func Backtest(f Forecaster, series []float64, minTrain, horizon, step int) (Score, error) {
	if minTrain <= 0 || horizon <= 0 || step <= 0 {
		return Score{}, errors.New("forecast: invalid backtest parameters")
	}
	if len(series) < minTrain+horizon {
		return Score{}, ErrShortSeries
	}
	var absSum, sqSum, pctSum float64
	var n, pctN int
	for origin := minTrain; origin+horizon <= len(series); origin += step {
		if err := f.Fit(series[:origin]); err != nil {
			return Score{}, err
		}
		pred := f.Forecast(horizon)
		for i := 0; i < horizon; i++ {
			actual := series[origin+i]
			err := pred[i] - actual
			absSum += math.Abs(err)
			sqSum += err * err
			if actual != 0 {
				pctSum += math.Abs(err / actual)
				pctN++
			}
			n++
		}
	}
	if n == 0 {
		return Score{}, ErrShortSeries
	}
	s := Score{
		Model: f.Name(),
		MAE:   absSum / float64(n),
		RMSE:  math.Sqrt(sqSum / float64(n)),
		N:     n,
	}
	if pctN > 0 {
		s.MAPE = pctSum / float64(pctN) * 100
	}
	return s, nil
}

// Compare backtests several forecasters on the same series and returns their
// scores in input order.
func Compare(series []float64, minTrain, horizon, step int, fs ...Forecaster) ([]Score, error) {
	out := make([]Score, 0, len(fs))
	for _, f := range fs {
		s, err := Backtest(f, series, minTrain, horizon, step)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
