package forecast

import (
	"math"
	"math/rand"
	"testing"
)

// pulseTrain builds a square-pulse signal: base + amp during the first
// duty*period samples of every cycle, plus gaussian noise.
func pulseTrain(n, period int, duty, base, amp, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		v := base
		if float64(i%period) < duty*float64(period) {
			v += amp
		}
		out[i] = v + rng.NormFloat64()*noise
	}
	return out
}

func TestSeasonalFFTDetectsPulsePeriod(t *testing.T) {
	hist := pulseTrain(2100, 300, 0.3, 2000, 2500, 60, 1)
	var sf SeasonalFFT
	if err := sf.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if p := sf.DetectedPeriod(); p < 294 || p > 306 {
		t.Fatalf("detected period %d, want ~300", p)
	}
	// The forecast must reproduce the pulse: high during duty, low after.
	pred := sf.Forecast(300)
	// Forecast index i corresponds to absolute sample 2100+i; cycle phase
	// = (2100+i) mod 300 = i (2100 = 7*300).
	var hi, lo float64
	var nHi, nLo int
	for i, v := range pred {
		phase := float64(i%300) / 300
		switch {
		case phase > 0.05 && phase < 0.25: // safely inside the pulse
			hi += v
			nHi++
		case phase > 0.5 && phase < 0.9: // safely outside
			lo += v
			nLo++
		}
	}
	hi /= float64(nHi)
	lo /= float64(nLo)
	if hi-lo < 2000 {
		t.Fatalf("forecast pulse amplitude %.0f, want ~2500", hi-lo)
	}
}

func TestSeasonalFFTRobustToOneShiftedCycle(t *testing.T) {
	// Six clean cycles plus one cycle whose pulse arrives late: the median
	// profile must keep sharp edges.
	period := 300
	hist := pulseTrain(7*period, period, 0.3, 1000, 2000, 30, 2)
	// Shift cycle 3's pulse by 40% of the period.
	for i := 0; i < period; i++ {
		idx := 3*period + i
		v := 1000.0
		if float64((i+120)%period) < 0.3*float64(period) {
			v += 2000
		}
		hist[idx] = v
	}
	var sf SeasonalFFT
	if err := sf.Fit(hist); err != nil {
		t.Fatal(err)
	}
	p := sf.DetectedPeriod()
	if p < 294 || p > 306 {
		t.Fatalf("detected period %d, want ~300", p)
	}
	pred := sf.Forecast(period)
	// The median profile must keep the pulse plateau high and the gap low
	// despite the corrupted cycle (sampled away from the edges, where a
	// few samples of period error are tolerable).
	mid := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += pred[i]
		}
		return s / float64(hi-lo)
	}
	if plateau := mid(20, 70); plateau < 2500 {
		t.Fatalf("pulse plateau washed out: %.0f", plateau)
	}
	if gap := mid(150, 260); gap > 1500 {
		t.Fatalf("pulse gap leaked: %.0f", gap)
	}
}

func TestSeasonalFFTShortSeries(t *testing.T) {
	var sf SeasonalFFT
	if err := sf.Fit(make([]float64, 8)); err != ErrShortSeries {
		t.Fatalf("short fit err = %v", err)
	}
}

func TestSeasonalFFTConstantSeries(t *testing.T) {
	hist := make([]float64, 256)
	for i := range hist {
		hist[i] = 42
	}
	var sf SeasonalFFT
	if err := sf.Fit(hist); err != nil {
		t.Fatal(err)
	}
	for _, v := range sf.Forecast(16) {
		if math.Abs(v-42) > 1e-9 {
			t.Fatalf("constant forecast = %v", v)
		}
	}
}

func TestSeasonalFFTBacktestBeatsNaiveOnPeriodicSignal(t *testing.T) {
	hist := pulseTrain(2400, 200, 0.4, 500, 800, 20, 3)
	scores, err := Compare(hist, 1600, 200, 200, &SeasonalFFT{}, &Naive{})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].MAE >= scores[1].MAE {
		t.Fatalf("seasonal-fft MAE %.1f should beat naive %.1f on pulses",
			scores[0].MAE, scores[1].MAE)
	}
}

func TestCyclicMedian(t *testing.T) {
	// Two cycles of [1 2 3], one corrupt cycle [100 100 100]: median wins.
	xs := []float64{1, 2, 3, 1, 2, 3, 100, 100, 100}
	got := cyclicMedian(xs, 3)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cyclicMedian = %v", got)
		}
	}
	// Even bucket count averages the middle pair.
	xs2 := []float64{1, 3, 1, 3} // period 1: bucket [1 3 1 3] -> median 2
	if m := cyclicMedian(xs2, 1); m[0] != 2 {
		t.Fatalf("even median = %v", m)
	}
}

func TestSeasonalValError(t *testing.T) {
	xs := pulseTrain(1200, 100, 0.5, 0, 10, 0.1, 4)
	right := seasonalValError(xs, 900, 100)
	wrong := seasonalValError(xs, 900, 73)
	if right >= wrong {
		t.Fatalf("true period should validate better: %.3f vs %.3f", right, wrong)
	}
	if !math.IsInf(seasonalValError(xs, 50, 100), 1) {
		t.Fatal("cut <= period should be infeasible")
	}
}

func TestACFAt(t *testing.T) {
	xs := pulseTrain(1000, 50, 0.5, 0, 1, 0, 5)
	if a := acfAt(xs, 50); a < 0.9 {
		t.Fatalf("acf at true period = %v", a)
	}
	if a := acfAt(xs, 25); a > 0 {
		t.Fatalf("acf at half period should be negative for 50%% duty: %v", a)
	}
	if !math.IsInf(acfAt(xs, 2000), -1) {
		t.Fatal("lag beyond series should be -inf")
	}
	flat := make([]float64, 100)
	if acfAt(flat, 10) != 0 {
		t.Fatal("zero-variance acf should be 0")
	}
}

func TestSeasonalFFTName(t *testing.T) {
	if (&SeasonalFFT{}).Name() != "seasonal-fft" {
		t.Fatal("name")
	}
}
