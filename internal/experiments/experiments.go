// Package experiments implements the reproduction harness: one entry point
// per paper artifact (Table I, Figs. 1-3, the §IV survey, the §V-C LLNL
// case) plus the ablations DESIGN.md calls out. cmd/odabench prints their
// reports; the root benchmarks time them; EXPERIMENTS.md records their
// outputs against the paper.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/descriptive"
	"repro/internal/diagnostic"
	"repro/internal/facility"
	"repro/internal/oda"
	"repro/internal/predictive"
	"repro/internal/prescriptive"
	"repro/internal/scheduler"
	"repro/internal/simulation"
	"repro/internal/systems"
	"repro/internal/workload"
)

// Report is one experiment's rendered output plus machine-readable values.
type Report struct {
	Name   string
	Text   string
	Values map[string]float64
}

// registerAll builds the full grid (duplicated from the root package to
// avoid an import cycle; the set is identical and tested to cover all 16
// cells).
func registerAll(g *oda.Grid) error {
	for _, reg := range []func(*oda.Grid) error{
		descriptive.Register, diagnostic.Register,
		predictive.Register, prescriptive.Register,
	} {
		if err := reg(g); err != nil {
			return err
		}
	}
	return nil
}

// standardDC runs the default experiment substrate.
func standardDC(seed int64, nodes int, hours float64) (*simulation.DataCenter, *oda.RunContext) {
	cfg := simulation.DefaultConfig(seed)
	cfg.Nodes = nodes
	cfg.Workload.MaxNodes = nodes / 2
	dc := simulation.New(cfg)
	dc.RunFor(hours * 3600)
	return dc, &oda.RunContext{Store: dc.Store, From: 0, To: dc.Now() + 1, System: dc}
}

// Table1 reproduces Table I as a live artifact: every grid cell populated
// with an executed capability and its measured result (experiment E1).
func Table1(seed int64, nodes int, hours float64) (Report, error) {
	g := oda.NewGrid()
	if err := registerAll(g); err != nil {
		return Report{}, err
	}
	_, ctx := standardDC(seed, nodes, hours)
	results, errs := g.RunAll(ctx)

	var b strings.Builder
	fmt.Fprintf(&b, "Table I (executed): %d capabilities over %d nodes, %.0fh window\n\n", g.Len(), nodes, hours)
	values := map[string]float64{"capabilities": float64(g.Len())}
	types := oda.Types()
	for i := len(types) - 1; i >= 0; i-- {
		t := types[i]
		fmt.Fprintf(&b, "== %s (%s) ==\n", strings.ToUpper(t.String()), t.Question())
		for _, p := range oda.Pillars() {
			caps := g.At(oda.Cell{Pillar: p, Type: t})
			if len(caps) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  [%s]\n", p)
			for _, c := range caps {
				name := c.Meta().Name
				if r, ok := results[name]; ok {
					fmt.Fprintf(&b, "    %-22s %s  %s\n", name, strings.Join(c.Meta().Refs, ","), r.Summary)
				} else {
					fmt.Fprintf(&b, "    %-22s %s  (declined: %v)\n", name, strings.Join(c.Meta().Refs, ","), errs[name])
				}
			}
		}
	}
	values["succeeded"] = float64(len(results))
	values["declined"] = float64(len(errs))
	empty := len(g.Gaps())
	values["empty_cells"] = float64(empty)
	fmt.Fprintf(&b, "\ncells covered: %d/16, capabilities succeeded: %d, declined: %d\n",
		16-empty, len(results), len(errs))
	return Report{Name: "table1", Text: b.String(), Values: values}, nil
}

// Fig1 reproduces the four-pillar decomposition: which telemetry each
// pillar contributes in the running system (experiment E2).
func Fig1(seed int64, nodes int, hours float64) (Report, error) {
	_, ctx := standardDC(seed, nodes, hours)
	pillarOf := func(name string) oda.Pillar {
		switch {
		case strings.HasPrefix(name, "facility_"):
			return oda.BuildingInfrastructure
		case strings.HasPrefix(name, "node_"), strings.HasPrefix(name, "net_"):
			return oda.SystemHardware
		case strings.HasPrefix(name, "sched_"):
			return oda.SystemSoftware
		default:
			return oda.Applications
		}
	}
	seriesPerPillar := map[oda.Pillar]int{}
	samplesPerPillar := map[oda.Pillar]int{}
	metricNames := map[oda.Pillar]map[string]bool{}
	for _, id := range ctx.Store.IDs() {
		p := pillarOf(id.Name)
		seriesPerPillar[p]++
		if metricNames[p] == nil {
			metricNames[p] = map[string]bool{}
		}
		metricNames[p][id.Name] = true
		if samples, err := ctx.Store.QueryAll(id); err == nil {
			samplesPerPillar[p] += len(samples)
		}
	}
	var b strings.Builder
	b.WriteString("Fig. 1 (four pillars as live data sources):\n\n")
	values := map[string]float64{}
	for _, p := range oda.Pillars() {
		names := make([]string, 0, len(metricNames[p]))
		for n := range metricNames[p] {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%-24s %3d series %8d samples  metrics: %s\n",
			p.String(), seriesPerPillar[p], samplesPerPillar[p], strings.Join(names, " "))
		values["series_"+p.String()] = float64(seriesPerPillar[p])
		values["samples_"+p.String()] = float64(samplesPerPillar[p])
	}
	// The applications pillar's data lives in the job ledger rather than
	// the TSDB; count it too.
	dc := ctx.System.(*simulation.DataCenter)
	values["jobs"] = float64(len(dc.Allocations()))
	fmt.Fprintf(&b, "%-24s %3d job records (allocation ledger)\n", oda.Applications.String(), len(dc.Allocations()))
	return Report{Name: "fig1", Text: b.String(), Values: values}, nil
}

// Fig2 reproduces the staged analytics model: one pipeline walking all
// four types over the same telemetry, with per-stage timing (experiment E3).
func Fig2(seed int64, nodes int, hours float64) (Report, error) {
	_, ctx := standardDC(seed, nodes, hours)
	var p oda.Pipeline
	if err := p.Append(oda.Descriptive, descriptive.PUE{}); err != nil {
		return Report{}, err
	}
	if err := p.Append(oda.Diagnostic, diagnostic.InfraAnomaly{}); err != nil {
		return Report{}, err
	}
	if err := p.Append(oda.Predictive, predictive.KPIForecast{}); err != nil {
		return Report{}, err
	}
	if err := p.Append(oda.Prescriptive, prescriptive.SetpointOptimizer{}); err != nil {
		return Report{}, err
	}
	results, err := p.Run(ctx)
	if err != nil {
		return Report{}, err
	}
	var b strings.Builder
	b.WriteString("Fig. 2 (four types as a staged pipeline):\n\n")
	values := map[string]float64{}
	var total time.Duration
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s (%-28s) %8s  %s\n", r.Type, r.Type.Question(), r.Duration.Round(time.Microsecond), r.Result.Summary)
		values["us_"+r.Type.String()] = float64(r.Duration.Microseconds())
		total += r.Duration
	}
	fmt.Fprintf(&b, "\nhindsight -> foresight in %s across %d stages\n", total.Round(time.Microsecond), len(results))
	values["stages"] = float64(len(results))
	return Report{Name: "fig2", Text: b.String(), Values: values}, nil
}

// Fig3ENI reproduces the ENI-style system (experiment E4): diagnostic +
// prescriptive cooling control versus an uncontrolled baseline during a
// facility stress episode.
func Fig3ENI(seed int64, hours float64) (Report, error) {
	run := func(deploy bool) (*simulation.DataCenter, float64) {
		cfg := simulation.DefaultConfig(seed)
		cfg.Nodes = 16
		cfg.Workload.MaxNodes = 8
		cfg.Workload.MeanInterarrival = 60
		dc := simulation.New(cfg)
		// Baseline misconfiguration the system must correct: a cold fixed
		// setpoint on the chiller.
		dc.Facility.SetMode(facility.ModeChiller)
		dc.Facility.SetSetpoint(15)
		if deploy {
			eni, err := systems.NewENI()
			if err == nil {
				eni.Deploy(dc)
				dc.AddController(prescriptive.CoolingModeSwitch{}.Controller())
			}
		}
		dc.RunFor(hours * 3600)
		return dc, dc.Facility.CumulativePUE()
	}
	_, basePUE := run(false)
	dcENI, eniPUE := run(true)
	ctx := &oda.RunContext{Store: dcENI.Store, From: 0, To: dcENI.Now() + 1, System: dcENI}
	eni, err := systems.NewENI()
	if err != nil {
		return Report{}, err
	}
	stages, err := eni.Run(ctx)
	if err != nil {
		return Report{}, err
	}
	var b strings.Builder
	b.WriteString("Fig. 3 / ENI-style system (diagnose + prescribe cooling):\n\n")
	fmt.Fprintf(&b, "baseline PUE (cold chiller, no ODA): %.4f\n", basePUE)
	fmt.Fprintf(&b, "with ENI-style control:              %.4f\n", eniPUE)
	for _, s := range stages {
		fmt.Fprintf(&b, "  stage %-12s %s\n", s.Type, s.Result.Summary)
	}
	return Report{Name: "fig3-eni", Text: b.String(), Values: map[string]float64{
		"baseline_pue": basePUE, "eni_pue": eniPUE,
	}}, nil
}

// Fig3GEOPM reproduces the GEOPM-like system (experiment E5): DVFS
// governing versus baseline — energy saved, runtime stretch paid.
func Fig3GEOPM(seed int64, hours float64) (Report, error) {
	run := func(deploy bool) (energy, stretch float64) {
		cfg := simulation.DefaultConfig(seed)
		cfg.Nodes = 16
		cfg.Workload.MaxNodes = 8
		cfg.Workload.MeanInterarrival = 90
		dc := simulation.New(cfg)
		if deploy {
			if g, err := systems.NewGEOPM(); err == nil {
				g.Deploy(dc)
			}
		}
		dc.RunFor(hours * 3600)
		for _, n := range dc.Nodes {
			energy += n.Energy()
		}
		var s, c float64
		for _, rec := range dc.Allocations() {
			if rec.End != 0 && !rec.Killed {
				s += rec.Job.RuntimeSeconds() / rec.Job.IdealRuntime()
				c++
			}
		}
		if c > 0 {
			stretch = s / c
		}
		return energy, stretch
	}
	baseE, baseS := run(false)
	govE, govS := run(true)
	saving := (1 - govE/baseE) * 100
	var b strings.Builder
	b.WriteString("Fig. 3 / GEOPM-like system (predict mix + tune DVFS):\n\n")
	fmt.Fprintf(&b, "baseline:  %.1f MJ IT energy, mean stretch %.3fx\n", baseE/1e6, baseS)
	fmt.Fprintf(&b, "governed:  %.1f MJ IT energy, mean stretch %.3fx\n", govE/1e6, govS)
	fmt.Fprintf(&b, "energy saving %.1f%% for %.1f%% extra runtime\n", saving, (govS/baseS-1)*100)
	return Report{Name: "fig3-geopm", Text: b.String(), Values: map[string]float64{
		"baseline_mj": baseE / 1e6, "governed_mj": govE / 1e6,
		"saving_pct": saving, "stretch_pct": (govS/baseS - 1) * 100,
	}}, nil
}

// Fig3Powerstack reproduces the Powerstack-like cross-pillar system
// (experiment E6): a power budget held through predicted job power.
func Fig3Powerstack(seed int64, hours float64) (Report, error) {
	budget := 4200.0
	run := func(deploy bool) (peakIT float64, meanWait float64, dc *simulation.DataCenter) {
		cfg := simulation.DefaultConfig(seed)
		cfg.Nodes = 16
		cfg.Workload.MaxNodes = 8
		cfg.Workload.MeanInterarrival = 45
		cfg.Policy = scheduler.PowerAware{}
		dc = simulation.New(cfg)
		if deploy {
			if ps, err := systems.NewPowerstack(budget); err == nil {
				ps.Deploy(dc)
			}
		}
		// Track peak IT power via a max over steps.
		peak := 0.0
		end := int64(hours * 3600 * 1000)
		for dc.Now() < end {
			dc.Step()
			if p := dc.ITPower(); p > peak {
				peak = p
			}
		}
		m := dc.Cluster.MetricsAt(dc.Now())
		return peak, m.MeanWaitSec, dc
	}
	basePeak, baseWait, _ := run(false)
	capPeak, capWait, _ := run(true)
	var b strings.Builder
	b.WriteString("Fig. 3 / Powerstack-like system (cross-pillar power budget):\n\n")
	fmt.Fprintf(&b, "budget: %.0f W IT\n", budget)
	fmt.Fprintf(&b, "baseline:   peak IT %.0f W, mean wait %.0f s\n", basePeak, baseWait)
	fmt.Fprintf(&b, "powerstack: peak IT %.0f W, mean wait %.0f s\n", capPeak, capWait)
	return Report{Name: "fig3-powerstack", Text: b.String(), Values: map[string]float64{
		"budget_w": budget, "baseline_peak_w": basePeak, "capped_peak_w": capPeak,
		"baseline_wait_s": baseWait, "capped_wait_s": capWait,
	}}, nil
}

// Survey reproduces the §IV classification analysis (experiment E7).
func Survey() (Report, error) {
	cat := oda.Catalog()
	st := oda.AnalyzeCatalog(cat)
	var b strings.Builder
	b.WriteString("Survey classification (paper Table I as data):\n\n")
	fmt.Fprintf(&b, "use cases: %d, distinct works: %d\n\n", st.UseCases, st.Works)
	b.WriteString("use cases per cell:\n")
	types := oda.Types()
	for i := len(types) - 1; i >= 0; i-- {
		t := types[i]
		fmt.Fprintf(&b, "  %-12s", t)
		for _, p := range oda.Pillars() {
			fmt.Fprintf(&b, " %3d", st.UseCasesPerCell[oda.Cell{Pillar: p, Type: t}])
		}
		b.WriteString("\n")
	}
	b.WriteString("               BI  HW  SW APP\n\n")
	fmt.Fprintf(&b, "single-pillar works: %d (%.0f%%)   multi-pillar: %d\n",
		st.SinglePillar, 100*float64(st.SinglePillar)/float64(st.Works), st.MultiPillar)
	fmt.Fprintf(&b, "single-type works:   %d (%.0f%%)   multi-type:   %d\n",
		st.SingleType, 100*float64(st.SingleType)/float64(st.Works), st.MultiType)
	b.WriteString("\npaper observation reproduced: single-pillar systems dominate (§V-B)\n")
	return Report{Name: "survey", Text: b.String(), Values: map[string]float64{
		"use_cases": float64(st.UseCases), "works": float64(st.Works),
		"single_pillar": float64(st.SinglePillar), "multi_pillar": float64(st.MultiPillar),
		"single_type": float64(st.SingleType), "multi_type": float64(st.MultiType),
	}}, nil
}

// LLNL reproduces the §V-C utility-notification case (experiment E8). The
// forecastability LLNL exploited comes from recurring power patterns, so
// the workload includes a 6-hourly production campaign; the FFT forecaster
// must anticipate the resulting power swings.
func LLNL(seed int64, nodes int, hours float64) (Report, error) {
	cfg := simulation.DefaultConfig(seed)
	cfg.Nodes = nodes
	// Small interactive background (quarter-machine jobs) so the half-
	// machine campaign always finds its nodes on schedule: recurring
	// patterns only forecast well when the queue does not jitter them.
	cfg.Workload.MaxNodes = nodes / 4
	cfg.Workload.MeanInterarrival = 1800
	cfg.Workload.CampaignPeriodHours = 5
	cfg.Workload.CampaignNodes = nodes / 2
	cfg.Workload.CampaignDurationS = 5400
	dc := simulation.New(cfg)
	// Fan control keeps the full-bore campaign nodes healthy; without it
	// thermally-accelerated failures kill campaigns mid-flight and break
	// the periodic pattern.
	dc.AddController(prescriptive.FanControl{}.Controller())
	dc.RunFor(hours * 3600)
	ctx := &oda.RunContext{Store: dc.Store, From: 0, To: dc.Now() + 1, System: dc}
	res, err := predictive.PowerSpike{HorizonSamples: 300}.Run(ctx)
	if err != nil {
		return Report{}, err
	}
	var b strings.Builder
	b.WriteString("LLNL-style power-spike forecasting (paper SecV-C):\n\n")
	fmt.Fprintf(&b, "workload: 5-hourly %d-node production campaigns over %d nodes, %.0fh\n",
		nodes/2, nodes, hours)
	b.WriteString(res.Summary + "\n")
	return Report{Name: "llnl", Text: b.String(), Values: res.Values}, nil
}

// PUEControlModes is experiment E9: cumulative PUE under reactive, static
// and proactive (predict + prescribe) cooling control.
func PUEControlModes(seed int64, hours float64) (Report, error) {
	type mode struct {
		name  string
		setup func(dc *simulation.DataCenter)
	}
	modes := []mode{
		{"reactive-chiller", func(dc *simulation.DataCenter) {
			dc.Facility.SetMode(facility.ModeChiller)
			dc.Facility.SetSetpoint(16)
		}},
		{"static-auto", func(dc *simulation.DataCenter) {
			dc.Facility.SetMode(facility.ModeAuto)
			dc.Facility.SetSetpoint(22)
		}},
		{"proactive-oda", func(dc *simulation.DataCenter) {
			// The full prescriptive suite: fans chase a thermal target so
			// node-over-supply deltas shrink, which lets the setpoint
			// optimizer run the loop warm, which the mode switcher turns
			// into free-cooling hours.
			dc.Facility.SetMode(facility.ModeAuto)
			dc.AddController(prescriptive.FanControl{TargetCelsius: 68}.Controller())
			dc.AddController(prescriptive.SetpointOptimizer{}.Controller())
			dc.AddController(prescriptive.CoolingModeSwitch{}.Controller())
		}},
	}
	var b strings.Builder
	b.WriteString("PUE under cooling-control maturity (E9):\n\n")
	values := map[string]float64{}
	for _, m := range modes {
		cfg := simulation.DefaultConfig(seed)
		cfg.Nodes = 16
		cfg.Workload.MaxNodes = 8
		cfg.Workload.MeanInterarrival = 60
		dc := simulation.New(cfg)
		// A warm climate makes the setpoint decide the free-cooling hours:
		// this is where cooling ODA pays (identical for all three modes).
		dc.Facility.Cfg.MeanOutdoorTemp = 18
		dc.Facility.Cfg.DailyAmplitude = 6
		m.setup(dc)
		dc.RunFor(hours * 3600)
		pue := dc.Facility.CumulativePUE()
		fmt.Fprintf(&b, "%-18s cumulative PUE %.4f\n", m.name, pue)
		values["pue_"+m.name] = pue
	}
	b.WriteString("\nexpected shape: proactive <= static < reactive\n")
	return Report{Name: "pue", Text: b.String(), Values: values}, nil
}

// SchedulerAblation compares policies on one workload (DESIGN.md §4).
func SchedulerAblation(seed int64, hours float64) (Report, error) {
	// Interarrival tuned so offered load (~25 node-seconds/second) sits
	// just under the 32-node machine: queues form at peaks but drain.
	gen := workload.NewGenerator(workload.GeneratorConfig{
		Seed: seed, Users: 16, MeanInterarrival: 360, DiurnalStrength: 0.5, MaxNodes: 16,
	})
	jobs := gen.GenerateUntil(0, int64(hours*3600*1000))
	var b strings.Builder
	fmt.Fprintf(&b, "Scheduler policy ablation (%d jobs, 32 nodes):\n\n", len(jobs))
	values := map[string]float64{"jobs": float64(len(jobs))}
	for _, p := range []scheduler.Policy{scheduler.FCFS{}, scheduler.EASY{}, scheduler.PlanBased{}} {
		m := predictive.Replay(jobs, 32, p)
		fmt.Fprintf(&b, "%-12s mean wait %7.0f s   p95 wait %7.0f s   mean slowdown %6.2f   utilization %.2f\n",
			p.Name(), m.MeanWaitSec, m.P95WaitSec, m.MeanSlowdown, m.Utilization)
		values["wait_"+p.Name()] = m.MeanWaitSec
		values["slowdown_"+p.Name()] = m.MeanSlowdown
		values["util_"+p.Name()] = m.Utilization
	}
	return Report{Name: "sched", Text: b.String(), Values: values}, nil
}

// TSDBAblation measures Gorilla compression against raw storage on real
// simulated telemetry (DESIGN.md §4).
func TSDBAblation(seed int64, nodes int, hours float64) (Report, error) {
	dc, _ := standardDC(seed, nodes, hours)
	store := dc.Store
	ratio := store.CompressionRatio()
	var b strings.Builder
	b.WriteString("TSDB compression ablation:\n\n")
	fmt.Fprintf(&b, "series: %d   samples: %d\n", store.NumSeries(), store.NumSamples())
	fmt.Fprintf(&b, "raw bytes (16 B/sample): %d\n", 16*store.NumSamples())
	fmt.Fprintf(&b, "gorilla bytes:           %d\n", store.CompressedBytes())
	fmt.Fprintf(&b, "compression ratio:       %.2fx\n", ratio)
	// Downsampling ablation: halve cadence on node power series.
	before := store.NumSamples()
	for _, id := range store.Select("node_power_watts", nil) {
		if _, err := store.Downsample(id, 5*60*1000); err != nil {
			return Report{}, err
		}
	}
	fmt.Fprintf(&b, "after 5-min downsampling of node power: %d samples (was %d)\n",
		store.NumSamples(), before)
	return Report{Name: "tsdb", Text: b.String(), Values: map[string]float64{
		"ratio": ratio, "samples": float64(before), "after_downsample": float64(store.NumSamples()),
	}}, nil
}

// Fig3Render returns the coverage grid of the three composed systems.
func Fig3Render() (Report, error) {
	all, err := systems.All()
	if err != nil {
		return Report{}, err
	}
	return Report{Name: "fig3", Text: "Fig. 3 (complex ODA systems in the framework):\n\n" + systems.RenderFig3(all)}, nil
}

// All runs every experiment with standard parameters, in paper order.
func All(seed int64) ([]Report, error) {
	var out []Report
	type job struct {
		name string
		fn   func() (Report, error)
	}
	jobs := []job{
		{"table1", func() (Report, error) { return Table1(seed, 32, 12) }},
		{"fig1", func() (Report, error) { return Fig1(seed, 16, 6) }},
		{"fig2", func() (Report, error) { return Fig2(seed, 16, 6) }},
		{"fig3", Fig3Render},
		{"fig3-eni", func() (Report, error) { return Fig3ENI(seed, 12) }},
		{"fig3-geopm", func() (Report, error) { return Fig3GEOPM(seed, 12) }},
		{"fig3-powerstack", func() (Report, error) { return Fig3Powerstack(seed, 12) }},
		{"survey", Survey},
		{"llnl", func() (Report, error) { return LLNL(seed, 16, 41) }},
		{"pue", func() (Report, error) { return PUEControlModes(seed, 24) }},
		{"sched", func() (Report, error) { return SchedulerAblation(seed, 24) }},
		{"tsdb", func() (Report, error) { return TSDBAblation(seed, 16, 12) }},
	}
	for _, j := range jobs {
		r, err := j.fn()
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", j.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ByName dispatches one experiment by its odabench name.
func ByName(name string, seed int64) (Report, error) {
	switch name {
	case "table1":
		return Table1(seed, 32, 12)
	case "fig1":
		return Fig1(seed, 16, 6)
	case "fig2":
		return Fig2(seed, 16, 6)
	case "fig3":
		return Fig3Render()
	case "fig3-eni":
		return Fig3ENI(seed, 12)
	case "fig3-geopm":
		return Fig3GEOPM(seed, 12)
	case "fig3-powerstack":
		return Fig3Powerstack(seed, 12)
	case "survey":
		return Survey()
	case "llnl":
		return LLNL(seed, 16, 41)
	case "pue":
		return PUEControlModes(seed, 24)
	case "sched":
		return SchedulerAblation(seed, 24)
	case "tsdb":
		return TSDBAblation(seed, 16, 12)
	default:
		return Report{}, fmt.Errorf("experiments: unknown experiment %q", name)
	}
}

// Names lists the available experiments in paper order.
func Names() []string {
	return []string{"table1", "fig1", "fig2", "fig3", "fig3-eni", "fig3-geopm",
		"fig3-powerstack", "survey", "llnl", "pue", "sched", "tsdb"}
}
