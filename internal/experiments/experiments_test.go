package experiments

import (
	"strings"
	"testing"
)

func TestTable1CoversSixteenCells(t *testing.T) {
	r, err := Table1(1, 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["empty_cells"] != 0 {
		t.Fatalf("empty cells: %v", r.Values["empty_cells"])
	}
	if r.Values["succeeded"] < r.Values["capabilities"]*0.75 {
		t.Fatalf("too many declines: %+v\n%s", r.Values, r.Text)
	}
	for _, want := range []string{"DESCRIPTIVE", "DIAGNOSTIC", "PREDICTIVE", "PRESCRIPTIVE", "pue-kpi"} {
		if !strings.Contains(r.Text, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestFig1AllPillarsContribute(t *testing.T) {
	r, err := Fig1(1, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, pillar := range []string{"building-infrastructure", "system-hardware", "system-software"} {
		if r.Values["series_"+pillar] == 0 {
			t.Fatalf("pillar %s contributes no series:\n%s", pillar, r.Text)
		}
	}
	if r.Values["jobs"] == 0 {
		t.Fatal("applications pillar has no job records")
	}
}

func TestFig2StagedPipeline(t *testing.T) {
	r, err := Fig2(1, 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["stages"] != 4 {
		t.Fatalf("stages = %v", r.Values["stages"])
	}
	for _, typ := range []string{"descriptive", "diagnostic", "predictive", "prescriptive"} {
		if r.Values["us_"+typ] < 0 {
			t.Fatalf("stage %s has no timing", typ)
		}
		if !strings.Contains(r.Text, typ) {
			t.Fatalf("report missing stage %s", typ)
		}
	}
}

func TestFig3ENIImprovesPUE(t *testing.T) {
	r, err := Fig3ENI(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["eni_pue"] >= r.Values["baseline_pue"] {
		t.Fatalf("ENI control did not improve PUE: %v vs %v\n%s",
			r.Values["eni_pue"], r.Values["baseline_pue"], r.Text)
	}
}

func TestFig3GEOPMSavesEnergy(t *testing.T) {
	r, err := Fig3GEOPM(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["saving_pct"] <= 0 {
		t.Fatalf("no energy saving:\n%s", r.Text)
	}
	if r.Values["stretch_pct"] > 20 {
		t.Fatalf("runtime stretch too large: %v%%", r.Values["stretch_pct"])
	}
}

func TestFig3PowerstackHoldsBudget(t *testing.T) {
	r, err := Fig3Powerstack(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The cap must bite: capped peak clearly below uncapped peak.
	if r.Values["capped_peak_w"] >= r.Values["baseline_peak_w"] {
		t.Fatalf("budget did not reduce peak:\n%s", r.Text)
	}
}

func TestSurveyReproducesPaper(t *testing.T) {
	r, err := Survey()
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["single_pillar"] <= r.Values["multi_pillar"] {
		t.Fatalf("survey shape wrong:\n%s", r.Text)
	}
	if r.Values["works"] < 50 {
		t.Fatalf("works = %v", r.Values["works"])
	}
}

func TestLLNL(t *testing.T) {
	r, err := LLNL(5, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["threshold_w"] <= 0 {
		t.Fatalf("no threshold:\n%s", r.Text)
	}
}

func TestPUEControlModesOrdering(t *testing.T) {
	r, err := PUEControlModes(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	reactive := r.Values["pue_reactive-chiller"]
	static := r.Values["pue_static-auto"]
	proactive := r.Values["pue_proactive-oda"]
	if !(proactive <= static && static < reactive) {
		t.Fatalf("PUE ordering not reproduced: proactive %.4f, static %.4f, reactive %.4f",
			proactive, static, reactive)
	}
}

func TestSchedulerAblation(t *testing.T) {
	r, err := SchedulerAblation(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["wait_easy"] > r.Values["wait_fcfs"] {
		t.Fatalf("EASY should not lose to FCFS:\n%s", r.Text)
	}
}

func TestTSDBAblation(t *testing.T) {
	r, err := TSDBAblation(5, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["ratio"] <= 2 {
		t.Fatalf("compression ratio = %v", r.Values["ratio"])
	}
	if r.Values["after_downsample"] >= r.Values["samples"] {
		t.Fatal("downsampling did not shrink the store")
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, n := range Names() {
		if n == "table1" || n == "pue" || n == "llnl" || n == "sched" {
			continue // exercised above; skip the slowest double-runs
		}
		if _, err := ByName(n, 3); err != nil {
			t.Fatalf("experiment %s: %v", n, err)
		}
	}
	if _, err := ByName("bogus", 1); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestAllExperimentsSequence(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow; skipped with -short")
	}
	reports, err := All(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(Names()) {
		t.Fatalf("got %d reports, want %d", len(reports), len(Names()))
	}
	for i, r := range reports {
		if r.Name != Names()[i] {
			t.Fatalf("report %d is %s, want %s", i, r.Name, Names()[i])
		}
		if r.Text == "" {
			t.Fatalf("report %s is empty", r.Name)
		}
	}
}
