// Package anomaly implements the detector families used by diagnostic ODA:
// robust statistical detectors (z-score, MAD, IQR), sequential detectors
// (EWMA control charts, CUSUM), a PCA residual-subspace detector for
// multi-dimensional node telemetry, and Bodik-style crisis fingerprinting.
package anomaly

import (
	"errors"
	"math"
	"sort"

	"repro/internal/ml"
	"repro/internal/stats"
)

// Event is one detected anomaly: the sample index it fired on, the observed
// value, and a unitless severity score (larger = more anomalous).
type Event struct {
	Index int
	Value float64
	Score float64
}

// Detector scores points of a univariate series; scores above 1 are
// anomalous by convention (detectors normalize their thresholds to 1).
type Detector interface {
	// Detect returns anomalous points of xs in index order.
	Detect(xs []float64) []Event
	// Name identifies the detector in reports.
	Name() string
}

// ZScore flags points whose rolling z-score magnitude exceeds Threshold.
// The window makes it adaptive to slow drift in node telemetry.
type ZScore struct {
	Window    int     // rolling window size (default 60)
	Threshold float64 // in standard deviations (default 3)
}

// Name implements Detector.
func (z *ZScore) Name() string { return "zscore" }

// Detect implements Detector.
func (z *ZScore) Detect(xs []float64) []Event {
	window := z.Window
	if window <= 1 {
		window = 60
	}
	thr := z.Threshold
	if thr <= 0 {
		thr = 3
	}
	roll := stats.NewRolling(window)
	var out []Event
	for i, x := range xs {
		if roll.Full() {
			mean, std := roll.Mean(), roll.Std()
			if std > 0 {
				score := math.Abs(x-mean) / std / thr
				if score > 1 {
					out = append(out, Event{Index: i, Value: x, Score: score})
				}
			}
		}
		roll.Add(x)
	}
	return out
}

// MAD flags points deviating from the batch median by more than Threshold
// robust standard deviations (median absolute deviation scaled by 1.4826).
// Unlike ZScore it is immune to the anomalies inflating the spread estimate.
type MAD struct {
	Threshold float64 // default 3.5 (the Iglewicz-Hoaglin recommendation)
}

// Name implements Detector.
func (m *MAD) Name() string { return "mad" }

// Detect implements Detector.
func (m *MAD) Detect(xs []float64) []Event {
	if len(xs) < 3 {
		return nil
	}
	thr := m.Threshold
	if thr <= 0 {
		thr = 3.5
	}
	med, err := stats.Median(xs)
	if err != nil {
		return nil
	}
	mad, err := stats.MAD(xs)
	if err != nil || mad == 0 {
		return nil
	}
	var out []Event
	for i, x := range xs {
		score := math.Abs(x-med) / mad / thr
		if score > 1 {
			out = append(out, Event{Index: i, Value: x, Score: score})
		}
	}
	return out
}

// IQR implements the Tukey fence: points beyond K interquartile ranges
// outside [Q1, Q3] are anomalous.
type IQR struct {
	K float64 // fence multiplier (default 1.5)
}

// Name implements Detector.
func (d *IQR) Name() string { return "iqr" }

// Detect implements Detector.
func (d *IQR) Detect(xs []float64) []Event {
	if len(xs) < 4 {
		return nil
	}
	k := d.K
	if k <= 0 {
		k = 1.5
	}
	qs, err := stats.Quantiles(xs, 0.25, 0.75)
	if err != nil {
		return nil
	}
	q1, q3 := qs[0], qs[1]
	iqr := q3 - q1
	if iqr == 0 {
		return nil
	}
	lo, hi := q1-k*iqr, q3+k*iqr
	var out []Event
	for i, x := range xs {
		var score float64
		switch {
		case x < lo:
			score = 1 + (lo-x)/iqr
		case x > hi:
			score = 1 + (x-hi)/iqr
		default:
			continue
		}
		out = append(out, Event{Index: i, Value: x, Score: score})
	}
	return out
}

// CUSUM is a two-sided cumulative-sum change detector: it fires when the
// cumulative drift of the series from its baseline mean exceeds the decision
// threshold H (in standard deviations), catching slow regime changes that
// point detectors miss (e.g. a degrading pump).
type CUSUM struct {
	// Baseline is the number of initial samples used to estimate the
	// in-control mean and std (default 50).
	Baseline int
	// Slack is the allowance k in std units (default 0.5).
	Slack float64
	// H is the decision threshold in std units (default 5).
	H float64
}

// Name implements Detector.
func (c *CUSUM) Name() string { return "cusum" }

// Detect implements Detector.
func (c *CUSUM) Detect(xs []float64) []Event {
	baseline := c.Baseline
	if baseline <= 1 {
		baseline = 50
	}
	if len(xs) <= baseline {
		return nil
	}
	slack := c.Slack
	if slack <= 0 {
		slack = 0.5
	}
	h := c.H
	if h <= 0 {
		h = 5
	}
	base, err := stats.Summarize(xs[:baseline])
	if err != nil || base.Std == 0 {
		return nil
	}
	var hi, lo float64
	var out []Event
	for i := baseline; i < len(xs); i++ {
		z := (xs[i] - base.Mean) / base.Std
		hi = math.Max(0, hi+z-slack)
		lo = math.Max(0, lo-z-slack)
		if hi > h || lo > h {
			score := math.Max(hi, lo) / h
			out = append(out, Event{Index: i, Value: xs[i], Score: score})
			hi, lo = 0, 0 // restart after alarm
		}
	}
	return out
}

// EWMAChart is an exponentially-weighted moving-average control chart with
// the standard steady-state control limits L*sigma*sqrt(lambda/(2-lambda)).
type EWMAChart struct {
	Lambda   float64 // EWMA weight (default 0.2)
	L        float64 // control limit width in sigmas (default 3)
	Baseline int     // samples for mean/std estimation (default 50)
}

// Name implements Detector.
func (e *EWMAChart) Name() string { return "ewma-chart" }

// Detect implements Detector.
func (e *EWMAChart) Detect(xs []float64) []Event {
	baseline := e.Baseline
	if baseline <= 1 {
		baseline = 50
	}
	if len(xs) <= baseline {
		return nil
	}
	lambda := e.Lambda
	if lambda <= 0 || lambda > 1 {
		lambda = 0.2
	}
	l := e.L
	if l <= 0 {
		l = 3
	}
	base, err := stats.Summarize(xs[:baseline])
	if err != nil || base.Std == 0 {
		return nil
	}
	limit := l * base.Std * math.Sqrt(lambda/(2-lambda))
	z := base.Mean
	var out []Event
	for i := baseline; i < len(xs); i++ {
		z = lambda*xs[i] + (1-lambda)*z
		dev := math.Abs(z - base.Mean)
		if dev > limit {
			out = append(out, Event{Index: i, Value: xs[i], Score: dev / limit})
		}
	}
	return out
}

// Ensemble combines detectors with majority voting: a point is anomalous if
// at least Quorum member detectors flag it. Scores are summed.
type Ensemble struct {
	Members []Detector
	Quorum  int // default: majority of members
}

// Name implements Detector.
func (e *Ensemble) Name() string { return "ensemble" }

// Detect implements Detector.
func (e *Ensemble) Detect(xs []float64) []Event {
	if len(e.Members) == 0 {
		return nil
	}
	quorum := e.Quorum
	if quorum <= 0 {
		quorum = len(e.Members)/2 + 1
	}
	votes := make(map[int]int)
	scores := make(map[int]float64)
	values := make(map[int]float64)
	for _, d := range e.Members {
		for _, ev := range d.Detect(xs) {
			votes[ev.Index]++
			scores[ev.Index] += ev.Score
			values[ev.Index] = ev.Value
		}
	}
	var out []Event
	for idx, v := range votes {
		if v >= quorum {
			out = append(out, Event{Index: idx, Value: values[idx], Score: scores[idx]})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// Subspace is a PCA residual-subspace detector for multi-dimensional
// telemetry vectors (one vector per timestep, e.g. all of a node's sensors).
// It retains enough principal components to explain VarianceTarget of the
// training variance and scores vectors by their residual (Q-statistic)
// relative to the training distribution.
type Subspace struct {
	// VarianceTarget in (0,1]; default 0.95.
	VarianceTarget float64
	// Threshold multiplies the training residual's P99 to set the alarm
	// level; default 1.
	Threshold float64

	pca   ml.PCA
	k     int
	alarm float64
}

// Fit learns the normal-behaviour subspace from rows of healthy telemetry.
func (s *Subspace) Fit(train *ml.Matrix) error {
	if train.Rows < 4 {
		return errors.New("anomaly: subspace needs at least 4 training rows")
	}
	target := s.VarianceTarget
	if target <= 0 || target > 1 {
		target = 0.95
	}
	if err := s.pca.Fit(train); err != nil {
		return err
	}
	s.k = s.pca.ComponentsFor(target)
	if s.k >= train.Cols { // keep at least one residual dimension
		s.k = train.Cols - 1
	}
	if s.k < 1 {
		s.k = 1
	}
	res := make([]float64, train.Rows)
	for i := 0; i < train.Rows; i++ {
		r, err := s.pca.ResidualNorm(train.Row(i), s.k)
		if err != nil {
			return err
		}
		res[i] = r
	}
	p99, err := stats.Quantile(res, 0.99)
	if err != nil {
		return err
	}
	thr := s.Threshold
	if thr <= 0 {
		thr = 1
	}
	s.alarm = p99 * thr
	if s.alarm == 0 {
		s.alarm = 1e-9
	}
	return nil
}

// Score returns the residual ratio for one vector; values above 1 are
// anomalous.
func (s *Subspace) Score(v []float64) (float64, error) {
	if s.alarm == 0 {
		return 0, errors.New("anomaly: subspace not fitted")
	}
	r, err := s.pca.ResidualNorm(v, s.k)
	if err != nil {
		return 0, err
	}
	return r / s.alarm, nil
}

// DetectRows scores every row of m and returns the anomalous ones.
func (s *Subspace) DetectRows(m *ml.Matrix) ([]Event, error) {
	var out []Event
	for i := 0; i < m.Rows; i++ {
		sc, err := s.Score(m.Row(i))
		if err != nil {
			return nil, err
		}
		if sc > 1 {
			out = append(out, Event{Index: i, Score: sc})
		}
	}
	return out, nil
}

// Components returns the number of retained principal components.
func (s *Subspace) Components() int { return s.k }
