package anomaly

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

// spikedSeries returns n gaussian samples with spikes injected at the given
// indices.
func spikedSeries(n int, seed int64, spikes map[int]float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 50 + rng.NormFloat64()
	}
	for i, v := range spikes {
		xs[i] = v
	}
	return xs
}

func hasIndex(events []Event, idx int) bool {
	for _, e := range events {
		if e.Index == idx {
			return true
		}
	}
	return false
}

func TestZScoreDetectsSpike(t *testing.T) {
	xs := spikedSeries(300, 1, map[int]float64{200: 120})
	d := ZScore{Window: 60, Threshold: 4}
	events := d.Detect(xs)
	if !hasIndex(events, 200) {
		t.Fatalf("spike not detected: %v", events)
	}
	for _, e := range events {
		if e.Score <= 1 {
			t.Fatalf("reported event with score <= 1: %+v", e)
		}
	}
	// Clean data should produce (almost) nothing at threshold 4.
	clean := spikedSeries(300, 2, nil)
	if evs := d.Detect(clean); len(evs) > 2 {
		t.Fatalf("too many false positives: %v", evs)
	}
}

func TestZScoreNeedsFullWindow(t *testing.T) {
	d := ZScore{Window: 100, Threshold: 3}
	if evs := d.Detect(make([]float64, 50)); evs != nil {
		t.Fatalf("no events expected before window fills, got %v", evs)
	}
}

func TestMADDetectsOutliersDespiteContamination(t *testing.T) {
	// 10% contamination: MAD still flags them all.
	xs := spikedSeries(100, 3, map[int]float64{
		5: 500, 15: 510, 25: 490, 35: 505, 45: 495,
		55: 500, 65: 508, 75: 492, 85: 501, 95: 499,
	})
	d := MAD{}
	events := d.Detect(xs)
	for _, idx := range []int{5, 15, 25, 35, 45, 55, 65, 75, 85, 95} {
		if !hasIndex(events, idx) {
			t.Fatalf("outlier at %d missed: %v", idx, events)
		}
	}
	if len(events) != 10 {
		t.Fatalf("false positives: %d events", len(events))
	}
}

func TestMADDegenerate(t *testing.T) {
	d := MAD{}
	if evs := d.Detect([]float64{1, 1}); evs != nil {
		t.Fatal("short input should yield nil")
	}
	if evs := d.Detect([]float64{5, 5, 5, 5, 5}); evs != nil {
		t.Fatal("constant input should yield nil")
	}
}

func TestIQRFences(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100, -100}
	d := IQR{}
	events := d.Detect(xs)
	if !hasIndex(events, 8) || !hasIndex(events, 9) {
		t.Fatalf("extremes not flagged: %v", events)
	}
	if hasIndex(events, 4) {
		t.Fatal("median flagged")
	}
	if evs := (&IQR{}).Detect([]float64{1, 1, 1, 1, 1}); evs != nil {
		t.Fatal("zero-IQR input should yield nil")
	}
}

func TestCUSUMDetectsLevelShift(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 400)
	for i := range xs {
		base := 10.0
		if i >= 200 {
			base = 11.5 // 1.5 sigma shift, too small for point detectors
		}
		xs[i] = base + rng.NormFloat64()
	}
	d := CUSUM{Baseline: 100}
	events := d.Detect(xs)
	if len(events) == 0 {
		t.Fatal("level shift not detected")
	}
	first := events[0].Index
	if first < 200 || first > 260 {
		t.Fatalf("first alarm at %d, want shortly after 200", first)
	}
	// Stationary series: no alarms.
	flat := spikedSeries(400, 5, nil)
	if evs := d.Detect(flat); len(evs) > 0 {
		t.Fatalf("false alarms on stationary series: %v", evs)
	}
}

func TestEWMAChartDetectsDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 300)
	for i := range xs {
		drift := 0.0
		if i >= 150 {
			drift = float64(i-150) * 0.05
		}
		xs[i] = 20 + drift + rng.NormFloat64()*0.5
	}
	d := EWMAChart{Baseline: 100}
	events := d.Detect(xs)
	if len(events) == 0 {
		t.Fatal("drift not detected")
	}
	if events[0].Index < 150 {
		t.Fatalf("alarm before drift began: %d", events[0].Index)
	}
}

func TestEnsembleQuorum(t *testing.T) {
	xs := spikedSeries(300, 7, map[int]float64{150: 200})
	ens := Ensemble{Members: []Detector{
		&ZScore{Window: 50, Threshold: 4},
		&MAD{},
		&IQR{K: 3},
	}}
	events := ens.Detect(xs)
	if !hasIndex(events, 150) {
		t.Fatalf("ensemble missed obvious spike: %v", events)
	}
	// Quorum higher than any point's votes suppresses everything.
	strict := Ensemble{Members: ens.Members, Quorum: 99}
	if evs := strict.Detect(xs); len(evs) != 0 {
		t.Fatalf("quorum 99 should suppress: %v", evs)
	}
	empty := Ensemble{}
	if evs := empty.Detect(xs); evs != nil {
		t.Fatal("empty ensemble should return nil")
	}
	// Events come back sorted by index.
	multi := spikedSeries(300, 8, map[int]float64{40: 300, 220: 280, 120: 290})
	evs := ens.Detect(multi)
	for i := 1; i < len(evs); i++ {
		if evs[i].Index <= evs[i-1].Index {
			t.Fatal("ensemble events not sorted")
		}
	}
}

func TestSubspaceDetector(t *testing.T) {
	// Healthy data: x1 = x0 + small noise (strong correlation).
	rng := rand.New(rand.NewSource(9))
	n := 400
	train := ml.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		base := rng.NormFloat64() * 10
		train.Set(i, 0, base)
		train.Set(i, 1, base+rng.NormFloat64()*0.3)
		train.Set(i, 2, rng.NormFloat64())
	}
	var s Subspace
	if err := s.Fit(train); err != nil {
		t.Fatal(err)
	}
	// A point violating the correlation has a big residual even though each
	// coordinate is individually in range.
	bad := []float64{8, -8, 0}
	good := []float64{8, 8.1, 0.5}
	sb, err := s.Score(bad)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := s.Score(good)
	if err != nil {
		t.Fatal(err)
	}
	if sb <= 1 {
		t.Fatalf("correlation break not anomalous: score %v", sb)
	}
	if sg > 1 {
		t.Fatalf("healthy point flagged: score %v", sg)
	}
	test := ml.NewMatrix(2, 3)
	copy(test.Row(0), good)
	copy(test.Row(1), bad)
	events, err := s.DetectRows(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Index != 1 {
		t.Fatalf("DetectRows = %v", events)
	}
	if s.Components() < 1 {
		t.Fatal("no components retained")
	}
}

func TestSubspaceValidation(t *testing.T) {
	var s Subspace
	if _, err := s.Score([]float64{1}); err == nil {
		t.Fatal("unfitted Score should error")
	}
	if err := s.Fit(ml.NewMatrix(2, 2)); err == nil {
		t.Fatal("too few rows should error")
	}
}

func TestFingerprintRoundTrip(t *testing.T) {
	metrics := [][]float64{
		{1, 2, 3, 4, 5},
		{10, 20, 30, 40, 50},
	}
	fp, err := MakeFingerprint("healthy", metrics)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Vector) != 6 {
		t.Fatalf("vector len = %d", len(fp.Vector))
	}
	if fp.Vector[1] != 3 || fp.Vector[4] != 30 { // medians
		t.Fatalf("vector = %v", fp.Vector)
	}
	if _, err := MakeFingerprint("x", [][]float64{{}}); err == nil {
		t.Fatal("empty metric should error")
	}
}

func TestFingerprintIndexMatch(t *testing.T) {
	mk := func(label string, scale float64) Fingerprint {
		fp, _ := MakeFingerprint(label, [][]float64{
			{scale * 1, scale * 2, scale * 3},
			{scale * 10, scale * 20, scale * 30},
		})
		return fp
	}
	idx, err := NewFingerprintIndex([]Fingerprint{
		mk("healthy", 1), mk("overload", 5), mk("thermal", 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Size() != 3 {
		t.Fatal("Size")
	}
	probe := mk("", 4.8)
	label, dist, err := idx.Match(probe)
	if err != nil {
		t.Fatal(err)
	}
	if label != "overload" {
		t.Fatalf("matched %q at %v", label, dist)
	}
	exact := mk("", 10)
	if label, dist, _ := idx.Match(exact); label != "thermal" || dist > 1e-9 {
		t.Fatalf("exact match = %q, %v", label, dist)
	}
	if _, _, err := idx.Match(Fingerprint{Vector: []float64{1}}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestFingerprintIndexValidation(t *testing.T) {
	if _, err := NewFingerprintIndex(nil); err == nil {
		t.Fatal("empty library should error")
	}
	a, _ := MakeFingerprint("a", [][]float64{{1, 2}})
	b, _ := MakeFingerprint("b", [][]float64{{1, 2}, {3, 4}})
	if _, err := NewFingerprintIndex([]Fingerprint{a, b}); err == nil {
		t.Fatal("mixed dimensions should error")
	}
}

func TestDetectorNames(t *testing.T) {
	ds := []Detector{&ZScore{}, &MAD{}, &IQR{}, &CUSUM{}, &EWMAChart{}, &Ensemble{}}
	seen := map[string]bool{}
	for _, d := range ds {
		n := d.Name()
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestScoresAreFinite(t *testing.T) {
	xs := spikedSeries(500, 11, map[int]float64{100: 1e6, 300: -1e6})
	for _, d := range []Detector{&ZScore{}, &MAD{}, &IQR{}, &CUSUM{}, &EWMAChart{}} {
		for _, e := range d.Detect(xs) {
			if math.IsNaN(e.Score) || math.IsInf(e.Score, 0) {
				t.Fatalf("%s produced non-finite score: %+v", d.Name(), e)
			}
		}
	}
}
