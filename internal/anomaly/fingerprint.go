package anomaly

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Fingerprint summarizes a multi-metric system state epoch as a compact
// vector of per-metric quantiles, following Bodik et al.'s "Fingerprinting
// the datacenter": each metric contributes its P25/P50/P95 over the epoch,
// which is robust to which individual node misbehaves.
type Fingerprint struct {
	Label  string    // crisis/state label, e.g. "overload", "healthy"
	Vector []float64 // 3 entries per metric: P25, P50, P95
}

// MakeFingerprint builds a fingerprint from per-metric observations across
// an epoch. metrics[i] holds all observations of metric i (e.g. one value
// per node). Every metric must be non-empty.
func MakeFingerprint(label string, metrics [][]float64) (Fingerprint, error) {
	vec := make([]float64, 0, len(metrics)*3)
	for i, m := range metrics {
		qs, err := stats.Quantiles(m, 0.25, 0.5, 0.95)
		if err != nil {
			return Fingerprint{}, fmt.Errorf("anomaly: metric %d: %w", i, err)
		}
		vec = append(vec, qs...)
	}
	return Fingerprint{Label: label, Vector: vec}, nil
}

// FingerprintIndex matches observed fingerprints against a library of known
// labelled crises, enabling "we have seen this before" diagnosis.
type FingerprintIndex struct {
	known []Fingerprint
	// scale normalizes each vector dimension by its spread across the
	// library so no single metric dominates the distance.
	scale []float64
}

// NewFingerprintIndex builds an index over the given labelled fingerprints.
// All fingerprints must share the same vector length.
func NewFingerprintIndex(known []Fingerprint) (*FingerprintIndex, error) {
	if len(known) == 0 {
		return nil, errors.New("anomaly: empty fingerprint library")
	}
	d := len(known[0].Vector)
	for _, f := range known {
		if len(f.Vector) != d {
			return nil, errors.New("anomaly: fingerprint dimension mismatch")
		}
	}
	idx := &FingerprintIndex{known: known, scale: make([]float64, d)}
	for j := 0; j < d; j++ {
		col := make([]float64, len(known))
		for i, f := range known {
			col[i] = f.Vector[j]
		}
		s := stats.Std(col)
		if s == 0 {
			s = 1
		}
		idx.scale[j] = s
	}
	return idx, nil
}

// Match returns the label of the closest known fingerprint and the
// normalized distance to it.
func (idx *FingerprintIndex) Match(observed Fingerprint) (string, float64, error) {
	if len(observed.Vector) != len(idx.scale) {
		return "", 0, errors.New("anomaly: fingerprint dimension mismatch")
	}
	bestLabel, bestDist := "", math.Inf(1)
	for _, f := range idx.known {
		var d2 float64
		for j := range f.Vector {
			dd := (f.Vector[j] - observed.Vector[j]) / idx.scale[j]
			d2 += dd * dd
		}
		d := math.Sqrt(d2)
		if d < bestDist {
			bestLabel, bestDist = f.Label, d
		}
	}
	return bestLabel, bestDist, nil
}

// Size returns the number of fingerprints in the library.
func (idx *FingerprintIndex) Size() int { return len(idx.known) }
