package anomaly

import (
	"math/rand"
	"testing"
)

func benchSeries(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 50 + rng.NormFloat64()
	}
	xs[n/2] = 500
	return xs
}

// Detector throughput on a 10k-sample window with one spike.
func benchDetector(b *testing.B, d Detector) {
	xs := benchSeries(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if evs := d.Detect(xs); len(evs) == 0 {
			b.Fatal("spike missed")
		}
	}
}

func BenchmarkDetectZScore(b *testing.B)    { benchDetector(b, &ZScore{Window: 60, Threshold: 4}) }
func BenchmarkDetectMAD(b *testing.B)       { benchDetector(b, &MAD{}) }
func BenchmarkDetectIQR(b *testing.B)       { benchDetector(b, &IQR{}) }
func BenchmarkDetectCUSUM(b *testing.B)     { benchDetector(b, &CUSUM{Baseline: 100, H: 4}) }
func BenchmarkDetectEWMAChart(b *testing.B) { benchDetector(b, &EWMAChart{Baseline: 100}) }
