package par

import (
	"runtime"
	"sync"
	"time"
)

// Tuner sizes a worker pool from an exponentially-weighted moving average
// of observed per-item cost. Fork-join parallelism only pays when each
// item's work dwarfs the goroutine handoff (~1-5µs); below that the pool
// should collapse to the inline serial path. The tuner learns where a
// workload sits by timing whole batches and recommending:
//
//	workers = clamp(ewmaPerItemCost / SpawnCost, 1, GOMAXPROCS)
//
// so cheap items (sub-microsecond grid cells, trivial simulation steps)
// run serially, moderately priced items get a few workers, and expensive
// items saturate the machine. Before the first observation it falls back
// to one worker per logical CPU, the historical default.
//
// Tuner is safe for concurrent use; the zero value is ready.
type Tuner struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; 0 uses 0.3.
	Alpha float64
	// SpawnCost is the assumed per-worker fork-join overhead; 0 uses 4µs.
	SpawnCost time.Duration

	mu      sync.Mutex
	ewma    float64 // smoothed per-item cost, nanoseconds
	samples uint64
}

// Observe records that n items took d in total. Zero or negative inputs
// are ignored.
func (t *Tuner) Observe(n int, d time.Duration) {
	if n <= 0 || d <= 0 {
		return
	}
	perItem := float64(d.Nanoseconds()) / float64(n)
	alpha := t.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	t.mu.Lock()
	if t.samples == 0 {
		t.ewma = perItem
	} else {
		t.ewma = alpha*perItem + (1-alpha)*t.ewma
	}
	t.samples++
	t.mu.Unlock()
}

// Recommend returns the worker count for a batch of n items: 0 items → 0,
// no observations yet → min(n, GOMAXPROCS), otherwise the cost-scaled
// clamp described on Tuner.
func (t *Tuner) Recommend(n int) int {
	if n <= 0 {
		return 0
	}
	maxW := runtime.GOMAXPROCS(0)
	if n < maxW {
		maxW = n
	}
	t.mu.Lock()
	samples, ewma := t.samples, t.ewma
	t.mu.Unlock()
	if samples == 0 {
		return maxW
	}
	spawn := t.SpawnCost
	if spawn <= 0 {
		spawn = 4 * time.Microsecond
	}
	w := int(ewma / float64(spawn.Nanoseconds()))
	if w < 1 {
		return 1
	}
	if w > maxW {
		return maxW
	}
	return w
}

// Samples returns how many batches have been observed.
func (t *Tuner) Samples() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.samples
}

// PerItemCost returns the current EWMA estimate of one item's cost (0
// before any observation).
func (t *Tuner) PerItemCost() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Duration(t.ewma)
}
