// Package par provides the small fork-join helper the engine's hot paths
// share: bounded, contiguous-range parallelism with inline execution when a
// single worker (or a tiny input) makes goroutines pure overhead.
//
// The helpers are deliberately minimal — no futures, no error plumbing — so
// callers keep deterministic data flow: workers write into disjoint,
// index-addressed slots and the caller reduces in index order afterwards,
// which keeps floating-point results byte-identical to a serial loop
// regardless of worker count.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: n > 0 is used as-is, n <= 0 means
// one worker per logical CPU (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Ranges splits [0, n) into up to `workers` contiguous ranges and invokes
// fn(lo, hi) for each, blocking until all complete. With workers <= 1 or
// n <= 1 the single range runs inline on the calling goroutine, so the
// serial path allocates nothing. fn must be safe to run concurrently on
// disjoint ranges.
func Ranges(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
