package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestRangesCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 16, 63, 64, 65, 1000} {
			hits := make([]int32, n)
			Ranges(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestRangesSerialRunsInline(t *testing.T) {
	var calls int
	Ranges(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected single [0,10) range, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected exactly one inline call, got %d", calls)
	}
}

func TestRangesDeterministicReduce(t *testing.T) {
	// The pattern every hot path uses: parallel fill of index-addressed
	// slots, serial reduce. The reduce must not depend on worker count.
	n := 257
	ref := make([]float64, n)
	Ranges(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = float64(i) * 1.000001
		}
	})
	for _, workers := range []int{2, 4, 8} {
		buf := make([]float64, n)
		Ranges(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				buf[i] = float64(i) * 1.000001
			}
		})
		var a, b float64
		for i := 0; i < n; i++ {
			a += ref[i]
			b += buf[i]
		}
		if a != b {
			t.Fatalf("workers=%d: sums differ: %v vs %v", workers, a, b)
		}
	}
}
