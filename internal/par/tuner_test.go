package par

import (
	"runtime"
	"testing"
	"time"
)

func TestTunerDefaultsToGOMAXPROCS(t *testing.T) {
	var tu Tuner
	want := runtime.GOMAXPROCS(0)
	if n := 2 * want; tu.Recommend(n) != want {
		t.Fatalf("unobserved Recommend = %d, want %d", tu.Recommend(n), want)
	}
	if got := tu.Recommend(1); got != 1 {
		t.Fatalf("Recommend(1) = %d, want 1", got)
	}
	if got := tu.Recommend(0); got != 0 {
		t.Fatalf("Recommend(0) = %d, want 0", got)
	}
}

func TestTunerForcesSerialForCheapItems(t *testing.T) {
	var tu Tuner
	// 1000 items in 100µs → 100ns/item, far below the spawn cost: the pool
	// must collapse to the serial path.
	tu.Observe(1000, 100*time.Microsecond)
	if got := tu.Recommend(1000); got != 1 {
		t.Fatalf("cheap items: Recommend = %d, want 1 (serial)", got)
	}
}

func TestTunerSaturatesForExpensiveItems(t *testing.T) {
	var tu Tuner
	// 10ms per item: worth every core.
	tu.Observe(10, 100*time.Millisecond)
	want := runtime.GOMAXPROCS(0)
	if got := tu.Recommend(100); got != want {
		t.Fatalf("expensive items: Recommend = %d, want %d", got, want)
	}
	// Never more workers than items.
	if got := tu.Recommend(2); got > 2 {
		t.Fatalf("Recommend(2) = %d, want <= 2", got)
	}
}

func TestTunerScalesBetweenExtremes(t *testing.T) {
	tu := Tuner{SpawnCost: 4 * time.Microsecond}
	// 12µs per item with a 4µs spawn cost → 3 workers.
	tu.Observe(100, 1200*time.Microsecond)
	if runtime.GOMAXPROCS(0) < 3 {
		t.Skip("needs >= 3 CPUs to observe intermediate sizing")
	}
	if got := tu.Recommend(100); got != 3 {
		t.Fatalf("Recommend = %d, want 3", got)
	}
}

func TestTunerEWMAAdapts(t *testing.T) {
	var tu Tuner
	tu.Observe(10, 100*time.Millisecond) // expensive history
	for i := 0; i < 40; i++ {
		tu.Observe(1000, 100*time.Microsecond) // workload turned cheap
	}
	if got := tu.Recommend(1000); got != 1 {
		t.Fatalf("after cheap runs: Recommend = %d, want 1", got)
	}
	if tu.Samples() != 41 {
		t.Fatalf("Samples = %d, want 41", tu.Samples())
	}
	if tu.PerItemCost() <= 0 {
		t.Fatal("PerItemCost should be positive after observations")
	}
}

func TestTunerIgnoresDegenerateObservations(t *testing.T) {
	var tu Tuner
	tu.Observe(0, time.Second)
	tu.Observe(10, 0)
	tu.Observe(-5, -time.Second)
	if tu.Samples() != 0 {
		t.Fatalf("degenerate observations were recorded: %d", tu.Samples())
	}
}
