package oda

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

func cap1(name string, cells ...Cell) Capability {
	return CapabilityFunc{
		M: Meta{Name: name, Description: "test " + name, Cells: cells, Refs: []string{"[0]"}},
		Fn: func(ctx *RunContext) (Result, error) {
			return Result{Summary: name, Values: map[string]float64{"x": 1}}, nil
		},
	}
}

func TestTaxonomy(t *testing.T) {
	if len(Pillars()) != NumPillars || len(Types()) != NumTypes {
		t.Fatal("taxonomy sizes")
	}
	if len(AllCells()) != 16 {
		t.Fatalf("cells = %d", len(AllCells()))
	}
	seen := map[string]bool{}
	for _, c := range AllCells() {
		s := c.String()
		if seen[s] {
			t.Fatalf("duplicate cell %s", s)
		}
		seen[s] = true
	}
	for _, typ := range Types() {
		if typ.Question() == "unknown" {
			t.Fatalf("%s has no question", typ)
		}
	}
	if Pillar(99).String() == "" || Type(99).String() == "" {
		t.Fatal("unknown enum should render")
	}
}

func TestGridRegisterValidation(t *testing.T) {
	g := NewGrid()
	c := Cell{Pillar: SystemHardware, Type: Diagnostic}
	if err := g.Register(cap1("a", c)); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(cap1("a", c)); err == nil {
		t.Fatal("duplicate name should error")
	}
	if err := g.Register(cap1("", c)); err == nil {
		t.Fatal("empty name should error")
	}
	if err := g.Register(cap1("nocells")); err == nil {
		t.Fatal("no cells should error")
	}
	if err := g.Register(cap1("bad", Cell{Pillar: 9, Type: Diagnostic})); err == nil {
		t.Fatal("invalid cell should error")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got, ok := g.Get("a"); !ok || got.Meta().Name != "a" {
		t.Fatal("Get failed")
	}
	if _, ok := g.Get("zz"); ok {
		t.Fatal("missing capability should not resolve")
	}
}

func TestGridCoverageAndGaps(t *testing.T) {
	g := NewGrid()
	_ = g.Register(cap1("a", Cell{BuildingInfrastructure, Descriptive}))
	_ = g.Register(cap1("b", Cell{BuildingInfrastructure, Descriptive}))
	cov := g.Coverage()
	if len(cov) != 16 {
		t.Fatalf("coverage cells = %d", len(cov))
	}
	if cov[Cell{BuildingInfrastructure, Descriptive}] != 2 {
		t.Fatal("coverage count wrong")
	}
	if gaps := g.Gaps(); len(gaps) != 15 {
		t.Fatalf("gaps = %d", len(gaps))
	}
	if caps := g.At(Cell{BuildingInfrastructure, Descriptive}); len(caps) != 2 {
		t.Fatal("At returned wrong count")
	}
}

func TestGridMultiPillarMultiType(t *testing.T) {
	g := NewGrid()
	_ = g.Register(cap1("single", Cell{SystemHardware, Diagnostic}))
	_ = g.Register(cap1("xpillar",
		Cell{SystemHardware, Prescriptive}, Cell{SystemSoftware, Prescriptive}))
	_ = g.Register(cap1("xtype",
		Cell{SystemHardware, Predictive}, Cell{SystemHardware, Prescriptive}))
	mp := g.MultiPillar()
	if len(mp) != 1 || mp[0].Meta().Name != "xpillar" {
		t.Fatalf("MultiPillar = %v", mp)
	}
	mt := g.MultiType()
	if len(mt) != 1 || mt[0].Meta().Name != "xtype" {
		t.Fatalf("MultiType = %v", mt)
	}
}

func TestGridRunAllCollectsErrors(t *testing.T) {
	g := NewGrid()
	_ = g.Register(cap1("ok", Cell{SystemHardware, Descriptive}))
	_ = g.Register(CapabilityFunc{
		M: Meta{Name: "broken", Cells: []Cell{{SystemHardware, Descriptive}}},
		Fn: func(ctx *RunContext) (Result, error) {
			return Result{}, errors.New("boom")
		},
	})
	results, errs := g.RunAll(&RunContext{})
	if len(results) != 1 || len(errs) != 1 {
		t.Fatalf("results=%d errs=%d", len(results), len(errs))
	}
	if results["ok"].Value("x") != 1 {
		t.Fatal("result payload lost")
	}
	if errs["broken"] == nil {
		t.Fatal("error not attributed")
	}
}

func TestRenderTableShape(t *testing.T) {
	g := NewGrid()
	_ = g.Register(cap1("pue-kpi", Cell{BuildingInfrastructure, Descriptive}))
	table := g.RenderTable()
	lines := strings.Split(strings.TrimSpace(table), "\n")
	// Header + separator + 4 type rows.
	if len(lines) != 6 {
		t.Fatalf("table lines = %d:\n%s", len(lines), table)
	}
	if !strings.Contains(lines[2], "Prescriptive") {
		t.Fatalf("first data row should be prescriptive: %s", lines[2])
	}
	if !strings.Contains(lines[5], "pue-kpi") {
		t.Fatalf("descriptive row missing capability: %s", lines[5])
	}
}

func TestPipelineStagedOrder(t *testing.T) {
	var p Pipeline
	if err := p.Append(Descriptive, cap1("d", Cell{SystemHardware, Descriptive})); err != nil {
		t.Fatal(err)
	}
	if err := p.Append(Diagnostic, cap1("g", Cell{SystemHardware, Diagnostic})); err != nil {
		t.Fatal(err)
	}
	// Same type twice is allowed.
	if err := p.Append(Diagnostic, cap1("g2", Cell{SystemHardware, Diagnostic})); err != nil {
		t.Fatal(err)
	}
	// Going backwards violates the staged model.
	if err := p.Append(Descriptive, cap1("d2", Cell{SystemHardware, Descriptive})); err == nil {
		t.Fatal("backwards stage should error")
	}
	if err := p.Append(Type(9), cap1("x", Cell{SystemHardware, Descriptive})); err == nil {
		t.Fatal("invalid type should error")
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestPipelineThreadsResults(t *testing.T) {
	var p Pipeline
	_ = p.Append(Descriptive, CapabilityFunc{
		M: Meta{Name: "first", Cells: []Cell{{SystemHardware, Descriptive}}},
		Fn: func(ctx *RunContext) (Result, error) {
			if ctx.Upstream != nil {
				t.Error("first stage should have no upstream")
			}
			return Result{Values: map[string]float64{"v": 21}}, nil
		},
	})
	_ = p.Append(Prescriptive, CapabilityFunc{
		M: Meta{Name: "second", Cells: []Cell{{SystemHardware, Prescriptive}}},
		Fn: func(ctx *RunContext) (Result, error) {
			if ctx.Upstream == nil {
				t.Error("second stage missing upstream")
				return Result{}, nil
			}
			return Result{Values: map[string]float64{"v": ctx.Upstream.Value("v") * 2}}, nil
		},
	})
	results, err := p.Run(&RunContext{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[1].Result.Value("v") != 42 {
		t.Fatalf("pipeline results = %+v", results)
	}
	for _, r := range results {
		if r.Duration < 0 {
			t.Fatal("negative duration")
		}
	}
}

func TestPipelineStopsOnError(t *testing.T) {
	var p Pipeline
	_ = p.Append(Descriptive, CapabilityFunc{
		M:  Meta{Name: "boom", Cells: []Cell{{SystemHardware, Descriptive}}},
		Fn: func(ctx *RunContext) (Result, error) { return Result{}, errors.New("bad") },
	})
	_ = p.Append(Diagnostic, cap1("never", Cell{SystemHardware, Diagnostic}))
	results, err := p.Run(&RunContext{})
	if err == nil || len(results) != 0 {
		t.Fatalf("expected failure at stage 0, got %v, %v", results, err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error should name the stage: %v", err)
	}
}

func TestRunContextCarriesStore(t *testing.T) {
	store := timeseries.NewStore(0)
	id := metric.ID{Name: "m"}
	_ = store.Append(id, metric.Gauge, "", 1, 5)
	c := CapabilityFunc{
		M: Meta{Name: "probe", Cells: []Cell{{SystemHardware, Descriptive}}},
		Fn: func(ctx *RunContext) (Result, error) {
			vals, err := ctx.Store.SeriesValues(id, ctx.From, ctx.To)
			if err != nil {
				return Result{}, err
			}
			return Result{Values: map[string]float64{"n": float64(len(vals))}}, nil
		},
	}
	res, err := c.Run(&RunContext{Store: store, From: 0, To: 10})
	if err != nil || res.Value("n") != 1 {
		t.Fatalf("res = %+v, %v", res, err)
	}
}

// slowCap reports how many capabilities are in flight at once, so tests can
// assert both real concurrency and exclusive serialization.
func slowCap(name string, exclusive bool, inFlight, peak *atomic.Int32) Capability {
	return CapabilityFunc{
		M: Meta{
			Name:        name,
			Description: "test " + name,
			Cells:       []Cell{{SystemHardware, Descriptive}},
			Exclusive:   exclusive,
		},
		Fn: func(ctx *RunContext) (Result, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
			return Result{Summary: name, Values: map[string]float64{"x": float64(len(name))}}, nil
		},
	}
}

// TestGridRunAllParallelMatchesSerial runs the same grid with a serial and a
// parallel pool and requires identical result and error maps.
func TestGridRunAllParallelMatchesSerial(t *testing.T) {
	build := func() *Grid {
		g := NewGrid()
		for i := 0; i < 12; i++ {
			name := fmt.Sprintf("cap%02d", i)
			if i%4 == 3 {
				_ = g.Register(CapabilityFunc{
					M:  Meta{Name: name, Cells: []Cell{{SystemSoftware, Diagnostic}}},
					Fn: func(ctx *RunContext) (Result, error) { return Result{}, errors.New("boom " + name) },
				})
				continue
			}
			_ = g.Register(cap1(name, Cell{SystemHardware, Descriptive}))
		}
		return g
	}

	serial := build()
	serial.SetWorkers(1)
	wantRes, wantErrs := serial.RunAll(&RunContext{})

	parallel := build()
	parallel.SetWorkers(8)
	gotRes, gotErrs := parallel.RunAll(&RunContext{})

	if len(gotRes) != len(wantRes) || len(gotErrs) != len(wantErrs) {
		t.Fatalf("parallel RunAll: %d results/%d errors, serial: %d/%d",
			len(gotRes), len(gotErrs), len(wantRes), len(wantErrs))
	}
	for name, want := range wantRes {
		got, ok := gotRes[name]
		if !ok || got.Summary != want.Summary || got.Value("x") != want.Value("x") {
			t.Fatalf("result %q: parallel %+v, serial %+v", name, got, want)
		}
	}
	for name, want := range wantErrs {
		got, ok := gotErrs[name]
		if !ok || got.Error() != want.Error() {
			t.Fatalf("error %q: parallel %v, serial %v", name, got, want)
		}
	}
}

// TestGridRunAllExclusiveSerialized checks that Exclusive capabilities never
// overlap each other or the concurrent sweep, while non-exclusive ones do
// actually run concurrently when workers allow.
func TestGridRunAllExclusiveSerialized(t *testing.T) {
	var (
		concIn, concPeak atomic.Int32
		exclIn, exclPeak atomic.Int32
	)
	g := NewGrid()
	for i := 0; i < 8; i++ {
		_ = g.Register(slowCap(fmt.Sprintf("conc%d", i), false, &concIn, &concPeak))
	}
	var order []string
	var orderMu sync.Mutex
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("excl%d", i)
		inner := slowCap(name, true, &exclIn, &exclPeak)
		_ = g.Register(CapabilityFunc{
			M: inner.Meta(),
			Fn: func(ctx *RunContext) (Result, error) {
				if concIn.Load() != 0 {
					t.Errorf("%s ran while concurrent sweep still in flight", name)
				}
				orderMu.Lock()
				order = append(order, name)
				orderMu.Unlock()
				return inner.Run(ctx)
			},
		})
	}
	g.SetWorkers(4)
	results, errs := g.RunAll(&RunContext{})
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(results) != 12 {
		t.Fatalf("results = %d, want 12", len(results))
	}
	if exclPeak.Load() != 1 {
		t.Fatalf("exclusive peak concurrency = %d, want 1", exclPeak.Load())
	}
	want := []string{"excl0", "excl1", "excl2", "excl3"}
	if len(order) != len(want) {
		t.Fatalf("exclusive order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("exclusive order = %v, want registration order %v", order, want)
		}
	}
	if runtime.GOMAXPROCS(0) > 1 && concPeak.Load() < 2 {
		t.Fatalf("concurrent peak = %d, expected >= 2 with 4 workers", concPeak.Load())
	}
}

// TestGridRunAllConcurrentInvocations drives RunAll itself from several
// goroutines to exercise the grid's read paths under -race.
func TestGridRunAllConcurrentInvocations(t *testing.T) {
	g := NewGrid()
	store := timeseries.NewStore(0)
	for i := 0; i < 6; i++ {
		_ = g.Register(cap1(fmt.Sprintf("c%d", i), Cell{SystemHardware, Descriptive}))
	}
	g.SetWorkers(2)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				results, errs := g.RunAll(&RunContext{Store: store})
				if len(results) != 6 || len(errs) != 0 {
					t.Errorf("RunAll = %d results, %d errors", len(results), len(errs))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestGridAutoTuneCollapsesToSerial seeds the auto-tuner with a cheap
// observation and checks the next auto-sized sweep runs serially, while an
// explicit SetWorkers still pins the pool.
func TestGridAutoTuneCollapsesToSerial(t *testing.T) {
	g := NewGrid()
	for i := 0; i < 6; i++ {
		_ = g.Register(cap1(fmt.Sprintf("cheap%d", i), Cell{SystemHardware, Descriptive}))
	}
	// 100ns per item, far below the fork-join spawn cost: the next auto
	// sweep must take the serial path.
	g.tuner.Observe(1000, 100*time.Microsecond)
	g.RunAll(&RunContext{})
	if got := g.LastWorkers(); got != 1 {
		t.Fatalf("cheap sweep used %d workers, want 1 (serial)", got)
	}
	// Explicit worker counts bypass the tuner entirely.
	g.SetWorkers(4)
	g.RunAll(&RunContext{})
	if got := g.LastWorkers(); got != 4 {
		t.Fatalf("pinned sweep used %d workers, want 4", got)
	}
}
