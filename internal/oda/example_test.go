package oda_test

import (
	"fmt"

	"repro/internal/oda"
)

// ExampleGrid shows how capabilities register into the 4x4 framework and
// how coverage analysis reads back out.
func ExampleGrid() {
	g := oda.NewGrid()
	_ = g.Register(oda.CapabilityFunc{
		M: oda.Meta{
			Name:        "pue-kpi",
			Description: "PUE calculation",
			Cells:       []oda.Cell{{Pillar: oda.BuildingInfrastructure, Type: oda.Descriptive}},
			Refs:        []string{"[4]"},
		},
		Fn: func(ctx *oda.RunContext) (oda.Result, error) {
			return oda.Result{Summary: "PUE 1.12"}, nil
		},
	})
	fmt.Println("capabilities:", g.Len())
	fmt.Println("empty cells:", len(g.Gaps()))
	results, _ := g.RunAll(&oda.RunContext{})
	fmt.Println("pue-kpi:", results["pue-kpi"].Summary)
	// Output:
	// capabilities: 1
	// empty cells: 15
	// pue-kpi: PUE 1.12
}

// ExamplePipeline demonstrates the staged maturity model of Fig. 2: stages
// must move from hindsight toward foresight, and each stage sees its
// predecessor's result.
func ExamplePipeline() {
	mk := func(name string, t oda.Type, fn func(up *oda.Result) float64) oda.Capability {
		return oda.CapabilityFunc{
			M: oda.Meta{Name: name, Cells: []oda.Cell{{Pillar: oda.SystemHardware, Type: t}}},
			Fn: func(ctx *oda.RunContext) (oda.Result, error) {
				return oda.Result{Values: map[string]float64{"v": fn(ctx.Upstream)}}, nil
			},
		}
	}
	var p oda.Pipeline
	_ = p.Append(oda.Descriptive, mk("observe", oda.Descriptive, func(*oda.Result) float64 { return 21 }))
	_ = p.Append(oda.Prescriptive, mk("act", oda.Prescriptive, func(up *oda.Result) float64 { return up.Value("v") * 2 }))

	// The staged model rejects going backwards.
	err := p.Append(oda.Descriptive, mk("late", oda.Descriptive, func(*oda.Result) float64 { return 0 }))
	fmt.Println("backwards stage rejected:", err != nil)

	results, _ := p.Run(&oda.RunContext{})
	fmt.Println("final value:", results[len(results)-1].Result.Value("v"))
	// Output:
	// backwards stage rejected: true
	// final value: 42
}

// ExampleAnalyzeCatalog reproduces the paper's survey observation from
// Table I encoded as data.
func ExampleAnalyzeCatalog() {
	st := oda.AnalyzeCatalog(oda.Catalog())
	fmt.Println("works:", st.Works)
	fmt.Println("single-pillar dominate:", st.SinglePillar > st.MultiPillar)
	// Output:
	// works: 60
	// single-pillar dominate: true
}
