package oda

import "sort"

// UseCase is one bullet of the paper's Table I: a class of ODA usage,
// placed in exactly one grid cell, citing the surveyed works that realize it.
type UseCase struct {
	Cell        Cell
	Description string
	Refs        []string
}

// Catalog returns the paper's Table I verbatim as data: every use case in
// every cell with its citations. This is experiment E7's input — the
// analyses below reproduce the paper's survey observations from it.
func Catalog() []UseCase {
	bi, hw, sw, app := BuildingInfrastructure, SystemHardware, SystemSoftware, Applications
	cell := func(p Pillar, t Type) Cell { return Cell{Pillar: p, Type: t} }
	return []UseCase{
		// Prescriptive row.
		{cell(bi, Prescriptive), "Switching between types of cooling", []string{"[12]"}},
		{cell(bi, Prescriptive), "Tuning of cooling machinery", []string{"[18]", "[37]"}},
		{cell(bi, Prescriptive), "Responding to anomalies", []string{"[38]", "[39]"}},
		{cell(hw, Prescriptive), "Cooling optimization at system level", []string{"[12]"}},
		{cell(hw, Prescriptive), "CPU frequency tuning", []string{"[11]", "[24]", "[40]"}},
		{cell(hw, Prescriptive), "Tuning of hardware knobs", []string{"[20]", "[25]", "[41]"}},
		{cell(sw, Prescriptive), "Intelligent placement of tasks and threads", []string{"[42]"}},
		{cell(sw, Prescriptive), "Plan-based scheduling", []string{"[43]"}},
		{cell(sw, Prescriptive), "Power and KPI-aware scheduling", []string{"[21]", "[22]", "[23]"}},
		{cell(app, Prescriptive), "Auto-tuning of HPC applications", []string{"[28]", "[29]", "[41]"}},
		{cell(app, Prescriptive), "Code improvement recommendations", []string{"[44]"}},

		// Predictive row.
		{cell(bi, Predictive), "Predicting data center KPIs", []string{"[45]"}},
		{cell(bi, Predictive), "Predicting cooling demand", []string{"[37]"}},
		{cell(bi, Predictive), "Modelling cooling performance", []string{"[18]", "[46]"}},
		{cell(hw, Predictive), "Forecasting hardware sensors", []string{"[32]", "[47]"}},
		{cell(hw, Predictive), "Component failure prediction", []string{"[48]"}},
		{cell(hw, Predictive), "Predicting CPU instruction mixes", []string{"[11]"}},
		{cell(sw, Predictive), "Simulating HPC systems and schedulers", []string{"[49]", "[50]", "[51]"}},
		{cell(sw, Predictive), "Predicting HPC workloads", []string{"[23]"}},
		{cell(app, Predictive), "Predicting job durations", []string{"[30]", "[34]", "[35]"}},
		{cell(app, Predictive), "Predicting job resource usage", []string{"[31]", "[52]", "[53]"}},
		{cell(app, Predictive), "Predicting performance profiles of code regions", []string{"[24]"}},

		// Diagnostic row.
		{cell(bi, Diagnostic), "Fingerprinting data center crises", []string{"[38]"}},
		{cell(bi, Diagnostic), "Infrastructure anomaly detection", []string{"[54]"}},
		{cell(bi, Diagnostic), "Infrastructure stress testing", []string{"[39]"}},
		{cell(hw, Diagnostic), "Node-level anomaly detection", []string{"[17]", "[26]", "[47]"}},
		{cell(hw, Diagnostic), "System-level root cause analysis", []string{"[9]"}},
		{cell(hw, Diagnostic), "Diagnosing network contention issues", []string{"[19]", "[55]"}},
		{cell(sw, Diagnostic), "Diagnosing data locality issues", []string{"[9]"}},
		{cell(sw, Diagnostic), "Detection of software anomalies", []string{"[16]", "[56]"}},
		{cell(sw, Diagnostic), "Identifying sources of OS noise", []string{"[57]"}},
		{cell(app, Diagnostic), "Application fingerprinting", []string{"[33]", "[36]"}},
		{cell(app, Diagnostic), "Identifying performance patterns", []string{"[20]", "[31]", "[44]"}},
		{cell(app, Diagnostic), "Diagnosing code-level issues", []string{"[15]", "[27]"}},

		// Descriptive row.
		{cell(bi, Descriptive), "PUE calculation", []string{"[4]"}},
		{cell(bi, Descriptive), "Facility data processing", []string{"[8]", "[58]"}},
		{cell(bi, Descriptive), "Facility-level dashboards", []string{"[1]", "[7]"}},
		{cell(hw, Descriptive), "ITUE calculation", []string{"[59]"}},
		{cell(hw, Descriptive), "System performance indicators", []string{"[14]"}},
		{cell(hw, Descriptive), "System-level dashboards", []string{"[7]", "[8]"}},
		{cell(sw, Descriptive), "Slowdown calculation", []string{"[60]"}},
		{cell(sw, Descriptive), "Scheduler-level dashboards", []string{"[61]", "[62]"}},
		{cell(app, Descriptive), "Job performance models", []string{"[63]"}},
		{cell(app, Descriptive), "Job data processing", []string{"[8]"}},
		{cell(app, Descriptive), "Job-level dashboards", []string{"[5]", "[6]", "[10]"}},
	}
}

// Work aggregates one cited reference across every cell it appears in.
type Work struct {
	Ref   string
	Cells []Cell
}

// WorksFromCatalog groups the catalog by citation, returning one Work per
// reference with its (deduplicated) cells, sorted by ref.
func WorksFromCatalog(cat []UseCase) []Work {
	byRef := map[string]map[Cell]bool{}
	for _, uc := range cat {
		for _, ref := range uc.Refs {
			if byRef[ref] == nil {
				byRef[ref] = map[Cell]bool{}
			}
			byRef[ref][uc.Cell] = true
		}
	}
	out := make([]Work, 0, len(byRef))
	for ref, cells := range byRef {
		w := Work{Ref: ref}
		for c := range cells {
			w.Cells = append(w.Cells, c)
		}
		sort.Slice(w.Cells, func(a, b int) bool {
			if w.Cells[a].Type != w.Cells[b].Type {
				return w.Cells[a].Type < w.Cells[b].Type
			}
			return w.Cells[a].Pillar < w.Cells[b].Pillar
		})
		out = append(out, w)
	}
	sort.Slice(out, func(a, b int) bool {
		// Numeric-ish ordering of "[n]" strings: compare by length then text.
		ra, rb := out[a].Ref, out[b].Ref
		if len(ra) != len(rb) {
			return len(ra) < len(rb)
		}
		return ra < rb
	})
	return out
}

// Pillars returns the distinct pillars a work spans.
func (w Work) Pillars() []Pillar {
	seen := map[Pillar]bool{}
	var out []Pillar
	for _, c := range w.Cells {
		if !seen[c.Pillar] {
			seen[c.Pillar] = true
			out = append(out, c.Pillar)
		}
	}
	return out
}

// Types returns the distinct analytics types a work spans.
func (w Work) Types() []Type {
	seen := map[Type]bool{}
	var out []Type
	for _, c := range w.Cells {
		if !seen[c.Type] {
			seen[c.Type] = true
			out = append(out, c.Type)
		}
	}
	return out
}

// SurveyStats are the aggregate observations §IV/§V of the paper draws from
// its classification.
type SurveyStats struct {
	UseCases        int
	Works           int
	UseCasesPerCell map[Cell]int
	WorksPerPillar  map[Pillar]int
	WorksPerType    map[Type]int
	SinglePillar    int
	MultiPillar     int
	SingleType      int
	MultiType       int
}

// AnalyzeCatalog computes survey statistics.
func AnalyzeCatalog(cat []UseCase) SurveyStats {
	st := SurveyStats{
		UseCases:        len(cat),
		UseCasesPerCell: map[Cell]int{},
		WorksPerPillar:  map[Pillar]int{},
		WorksPerType:    map[Type]int{},
	}
	for _, uc := range cat {
		st.UseCasesPerCell[uc.Cell]++
	}
	works := WorksFromCatalog(cat)
	st.Works = len(works)
	for _, w := range works {
		for _, p := range w.Pillars() {
			st.WorksPerPillar[p]++
		}
		for _, t := range w.Types() {
			st.WorksPerType[t]++
		}
		if len(w.Pillars()) > 1 {
			st.MultiPillar++
		} else {
			st.SinglePillar++
		}
		if len(w.Types()) > 1 {
			st.MultiType++
		} else {
			st.SingleType++
		}
	}
	return st
}
