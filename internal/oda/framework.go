// Package oda implements the paper's primary contribution: the conceptual
// framework for HPC Operational Data Analytics. It combines the 4-Pillar
// model of energy-efficient HPC data centers (Wilde et al.) with the four
// types of data analytics (descriptive, diagnostic, predictive,
// prescriptive) into a 4x4 grid, and makes the grid executable: concrete
// analytics register as Capabilities in grid cells, staged Pipelines chain
// them in the framework's maturity order, and the survey Catalog encodes
// Table I of the paper as analyzable data.
package oda

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/par"
	"repro/internal/timeseries"
)

// Pillar is one column of the framework: a domain of the data center
// (Fig. 1 of the paper).
type Pillar uint8

// The four pillars.
const (
	BuildingInfrastructure Pillar = iota
	SystemHardware
	SystemSoftware
	Applications
	NumPillars = 4
)

// String returns the pillar's display name.
func (p Pillar) String() string {
	switch p {
	case BuildingInfrastructure:
		return "building-infrastructure"
	case SystemHardware:
		return "system-hardware"
	case SystemSoftware:
		return "system-software"
	case Applications:
		return "applications"
	default:
		return fmt.Sprintf("pillar(%d)", uint8(p))
	}
}

// Pillars lists all pillars in column order.
func Pillars() []Pillar {
	return []Pillar{BuildingInfrastructure, SystemHardware, SystemSoftware, Applications}
}

// Type is one row of the framework: the kind of analytics (Fig. 2).
type Type uint8

// The four analytics types, in maturity/stage order: each answers a more
// ambitious operational question than the previous.
const (
	// Descriptive answers "what happened?".
	Descriptive Type = iota
	// Diagnostic answers "why did it happen?".
	Diagnostic
	// Predictive answers "what will happen?".
	Predictive
	// Prescriptive answers "what should we do about it?".
	Prescriptive
	NumTypes = 4
)

// String returns the type's display name.
func (t Type) String() string {
	switch t {
	case Descriptive:
		return "descriptive"
	case Diagnostic:
		return "diagnostic"
	case Predictive:
		return "predictive"
	case Prescriptive:
		return "prescriptive"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Question returns the operational question the type answers.
func (t Type) Question() string {
	switch t {
	case Descriptive:
		return "what happened?"
	case Diagnostic:
		return "why did it happen?"
	case Predictive:
		return "what will happen?"
	case Prescriptive:
		return "what should we do about it?"
	default:
		return "unknown"
	}
}

// Types lists all analytics types in stage order.
func Types() []Type { return []Type{Descriptive, Diagnostic, Predictive, Prescriptive} }

// Cell is one of the 16 positions of the framework grid.
type Cell struct {
	Pillar Pillar
	Type   Type
}

// String renders "type/pillar".
func (c Cell) String() string { return c.Type.String() + "/" + c.Pillar.String() }

// AllCells enumerates the 16 grid cells row-major (type, then pillar).
func AllCells() []Cell {
	out := make([]Cell, 0, NumPillars*NumTypes)
	for _, t := range Types() {
		for _, p := range Pillars() {
			out = append(out, Cell{Pillar: p, Type: t})
		}
	}
	return out
}

// Meta describes a capability for classification and reporting.
type Meta struct {
	// Name is a unique slug, e.g. "pue-kpi".
	Name string
	// Description is one line for the rendered grid.
	Description string
	// Cells are the framework positions the capability covers; multi-cell
	// capabilities model the paper's multi-type / multi-pillar systems.
	Cells []Cell
	// Refs cite the surveyed works this capability reproduces ("[4]").
	Refs []string
	// Reads declares the telemetry regions and live subsystems the
	// capability observes (see Resource). Declaring reads makes store and
	// scheduler contention explicit and lets the wave scheduler order the
	// capability after writers of the same resources.
	Reads []Resource
	// Writes declares the actuation surfaces the capability mutates.
	// Capabilities whose write sets are mutually disjoint from each
	// other's read+write sets run in the same parallel wave of RunAll;
	// conflicting capabilities execute in registration order.
	Writes []Resource
	// Exclusive is the legacy coarse actuation bit. A capability that sets
	// it without declaring Writes desugars to a wildcard write (Writes
	// ["*"]): it never overlaps any other capability and keeps
	// registration order, exactly the pre-footprint semantics. Migrated
	// capabilities should declare Writes instead and drop this.
	Exclusive bool
}

// Result is what a capability produces when run over a telemetry window.
type Result struct {
	// Summary is a human-readable one-liner for dashboards/reports.
	Summary string
	// Values carries named numeric outputs for downstream stages and
	// benchmark assertions.
	Values map[string]float64
}

// Value returns a named output (0 when absent).
func (r Result) Value(name string) float64 { return r.Values[name] }

// RunContext is the environment a capability executes in.
type RunContext struct {
	// Store is the telemetry archive to analyze.
	Store *timeseries.Store
	// From and To bound the analysis window (Unix millis, half-open).
	From, To int64
	// System optionally exposes the live system for prescriptive
	// capabilities (the *simulation.DataCenter in this repository);
	// capabilities type-assert what they need.
	System any
	// Upstream carries the previous stage's result inside a Pipeline.
	Upstream *Result
}

// SystemAs type-asserts the context's live-system handle, returning a
// descriptive error when the capability is run against the wrong system.
func SystemAs[T any](ctx *RunContext) (T, error) {
	var zero T
	if ctx.System == nil {
		return zero, fmt.Errorf("oda: capability needs a %T system handle, got none", zero)
	}
	s, ok := ctx.System.(T)
	if !ok {
		return zero, fmt.Errorf("oda: capability needs a %T system handle, got %T", zero, ctx.System)
	}
	return s, nil
}

// Capability is an executable ODA technique positioned in the grid.
type Capability interface {
	Meta() Meta
	Run(ctx *RunContext) (Result, error)
}

// CapabilityFunc adapts a function to Capability.
type CapabilityFunc struct {
	M  Meta
	Fn func(ctx *RunContext) (Result, error)
}

// Meta implements Capability.
func (c CapabilityFunc) Meta() Meta { return c.M }

// Run implements Capability.
func (c CapabilityFunc) Run(ctx *RunContext) (Result, error) { return c.Fn(ctx) }

// Grid is the 4x4 registry of capabilities: the executable form of the
// paper's Table I.
type Grid struct {
	byCell  map[Cell][]Capability
	byName  map[string]Capability
	order   []string
	workers int // RunAll pool size: 0 = auto-tuned, 1 = serial

	// tuner sizes the auto pool (workers == 0) from the EWMA of observed
	// per-capability cost, so sweeps of cheap analytics skip goroutine
	// fan-out entirely; lastWorkers records the most recent sizing.
	tuner       par.Tuner
	tunerMu     sync.Mutex
	lastWorkers int

	// schedMu guards the cached wave plan (invalidated by Register) and
	// the cumulative scheduler counters.
	schedMu    sync.Mutex
	schedPlan  *schedulePlan
	schedStats ScheduleStats
}

// NewGrid returns an empty grid.
func NewGrid() *Grid {
	return &Grid{
		byCell: make(map[Cell][]Capability),
		byName: make(map[string]Capability),
	}
}

// Register adds a capability; names must be unique, every cell valid, and
// every declared footprint resource part of the taxonomy.
func (g *Grid) Register(c Capability) error {
	m := c.Meta()
	if m.Name == "" {
		return errors.New("oda: capability needs a name")
	}
	if _, dup := g.byName[m.Name]; dup {
		return fmt.Errorf("oda: duplicate capability %q", m.Name)
	}
	if len(m.Cells) == 0 {
		return fmt.Errorf("oda: capability %q covers no cells", m.Name)
	}
	for _, cell := range m.Cells {
		if cell.Pillar >= NumPillars || cell.Type >= NumTypes {
			return fmt.Errorf("oda: capability %q has invalid cell %v", m.Name, cell)
		}
	}
	for _, r := range m.Reads {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("oda: capability %q read footprint: %w", m.Name, err)
		}
	}
	for _, r := range m.Writes {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("oda: capability %q write footprint: %w", m.Name, err)
		}
	}
	g.byName[m.Name] = c
	g.order = append(g.order, m.Name)
	for _, cell := range m.Cells {
		g.byCell[cell] = append(g.byCell[cell], c)
	}
	g.schedMu.Lock()
	g.schedPlan = nil // footprints changed: replan on next sweep
	g.schedMu.Unlock()
	return nil
}

// Get returns a capability by name.
func (g *Grid) Get(name string) (Capability, bool) {
	c, ok := g.byName[name]
	return c, ok
}

// At returns the capabilities registered in a cell.
func (g *Grid) At(cell Cell) []Capability { return g.byCell[cell] }

// Len returns the number of registered capabilities.
func (g *Grid) Len() int { return len(g.byName) }

// Names returns registration order.
func (g *Grid) Names() []string { return append([]string(nil), g.order...) }

// Coverage returns the capability count per cell for all 16 cells.
func (g *Grid) Coverage() map[Cell]int {
	out := make(map[Cell]int, NumPillars*NumTypes)
	for _, cell := range AllCells() {
		out[cell] = len(g.byCell[cell])
	}
	return out
}

// Gaps returns the cells with no registered capability, in grid order.
func (g *Grid) Gaps() []Cell {
	var out []Cell
	for _, cell := range AllCells() {
		if len(g.byCell[cell]) == 0 {
			out = append(out, cell)
		}
	}
	return out
}

// MultiPillar returns capabilities spanning more than one pillar, sorted by
// name — the systems §V-B of the paper singles out as rare and hard.
func (g *Grid) MultiPillar() []Capability {
	var out []Capability
	for _, name := range g.order {
		c := g.byName[name]
		pillars := map[Pillar]bool{}
		for _, cell := range c.Meta().Cells {
			pillars[cell.Pillar] = true
		}
		if len(pillars) > 1 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Meta().Name < out[b].Meta().Name })
	return out
}

// MultiType returns capabilities spanning more than one analytics type.
func (g *Grid) MultiType() []Capability {
	var out []Capability
	for _, name := range g.order {
		c := g.byName[name]
		types := map[Type]bool{}
		for _, cell := range c.Meta().Cells {
			types[cell.Type] = true
		}
		if len(types) > 1 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Meta().Name < out[b].Meta().Name })
	return out
}

// SetWorkers bounds the RunAll worker pool: 0 restores the default
// (auto-tuned from observed per-capability cost, up to one worker per
// logical CPU), 1 opts out of concurrency entirely and runs every
// capability serially in registration order.
func (g *Grid) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	g.workers = n
}

// LastWorkers reports the pool size the most recent RunAll used (0 before
// the first sweep) — observability for the auto-tuning path.
func (g *Grid) LastWorkers() int {
	g.tunerMu.Lock()
	defer g.tunerMu.Unlock()
	return g.lastWorkers
}

// RunAll executes every capability against the context, returning results
// by name. Errors are collected per capability rather than aborting the
// sweep, so one broken analytic cannot hide the rest — the report is the
// product. A capability that panics is recovered into an error wrapping
// ErrCapabilityPanic; the pool stays healthy.
//
// Capabilities run on a bounded worker pool (see SetWorkers) scheduled in
// conflict-free waves from the declared footprints (Meta.Reads /
// Meta.Writes; see Resource and schedule.go): capabilities whose write
// sets are disjoint from each other's read+write sets share a wave and
// overlap, while conflicting capabilities — including legacy Exclusive
// ones, which desugar to a wildcard write — execute in registration order
// across waves. The schedule depends only on the registered set, so the
// result and error maps and the final state of every declared actuation
// surface are identical for every pool size.
func (g *Grid) RunAll(ctx *RunContext) (map[string]Result, map[string]error) {
	results := make(map[string]Result, len(g.byName))
	errs := make(map[string]error)
	workers := g.workers
	auto := workers <= 0
	if auto {
		// Auto mode sizes the pool from the EWMA of past sweeps' observed
		// per-capability cost; the first sweep (no history) saturates the
		// CPUs, matching the historical default.
		workers = g.tuner.Recommend(len(g.order))
	}
	if workers > len(g.order) {
		workers = len(g.order)
	}
	g.tunerMu.Lock()
	g.lastWorkers = workers
	g.tunerMu.Unlock()
	if auto && len(g.order) > 0 {
		start := time.Now()
		defer func() { g.tuner.Observe(len(g.order), time.Since(start)) }()
	}
	var panics int64
	collect := func(name string, res Result, err error) {
		if err != nil {
			if errors.Is(err, ErrCapabilityPanic) {
				panics++
			}
			errs[name] = err
			return
		}
		results[name] = res
	}
	if workers <= 1 {
		// Serial reference path: registration order, one wave. The wave
		// schedule is equivalent by construction (conflicting pairs keep
		// registration order; disjoint pairs commute).
		for _, name := range g.order {
			res, err := runSafely(g.byName[name], ctx)
			collect(name, res, err)
		}
		g.recordSweep(schedulePlan{waves: [][]string{g.order}}, panics, false)
		return results, errs
	}
	plan := g.plan()
	for _, wave := range plan.waves {
		g.runWave(ctx, wave, workers, collect)
	}
	g.recordSweep(plan, panics, true)
	return results, errs
}

// RenderTable renders the grid as a markdown table shaped like the paper's
// Table I: pillars as columns, types as rows (prescriptive on top), one
// capability name per line in each cell.
func (g *Grid) RenderTable() string {
	var b strings.Builder
	b.WriteString("| | Building Infrastructure | System Hardware | System Software | Applications |\n")
	b.WriteString("|---|---|---|---|---|\n")
	types := Types()
	for i := len(types) - 1; i >= 0; i-- { // paper orders prescriptive first
		t := types[i]
		b.WriteString("| **")
		b.WriteString(titleCase(t.String()))
		b.WriteString("** |")
		for _, p := range Pillars() {
			caps := g.byCell[Cell{Pillar: p, Type: t}]
			entries := make([]string, 0, len(caps))
			for _, c := range caps {
				e := c.Meta().Name
				if refs := c.Meta().Refs; len(refs) > 0 {
					e += " " + strings.Join(refs, ",")
				}
				entries = append(entries, e)
			}
			if len(entries) == 0 {
				b.WriteString(" |") // empty cell: single pad space, no stray gap
				continue
			}
			b.WriteString(" ")
			b.WriteString(strings.Join(entries, "<br>"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// titleCase capitalizes the first letter of an ASCII word.
func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// StageResult records one pipeline stage's execution.
type StageResult struct {
	Name     string
	Type     Type
	Result   Result
	Duration time.Duration
}

// Pipeline chains capabilities in the staged-maturity order of Fig. 2:
// stage types must be non-decreasing (descriptive feeds diagnostic feeds
// predictive feeds prescriptive). Each stage receives the previous stage's
// result via RunContext.Upstream.
type Pipeline struct {
	stages   []pipelineStage
	warnings []string
}

type pipelineStage struct {
	name string
	typ  Type
	cap  Capability
}

// Append adds a stage; it returns an error if the stage's type would move
// backwards in the staged model, and validates the new stage's footprint
// against its upstream: a stage that declares reads overlapping nothing
// the previous stage wrote is probably wired to the wrong upstream, and
// gets recorded in Warnings.
func (p *Pipeline) Append(t Type, c Capability) error {
	if t >= NumTypes {
		return fmt.Errorf("oda: invalid stage type %v", t)
	}
	m := c.Meta()
	if n := len(p.stages); n > 0 && t < p.stages[n-1].typ {
		return fmt.Errorf("oda: stage %q (%s) cannot follow %s — the staged model only moves toward foresight",
			m.Name, t, p.stages[n-1].typ)
	}
	for _, r := range append(append([]Resource(nil), m.Reads...), m.Writes...) {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("oda: stage %q footprint: %w", m.Name, err)
		}
	}
	if n := len(p.stages); n > 0 {
		prev := p.stages[n-1]
		upWrites := effectiveFootprint(prev.cap.Meta()).writes
		if len(m.Reads) > 0 && len(upWrites) > 0 && !intersects(upWrites, m.Reads) {
			p.warnings = append(p.warnings, fmt.Sprintf(
				"stage %q reads none of the resources %q writes (reads %v, upstream writes %v)",
				m.Name, prev.name, m.Reads, upWrites))
		}
	}
	p.stages = append(p.stages, pipelineStage{name: m.Name, typ: t, cap: c})
	return nil
}

// Warnings returns the footprint-mismatch diagnostics accumulated while
// assembling the pipeline (see Append); empty for a cleanly wired chain.
func (p *Pipeline) Warnings() []string { return append([]string(nil), p.warnings...) }

// Len returns the stage count.
func (p *Pipeline) Len() int { return len(p.stages) }

// Run executes the stages in order over the context, threading results. A
// stage that panics is recovered into the returned error (wrapping
// ErrCapabilityPanic), leaving the completed prefix of stage results
// intact.
func (p *Pipeline) Run(ctx *RunContext) ([]StageResult, error) {
	out := make([]StageResult, 0, len(p.stages))
	var upstream *Result
	for _, st := range p.stages {
		stageCtx := *ctx
		stageCtx.Upstream = upstream
		start := time.Now()
		res, err := runSafely(st.cap, &stageCtx)
		if err != nil {
			return out, fmt.Errorf("oda: stage %q: %w", st.name, err)
		}
		out = append(out, StageResult{Name: st.name, Type: st.typ, Result: res, Duration: time.Since(start)})
		upstream = &res
	}
	return out, nil
}
