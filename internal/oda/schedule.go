// Wave scheduling: RunAll's replacement for the old two-phase
// concurrent/exclusive split. Capabilities declare read/write footprints
// (Meta.Reads, Meta.Writes) over the Resource taxonomy; the planner builds
// a conflict graph over the declarations and packs the capabilities into
// waves — every member of a wave is footprint-disjoint from every other
// member, so a wave runs concurrently on the worker pool, and conflicting
// capabilities keep registration order across waves. The schedule depends
// only on the registered set, never on the worker count, which is what
// makes the sweep's results and the per-resource final actuator state
// identical for every pool size (the schedule-equivalence property test
// pins this against the serial path).
package oda

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrCapabilityPanic marks a capability that panicked mid-run. RunAll and
// Pipeline.Run recover the panic into a per-capability error wrapping this
// sentinel (with the goroutine stack), so one broken analytic cannot kill
// a sweep or leak a poisoned worker.
var ErrCapabilityPanic = errors.New("oda: capability panicked")

// ScheduleStats are cumulative wave-scheduler counters, exposed for
// operator observability (odad /stats, odactl stats).
type ScheduleStats struct {
	// Sweeps counts RunAll invocations.
	Sweeps int64
	// Waves counts executed waves across all sweeps (serial sweeps run as
	// one registration-ordered wave).
	Waves int64
	// MaxWaveWidth is the widest wave ever executed.
	MaxWaveWidth int
	// ConflictsDeferred counts capability pairs whose footprint conflict
	// forced the later capability into a later wave, cumulative per sweep.
	ConflictsDeferred int64
	// ActuatorsOverlapped counts writing capabilities that shared a wave
	// with at least one other writer — the overlap the old Exclusive bit
	// forbade.
	ActuatorsOverlapped int64
	// Panics counts capability panics recovered into errors.
	Panics int64
}

// schedulePlan is the precomputed wave decomposition of a grid.
type schedulePlan struct {
	waves     [][]string // capability names, wave-major, registration order inside a wave
	conflicts int64      // deferred-conflict edge count
}

// planWaves packs the names into conflict-free waves by list scheduling in
// registration order: a capability lands one wave after the latest
// conflicting predecessor, so every conflicting pair keeps registration
// order and every wave is mutually footprint-disjoint.
func planWaves(names []string, fps map[string]footprint) schedulePlan {
	waveOf := make(map[string]int, len(names))
	var plan schedulePlan
	for i, name := range names {
		wave := 0
		for _, prev := range names[:i] {
			if fps[prev].conflicts(fps[name]) {
				if w := waveOf[prev] + 1; w > wave {
					wave = w
				}
				plan.conflicts++
			}
		}
		waveOf[name] = wave
		for len(plan.waves) <= wave {
			plan.waves = append(plan.waves, nil)
		}
		plan.waves[wave] = append(plan.waves[wave], name)
	}
	return plan
}

// plan returns the grid's cached wave decomposition, rebuilding it after
// registrations.
func (g *Grid) plan() schedulePlan {
	g.schedMu.Lock()
	defer g.schedMu.Unlock()
	if g.schedPlan == nil {
		fps := make(map[string]footprint, len(g.byName))
		for name, c := range g.byName {
			fps[name] = effectiveFootprint(c.Meta())
		}
		p := planWaves(g.order, fps)
		g.schedPlan = &p
	}
	return *g.schedPlan
}

// ScheduleStats returns a snapshot of the cumulative scheduler counters.
func (g *Grid) ScheduleStats() ScheduleStats {
	g.schedMu.Lock()
	defer g.schedMu.Unlock()
	return g.schedStats
}

// Waves returns the planned wave decomposition as capability names —
// introspection for reports and tests; the slices are copies.
func (g *Grid) Waves() [][]string {
	plan := g.plan()
	out := make([][]string, len(plan.waves))
	for i, w := range plan.waves {
		out[i] = append([]string(nil), w...)
	}
	return out
}

// runSafely executes one capability, recovering a panic into an error
// wrapping ErrCapabilityPanic with the goroutine stack attached.
func runSafely(c Capability, ctx *RunContext) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			n := runtime.Stack(buf, false)
			err = fmt.Errorf("%w: %v\n%s", ErrCapabilityPanic, r, buf[:n])
		}
	}()
	return c.Run(ctx)
}

// runWave executes one wave's capabilities on at most workers goroutines,
// collecting into results/errs under mu. Members are mutually
// footprint-disjoint, so intra-wave ordering cannot affect outcomes.
func (g *Grid) runWave(ctx *RunContext, wave []string, workers int, collect func(string, Result, error)) {
	if len(wave) == 1 || workers <= 1 {
		for _, name := range wave {
			res, err := runSafely(g.byName[name], ctx)
			collect(name, res, err)
		}
		return
	}
	if workers > len(wave) {
		workers = len(wave)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan string)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range jobs {
				res, err := runSafely(g.byName[name], ctx)
				mu.Lock()
				collect(name, res, err)
				mu.Unlock()
			}
		}()
	}
	for _, name := range wave {
		jobs <- name
	}
	close(jobs)
	wg.Wait()
}

// recordSweep folds one executed sweep into the cumulative counters.
// parallel=false (the serial reference path) records the sweep without
// width or overlap accounting: nothing actually overlapped.
func (g *Grid) recordSweep(plan schedulePlan, panics int64, parallel bool) {
	g.schedMu.Lock()
	defer g.schedMu.Unlock()
	st := &g.schedStats
	st.Sweeps++
	st.Waves += int64(len(plan.waves))
	st.ConflictsDeferred += plan.conflicts
	st.Panics += panics
	if !parallel {
		return
	}
	for _, wave := range plan.waves {
		if len(wave) > st.MaxWaveWidth {
			st.MaxWaveWidth = len(wave)
		}
		writers := 0
		for _, name := range wave {
			if len(effectiveFootprint(g.byName[name].Meta()).writes) > 0 {
				writers++
			}
		}
		if writers >= 2 {
			st.ActuatorsOverlapped += int64(writers)
		}
	}
}

// LintFootprints reports footprint-convention violations: every capability
// covering a prescriptive cell must declare a non-empty write set (the
// legacy Exclusive desugaring counts), because a prescription that
// actuates nothing cannot be scheduled against the loops that do. Returns
// one message per violation, empty when the grid is clean.
func LintFootprints(g *Grid) []string {
	var out []string
	for _, name := range g.order {
		m := g.byName[name].Meta()
		prescriptive := false
		for _, cell := range m.Cells {
			if cell.Type == Prescriptive {
				prescriptive = true
				break
			}
		}
		if prescriptive && len(effectiveFootprint(m).writes) == 0 {
			out = append(out, fmt.Sprintf("%s: prescriptive capability declares no write footprint", name))
		}
	}
	return out
}
