package oda

import "testing"

func TestCatalogCoversAllSixteenCells(t *testing.T) {
	cat := Catalog()
	if len(cat) < 40 {
		t.Fatalf("catalog has only %d use cases", len(cat))
	}
	perCell := map[Cell]int{}
	for _, uc := range cat {
		if uc.Description == "" || len(uc.Refs) == 0 {
			t.Fatalf("malformed use case %+v", uc)
		}
		perCell[uc.Cell]++
	}
	for _, cell := range AllCells() {
		if perCell[cell] == 0 {
			t.Fatalf("cell %s has no use cases — Table I covers all 16", cell)
		}
	}
}

func TestCatalogRefsWellFormed(t *testing.T) {
	for _, uc := range Catalog() {
		for _, ref := range uc.Refs {
			if len(ref) < 3 || ref[0] != '[' || ref[len(ref)-1] != ']' {
				t.Fatalf("ref %q not in [n] form", ref)
			}
		}
	}
}

func TestWorksFromCatalog(t *testing.T) {
	works := WorksFromCatalog(Catalog())
	if len(works) < 50 {
		t.Fatalf("only %d distinct works", len(works))
	}
	byRef := map[string]Work{}
	for _, w := range works {
		if _, dup := byRef[w.Ref]; dup {
			t.Fatalf("duplicate work %s", w.Ref)
		}
		byRef[w.Ref] = w
	}
	// [12] (Jiang warm-water cooling) spans building infrastructure AND
	// system hardware in the prescriptive row — a multi-pillar work.
	w12, ok := byRef["[12]"]
	if !ok {
		t.Fatal("[12] missing")
	}
	if len(w12.Pillars()) != 2 {
		t.Fatalf("[12] pillars = %v", w12.Pillars())
	}
	// [11] (GEOPM) spans predictive + prescriptive in system hardware —
	// a multi-type, single-pillar work.
	w11 := byRef["[11]"]
	if len(w11.Types()) != 2 || len(w11.Pillars()) != 1 {
		t.Fatalf("[11] types = %v pillars = %v", w11.Types(), w11.Pillars())
	}
	// [4] (PUE) is single-cell.
	w4 := byRef["[4]"]
	if len(w4.Cells) != 1 || w4.Cells[0] != (Cell{BuildingInfrastructure, Descriptive}) {
		t.Fatalf("[4] cells = %v", w4.Cells)
	}
}

func TestAnalyzeCatalogReproducesPaperObservations(t *testing.T) {
	st := AnalyzeCatalog(Catalog())
	if st.UseCases != len(Catalog()) {
		t.Fatal("use case count")
	}
	if st.Works < 50 {
		t.Fatalf("works = %d", st.Works)
	}
	// §V-B: "a prevalence of single-pillar systems rather than multi-pillar
	// ones" — the encoded survey must reproduce that.
	if st.SinglePillar <= st.MultiPillar {
		t.Fatalf("single-pillar %d <= multi-pillar %d: paper observation not reproduced",
			st.SinglePillar, st.MultiPillar)
	}
	if float64(st.SinglePillar)/float64(st.Works) < 0.8 {
		t.Fatalf("single-pillar share %v too low", float64(st.SinglePillar)/float64(st.Works))
	}
	// Most works cover a single analytics type too.
	if st.SingleType <= st.MultiType {
		t.Fatalf("single-type %d <= multi-type %d", st.SingleType, st.MultiType)
	}
	// Every pillar and type has works.
	for _, p := range Pillars() {
		if st.WorksPerPillar[p] == 0 {
			t.Fatalf("no works in pillar %s", p)
		}
	}
	for _, typ := range Types() {
		if st.WorksPerType[typ] == 0 {
			t.Fatalf("no works of type %s", typ)
		}
	}
	// Consistency: single+multi partitions works.
	if st.SinglePillar+st.MultiPillar != st.Works || st.SingleType+st.MultiType != st.Works {
		t.Fatal("partition broken")
	}
}

func TestWorksSorted(t *testing.T) {
	works := WorksFromCatalog(Catalog())
	for i := 1; i < len(works); i++ {
		a, b := works[i-1].Ref, works[i].Ref
		if len(a) > len(b) || (len(a) == len(b) && a >= b) {
			t.Fatalf("works not sorted: %s before %s", a, b)
		}
	}
	// Cells within a work are sorted by type then pillar.
	for _, w := range works {
		for i := 1; i < len(w.Cells); i++ {
			a, b := w.Cells[i-1], w.Cells[i]
			if a.Type > b.Type || (a.Type == b.Type && a.Pillar >= b.Pillar) {
				t.Fatalf("work %s cells unsorted: %v", w.Ref, w.Cells)
			}
		}
	}
}
