package oda

import (
	"fmt"
	"strings"
)

// Resource names one actuation surface or telemetry region of the live
// system. Capabilities declare the resources they observe (Meta.Reads) and
// mutate (Meta.Writes); the wave scheduler in RunAll uses the declarations
// to overlap capabilities that cannot interfere and to order the ones that
// can. The taxonomy is deliberately coarse — one slug per pillar subsystem —
// because the point is conflict detection between control loops, not
// fine-grained locking.
type Resource string

// The actuation-surface taxonomy. Each slug maps to a concrete knob set of
// simulation.DataCenter (see DataCenter.ActuatorState):
const (
	// ResWildcard declares the whole system: a wildcard write conflicts
	// with every other capability, reproducing the legacy Exclusive
	// serialization. A wildcard read conflicts with every writer.
	ResWildcard Resource = "*"
	// ResCooling is the thermal plant: facility cooling mode, supply
	// setpoint, and per-node fan duty (building-infrastructure pillar).
	ResCooling Resource = "cooling"
	// ResPowerCap is the scheduler's power budget and per-job power
	// estimator (the Powerstack-style site power knob).
	ResPowerCap Resource = "power-cap"
	// ResNodeDVFS is the per-node P-state selection (system-hardware pillar).
	ResNodeDVFS Resource = "node-dvfs"
	// ResJobQueue is the scheduler state: queue, policy, allocations and
	// runtime predictors (system-software pillar).
	ResJobQueue Resource = "job-queue"
	// ResAppParams is the application tuning surface: kernel parameters and
	// per-class developer recommendations (applications pillar).
	ResAppParams Resource = "app-params"
	// ResEvents is the structured operational event log (read surface; the
	// simulation writes it, capabilities only consume it).
	ResEvents Resource = "events"
)

// storeScheme prefixes telemetry-region resources: "store:<metric-prefix>"
// declares every series whose metric name starts with the prefix, and the
// bare "store:" declares the whole archive.
const storeScheme = "store:"

// StoreResource declares a telemetry region by metric-name prefix, e.g.
// StoreResource("node_power") covers node_power_watts on every node. Two
// store resources conflict when either prefix extends the other.
func StoreResource(metricPrefix string) Resource {
	return Resource(storeScheme + metricPrefix)
}

// storePrefix returns the metric prefix and true when r is a store region.
func (r Resource) storePrefix() (string, bool) {
	s := string(r)
	if strings.HasPrefix(s, storeScheme) {
		return s[len(storeScheme):], true
	}
	return "", false
}

// Validate reports whether r belongs to the taxonomy.
func (r Resource) Validate() error {
	switch r {
	case ResWildcard, ResCooling, ResPowerCap, ResNodeDVFS, ResJobQueue, ResAppParams, ResEvents:
		return nil
	}
	if _, ok := r.storePrefix(); ok {
		return nil
	}
	return fmt.Errorf("oda: unknown resource %q (want %q, %q, %q, %q, %q, %q, %q<metric-prefix>, or %q)",
		r, ResCooling, ResPowerCap, ResNodeDVFS, ResJobQueue, ResAppParams, ResEvents, storeScheme, ResWildcard)
}

// overlaps reports whether the two resources denote overlapping surfaces:
// equal slugs, store regions with nested prefixes, or a wildcard against
// anything.
func (r Resource) overlaps(o Resource) bool {
	if r == ResWildcard || o == ResWildcard {
		return true
	}
	rp, rs := r.storePrefix()
	op, os := o.storePrefix()
	if rs != os {
		return false
	}
	if rs {
		return strings.HasPrefix(rp, op) || strings.HasPrefix(op, rp)
	}
	return r == o
}

// footprint is a capability's effective resource declaration after the
// legacy-Exclusive desugaring.
type footprint struct {
	reads, writes []Resource
}

// effectiveFootprint desugars a Meta into its footprint: a capability
// marked Exclusive that declares no writes gets a wildcard write, so
// unmigrated capabilities keep the old "never overlaps anything, ordered
// by registration" semantics bit-for-bit.
func effectiveFootprint(m Meta) footprint {
	fp := footprint{reads: m.Reads, writes: m.Writes}
	if m.Exclusive && len(m.Writes) == 0 {
		fp.writes = []Resource{ResWildcard}
	}
	return fp
}

// wildcardWrite reports whether the footprint writes the whole system.
func (fp footprint) wildcardWrite() bool {
	for _, w := range fp.writes {
		if w == ResWildcard {
			return true
		}
	}
	return false
}

// touches is the read+write set a peer's writes are checked against.
func (fp footprint) touches() []Resource {
	if len(fp.writes) == 0 {
		return fp.reads
	}
	out := make([]Resource, 0, len(fp.reads)+len(fp.writes))
	out = append(out, fp.reads...)
	out = append(out, fp.writes...)
	return out
}

// conflicts reports whether two capabilities may interfere: either one's
// write set overlaps anything the other touches. Read-read overlap never
// conflicts. A wildcard write conflicts with every capability, even one
// that declares nothing — that is what preserves the legacy Exclusive
// contract against unmigrated read-only capabilities.
func (fp footprint) conflicts(other footprint) bool {
	if fp.wildcardWrite() || other.wildcardWrite() {
		return true
	}
	return intersects(fp.writes, other.touches()) || intersects(other.writes, fp.touches())
}

// intersects reports whether any resource in ws overlaps any in fps.
func intersects(ws, fps []Resource) bool {
	for _, w := range ws {
		for _, f := range fps {
			if w.overlaps(f) {
				return true
			}
		}
	}
	return false
}
