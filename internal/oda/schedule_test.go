package oda

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// virtualSystem models the live system as one append log per resource: a
// capability's "actuation" appends its name to every log its write set
// overlaps, and its "observation" folds the overlapped logs into a value.
// If the wave scheduler ever let conflicting capabilities overlap, or
// ordered them differently across worker counts, the logs would diverge.
type virtualSystem struct {
	mu   sync.Mutex
	logs map[Resource][]string
}

func newVirtualSystem(pool []Resource) *virtualSystem {
	logs := make(map[Resource][]string, len(pool))
	for _, r := range pool {
		logs[r] = []string{}
	}
	return &virtualSystem{logs: logs}
}

func (v *virtualSystem) write(who string, writes []Resource) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for r := range v.logs {
		for _, w := range writes {
			if w.overlaps(r) {
				v.logs[r] = append(v.logs[r], who)
				break
			}
		}
	}
}

func (v *virtualSystem) observe(reads []Resource) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for r, log := range v.logs {
		for _, rd := range reads {
			if rd.overlaps(r) {
				n += len(log)
				break
			}
		}
	}
	return float64(n)
}

func (v *virtualSystem) state() map[Resource][]string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[Resource][]string, len(v.logs))
	for r, log := range v.logs {
		out[r] = append([]string(nil), log...)
	}
	return out
}

// fpSpec describes one randomized capability of the property test.
type fpSpec struct {
	name      string
	reads     []Resource
	writes    []Resource
	exclusive bool
	fails     bool
}

// randomSpecs derives a deterministic capability population from a seed.
func randomSpecs(rng *rand.Rand, pool []Resource) []fpSpec {
	n := 5 + rng.Intn(16)
	specs := make([]fpSpec, n)
	for i := range specs {
		s := fpSpec{name: fmt.Sprintf("cap-%02d", i)}
		switch rng.Intn(10) {
		case 0: // legacy exclusive, no declared footprint
			s.exclusive = true
		case 1: // explicit wildcard writer
			s.writes = []Resource{ResWildcard}
		default:
			for _, r := range pool {
				if rng.Intn(4) == 0 {
					s.reads = append(s.reads, r)
				}
				if rng.Intn(6) == 0 {
					s.writes = append(s.writes, r)
				}
			}
		}
		s.fails = rng.Intn(8) == 0
		specs[i] = s
	}
	return specs
}

func specGrid(t *testing.T, specs []fpSpec, sys *virtualSystem) *Grid {
	t.Helper()
	g := NewGrid()
	for i, s := range specs {
		s := s
		idx := float64(i)
		err := g.Register(CapabilityFunc{
			M: Meta{
				Name:      s.name,
				Cells:     []Cell{{Pillar: SystemHardware, Type: Diagnostic}},
				Reads:     s.reads,
				Writes:    s.writes,
				Exclusive: s.exclusive,
			},
			Fn: func(ctx *RunContext) (Result, error) {
				if s.fails {
					return Result{}, fmt.Errorf("synthetic failure in %s", s.name)
				}
				observed := sys.observe(effectiveFootprint(Meta{Reads: s.reads, Writes: s.writes, Exclusive: s.exclusive}).reads)
				sys.write(s.name, effectiveFootprint(Meta{Writes: s.writes, Exclusive: s.exclusive}).writes)
				return Result{Values: map[string]float64{"idx": idx, "observed": observed}}, nil
			},
		})
		if err != nil {
			t.Fatalf("register %s: %v", s.name, err)
		}
	}
	return g
}

// TestScheduleEquivalenceProperty is the determinism contract of the wave
// scheduler: for randomized capability sets with randomized footprints
// (including legacy Exclusive, wildcard writers and failing capabilities),
// the results map, the errors map and the per-resource final actuator
// state are identical across workers 1, 2 and 8, over 100 seeds.
func TestScheduleEquivalenceProperty(t *testing.T) {
	pool := []Resource{
		ResCooling, ResPowerCap, ResNodeDVFS, ResJobQueue, ResAppParams,
		StoreResource("node_"), StoreResource("node_power"), StoreResource("facility_"),
	}
	for seed := int64(0); seed < 100; seed++ {
		specs := randomSpecs(rand.New(rand.NewSource(seed)), pool)
		type outcome struct {
			results map[string]Result
			errs    map[string]string
			state   map[Resource][]string
		}
		run := func(workers int) outcome {
			sys := newVirtualSystem(pool)
			g := specGrid(t, specs, sys)
			g.SetWorkers(workers)
			results, errs := g.RunAll(&RunContext{From: 0, To: 1})
			es := make(map[string]string, len(errs))
			for name, err := range errs {
				es[name] = err.Error()
			}
			return outcome{results: results, errs: es, state: sys.state()}
		}
		ref := run(1)
		for _, workers := range []int{2, 8} {
			got := run(workers)
			if !reflect.DeepEqual(got.results, ref.results) {
				t.Fatalf("seed %d workers %d: results diverge from serial\nserial: %v\ngot:    %v",
					seed, workers, ref.results, got.results)
			}
			if !reflect.DeepEqual(got.errs, ref.errs) {
				t.Fatalf("seed %d workers %d: errors diverge from serial\nserial: %v\ngot:    %v",
					seed, workers, ref.errs, got.errs)
			}
			if !reflect.DeepEqual(got.state, ref.state) {
				t.Fatalf("seed %d workers %d: final actuator state diverges from serial\nserial: %v\ngot:    %v",
					seed, workers, ref.state, got.state)
			}
		}
	}
}

// TestDisjointActuatorsOverlap is the dual of
// TestGridRunAllExclusiveSerialized: two actuators with disjoint write
// footprints (cooling vs node-dvfs) must actually run in the same wave,
// proven by a rendezvous — each waits for the other before returning, so
// the sweep can only finish if they overlap in time.
func TestDisjointActuatorsOverlap(t *testing.T) {
	var inFlight, peak atomic.Int32
	arrived := make(chan string, 2)
	proceed := make(chan struct{})
	actuator := func(name string, w Resource) Capability {
		return CapabilityFunc{
			M: Meta{
				Name:   name,
				Cells:  []Cell{{Pillar: SystemHardware, Type: Prescriptive}},
				Writes: []Resource{w},
			},
			Fn: func(ctx *RunContext) (Result, error) {
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				arrived <- name
				select {
				case <-proceed:
				case <-time.After(5 * time.Second):
					return Result{}, errors.New("rendezvous timed out: actuators did not overlap")
				}
				inFlight.Add(-1)
				return Result{}, nil
			},
		}
	}
	g := NewGrid()
	if err := g.Register(actuator("dvfs", ResNodeDVFS)); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(actuator("cooling", ResCooling)); err != nil {
		t.Fatal(err)
	}
	waves := g.Waves()
	if len(waves) != 1 || len(waves[0]) != 2 {
		t.Fatalf("write-disjoint actuators should share one wave, got %v", waves)
	}
	g.SetWorkers(2)
	done := make(chan struct{})
	var errs map[string]error
	go func() {
		defer close(done)
		_, errs = g.RunAll(&RunContext{})
	}()
	// Release the rendezvous only after both actuators have arrived.
	<-arrived
	<-arrived
	close(proceed)
	<-done
	for name, err := range errs {
		t.Fatalf("%s: %v", name, err)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak concurrency %d, want 2: disjoint actuators never overlapped", p)
	}
	st := g.ScheduleStats()
	if st.ActuatorsOverlapped < 2 {
		t.Fatalf("ActuatorsOverlapped = %d, want >= 2", st.ActuatorsOverlapped)
	}
	if st.MaxWaveWidth != 2 {
		t.Fatalf("MaxWaveWidth = %d, want 2", st.MaxWaveWidth)
	}
}

// TestRunAllRecoversPanics: a panicking capability becomes a per-capability
// error wrapping ErrCapabilityPanic (with the stack attached) and the pool
// stays healthy — the same grid immediately runs a clean second sweep.
func TestRunAllRecoversPanics(t *testing.T) {
	g := NewGrid()
	cell := Cell{Pillar: SystemHardware, Type: Diagnostic}
	if err := g.Register(CapabilityFunc{
		M:  Meta{Name: "bomb", Cells: []Cell{cell}},
		Fn: func(ctx *RunContext) (Result, error) { panic("kaboom") },
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("ok-%d", i)
		if err := g.Register(CapabilityFunc{
			M:  Meta{Name: name, Cells: []Cell{cell}},
			Fn: func(ctx *RunContext) (Result, error) { return Result{Summary: "fine"}, nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	g.SetWorkers(4)
	for sweep := 0; sweep < 2; sweep++ {
		results, errs := g.RunAll(&RunContext{})
		if len(results) != 4 {
			t.Fatalf("sweep %d: %d results, want 4 (errs %v)", sweep, len(results), errs)
		}
		err := errs["bomb"]
		if err == nil || !errors.Is(err, ErrCapabilityPanic) {
			t.Fatalf("sweep %d: bomb error = %v, want ErrCapabilityPanic", sweep, err)
		}
		if !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "goroutine") {
			t.Fatalf("sweep %d: panic error should carry the message and stack, got %q", sweep, err)
		}
	}
	if st := g.ScheduleStats(); st.Panics != 2 {
		t.Fatalf("Panics = %d, want 2", st.Panics)
	}
}

// TestPipelineRecoversPanics: a panicking stage surfaces as the pipeline
// error (wrapping ErrCapabilityPanic) with the completed prefix intact.
func TestPipelineRecoversPanics(t *testing.T) {
	cell := Cell{Pillar: SystemHardware, Type: Diagnostic}
	var p Pipeline
	if err := p.Append(Diagnostic, CapabilityFunc{
		M:  Meta{Name: "first", Cells: []Cell{cell}},
		Fn: func(ctx *RunContext) (Result, error) { return Result{Summary: "done"}, nil },
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Append(Diagnostic, CapabilityFunc{
		M:  Meta{Name: "bomb", Cells: []Cell{cell}},
		Fn: func(ctx *RunContext) (Result, error) { panic("stage kaboom") },
	}); err != nil {
		t.Fatal(err)
	}
	stages, err := p.Run(&RunContext{})
	if err == nil || !errors.Is(err, ErrCapabilityPanic) {
		t.Fatalf("err = %v, want ErrCapabilityPanic", err)
	}
	if !strings.Contains(err.Error(), `stage "bomb"`) {
		t.Fatalf("error should name the stage, got %q", err)
	}
	if len(stages) != 1 || stages[0].Name != "first" {
		t.Fatalf("completed prefix = %v, want just the first stage", stages)
	}
}

// TestRegisterValidatesFootprints: resources outside the taxonomy are
// rejected at registration, and a capability that writes but covers no
// cells is rejected like any other cell-less capability.
func TestRegisterValidatesFootprints(t *testing.T) {
	cell := Cell{Pillar: BuildingInfrastructure, Type: Prescriptive}
	g := NewGrid()
	err := g.Register(CapabilityFunc{
		M: Meta{Name: "bad-writer", Cells: []Cell{cell}, Writes: []Resource{"chiller"}},
	})
	if err == nil || !strings.Contains(err.Error(), `unknown resource "chiller"`) {
		t.Fatalf("unknown write resource: err = %v", err)
	}
	err = g.Register(CapabilityFunc{
		M: Meta{Name: "bad-reader", Cells: []Cell{cell}, Reads: []Resource{"thermometer"}},
	})
	if err == nil || !strings.Contains(err.Error(), `unknown resource "thermometer"`) {
		t.Fatalf("unknown read resource: err = %v", err)
	}
	err = g.Register(CapabilityFunc{
		M: Meta{Name: "cell-less", Writes: []Resource{ResCooling}},
	})
	if err == nil || !strings.Contains(err.Error(), "covers no cells") {
		t.Fatalf("writes without cells: err = %v", err)
	}
	if g.Len() != 0 {
		t.Fatalf("rejected capabilities must not register, Len = %d", g.Len())
	}
	// Store resources with any prefix are valid, including the whole archive.
	err = g.Register(CapabilityFunc{
		M: Meta{Name: "reader", Cells: []Cell{cell}, Reads: []Resource{StoreResource(""), StoreResource("node_power")}},
	})
	if err != nil {
		t.Fatalf("store footprints should validate: %v", err)
	}
}

// TestRenderTableGolden pins the exact rendered table: empty cells carry a
// single pad space, names without refs get no trailing junk, and refs join
// after one space.
func TestRenderTableGolden(t *testing.T) {
	g := NewGrid()
	if err := g.Register(CapabilityFunc{M: Meta{
		Name:  "pue",
		Cells: []Cell{{Pillar: BuildingInfrastructure, Type: Descriptive}},
		Refs:  []string{"[4]", "[5]"},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(CapabilityFunc{M: Meta{
		Name:  "no-refs",
		Cells: []Cell{{Pillar: BuildingInfrastructure, Type: Descriptive}},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(CapabilityFunc{M: Meta{
		Name:   "governor",
		Cells:  []Cell{{Pillar: SystemHardware, Type: Prescriptive}},
		Writes: []Resource{ResNodeDVFS},
	}}); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"| | Building Infrastructure | System Hardware | System Software | Applications |",
		"|---|---|---|---|---|",
		"| **Prescriptive** | | governor | | |",
		"| **Predictive** | | | | |",
		"| **Diagnostic** | | | | |",
		"| **Descriptive** | pue [4],[5]<br>no-refs | | | |",
		"",
	}, "\n")
	if got := g.RenderTable(); got != want {
		t.Fatalf("RenderTable mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPipelineFootprintWarnings: a stage whose reads overlap nothing its
// upstream wrote is flagged; a cleanly wired chain is not.
func TestPipelineFootprintWarnings(t *testing.T) {
	cell := Cell{Pillar: SystemHardware, Type: Prescriptive}
	writer := func(name string, w Resource) Capability {
		return CapabilityFunc{
			M:  Meta{Name: name, Cells: []Cell{cell}, Writes: []Resource{w}},
			Fn: func(ctx *RunContext) (Result, error) { return Result{}, nil },
		}
	}
	reader := func(name string, r Resource) Capability {
		return CapabilityFunc{
			M:  Meta{Name: name, Cells: []Cell{cell}, Reads: []Resource{r}},
			Fn: func(ctx *RunContext) (Result, error) { return Result{}, nil },
		}
	}
	var mismatched Pipeline
	if err := mismatched.Append(Prescriptive, writer("cooler", ResCooling)); err != nil {
		t.Fatal(err)
	}
	if err := mismatched.Append(Prescriptive, reader("queue-watcher", ResJobQueue)); err != nil {
		t.Fatal(err)
	}
	warns := mismatched.Warnings()
	if len(warns) != 1 || !strings.Contains(warns[0], `"queue-watcher" reads none of the resources "cooler" writes`) {
		t.Fatalf("warnings = %v, want one mismatch diagnostic", warns)
	}
	var clean Pipeline
	if err := clean.Append(Prescriptive, writer("budget", ResPowerCap)); err != nil {
		t.Fatal(err)
	}
	if err := clean.Append(Prescriptive, reader("budget-reader", ResPowerCap)); err != nil {
		t.Fatal(err)
	}
	if warns := clean.Warnings(); len(warns) != 0 {
		t.Fatalf("clean chain warnings = %v, want none", warns)
	}
	// A legacy Exclusive upstream desugars to a wildcard write, which
	// overlaps every read: never a mismatch.
	var legacy Pipeline
	if err := legacy.Append(Prescriptive, CapabilityFunc{
		M: Meta{Name: "legacy", Cells: []Cell{cell}, Exclusive: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Append(Prescriptive, reader("after-legacy", ResJobQueue)); err != nil {
		t.Fatal(err)
	}
	if warns := legacy.Warnings(); len(warns) != 0 {
		t.Fatalf("legacy chain warnings = %v, want none", warns)
	}
}

// TestWavesKeepRegistrationOrderForConflicts: conflicting capabilities land
// in registration order across waves, and the plan is stable under
// replanning (Register invalidates the cache).
func TestWavesKeepRegistrationOrderForConflicts(t *testing.T) {
	g := NewGrid()
	cell := Cell{Pillar: SystemHardware, Type: Prescriptive}
	add := func(name string, reads, writes []Resource) {
		t.Helper()
		if err := g.Register(CapabilityFunc{
			M:  Meta{Name: name, Cells: []Cell{cell}, Reads: reads, Writes: writes},
			Fn: func(ctx *RunContext) (Result, error) { return Result{}, nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("w1", nil, []Resource{ResCooling})
	add("w2", nil, []Resource{ResCooling}) // conflicts with w1 -> wave 1
	add("r1", []Resource{ResCooling}, nil) // conflicts with both -> wave 2
	add("free", nil, []Resource{ResJobQueue})
	got := g.Waves()
	want := [][]string{{"w1", "free"}, {"w2"}, {"r1"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Waves = %v, want %v", got, want)
	}
	// Registering one more capability replans; earlier order is preserved.
	add("w3", nil, []Resource{ResJobQueue}) // conflicts with free -> wave 1
	got = g.Waves()
	want = [][]string{{"w1", "free"}, {"w2", "w3"}, {"r1"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Waves after replan = %v, want %v", got, want)
	}
}

// TestLintFootprints: a prescriptive capability with no effective writes is
// flagged; declared and legacy-Exclusive writers pass.
func TestLintFootprints(t *testing.T) {
	g := NewGrid()
	pres := Cell{Pillar: SystemHardware, Type: Prescriptive}
	diag := Cell{Pillar: SystemHardware, Type: Diagnostic}
	must := func(c Capability) {
		t.Helper()
		if err := g.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	must(CapabilityFunc{M: Meta{Name: "good", Cells: []Cell{pres}, Writes: []Resource{ResCooling}}})
	must(CapabilityFunc{M: Meta{Name: "legacy", Cells: []Cell{pres}, Exclusive: true}})
	must(CapabilityFunc{M: Meta{Name: "read-only-diag", Cells: []Cell{diag}, Reads: []Resource{ResJobQueue}}})
	must(CapabilityFunc{M: Meta{Name: "toothless", Cells: []Cell{pres}}})
	got := LintFootprints(g)
	if len(got) != 1 || !strings.Contains(got[0], "toothless") {
		t.Fatalf("LintFootprints = %v, want exactly the toothless violation", got)
	}
}

// TestResourceOverlaps pins the overlap algebra the conflict graph is
// built on.
func TestResourceOverlaps(t *testing.T) {
	cases := []struct {
		a, b Resource
		want bool
	}{
		{ResCooling, ResCooling, true},
		{ResCooling, ResPowerCap, false},
		{ResWildcard, ResJobQueue, true},
		{ResWildcard, StoreResource("node_"), true},
		{StoreResource("node_"), StoreResource("node_power"), true},
		{StoreResource("node_power"), StoreResource("node_"), true},
		{StoreResource("node_power"), StoreResource("facility_"), false},
		{StoreResource(""), StoreResource("anything"), true},
		{StoreResource("node_"), ResNodeDVFS, false},
	}
	for _, c := range cases {
		if got := c.a.overlaps(c.b); got != c.want {
			t.Errorf("overlaps(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.overlaps(c.a); got != c.want {
			t.Errorf("overlaps(%q, %q) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}
