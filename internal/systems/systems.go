// Package systems composes individual capabilities into the complex ODA
// systems of the paper's Fig. 3 — the multi-type and multi-pillar
// deployments §V discusses:
//
//   - ENI: Bortot et al.'s facility system — diagnostic anomaly detection
//     (stress-test aided) feeding prescriptive cooling control, all within
//     the building-infrastructure pillar (multi-type, single-pillar).
//   - GEOPM: Eastep et al.'s node power manager — predictive instruction-mix
//     analysis feeding prescriptive DVFS in the system-hardware pillar.
//   - Powerstack: the cross-pillar power-management stack — application-level
//     power prediction, system-software scheduling budget enforcement and
//     hardware DVFS acting together (multi-pillar, multi-type).
//
// Each system is an oda.Pipeline plus the controllers it installs, so the
// staged model of Fig. 2 is visible in the composition itself.
package systems

import (
	"fmt"

	"repro/internal/diagnostic"
	"repro/internal/oda"
	"repro/internal/predictive"
	"repro/internal/prescriptive"
	"repro/internal/simulation"
	"repro/internal/workload"
)

// System is a named multi-cell ODA composition.
type System struct {
	Name string
	// Cells the composition covers (for Fig. 3 rendering).
	Cells []oda.Cell
	// Pipeline is the staged analysis chain.
	Pipeline *oda.Pipeline
	// Controllers are the automated actuation loops the system installs
	// when deployed on a live data center.
	Controllers []simulation.Controller
}

// Deploy attaches the system's controllers to a data center.
func (s *System) Deploy(dc *simulation.DataCenter) {
	for _, c := range s.Controllers {
		dc.AddController(c)
	}
}

// Run executes the analysis pipeline over a window.
func (s *System) Run(ctx *oda.RunContext) ([]oda.StageResult, error) {
	return s.Pipeline.Run(ctx)
}

// NewENI builds the Bortot-style facility system: infrastructure anomaly
// detection (diagnostic) chained into anomaly response and setpoint
// optimization (prescriptive), plus the automated setpoint controller.
func NewENI() (*System, error) {
	var p oda.Pipeline
	if err := p.Append(oda.Diagnostic, diagnostic.InfraAnomaly{}); err != nil {
		return nil, err
	}
	if err := p.Append(oda.Prescriptive, prescriptive.AnomalyResponse{}); err != nil {
		return nil, err
	}
	return &System{
		Name: "eni",
		Cells: []oda.Cell{
			{Pillar: oda.BuildingInfrastructure, Type: oda.Diagnostic},
			{Pillar: oda.BuildingInfrastructure, Type: oda.Prescriptive},
		},
		Pipeline:    &p,
		Controllers: []simulation.Controller{prescriptive.SetpointOptimizer{}.Controller()},
	}, nil
}

// NewGEOPM builds the GEOPM-like node power manager: instruction-mix
// prediction (predictive) chained into a DVFS pass (prescriptive), plus the
// automated governor.
func NewGEOPM() (*System, error) {
	var p oda.Pipeline
	if err := p.Append(oda.Predictive, predictive.InstMix{}); err != nil {
		return nil, err
	}
	if err := p.Append(oda.Prescriptive, prescriptive.DVFSGovernor{}); err != nil {
		return nil, err
	}
	return &System{
		Name: "geopm",
		Cells: []oda.Cell{
			{Pillar: oda.SystemHardware, Type: oda.Predictive},
			{Pillar: oda.SystemHardware, Type: oda.Prescriptive},
		},
		Pipeline:    &p,
		Controllers: []simulation.Controller{prescriptive.DVFSGovernor{}.Controller()},
	}, nil
}

// NewPowerstack builds the cross-pillar power stack: job power prediction
// (applications/predictive), power-budget scheduling (system software/
// prescriptive) and the DVFS governor (system hardware/prescriptive).
func NewPowerstack(budgetW float64) (*System, error) {
	var p oda.Pipeline
	if err := p.Append(oda.Predictive, predictive.ResourceUsage{}); err != nil {
		return nil, err
	}
	if err := p.Append(oda.Prescriptive, prescriptive.PowerBudget{BudgetW: budgetW}); err != nil {
		return nil, err
	}
	if err := p.Append(oda.Prescriptive, prescriptive.DVFSGovernor{}); err != nil {
		return nil, err
	}
	return &System{
		Name: "powerstack",
		Cells: []oda.Cell{
			{Pillar: oda.Applications, Type: oda.Predictive},
			{Pillar: oda.SystemSoftware, Type: oda.Prescriptive},
			{Pillar: oda.SystemHardware, Type: oda.Prescriptive},
		},
		Pipeline: &p,
		Controllers: []simulation.Controller{
			prescriptive.DVFSGovernor{}.Controller(),
			powerBudgetController(budgetW),
		},
	}, nil
}

// powerBudgetController periodically retrains the power estimator and
// enforces the budget on the live scheduler.
func powerBudgetController(budgetW float64) simulation.Controller {
	return simulation.ControllerFunc{
		ControllerName: "power-budget",
		Fn: func(dc *simulation.DataCenter, now int64) {
			ctx := &oda.RunContext{Store: dc.Store, From: 0, To: now + 1, System: dc}
			if _, err := (prescriptive.PowerBudget{BudgetW: budgetW}).Run(ctx); err != nil {
				// Not enough history yet: enforce the cap with a nameplate
				// estimate until the model can train.
				dc.Cluster.PowerBudgetW = budgetW
				if dc.Cluster.EstimatePowerW == nil {
					dc.Cluster.EstimatePowerW = func(j *workload.Job) float64 {
						return float64(j.Nodes) * 430 // nameplate per node
					}
				}
			}
		},
	}
}

// All returns every Fig. 3 system with default parameters.
func All() ([]*System, error) {
	eni, err := NewENI()
	if err != nil {
		return nil, err
	}
	geopm, err := NewGEOPM()
	if err != nil {
		return nil, err
	}
	ps, err := NewPowerstack(0)
	if err != nil {
		return nil, err
	}
	return []*System{eni, geopm, ps}, nil
}

// RenderFig3 renders each system's cell coverage as a text grid, the
// reproduction of the paper's Fig. 3.
func RenderFig3(systems []*System) string {
	out := ""
	for _, s := range systems {
		out += fmt.Sprintf("%s:\n", s.Name)
		covered := map[oda.Cell]bool{}
		for _, c := range s.Cells {
			covered[c] = true
		}
		types := oda.Types()
		for i := len(types) - 1; i >= 0; i-- {
			t := types[i]
			row := fmt.Sprintf("  %-12s", t.String())
			for _, p := range oda.Pillars() {
				mark := " . "
				if covered[oda.Cell{Pillar: p, Type: t}] {
					mark = " X "
				}
				row += mark
			}
			out += row + "\n"
		}
		out += "                BI  HW  SW  APP\n"
	}
	return out
}
