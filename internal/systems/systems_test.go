package systems

import (
	"strings"
	"testing"

	"repro/internal/oda"
	"repro/internal/simulation"
)

func runDC(seed int64, deploy func(dc *simulation.DataCenter), hours float64) *simulation.DataCenter {
	cfg := simulation.DefaultConfig(seed)
	cfg.Nodes = 16
	cfg.Workload.MaxNodes = 8
	cfg.Workload.MeanInterarrival = 60
	dc := simulation.New(cfg)
	if deploy != nil {
		deploy(dc)
	}
	dc.RunFor(hours * 3600)
	return dc
}

func TestAllSystemsConstruct(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("systems = %d", len(all))
	}
	names := map[string]bool{}
	for _, s := range all {
		names[s.Name] = true
		if s.Pipeline.Len() < 2 {
			t.Fatalf("%s pipeline too short", s.Name)
		}
		if len(s.Cells) < 2 {
			t.Fatalf("%s covers %d cells", s.Name, len(s.Cells))
		}
	}
	for _, want := range []string{"eni", "geopm", "powerstack"} {
		if !names[want] {
			t.Fatalf("missing system %s", want)
		}
	}
}

func TestENIPipelineRuns(t *testing.T) {
	dc := runDC(801, nil, 8)
	eni, err := NewENI()
	if err != nil {
		t.Fatal(err)
	}
	ctx := &oda.RunContext{Store: dc.Store, From: 0, To: dc.Now() + 1, System: dc}
	results, err := eni.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("stages = %d", len(results))
	}
	if results[0].Type != oda.Diagnostic || results[1].Type != oda.Prescriptive {
		t.Fatal("stage order wrong")
	}
	// The prescriptive stage saw the diagnostic result.
	if results[1].Result.Summary == "" {
		t.Fatal("no response summary")
	}
}

func TestGEOPMDeploymentSavesEnergy(t *testing.T) {
	base := runDC(802, nil, 10)
	geopm, err := NewGEOPM()
	if err != nil {
		t.Fatal(err)
	}
	governed := runDC(802, geopm.Deploy, 10)
	var baseE, govE float64
	for _, n := range base.Nodes {
		baseE += n.Energy()
	}
	for _, n := range governed.Nodes {
		govE += n.Energy()
	}
	if govE >= baseE {
		t.Fatalf("GEOPM-like system saved no energy: %.0f vs %.0f J", govE, baseE)
	}
}

func TestPowerstackCapsPower(t *testing.T) {
	budget := 3500.0
	ps, err := NewPowerstack(budget)
	if err != nil {
		t.Fatal(err)
	}
	dc := runDC(803, ps.Deploy, 10)
	if dc.Cluster.PowerBudgetW != budget {
		t.Fatalf("budget not installed: %v", dc.Cluster.PowerBudgetW)
	}
	if dc.Cluster.EstimatePowerW == nil {
		t.Fatal("estimator not installed")
	}
	// The budget plus idle floor bounds achieved IT power.
	idleFloor := float64(len(dc.Nodes)) * 95
	if p := dc.ITPower(); p > idleFloor+budget*1.5 {
		t.Fatalf("IT power %v far above budget %v", p, budget)
	}
	// Pipeline runs end to end over the archive.
	ctx := &oda.RunContext{Store: dc.Store, From: 0, To: dc.Now() + 1, System: dc}
	results, err := ps.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("stages = %d", len(results))
	}
}

func TestRenderFig3(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFig3(all)
	for _, want := range []string{"eni:", "geopm:", "powerstack:", "prescriptive", " X "} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig. 3 rendering missing %q:\n%s", want, out)
		}
	}
	// Powerstack is the multi-pillar one: its rows must mark >= 2 pillars
	// across prescriptive cells.
	psLines := strings.Split(out, "powerstack:")[1]
	prescLine := ""
	for _, l := range strings.Split(psLines, "\n") {
		if strings.Contains(l, "prescriptive") {
			prescLine = l
		}
	}
	if strings.Count(prescLine, " X ") < 2 {
		t.Fatalf("powerstack prescriptive row: %q", prescLine)
	}
}

func TestSystemsConstructionErrorsPropagate(t *testing.T) {
	// The constructors must produce pipelines whose stage types are in
	// staged order; verify by running each against a live center and
	// checking the stage sequence is non-decreasing.
	dc := runDC(804, nil, 6)
	ctx := &oda.RunContext{Store: dc.Store, From: 0, To: dc.Now() + 1, System: dc}
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		results, err := s.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for i := 1; i < len(results); i++ {
			if results[i].Type < results[i-1].Type {
				t.Fatalf("%s: stage order violated", s.Name)
			}
		}
		// Cells and pipeline stages are consistent in count.
		if s.Pipeline.Len() == 0 || len(s.Controllers) == 0 {
			t.Fatalf("%s: empty composition", s.Name)
		}
	}
}

func TestENIControllerLoopImprovesOverStatic(t *testing.T) {
	// Deploying ENI's controllers on a healthy (auto-mode) center must not
	// make PUE worse: the controllers only move knobs within safe bounds.
	base := runDC(805, nil, 8)
	eni, err := NewENI()
	if err != nil {
		t.Fatal(err)
	}
	managed := runDC(805, eni.Deploy, 8)
	if managed.Facility.CumulativePUE() > base.Facility.CumulativePUE()*1.05 {
		t.Fatalf("ENI made a healthy plant worse: %.4f vs %.4f",
			managed.Facility.CumulativePUE(), base.Facility.CumulativePUE())
	}
}
