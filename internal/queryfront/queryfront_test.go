package queryfront

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/metric"
	"repro/internal/timeseries"
)

func queryTestStore(t *testing.T) (*timeseries.Store, metric.ID) {
	t.Helper()
	store := timeseries.NewStore(64, timeseries.WithRollups(timeseries.TierStep1m, timeseries.TierStep1h))
	id := metric.ID{Name: "node_power_watts", Labels: metric.NewLabels("node", "n0")}
	for i := int64(0); i < 2*360+10; i++ { // ~2h at 10s cadence
		if err := store.Append(id, metric.Gauge, metric.UnitWatt, i*10_000, float64(i%50)); err != nil {
			t.Fatal(err)
		}
	}
	return store, id
}

func TestQueryEndpoint(t *testing.T) {
	store, id := queryTestStore(t)
	qf := New(ForStore(store), 64, time.Minute, 1000, 1000)

	get := func(target string, tenant string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", target, nil)
		if tenant != "" {
			req.Header.Set("X-ODA-Tenant", tenant)
		}
		qf.HandleQuery(rec, req)
		return rec
	}
	target := "/query?series=" + url.QueryEscape(id.Key()) + "&from=0&to=7200000&fn=sum"
	rec := get(target, "")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	wantV, wantN, err := store.Reduce(id, 0, 7_200_000, timeseries.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if got["value"] != wantV || got["count"] != float64(wantN) {
		t.Fatalf("value/count = %v/%v, want %v/%d", got["value"], got["count"], wantV, wantN)
	}
	if got["tier_step"] == float64(0) {
		t.Fatal("planner did not pick a tier for an aligned 2h sum")
	}
	if rec.Header().Get("X-ODA-Cache") != "miss" {
		t.Fatal("first request should miss the result cache")
	}
	// Identical query: served from the result cache, byte-identical.
	rec2 := get(target, "")
	if rec2.Header().Get("X-ODA-Cache") != "hit" {
		t.Fatal("second request should hit the result cache")
	}
	if rec2.Body.String() != rec.Body.String() {
		t.Fatal("cached body diverged")
	}

	for _, tc := range []struct {
		target string
		code   int
	}{
		{"/query?series=nope&from=0&to=10", 404},
		{"/query?from=0&to=10", 400},
		{"/query?series=x&from=5&to=5", 400},
		{"/query?series=x&from=abc&to=10", 400},
		{"/query?series=x&from=0&to=10&fn=median", 400},
		{"/query?series=x&from=0&to=10&step=60", 400},
	} {
		if rec := get(tc.target, ""); rec.Code != tc.code {
			t.Fatalf("%s: status %d, want %d", tc.target, rec.Code, tc.code)
		}
	}
}

func TestQueryRangeEndpoint(t *testing.T) {
	store, id := queryTestStore(t)
	qf := New(ForStore(store), 64, time.Minute, 1000, 1000)

	rec := httptest.NewRecorder()
	target := "/query_range?series=" + url.QueryEscape(id.Key()) + "&from=0&to=7200000&step=60000&fn=max"
	qf.HandleQueryRange(rec, httptest.NewRequest("GET", target, nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var got struct {
		TierStep int64 `json:"tier_step"`
		Points   []struct {
			Start int64   `json:"start"`
			Value float64 `json:"value"`
		} `json:"points"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	want, err := store.Aggregate(id, 0, 7_200_000, 60_000, timeseries.AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(want) {
		t.Fatalf("%d points, want %d", len(got.Points), len(want))
	}
	for i, p := range got.Points {
		if p.Start != want[i].Start || p.Value != want[i].Value {
			t.Fatalf("point %d = %+v, want %+v", i, p, want[i])
		}
	}
	if got.TierStep != timeseries.TierStep1m {
		t.Fatalf("tier_step = %d, want %d", got.TierStep, int64(timeseries.TierStep1m))
	}

	// Missing/invalid step is the range endpoint's own 400.
	rec = httptest.NewRecorder()
	qf.HandleQueryRange(rec, httptest.NewRequest("GET", "/query_range?series=x&from=0&to=10", nil))
	if rec.Code != 400 {
		t.Fatalf("missing step: status %d", rec.Code)
	}
}

func TestQueryQuota(t *testing.T) {
	store, id := queryTestStore(t)
	qf := New(ForStore(store), 0, time.Minute, 1, 2) // cache off: every request hits the quota and the store

	code := func(tenant string) int {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/query?series="+url.QueryEscape(id.Key())+"&from=0&to=60000", nil)
		req.Header.Set("X-ODA-Tenant", tenant)
		qf.HandleQuery(rec, req)
		return rec.Code
	}
	if code("dash") != 200 || code("dash") != 200 {
		t.Fatal("burst requests rejected")
	}
	if code("dash") != 429 {
		t.Fatal("over-quota request not rejected with 429")
	}
	if code("other") != 200 {
		t.Fatal("quota not per-tenant")
	}
}

// TestWithClock pins the front door to a virtual clock and checks the two
// time-dependent behaviors deterministic harnesses rely on: quota buckets
// refill exactly with virtual time, and cache entries expire exactly at TTL.
func TestWithClock(t *testing.T) {
	store, id := queryTestStore(t)
	now := time.Unix(0, 0)
	qf := New(ForStore(store), 64, 10*time.Second, 1, 1, WithClock(func() time.Time { return now }))

	get := func() (int, string) {
		rec := httptest.NewRecorder()
		qf.HandleQuery(rec, httptest.NewRequest("GET", "/query?series="+url.QueryEscape(id.Key())+"&from=0&to=60000", nil))
		return rec.Code, rec.Header().Get("X-ODA-Cache")
	}
	if code, cache := get(); code != 200 || cache != "miss" {
		t.Fatalf("first: %d/%s", code, cache)
	}
	// Same instant: the single token is spent, the bucket has not refilled.
	if code, _ := get(); code != 429 {
		t.Fatal("frozen clock refilled the bucket")
	}
	// One virtual second refills one token; the entry is still fresh.
	now = now.Add(time.Second)
	if code, cache := get(); code != 200 || cache != "hit" {
		t.Fatalf("after 1s: %d/%s", code, cache)
	}
	// Past the TTL the entry has expired: quota admits, cache misses.
	now = now.Add(time.Minute)
	if code, cache := get(); code != 200 || cache != "miss" {
		t.Fatalf("after TTL: %d/%s", code, cache)
	}
}

func TestParseRollupSteps(t *testing.T) {
	steps, err := ParseRollupSteps(" 1m, 1h ")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 || steps[0] != timeseries.TierStep1m || steps[1] != timeseries.TierStep1h {
		t.Fatalf("steps = %v", steps)
	}
	if s, err := ParseRollupSteps(""); err != nil || s != nil {
		t.Fatalf("empty: %v, %v", s, err)
	}
	for _, bad := range []string{"1x", "500ms", "1m,,1h"} {
		if _, err := ParseRollupSteps(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}
