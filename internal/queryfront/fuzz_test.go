package queryfront

import (
	"net/url"
	"testing"
)

// FuzzQueryRangeParse feeds arbitrary query strings through the
// /query_range parameter parser and checks the contract the handlers rely
// on: parsing never panics, and any accepted parameter set satisfies the
// invariants the planner assumes (non-empty series, from < to, positive
// step, a known aggregation function).
func FuzzQueryRangeParse(f *testing.F) {
	// Seeds mirror the committed corpus in testdata/fuzz/FuzzQueryRangeParse.
	f.Add("series=node_power_watts{node=n0}&from=0&to=7200000&step=60000&fn=mean")
	f.Add("series=x&from=-5&to=5&step=1&fn=rate")
	f.Add("series=&from=0&to=1&step=1")
	f.Add("from=abc&to=10&step=60")
	f.Add("series=x&from=9223372036854775807&to=-9223372036854775808&step=1")
	f.Add("series=x&from=0&to=10&step=0&fn=p95")
	f.Add("series=%zz&fn=&step=&&&=&")
	f.Fuzz(func(t *testing.T, raw string) {
		vals, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		for _, needStep := range []bool{true, false} {
			p, err := parseQueryParams(vals, needStep)
			if err != nil {
				continue
			}
			if p.series == "" {
				t.Fatalf("accepted empty series: %q", raw)
			}
			if p.to <= p.from {
				t.Fatalf("accepted empty range [%d, %d): %q", p.from, p.to, raw)
			}
			if needStep && p.step <= 0 {
				t.Fatalf("accepted non-positive step %d: %q", p.step, raw)
			}
			if !needStep && p.step != 0 {
				t.Fatalf("/query parse produced a step: %q", raw)
			}
			if _, err := parseAggFunc(string(p.fn)); err != nil {
				t.Fatalf("accepted unknown fn %q: %q", p.fn, raw)
			}
		}
	})
}
