// Package queryfront is the HTTP query front door of the ODA stack:
// planned queries against a TSDB store behind a sharded LRU result cache
// (TTL-bounded staleness) and per-tenant token-bucket quotas. odad mounts
// it on /query and /query_range; the chaos harness drives the very same
// handlers to check quota/result-cache consistency after a fault campaign.
//
// Tenants identify themselves with the X-ODA-Tenant header; missing means
// the shared "anonymous" tenant. Cache hits are marked with the
// X-ODA-Cache response header and are byte-identical to the response that
// populated the entry.
package queryfront

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/quota"
	"repro/internal/resultcache"
	"repro/internal/timeseries"
)

// Backend answers the two query shapes the front door serves. The plain
// single-store backend (ForStore) executes planned queries directly; a
// cluster router implements the same contract by routing each series to
// its owning peer.
//
// found=false means the series is unknown (a 404, not an error). A non-nil
// error means the backend could not answer (a 503 — never an empty 200).
// partial=true means the answer may be incomplete or stale (e.g. served by
// a replica while the owner is down); it is surfaced to the client via the
// X-ODA-Partial header and is never cached. tierStep reports the rollup
// tier the local planner picked, or 0 when no local plan applies.
type Backend interface {
	Reduce(key string, from, to int64, fn timeseries.AggFunc) (value float64, count int, tierStep int64, found, partial bool, err error)
	AggregateRange(key string, from, to, step int64, fn timeseries.AggFunc) (pts []timeseries.AggPoint, tierStep int64, found, partial bool, err error)
}

// PeerBackend is an optional Backend extension that attributes degraded
// answers to the peers that caused them. When the backend implements it, the
// X-ODA-Partial header carries the sorted, deduplicated peer names (each
// exactly once) instead of the bare "true" — so a dashboard can say WHICH
// node's data is stale, not just that something is. The cluster router
// implements it; the single-store backend has no peers and does not.
type PeerBackend interface {
	Backend
	ReducePeers(key string, from, to int64, fn timeseries.AggFunc) (value float64, count int, tierStep int64, found bool, peers []string, err error)
	AggregateRangePeers(key string, from, to, step int64, fn timeseries.AggFunc) (pts []timeseries.AggPoint, tierStep int64, found bool, peers []string, err error)
}

// storeBackend serves queries from one local store: the single-node
// deployment and the reference behavior the cluster path must match.
type storeBackend struct{ store *timeseries.Store }

// ForStore adapts a plain store into a query Backend.
func ForStore(st *timeseries.Store) Backend { return storeBackend{store: st} }

func (sb storeBackend) Reduce(key string, from, to int64, fn timeseries.AggFunc) (float64, int, int64, bool, bool, error) {
	id, ok := sb.store.IDForKey(key)
	if !ok {
		return 0, 0, 0, false, false, nil
	}
	plan := sb.store.Plan(id, from, to, 0, fn)
	v, n, err := sb.store.ReducePlanned(id, from, to, fn)
	if err != nil {
		return 0, 0, 0, false, false, err
	}
	return v, n, plan.TierStep, true, false, nil
}

func (sb storeBackend) AggregateRange(key string, from, to, step int64, fn timeseries.AggFunc) ([]timeseries.AggPoint, int64, bool, bool, error) {
	id, ok := sb.store.IDForKey(key)
	if !ok {
		return nil, 0, false, false, nil
	}
	plan := sb.store.Plan(id, from, to, step, fn)
	pts, err := sb.store.AggregatePlanned(id, from, to, step, fn)
	if err != nil {
		return nil, 0, false, false, err
	}
	return pts, plan.TierStep, true, false, nil
}

// Front serves /query and /query_range over a backend.
type Front struct {
	backend Backend
	cache   *resultcache.Cache
	quotas  *quota.Limiter
}

// Option tunes a Front.
type Option func(*options)

type options struct {
	clock func() time.Time
}

// WithClock injects the time source the cache TTL and quota refill use.
// Deterministic harnesses (the chaos campaign's consistency checker) pin
// it to a virtual clock; production uses time.Now.
func WithClock(now func() time.Time) Option {
	return func(o *options) { o.clock = now }
}

// New builds a front door over a backend (wrap a bare store with ForStore):
// cacheEntries/cacheTTL size the result cache (0 entries disables caching),
// rate/burst parameterize the per-tenant token buckets.
func New(backend Backend, cacheEntries int, cacheTTL time.Duration, rate, burst float64, opts ...Option) *Front {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	var cacheOpts []resultcache.Option
	var quotaOpts []quota.Option
	if o.clock != nil {
		cacheOpts = append(cacheOpts, resultcache.WithClock(o.clock))
		quotaOpts = append(quotaOpts, quota.WithClock(o.clock))
	}
	return &Front{
		backend: backend,
		cache:   resultcache.New(cacheEntries, cacheTTL, cacheOpts...),
		quotas:  quota.New(rate, burst, quotaOpts...),
	}
}

// CacheStats exposes the result cache counters for /stats.
func (qf *Front) CacheStats() resultcache.Stats { return qf.cache.Stats() }

// QuotaStats exposes the per-tenant quota counters for /stats.
func (qf *Front) QuotaStats() quota.Stats { return qf.quotas.Stats() }

// ParseRollupSteps parses a rollup tier flag: comma-separated Go durations
// ("1m,1h") to tier steps in milliseconds. Empty means no rollups.
func ParseRollupSteps(s string) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var steps []int64
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if d < time.Second {
			return nil, fmt.Errorf("tier resolution %s below 1s", d)
		}
		steps = append(steps, d.Milliseconds())
	}
	return steps, nil
}

// queryParams is one parsed /query or /query_range request.
type queryParams struct {
	series string
	from   int64
	to     int64
	step   int64 // 0 for /query (single whole-window reduction)
	fn     timeseries.AggFunc
}

// parseAggFunc validates the fn parameter ("" defaults to mean).
func parseAggFunc(s string) (timeseries.AggFunc, error) {
	if s == "" {
		return timeseries.AggMean, nil
	}
	switch fn := timeseries.AggFunc(s); fn {
	case timeseries.AggMean, timeseries.AggSum, timeseries.AggMin, timeseries.AggMax,
		timeseries.AggCount, timeseries.AggRate, timeseries.AggStd, timeseries.AggP95:
		return fn, nil
	}
	return "", fmt.Errorf("unknown fn %q", s)
}

// parseQueryParams validates the common query parameters. needStep selects
// the /query_range contract (positive step required); /query rejects a step
// parameter outright.
func parseQueryParams(vals url.Values, needStep bool) (queryParams, error) {
	var p queryParams
	p.series = vals.Get("series")
	if p.series == "" {
		return p, fmt.Errorf("missing series parameter")
	}
	var err error
	if p.from, err = strconv.ParseInt(vals.Get("from"), 10, 64); err != nil {
		return p, fmt.Errorf("bad from: %v", err)
	}
	if p.to, err = strconv.ParseInt(vals.Get("to"), 10, 64); err != nil {
		return p, fmt.Errorf("bad to: %v", err)
	}
	if p.to <= p.from {
		return p, fmt.Errorf("empty range: to %d <= from %d", p.to, p.from)
	}
	if needStep {
		if p.step, err = strconv.ParseInt(vals.Get("step"), 10, 64); err != nil {
			return p, fmt.Errorf("bad step: %v", err)
		}
		if p.step <= 0 {
			return p, fmt.Errorf("step must be positive, got %d", p.step)
		}
	} else if vals.Get("step") != "" {
		return p, fmt.Errorf("step is only valid on /query_range")
	}
	if p.fn, err = parseAggFunc(vals.Get("fn")); err != nil {
		return p, err
	}
	return p, nil
}

// admit applies the per-tenant quota, answering 429 when the tenant's
// bucket is empty.
func (qf *Front) admit(w http.ResponseWriter, r *http.Request) bool {
	tenant := r.Header.Get("X-ODA-Tenant")
	if tenant == "" {
		tenant = "anonymous"
	}
	if !qf.quotas.Allow(tenant) {
		http.Error(w, "query quota exceeded", http.StatusTooManyRequests)
		return false
	}
	return true
}

// serveCached writes the cached response for key if present.
func (qf *Front) serveCached(w http.ResponseWriter, key string) bool {
	body, ok := qf.cache.Get(key)
	if !ok {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-ODA-Cache", "hit")
	_, _ = w.Write(body)
	return true
}

// partialHeader renders the X-ODA-Partial value: the degraded peers, sorted
// and deduplicated so each appears exactly once, or "true" when the backend
// cannot name them.
func partialHeader(peers []string) string {
	if len(peers) == 0 {
		return "true"
	}
	uniq := append([]string(nil), peers...)
	sort.Strings(uniq)
	j := 0
	for i, p := range uniq {
		if i == 0 || p != uniq[j-1] {
			uniq[j] = p
			j++
		}
	}
	return strings.Join(uniq[:j], ",")
}

func (qf *Front) finish(w http.ResponseWriter, key string, partial bool, peers []string, payload any) {
	body, err := json.Marshal(payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body = append(body, '\n')
	if partial {
		// A degraded answer (replica-served, possibly lagging) is flagged
		// and never cached: the next request should retry the owner.
		w.Header().Set("X-ODA-Partial", partialHeader(peers))
	} else {
		qf.cache.Put(key, body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-ODA-Cache", "miss")
	_, _ = w.Write(body)
}

// HandleQuery serves GET /query: a single planned reduction over
// [from, to). The tier the planner picked is reported for observability.
func (qf *Front) HandleQuery(w http.ResponseWriter, r *http.Request) {
	if !qf.admit(w, r) {
		return
	}
	p, err := parseQueryParams(r.URL.Query(), false)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := "q|" + p.series + "|" + strconv.FormatInt(p.from, 10) + "|" + strconv.FormatInt(p.to, 10) + "|" + string(p.fn)
	if qf.serveCached(w, key) {
		return
	}
	var (
		val      float64
		n        int
		tierStep int64
		found    bool
		partial  bool
		peers    []string
	)
	if pb, ok := qf.backend.(PeerBackend); ok {
		val, n, tierStep, found, peers, err = pb.ReducePeers(p.series, p.from, p.to, p.fn)
		partial = len(peers) > 0
	} else {
		val, n, tierStep, found, partial, err = qf.backend.Reduce(p.series, p.from, p.to, p.fn)
	}
	if err != nil {
		// The backend could not answer (store failure, no peer reachable):
		// an explicit 503, never an empty-but-200 body a dashboard would
		// happily render as "no data".
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if !found {
		http.Error(w, "unknown series "+p.series, http.StatusNotFound)
		return
	}
	qf.finish(w, key, partial, peers, map[string]any{
		"series":    p.series,
		"from":      p.from,
		"to":        p.to,
		"fn":        p.fn,
		"value":     val,
		"count":     n,
		"tier_step": tierStep,
	})
}

// HandleQueryRange serves GET /query_range: planned step-bucketed
// aggregation over [from, to).
func (qf *Front) HandleQueryRange(w http.ResponseWriter, r *http.Request) {
	if !qf.admit(w, r) {
		return
	}
	p, err := parseQueryParams(r.URL.Query(), true)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := "qr|" + p.series + "|" + strconv.FormatInt(p.from, 10) + "|" + strconv.FormatInt(p.to, 10) + "|" +
		strconv.FormatInt(p.step, 10) + "|" + string(p.fn)
	if qf.serveCached(w, key) {
		return
	}
	var (
		pts      []timeseries.AggPoint
		tierStep int64
		found    bool
		partial  bool
		peers    []string
	)
	if pb, ok := qf.backend.(PeerBackend); ok {
		pts, tierStep, found, peers, err = pb.AggregateRangePeers(p.series, p.from, p.to, p.step, p.fn)
		partial = len(peers) > 0
	} else {
		pts, tierStep, found, partial, err = qf.backend.AggregateRange(p.series, p.from, p.to, p.step, p.fn)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if !found {
		http.Error(w, "unknown series "+p.series, http.StatusNotFound)
		return
	}
	type point struct {
		Start int64   `json:"start"`
		Value float64 `json:"value"`
	}
	points := make([]point, len(pts))
	for i, ap := range pts {
		points[i] = point{Start: ap.Start, Value: ap.Value}
	}
	qf.finish(w, key, partial, peers, map[string]any{
		"series":    p.series,
		"from":      p.from,
		"to":        p.to,
		"step":      p.step,
		"fn":        p.fn,
		"tier_step": tierStep,
		"points":    points,
	})
}
