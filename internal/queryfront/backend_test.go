package queryfront

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/timeseries"
)

// fakeBackend scripts Backend answers so the handler's error/partial/found
// plumbing can be tested without a real store or cluster.
type fakeBackend struct {
	err     error
	found   bool
	partial bool
	value   float64
	count   int
	pts     []timeseries.AggPoint
}

func (f *fakeBackend) Reduce(key string, from, to int64, fn timeseries.AggFunc) (float64, int, int64, bool, bool, error) {
	return f.value, f.count, 0, f.found, f.partial, f.err
}

func (f *fakeBackend) AggregateRange(key string, from, to, step int64, fn timeseries.AggFunc) ([]timeseries.AggPoint, int64, bool, bool, error) {
	return f.pts, 0, f.found, f.partial, f.err
}

func doQuery(t *testing.T, qf *Front, target string, rangeQ bool) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", target, nil)
	if rangeQ {
		qf.HandleQueryRange(rec, req)
	} else {
		qf.HandleQuery(rec, req)
	}
	return rec
}

// A backend failure must surface as an explicit 503, never as an empty 200
// a dashboard would render as "no data". Regression for the error paths on
// both endpoints.
func TestBackendErrorIs503(t *testing.T) {
	fb := &fakeBackend{err: errors.New("no peer reachable")}
	qf := New(fb, 64, time.Minute, 1000, 1000)

	q := "/query?series=" + url.QueryEscape("cpu") + "&from=0&to=1000"
	if rec := doQuery(t, qf, q, false); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/query on backend error: status %d, want 503 (body %q)", rec.Code, rec.Body.String())
	}
	qr := "/query_range?series=" + url.QueryEscape("cpu") + "&from=0&to=1000&step=100"
	if rec := doQuery(t, qf, qr, true); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/query_range on backend error: status %d, want 503 (body %q)", rec.Code, rec.Body.String())
	}

	// An error response must not poison the cache: once the backend heals,
	// the next request serves fresh data, not a cached failure.
	fb.err = nil
	fb.found = true
	fb.value, fb.count = 42, 7
	rec := doQuery(t, qf, q, false)
	if rec.Code != http.StatusOK {
		t.Fatalf("after heal: status %d, want 200", rec.Code)
	}
	if rec.Header().Get("X-ODA-Cache") != "miss" {
		t.Fatalf("after heal: cache header %q, want miss (errors must not be cached)", rec.Header().Get("X-ODA-Cache"))
	}
}

// Partial (replica-served) answers carry the X-ODA-Partial marker and are
// never cached, so a healed owner serves the next request exactly.
func TestPartialResultMarkedAndUncached(t *testing.T) {
	fb := &fakeBackend{found: true, partial: true, value: 1, count: 1,
		pts: []timeseries.AggPoint{{Start: 0, Value: 1}}}
	qf := New(fb, 64, time.Minute, 1000, 1000)

	q := "/query?series=" + url.QueryEscape("cpu") + "&from=0&to=1000"
	rec := doQuery(t, qf, q, false)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-ODA-Partial") != "true" {
		t.Fatal("partial answer missing X-ODA-Partial header")
	}

	// Second request: still a cache miss (partials are not cached), and once
	// the backend reports exact again, the partial marker disappears.
	fb.partial = false
	rec = doQuery(t, qf, q, false)
	if rec.Header().Get("X-ODA-Cache") != "miss" {
		t.Fatal("partial answer was cached; it must not be")
	}
	if rec.Header().Get("X-ODA-Partial") != "" {
		t.Fatal("exact answer wrongly marked partial")
	}

	// Exact answers do cache.
	rec = doQuery(t, qf, q, false)
	if rec.Header().Get("X-ODA-Cache") != "hit" {
		t.Fatal("exact answer did not populate the result cache")
	}

	fb.partial = true
	qr := "/query_range?series=" + url.QueryEscape("cpu") + "&from=0&to=1000&step=100"
	rec = doQuery(t, qf, qr, true)
	if rec.Code != http.StatusOK || rec.Header().Get("X-ODA-Partial") != "true" {
		t.Fatalf("range partial: status %d, partial header %q", rec.Code, rec.Header().Get("X-ODA-Partial"))
	}
}

// fakePeerBackend extends fakeBackend with the PeerBackend surface, scripting
// which peers degraded the answer.
type fakePeerBackend struct {
	fakeBackend
	peers []string
}

func (f *fakePeerBackend) ReducePeers(key string, from, to int64, fn timeseries.AggFunc) (float64, int, int64, bool, []string, error) {
	return f.value, f.count, 0, f.found, f.peers, f.err
}

func (f *fakePeerBackend) AggregateRangePeers(key string, from, to, step int64, fn timeseries.AggFunc) ([]timeseries.AggPoint, int64, bool, []string, error) {
	return f.pts, 0, f.found, f.peers, f.err
}

// A peer-aware backend's degraded answer names each unreachable peer exactly
// once, sorted, no matter how the backend reports them; with no names the
// header falls back to "true". Nil peers mean an exact answer: no header.
func TestPartialHeaderNamesEachPeerOnce(t *testing.T) {
	fb := &fakePeerBackend{fakeBackend: fakeBackend{found: true, value: 3, count: 2,
		pts: []timeseries.AggPoint{{Start: 0, Value: 3}}}}
	qf := New(fb, 64, time.Minute, 1000, 1000)

	fb.peers = []string{"n2", "n1", "n2", "n1", "n2"}
	q := "/query?series=" + url.QueryEscape("cpu") + "&from=0&to=1000"
	rec := doQuery(t, qf, q, false)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-ODA-Partial"); got != "n1,n2" {
		t.Fatalf("X-ODA-Partial = %q, want %q (sorted, each peer once)", got, "n1,n2")
	}

	qr := "/query_range?series=" + url.QueryEscape("cpu") + "&from=0&to=1000&step=100"
	if rec = doQuery(t, qf, qr, true); rec.Header().Get("X-ODA-Partial") != "n1,n2" {
		t.Fatalf("range X-ODA-Partial = %q, want %q", rec.Header().Get("X-ODA-Partial"), "n1,n2")
	}

	// Exact answer: no peers, no header — and it caches.
	fb.peers = nil
	rec = doQuery(t, qf, q, false)
	if rec.Header().Get("X-ODA-Partial") != "" {
		t.Fatal("exact peer-backend answer wrongly marked partial")
	}
	rec = doQuery(t, qf, q, false)
	if rec.Header().Get("X-ODA-Cache") != "hit" {
		t.Fatal("exact peer-backend answer did not cache")
	}

	// A peer-aware backend that cannot answer at all is still a 503, never
	// an empty 200.
	fb.err = errors.New("all owners and fallbacks unreachable")
	fb.found = false
	q2 := "/query?series=" + url.QueryEscape("cpu") + "&from=0&to=2000"
	if rec = doQuery(t, qf, q2, false); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("peer backend error: status %d, want 503 (body %q)", rec.Code, rec.Body.String())
	}
}

// partialHeader unit coverage: nil names fall back to "true"; duplicates
// collapse and order is canonical.
func TestPartialHeaderRendering(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{nil, "true"},
		{[]string{}, "true"},
		{[]string{"b", "a", "b"}, "a,b"},
		{[]string{"n3"}, "n3"},
		{[]string{"x", "x", "x"}, "x"},
	}
	for _, c := range cases {
		if got := partialHeader(c.in); got != c.want {
			t.Fatalf("partialHeader(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Unknown series stays a 404 through the backend indirection.
func TestUnknownSeriesStill404(t *testing.T) {
	qf := New(&fakeBackend{found: false}, 64, time.Minute, 1000, 1000)
	q := "/query?series=" + url.QueryEscape("nope") + "&from=0&to=1000"
	if rec := doQuery(t, qf, q, false); rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
}
