package descriptive

import (
	"strings"
	"testing"

	"repro/internal/oda"
	"repro/internal/simulation"
)

// simCtx runs a small virtual center for a few hours and returns a context
// over its telemetry. Shared by the test functions; the sim is deterministic
// so caching per seed is safe.
var cachedDC *simulation.DataCenter

func simCtx(t *testing.T) *oda.RunContext {
	t.Helper()
	if cachedDC == nil {
		cfg := simulation.DefaultConfig(101)
		cfg.Nodes = 16
		cfg.Workload.MaxNodes = 8
		cfg.Workload.MeanInterarrival = 45
		cachedDC = simulation.New(cfg)
		cachedDC.RunFor(8 * 3600)
	}
	return &oda.RunContext{
		Store:  cachedDC.Store,
		From:   0,
		To:     cachedDC.Now() + 1,
		System: cachedDC,
	}
}

func TestPUE(t *testing.T) {
	res, err := PUE{}.Run(simCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Value("pue_mean"); m <= 1 || m > 2 {
		t.Fatalf("pue_mean = %v", m)
	}
	if res.Value("pue_p95") < res.Value("pue_mean")*0.9 {
		t.Fatalf("p95 %v implausible vs mean %v", res.Value("pue_p95"), res.Value("pue_mean"))
	}
	if res.Value("samples") == 0 || res.Summary == "" {
		t.Fatalf("res = %+v", res)
	}
	// Empty window errors.
	ctx := simCtx(t)
	ctx.From, ctx.To = 1, 2
	if _, err := (PUE{}).Run(ctx); err == nil {
		t.Fatal("empty window should error")
	}
}

func TestITUE(t *testing.T) {
	res, err := ITUE{}.Run(simCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	itue := res.Value("itue")
	if itue <= 1 || itue > 1.5 {
		t.Fatalf("itue = %v", itue)
	}
	if res.Value("nodes") != 16 {
		t.Fatalf("nodes = %v", res.Value("nodes"))
	}
	if res.Value("fan_power_w") <= 0 || res.Value("fan_power_w") >= res.Value("total_power_w") {
		t.Fatalf("fan power = %v of %v", res.Value("fan_power_w"), res.Value("total_power_w"))
	}
}

func TestSIE(t *testing.T) {
	res, err := SIE{}.Run(simCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	e := res.Value("sie_bits")
	if e <= 0 || e > res.Value("sie_max_bits") {
		t.Fatalf("entropy = %v (max %v)", e, res.Value("sie_max_bits"))
	}
	if n := res.Value("sie_normalized"); n <= 0 || n > 1 {
		t.Fatalf("normalized = %v", n)
	}
}

func TestSlowdown(t *testing.T) {
	res, err := Slowdown{}.Run(simCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("jobs") == 0 {
		t.Fatal("no jobs scored")
	}
	if res.Value("slowdown_mean") < 1 {
		t.Fatalf("slowdown_mean = %v", res.Value("slowdown_mean"))
	}
	if res.Value("slowdown_p95") < res.Value("slowdown_mean") {
		t.Fatalf("p95 %v < mean %v", res.Value("slowdown_p95"), res.Value("slowdown_mean"))
	}
	// Without a system handle it fails cleanly.
	ctx := simCtx(t)
	ctx.System = nil
	if _, err := (Slowdown{}).Run(ctx); err == nil {
		t.Fatal("missing system handle should error")
	}
}

func TestRoofline(t *testing.T) {
	res, err := Roofline{}.Run(simCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	total := res.Value("jobs")
	sum := res.Value("compute_bound") + res.Value("memory_bound") + res.Value("io_bound")
	if total == 0 || sum != total {
		t.Fatalf("classification does not partition: %v of %v", sum, total)
	}
}

func TestDashboards(t *testing.T) {
	d := Dashboards{}
	res, err := d.Run(simCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("panels") != 5 || res.Value("series") == 0 {
		t.Fatalf("res = %+v", res)
	}
	db := d.Build(simCtx(t))
	text := db.RenderText(simCtx(t).To)
	if !strings.Contains(text, "== Facility ==") || !strings.Contains(text, "node_power_watts") {
		t.Fatalf("dashboard text missing sections:\n%.400s", text)
	}
}

func TestRegister(t *testing.T) {
	g := oda.NewGrid()
	if err := Register(g); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 6 {
		t.Fatalf("registered %d capabilities", g.Len())
	}
	// The descriptive row of every pillar is covered.
	for _, p := range oda.Pillars() {
		if len(g.At(oda.Cell{Pillar: p, Type: oda.Descriptive})) == 0 {
			t.Fatalf("pillar %s descriptive cell empty", p)
		}
	}
	// Registering twice fails on duplicates.
	if err := Register(g); err == nil {
		t.Fatal("duplicate registration should error")
	}
}

func TestAllDescriptiveCapabilitiesRunViaGrid(t *testing.T) {
	g := oda.NewGrid()
	if err := Register(g); err != nil {
		t.Fatal(err)
	}
	results, errs := g.RunAll(simCtx(t))
	if len(errs) != 0 {
		t.Fatalf("capability errors: %v", errs)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for name, r := range results {
		if r.Summary == "" {
			t.Fatalf("%s produced no summary", name)
		}
	}
}
