// Package descriptive implements the framework's first analytics row:
// "what happened?". It computes the energy-efficiency KPIs the paper lists
// (PUE, ITUE, SIE, job slowdown), derives roofline-style boundedness
// classifications, and renders operator dashboards at the facility, system,
// scheduler and job levels.
//
// Every capability here is pure observation: aggregation, normalization and
// indicator computation over the telemetry archive — no knowledge
// extraction, matching the paper's definition of the descriptive type.
package descriptive

import (
	"fmt"
	"math"

	"repro/internal/dashboard"
	"repro/internal/metric"
	"repro/internal/oda"
	"repro/internal/simulation"
	"repro/internal/stats"
	"repro/internal/timeseries"
	"repro/internal/workload"
)

// profilePhases returns the canonical phases of an application class.
func profilePhases(c workload.Class) []workload.Phase {
	return workload.ProfileFor(c).Phases
}

// siteLabels selects facility-wide series.
var siteLabels = metric.NewLabels("site", "vdc")

// cell is a shorthand constructor.
func cell(p oda.Pillar, t oda.Type) oda.Cell { return oda.Cell{Pillar: p, Type: t} }

// PUE computes Power Usage Effectiveness statistics over the window from
// facility telemetry — the canonical descriptive KPI of the building pillar.
type PUE struct{}

// Meta implements oda.Capability.
func (PUE) Meta() oda.Meta {
	return oda.Meta{
		Name:        "pue-kpi",
		Description: "PUE calculation from facility power telemetry",
		Cells:       []oda.Cell{cell(oda.BuildingInfrastructure, oda.Descriptive)},
		Refs:        []string{"[4]"},
		Reads:       []oda.Resource{oda.StoreResource("facility_pue")},
	}
}

// Run implements oda.Capability.
func (PUE) Run(ctx *oda.RunContext) (oda.Result, error) {
	id := metric.ID{Name: "facility_pue", Labels: siteLabels}
	// Stream off the archive, keeping only the positive samples: the zero
	// readings from before the first IT load are meaningless. Only the
	// filtered values are gathered (the p95 needs them all at once).
	var clean []float64
	err := ctx.Store.Each(id, ctx.From, ctx.To, func(sm metric.Sample) bool {
		if sm.V > 0 {
			clean = append(clean, sm.V)
		}
		return true
	})
	if err != nil {
		return oda.Result{}, err
	}
	if len(clean) == 0 {
		return oda.Result{}, fmt.Errorf("descriptive: no PUE samples in window")
	}
	s, _ := stats.Summarize(clean)
	p95, _ := stats.Quantile(clean, 0.95)
	return oda.Result{
		Summary: fmt.Sprintf("PUE mean %.3f, p95 %.3f over %d samples", s.Mean, p95, s.Count),
		Values: map[string]float64{
			"pue_mean": s.Mean, "pue_min": s.Min, "pue_max": s.Max,
			"pue_p95": p95, "pue_last": clean[len(clean)-1], "samples": float64(s.Count),
		},
	}, nil
}

// ITUE computes IT Power Usage Effectiveness: total node power over node
// power net of node-internal cooling (fans), following Patterson et al.
// Fan draw is reconstructed from fan-speed telemetry and the fleet's
// cubic fan-power model.
type ITUE struct {
	// MaxFanPowerW is the per-node fan draw at 100% duty (default 28, the
	// simulator's DefaultNodeConfig value).
	MaxFanPowerW float64
}

// Meta implements oda.Capability.
func (ITUE) Meta() oda.Meta {
	return oda.Meta{
		Name:        "itue-kpi",
		Description: "ITUE calculation from node power and fan telemetry",
		Cells:       []oda.Cell{cell(oda.SystemHardware, oda.Descriptive)},
		Refs:        []string{"[59]"},
		Reads: []oda.Resource{
			oda.StoreResource("node_power_watts"),
			oda.StoreResource("node_fan_speed"),
		},
	}
}

// Run implements oda.Capability.
func (c ITUE) Run(ctx *oda.RunContext) (oda.Result, error) {
	maxFan := c.MaxFanPowerW
	if maxFan <= 0 {
		maxFan = 28
	}
	powerIDs := ctx.Store.Select("node_power_watts", nil)
	if len(powerIDs) == 0 {
		return oda.Result{}, fmt.Errorf("descriptive: no node power telemetry")
	}
	var totalPower, fanPower float64
	var nodes int
	for _, pid := range powerIDs {
		node, _ := pid.Labels.Get("node")
		fanID := metric.ID{Name: "node_fan_speed", Labels: pid.Labels}
		// Per-node means go through the query planner: long windows are
		// served from sealed rollup tiers (exact for AggMean) and only the
		// unsealed tail touches raw chunks.
		pMean, pn, err := ctx.Store.ReducePlanned(pid, ctx.From, ctx.To, timeseries.AggMean)
		if err != nil || pn == 0 {
			continue
		}
		fMean, fn, err := ctx.Store.ReducePlanned(fanID, ctx.From, ctx.To, timeseries.AggMean)
		if err != nil || fn == 0 {
			return oda.Result{}, fmt.Errorf("descriptive: node %s has power but no fan telemetry", node)
		}
		totalPower += pMean
		fm := fMean / 100
		fanPower += maxFan * fm * fm * fm
		nodes++
	}
	useful := totalPower - fanPower
	if useful <= 0 {
		return oda.Result{}, fmt.Errorf("descriptive: degenerate ITUE (total %.1f, fans %.1f)", totalPower, fanPower)
	}
	itue := totalPower / useful
	return oda.Result{
		Summary: fmt.Sprintf("ITUE %.4f across %d nodes (%.0f W total, %.0f W fans)", itue, nodes, totalPower, fanPower),
		Values: map[string]float64{
			"itue": itue, "nodes": float64(nodes),
			"total_power_w": totalPower, "fan_power_w": fanPower,
		},
	}, nil
}

// SIE computes a System Information Entropy indicator after Hui et al.:
// the Shannon entropy of the node-utilization distribution. Low entropy
// means the system sits in few states (all idle / all busy); spikes in
// entropy mark state transitions worth an operator's attention.
type SIE struct{}

// Meta implements oda.Capability.
func (SIE) Meta() oda.Meta {
	return oda.Meta{
		Name:        "sie-indicator",
		Description: "System Information Entropy over node utilization states",
		Cells:       []oda.Cell{cell(oda.SystemHardware, oda.Descriptive)},
		Refs:        []string{"[14]"},
		Reads:       []oda.Resource{oda.StoreResource("node_utilization")},
	}
}

// Run implements oda.Capability.
func (SIE) Run(ctx *oda.RunContext) (oda.Result, error) {
	ids := ctx.Store.Select("node_utilization", nil)
	if len(ids) == 0 {
		return oda.Result{}, fmt.Errorf("descriptive: no utilization telemetry")
	}
	hist := stats.NewHistogram(0, 100.0000001, 10)
	var samples int
	for _, id := range ids {
		// The histogram is a streaming accumulator — feed it straight off
		// the cursor instead of materializing each node's series.
		err := ctx.Store.Each(id, ctx.From, ctx.To, func(sm metric.Sample) bool {
			hist.Add(sm.V)
			samples++
			return true
		})
		if err != nil {
			return oda.Result{}, err
		}
	}
	if samples == 0 {
		return oda.Result{}, fmt.Errorf("descriptive: no utilization samples in window")
	}
	entropy := hist.Entropy()
	maxEntropy := math.Log2(float64(len(hist.Counts)))
	return oda.Result{
		Summary: fmt.Sprintf("SIE %.3f bits (max %.3f) over %d samples", entropy, maxEntropy, samples),
		Values: map[string]float64{
			"sie_bits": entropy, "sie_max_bits": maxEntropy,
			"sie_normalized": entropy / maxEntropy, "samples": float64(samples),
		},
	}, nil
}

// Slowdown computes the scheduler quality-of-service KPI (Feitelson's
// bounded slowdown) over jobs finished in the window.
type Slowdown struct{}

// Meta implements oda.Capability.
func (Slowdown) Meta() oda.Meta {
	return oda.Meta{
		Name:        "slowdown-kpi",
		Description: "bounded job slowdown and wait statistics from the scheduler",
		Cells:       []oda.Cell{cell(oda.SystemSoftware, oda.Descriptive)},
		Refs:        []string{"[60]"},
		Reads:       []oda.Resource{oda.ResJobQueue},
		// MetricsAt accrues utilization bookkeeping into the scheduler, so
		// this descriptive KPI honestly declares a queue write.
		Writes: []oda.Resource{oda.ResJobQueue},
	}
}

// Run implements oda.Capability.
func (Slowdown) Run(ctx *oda.RunContext) (oda.Result, error) {
	dc, err := oda.SystemAs[*simulation.DataCenter](ctx)
	if err != nil {
		return oda.Result{}, err
	}
	var slows, waits []float64
	for _, j := range dc.Cluster.Finished() {
		if j.EndTime < ctx.From || j.EndTime >= ctx.To {
			continue
		}
		slows = append(slows, j.Slowdown())
		waits = append(waits, j.WaitSeconds())
	}
	if len(slows) == 0 {
		return oda.Result{}, fmt.Errorf("descriptive: no finished jobs in window")
	}
	p95, _ := stats.Quantile(slows, 0.95)
	m := dc.Cluster.MetricsAt(ctx.To)
	return oda.Result{
		Summary: fmt.Sprintf("mean slowdown %.2f (p95 %.2f) over %d jobs, utilization %.1f%%",
			stats.Mean(slows), p95, len(slows), m.Utilization*100),
		Values: map[string]float64{
			"slowdown_mean": stats.Mean(slows), "slowdown_p95": p95,
			"wait_mean_s": stats.Mean(waits), "jobs": float64(len(slows)),
			"utilization": m.Utilization,
		},
	}, nil
}

// Roofline classifies finished jobs as compute- or memory/IO-bound from
// their dominant execution phase, the operational use of Williams et al.'s
// roofline model for spotting bottlenecked applications.
type Roofline struct{}

// Meta implements oda.Capability.
func (Roofline) Meta() oda.Meta {
	return oda.Meta{
		Name:        "roofline-model",
		Description: "roofline-style boundedness classification of finished jobs",
		Cells:       []oda.Cell{cell(oda.Applications, oda.Descriptive)},
		Refs:        []string{"[63]"},
		Reads:       []oda.Resource{oda.ResJobQueue},
	}
}

// Run implements oda.Capability.
func (Roofline) Run(ctx *oda.RunContext) (oda.Result, error) {
	dc, err := oda.SystemAs[*simulation.DataCenter](ctx)
	if err != nil {
		return oda.Result{}, err
	}
	var computeBound, memoryBound, ioBound, total int
	for _, j := range dc.Cluster.Finished() {
		if j.EndTime < ctx.From || j.EndTime >= ctx.To {
			continue
		}
		total++
		// Weight phases by work fraction to find the dominant demand.
		var cw, mw, iw float64
		prof := j.Class
		for _, ph := range profilePhases(prof) {
			cw += ph.ComputeFrac * ph.WorkFrac
			mw += ph.MemoryFrac * ph.WorkFrac
			iw += ph.IOFrac * ph.WorkFrac
		}
		switch stats.ArgMax([]float64{cw, mw, iw}) {
		case 0:
			computeBound++
		case 1:
			memoryBound++
		default:
			ioBound++
		}
	}
	if total == 0 {
		return oda.Result{}, fmt.Errorf("descriptive: no finished jobs in window")
	}
	return oda.Result{
		Summary: fmt.Sprintf("%d jobs: %d compute-bound, %d memory-bound, %d io-bound",
			total, computeBound, memoryBound, ioBound),
		Values: map[string]float64{
			"jobs": float64(total), "compute_bound": float64(computeBound),
			"memory_bound": float64(memoryBound), "io_bound": float64(ioBound),
		},
	}, nil
}

// Dashboards renders the four operator views (facility, system, scheduler,
// job) the survey's descriptive column is full of: ClusterCockpit-, NERSC-
// and XDMoD-style panels, here as text/JSON over the same store.
type Dashboards struct{}

// Meta implements oda.Capability.
func (Dashboards) Meta() oda.Meta {
	return oda.Meta{
		Name:        "ops-dashboards",
		Description: "facility/system/scheduler/job dashboards over the telemetry archive",
		Cells: []oda.Cell{
			cell(oda.BuildingInfrastructure, oda.Descriptive),
			cell(oda.SystemHardware, oda.Descriptive),
			cell(oda.SystemSoftware, oda.Descriptive),
			cell(oda.Applications, oda.Descriptive),
		},
		Refs:  []string{"[1]", "[5]", "[6]", "[7]", "[8]", "[10]", "[61]", "[62]"},
		Reads: []oda.Resource{oda.StoreResource("")}, // panels span the whole archive
	}
}

// Build returns the dashboard over a store, exported so binaries can mount
// its HTTP handler directly.
func (Dashboards) Build(ctx *oda.RunContext) *dashboard.Dashboard {
	window := ctx.To - ctx.From
	// Past half a day the panels render through the query planner at 1m
	// resolution — the collection cadence — so cost tracks rollup windows.
	var step int64
	if window >= 12*3600*1000 {
		step = timeseries.TierStep1m
	}
	return &dashboard.Dashboard{
		Store: ctx.Store,
		Panels: []dashboard.Panel{
			{Title: "Facility", Name: "", Selector: siteLabels, WindowMs: window, StepMs: step},
			{Title: "Node power", Name: "node_power_watts", WindowMs: window, StepMs: step},
			{Title: "Node temperature", Name: "node_cpu_temp_celsius", WindowMs: window, StepMs: step},
			{Title: "Network uplinks", Name: "net_uplink_utilization", WindowMs: window, StepMs: step},
			{Title: "Scheduler", Name: "sched_queue_length", WindowMs: window, StepMs: step},
		},
	}
}

// Run implements oda.Capability.
func (d Dashboards) Run(ctx *oda.RunContext) (oda.Result, error) {
	db := d.Build(ctx)
	panels := db.Snapshot(ctx.To)
	var series int
	for _, p := range panels {
		series += len(p.Series)
	}
	if series == 0 {
		return oda.Result{}, fmt.Errorf("descriptive: dashboards found no series")
	}
	return oda.Result{
		Summary: fmt.Sprintf("rendered %d panels over %d series", len(panels), series),
		Values:  map[string]float64{"panels": float64(len(panels)), "series": float64(series)},
	}, nil
}

// Register adds every descriptive capability to the grid.
func Register(g *oda.Grid) error {
	for _, c := range []oda.Capability{PUE{}, ITUE{}, SIE{}, Slowdown{}, Roofline{}, Dashboards{}} {
		if err := g.Register(c); err != nil {
			return err
		}
	}
	return nil
}
