package quota

import (
	"fmt"
	"testing"
	"time"
)

func TestBurstThenRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	l := New(2, 3, WithClock(func() time.Time { return now }))
	for i := 0; i < 3; i++ {
		if !l.Allow("a") {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	if l.Allow("a") {
		t.Fatal("empty bucket allowed a request")
	}
	now = now.Add(time.Second) // +2 tokens
	if !l.Allow("a") || !l.Allow("a") {
		t.Fatal("refilled tokens not granted")
	}
	if l.Allow("a") {
		t.Fatal("over-refilled")
	}
	st := l.Stats()
	if st.Allowed != 5 || st.Rejected != 2 || st.Tenants != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTenantsIsolated(t *testing.T) {
	now := time.Unix(1000, 0)
	l := New(1, 1, WithClock(func() time.Time { return now }))
	if !l.Allow("a") {
		t.Fatal("a's first request rejected")
	}
	if l.Allow("a") {
		t.Fatal("a's bucket should be empty")
	}
	if !l.Allow("b") {
		t.Fatal("b throttled by a's traffic")
	}
}

func TestDisabledLimiter(t *testing.T) {
	var l *Limiter
	if !l.Allow("anyone") {
		t.Fatal("nil limiter rejected")
	}
	if st := l.Stats(); st != (Stats{}) {
		t.Fatalf("nil limiter stats = %+v", st)
	}
	if New(0, 10) != nil {
		t.Fatal("rate 0 should disable")
	}
}

func TestTenantBound(t *testing.T) {
	now := time.Unix(1000, 0)
	l := New(1000, 1, WithClock(func() time.Time { return now }))
	for i := 0; i < maxTenants+100; i++ {
		l.Allow(fmt.Sprintf("t%d", i))
	}
	st := l.Stats()
	if st.Tenants > maxTenants+1 {
		t.Fatalf("tenant map unbounded: %d", st.Tenants)
	}
	// Overflow tenants share one bucket: with burst 1 and no time passing,
	// only the first overflow request was allowed.
	if st.Rejected != 99 {
		t.Fatalf("overflow bucket not shared: %d rejections", st.Rejected)
	}
}
