// Package quota rate-limits query traffic per tenant with token buckets:
// each tenant accumulates rate tokens per second up to burst, and a request
// that finds the bucket empty is rejected. The front door maps rejection to
// HTTP 429, so one runaway dashboard cannot starve the other tenants'
// queries — the per-tenant isolation the ODA framework papers call out as a
// production requirement for shared query services.
package quota

import (
	"sync"
	"sync/atomic"
	"time"
)

// maxTenants bounds the bucket map so unauthenticated traffic inventing
// tenant names cannot grow it without limit; once full, unknown tenants
// share the overflow bucket (rate-limited collectively, never a bypass).
const maxTenants = 4096

// overflowTenant keys the shared bucket for tenants past the map bound.
const overflowTenant = "\x00overflow"

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Allowed  uint64
	Rejected uint64
	Tenants  int
}

// Limiter hands out per-tenant token buckets. Construct with New; a nil
// Limiter allows everything (quotas disabled).
type Limiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket

	allowed  atomic.Uint64
	rejected atomic.Uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// Option tunes a Limiter.
type Option func(*Limiter)

// WithClock injects the time source (tests freeze and advance it).
func WithClock(now func() time.Time) Option {
	return func(l *Limiter) { l.now = now }
}

// New builds a limiter granting each tenant rate tokens per second with the
// given burst ceiling. A rate <= 0 returns nil: quotas disabled, Allow
// always true.
func New(rate, burst float64, opts ...Option) *Limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	l := &Limiter{rate: rate, burst: burst, now: time.Now, buckets: make(map[string]*bucket)}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Allow consumes one token from tenant's bucket, reporting whether the
// request may proceed.
func (l *Limiter) Allow(tenant string) bool {
	if l == nil {
		return true
	}
	now := l.now()
	l.mu.Lock()
	b, ok := l.buckets[tenant]
	if !ok {
		if len(l.buckets) >= maxTenants {
			tenant = overflowTenant
			b = l.buckets[tenant]
		}
		if b == nil {
			b = &bucket{tokens: l.burst, last: now}
			l.buckets[tenant] = b
		}
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	allowed := b.tokens >= 1
	if allowed {
		b.tokens--
	}
	l.mu.Unlock()
	if allowed {
		l.allowed.Add(1)
	} else {
		l.rejected.Add(1)
	}
	return allowed
}

// Stats snapshots the limiter counters; zero for a nil (disabled) limiter.
func (l *Limiter) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	st := Stats{Allowed: l.allowed.Load(), Rejected: l.rejected.Load()}
	l.mu.Lock()
	st.Tenants = len(l.buckets)
	l.mu.Unlock()
	return st
}
