// Package workload models the Applications pillar: HPC jobs with
// class-specific execution profiles (instruction mix, network and I/O
// demand, phase structure), a deterministic synthetic job generator with
// diurnal Poisson arrivals and a skewed user population, and an SWF-like
// trace reader/writer.
//
// Jobs progress in "work units": one unit is one node-second of execution
// at full frequency with no contention, so a job's actual runtime stretches
// under DVFS or network contention exactly the way the prescriptive and
// predictive analytics expect.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Class is an application behaviour class.
type Class uint8

// The application classes the generator draws from. CryptoMiner models the
// abuse case the fingerprinting diagnostics (Taxonomist-style) must catch:
// maximum compute intensity, no I/O, no network, near-constant profile.
const (
	ComputeBound Class = iota
	MemoryBound
	IOBound
	NetworkBound
	Balanced
	CryptoMiner
	numClasses
)

// NumClasses is the number of application classes.
const NumClasses = int(numClasses)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ComputeBound:
		return "compute"
	case MemoryBound:
		return "memory"
	case IOBound:
		return "io"
	case NetworkBound:
		return "network"
	case Balanced:
		return "balanced"
	case CryptoMiner:
		return "cryptominer"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Phase is one stage of an application's execution.
type Phase struct {
	// WorkFrac is the fraction of the job's total work spent in this phase.
	WorkFrac float64
	// Mix of the phase.
	ComputeFrac float64
	MemoryFrac  float64
	IOFrac      float64
	// Utilization while in this phase.
	Utilization float64
	// NetDemand is bytes/second/node of communication during the phase.
	NetDemand float64
}

// Profile describes how a class behaves.
type Profile struct {
	Class  Class
	Phases []Phase
}

// ProfileFor returns the canonical execution profile of a class.
func ProfileFor(c Class) Profile {
	switch c {
	case ComputeBound:
		return Profile{Class: c, Phases: []Phase{
			{WorkFrac: 0.1, ComputeFrac: 0.5, MemoryFrac: 0.2, IOFrac: 0.3, Utilization: 0.7, NetDemand: 1e8},
			{WorkFrac: 0.8, ComputeFrac: 0.9, MemoryFrac: 0.1, Utilization: 0.98, NetDemand: 2e8},
			{WorkFrac: 0.1, ComputeFrac: 0.3, IOFrac: 0.7, Utilization: 0.6, NetDemand: 5e7},
		}}
	case MemoryBound:
		return Profile{Class: c, Phases: []Phase{
			{WorkFrac: 0.15, ComputeFrac: 0.6, MemoryFrac: 0.3, IOFrac: 0.1, Utilization: 0.8, NetDemand: 2e8},
			{WorkFrac: 0.85, ComputeFrac: 0.25, MemoryFrac: 0.7, IOFrac: 0.05, Utilization: 0.92, NetDemand: 3e8},
		}}
	case IOBound:
		return Profile{Class: c, Phases: []Phase{
			{WorkFrac: 0.3, ComputeFrac: 0.5, MemoryFrac: 0.2, IOFrac: 0.3, Utilization: 0.7, NetDemand: 1e8},
			{WorkFrac: 0.7, ComputeFrac: 0.15, MemoryFrac: 0.15, IOFrac: 0.7, Utilization: 0.55, NetDemand: 8e8},
		}}
	case NetworkBound:
		return Profile{Class: c, Phases: []Phase{
			{WorkFrac: 1.0, ComputeFrac: 0.45, MemoryFrac: 0.25, IOFrac: 0.05, Utilization: 0.85, NetDemand: 6e9},
		}}
	case CryptoMiner:
		return Profile{Class: c, Phases: []Phase{
			{WorkFrac: 1.0, ComputeFrac: 1.0, Utilization: 1.0, NetDemand: 1e5},
		}}
	default: // Balanced
		return Profile{Class: Balanced, Phases: []Phase{
			{WorkFrac: 0.25, ComputeFrac: 0.7, MemoryFrac: 0.2, IOFrac: 0.1, Utilization: 0.85, NetDemand: 4e8},
			{WorkFrac: 0.5, ComputeFrac: 0.45, MemoryFrac: 0.45, IOFrac: 0.1, Utilization: 0.9, NetDemand: 7e8},
			{WorkFrac: 0.25, ComputeFrac: 0.3, MemoryFrac: 0.2, IOFrac: 0.5, Utilization: 0.7, NetDemand: 3e8},
		}}
	}
}

// Job is one unit of user work.
type Job struct {
	ID    string
	User  string
	Class Class

	// SubmitTime in Unix milliseconds.
	SubmitTime int64
	// Nodes requested (and allocated; no malleability).
	Nodes int
	// ReqWalltime is the user's requested walltime in seconds (an
	// overestimate, as in real traces).
	ReqWalltime float64
	// TotalWork in node-seconds at full speed; actual runtime at full
	// speed is TotalWork / Nodes.
	TotalWork float64
	// MemoryGiBPerNode requested.
	MemoryGiBPerNode float64

	// Execution state, owned by the scheduler/simulator.
	StartTime int64 // ms; 0 if not started
	EndTime   int64 // ms; 0 if not finished
	DoneWork  float64
}

// IdealRuntime returns the job's runtime in seconds at full speed.
func (j *Job) IdealRuntime() float64 { return j.TotalWork / float64(j.Nodes) }

// PhaseAt returns the active phase for the job's current progress.
func (j *Job) PhaseAt() Phase {
	prof := ProfileFor(j.Class)
	frac := 0.0
	if j.TotalWork > 0 {
		frac = j.DoneWork / j.TotalWork
	}
	var cum float64
	for _, ph := range prof.Phases {
		cum += ph.WorkFrac
		if frac < cum {
			return ph
		}
	}
	return prof.Phases[len(prof.Phases)-1]
}

// Finished reports whether the job has completed its work.
func (j *Job) Finished() bool { return j.DoneWork >= j.TotalWork }

// WaitSeconds returns queue wait time; call only after StartTime is set.
func (j *Job) WaitSeconds() float64 {
	return float64(j.StartTime-j.SubmitTime) / 1000
}

// RuntimeSeconds returns the observed runtime; call after completion.
func (j *Job) RuntimeSeconds() float64 {
	return float64(j.EndTime-j.StartTime) / 1000
}

// Slowdown returns the bounded slowdown metric (Feitelson), with runtime
// floored at tau = 10 s.
func (j *Job) Slowdown() float64 {
	const tau = 10
	run := math.Max(j.RuntimeSeconds(), tau)
	return (j.WaitSeconds() + run) / run
}

// GeneratorConfig tunes the synthetic job stream.
type GeneratorConfig struct {
	Seed int64
	// Users in the population; user indices get skewed activity (Zipf-ish).
	Users int
	// MeanInterarrival is the mean seconds between submissions at peak.
	MeanInterarrival float64
	// DiurnalStrength in [0,1]: 0 = flat arrivals, 1 = strong day/night.
	DiurnalStrength float64
	// MaxNodes bounds job size.
	MaxNodes int
	// MinerFrac is the probability a job is a cryptominer (abuse model).
	MinerFrac float64
	// CampaignPeriodHours > 0 adds a recurring production campaign: a
	// large compute job submitted on a fixed schedule (nightly pipelines,
	// periodic checkpoint/analysis surges). Recurring campaigns are what
	// make site power forecastable (the LLNL §V-C pattern).
	CampaignPeriodHours float64
	// CampaignNodes is the campaign job's size (default MaxNodes).
	CampaignNodes int
	// CampaignDurationS is its ideal runtime in seconds (default 5400).
	CampaignDurationS float64
}

// DefaultGeneratorConfig returns a plausible medium-site workload.
func DefaultGeneratorConfig(seed int64, maxNodes int) GeneratorConfig {
	return GeneratorConfig{
		Seed:             seed,
		Users:            24,
		MeanInterarrival: 180,
		DiurnalStrength:  0.6,
		MaxNodes:         maxNodes,
		MinerFrac:        0.02,
	}
}

// Generator produces a deterministic stream of jobs.
type Generator struct {
	cfg         GeneratorConfig
	rng         *rand.Rand
	nextID      int
	userBias    []float64 // per-user class bias
	userShare   []float64 // cumulative activity distribution
	campaignIdx int       // campaigns emitted so far
}

// NewGenerator builds a generator.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if cfg.Users <= 0 {
		cfg.Users = 16
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 16
	}
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = 180
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	// Zipf-ish activity shares and a stable per-user class preference.
	g.userShare = make([]float64, cfg.Users)
	g.userBias = make([]float64, cfg.Users)
	var total float64
	for i := range g.userShare {
		w := 1 / float64(i+1)
		total += w
		g.userShare[i] = total
		g.userBias[i] = g.rng.Float64()
	}
	for i := range g.userShare {
		g.userShare[i] /= total
	}
	return g
}

// arrivalRate returns the relative submission intensity at time-of-day.
func (g *Generator) arrivalRate(now int64) float64 {
	day := float64(24 * 3600 * 1000)
	phase := 2 * math.Pi * (float64(now%int64(day))/day - 0.29) // peak ~13:00
	return 1 + g.cfg.DiurnalStrength*math.Sin(phase)
}

// NextAfter returns the next job submitted at or after now (ms), advancing
// the generator's internal stream.
func (g *Generator) NextAfter(now int64) *Job {
	// Thinned Poisson process: draw exponential gaps at the peak rate and
	// accept with probability rate(t)/maxRate.
	maxRate := 1 + g.cfg.DiurnalStrength
	t := now
	for {
		gap := g.rng.ExpFloat64() * g.cfg.MeanInterarrival / maxRate
		t += int64(gap * 1000)
		if g.rng.Float64() <= g.arrivalRate(t)/maxRate {
			break
		}
	}
	// A scheduled campaign due before the stochastic candidate preempts it.
	if g.cfg.CampaignPeriodHours > 0 {
		campaignAt := int64(float64(g.campaignIdx+1) * g.cfg.CampaignPeriodHours * 3600 * 1000)
		if campaignAt > now && campaignAt <= t {
			g.campaignIdx++
			return g.emitCampaign(campaignAt)
		}
	}
	return g.emit(t)
}

// emitCampaign produces the deterministic recurring production job.
func (g *Generator) emitCampaign(submit int64) *Job {
	g.nextID++
	nodes := g.cfg.CampaignNodes
	if nodes <= 0 {
		nodes = g.cfg.MaxNodes
	}
	dur := g.cfg.CampaignDurationS
	if dur <= 0 {
		dur = 5400
	}
	return &Job{
		ID:               fmt.Sprintf("job%06d", g.nextID),
		User:             "campaign",
		Class:            ComputeBound,
		SubmitTime:       submit,
		Nodes:            nodes,
		ReqWalltime:      dur * 1.3,
		TotalWork:        dur * float64(nodes),
		MemoryGiBPerNode: 64,
	}
}

func (g *Generator) emit(submit int64) *Job {
	g.nextID++
	userIdx := g.pickUser()
	class := g.pickClass(userIdx)
	nodes := g.pickNodes(class)
	// Lognormal ideal runtime, clamped to [120 s, 12 h].
	ideal := math.Exp(g.rng.NormFloat64()*1.1 + math.Log(1800))
	ideal = math.Max(120, math.Min(12*3600, ideal))
	if class == CryptoMiner {
		// Miners run long on few nodes.
		ideal = math.Max(ideal, 4*3600)
	}
	// Users request 1.2-4x their actual runtime.
	req := ideal * (1.2 + g.rng.Float64()*2.8)
	return &Job{
		ID:               fmt.Sprintf("job%06d", g.nextID),
		User:             fmt.Sprintf("user%02d", userIdx),
		Class:            class,
		SubmitTime:       submit,
		Nodes:            nodes,
		ReqWalltime:      req,
		TotalWork:        ideal * float64(nodes),
		MemoryGiBPerNode: []float64{16, 32, 64, 128}[g.rng.Intn(4)],
	}
}

func (g *Generator) pickUser() int {
	r := g.rng.Float64()
	for i, cum := range g.userShare {
		if r <= cum {
			return i
		}
	}
	return len(g.userShare) - 1
}

func (g *Generator) pickClass(userIdx int) Class {
	if g.rng.Float64() < g.cfg.MinerFrac {
		return CryptoMiner
	}
	// User bias shifts which classes a user favours; mixture keeps all
	// classes represented.
	b := g.userBias[userIdx]
	r := math.Mod(g.rng.Float64()*0.6+b*0.4, 1.0)
	switch {
	case r < 0.3:
		return ComputeBound
	case r < 0.5:
		return MemoryBound
	case r < 0.65:
		return IOBound
	case r < 0.8:
		return NetworkBound
	default:
		return Balanced
	}
}

func (g *Generator) pickNodes(class Class) int {
	if class == CryptoMiner {
		return 1
	}
	// Power-of-two-ish sizes, skewed small.
	sizes := []int{1, 1, 2, 2, 4, 4, 8, 16, 32}
	n := sizes[g.rng.Intn(len(sizes))]
	if n > g.cfg.MaxNodes {
		n = g.cfg.MaxNodes
	}
	return n
}

// GenerateUntil returns all jobs submitted in [start, end) ms.
func (g *Generator) GenerateUntil(start, end int64) []*Job {
	var out []*Job
	t := start
	for {
		j := g.NextAfter(t)
		if j.SubmitTime >= end {
			return out
		}
		out = append(out, j)
		t = j.SubmitTime
	}
}
