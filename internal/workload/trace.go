package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace I/O in a Standard-Workload-Format-like layout: one job per line,
// whitespace-separated fields, '#' comments. Fields:
//
//	id user class submit_ms nodes req_walltime_s total_work_nodesec mem_gib
//
// This lets experiments snapshot a generated workload and replay it across
// scheduler policies, the way the surveyed scheduling simulators (Batsim,
// AccaSim, Alea) consume SWF traces.

// WriteTrace writes jobs in trace format.
func WriteTrace(w io.Writer, jobs []*Job) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# id user class submit_ms nodes req_walltime_s total_work_nodesec mem_gib"); err != nil {
		return err
	}
	for _, j := range jobs {
		if _, err := fmt.Fprintf(bw, "%s %s %s %d %d %.3f %.3f %.1f\n",
			j.ID, j.User, j.Class, j.SubmitTime, j.Nodes, j.ReqWalltime, j.TotalWork, j.MemoryGiBPerNode); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseClass maps a class name back to its value.
func ParseClass(s string) (Class, error) {
	for c := Class(0); c < numClasses; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown class %q", s)
}

// ReadTrace parses jobs from trace format.
func ReadTrace(r io.Reader) ([]*Job, error) {
	var out []*Job
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 8 {
			return nil, fmt.Errorf("workload: line %d: want 8 fields, got %d", lineNo, len(fields))
		}
		class, err := ParseClass(fields[2])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		submit, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: submit: %w", lineNo, err)
		}
		nodes, err := strconv.Atoi(fields[4])
		if err != nil || nodes < 1 {
			return nil, fmt.Errorf("workload: line %d: bad node count %q", lineNo, fields[4])
		}
		req, err := strconv.ParseFloat(fields[5], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: walltime: %w", lineNo, err)
		}
		work, err := strconv.ParseFloat(fields[6], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: work: %w", lineNo, err)
		}
		mem, err := strconv.ParseFloat(fields[7], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: mem: %w", lineNo, err)
		}
		out = append(out, &Job{
			ID: fields[0], User: fields[1], Class: class, SubmitTime: submit,
			Nodes: nodes, ReqWalltime: req, TotalWork: work, MemoryGiBPerNode: mem,
		})
	}
	return out, sc.Err()
}
