package workload

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestProfilesWellFormed(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		p := ProfileFor(c)
		if len(p.Phases) == 0 {
			t.Fatalf("%s: no phases", c)
		}
		var workSum float64
		for _, ph := range p.Phases {
			workSum += ph.WorkFrac
			if mix := ph.ComputeFrac + ph.MemoryFrac + ph.IOFrac; mix > 1.0001 {
				t.Fatalf("%s: mix sums to %v", c, mix)
			}
			if ph.Utilization <= 0 || ph.Utilization > 1 {
				t.Fatalf("%s: utilization %v", c, ph.Utilization)
			}
			if ph.NetDemand < 0 {
				t.Fatalf("%s: negative net demand", c)
			}
		}
		if math.Abs(workSum-1) > 1e-9 {
			t.Fatalf("%s: phase work fractions sum to %v", c, workSum)
		}
	}
}

func TestClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < numClasses; c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("bad class string %q", s)
		}
		seen[s] = true
		back, err := ParseClass(s)
		if err != nil || back != c {
			t.Fatalf("ParseClass(%q) = %v, %v", s, back, err)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Fatal("unknown class should error")
	}
}

func TestJobPhaseProgression(t *testing.T) {
	j := &Job{Class: ComputeBound, Nodes: 2, TotalWork: 200}
	first := j.PhaseAt()
	j.DoneWork = 100 // 50% -> main phase
	mid := j.PhaseAt()
	j.DoneWork = 195 // 97.5% -> final phase
	last := j.PhaseAt()
	if first.ComputeFrac == mid.ComputeFrac && mid.ComputeFrac == last.ComputeFrac {
		t.Fatal("phases do not change over job lifetime")
	}
	if mid.ComputeFrac != 0.9 {
		t.Fatalf("main phase mix = %+v", mid)
	}
	j.DoneWork = 200
	if !j.Finished() {
		t.Fatal("job should be finished")
	}
	// PhaseAt at 100% must not panic and returns the last phase.
	if got := j.PhaseAt(); got.WorkFrac != last.WorkFrac {
		t.Fatalf("PhaseAt(done) = %+v", got)
	}
}

func TestJobMetrics(t *testing.T) {
	j := &Job{SubmitTime: 0, StartTime: 30_000, EndTime: 90_000, Nodes: 4, TotalWork: 240}
	if j.WaitSeconds() != 30 || j.RuntimeSeconds() != 60 {
		t.Fatalf("wait/run = %v/%v", j.WaitSeconds(), j.RuntimeSeconds())
	}
	if j.IdealRuntime() != 60 {
		t.Fatalf("ideal = %v", j.IdealRuntime())
	}
	if got := j.Slowdown(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("slowdown = %v", got)
	}
	// Short jobs are bounded by tau.
	short := &Job{SubmitTime: 0, StartTime: 100_000, EndTime: 101_000}
	if got := short.Slowdown(); got != (100+10)/10.0 {
		t.Fatalf("bounded slowdown = %v", got)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := DefaultGeneratorConfig(42, 32)
	a := NewGenerator(cfg).GenerateUntil(0, 6*3600*1000)
	b := NewGenerator(cfg).GenerateUntil(0, 6*3600*1000)
	if len(a) == 0 {
		t.Fatal("no jobs generated")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("job %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Different seed -> different stream.
	cfg2 := cfg
	cfg2.Seed = 43
	c := NewGenerator(cfg2).GenerateUntil(0, 6*3600*1000)
	same := len(c) == len(a)
	if same {
		same = reflect.DeepEqual(a[0], c[0])
	}
	if same {
		t.Fatal("different seeds produced identical first job")
	}
}

func TestGeneratorJobSanity(t *testing.T) {
	g := NewGenerator(DefaultGeneratorConfig(7, 16))
	jobs := g.GenerateUntil(0, 48*3600*1000)
	if len(jobs) < 100 {
		t.Fatalf("only %d jobs in 48h", len(jobs))
	}
	users := map[string]int{}
	classes := map[Class]int{}
	prev := int64(-1)
	for _, j := range jobs {
		if j.SubmitTime <= prev {
			t.Fatal("submissions not monotone")
		}
		prev = j.SubmitTime
		if j.Nodes < 1 || j.Nodes > 16 {
			t.Fatalf("job nodes = %d", j.Nodes)
		}
		if j.ReqWalltime < j.IdealRuntime() {
			t.Fatalf("requested %v < ideal %v", j.ReqWalltime, j.IdealRuntime())
		}
		if j.IdealRuntime() < 120 || j.IdealRuntime() > 12*3600+1 {
			t.Fatalf("ideal runtime out of range: %v", j.IdealRuntime())
		}
		users[j.User]++
		classes[j.Class]++
	}
	if len(users) < 5 {
		t.Fatalf("only %d users active", len(users))
	}
	// All non-miner classes should appear in 48h of jobs.
	for c := Class(0); c < numClasses; c++ {
		if c != CryptoMiner && classes[c] == 0 {
			t.Fatalf("class %s never generated", c)
		}
	}
	// User activity is skewed: top user clearly busier than median.
	if users["user00"] < 2*users["user05"] && users["user05"] > 0 {
		t.Logf("warning: weak skew: %v", users)
	}
}

func TestGeneratorDiurnalPattern(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Seed: 1, Users: 8, MeanInterarrival: 30, DiurnalStrength: 0.9, MaxNodes: 8})
	jobs := g.GenerateUntil(0, 10*24*3600*1000)
	day, night := 0, 0
	for _, j := range jobs {
		hour := (j.SubmitTime / 3600000) % 24
		if hour >= 9 && hour < 17 {
			day++
		}
		if hour >= 0 && hour < 8 {
			night++
		}
	}
	if day <= night {
		t.Fatalf("day %d <= night %d: diurnal modulation missing", day, night)
	}
}

func TestCryptoMinerShape(t *testing.T) {
	cfg := DefaultGeneratorConfig(3, 32)
	cfg.MinerFrac = 0.5
	g := NewGenerator(cfg)
	jobs := g.GenerateUntil(0, 24*3600*1000)
	found := 0
	for _, j := range jobs {
		if j.Class == CryptoMiner {
			found++
			if j.Nodes != 1 {
				t.Fatalf("miner on %d nodes", j.Nodes)
			}
			if j.IdealRuntime() < 4*3600 {
				t.Fatalf("miner runtime %v too short", j.IdealRuntime())
			}
		}
	}
	if found == 0 {
		t.Fatal("no miners at 50% miner fraction")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g := NewGenerator(DefaultGeneratorConfig(9, 16))
	jobs := g.GenerateUntil(0, 12*3600*1000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip %d -> %d jobs", len(jobs), len(back))
	}
	for i := range jobs {
		a, b := jobs[i], back[i]
		if a.ID != b.ID || a.User != b.User || a.Class != b.Class ||
			a.SubmitTime != b.SubmitTime || a.Nodes != b.Nodes ||
			math.Abs(a.ReqWalltime-b.ReqWalltime) > 0.01 ||
			math.Abs(a.TotalWork-b.TotalWork) > 0.01 ||
			a.MemoryGiBPerNode != b.MemoryGiBPerNode {
			t.Fatalf("job %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"id user compute 0 1 10",        // too few fields
		"id user bogus 0 1 10 10 16",    // bad class
		"id user compute xx 1 10 10 16", // bad submit
		"id user compute 0 0 10 10 16",  // zero nodes
		"id user compute 0 1 abc 10 16", // bad walltime
		"id user compute 0 1 10 abc 16", // bad work
		"id user compute 0 1 10 10 abc", // bad mem
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Fatalf("line %q should fail to parse", c)
		}
	}
	// Comments and blanks are skipped.
	ok := "# header\n\njob1 u0 compute 0 2 100 200 16\n"
	jobs, err := ReadTrace(strings.NewReader(ok))
	if err != nil || len(jobs) != 1 || jobs[0].Nodes != 2 {
		t.Fatalf("parse = %v, %v", jobs, err)
	}
}
