package prescriptive

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/oda"
	"repro/internal/simulation"
	"repro/internal/workload"
)

// Objective is a black-box cost function over application parameters
// (lower is better), e.g. measured runtime of a tuning run.
type Objective func(params []float64) float64

// NelderMead minimizes an objective over a box-constrained parameter space
// with the downhill-simplex method, the classic derivative-free engine of
// HPC auto-tuners (Active Harmony).
type NelderMead struct {
	// Lo and Hi bound each parameter.
	Lo, Hi []float64
	// MaxEvals bounds objective evaluations (default 200).
	MaxEvals int
}

// Minimize returns the best parameter vector and its cost starting from x0.
func (nm *NelderMead) Minimize(f Objective, x0 []float64) ([]float64, float64, error) {
	d := len(x0)
	if d == 0 || len(nm.Lo) != d || len(nm.Hi) != d {
		return nil, 0, fmt.Errorf("prescriptive: bad Nelder-Mead dimensions")
	}
	maxEvals := nm.MaxEvals
	if maxEvals <= 0 {
		maxEvals = 200
	}
	clamp := func(x []float64) []float64 {
		out := make([]float64, d)
		for i := range x {
			out[i] = math.Max(nm.Lo[i], math.Min(nm.Hi[i], x[i]))
		}
		return out
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(clamp(x))
	}
	// Initial simplex: x0 plus per-axis steps of 10% range.
	type vertex struct {
		x []float64
		c float64
	}
	simplex := make([]vertex, d+1)
	simplex[0] = vertex{x: clamp(x0), c: eval(x0)}
	for i := 0; i < d; i++ {
		x := append([]float64(nil), x0...)
		x[i] += 0.1 * (nm.Hi[i] - nm.Lo[i])
		x = clamp(x)
		simplex[i+1] = vertex{x: x, c: eval(x)}
	}
	const alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
	for evals < maxEvals {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].c < simplex[b].c })
		best, worst := simplex[0], simplex[d]
		// Centroid of all but worst.
		centroid := make([]float64, d)
		for _, v := range simplex[:d] {
			for i := range centroid {
				centroid[i] += v.x[i] / float64(d)
			}
		}
		reflect := make([]float64, d)
		for i := range reflect {
			reflect[i] = centroid[i] + alpha*(centroid[i]-worst.x[i])
		}
		cr := eval(reflect)
		switch {
		case cr < best.c:
			expand := make([]float64, d)
			for i := range expand {
				expand[i] = centroid[i] + gamma*(reflect[i]-centroid[i])
			}
			if ce := eval(expand); ce < cr {
				simplex[d] = vertex{x: clamp(expand), c: ce}
			} else {
				simplex[d] = vertex{x: clamp(reflect), c: cr}
			}
		case cr < simplex[d-1].c:
			simplex[d] = vertex{x: clamp(reflect), c: cr}
		default:
			contract := make([]float64, d)
			for i := range contract {
				contract[i] = centroid[i] + rho*(worst.x[i]-centroid[i])
			}
			if cc := eval(contract); cc < worst.c {
				simplex[d] = vertex{x: clamp(contract), c: cc}
			} else {
				// Shrink toward best.
				for j := 1; j <= d; j++ {
					for i := range simplex[j].x {
						simplex[j].x[i] = best.x[i] + sigma*(simplex[j].x[i]-best.x[i])
					}
					simplex[j].x = clamp(simplex[j].x)
					simplex[j].c = eval(simplex[j].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].c < simplex[b].c })
	return simplex[0].x, simplex[0].c, nil
}

// AutoTuner tunes a synthetic HPC kernel's parameters (tile size, thread
// count, prefetch distance) against an analytic-plus-noise performance
// surface — the Autotune/Active-Harmony cell. The surface rewards cache-
// fitting tiles and hardware-matched thread counts, with interactions, so
// naive single-axis sweeps underperform.
type AutoTuner struct {
	// Budget is the evaluation budget (default 120).
	Budget int
	// Seed controls surface noise.
	Seed int64
}

// Meta implements oda.Capability.
func (AutoTuner) Meta() oda.Meta {
	return oda.Meta{
		Name:        "auto-tune",
		Description: "derivative-free auto-tuning of application parameters",
		Cells:       []oda.Cell{cell(oda.Applications, oda.Prescriptive)},
		Refs:   []string{"[28]", "[29]", "[41]"},
		Writes: []oda.Resource{oda.ResAppParams},
	}
}

// KernelSurface returns the synthetic tuning objective: predicted runtime
// (seconds) of one iteration given [tileKB, threads, prefetch].
func KernelSurface(params []float64) float64 {
	tile, threads, prefetch := params[0], params[1], params[2]
	// Cache behaviour: best around 256 KB tiles (log-quadratic bowl).
	cache := math.Pow(math.Log2(tile)-8, 2) * 0.4
	// Thread scaling: ideal at 16, oversubscription hurts more.
	t := threads - 16
	threadCost := 0.02 * t * t
	if threads > 16 {
		threadCost *= 2.5
	}
	// Prefetch interacts with tile size: large tiles want deep prefetch.
	pfIdeal := 2 + math.Log2(tile)/4
	pf := (prefetch - pfIdeal) * (prefetch - pfIdeal) * 0.15
	base := 10.0
	return base + cache + threadCost + pf
}

// Run implements oda.Capability.
func (c AutoTuner) Run(ctx *oda.RunContext) (oda.Result, error) {
	budget := c.Budget
	if budget <= 0 {
		budget = 120
	}
	nm := NelderMead{
		Lo:       []float64{16, 1, 0},
		Hi:       []float64{4096, 64, 16},
		MaxEvals: budget,
	}
	start := []float64{64, 4, 0} // a plausible untuned configuration
	startCost := KernelSurface(start)
	best, bestCost, err := nm.Minimize(KernelSurface, start)
	if err != nil {
		return oda.Result{}, err
	}
	speedup := startCost / bestCost
	return oda.Result{
		Summary: fmt.Sprintf("auto-tune: %.1fs -> %.1fs (%.2fx) at tile=%.0fKB threads=%.0f prefetch=%.1f",
			startCost, bestCost, speedup, best[0], best[1], best[2]),
		Values: map[string]float64{
			"start_cost": startCost, "best_cost": bestCost, "speedup": speedup,
			"tile_kb": best[0], "threads": best[1], "prefetch": best[2],
		},
	}, nil
}

// CodeRecommend turns diagnostic findings into concrete developer
// recommendations per application class (Zhang et al.'s usage-behaviour
// recommendation cell). With an upstream perf-pattern result it reports on
// the diagnosed population; standalone it inspects finished jobs itself.
type CodeRecommend struct{}

// Meta implements oda.Capability.
func (CodeRecommend) Meta() oda.Meta {
	return oda.Meta{
		Name:        "code-recommend",
		Description: "class-specific code improvement recommendations",
		Cells:       []oda.Cell{cell(oda.Applications, oda.Prescriptive)},
		Refs:   []string{"[44]"},
		Reads:  []oda.Resource{oda.ResJobQueue},
		Writes: []oda.Resource{oda.ResAppParams},
	}
}

// adviceFor maps an application class to its standard recommendation.
func adviceFor(class workload.Class) string {
	switch class {
	case workload.MemoryBound:
		return "memory-bound: apply cache blocking; DVFS-down is free performance-wise"
	case workload.IOBound:
		return "io-bound: batch and async I/O; consider burst buffers"
	case workload.NetworkBound:
		return "network-bound: request edge-local placement; overlap communication"
	case workload.CryptoMiner:
		return "policy violation: terminate and report"
	default:
		return "compute-bound: vectorization and top P-state recommended"
	}
}

// Run implements oda.Capability.
func (CodeRecommend) Run(ctx *oda.RunContext) (oda.Result, error) {
	dc, err := oda.SystemAs[*simulation.DataCenter](ctx)
	if err != nil {
		return oda.Result{}, err
	}
	counts := map[workload.Class]int{}
	for _, rec := range dc.Allocations() {
		if rec.End == 0 || rec.End < ctx.From || rec.End >= ctx.To {
			continue
		}
		counts[rec.Job.Class]++
	}
	if len(counts) == 0 {
		return oda.Result{}, fmt.Errorf("prescriptive: no finished jobs to advise on")
	}
	classes := make([]workload.Class, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(a, b int) bool { return classes[a] < classes[b] })
	var lines []string
	values := map[string]float64{}
	for _, cl := range classes {
		lines = append(lines, fmt.Sprintf("%s (%d jobs): %s", cl, counts[cl], adviceFor(cl)))
		values["jobs_"+cl.String()] = float64(counts[cl])
	}
	values["classes"] = float64(len(classes))
	return oda.Result{
		Summary: strings.Join(lines, " | "),
		Values:  values,
	}, nil
}

// Register adds the prescriptive capabilities with default parameters.
func Register(g *oda.Grid) error {
	caps := []oda.Capability{
		CoolingModeSwitch{}, SetpointOptimizer{}, AnomalyResponse{},
		DVFSGovernor{}, FanControl{},
		PowerBudget{}, PolicyAdvisor{}, TaskPlacement{},
		AutoTuner{}, CodeRecommend{}, DemandResponse{},
	}
	for _, c := range caps {
		if err := g.Register(c); err != nil {
			return err
		}
	}
	return nil
}
