package prescriptive

import (
	"fmt"
	"math"

	"repro/internal/oda"
	"repro/internal/simulation"
	"repro/internal/workload"
)

// PriceSignal is a day-ahead electricity tariff: price per kWh as a
// function of hour-of-day. Utilities publish these to demand-response
// participants (§V-C of the paper: ODA reaching beyond the data center to
// the grid).
type PriceSignal func(hour int) float64

// DefaultTariff is a two-peak business tariff: expensive morning and
// evening ramps, cheap nights.
func DefaultTariff(hour int) float64 {
	switch {
	case hour >= 7 && hour < 11:
		return 0.32
	case hour >= 17 && hour < 21:
		return 0.38
	case hour >= 11 && hour < 17:
		return 0.22
	default:
		return 0.12
	}
}

// DemandResponse throttles the site's schedulable power when electricity
// is expensive and releases it when cheap, by driving the scheduler's
// power budget from the tariff — the Stewart/Kjaergaard grid-interaction
// cell, classified under building infrastructure per §V-C even though the
// knob lives in system software.
type DemandResponse struct {
	// Tariff is the price signal (default DefaultTariff).
	Tariff PriceSignal
	// FullBudgetW is the budget at the cheapest price (default: nameplate).
	FullBudgetW float64
	// MinFraction of the full budget retained at the most expensive hour
	// (default 0.5).
	MinFraction float64
}

// Meta implements oda.Capability.
func (DemandResponse) Meta() oda.Meta {
	return oda.Meta{
		Name:        "demand-response",
		Description: "tariff-driven power budget throttling (grid interaction)",
		Cells: []oda.Cell{
			cell(oda.BuildingInfrastructure, oda.Prescriptive),
			cell(oda.SystemSoftware, oda.Prescriptive),
		},
		Refs:   []string{"[37]", "[58]"},
		Writes: []oda.Resource{oda.ResPowerCap},
	}
}

// budgetAt computes the budget for an hour of day given the tariff's
// observed range.
func (d DemandResponse) budgetAt(hour int, full float64) float64 {
	tariff := d.Tariff
	if tariff == nil {
		tariff = DefaultTariff
	}
	minFrac := d.MinFraction
	if minFrac <= 0 || minFrac > 1 {
		minFrac = 0.5
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for h := 0; h < 24; h++ {
		p := tariff(h)
		lo = math.Min(lo, p)
		hi = math.Max(hi, p)
	}
	frac := 1.0
	if hi > lo {
		// Linear: cheapest hour -> 1, most expensive -> minFrac.
		frac = 1 - (tariff(hour)-lo)/(hi-lo)*(1-minFrac)
	}
	return full * frac
}

// Run implements oda.Capability: one budget decision for the current hour.
func (d DemandResponse) Run(ctx *oda.RunContext) (oda.Result, error) {
	dc, err := oda.SystemAs[*simulation.DataCenter](ctx)
	if err != nil {
		return oda.Result{}, err
	}
	full := d.FullBudgetW
	if full <= 0 {
		full = float64(len(dc.Nodes)) * 430
	}
	hour := int((ctx.To / 3600000) % 24)
	budget := d.budgetAt(hour, full)
	dc.Cluster.PowerBudgetW = budget
	if dc.Cluster.EstimatePowerW == nil {
		dc.Cluster.EstimatePowerW = nameplateEstimate
	}
	tariff := d.Tariff
	if tariff == nil {
		tariff = DefaultTariff
	}
	return oda.Result{
		Summary: fmt.Sprintf("hour %02d at %.2f/kWh -> power budget %.0f W (of %.0f W)",
			hour, tariff(hour), budget, full),
		Values: map[string]float64{
			"budget_w": budget, "full_w": full, "price": tariff(hour), "hour": float64(hour),
		},
	}, nil
}

// Controller returns the automated tariff follower.
func (d DemandResponse) Controller() simulation.Controller {
	return simulation.ControllerFunc{
		ControllerName: "demand-response",
		Fn: func(dc *simulation.DataCenter, now int64) {
			full := d.FullBudgetW
			if full <= 0 {
				full = float64(len(dc.Nodes)) * 430
			}
			hour := int((now / 3600000) % 24)
			dc.Cluster.PowerBudgetW = d.budgetAt(hour, full)
			if dc.Cluster.EstimatePowerW == nil {
				dc.Cluster.EstimatePowerW = nameplateEstimate
			}
		},
	}
}

// nameplateEstimate is the fallback per-job power model used until a
// learned estimator is installed.
func nameplateEstimate(j *workload.Job) float64 { return float64(j.Nodes) * 430 }
