package prescriptive

import (
	"math"
	"strings"
	"testing"

	"repro/internal/facility"
	"repro/internal/oda"
	"repro/internal/scheduler"
	"repro/internal/simulation"
)

var dcCache *simulation.DataCenter

func presCtx(t *testing.T) (*simulation.DataCenter, *oda.RunContext) {
	t.Helper()
	if dcCache == nil {
		cfg := simulation.DefaultConfig(505)
		cfg.Nodes = 16
		cfg.Workload.MaxNodes = 8
		cfg.Workload.MeanInterarrival = 60
		dcCache = simulation.New(cfg)
		dcCache.RunFor(12 * 3600)
	}
	return dcCache, &oda.RunContext{
		Store: dcCache.Store, From: 0, To: dcCache.Now() + 1, System: dcCache,
	}
}

func TestCoolingModeSwitchDecision(t *testing.T) {
	dc, ctx := presCtx(t)
	res, err := CoolingModeSwitch{}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Decision applied: facility mode is now chiller or free, with a
	// consistent rationale in the result.
	mode := dc.Facility.Mode()
	if mode != facility.ModeChiller && mode != facility.ModeFree {
		t.Fatalf("mode = %v", mode)
	}
	forecastMax := res.Value("forecast_max_c")
	envelope := dc.Facility.Setpoint() - dc.Facility.Cfg.FreeCoolingApproach - 0.5
	if res.Value("mode_free") == 1 && forecastMax > envelope {
		t.Fatalf("free mode chosen with forecast max %.1f above envelope %.1f", forecastMax, envelope)
	}
	if res.Value("mode_free") == 0 && forecastMax <= envelope {
		t.Fatalf("chiller chosen with forecast max %.1f inside envelope %.1f", forecastMax, envelope)
	}
	dc.Facility.SetMode(facility.ModeAuto) // restore for other tests
}

func TestSetpointOptimizer(t *testing.T) {
	dc, ctx := presCtx(t)
	before := dc.Facility.Setpoint()
	res, err := SetpointOptimizer{}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Value("setpoint_c")
	if sp < 14 || sp > 35 {
		t.Fatalf("setpoint = %v", sp)
	}
	if dc.Facility.Setpoint() != sp {
		t.Fatal("setpoint not applied")
	}
	// The asymmetric law: with thermal headroom the setpoint rises by at
	// most 1C; with a violation it drops by up to 6C.
	worst := res.Value("worst_temp_c")
	if worst < 78-3 && sp > res.Value("previous_c")+1.01 {
		t.Fatalf("raised too fast: %v -> %v", res.Value("previous_c"), sp)
	}
	if worst > 78-3 && sp > res.Value("previous_c") {
		t.Fatalf("raised despite violation: worst %v, %v -> %v", worst, res.Value("previous_c"), sp)
	}
	dc.Facility.SetSetpoint(before)
}

func TestAnomalyResponse(t *testing.T) {
	dc, ctx := presCtx(t)
	// No upstream: no action.
	res, err := AnomalyResponse{}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("actions") != 0 {
		t.Fatalf("acted without evidence: %s", res.Summary)
	}
	// With upstream anomalies: safe state engaged.
	up := oda.Result{Values: map[string]float64{"anomalous_nodes": 2}}
	ctx2 := *ctx
	ctx2.Upstream = &up
	res2, err := AnomalyResponse{}.Run(&ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value("actions") == 0 {
		t.Fatal("no response to anomalies")
	}
	if dc.Facility.Mode() != facility.ModeChiller || dc.Facility.Setpoint() != 18 {
		t.Fatal("safe state not applied")
	}
	dc.Facility.SetMode(facility.ModeAuto)
	dc.Facility.SetSetpoint(22)
}

func TestDVFSGovernorPass(t *testing.T) {
	dc, ctx := presCtx(t)
	res, err := DVFSGovernor{}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Value("lowered") + res.Value("raised") + res.Value("unchanged") + res.Value("skipped")
	if int(sum) != len(dc.Nodes) {
		t.Fatalf("governor pass does not partition fleet: %v of %d", sum, len(dc.Nodes))
	}
	// Restore all nodes to top frequency.
	for _, n := range dc.Nodes {
		n.SetFrequencyIndex(n.NumFrequencies() - 1)
	}
}

func TestDVFSGovernorClosedLoopSavesEnergy(t *testing.T) {
	// Two identical memory-heavy centers; one governed. The governed one
	// must consume less IT energy with bounded job slowdown.
	run := func(governed bool) (energy float64, meanRuntime float64) {
		cfg := simulation.DefaultConfig(606)
		cfg.Nodes = 8
		cfg.Workload.MaxNodes = 4
		cfg.Workload.MeanInterarrival = 150
		dc := simulation.New(cfg)
		if governed {
			dc.AddController(DVFSGovernor{}.Controller())
		}
		dc.RunFor(10 * 3600)
		for _, n := range dc.Nodes {
			energy += n.Energy()
		}
		var runs, count float64
		for _, rec := range dc.Allocations() {
			if rec.End != 0 && !rec.Killed {
				runs += rec.Job.RuntimeSeconds() / rec.Job.IdealRuntime()
				count++
			}
		}
		if count > 0 {
			meanRuntime = runs / count
		}
		return energy, meanRuntime
	}
	baseEnergy, baseStretch := run(false)
	govEnergy, govStretch := run(true)
	if govEnergy >= baseEnergy {
		t.Fatalf("governor saved no energy: %.0f vs %.0f J", govEnergy, baseEnergy)
	}
	// Slowdown must be bounded: the governor only downclocks stalled work.
	if govStretch > baseStretch*1.25 {
		t.Fatalf("governor stretch %.3f vs baseline %.3f", govStretch, baseStretch)
	}
}

func TestFanControl(t *testing.T) {
	dc, ctx := presCtx(t)
	res, err := FanControl{}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("target_c") != 68 {
		t.Fatalf("target = %v", res.Value("target_c"))
	}
	if res.Value("adjusted") > float64(len(dc.Nodes)) {
		t.Fatal("adjusted more nodes than exist")
	}
}

func TestFanControlClosedLoopTracksTarget(t *testing.T) {
	cfg := simulation.DefaultConfig(707)
	cfg.Nodes = 8
	cfg.Workload.MeanInterarrival = 60
	cfg.Workload.MaxNodes = 4
	dc := simulation.New(cfg)
	dc.AddController(FanControl{TargetCelsius: 60}.Controller())
	dc.RunFor(8 * 3600)
	// Busy nodes should sit near the target, not way above.
	for _, n := range dc.Nodes {
		if n.Failed() {
			continue
		}
		if n.LoadState().Utilization > 0.5 && n.Temperature() > 75 {
			t.Fatalf("node %s at %.1fC despite fan control", n.Name(), n.Temperature())
		}
	}
}

func TestPowerBudgetInstalls(t *testing.T) {
	dc, ctx := presCtx(t)
	res, err := PowerBudget{BudgetW: 4000}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("budget_w") != 4000 {
		t.Fatalf("budget = %v", res.Value("budget_w"))
	}
	if dc.Cluster.PowerBudgetW != 4000 || dc.Cluster.EstimatePowerW == nil {
		t.Fatal("budget/estimator not installed")
	}
	// The estimator returns plausible job power.
	j := dc.Allocations()[0].Job
	if p := dc.Cluster.EstimatePowerW(j); p <= 0 || p > 500*float64(j.Nodes)+1 {
		t.Fatalf("estimated power = %v", p)
	}
	dc.Cluster.PowerBudgetW = 0
	dc.Cluster.EstimatePowerW = nil
}

func TestPolicyAdvisor(t *testing.T) {
	dc, ctx := presCtx(t)
	res, err := PolicyAdvisor{}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Summary, "recommended policy") {
		t.Fatalf("summary = %s", res.Summary)
	}
	best := res.Value("best_wait_s")
	for k, v := range res.Values {
		if strings.HasPrefix(k, "wait_") && v < best-1e-9 {
			t.Fatalf("best_wait %v not minimal: %s=%v", best, k, v)
		}
	}
	// The advisor installs runtime predictions into the live scheduler.
	if dc.Cluster.PredictRuntime == nil {
		t.Fatal("runtime predictor not installed")
	}
	dc.Cluster.PredictRuntime = nil
}

func TestTaskPlacement(t *testing.T) {
	dc, ctx := presCtx(t)
	res, err := TaskPlacement{}.Run(ctx)
	if err != nil {
		t.Skip("no free capacity under this seed:", err)
	}
	if res.Value("recommendation_wins") < res.Value("evaluated") {
		t.Fatalf("recommended placement lost to naive: %s", res.Summary)
	}
	_ = dc
}

func TestRecommendNodesLocality(t *testing.T) {
	dc, _ := presCtx(t)
	// Free nodes scattered across edges but with one full edge available.
	free := []int{0, 1, 2, 3, 17, 33, 49}
	rec := RecommendNodes(dc, free, 4)
	if len(rec) != 4 {
		t.Fatalf("rec = %v", rec)
	}
	for _, n := range rec {
		if dc.Net.EdgeOf(n) != 0 {
			t.Fatalf("recommendation not edge-local: %v", rec)
		}
	}
	// Impossible request.
	if RecommendNodes(dc, free, 99) != nil {
		t.Fatal("oversized request should return nil")
	}
	// Spanning request uses fewest edges: 6 nodes from 4+2+1 groups.
	free2 := []int{0, 1, 2, 3, 16, 17, 32}
	rec2 := RecommendNodes(dc, free2, 6)
	edges := map[int]bool{}
	for _, n := range rec2 {
		edges[dc.Net.EdgeOf(n)] = true
	}
	if len(rec2) != 6 || len(edges) > 2 {
		t.Fatalf("spanning recommendation = %v (%d edges)", rec2, len(edges))
	}
}

func TestNelderMeadOnQuadratic(t *testing.T) {
	nm := NelderMead{Lo: []float64{-10, -10}, Hi: []float64{10, 10}, MaxEvals: 300}
	f := func(p []float64) float64 {
		return (p[0]-3)*(p[0]-3) + (p[1]+2)*(p[1]+2)
	}
	best, cost, err := nm.Minimize(f, []float64{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best[0]-3) > 0.2 || math.Abs(best[1]+2) > 0.2 || cost > 0.1 {
		t.Fatalf("minimize = %v, cost %v", best, cost)
	}
	// Bounds respected.
	nm2 := NelderMead{Lo: []float64{0}, Hi: []float64{1}, MaxEvals: 100}
	bounded, _, err := nm2.Minimize(func(p []float64) float64 { return -p[0] }, []float64{0.5})
	if err != nil || bounded[0] < 0 || bounded[0] > 1 {
		t.Fatalf("bounds violated: %v, %v", bounded, err)
	}
	// Dimension validation.
	if _, _, err := (&NelderMead{Lo: []float64{0}, Hi: []float64{1}}).Minimize(f, nil); err == nil {
		t.Fatal("empty x0 should error")
	}
}

func TestAutoTuner(t *testing.T) {
	res, err := AutoTuner{Budget: 150}.Run(&oda.RunContext{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("speedup") < 1.5 {
		t.Fatalf("speedup = %v", res.Value("speedup"))
	}
	// The optimum is near tile 256KB, threads 16.
	if math.Abs(math.Log2(res.Value("tile_kb"))-8) > 1.5 {
		t.Fatalf("tile = %v KB", res.Value("tile_kb"))
	}
	if math.Abs(res.Value("threads")-16) > 5 {
		t.Fatalf("threads = %v", res.Value("threads"))
	}
}

func TestCodeRecommend(t *testing.T) {
	_, ctx := presCtx(t)
	res, err := CodeRecommend{}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("classes") == 0 {
		t.Fatal("no classes advised")
	}
	if !strings.Contains(res.Summary, ":") {
		t.Fatalf("summary lacks advice: %s", res.Summary)
	}
}

func TestRegister(t *testing.T) {
	g := oda.NewGrid()
	if err := Register(g); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 11 {
		t.Fatalf("registered %d", g.Len())
	}
	for _, p := range oda.Pillars() {
		if len(g.At(oda.Cell{Pillar: p, Type: oda.Prescriptive})) == 0 {
			t.Fatalf("pillar %s prescriptive cell empty", p)
		}
	}
	// The package contributes the paper's multi-type/multi-pillar systems.
	if len(g.MultiType()) == 0 || len(g.MultiPillar()) == 0 {
		t.Fatal("no multi-cell capabilities registered")
	}
}

func TestDemandResponse(t *testing.T) {
	dc, ctx := presCtx(t)
	res, err := DemandResponse{FullBudgetW: 6000}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("budget_w") <= 0 || res.Value("budget_w") > 6000 {
		t.Fatalf("budget = %v", res.Value("budget_w"))
	}
	if dc.Cluster.PowerBudgetW != res.Value("budget_w") {
		t.Fatal("budget not installed")
	}
	if dc.Cluster.EstimatePowerW == nil {
		t.Fatal("fallback estimator not installed")
	}
	dc.Cluster.PowerBudgetW = 0
	dc.Cluster.EstimatePowerW = nil

	// The budget curve follows the tariff: expensive evening < cheap night.
	d := DemandResponse{FullBudgetW: 1000}
	night := d.budgetAt(2, 1000)
	evening := d.budgetAt(18, 1000)
	if night != 1000 {
		t.Fatalf("cheapest hour budget = %v, want full", night)
	}
	if evening != 500 {
		t.Fatalf("peak hour budget = %v, want minFraction*full", evening)
	}
	noon := d.budgetAt(12, 1000)
	if !(evening < noon && noon < night) {
		t.Fatalf("budget not monotone in price: %v %v %v", evening, noon, night)
	}
}

func TestDemandResponseClosedLoop(t *testing.T) {
	// With the controller attached, less IT energy is consumed during
	// expensive hours than in an unthrottled twin.
	run := func(throttled bool) (peakHourEnergy float64) {
		cfg := simulation.DefaultConfig(808)
		cfg.Nodes = 8
		cfg.Workload.MaxNodes = 4
		cfg.Workload.MeanInterarrival = 90
		cfg.Policy = scheduler.PowerAware{} // the budget's enforcement point
		dc := simulation.New(cfg)
		if throttled {
			dc.AddController(DemandResponse{FullBudgetW: 2600}.Controller())
		}
		var prev float64
		for dc.Now() < 24*3600*1000 {
			dc.Step()
			hour := int((dc.Now() / 3600000) % 24)
			if hour >= 17 && hour < 21 {
				var e float64
				for _, n := range dc.Nodes {
					e += n.Energy()
				}
				if prev > 0 {
					peakHourEnergy += e - prev
				}
				prev = e
			} else {
				prev = 0
			}
		}
		return peakHourEnergy
	}
	free := run(false)
	capped := run(true)
	if capped >= free {
		t.Fatalf("demand response saved nothing at peak: %.0f vs %.0f J", capped, free)
	}
}

func TestSetpointControllerConverges(t *testing.T) {
	cfg := simulation.DefaultConfig(515)
	cfg.Nodes = 8
	cfg.Workload.MaxNodes = 4
	cfg.Workload.MeanInterarrival = 120
	dc := simulation.New(cfg)
	dc.AddController(FanControl{}.Controller())
	dc.AddController(SetpointOptimizer{}.Controller())
	dc.RunFor(8 * 3600)
	sp := dc.Facility.Setpoint()
	if sp <= 14 || sp > 35 {
		t.Fatalf("controller left setpoint at %v", sp)
	}
	// Sustained node medians stay under the ceiling the optimizer enforces.
	hot := 0
	for _, n := range dc.Nodes {
		if !n.Failed() && n.Temperature() > 90 {
			hot++
		}
	}
	if hot > 1 {
		t.Fatalf("%d nodes far above the ceiling", hot)
	}
}

func TestCoolingModeControllerActs(t *testing.T) {
	cfg := simulation.DefaultConfig(525)
	cfg.Nodes = 8
	cfg.Workload.MaxNodes = 4
	dc := simulation.New(cfg)
	dc.Facility.SetMode(facility.ModeChiller) // start wrong for the climate
	dc.AddController(CoolingModeSwitch{}.Controller())
	dc.RunFor(4 * 3600)
	// In the default cold climate with a 22C setpoint, the proactive
	// switcher must have moved off the forced chiller.
	if dc.Facility.Mode() == facility.ModeChiller {
		st := dc.Facility.State()
		if st.OutdoorTemp < dc.Facility.Setpoint()-dc.Facility.Cfg.FreeCoolingApproach-1 {
			t.Fatalf("controller kept chiller despite cold outdoor %.1fC", st.OutdoorTemp)
		}
	}
}

func TestTaskPlacementWithIdleMachine(t *testing.T) {
	// A mostly idle machine guarantees placements can be evaluated.
	cfg := simulation.DefaultConfig(535)
	cfg.Nodes = 64
	cfg.Workload.MaxNodes = 4
	cfg.Workload.MeanInterarrival = 3600
	dc := simulation.New(cfg)
	dc.RunFor(3600)
	ctx := &oda.RunContext{Store: dc.Store, From: 0, To: dc.Now() + 1, System: dc}
	res, err := TaskPlacement{}.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("evaluated") < 3 {
		t.Fatalf("evaluated = %v on an idle 64-node machine", res.Value("evaluated"))
	}
	if res.Value("recommendation_wins") < res.Value("evaluated") {
		t.Fatalf("recommendations lost: %s", res.Summary)
	}
}
